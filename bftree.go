// Package bftree is the public API of the BF-Tree library, a
// reproduction of "BF-Tree: Approximate Tree Indexing" (Athanassoulis &
// Ailamaki, PVLDB 7(14), 2014).
//
// A BF-Tree indexes a relation that is ordered or partitioned on the
// indexed attribute. Its internal nodes are ordinary B+-Tree nodes; its
// leaves hold Bloom filters — one per data page (or group of pages) —
// answering "might this key be on that page?". The index trades a
// configurable false positive probability for a footprint one to two
// orders of magnitude below a B+-Tree's.
//
// The typical flow:
//
//	dev := bftree.NewDevice(bftree.SSD, 4096)          // simulated device
//	store := bftree.NewStore(dev, 0)                   // page store (0 = no cache)
//	b, _ := bftree.NewRelationBuilder(store, schema)   // build an ordered relation
//	... b.Append(tuple) ...
//	file, _ := b.Finish()
//	idx, _ := bftree.BulkLoad(idxStore, file, "timestamp", bftree.Options{FPP: 1e-3})
//	res, _ := idx.Search(key)
//
// Concurrency: a built Tree is multi-writer/multi-reader. Search,
// SearchFirst, RangeScan and friends may be called from any number of
// goroutines concurrently with writers: every probe loads one
// immutable metadata snapshot and runs lock-free. Writers run in two
// tiers: a non-structural Insert or Delete rewrites one BF-leaf in
// place under a shared tree lock plus that leaf's latch, so writers
// touching disjoint leaves proceed in parallel; an insert that needs a
// structural change (leaf split, append, root growth) escalates to an
// exclusive lock and runs copy-on-write, published atomically, with
// retired pages recycled through an epoch grace period. Flush applies
// each leaf group under the shared tier, escalating per entry only for
// structural work; Rebuild takes the exclusive lock. A
// BufferedInserter's own buffer is unsynchronized — use each inserter
// from a single goroutine. See DESIGN.md §3 for the full contract.
//
// Self-maintaining mode: Options.Maintenance selects who performs
// structural upkeep — reclaiming retired copy-on-write pages and
// compacting the index (via Rebuild) when insert/delete drift pushes
// the effective false positive rate past a threshold (Equation 14,
// Section 7). Under MaintenanceAuto the tree owns a background
// maintainer goroutine, woken by probe completions, drift-publishing
// writers, and a periodic tick; call Close to drain it. The default
// (MaintenanceManual) keeps maintenance inline and on demand
// (Tree.Maintain); Tree.MaintenanceStats reports either way.
// Compaction is incremental when MaintenancePolicy.IncrementalBatch is
// positive: each leaf tracks its own drift contribution and the
// maintainer rewrites only the most-drifted leaves per pass, holding
// the exclusive lock per bounded batch instead of for one whole-tree
// Rebuild (Tree.CompactLeaves is the explicit entry point). See
// DESIGN.md §4 for the maintenance contract.
//
// Package-level names are thin aliases over the implementation packages
// under internal/; see DESIGN.md for the full system inventory.
package bftree

import (
	"bftree/internal/core"
	"bftree/internal/device"
	"bftree/internal/heapfile"
	"bftree/internal/pagestore"
)

// Re-exported types. Options configures a build (false positive
// probability, pages per filter, hash count, counting filters, parallel
// probing); Tree is the index; Result carries matching tuples plus the
// probe's cost accounting.
type (
	Options    = core.Options
	Tree       = core.Tree
	Result     = core.Result
	ProbeStats = core.ProbeStats
	FilterKind = core.FilterKind

	// MaintenancePolicy configures the self-maintaining mode
	// (Options.Maintenance): auto/manual/disabled, the Equation 14
	// compaction threshold, the reclaim interval, and the limbo high
	// water mark. MaintenanceStats is the snapshot returned by
	// Tree.MaintenanceStats.
	MaintenanceMode   = core.MaintenanceMode
	MaintenancePolicy = core.MaintenancePolicy
	MaintenanceStats  = core.MaintenanceStats

	Schema = heapfile.Schema
	Field  = heapfile.Field
	File   = heapfile.File

	Store      = pagestore.Store
	Device     = device.Device
	DeviceKind = device.Kind
	PageID     = device.PageID
	IOStats    = device.Stats
)

// Device kinds for NewDevice.
const (
	Memory = device.Memory
	SSD    = device.SSD
	HDD    = device.HDD
)

// Filter kinds for Options.Filter.
const (
	StandardFilter = core.StandardFilter
	CountingFilter = core.CountingFilter
)

// Maintenance modes for Options.Maintenance.Mode. Manual (the zero
// value) keeps inline, on-demand maintenance; Auto runs a background
// maintainer the tree drains on Close; Disabled suppresses all
// automatic maintenance (explicit Tree.Maintain still works).
const (
	MaintenanceManual   = core.MaintenanceManual
	MaintenanceAuto     = core.MaintenanceAuto
	MaintenanceDisabled = core.MaintenanceDisabled
)

// Error sentinels re-exported for errors.Is matching.
var (
	// ErrOptions reports invalid build options.
	ErrOptions = core.ErrOptions
	// ErrCorrupt reports an undecodable index page or metadata blob.
	ErrCorrupt = core.ErrCorrupt
	// ErrKeyRange reports an insert or delete whose data page violates
	// the ordered/partitioned-relation contract.
	ErrKeyRange = core.ErrKeyRange
	// ErrNotIndexed reports a counting-filter Delete whose key→page
	// association no leaf claims: nothing was removed, no drift was
	// recorded, and the tree is unchanged — typically a tolerable
	// not-found rather than a failure.
	ErrNotIndexed = core.ErrNotIndexed
	// ErrUnknownField reports an index build over a field the schema
	// does not declare; the concrete error is an *UnknownFieldError
	// carrying the name.
	ErrUnknownField = heapfile.ErrUnknownField
)

// NewDevice creates a simulated storage device of the given kind with
// the default cost profile (derived from the paper's testbed) and page
// size in bytes (0 selects 4096).
func NewDevice(kind DeviceKind, pageSize int) *Device {
	return device.New(kind, pageSize)
}

// NewStore layers page management over a device. cachePages > 0 enables
// an LRU buffer cache of that many pages (the warm-cache configurations
// of the paper); 0 leaves every access cold, like the paper's O_DIRECT
// runs.
func NewStore(dev *Device, cachePages int) *Store {
	if cachePages > 0 {
		return pagestore.New(dev, pagestore.WithCache(cachePages))
	}
	return pagestore.New(dev)
}

// NewRelationBuilder opens a builder for an ordered (or partitioned)
// relation of fixed-size tuples on store. Feed tuples in key order and
// call Finish for the File to index.
func NewRelationBuilder(store *Store, schema Schema) (*heapfile.Builder, error) {
	return heapfile.NewBuilder(store, schema)
}

// BulkLoad builds a BF-Tree over the named field of file, writing index
// pages to idxStore (which may sit on a different device than the data —
// the paper's five storage configurations place index and data on
// memory, SSD or HDD independently).
func BulkLoad(idxStore *Store, file *File, field string, opts Options) (*Tree, error) {
	fieldIdx := file.Schema().FieldIndex(field)
	if fieldIdx < 0 {
		return nil, &heapfile.UnknownFieldError{Field: field}
	}
	return core.BulkLoad(idxStore, file, fieldIdx, opts)
}

// Open reopens an index previously built on idxStore from metadata
// produced by Tree.MarshalMeta, without rebuilding.
func Open(idxStore *Store, file *File, meta []byte) (*Tree, error) {
	return core.Open(idxStore, file, meta)
}

// BufferedInserter batches inserts and applies them leaf-by-leaf on
// flush — the update-intensive mode of the paper's Section 4.2. Obtain
// one with Tree.NewBufferedInserter.
type BufferedInserter = core.BufferedInserter

// UnknownFieldError reports an index build over a field the schema does
// not declare. errors.Is(err, ErrUnknownField) matches it.
type UnknownFieldError = heapfile.UnknownFieldError
