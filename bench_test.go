// Benchmarks regenerating every table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index). Each benchmark runs
// the corresponding harness experiment at a reduced scale; run
// cmd/bfbench with -scale paper for full-size numbers. Reported ns/op is
// wall time of the whole experiment (dataset generation + index builds +
// probe batches), not a per-probe figure — per-probe virtual I/O times
// are in the experiment output itself.
package bftree_test

import (
	"encoding/binary"
	"testing"

	"bftree"
	"bftree/internal/bench"
)

// benchScale keeps every experiment benchmark in the hundreds of
// milliseconds.
func benchScale() bench.Scale {
	return bench.Scale{
		SyntheticTuples: 30000,
		TPCHTuples:      30000,
		TPCHDates:       50,
		SHDTuples:       30000,
		Probes:          200,
		Seed:            7,
	}
}

func runExperiment(b *testing.B, name string) {
	b.Helper()
	s := benchScale()
	for i := 0; i < b.N; i++ {
		tbl, err := bench.Run(name, s)
		if err != nil {
			b.Fatal(err)
		}
		if len(tbl.Rows) == 0 {
			b.Fatalf("%s produced no rows", name)
		}
	}
}

// Figures and tables, one benchmark each.

func BenchmarkFig1aImplicitClusteringTPCH(b *testing.B) { runExperiment(b, "fig1a") }
func BenchmarkFig1bImplicitClusteringSHD(b *testing.B)  { runExperiment(b, "fig1b") }
func BenchmarkFig2StorageTradeoff(b *testing.B)         { runExperiment(b, "fig2") }
func BenchmarkFig4aAnalyticalCost(b *testing.B)         { runExperiment(b, "fig4a") }
func BenchmarkFig4bAnalyticalSize(b *testing.B)         { runExperiment(b, "fig4b") }
func BenchmarkTable2IndexSizes(b *testing.B)            { runExperiment(b, "table2") }
func BenchmarkTable3FalseReads(b *testing.B)            { runExperiment(b, "table3") }
func BenchmarkFig5aPKBFTree(b *testing.B)               { runExperiment(b, "fig5a") }
func BenchmarkFig5bPKBaselines(b *testing.B)            { runExperiment(b, "fig5b") }
func BenchmarkFig6BreakEvenPK(b *testing.B)             { runExperiment(b, "fig6") }
func BenchmarkFig7WarmCachePK(b *testing.B)             { runExperiment(b, "fig7") }
func BenchmarkFig8aATT1BFTree(b *testing.B)             { runExperiment(b, "fig8a") }
func BenchmarkFig8bATT1Baselines(b *testing.B)          { runExperiment(b, "fig8b") }
func BenchmarkFig9BreakEvenATT1(b *testing.B)           { runExperiment(b, "fig9") }
func BenchmarkFig10WarmCacheATT1(b *testing.B)          { runExperiment(b, "fig10") }
func BenchmarkFig11TPCHHitRate(b *testing.B)            { runExperiment(b, "fig11") }
func BenchmarkFig12aSHDCold(b *testing.B)               { runExperiment(b, "fig12a") }
func BenchmarkFig12bSHDWarm(b *testing.B)               { runExperiment(b, "fig12b") }
func BenchmarkFig13RangeScan(b *testing.B)              { runExperiment(b, "fig13") }
func BenchmarkFig14InsertDrift(b *testing.B)            { runExperiment(b, "fig14") }

// Concurrent probe engine: throughput and tail latency at 1..16 workers
// with real per-access device latency (see internal/bench/concurrent.go).

func BenchmarkConcurrentProbe(b *testing.B) { runExperiment(b, "concurrent-probe") }

// Mixed read/write: reader throughput at 1..8 workers while one writer
// streams inserts through the copy-on-write structural path (see
// internal/bench/mixedrw.go).

func BenchmarkMixedRW(b *testing.B) { runExperiment(b, "mixed-rw") }

// Multi-writer: aggregate in-place insert throughput at 1..8 writer
// goroutines over disjoint vs contended leaves, demonstrating leaf-level
// write latching (see internal/bench/multiwriter.go).

func BenchmarkMultiWriter(b *testing.B) { runExperiment(b, "multi-writer") }

// Churn: sustained insert+delete load on a self-maintaining tree —
// background limbo reclamation plus drift-triggered compaction holding
// the Equation 14 fpp under the configured threshold (see
// internal/bench/churn.go).

func BenchmarkChurn(b *testing.B) { runExperiment(b, "churn") }

// Streaming scans and batched probes: the pull-based Scanner cursor at
// LIMIT 1/10/100 vs the materialized RangeScan, and MultiSearch across
// batch sizes (see internal/bench/scanstream.go and batchedprobe.go;
// DESIGN.md section 6).

func BenchmarkScanStream(b *testing.B)   { runExperiment(b, "scan-stream") }
func BenchmarkBatchedProbe(b *testing.B) { runExperiment(b, "batched-probe") }

// Serving layer: the OLTP preset over real loopback HTTP connections
// against a served bftree, swept across connection counts (see
// internal/bench/serveload.go and DESIGN.md section 9). Reported ns/op
// is the whole sweep including server start/stop per backend.

func BenchmarkServeLoad(b *testing.B) {
	s := benchScale()
	s.Index = "bftree"
	for i := 0; i < b.N; i++ {
		tbl, err := bench.Run("serve-load", s)
		if err != nil {
			b.Fatal(err)
		}
		if len(tbl.Rows) == 0 {
			b.Fatal("serve-load produced no rows")
		}
	}
}

// Ablations (DESIGN.md section 4).

func BenchmarkAblationBFGranularity(b *testing.B) { runExperiment(b, "ablation-granularity") }
func BenchmarkAblationHashCount(b *testing.B)     { runExperiment(b, "ablation-hashes") }
func BenchmarkAblationParallelProbe(b *testing.B) { runExperiment(b, "ablation-parallel") }
func BenchmarkAblationDeletes(b *testing.B)       { runExperiment(b, "ablation-deletes") }

// Micro-benchmarks of the core operations through the public API: real
// CPU cost per operation, complementary to the harness's virtual I/O
// accounting.

func buildBenchIndex(b *testing.B, n int, fpp float64) (*bftree.Tree, *bftree.File) {
	b.Helper()
	schema := bftree.Schema{
		TupleSize: 64,
		Fields:    []bftree.Field{{Name: "k", Offset: 0}},
	}
	store := bftree.NewStore(bftree.NewDevice(bftree.Memory, 4096), 0)
	builder, err := bftree.NewRelationBuilder(store, schema)
	if err != nil {
		b.Fatal(err)
	}
	tup := make([]byte, 64)
	for i := 0; i < n; i++ {
		binary.BigEndian.PutUint64(tup[:8], uint64(i))
		if err := builder.Append(tup); err != nil {
			b.Fatal(err)
		}
	}
	file, err := builder.Finish()
	if err != nil {
		b.Fatal(err)
	}
	idx, err := bftree.BulkLoad(bftree.NewStore(bftree.NewDevice(bftree.Memory, 4096), 0),
		file, "k", bftree.Options{FPP: fpp})
	if err != nil {
		b.Fatal(err)
	}
	return idx, file
}

func BenchmarkBFTreeBulkLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		buildBenchIndex(b, 100000, 1e-3)
	}
}

func BenchmarkBFTreeSearchHit(b *testing.B) {
	idx, _ := buildBenchIndex(b, 100000, 1e-3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := idx.SearchFirst(uint64(i % 100000))
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Tuples) != 1 {
			b.Fatal("miss")
		}
	}
}

func BenchmarkBFTreeSearchMiss(b *testing.B) {
	idx, _ := buildBenchIndex(b, 100000, 1e-3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := idx.Search(uint64(200000 + i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBFTreeRangeScan1Pct(b *testing.B) {
	idx, _ := buildBenchIndex(b, 100000, 1e-4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := uint64(i%50) * 1000
		if _, err := idx.RangeScan(lo, lo+999); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBFTreeInsert(b *testing.B) {
	idx, file := buildBenchIndex(b, 100000, 1e-3)
	lastPage := file.PageOf(file.NumTuples() - 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Re-inserting tail keys exercises the full descent + filter
		// update path without violating the ordering contract.
		if err := idx.Insert(99999, lastPage); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationBufferedInserts(b *testing.B) { runExperiment(b, "ablation-buffer") }
