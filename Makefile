# BF-Tree — build, test and benchmark targets mirroring CI
# (.github/workflows/ci.yml). `make ci` runs the full gate locally.

GO ?= go

# Packages with concurrency-sensitive code; `make race` and CI run these
# under the race detector.
RACE_PKGS := ./internal/core/... ./internal/pagestore/... ./internal/device/... ./internal/forest/...

.PHONY: help build test race bench bench-json conformance forest mixed compact serve fmt fmt-fix vet ci clean

help:
	@echo "BF-Tree — available targets:"
	@echo ""
	@echo "  make build    - go build ./..."
	@echo "  make test     - go test ./..."
	@echo "  make race     - race-detector tests on core/pagestore/device"
	@echo "  make conformance - cross-backend index API conformance suite"
	@echo "  make forest   - forest race suite + concurrent conformance under -race"
	@echo "  make mixed    - workload-engine driver tests (golden model + concurrency) under -race"
	@echo "  make compact  - incremental-compaction gate: stall comparison + race test"
	@echo "  make serve    - serving-layer gate: server + loadgen suites under -race, serve-load scaling test"
	@echo "  make bench    - run every benchmark once (smoke) "
	@echo "  make bench-json - regenerate every BENCH_*.json artifact (see the README table)"
	@echo "  make fmt      - fail if any file needs gofmt"
	@echo "  make fmt-fix  - gofmt -w the tree"
	@echo "  make vet      - go vet ./..."
	@echo "  make ci       - everything CI runs, in order"
	@echo "  make clean    - drop build and test caches"
	@echo ""

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

conformance:
	$(GO) test -run 'TestConformance|TestCapabilityMatrix' -v ./index/

# The sharded-forest gate: per-shard maintainers and the page-economy
# audit under the race detector, plus every backend's concurrent
# conformance run.
forest:
	$(GO) test -race ./internal/forest/
	$(GO) test -race -run TestConformanceConcurrent ./index/

# The workload-engine gate: op-stream layer tests, the mixed-op golden
# model across every backend, and the concurrent mixed driver under the
# race detector.
mixed:
	$(GO) test ./internal/workload/
	$(GO) test -race -run 'TestDriver|TestMixedWorkload' ./internal/bench/

# The incremental-compaction gate: the writer/maintainer race test
# (drift accounting + page economy under -race) and the stall-comparison
# smoke asserting incremental cuts the max writer stall vs full rebuild.
compact:
	$(GO) test -race -run 'TestIncrementalCompactionRace|TestIncrementalMaintainConverges' ./internal/core/
	$(GO) test -run 'TestCompactionStall' ./internal/bench/

# The serving-layer gate: golden equivalence + capability matrix +
# backpressure + the 8-client concurrency test under -race, then the
# serve-load queue-depth scaling assertion over real connections.
serve:
	$(GO) test -race ./internal/server/...
	$(GO) test -run 'TestServeLoad|TestArtifactRegistry' ./internal/bench/

bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Regenerates the committed streaming/batching result artifacts at the
# scale CI smokes them.
bench-json:
	$(GO) run ./cmd/bfbench -exp scan-stream -tuples 30000 -probes 128 -json .
	$(GO) run ./cmd/bfbench -exp batched-probe -tuples 30000 -probes 256 -json .
	$(GO) run ./cmd/bfbench -exp point-lookup -index=each -tuples 30000 -probes 256 -json .
	$(GO) run ./cmd/bfbench -exp mixed-workload -index=each -tuples 30000 -probes 256 -json .
	$(GO) run ./cmd/bfbench -exp compaction-stall -tuples 30000 -json .
	$(GO) run ./cmd/bfbench -exp serve-load -index=each -tuples 20000 -probes 64 -json .

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

fmt-fix:
	gofmt -w .

vet:
	$(GO) vet ./...

ci: fmt vet build test race conformance forest mixed compact serve bench

clean:
	$(GO) clean -testcache
	rm -f *.prof
