package index

import (
	"sort"

	"bftree/internal/core"
)

// defaultBFTreeFPP is the design false positive probability the BF-Tree
// backend uses when Options.BFTree leaves it zero — the 1e-3 point the
// quickstart and TPCH experiments run at.
const defaultBFTreeFPP = 1e-3

func init() {
	Register(Backend{
		Name:              "bftree",
		Approximate:       true,
		ConcurrentWriters: true,
		BulkLoad: func(store *Store, file *File, fieldIdx int, opts Options) (Index, error) {
			o := opts.BFTree
			if o.FPP == 0 {
				o.FPP = defaultBFTreeFPP
			}
			tr, err := core.BulkLoad(store, file, fieldIdx, o)
			if err != nil {
				return nil, err
			}
			return newBFIndex(tr, opts), nil
		},
		Open: func(store *Store, file *File, meta []byte) (Index, error) {
			tr, err := core.Open(store, file, meta)
			if err != nil {
				return nil, err
			}
			return newBFIndex(tr, Options{}), nil
		},
	})
}

func newBFIndex(tr *core.Tree, opts Options) Index {
	if opts.BufferedInserts > 0 {
		return &bufferedBFIndex{
			tree: tr,
			buf:  tr.NewBufferedInserter(opts.BufferedInserts),
		}
	}
	return &bfIndex{tree: tr}
}

// bfIndex adapts core.Tree — the BF-Tree already speaks the Result
// shape, so every method is a delegation; the core scan cursor
// satisfies Iterator directly. It implements Scanner, MultiSearcher,
// Inserter, Deleter, Persister, Maintainer and Warmable.
type bfIndex struct {
	tree *core.Tree
}

func (ix *bfIndex) Search(key uint64) (*Result, error)      { return ix.tree.Search(key) }
func (ix *bfIndex) SearchFirst(key uint64) (*Result, error) { return ix.tree.SearchFirst(key) }
func (ix *bfIndex) RangeScan(lo, hi uint64) (*Result, error) {
	return scanRange(ix, lo, hi)
}

// Scan streams the leaf-chain walk under the tree's epoch scheme: the
// cursor holds a reader registration until closed or drained, so pages
// it may traverse stay out of limbo reclamation (DESIGN.md §6). The
// cursor runs with the Section 7 boundary optimization: leaves only
// partially covered by [lo, hi] probe their Bloom filters and read just
// the flagged pages, instead of their whole page span.
func (ix *bfIndex) Scan(lo, hi uint64) (Iterator, error) {
	if lo > hi {
		return nil, ErrInvalidRange
	}
	return ix.tree.ScanOptimized(lo, hi)
}

// MultiSearch shares descents, filter probes and page reads across the
// batch via the core tree's batched probe.
func (ix *bfIndex) MultiSearch(keys []uint64) (*Result, error) {
	return ix.tree.MultiSearch(keys)
}

func (ix *bfIndex) Close() error { return ix.tree.Close() }

func (ix *bfIndex) Stats() Stats {
	return Stats{
		Backend:      "bftree",
		Pages:        ix.tree.NumNodes(),
		SizeBytes:    ix.tree.SizeBytes(),
		Height:       ix.tree.Height(),
		Entries:      ix.tree.NumKeys(),
		Keys:         ix.tree.NumKeys(),
		EffectiveFPP: ix.tree.EffectiveFPP(),
	}
}

// Insert adds a key→page association; the BF-Tree indexes pages, not
// slots, so the reference's slot is ignored.
func (ix *bfIndex) Insert(key uint64, ref Ref) error { return ix.tree.Insert(key, ref.Page) }

// Delete removes a key→page association (physically for counting
// filters; as tracked fpp drift for standard ones).
func (ix *bfIndex) Delete(key uint64, ref Ref) error { return ix.tree.Delete(key, ref.Page) }

func (ix *bfIndex) MarshalMeta() []byte { return ix.tree.MarshalMeta() }

func (ix *bfIndex) Maintain() error { return ix.tree.Maintain() }
func (ix *bfIndex) MaintenanceStats() MaintenanceStats {
	return ix.tree.MaintenanceStats()
}

func (ix *bfIndex) InternalPages() ([]PageID, error) { return ix.tree.InternalPages() }

// bufferedBFIndex is the update-intensive mode of Section 4.2 behind
// the same interface: Insert batches in memory, Flush applies the batch
// leaf-by-leaf, and point probes merge buffered entries with the tree's
// answer. Range scans see only flushed state — call Flush first when
// scanning must observe buffered inserts. Deliberately NOT a composed
// bfIndex: each capability must account for the buffer, so Delete
// flushes before touching the tree, and Persister is withheld — a
// marshal could otherwise silently drop buffered inserts (Flush, then
// rebuild the index unbuffered, to persist).
type bufferedBFIndex struct {
	tree *core.Tree
	buf  *core.BufferedInserter
}

func (ix *bufferedBFIndex) Search(key uint64) (*Result, error) { return ix.buf.Search(key) }

func (ix *bufferedBFIndex) SearchFirst(key uint64) (*Result, error) {
	res, err := ix.buf.Search(key)
	if err != nil {
		return nil, err
	}
	if len(res.Tuples) > 1 {
		res.Tuples = res.Tuples[:1]
	}
	return res, nil
}

func (ix *bufferedBFIndex) RangeScan(lo, hi uint64) (*Result, error) {
	return scanRange(ix, lo, hi)
}

// Scan streams flushed state only, like RangeScan — call Flush first
// when the scan must observe buffered inserts. Boundary-optimized, like
// the unbuffered backend's Scan.
func (ix *bufferedBFIndex) Scan(lo, hi uint64) (Iterator, error) {
	if lo > hi {
		return nil, ErrInvalidRange
	}
	return ix.tree.ScanOptimized(lo, hi)
}

// MultiSearch answers the batch through per-key buffered searches:
// every answer merges buffered entries with the tree's, matching
// Search, so the buffer forecloses cross-key page sharing (keys are
// still sorted and deduped). Flush first to regain the shared path.
func (ix *bufferedBFIndex) MultiSearch(keys []uint64) (*Result, error) {
	sorted := append([]uint64(nil), keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	res := &Result{}
	var prev uint64
	for i, k := range sorted {
		if i > 0 && k == prev {
			continue
		}
		prev = k
		r, err := ix.buf.Search(k)
		if err != nil {
			return nil, err
		}
		res.Tuples = append(res.Tuples, r.Tuples...)
		addStats(&res.Stats, r.Stats)
	}
	return res, nil
}

func (ix *bufferedBFIndex) Stats() Stats { return (&bfIndex{tree: ix.tree}).Stats() }

func (ix *bufferedBFIndex) Close() error { return ix.tree.Close() }

func (ix *bufferedBFIndex) Insert(key uint64, ref Ref) error { return ix.buf.Insert(key, ref.Page) }

// Delete applies the pending buffer first so a just-buffered
// association can be deleted like any other.
func (ix *bufferedBFIndex) Delete(key uint64, ref Ref) error {
	if err := ix.buf.Flush(); err != nil {
		return err
	}
	return ix.tree.Delete(key, ref.Page)
}

func (ix *bufferedBFIndex) Flush() error { return ix.buf.Flush() }

func (ix *bufferedBFIndex) Maintain() error { return ix.tree.Maintain() }
func (ix *bufferedBFIndex) MaintenanceStats() MaintenanceStats {
	return ix.tree.MaintenanceStats()
}

func (ix *bufferedBFIndex) InternalPages() ([]PageID, error) { return ix.tree.InternalPages() }
