package index_test

import (
	"encoding/binary"
	"errors"
	"sort"
	"sync"
	"testing"

	"bftree/index"
	"bftree/internal/device"
	"bftree/internal/heapfile"
	"bftree/internal/pagestore"
)

// The conformance suite is the unified API's contract made executable:
// the same golden relation is bulk-loaded into every registered backend
// through index.New, and point lookups, range scans and (where the
// capability interfaces exist) insert/delete round-trips must agree
// with a brute-force scan of the data. The BF-Tree participates on
// equal terms for result sets — its approximation costs false-positive
// page reads, never wrong tuples — with the one documented exception of
// deleted associations, where its answer may remain a superset of the
// exact backends' (standard filters cannot unset bits; counting-filter
// collisions can still flag a page holding the physically present
// tuple).

// goldenRelation builds an ordered relation with duplicate keys: key
// step 5, three tuples per key, payload = ordinal.
func goldenRelation(t *testing.T, n int) (*heapfile.File, *pagestore.Store) {
	t.Helper()
	schema := heapfile.Schema{
		TupleSize: 64,
		Fields:    []heapfile.Field{{Name: "key", Offset: 0}, {Name: "seq", Offset: 8}},
	}
	store := pagestore.New(device.New(device.Memory, 4096))
	b, err := heapfile.NewBuilder(store, schema)
	if err != nil {
		t.Fatal(err)
	}
	tup := make([]byte, schema.TupleSize)
	for i := 0; i < n; i++ {
		binary.BigEndian.PutUint64(tup[0:8], uint64(i/3)*5)
		binary.BigEndian.PutUint64(tup[8:16], uint64(i))
		if err := b.Append(tup); err != nil {
			t.Fatal(err)
		}
	}
	file, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return file, store
}

// goldenTuples brute-force scans the file for every tuple with field 0
// in [lo, hi].
func goldenTuples(t *testing.T, file *heapfile.File, lo, hi uint64) [][]byte {
	t.Helper()
	var out [][]byte
	err := file.Scan(func(_ device.PageID, _ int, tup []byte) bool {
		if k := file.Schema().Get(tup, 0); k >= lo && k <= hi {
			cp := make([]byte, len(tup))
			copy(cp, tup)
			out = append(out, cp)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// tupleSet canonicalizes a tuple list for multiset comparison.
func tupleSet(tuples [][]byte) []string {
	out := make([]string, len(tuples))
	for i, tup := range tuples {
		out[i] = string(tup)
	}
	sort.Strings(out)
	return out
}

func sameTuples(a, b [][]byte) bool {
	as, bs := tupleSet(a), tupleSet(b)
	if len(as) != len(bs) {
		return false
	}
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// refsOf returns the (page, slot) references of every tuple with the
// given key, for insert/delete round-trips.
func refsOf(t *testing.T, file *heapfile.File, key uint64) []index.Ref {
	t.Helper()
	var refs []index.Ref
	err := file.Scan(func(pid device.PageID, slot int, tup []byte) bool {
		if file.Schema().Get(tup, 0) == key {
			refs = append(refs, index.Ref{Page: pid, Slot: uint16(slot)})
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return refs
}

func TestConformance(t *testing.T) {
	const n = 6000 // 2000 distinct keys 0,5,...,9995; 3 tuples each
	file, _ := goldenRelation(t, n)
	maxKey := uint64(n/3-1) * 5

	for _, name := range index.Backends() {
		name := name
		t.Run(name, func(t *testing.T) {
			idxStore := pagestore.New(device.New(device.Memory, 4096))
			ix, err := index.New(name, idxStore, file, 0, index.Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer ix.Close()

			st := ix.Stats()
			if st.Backend != name {
				t.Errorf("Stats().Backend = %q, want %q", st.Backend, name)
			}
			if st.Entries == 0 {
				t.Error("Stats().Entries = 0 on a loaded index")
			}

			// Point lookups: hits on every 97th key, misses between
			// keys and beyond the domain. Identical tuples everywhere.
			for k := uint64(0); k <= maxKey; k += 5 * 97 {
				res, err := ix.Search(k)
				if err != nil {
					t.Fatal(err)
				}
				want := goldenTuples(t, file, k, k)
				if !sameTuples(res.Tuples, want) {
					t.Fatalf("Search(%d): %d tuples, want %d", k, len(res.Tuples), len(want))
				}
				// SearchFirst stops early: at least one match, never more
				// than the full answer (the BF-Tree returns the first
				// matching page's tuples, exact backends the first tuple).
				first, err := ix.SearchFirst(k)
				if err != nil {
					t.Fatal(err)
				}
				if len(first.Tuples) < 1 || len(first.Tuples) > len(want) {
					t.Fatalf("SearchFirst(%d): %d tuples, want 1..%d", k, len(first.Tuples), len(want))
				}
			}
			for _, k := range []uint64{1, 7, maxKey - 2, maxKey + 1000} {
				res, err := ix.Search(k)
				if err != nil {
					t.Fatal(err)
				}
				if len(res.Tuples) != 0 {
					t.Fatalf("Search(miss %d): %d tuples, want 0", k, len(res.Tuples))
				}
			}

			// Range scans, including empty, single-key, key-straddling
			// and clamped-past-the-end ranges.
			for _, rng := range [][2]uint64{{0, 0}, {1, 4}, {250, 400}, {maxKey - 50, maxKey + 500}, {0, maxKey}} {
				lo, hi := rng[0], rng[1]
				res, err := ix.RangeScan(lo, hi)
				if err != nil {
					t.Fatal(err)
				}
				want := goldenTuples(t, file, lo, hi)
				if !sameTuples(res.Tuples, want) {
					t.Fatalf("RangeScan[%d,%d]: %d tuples, want %d", lo, hi, len(res.Tuples), len(want))
				}
			}

			// Insert round-trip: duplicate associations of existing
			// tuples (enough to force structural changes) must leave
			// every lookup's tuple set unchanged.
			if ins, ok := ix.(index.Inserter); ok {
				for k := uint64(0); k <= maxKey; k += 5 * 3 {
					for _, ref := range refsOf(t, file, k)[:1] {
						if err := ins.Insert(k, ref); err != nil {
							t.Fatalf("Insert(%d, %v): %v", k, ref, err)
						}
					}
				}
				if fl, ok := ix.(index.Flusher); ok {
					if err := fl.Flush(); err != nil {
						t.Fatal(err)
					}
				}
				for k := uint64(0); k <= maxKey; k += 5 * 41 {
					res, err := ix.Search(k)
					if err != nil {
						t.Fatal(err)
					}
					want := goldenTuples(t, file, k, k)
					if !sameTuples(res.Tuples, want) {
						t.Fatalf("post-insert Search(%d): %d tuples, want %d", k, len(res.Tuples), len(want))
					}
				}
			}

			// Delete round-trip where both capabilities exist: remove
			// every association of a key, then re-insert them. Exact
			// backends must answer empty in between; the BF-Tree may
			// still find the physically present tuples (superset). After
			// re-insert everyone answers golden again.
			del, canDelete := ix.(index.Deleter)
			ins, canInsert := ix.(index.Inserter)
			if canDelete && canInsert {
				const victim = uint64(500)
				refs := refsOf(t, file, victim)
				golden := goldenTuples(t, file, victim, victim)
				for _, ref := range refs {
					if err := del.Delete(victim, ref); err != nil {
						t.Fatalf("Delete(%d, %v): %v", victim, ref, err)
					}
				}
				res, err := ix.Search(victim)
				if err != nil {
					t.Fatal(err)
				}
				backend, _ := index.Lookup(name)
				if backend.Approximate {
					if len(res.Tuples) > len(golden) {
						t.Fatalf("post-delete Search(%d): %d tuples exceeds physical %d", victim, len(res.Tuples), len(golden))
					}
				} else if len(res.Tuples) != 0 {
					t.Fatalf("post-delete Search(%d): %d tuples, want 0", victim, len(res.Tuples))
				}
				for _, ref := range refs {
					if err := ins.Insert(victim, ref); err != nil {
						t.Fatalf("re-Insert(%d, %v): %v", victim, ref, err)
					}
				}
				res, err = ix.Search(victim)
				if err != nil {
					t.Fatal(err)
				}
				if !sameTuples(res.Tuples, golden) {
					t.Fatalf("post-reinsert Search(%d): %d tuples, want %d", victim, len(res.Tuples), len(golden))
				}
			}

			// Persistence round-trip where implemented: marshal, reopen
			// through the registry, re-verify a lookup.
			if p, ok := ix.(index.Persister); ok {
				reopened, err := index.Open(name, idxStore, file, p.MarshalMeta())
				if err != nil {
					t.Fatal(err)
				}
				defer reopened.Close()
				res, err := reopened.Search(250)
				if err != nil {
					t.Fatal(err)
				}
				if want := goldenTuples(t, file, 250, 250); !sameTuples(res.Tuples, want) {
					t.Fatalf("reopened Search(250): %d tuples, want %d", len(res.Tuples), len(want))
				}
			} else if _, err := index.Open(name, idxStore, file, nil); !errors.Is(err, index.ErrUnsupported) {
				t.Errorf("Open on non-persistent backend: err = %v, want ErrUnsupported", err)
			}
		})
	}
}

// TestConformanceConcurrent is the contract of DESIGN.md §3 at the
// unified-API layer: every backend must serve 8 concurrent probers
// (point lookups, batched probes, streaming scans per its
// capabilities), and backends advertising ConcurrentWriters must keep
// serving them while capability writers churn delete/re-insert rounds
// of real associations. Under churn an answer may shrink but never
// exceeds the physical association count, and after the writers drain
// every sampled lookup answers golden again. Run with -race.
func TestConformanceConcurrent(t *testing.T) {
	const n = 3000 // 1000 distinct keys, 3 tuples each
	file, _ := goldenRelation(t, n)
	maxKey := uint64(n/3-1) * 5

	for _, name := range index.Backends() {
		name := name
		t.Run(name, func(t *testing.T) {
			backend, _ := index.Lookup(name)
			idxStore := pagestore.New(device.New(device.Memory, 4096))
			ix, err := index.New(name, idxStore, file, 0, index.Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer ix.Close()

			// Writer key slices: every 13th key, refs resolved up front so
			// the churn loop touches only the index.
			var churnKeys []uint64
			refs := map[uint64][]index.Ref{}
			if backend.ConcurrentWriters {
				for k := uint64(0); k <= maxKey; k += 5 * 13 {
					churnKeys = append(churnKeys, k)
					refs[k] = refsOf(t, file, k)
				}
			}

			const writers, probers, rounds = 4, 8, 25
			var wg sync.WaitGroup
			errCh := make(chan error, writers+probers)

			if backend.ConcurrentWriters {
				ins := ix.(index.Inserter)
				del := ix.(index.Deleter)
				for w := 0; w < writers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						for r := 0; r < rounds; r++ {
							// Disjoint key slices per writer: the §3 contract
							// serializes writers per association, not globally.
							for i := w; i < len(churnKeys); i += writers {
								k := churnKeys[i]
								for _, ref := range refs[k] {
									if err := del.Delete(k, ref); err != nil {
										errCh <- err
										return
									}
								}
								for _, ref := range refs[k] {
									if err := ins.Insert(k, ref); err != nil {
										errCh <- err
										return
									}
								}
							}
						}
					}(w)
				}
			}

			for p := 0; p < probers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					for r := 0; r < rounds; r++ {
						k := (uint64(p*31+r*7) % (maxKey / 5)) * 5
						res, err := ix.Search(k)
						if err != nil {
							errCh <- err
							return
						}
						if len(res.Tuples) > 3 {
							t.Errorf("Search(%d) under churn: %d tuples exceeds physical 3", k, len(res.Tuples))
							return
						}
						if ms, ok := ix.(index.MultiSearcher); ok {
							if _, err := ms.MultiSearch([]uint64{k, k + 5, k + 150}); err != nil {
								errCh <- err
								return
							}
						}
						if sc, ok := ix.(index.Scanner); ok {
							it, err := sc.Scan(k, k+100)
							if err != nil {
								errCh <- err
								return
							}
							for s := 0; it.Next() && s < 32; s++ {
							}
							err = it.Err()
							it.Close()
							if err != nil {
								errCh <- err
								return
							}
						}
					}
				}(p)
			}

			wg.Wait()
			close(errCh)
			for err := range errCh {
				t.Fatal(err)
			}

			// Post-churn: delete/re-insert round-trips must have restored
			// golden answers (sampled; full equality for every backend,
			// approximate included — re-insert repopulates the filters).
			for k := uint64(0); k <= maxKey; k += 5 * 29 {
				res, err := ix.Search(k)
				if err != nil {
					t.Fatal(err)
				}
				if want := goldenTuples(t, file, k, k); !sameTuples(res.Tuples, want) {
					t.Fatalf("post-churn Search(%d): %d tuples, want %d", k, len(res.Tuples), len(want))
				}
			}
		})
	}
}

// TestConformanceDedupLayout runs the point/range checks again for the
// tree backends in the paper's deduplicated layout for ordered
// non-unique attributes, where probes must chase duplicates through the
// ordered data instead of per-tuple entries.
func TestConformanceDedupLayout(t *testing.T) {
	const n = 6000
	file, _ := goldenRelation(t, n)
	maxKey := uint64(n/3-1) * 5

	for _, name := range []string{"bptree", "fdtree"} {
		name := name
		t.Run(name, func(t *testing.T) {
			idxStore := pagestore.New(device.New(device.Memory, 4096))
			ix, err := index.New(name, idxStore, file, 0, index.Options{DedupKeys: true})
			if err != nil {
				t.Fatal(err)
			}
			defer ix.Close()
			for k := uint64(0); k <= maxKey; k += 5 * 89 {
				res, err := ix.Search(k)
				if err != nil {
					t.Fatal(err)
				}
				if want := goldenTuples(t, file, k, k); !sameTuples(res.Tuples, want) {
					t.Fatalf("dedup Search(%d): %d tuples, want %d", k, len(res.Tuples), len(want))
				}
			}
			for _, rng := range [][2]uint64{{35, 35}, {120, 345}, {maxKey - 20, maxKey}} {
				res, err := ix.RangeScan(rng[0], rng[1])
				if err != nil {
					t.Fatal(err)
				}
				if want := goldenTuples(t, file, rng[0], rng[1]); !sameTuples(res.Tuples, want) {
					t.Fatalf("dedup RangeScan[%d,%d]: %d tuples, want %d", rng[0], rng[1], len(res.Tuples), len(want))
				}
			}
		})
	}
}

// TestCapabilityMatrix pins DESIGN.md §5's table: which backend
// implements which optional interface.
func TestCapabilityMatrix(t *testing.T) {
	file, _ := goldenRelation(t, 300)
	matrix := map[string]map[string]bool{
		"bftree":   {"Inserter": true, "Deleter": true, "Flusher": false, "Persister": true, "Maintainer": true, "Warmable": true, "Scanner": true, "MultiSearcher": true},
		"bfforest": {"Inserter": true, "Deleter": true, "Flusher": false, "Persister": true, "Maintainer": true, "Warmable": true, "Scanner": true, "MultiSearcher": true},
		"bptree":   {"Inserter": true, "Deleter": false, "Flusher": false, "Persister": false, "Maintainer": false, "Warmable": true, "Scanner": true, "MultiSearcher": true},
		"fdtree":   {"Inserter": true, "Deleter": false, "Flusher": true, "Persister": false, "Maintainer": false, "Warmable": false, "Scanner": true, "MultiSearcher": true},
		"hash":     {"Inserter": true, "Deleter": true, "Flusher": false, "Persister": false, "Maintainer": false, "Warmable": false, "Scanner": true, "MultiSearcher": true},
	}
	for _, name := range index.Backends() {
		want, known := matrix[name]
		if !known {
			t.Errorf("backend %q not in the capability matrix; update DESIGN.md §5 and this test", name)
			continue
		}
		idxStore := pagestore.New(device.New(device.Memory, 4096))
		ix, err := index.New(name, idxStore, file, 0, index.Options{})
		if err != nil {
			t.Fatal(err)
		}
		got := map[string]bool{}
		_, got["Inserter"] = ix.(index.Inserter)
		_, got["Deleter"] = ix.(index.Deleter)
		_, got["Flusher"] = ix.(index.Flusher)
		_, got["Persister"] = ix.(index.Persister)
		_, got["Maintainer"] = ix.(index.Maintainer)
		_, got["Warmable"] = ix.(index.Warmable)
		_, got["Scanner"] = ix.(index.Scanner)
		_, got["MultiSearcher"] = ix.(index.MultiSearcher)
		for capability, w := range want {
			if got[capability] != w {
				t.Errorf("%s: %s = %v, want %v", name, capability, got[capability], w)
			}
		}
		ix.Close()
	}
	// The buffered BF-Tree mode adds Flusher and withholds Persister: a
	// marshal would silently drop unflushed buffered inserts.
	idxStore := pagestore.New(device.New(device.Memory, 4096))
	ix, err := index.New("bftree", idxStore, file, 0, index.Options{BufferedInserts: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	if _, ok := ix.(index.Flusher); !ok {
		t.Error("buffered bftree mode does not implement Flusher")
	}
	if _, ok := ix.(index.Persister); ok {
		t.Error("buffered bftree mode must not implement Persister (buffered inserts would be lost)")
	}
	if _, ok := ix.(index.Scanner); !ok {
		t.Error("buffered bftree mode does not implement Scanner")
	}
	if _, ok := ix.(index.MultiSearcher); !ok {
		t.Error("buffered bftree mode does not implement MultiSearcher")
	}
	// Delete accounts for the buffer: a just-buffered association is
	// deletable without an explicit Flush.
	ins := ix.(index.Inserter)
	ref := refsOf(t, file, 35)[0]
	if err := ins.Insert(35, ref); err != nil {
		t.Fatal(err)
	}
	if err := ix.(index.Deleter).Delete(35, ref); err != nil {
		t.Fatalf("Delete of a buffered association: %v", err)
	}
}
