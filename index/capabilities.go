package index

// CapSet is the discovered optional-capability surface of one index
// value — the type-assertion matrix of DESIGN.md §5 as data. The
// workload engine keys operation redistribution on it: ops a backend
// cannot run are folded into ones it can, by declared capability
// rather than per-backend switch.
type CapSet struct {
	Insert      bool
	Delete      bool
	Flush       bool
	Persist     bool
	Maintain    bool
	Warm        bool
	Scan        bool
	MultiSearch bool
}

// Capabilities reports which optional interfaces v implements. It
// accepts any value (not just Index) so adapters over the internal
// tree types can be probed through the same helper.
func Capabilities(v any) CapSet {
	var c CapSet
	_, c.Insert = v.(Inserter)
	_, c.Delete = v.(Deleter)
	_, c.Flush = v.(Flusher)
	_, c.Persist = v.(Persister)
	_, c.Maintain = v.(Maintainer)
	_, c.Warm = v.(Warmable)
	_, c.Scan = v.(Scanner)
	_, c.MultiSearch = v.(MultiSearcher)
	return c
}
