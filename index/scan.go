package index

import (
	"errors"
)

// ErrInvalidRange reports an inverted scan range (lo > hi). Every
// backend's Scan and RangeScan return it, so range validation behaves
// identically across the registry.
var ErrInvalidRange = errors.New("index: invalid range")

// Iterator streams the tuples of a range scan, one at a time, in the
// backend's scan order. The contract:
//
//   - Next advances to the next tuple and reports whether one exists;
//     after it returns false the iterator is exhausted (check Err).
//   - Tuple returns the current tuple — a copy owned by the caller,
//     valid after further Next calls.
//   - Stats reports the cost accounting accumulated so far; after each
//     Next it reflects exactly the index and data pages paid to reach
//     the current tuple, so early termination is priced per step.
//   - Close releases whatever the iterator holds (buffers, and for the
//     BF-Tree its epoch reader registration). It is idempotent, safe
//     mid-scan, and must be called when abandoning iteration early;
//     a drained iterator has already released its resources, but
//     closing it anyway is harmless.
//
// Iterators are not safe for concurrent use; open one per goroutine.
type Iterator interface {
	Next() bool
	Tuple() []byte
	Stats() ProbeStats
	Err() error
	Close() error
}

// Scanner is the streaming-scan capability: Scan opens an Iterator
// over every tuple whose indexed field lies in [lo, hi]. A LIMIT-k
// consumer that stops pulling after k tuples pays only for the pages
// behind those tuples — the early-termination shape the materialized
// RangeScan (which is exactly a drained Scan) cannot offer.
type Scanner interface {
	Scan(lo, hi uint64) (Iterator, error)
}

// MultiSearcher is the batched-probe capability: MultiSearch answers a
// batch of point lookups in one pass. Implementations sort and dedup
// the keys, share index descents and filter probes across adjacent
// keys, and fetch each data page at most once for the whole batch, so
// per-key I/O falls as the batch grows. The Result holds every tuple
// matching any batch key (grouped by key or by page, per backend) and
// the batch's total cost.
type MultiSearcher interface {
	MultiSearch(keys []uint64) (*Result, error)
}

// Scan opens a streaming scan on ix, or returns ErrUnsupported when the
// backend lacks the Scanner capability.
func Scan(ix Index, lo, hi uint64) (Iterator, error) {
	s, ok := ix.(Scanner)
	if !ok {
		return nil, ErrUnsupported
	}
	return s.Scan(lo, hi)
}

// MultiSearch runs a batched probe on ix, or returns ErrUnsupported
// when the backend lacks the MultiSearcher capability.
func MultiSearch(ix Index, keys []uint64) (*Result, error) {
	m, ok := ix.(MultiSearcher)
	if !ok {
		return nil, ErrUnsupported
	}
	return m.MultiSearch(keys)
}

// Drain consumes an iterator to completion and returns the materialized
// Result. It closes the iterator in all cases.
func Drain(it Iterator) (*Result, error) {
	defer it.Close()
	res := &Result{}
	for it.Next() {
		res.Tuples = append(res.Tuples, it.Tuple())
	}
	res.Stats = it.Stats()
	if err := it.Err(); err != nil {
		return nil, err
	}
	return res, nil
}

// scanRange is the one slice-RangeScan code path: open the backend's
// streaming cursor and drain it.
func scanRange(s Scanner, lo, hi uint64) (*Result, error) {
	it, err := s.Scan(lo, hi)
	if err != nil {
		return nil, err
	}
	return Drain(it)
}

// addStats accumulates s into dst (the ProbeStats alias keeps its add
// method unexported in internal/core).
func addStats(dst *ProbeStats, s ProbeStats) {
	dst.IndexReads += s.IndexReads
	dst.BFProbes += s.BFProbes
	dst.CandidatePages += s.CandidatePages
	dst.DataPagesRead += s.DataPagesRead
	dst.FalseReads += s.FalseReads
}
