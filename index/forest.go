package index

import (
	"bftree/internal/forest"
)

func init() {
	Register(Backend{
		Name:              "bfforest",
		Approximate:       true,
		ConcurrentWriters: true,
		BulkLoad: func(store *Store, file *File, fieldIdx int, opts Options) (Index, error) {
			o := opts.BFTree
			if o.FPP == 0 {
				o.FPP = defaultBFTreeFPP
			}
			// The registry's one Maintenance policy configures every
			// shard: the forest splits IncrementalBatch across shards
			// so the per-pass compaction budget is forest-wide.
			f, err := forest.New(store, file, fieldIdx, forest.Options{
				Shards:      opts.ForestShards,
				Hash:        opts.ForestHash,
				Tree:        o,
				Maintenance: &o.Maintenance,
			})
			if err != nil {
				return nil, err
			}
			return &forestIndex{f: f}, nil
		},
		Open: func(store *Store, file *File, meta []byte) (Index, error) {
			f, err := forest.Open(store, file, meta)
			if err != nil {
				return nil, err
			}
			return &forestIndex{f: f}, nil
		},
	})
}

// forestIndex adapts forest.Forest — a sharded set of BF-Trees behind
// the one-tree API (DESIGN.md §7). The forest already speaks the Result
// and cursor shapes, so every method delegates; it implements Scanner,
// MultiSearcher, Inserter, Deleter, Persister, Maintainer and Warmable.
// Structural writers on distinct shards never contend, which is the
// backend's whole reason to exist.
type forestIndex struct {
	f *forest.Forest
}

func (ix *forestIndex) Search(key uint64) (*Result, error)      { return ix.f.Search(key) }
func (ix *forestIndex) SearchFirst(key uint64) (*Result, error) { return ix.f.SearchFirst(key) }

func (ix *forestIndex) RangeScan(lo, hi uint64) (*Result, error) {
	return scanRange(ix, lo, hi)
}

// Scan streams across shards in key order: range forests chain shard
// cursors lazily (LIMIT-k never opens shards past its k-th tuple), hash
// forests k-way merge ownership-filtered shard streams. Each shard
// cursor holds its own epoch registration.
func (ix *forestIndex) Scan(lo, hi uint64) (Iterator, error) {
	if lo > hi {
		return nil, ErrInvalidRange
	}
	it, err := ix.f.Scan(lo, hi)
	if err != nil {
		return nil, err
	}
	return it, nil
}

// MultiSearch fans the batch out by partition and runs the per-shard
// batches concurrently, each sharing descents within its shard.
func (ix *forestIndex) MultiSearch(keys []uint64) (*Result, error) {
	return ix.f.MultiSearch(keys)
}

func (ix *forestIndex) Close() error { return ix.f.Close() }

func (ix *forestIndex) Stats() Stats {
	return Stats{
		Backend:      "bfforest",
		Pages:        ix.f.NumNodes(),
		SizeBytes:    ix.f.SizeBytes(),
		Height:       ix.f.Height(),
		Entries:      ix.f.NumKeys(),
		Keys:         ix.f.NumKeys(),
		EffectiveFPP: ix.f.EffectiveFPP(),
	}
}

// Insert adds a key→page association to the key's owner shard.
func (ix *forestIndex) Insert(key uint64, ref Ref) error { return ix.f.Insert(key, ref.Page) }

// Delete removes a key→page association from the key's owner shard.
func (ix *forestIndex) Delete(key uint64, ref Ref) error { return ix.f.Delete(key, ref.Page) }

func (ix *forestIndex) MarshalMeta() []byte { return ix.f.MarshalMeta() }

// Maintain runs one pass on every shard; MaintenanceStats sums the
// shard maintainers' accounting (Running reports any live maintainer).
func (ix *forestIndex) Maintain() error { return ix.f.Maintain() }
func (ix *forestIndex) MaintenanceStats() MaintenanceStats {
	return ix.f.MaintenanceStats()
}

func (ix *forestIndex) InternalPages() ([]PageID, error) { return ix.f.InternalPages() }
