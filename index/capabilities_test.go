package index_test

import (
	"testing"

	"bftree/index"
	"bftree/internal/device"
	"bftree/internal/pagestore"
)

// TestCapabilitiesMatchAssertions pins the CapSet helper to the ground
// truth: for every registered backend, Capabilities must agree with the
// direct type assertions the rest of the codebase performs.
func TestCapabilitiesMatchAssertions(t *testing.T) {
	file, _ := goldenRelation(t, 300)
	for _, name := range index.Backends() {
		idxStore := pagestore.New(device.New(device.Memory, 4096))
		ix, err := index.New(name, idxStore, file, 0, index.Options{})
		if err != nil {
			t.Fatal(err)
		}
		got := index.Capabilities(ix)
		want := index.CapSet{}
		_, want.Insert = ix.(index.Inserter)
		_, want.Delete = ix.(index.Deleter)
		_, want.Flush = ix.(index.Flusher)
		_, want.Persist = ix.(index.Persister)
		_, want.Maintain = ix.(index.Maintainer)
		_, want.Warm = ix.(index.Warmable)
		_, want.Scan = ix.(index.Scanner)
		_, want.MultiSearch = ix.(index.MultiSearcher)
		if got != want {
			t.Errorf("%s: Capabilities = %+v, want %+v", name, got, want)
		}
		ix.Close()
	}
	// A non-index value has no capabilities.
	if got := (index.Capabilities(struct{}{})); got != (index.CapSet{}) {
		t.Errorf("empty value reported capabilities: %+v", got)
	}
}
