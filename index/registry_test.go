package index_test

import (
	"errors"
	"testing"

	"bftree/index"
	"bftree/internal/device"
	"bftree/internal/pagestore"
)

func TestRegistryHasAllFourBackends(t *testing.T) {
	want := []string{"bftree", "bptree", "fdtree", "hash"}
	got := index.Backends()
	for _, name := range want {
		if _, ok := index.Lookup(name); !ok {
			t.Errorf("backend %q not registered (have %v)", name, got)
		}
	}
	if len(got) < len(want) {
		t.Errorf("Backends() = %v, want at least %v", got, want)
	}
}

func TestNewUnknownBackend(t *testing.T) {
	file, _ := goldenRelation(t, 30)
	store := pagestore.New(device.New(device.Memory, 4096))
	if _, err := index.New("btree2000", store, file, 0, index.Options{}); !errors.Is(err, index.ErrUnknownBackend) {
		t.Errorf("err = %v, want ErrUnknownBackend", err)
	}
	if _, err := index.Open("btree2000", store, file, nil); !errors.Is(err, index.ErrUnknownBackend) {
		t.Errorf("Open err = %v, want ErrUnknownBackend", err)
	}
}

func TestNewByFieldUnknownField(t *testing.T) {
	file, _ := goldenRelation(t, 30)
	store := pagestore.New(device.New(device.Memory, 4096))
	_, err := index.NewByField("bptree", store, file, "no_such_field", index.Options{})
	if !errors.Is(err, index.ErrUnknownField) {
		t.Errorf("errors.Is(err, ErrUnknownField) = false for %v", err)
	}
	// The field-index factory guards its range the same way.
	if _, err := index.New("bptree", store, file, 99, index.Options{}); !errors.Is(err, index.ErrUnknownField) {
		t.Errorf("out-of-range field index: err = %v, want ErrUnknownField", err)
	}
	// A declared field builds.
	ix, err := index.NewByField("bptree", store, file, "seq", index.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ix.Close()
}
