package index

import (
	"bftree/internal/bptree"
	"bftree/internal/hashindex"
	"bftree/internal/heapfile"
)

func init() {
	Register(Backend{
		Name:           "hash",
		MemoryResident: true,
		BulkLoad: func(store *Store, file *File, fieldIdx int, opts Options) (Index, error) {
			// The paper's hash competitor is memory-resident with one
			// entry per tuple regardless of attribute cardinality; the
			// store and DedupKeys are intentionally unused.
			entries, err := bptree.PKEntries(file, fieldIdx)
			if err != nil {
				return nil, err
			}
			return &hashIndex{idx: hashindex.Build(entries), file: file, fieldIdx: fieldIdx}, nil
		},
	})
}

// hashIndex adapts the in-memory hash baseline: constant-time bucket
// probes cost no index I/O; only the data-page fetches for matching
// tuples reach a device. It implements Inserter and Deleter.
type hashIndex struct {
	idx      *hashindex.Index
	file     *heapfile.File
	fieldIdx int
}

func (ix *hashIndex) Search(key uint64) (*Result, error)      { return ix.search(key, false) }
func (ix *hashIndex) SearchFirst(key uint64) (*Result, error) { return ix.search(key, true) }

func (ix *hashIndex) search(key uint64, firstOnly bool) (*Result, error) {
	res := &Result{}
	refs := ix.idx.Search(key)
	if len(refs) == 0 {
		return res, nil
	}
	if err := fetchPointRefs(ix.file, ix.fieldIdx, key, refs, firstOnly, res); err != nil {
		return nil, err
	}
	return res, nil
}

// RangeScan answers through the bucket walk of hashindex.SearchRange —
// a capability the paper's hash competitor lacks; see its doc comment
// for the cost model.
func (ix *hashIndex) RangeScan(lo, hi uint64) (*Result, error) {
	return scanRange(ix, lo, hi)
}

// Scan streams the bucket-walk answer: the reference list is built up
// front (a memory operation costing no index I/O), then data pages are
// read only as the consumer pulls.
func (ix *hashIndex) Scan(lo, hi uint64) (Iterator, error) {
	if lo > hi {
		return nil, ErrInvalidRange
	}
	refs := ix.idx.SearchRange(lo, hi)
	return newRefIter(newFetcher(ix.file, ix.fieldIdx), &sliceRefs{refs: refs}, inRange(lo, hi)), nil
}

// MultiSearch groups the batch by bucket: keys are sorted and deduped,
// each bucket probed once (no index I/O to share), and each referenced
// data page read once for the whole batch.
func (ix *hashIndex) MultiSearch(keys []uint64) (*Result, error) {
	groups := ix.idx.MultiSearch(keys)
	return multiSearchGroups(ix.file, ix.fieldIdx, groups, false, ProbeStats{})
}

func (ix *hashIndex) Stats() Stats {
	return Stats{
		Backend:   "hash",
		SizeBytes: ix.idx.SizeBytes(),
		Height:    1,
		Entries:   ix.idx.NumEntries(),
		Keys:      uint64(ix.idx.NumKeys()),
	}
}

func (ix *hashIndex) Close() error { return nil }

func (ix *hashIndex) Insert(key uint64, ref Ref) error {
	ix.idx.Insert(key, ref)
	return nil
}

// Delete removes one key→tuple mapping; deleting an absent mapping is a
// tolerable no-op, matching the hash map semantics.
func (ix *hashIndex) Delete(key uint64, ref Ref) error {
	ix.idx.Delete(key, ref)
	return nil
}
