package index

import (
	"bftree/internal/fdtree"
	"bftree/internal/heapfile"
)

func init() {
	Register(Backend{
		Name: "fdtree",
		BulkLoad: func(store *Store, file *File, fieldIdx int, opts Options) (Index, error) {
			entries, err := layoutEntries(file, fieldIdx, opts.DedupKeys)
			if err != nil {
				return nil, err
			}
			tr, err := fdtree.BulkLoad(store, entries, opts.FDTree)
			if err != nil {
				return nil, err
			}
			return &fdIndex{tree: tr, store: store, file: file, fieldIdx: fieldIdx, dedup: opts.DedupKeys}, nil
		},
	})
}

// fdIndex adapts the FD-Tree comparator: the fractional-cascade search
// (one run page per on-device level) yields tuple references, which the
// shared fetch path resolves into the Result shape. It implements
// Scanner, MultiSearcher, Inserter and Flusher (the memory-resident
// head tree).
type fdIndex struct {
	tree     *fdtree.Tree
	store    *Store
	file     *heapfile.File
	fieldIdx int
	dedup    bool
}

func (ix *fdIndex) Search(key uint64) (*Result, error)      { return ix.search(key, false) }
func (ix *fdIndex) SearchFirst(key uint64) (*Result, error) { return ix.search(key, true) }

func (ix *fdIndex) search(key uint64, firstOnly bool) (*Result, error) {
	refs, sstats, err := ix.tree.Search(key)
	if err != nil {
		return nil, err
	}
	res := &Result{Stats: ProbeStats{IndexReads: sstats.PagesRead}}
	if len(refs) == 0 {
		return res, nil
	}
	if ix.dedup {
		err = fetchPointOrdered(ix.file, ix.fieldIdx, key, refs[0].Page, firstOnly, res)
	} else {
		err = fetchPointRefs(ix.file, ix.fieldIdx, key, refs, firstOnly, res)
	}
	if err != nil {
		return nil, err
	}
	return res, nil
}

func (ix *fdIndex) RangeScan(lo, hi uint64) (*Result, error) {
	return scanRange(ix, lo, hi)
}

// Scan streams the k-way merge over the head tree and per-level run
// cursors; opening pays each run's binary-search positioning, after
// which run and data pages are read only as the consumer pulls.
func (ix *fdIndex) Scan(lo, hi uint64) (Iterator, error) {
	if lo > hi {
		return nil, ErrInvalidRange
	}
	c, err := ix.tree.Scan(lo, hi)
	if err != nil {
		return nil, err
	}
	if !ix.dedup {
		return newRefIter(newFetcher(ix.file, ix.fieldIdx), &fdRefs{c: c}, inRange(lo, hi)), nil
	}
	if !c.Next() {
		reads := c.Stats().PagesRead
		errScan := c.Err()
		c.Close()
		if errScan != nil {
			return nil, errScan
		}
		return &emptyIter{stats: ProbeStats{IndexReads: reads}}, nil
	}
	start := c.Ref().Page
	reads := c.Stats().PagesRead
	c.Close()
	return newOrderedIter(newFetcher(ix.file, ix.fieldIdx), start,
		inRange(lo, hi), beyondHi(hi), ProbeStats{IndexReads: reads}), nil
}

// MultiSearch shares run-page reads across the sorted batch through the
// fractional cascade and reads each flagged data page once.
func (ix *fdIndex) MultiSearch(keys []uint64) (*Result, error) {
	groups, sstats, err := ix.tree.MultiSearch(keys)
	if err != nil {
		return nil, err
	}
	return multiSearchGroups(ix.file, ix.fieldIdx, groups, ix.dedup,
		ProbeStats{IndexReads: sstats.PagesRead})
}

func (ix *fdIndex) Stats() Stats {
	pageSize := uint64(ix.store.PageSize())
	size := ix.tree.SizeBytes()
	return Stats{
		Backend:   "fdtree",
		Pages:     size / pageSize,
		SizeBytes: size,
		Height:    ix.tree.Levels() + 1, // head tree + on-device runs
		Entries:   ix.tree.NumRecords(),
	}
}

func (ix *fdIndex) Close() error { return nil }

func (ix *fdIndex) Insert(key uint64, ref Ref) error { return ix.tree.Insert(key, ref) }

// Flush forces the memory-resident head tree's records onto the device
// through the merge cascade.
func (ix *fdIndex) Flush() error { return ix.tree.FlushHead() }
