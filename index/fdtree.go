package index

import (
	"bftree/internal/fdtree"
	"bftree/internal/heapfile"
)

func init() {
	Register(Backend{
		Name: "fdtree",
		BulkLoad: func(store *Store, file *File, fieldIdx int, opts Options) (Index, error) {
			entries, err := layoutEntries(file, fieldIdx, opts.DedupKeys)
			if err != nil {
				return nil, err
			}
			tr, err := fdtree.BulkLoad(store, entries, opts.FDTree)
			if err != nil {
				return nil, err
			}
			return &fdIndex{tree: tr, store: store, file: file, fieldIdx: fieldIdx, dedup: opts.DedupKeys}, nil
		},
	})
}

// fdIndex adapts the FD-Tree comparator: the fractional-cascade search
// (one run page per on-device level) yields tuple references, which the
// shared fetch path resolves into the Result shape. It implements
// Inserter and Flusher (the memory-resident head tree).
type fdIndex struct {
	tree     *fdtree.Tree
	store    *Store
	file     *heapfile.File
	fieldIdx int
	dedup    bool
}

func (ix *fdIndex) Search(key uint64) (*Result, error)      { return ix.search(key, false) }
func (ix *fdIndex) SearchFirst(key uint64) (*Result, error) { return ix.search(key, true) }

func (ix *fdIndex) search(key uint64, firstOnly bool) (*Result, error) {
	refs, sstats, err := ix.tree.Search(key)
	if err != nil {
		return nil, err
	}
	res := &Result{Stats: ProbeStats{IndexReads: sstats.PagesRead}}
	if len(refs) == 0 {
		return res, nil
	}
	if ix.dedup {
		err = fetchPointOrdered(ix.file, ix.fieldIdx, key, refs[0].Page, firstOnly, res)
	} else {
		err = fetchPointRefs(ix.file, ix.fieldIdx, key, refs, firstOnly, res)
	}
	if err != nil {
		return nil, err
	}
	return res, nil
}

func (ix *fdIndex) RangeScan(lo, hi uint64) (*Result, error) {
	refs, sstats, err := ix.tree.RangeScan(lo, hi)
	if err != nil {
		return nil, err
	}
	res := &Result{Stats: ProbeStats{IndexReads: sstats.PagesRead}}
	if len(refs) == 0 {
		return res, nil
	}
	if ix.dedup {
		err = fetchRangeOrdered(ix.file, ix.fieldIdx, lo, hi, refs[0].Page, res)
	} else {
		err = fetchRangeRefs(ix.file, ix.fieldIdx, lo, hi, refs, res)
	}
	if err != nil {
		return nil, err
	}
	return res, nil
}

func (ix *fdIndex) Stats() Stats {
	pageSize := uint64(ix.store.PageSize())
	size := ix.tree.SizeBytes()
	return Stats{
		Backend:   "fdtree",
		Pages:     size / pageSize,
		SizeBytes: size,
		Height:    ix.tree.Levels() + 1, // head tree + on-device runs
		Entries:   ix.tree.NumRecords(),
	}
}

func (ix *fdIndex) Close() error { return nil }

func (ix *fdIndex) Insert(key uint64, ref Ref) error { return ix.tree.Insert(key, ref) }

// Flush forces the memory-resident head tree's records onto the device
// through the merge cascade.
func (ix *fdIndex) Flush() error { return ix.tree.FlushHead() }
