package index

import (
	"fmt"
	"sort"
	"sync"

	"bftree/internal/core"
	"bftree/internal/fdtree"
	"bftree/internal/heapfile"
)

// Options configures a build through the registry. It is the union of
// every backend's knobs: each backend reads the fields it understands
// and ignores the rest (the capability matrix in DESIGN.md §5 says
// which). The zero value builds every backend with sensible defaults.
type Options struct {
	// BFTree carries the BF-Tree build options. A zero FPP selects the
	// 1e-3 design point the quickstart and TPCH experiments use.
	BFTree core.Options
	// FDTree carries the FD-Tree head capacity and level ratio.
	FDTree fdtree.Options
	// FillFactor is the B+-Tree leaf fill factor; 0 selects 1.0 (the
	// paper's read-only builds).
	FillFactor float64
	// DedupKeys builds the exact tree backends with one entry per
	// distinct key instead of one per tuple — the paper's baseline
	// layout for ordered non-unique attributes. Probes then locate the
	// first occurrence and scan forward through the duplicates
	// (Section 6.3). Ignored by the hash and BF-Tree backends, which
	// have no per-tuple entries to deduplicate.
	DedupKeys bool
	// BufferedInserts, when > 0, puts the BF-Tree backend in the
	// update-intensive buffered mode of Section 4.2 with that buffer
	// capacity: Insert batches in memory, Flush applies leaf-by-leaf.
	BufferedInserts int
	// ForestShards sets the bfforest backend's shard count; 0 selects
	// the forest package default (4). Ignored by single-tree backends.
	ForestShards int
	// ForestHash switches the bfforest backend from range partitioning
	// (the default, ordered shards, concatenating scans) to hash
	// partitioning (skew-resistant point routing, k-way merged scans).
	ForestHash bool
}

// Backend is one registered index implementation: a name, the build
// entry points, and the declarative traits the generic bench plumbing
// keys on.
type Backend struct {
	// Name keys the registry (e.g. "bftree", "bptree", "fdtree",
	// "hash"). Required and unique.
	Name string
	// Approximate marks backends whose probe cost (not result) depends
	// on a false positive probability; the fpp sweeps of the paper's
	// figures apply only to these.
	Approximate bool
	// MemoryResident marks backends whose index structure lives in
	// memory: probes charge no index-device I/O, and the index-device
	// axis of the storage configurations does not apply.
	MemoryResident bool
	// ConcurrentWriters marks backends whose capability writers
	// (Insert/Delete) are safe to run concurrently with probes and each
	// other, per the DESIGN.md §3 contract. Backends without it are
	// read-safe after build only while no writer runs; the concurrent
	// conformance suite keys its writer goroutines on this.
	ConcurrentWriters bool
	// BulkLoad builds the index over the fieldIdx-th field of file,
	// writing any index pages to store. Required.
	BulkLoad func(store *Store, file *File, fieldIdx int, opts Options) (Index, error)
	// Open reopens a previously built index from a Persister's
	// MarshalMeta blob. Nil when the backend does not persist.
	Open func(store *Store, file *File, meta []byte) (Index, error)
}

var (
	regMu    sync.RWMutex
	registry = map[string]Backend{}
)

// Register adds a backend to the registry. It panics on an empty or
// duplicate name — registration is package wiring, not runtime input.
func Register(b Backend) {
	if b.Name == "" || b.BulkLoad == nil {
		panic("index: Register needs a name and a BulkLoad")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[b.Name]; dup {
		panic("index: backend " + b.Name + " registered twice")
	}
	registry[b.Name] = b
}

// Backends returns the registered names in sorted order.
func Backends() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Lookup returns the backend registered under name.
func Lookup(name string) (Backend, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	b, ok := registry[name]
	return b, ok
}

// New bulk-loads a registered backend over the fieldIdx-th field of
// file — the one factory every experiment, example and (future) serving
// layer builds through.
func New(name string, store *Store, file *File, fieldIdx int, opts Options) (Index, error) {
	b, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("%w: %q (have %v)", ErrUnknownBackend, name, Backends())
	}
	if fieldIdx < 0 || fieldIdx >= len(file.Schema().Fields) {
		return nil, fmt.Errorf("%w: field index %d of %d", ErrUnknownField, fieldIdx, len(file.Schema().Fields))
	}
	return b.BulkLoad(store, file, fieldIdx, opts)
}

// NewByField is New addressing the indexed attribute by name; an
// undeclared name reports *heapfile.UnknownFieldError, matching
// ErrUnknownField under errors.Is.
func NewByField(name string, store *Store, file *File, field string, opts Options) (Index, error) {
	fieldIdx := file.Schema().FieldIndex(field)
	if fieldIdx < 0 {
		return nil, &heapfile.UnknownFieldError{Field: field}
	}
	return New(name, store, file, fieldIdx, opts)
}

// Open reopens a persisted index from a Persister's MarshalMeta blob.
// Backends without persistence report ErrUnsupported.
func Open(name string, store *Store, file *File, meta []byte) (Index, error) {
	b, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("%w: %q (have %v)", ErrUnknownBackend, name, Backends())
	}
	if b.Open == nil {
		return nil, fmt.Errorf("%w: backend %q does not persist", ErrUnsupported, name)
	}
	return b.Open(store, file, meta)
}
