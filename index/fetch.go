package index

import (
	"sort"

	"bftree/internal/device"
	"bftree/internal/heapfile"
)

// The helpers below turn the exact backends' tuple references into the
// shared Result shape: fetch the referenced data pages, keep the
// matching tuples, and account every page read the way the BF-Tree's
// own probe path does (DataPagesRead, FalseReads). Two access patterns
// cover all backends: per-tuple reference lists (PK and hash layouts)
// and the ordered scan from a first occurrence (deduplicated layouts,
// Section 6.3 of the paper). Both funnel through collectPage, so the
// read/match/false-read accounting lives in exactly one place.

// appendTuple copies tup into res (results never alias page buffers).
func appendTuple(res *Result, tup []byte) {
	cp := make([]byte, len(tup))
	copy(cp, tup)
	res.Tuples = append(res.Tuples, cp)
}

// collectPage reads one data page and appends the tuples whose indexed
// field satisfies match, charging one DataPagesRead and a FalseRead
// when nothing on the page matched. It reports the number of matches,
// whether any tuple lay beyond the probe (per the beyond predicate —
// the ordered-scan stop signal), and stops after the first match when
// firstOnly is set.
func collectPage(file *heapfile.File, fieldIdx int, pid device.PageID, firstOnly bool,
	match, beyond func(uint64) bool, res *Result) (matched int, past bool, err error) {
	pageTuples, err := file.ReadPageTuples(pid)
	if err != nil {
		return 0, false, err
	}
	res.Stats.DataPagesRead++
	for _, tup := range pageTuples {
		v := file.Schema().Get(tup, fieldIdx)
		if match(v) {
			matched++
			appendTuple(res, tup)
			if firstOnly {
				return matched, past, nil
			}
			continue
		}
		if beyond(v) {
			past = true
		}
	}
	if matched == 0 {
		res.Stats.FalseReads++
	}
	return matched, past, nil
}

// scanOrderedPages resolves a deduplicated index's probe over an
// ordered relation: consecutive data pages from the first occurrence
// are read while they keep matching — "every probe with a positive
// match will read all the consecutive tuples that have the same value"
// (Section 6.3) — stopping when a page yields nothing or the keys move
// beyond the probe.
func scanOrderedPages(file *heapfile.File, fieldIdx int, start device.PageID, firstOnly bool,
	match, beyond func(uint64) bool, res *Result) error {
	last := file.FirstPage() + device.PageID(file.NumPages()) - 1
	for pid := start; pid <= last; pid++ {
		matched, past, err := collectPage(file, fieldIdx, pid, firstOnly, match, beyond, res)
		if err != nil {
			return err
		}
		if firstOnly && matched > 0 {
			return nil
		}
		if matched == 0 || past {
			return nil
		}
	}
	return nil
}

// fetchPointOrdered is the ordered scan for a point probe: duplicates
// of key are contiguous from the first occurrence.
func fetchPointOrdered(file *heapfile.File, fieldIdx int, key uint64, start device.PageID, firstOnly bool, res *Result) error {
	return scanOrderedPages(file, fieldIdx, start, firstOnly,
		func(v uint64) bool { return v == key },
		func(v uint64) bool { return v > key }, res)
}

// fetchRangeOrdered is the ordered scan for a range: sequential pages
// from the range's first occurrence until the keys move past hi.
func fetchRangeOrdered(file *heapfile.File, fieldIdx int, lo, hi uint64, start device.PageID, res *Result) error {
	return scanOrderedPages(file, fieldIdx, start, false,
		func(v uint64) bool { return v >= lo && v <= hi },
		func(v uint64) bool { return v > hi }, res)
}

// never reports no tuple as beyond the probe — reference-list fetches
// visit exactly the referenced pages and need no ordered-stop signal.
func never(uint64) bool { return false }

// fetchPointRefs resolves a per-tuple reference list for key:
// consecutive references to the same page cost one read, exactly the
// sorted access list the paper hands to the device. firstOnly stops at
// the first match.
func fetchPointRefs(file *heapfile.File, fieldIdx int, key uint64, refs []Ref, firstOnly bool, res *Result) error {
	last := device.InvalidPage
	for _, r := range refs {
		if r.Page == last {
			continue // page already fetched; its matches are collected
		}
		last = r.Page
		matched, _, err := collectPage(file, fieldIdx, r.Page, firstOnly,
			func(v uint64) bool { return v == key }, never, res)
		if err != nil {
			return err
		}
		if firstOnly && matched > 0 {
			return nil
		}
	}
	return nil
}

// fetchRangeRefs resolves a per-tuple reference list for a range scan:
// each distinct referenced page is read once, ascending, and its
// in-range tuples collected.
func fetchRangeRefs(file *heapfile.File, fieldIdx int, lo, hi uint64, refs []Ref, res *Result) error {
	seen := make(map[device.PageID]bool, len(refs))
	pages := make([]device.PageID, 0, len(refs))
	for _, r := range refs {
		if !seen[r.Page] {
			seen[r.Page] = true
			pages = append(pages, r.Page)
		}
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	inRange := func(v uint64) bool { return v >= lo && v <= hi }
	for _, pid := range pages {
		if _, _, err := collectPage(file, fieldIdx, pid, false, inRange, never, res); err != nil {
			return err
		}
	}
	return nil
}
