package index

import (
	"sort"

	"bftree/internal/bptree"
	"bftree/internal/device"
	"bftree/internal/fdtree"
	"bftree/internal/heapfile"
)

// The exact backends (B+-Tree, FD-Tree, hash) answer probes with tuple
// references; everything here turns those references into streamed
// tuples with the same page-read accounting the BF-Tree's own probe
// path uses. One primitive does all the reading — fetcher.visit — and
// two iterators cover every access pattern: refIter resolves a stream
// of references (PK and hash layouts, each distinct page read once),
// orderedIter scans consecutive pages from a first occurrence
// (deduplicated layouts, Section 6.3 of the paper). The materialized
// Search/RangeScan paths and the streaming Scan/MultiSearch paths all
// drain these same iterators.

// fetcher reads data pages on behalf of the iterators. With a cache
// (newBatchFetcher) each page is decoded and charged once per batch —
// later visits are free, the page-share of MultiSearch.
type fetcher struct {
	file     *heapfile.File
	fieldIdx int
	cache    map[PageID][][]byte
}

func newFetcher(file *heapfile.File, fieldIdx int) *fetcher {
	return &fetcher{file: file, fieldIdx: fieldIdx}
}

func newBatchFetcher(file *heapfile.File, fieldIdx int) *fetcher {
	return &fetcher{file: file, fieldIdx: fieldIdx, cache: make(map[PageID][][]byte)}
}

// visit reads one data page (through the batch cache when present) and
// returns copies of the tuples whose indexed field satisfies match,
// plus whether any tuple lay beyond the probe (the ordered-scan stop
// signal; nil beyond never stops). Physical reads charge one
// DataPagesRead, and a FalseRead when nothing matched — cache hits
// charge nothing, they cost no I/O.
func (f *fetcher) visit(pid PageID, match, beyond func(uint64) bool,
	stats *ProbeStats) (matched [][]byte, past bool, err error) {
	tuples, ok := f.cache[pid]
	if !ok {
		tuples, err = f.file.ReadPageTuples(pid)
		if err != nil {
			return nil, false, err
		}
		stats.DataPagesRead++
		if f.cache != nil {
			f.cache[pid] = tuples
		}
	}
	for _, tup := range tuples {
		v := f.file.Schema().Get(tup, f.fieldIdx)
		if match(v) {
			cp := make([]byte, len(tup))
			copy(cp, tup)
			matched = append(matched, cp)
			continue
		}
		if beyond != nil && beyond(v) {
			past = true
		}
	}
	if !ok && len(matched) == 0 {
		stats.FalseReads++
	}
	return matched, past, nil
}

// lastPage returns the final data page of the fetched file.
func (f *fetcher) lastPage() PageID {
	return f.file.FirstPage() + device.PageID(f.file.NumPages()) - 1
}

// drainInto consumes an iterator into res, accumulating its stats;
// firstOnly stops after the first tuple (the SearchFirst early exit).
func drainInto(it Iterator, firstOnly bool, res *Result) error {
	defer it.Close()
	for it.Next() {
		res.Tuples = append(res.Tuples, it.Tuple())
		if firstOnly {
			break
		}
	}
	addStats(&res.Stats, it.Stats())
	return it.Err()
}

// emptyIter is an exhausted Iterator that still reports the index-side
// cost of discovering there was nothing to fetch.
type emptyIter struct{ stats ProbeStats }

func (it *emptyIter) Next() bool        { return false }
func (it *emptyIter) Tuple() []byte     { return nil }
func (it *emptyIter) Stats() ProbeStats { return it.stats }
func (it *emptyIter) Err() error        { return nil }
func (it *emptyIter) Close() error      { return nil }

// orderedIter streams the ordered-scan resolution of a deduplicated
// index probe: consecutive data pages from the first occurrence are
// read while they keep matching — "every probe with a positive match
// will read all the consecutive tuples that have the same value"
// (Section 6.3) — stopping at a page that yields nothing or whose keys
// move beyond the probe. stats is seeded with the index-side charges of
// locating the first occurrence.
type orderedIter struct {
	f             *fetcher
	pid, last     PageID
	match, beyond func(uint64) bool
	buf           [][]byte
	i             int
	stats         ProbeStats
	err           error
	done          bool // no pages beyond the buffer
}

func newOrderedIter(f *fetcher, start PageID, match, beyond func(uint64) bool, idx ProbeStats) *orderedIter {
	return &orderedIter{f: f, pid: start, last: f.lastPage(), match: match, beyond: beyond, i: -1, stats: idx}
}

func (it *orderedIter) Next() bool {
	if it.err != nil {
		return false
	}
	if it.i+1 < len(it.buf) {
		it.i++
		return true
	}
	for {
		if it.done || it.pid > it.last {
			it.done = true
			return false
		}
		matched, past, err := it.f.visit(it.pid, it.match, it.beyond, &it.stats)
		it.pid++
		if err != nil {
			it.err = err
			it.done = true
			return false
		}
		if len(matched) == 0 {
			it.done = true
			return false
		}
		if past {
			it.done = true
		}
		it.buf, it.i = matched, 0
		return true
	}
}

func (it *orderedIter) Tuple() []byte {
	if it.i < 0 || it.i >= len(it.buf) {
		return nil
	}
	return it.buf[it.i]
}

func (it *orderedIter) Stats() ProbeStats { return it.stats }
func (it *orderedIter) Err() error        { return it.err }
func (it *orderedIter) Close() error {
	it.done = true
	it.buf, it.i = nil, -1
	return nil
}

// refSource feeds an iterator tuple references plus the index-side cost
// of producing them so far. Sources over backend cursors pull lazily —
// an abandoned iterator never pays for index pages it didn't reach.
type refSource interface {
	next() (Ref, bool)
	reads() int // index pages read so far
	err() error
	close()
}

// sliceRefs serves a pre-materialized reference list (hash buckets,
// point-probe answers) whose index cost is already known.
type sliceRefs struct {
	refs     []Ref
	i        int
	idxReads int
}

func (s *sliceRefs) next() (Ref, bool) {
	if s.i >= len(s.refs) {
		return Ref{}, false
	}
	r := s.refs[s.i]
	s.i++
	return r, true
}
func (s *sliceRefs) reads() int { return s.idxReads }
func (s *sliceRefs) err() error { return nil }
func (s *sliceRefs) close()     {}

// bpRefs adapts a B+-Tree range cursor.
type bpRefs struct{ c *bptree.Cursor }

func (s *bpRefs) next() (Ref, bool) {
	if !s.c.Next() {
		return Ref{}, false
	}
	return s.c.Entry().Ref, true
}
func (s *bpRefs) reads() int { return s.c.Reads() }
func (s *bpRefs) err() error { return s.c.Err() }
func (s *bpRefs) close()     { s.c.Close() }

// fdRefs adapts an FD-Tree range cursor.
type fdRefs struct{ c *fdtree.Cursor }

func (s *fdRefs) next() (Ref, bool) {
	if !s.c.Next() {
		return Ref{}, false
	}
	return s.c.Ref(), true
}
func (s *fdRefs) reads() int { return s.c.Stats().PagesRead }
func (s *fdRefs) err() error { return s.c.Err() }
func (s *fdRefs) close()     { s.c.Close() }

// refIter streams the tuples behind a reference stream: each distinct
// referenced page is read once (first appearance order) and all of its
// matching tuples are yielded, so later references to the same page
// cost nothing — the sorted access list the paper hands to the device,
// pull-based.
type refIter struct {
	f     *fetcher
	src   refSource
	match func(uint64) bool
	seen  map[PageID]bool
	buf   [][]byte
	i     int
	data  ProbeStats
	err   error
	done  bool
}

func newRefIter(f *fetcher, src refSource, match func(uint64) bool) *refIter {
	return &refIter{f: f, src: src, match: match, seen: make(map[PageID]bool), i: -1}
}

func (it *refIter) Next() bool {
	if it.done || it.err != nil {
		return false
	}
	if it.i+1 < len(it.buf) {
		it.i++
		return true
	}
	for {
		r, ok := it.src.next()
		if !ok {
			it.err = it.src.err()
			it.done = true
			return false
		}
		if it.seen[r.Page] {
			continue
		}
		it.seen[r.Page] = true
		matched, _, err := it.f.visit(r.Page, it.match, nil, &it.data)
		if err != nil {
			it.err = err
			it.done = true
			return false
		}
		if len(matched) > 0 {
			it.buf, it.i = matched, 0
			return true
		}
	}
}

func (it *refIter) Tuple() []byte {
	if it.i < 0 || it.i >= len(it.buf) {
		return nil
	}
	return it.buf[it.i]
}

// Stats combines the source's index-side reads (live, so early
// termination is priced correctly) with the data-side charges.
func (it *refIter) Stats() ProbeStats {
	s := it.data
	s.IndexReads += it.src.reads()
	return s
}

func (it *refIter) Err() error { return it.err }
func (it *refIter) Close() error {
	it.done = true
	it.src.close()
	it.buf, it.i = nil, -1
	return nil
}

// eqKey matches one key; inRange matches [lo, hi]; beyondKey and
// beyondHi are the ordered-scan stop predicates.
func eqKey(key uint64) func(uint64) bool     { return func(v uint64) bool { return v == key } }
func beyondKey(key uint64) func(uint64) bool { return func(v uint64) bool { return v > key } }
func inRange(lo, hi uint64) func(uint64) bool {
	return func(v uint64) bool { return v >= lo && v <= hi }
}
func beyondHi(hi uint64) func(uint64) bool { return func(v uint64) bool { return v > hi } }

// fetchPointOrdered resolves a deduplicated point probe: duplicates of
// key are contiguous from the first occurrence.
func fetchPointOrdered(file *heapfile.File, fieldIdx int, key uint64, start PageID, firstOnly bool, res *Result) error {
	it := newOrderedIter(newFetcher(file, fieldIdx), start, eqKey(key), beyondKey(key), ProbeStats{})
	return drainInto(it, firstOnly, res)
}

// fetchRangeOrdered resolves a deduplicated range probe: sequential
// pages from the range's first occurrence until the keys pass hi.
func fetchRangeOrdered(file *heapfile.File, fieldIdx int, lo, hi uint64, start PageID, res *Result) error {
	it := newOrderedIter(newFetcher(file, fieldIdx), start, inRange(lo, hi), beyondHi(hi), ProbeStats{})
	return drainInto(it, false, res)
}

// fetchPointRefs resolves a per-tuple reference list for key; firstOnly
// stops at the first match.
func fetchPointRefs(file *heapfile.File, fieldIdx int, key uint64, refs []Ref, firstOnly bool, res *Result) error {
	it := newRefIter(newFetcher(file, fieldIdx), &sliceRefs{refs: refs}, eqKey(key))
	return drainInto(it, firstOnly, res)
}

// fetchRangeRefs resolves a per-tuple reference list for a range scan:
// each distinct referenced page is read once, ascending.
func fetchRangeRefs(file *heapfile.File, fieldIdx int, lo, hi uint64, refs []Ref, res *Result) error {
	it := newRefIter(newFetcher(file, fieldIdx), &sliceRefs{refs: sortedByPage(refs)}, inRange(lo, hi))
	return drainInto(it, false, res)
}

// sortedByPage returns the references ordered by page id — the
// ascending access list of the materialized range fetch.
func sortedByPage(refs []Ref) []Ref {
	out := append([]Ref(nil), refs...)
	sort.Slice(out, func(i, j int) bool { return out[i].Page < out[j].Page })
	return out
}

// multiSearchGroups resolves the grouped answers of an exact backend's
// batched probe. idx seeds the index-side cost. In dedup mode each
// key's first occurrence starts an ordered scan; otherwise all refs
// flatten into one ascending page list matched against the whole batch.
// Either way a shared batch fetcher reads each data page at most once.
func multiSearchGroups(file *heapfile.File, fieldIdx int, groups []bptree.KeyRefs,
	dedup bool, idx ProbeStats) (*Result, error) {
	res := &Result{Stats: idx}
	f := newBatchFetcher(file, fieldIdx)
	if dedup {
		for _, g := range groups {
			it := newOrderedIter(f, g.Refs[0].Page, eqKey(g.Key), beyondKey(g.Key), ProbeStats{})
			if err := drainInto(it, false, res); err != nil {
				return nil, err
			}
		}
		return res, nil
	}
	var refs []Ref
	batch := make(map[uint64]bool, len(groups))
	for _, g := range groups {
		batch[g.Key] = true
		refs = append(refs, g.Refs...)
	}
	it := newRefIter(f, &sliceRefs{refs: sortedByPage(refs)},
		func(v uint64) bool { return batch[v] })
	if err := drainInto(it, false, res); err != nil {
		return nil, err
	}
	return res, nil
}
