package index_test

import (
	"encoding/binary"
	"errors"
	"math"
	"testing"

	"bftree/index"
	"bftree/internal/device"
	"bftree/internal/heapfile"
	"bftree/internal/pagestore"
)

// The streaming conformance suite pins the tentpole contract: for every
// backend (and every layout variant), a drained Scanner, the slice
// RangeScan and a brute-force file scan agree tuple-for-tuple; a
// MultiSearch batch agrees with the union of its per-key Searches while
// sharing index reads; and early termination actually prices only the
// pages behind the tuples pulled.

// scanVariant is one backend × options configuration under test.
type scanVariant struct {
	name string
	opts index.Options
}

func scanVariants() []scanVariant {
	return []scanVariant{
		{"bftree", index.Options{}},
		{"bftree-buffered", index.Options{BufferedInserts: 64}},
		{"bfforest", index.Options{}},
		{"bfforest-hash", index.Options{ForestHash: true}},
		{"bptree", index.Options{}},
		{"bptree-dedup", index.Options{DedupKeys: true}},
		{"fdtree", index.Options{}},
		{"fdtree-dedup", index.Options{DedupKeys: true}},
		{"hash", index.Options{}},
	}
}

func backendOf(v scanVariant) string {
	switch v.name {
	case "bftree-buffered":
		return "bftree"
	case "bfforest-hash":
		return "bfforest"
	case "bptree-dedup":
		return "bptree"
	case "fdtree-dedup":
		return "fdtree"
	}
	return v.name
}

func buildVariant(t *testing.T, v scanVariant, file *heapfile.File) index.Index {
	t.Helper()
	idxStore := pagestore.New(device.New(device.Memory, 4096))
	ix, err := index.New(backendOf(v), idxStore, file, 0, v.opts)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

// straddleRelation builds a relation whose duplicate runs are guaranteed
// to cross data-page boundaries: the per-key duplicate count is chosen at
// runtime to not divide the page's tuple capacity (the golden relation's
// 3 duplicates divide it exactly, so no key ever straddles there).
func straddleRelation(t *testing.T, n int) (*heapfile.File, uint64) {
	t.Helper()
	schema := heapfile.Schema{
		TupleSize: 64,
		Fields:    []heapfile.Field{{Name: "key", Offset: 0}, {Name: "seq", Offset: 8}},
	}
	store := pagestore.New(device.New(device.Memory, 4096))
	perPage := heapfile.TuplesPerPage(store.PageSize(), schema.TupleSize)
	dups := 0
	for _, d := range []int{4, 5, 7, 11} {
		if perPage%d != 0 {
			dups = d
			break
		}
	}
	if dups == 0 {
		t.Fatalf("no duplicate count straddles with %d tuples per page", perPage)
	}
	b, err := heapfile.NewBuilder(store, schema)
	if err != nil {
		t.Fatal(err)
	}
	tup := make([]byte, schema.TupleSize)
	for i := 0; i < n; i++ {
		binary.BigEndian.PutUint64(tup[0:8], uint64(i/dups)*5)
		binary.BigEndian.PutUint64(tup[8:16], uint64(i))
		if err := b.Append(tup); err != nil {
			t.Fatal(err)
		}
	}
	file, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}

	// Find a key whose duplicates span two pages.
	lastPage := map[uint64]device.PageID{}
	var straddle uint64
	found := false
	err = file.Scan(func(pid device.PageID, _ int, tp []byte) bool {
		k := file.Schema().Get(tp, 0)
		if prev, seen := lastPage[k]; seen && prev != pid {
			straddle, found = k, true
			return false
		}
		lastPage[k] = pid
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("no key straddles a page boundary in the straddle relation")
	}
	return file, straddle
}

// TestConformanceScanStream asserts drained-Scanner ≡ slice-RangeScan ≡
// brute force on every backend variant, plus iterator hygiene: early
// Close mid-scan, double Close, and early termination reading fewer
// pages than the drain.
func TestConformanceScanStream(t *testing.T) {
	const n = 6000
	file, _ := goldenRelation(t, n)
	maxKey := uint64(n/3-1) * 5

	for _, v := range scanVariants() {
		v := v
		t.Run(v.name, func(t *testing.T) {
			ix := buildVariant(t, v, file)
			defer ix.Close()
			s, ok := ix.(index.Scanner)
			if !ok {
				t.Fatalf("%s does not implement Scanner", v.name)
			}

			for _, rng := range [][2]uint64{{0, 0}, {250, 400}, {maxKey - 50, maxKey + 500}, {0, maxKey}} {
				lo, hi := rng[0], rng[1]
				it, err := s.Scan(lo, hi)
				if err != nil {
					t.Fatal(err)
				}
				streamed, err := index.Drain(it)
				if err != nil {
					t.Fatal(err)
				}
				sliced, err := ix.RangeScan(lo, hi)
				if err != nil {
					t.Fatal(err)
				}
				want := goldenTuples(t, file, lo, hi)
				if !sameTuples(streamed.Tuples, want) {
					t.Fatalf("Drain(Scan[%d,%d]): %d tuples, want %d", lo, hi, len(streamed.Tuples), len(want))
				}
				if !sameTuples(streamed.Tuples, sliced.Tuples) {
					t.Fatalf("Drain(Scan[%d,%d]) and RangeScan disagree: %d vs %d tuples",
						lo, hi, len(streamed.Tuples), len(sliced.Tuples))
				}
				if streamed.Stats != sliced.Stats {
					t.Fatalf("Drain(Scan[%d,%d]) stats %+v != RangeScan stats %+v",
						lo, hi, streamed.Stats, sliced.Stats)
				}
			}

			// Early termination: pulling one tuple of the full range must
			// cost far fewer data pages than the drain, and the iterator's
			// running Stats must be monotonic.
			drained, err := ix.RangeScan(0, maxKey)
			if err != nil {
				t.Fatal(err)
			}
			it, err := s.Scan(0, maxKey)
			if err != nil {
				t.Fatal(err)
			}
			if !it.Next() {
				t.Fatalf("Scan(0,%d).Next() = false on a loaded index (err %v)", maxKey, it.Err())
			}
			limited := it.Stats()
			if limited.DataPagesRead == 0 {
				t.Error("one pulled tuple charged no data page read")
			}
			if limited.DataPagesRead*4 > drained.Stats.DataPagesRead {
				t.Errorf("LIMIT-1 read %d data pages; drain reads %d — no early-termination savings",
					limited.DataPagesRead, drained.Stats.DataPagesRead)
			}
			if err := it.Close(); err != nil {
				t.Fatalf("early Close: %v", err)
			}
			if err := it.Close(); err != nil {
				t.Fatalf("double Close: %v", err)
			}
			if it.Next() {
				t.Error("Next() = true after Close")
			}

			// A drained iterator closes cleanly too.
			it, err = s.Scan(10, 20)
			if err != nil {
				t.Fatal(err)
			}
			for it.Next() {
			}
			if err := it.Err(); err != nil {
				t.Fatal(err)
			}
			if err := it.Close(); err != nil {
				t.Fatalf("Close after exhaustion: %v", err)
			}
		})
	}
}

// TestConformanceScanBoundaries pins RangeScan/Scan boundary semantics
// across every backend variant with one table: inverted ranges fail
// with ErrInvalidRange, empty and gap ranges answer empty, lo == hi
// answers exactly the key's duplicates, hi == MaxUint64 clamps, and
// duplicates straddling page (and hence run/leaf) boundaries are never
// cut short.
func TestConformanceScanBoundaries(t *testing.T) {
	const n = 6000
	file, _ := goldenRelation(t, n)
	maxKey := uint64(n/3-1) * 5
	sfile, straddle := straddleRelation(t, n)

	cases := []struct {
		name   string
		lo, hi uint64
	}{
		{"single-key", 35, 35},
		{"gap-between-keys", 1, 4},
		{"past-domain", maxKey + 1000, maxKey + 2000},
		{"hi-maxuint", maxKey - 100, math.MaxUint64},
		{"full-domain", 0, math.MaxUint64},
	}
	straddleCases := []struct {
		name   string
		lo, hi uint64
	}{
		{"straddling-duplicates", straddle, straddle},
		{"straddle-window", straddle - 5, straddle + 5},
	}

	for _, v := range scanVariants() {
		v := v
		t.Run(v.name, func(t *testing.T) {
			ix := buildVariant(t, v, file)
			defer ix.Close()

			if _, err := ix.RangeScan(5, 0); !errors.Is(err, index.ErrInvalidRange) {
				t.Errorf("RangeScan(5,0): err = %v, want ErrInvalidRange", err)
			}
			if _, err := index.Scan(ix, 5, 0); !errors.Is(err, index.ErrInvalidRange) {
				t.Errorf("Scan(5,0): err = %v, want ErrInvalidRange", err)
			}

			for _, tc := range cases {
				checkRange(t, ix, file, tc.name, tc.lo, tc.hi)
			}

			// Duplicates straddling page (and hence leaf/run) boundaries
			// live in their own relation; see straddleRelation.
			six := buildVariant(t, v, sfile)
			defer six.Close()
			for _, tc := range straddleCases {
				checkRange(t, six, sfile, tc.name, tc.lo, tc.hi)
			}
		})
	}
}

// checkRange asserts RangeScan and a drained Scan both answer the brute
// force tuple set for [lo, hi].
func checkRange(t *testing.T, ix index.Index, file *heapfile.File, name string, lo, hi uint64) {
	t.Helper()
	want := goldenTuples(t, file, lo, hi)
	sliced, err := ix.RangeScan(lo, hi)
	if err != nil {
		t.Fatalf("%s: RangeScan: %v", name, err)
	}
	if !sameTuples(sliced.Tuples, want) {
		t.Errorf("%s: RangeScan[%d,%d]: %d tuples, want %d",
			name, lo, hi, len(sliced.Tuples), len(want))
	}
	it, err := index.Scan(ix, lo, hi)
	if err != nil {
		t.Fatalf("%s: Scan: %v", name, err)
	}
	streamed, err := index.Drain(it)
	if err != nil {
		t.Fatalf("%s: Drain: %v", name, err)
	}
	if !sameTuples(streamed.Tuples, want) {
		t.Errorf("%s: Drain(Scan[%d,%d]): %d tuples, want %d",
			name, lo, hi, len(streamed.Tuples), len(want))
	}
}

// TestConformanceMultiSearch asserts a batch answers exactly the union
// of its per-key point lookups — duplicates in the batch collapsing,
// misses answering nothing — while the tree backends share index page
// reads across the batch.
func TestConformanceMultiSearch(t *testing.T) {
	const n = 6000
	file, _ := goldenRelation(t, n)
	maxKey := uint64(n/3-1) * 5

	batch := []uint64{0, 35, 35, 7, 250, 500, 505, maxKey, maxKey + 1000, 40, 45}

	for _, v := range scanVariants() {
		v := v
		t.Run(v.name, func(t *testing.T) {
			ix := buildVariant(t, v, file)
			defer ix.Close()
			m, ok := ix.(index.MultiSearcher)
			if !ok {
				t.Fatalf("%s does not implement MultiSearcher", v.name)
			}

			res, err := m.MultiSearch(batch)
			if err != nil {
				t.Fatal(err)
			}
			var want [][]byte
			seen := map[uint64]bool{}
			perKeyIdxReads := 0
			for _, k := range batch {
				if seen[k] {
					continue
				}
				seen[k] = true
				want = append(want, goldenTuples(t, file, k, k)...)
				single, err := ix.Search(k)
				if err != nil {
					t.Fatal(err)
				}
				perKeyIdxReads += single.Stats.IndexReads
			}
			if !sameTuples(res.Tuples, want) {
				t.Fatalf("MultiSearch: %d tuples, want %d", len(res.Tuples), len(want))
			}
			if res.Stats.IndexReads > perKeyIdxReads {
				t.Errorf("MultiSearch IndexReads %d exceeds %d per-key searches",
					res.Stats.IndexReads, perKeyIdxReads)
			}

			// Degenerate batches.
			empty, err := m.MultiSearch(nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(empty.Tuples) != 0 {
				t.Errorf("MultiSearch(nil): %d tuples, want 0", len(empty.Tuples))
			}
			miss, err := m.MultiSearch([]uint64{1, 2, 3})
			if err != nil {
				t.Fatal(err)
			}
			if len(miss.Tuples) != 0 {
				t.Errorf("MultiSearch(misses): %d tuples, want 0", len(miss.Tuples))
			}
		})
	}
}

// TestScanUnsupportedHelpers pins the package-level capability helpers'
// uniform ErrUnsupported answer on an index lacking the capabilities.
func TestScanUnsupportedHelpers(t *testing.T) {
	var bare bareIndex
	if _, err := index.Scan(&bare, 0, 10); !errors.Is(err, index.ErrUnsupported) {
		t.Errorf("Scan on a bare Index: err = %v, want ErrUnsupported", err)
	}
	if _, err := index.MultiSearch(&bare, []uint64{1}); !errors.Is(err, index.ErrUnsupported) {
		t.Errorf("MultiSearch on a bare Index: err = %v, want ErrUnsupported", err)
	}
}

// bareIndex implements only the mandatory Index interface.
type bareIndex struct{}

func (bareIndex) Search(uint64) (*index.Result, error)            { return &index.Result{}, nil }
func (bareIndex) SearchFirst(uint64) (*index.Result, error)       { return &index.Result{}, nil }
func (bareIndex) RangeScan(uint64, uint64) (*index.Result, error) { return &index.Result{}, nil }
func (bareIndex) Stats() index.Stats                              { return index.Stats{} }
func (bareIndex) Close() error                                    { return nil }
