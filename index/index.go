// Package index defines the unified index contract of the repo: one
// capability-aware interface over every point-lookup structure the
// paper compares — the BF-Tree itself, the B+-Tree and hash baselines,
// and the FD-Tree comparator — plus a name-keyed backend registry.
//
// The paper's headline result is a comparison (a BF-Tree probes within
// ~2x of a B+-Tree and hash index at one to two orders of magnitude
// less space); this package is that comparison as an API. Every backend
// answers the same probes with the same Result shape — matching tuples
// plus cost accounting — so the bench harness measures all of them
// through one generic path, and a serving layer can mount any of them
// (or several at once) behind the same handler.
//
//	ix, _ := index.New("bptree", idxStore, file, 0, index.Options{})
//	res, _ := ix.Search(key)          // same call, any backend
//	if ins, ok := ix.(index.Inserter); ok { ... }  // capability discovery
//
// The mandatory interface is intentionally small: point and range
// lookups, stats, close. Everything else — streaming scans, batched
// probes, inserts, deletes, flushing, persistence, maintenance, cache
// warming — is an optional capability interface discovered by type
// assertion; the per-backend matrix lives in DESIGN.md §5.
package index

import (
	"errors"

	"bftree/internal/bptree"
	"bftree/internal/core"
	"bftree/internal/device"
	"bftree/internal/heapfile"
	"bftree/internal/pagestore"
)

// Re-exported types shared with the bftree root package. Result is the
// outcome of any probe: matching tuple copies plus the probe's cost
// accounting (ProbeStats). Ref identifies one tuple by data page and
// slot — the entry payload of the exact backends; the BF-Tree keys
// associations by page only and ignores the slot.
type (
	Result     = core.Result
	ProbeStats = core.ProbeStats
	Ref        = bptree.TupleRef
	PageID     = device.PageID
	Store      = pagestore.Store
	File       = heapfile.File

	// MaintenanceStats is the snapshot returned by the Maintainer
	// capability (currently only the BF-Tree backend implements it).
	MaintenanceStats = core.MaintenanceStats
)

// ErrUnknownField is re-exported from the schema layer so callers of
// the field-name factories can match it without importing bftree.
var ErrUnknownField = heapfile.ErrUnknownField

// ErrUnknownBackend reports a name no Backend was registered under.
var ErrUnknownBackend = errors.New("index: unknown backend")

// ErrUnsupported reports an operation the backend does not provide
// (for example Open on a backend that does not persist).
var ErrUnsupported = errors.New("index: unsupported operation")

// Index is the common contract every registered backend satisfies.
// Results are identical across backends for the same relation — the
// BF-Tree's approximation costs false-positive *page reads*, visible in
// Result.Stats, never wrong tuples. Implementations are safe for
// concurrent probes when their underlying structure is (the BF-Tree
// backend is; the baselines are read-safe after build as long as no
// writer runs).
//
// Capability discovery: anything beyond this interface is an optional
// capability discovered by type assertion —
//
//	if s, ok := ix.(index.Scanner); ok { it, _ := s.Scan(lo, hi); ... }
//
// and the package-level helpers (Scan, MultiSearch) fold the assertion
// and return ErrUnsupported when the backend lacks the capability —
// the uniform answer for every missing capability, so callers can
// errors.Is(err, index.ErrUnsupported) regardless of which one they
// asked for. All four built-in backends implement Scanner and
// MultiSearcher natively; the remaining capabilities vary (DESIGN.md
// §5).
type Index interface {
	// Search returns every tuple whose indexed field equals key.
	Search(key uint64) (*Result, error)
	// SearchFirst is the primary-key variant: the probe stops as soon
	// as a match is found. Exact backends return the first matching
	// tuple; the BF-Tree returns the first matching page's tuples (the
	// paper's early-exit unit is the page read).
	SearchFirst(key uint64) (*Result, error)
	// RangeScan returns every tuple whose indexed field lies in
	// [lo, hi], in key order.
	RangeScan(lo, hi uint64) (*Result, error)
	// Stats reports the index's size and shape.
	Stats() Stats
	// Close releases background resources (the BF-Tree's maintainer);
	// a no-op for passive backends.
	Close() error
}

// Stats is the size-and-shape snapshot behind the paper's capacity
// comparisons (Tables 2 and 4): footprint, height, and entry counts,
// plus the flags the bench layer keys generic behavior on.
type Stats struct {
	// Backend is the registered name that built this index.
	Backend string
	// Pages is the on-device index footprint in pages (0 for
	// memory-resident backends); SizeBytes is the footprint in bytes
	// (resident size for memory-resident backends).
	Pages     uint64
	SizeBytes uint64
	// Height counts index levels probed on a point lookup's way to the
	// data: B+-Tree/BF-Tree levels, FD-Tree on-device runs (+1 for the
	// head), 1 for hash.
	Height int
	// Entries is the number of indexed associations; Keys the distinct
	// key count where the backend tracks it (0 otherwise).
	Entries uint64
	Keys    uint64
	// EffectiveFPP is the current false positive probability of an
	// approximate backend (drift included); 0 for exact backends.
	EffectiveFPP float64
}

// Inserter is implemented by backends that accept post-build inserts.
type Inserter interface {
	Insert(key uint64, ref Ref) error
}

// Deleter is implemented by backends that can remove an association.
type Deleter interface {
	Delete(key uint64, ref Ref) error
}

// Flusher is implemented by backends that buffer writes in memory and
// can force them to the device (the BF-Tree's buffered-insert mode, the
// FD-Tree's head tree).
type Flusher interface {
	Flush() error
}

// Persister is implemented by backends whose index survives its
// process: MarshalMeta returns the blob that, together with the same
// store and file, reopens the index through the registry's Open.
type Persister interface {
	MarshalMeta() []byte
}

// Maintainer is implemented by backends with structural upkeep —
// reclamation and drift-triggered compaction (DESIGN.md §4).
type Maintainer interface {
	Maintain() error
	MaintenanceStats() MaintenanceStats
}

// Warmable is implemented by backends whose internal (non-leaf) pages
// can be pre-loaded into a buffer cache, the warm-cache setup of the
// paper's Figures 7, 10 and 12b.
type Warmable interface {
	InternalPages() ([]PageID, error)
}
