package index

import (
	"bftree/internal/bptree"
	"bftree/internal/heapfile"
)

func init() {
	Register(Backend{
		Name: "bptree",
		BulkLoad: func(store *Store, file *File, fieldIdx int, opts Options) (Index, error) {
			entries, err := layoutEntries(file, fieldIdx, opts.DedupKeys)
			if err != nil {
				return nil, err
			}
			ff := opts.FillFactor
			if ff == 0 {
				ff = 1.0
			}
			tr, err := bptree.BulkLoad(store, entries, ff)
			if err != nil {
				return nil, err
			}
			return &bpIndex{tree: tr, file: file, fieldIdx: fieldIdx, dedup: opts.DedupKeys}, nil
		},
	})
}

// layoutEntries builds the entry list of an exact tree backend: one per
// tuple (PK layout) or one per distinct key (the paper's deduplicated
// baseline for ordered non-unique attributes).
func layoutEntries(file *heapfile.File, fieldIdx int, dedup bool) ([]bptree.Entry, error) {
	if dedup {
		return bptree.DedupEntries(file, fieldIdx)
	}
	return bptree.PKEntries(file, fieldIdx)
}

// bpIndex adapts the B+-Tree baseline: probe the tree for tuple
// references, then fetch the referenced data pages into the shared
// Result shape. In dedup mode the probe locates the first occurrence
// and the fetch scans forward through the duplicates (Section 6.3). It
// implements Scanner, MultiSearcher, Inserter and Warmable.
type bpIndex struct {
	tree     *bptree.Tree
	file     *heapfile.File
	fieldIdx int
	dedup    bool
}

func (ix *bpIndex) Search(key uint64) (*Result, error)      { return ix.search(key, false) }
func (ix *bpIndex) SearchFirst(key uint64) (*Result, error) { return ix.search(key, true) }

func (ix *bpIndex) search(key uint64, firstOnly bool) (*Result, error) {
	refs, idxReads, err := ix.tree.SearchStats(key)
	if err != nil {
		return nil, err
	}
	res := &Result{Stats: ProbeStats{IndexReads: idxReads}}
	if len(refs) == 0 {
		return res, nil
	}
	if ix.dedup {
		err = fetchPointOrdered(ix.file, ix.fieldIdx, key, refs[0].Page, firstOnly, res)
	} else {
		err = fetchPointRefs(ix.file, ix.fieldIdx, key, refs, firstOnly, res)
	}
	if err != nil {
		return nil, err
	}
	return res, nil
}

func (ix *bpIndex) RangeScan(lo, hi uint64) (*Result, error) {
	return scanRange(ix, lo, hi)
}

// Scan streams the leaf-sibling walk: in dedup mode the cursor only
// locates the range's first occurrence and an ordered page scan takes
// over; otherwise the reference stream is resolved page by page as the
// consumer pulls, so leaf-chain links past an early Close are never
// read.
func (ix *bpIndex) Scan(lo, hi uint64) (Iterator, error) {
	if lo > hi {
		return nil, ErrInvalidRange
	}
	c, err := ix.tree.Scan(lo, hi)
	if err != nil {
		return nil, err
	}
	if !ix.dedup {
		return newRefIter(newFetcher(ix.file, ix.fieldIdx), &bpRefs{c: c}, inRange(lo, hi)), nil
	}
	if !c.Next() {
		reads := c.Reads()
		errScan := c.Err()
		c.Close()
		if errScan != nil {
			return nil, errScan
		}
		return &emptyIter{stats: ProbeStats{IndexReads: reads}}, nil
	}
	start := c.Entry().Ref.Page
	reads := c.Reads()
	c.Close()
	return newOrderedIter(newFetcher(ix.file, ix.fieldIdx), start,
		inRange(lo, hi), beyondHi(hi), ProbeStats{IndexReads: reads}), nil
}

// MultiSearch shares root-to-leaf descents across the sorted batch and
// reads each flagged data page once.
func (ix *bpIndex) MultiSearch(keys []uint64) (*Result, error) {
	groups, idxReads, err := ix.tree.MultiSearch(keys)
	if err != nil {
		return nil, err
	}
	return multiSearchGroups(ix.file, ix.fieldIdx, groups, ix.dedup,
		ProbeStats{IndexReads: idxReads})
}

func (ix *bpIndex) Stats() Stats {
	return Stats{
		Backend:   "bptree",
		Pages:     ix.tree.NumNodes(),
		SizeBytes: ix.tree.SizeBytes(),
		Height:    ix.tree.Height(),
		Entries:   ix.tree.NumEntries(),
	}
}

func (ix *bpIndex) Close() error { return nil }

func (ix *bpIndex) Insert(key uint64, ref Ref) error {
	return ix.tree.Insert(bptree.Entry{Key: key, Ref: ref})
}

func (ix *bpIndex) InternalPages() ([]PageID, error) { return ix.tree.InternalPages() }
