package index

import (
	"bftree/internal/bptree"
	"bftree/internal/heapfile"
)

func init() {
	Register(Backend{
		Name: "bptree",
		BulkLoad: func(store *Store, file *File, fieldIdx int, opts Options) (Index, error) {
			entries, err := layoutEntries(file, fieldIdx, opts.DedupKeys)
			if err != nil {
				return nil, err
			}
			ff := opts.FillFactor
			if ff == 0 {
				ff = 1.0
			}
			tr, err := bptree.BulkLoad(store, entries, ff)
			if err != nil {
				return nil, err
			}
			return &bpIndex{tree: tr, file: file, fieldIdx: fieldIdx, dedup: opts.DedupKeys}, nil
		},
	})
}

// layoutEntries builds the entry list of an exact tree backend: one per
// tuple (PK layout) or one per distinct key (the paper's deduplicated
// baseline for ordered non-unique attributes).
func layoutEntries(file *heapfile.File, fieldIdx int, dedup bool) ([]bptree.Entry, error) {
	if dedup {
		return bptree.DedupEntries(file, fieldIdx)
	}
	return bptree.PKEntries(file, fieldIdx)
}

// bpIndex adapts the B+-Tree baseline: probe the tree for tuple
// references, then fetch the referenced data pages into the shared
// Result shape. In dedup mode the probe locates the first occurrence
// and the fetch scans forward through the duplicates (Section 6.3). It
// implements Inserter and Warmable.
type bpIndex struct {
	tree     *bptree.Tree
	file     *heapfile.File
	fieldIdx int
	dedup    bool
}

func (ix *bpIndex) Search(key uint64) (*Result, error)      { return ix.search(key, false) }
func (ix *bpIndex) SearchFirst(key uint64) (*Result, error) { return ix.search(key, true) }

func (ix *bpIndex) search(key uint64, firstOnly bool) (*Result, error) {
	refs, idxReads, err := ix.tree.SearchStats(key)
	if err != nil {
		return nil, err
	}
	res := &Result{Stats: ProbeStats{IndexReads: idxReads}}
	if len(refs) == 0 {
		return res, nil
	}
	if ix.dedup {
		err = fetchPointOrdered(ix.file, ix.fieldIdx, key, refs[0].Page, firstOnly, res)
	} else {
		err = fetchPointRefs(ix.file, ix.fieldIdx, key, refs, firstOnly, res)
	}
	if err != nil {
		return nil, err
	}
	return res, nil
}

func (ix *bpIndex) RangeScan(lo, hi uint64) (*Result, error) {
	refs, idxReads, err := ix.tree.RangeScanStats(lo, hi)
	if err != nil {
		return nil, err
	}
	res := &Result{Stats: ProbeStats{IndexReads: idxReads}}
	if len(refs) == 0 {
		return res, nil
	}
	if ix.dedup {
		err = fetchRangeOrdered(ix.file, ix.fieldIdx, lo, hi, refs[0].Page, res)
	} else {
		err = fetchRangeRefs(ix.file, ix.fieldIdx, lo, hi, refs, res)
	}
	if err != nil {
		return nil, err
	}
	return res, nil
}

func (ix *bpIndex) Stats() Stats {
	return Stats{
		Backend:   "bptree",
		Pages:     ix.tree.NumNodes(),
		SizeBytes: ix.tree.SizeBytes(),
		Height:    ix.tree.Height(),
		Entries:   ix.tree.NumEntries(),
	}
}

func (ix *bpIndex) Close() error { return nil }

func (ix *bpIndex) Insert(key uint64, ref Ref) error {
	return ix.tree.Insert(bptree.Entry{Key: key, Ref: ref})
}

func (ix *bpIndex) InternalPages() ([]PageID, error) { return ix.tree.InternalPages() }
