package device

import "time"

// Profile names a device and its cost model. Profiles back both the
// measured experiments (Section 6) and the storage-trade-off landscape of
// Figure 2.
type Profile struct {
	Name string
	Kind Kind
	Cost CostModel
}

// Default cost models, derived from the testbed of Section 6.1 with 4 KB
// pages:
//
//   - HDD: Seagate 10K RPM. Random read ≈ seek + half-rotation ≈ 3 ms +
//     3 ms = 6 ms is typical for 10K drives; the paper reports 106 MB/s
//     sequential throughput → 4 KB/106 MB/s ≈ 38.6 µs per sequential page.
//   - SSD: OCZ Deneva 2C, advertised 80 kIOPS random reads → 12.5 µs per
//     random 4 KB read; 550 MB/s sequential → ≈ 7.3 µs per page.
//   - Memory: ≈ 100 ns per 4 KB (DRAM copy + lookup overheads), identical
//     for random and sequential.
//
// The ratios matter more than the absolute values: HDD random : SSD
// random : memory ≈ 480 : 1 : 0.008, and HDD sequential is ≈ 155x cheaper
// than HDD random, which is the asymmetry the BF-Tree design exploits.
func DefaultCost(kind Kind) CostModel {
	switch kind {
	case HDD:
		return CostModel{
			RandomRead:  6 * time.Millisecond,
			SeqRead:     38600 * time.Nanosecond,
			RandomWrite: 6 * time.Millisecond,
			SeqWrite:    38600 * time.Nanosecond,
		}
	case SSD:
		return CostModel{
			RandomRead:  12500 * time.Nanosecond,
			SeqRead:     7300 * time.Nanosecond,
			RandomWrite: 25 * time.Microsecond, // flash write asymmetry
			SeqWrite:    9 * time.Microsecond,
		}
	default: // Memory
		return CostModel{
			RandomRead:  100 * time.Nanosecond,
			SeqRead:     100 * time.Nanosecond,
			RandomWrite: 100 * time.Nanosecond,
			SeqWrite:    100 * time.Nanosecond,
		}
	}
}

// MarketDevice is one point in the Figure 2 capacity/performance
// landscape: a late-2013 storage device with its cost-normalized capacity
// and advertised random-read performance.
type MarketDevice struct {
	Name       string
	Class      string  // "E-HDD", "C-HDD", "E-SSD", "C-SSD"
	GBPerUSD   float64 // capacity per dollar (x-axis of Fig 2)
	RandomIOPS float64 // advertised 4 KB random read IOPS (y-axis)
}

// Figure2Devices reproduces the device landscape of Figure 2: two
// enterprise and two consumer HDDs, four enterprise and two consumer
// SSDs, with late-2013 street prices. The two technologies form the two
// clusters the paper describes: HDDs cheap in capacity and one to four
// orders of magnitude slower in random reads.
func Figure2Devices() []MarketDevice {
	return []MarketDevice{
		{Name: "Seagate Cheetah 15K 600GB", Class: "E-HDD", GBPerUSD: 2.6, RandomIOPS: 400},
		{Name: "WD RE4 2TB", Class: "E-HDD", GBPerUSD: 9.5, RandomIOPS: 200},
		{Name: "Seagate Barracuda 3TB", Class: "C-HDD", GBPerUSD: 23.0, RandomIOPS: 120},
		{Name: "WD Blue 1TB", Class: "C-HDD", GBPerUSD: 17.0, RandomIOPS: 100},
		{Name: "Intel DC S3700 800GB", Class: "E-SSD", GBPerUSD: 0.43, RandomIOPS: 75000},
		{Name: "OCZ Deneva 2C 480GB", Class: "E-SSD", GBPerUSD: 0.69, RandomIOPS: 80000},
		{Name: "Samsung SM843T 480GB", Class: "E-SSD", GBPerUSD: 0.80, RandomIOPS: 70000},
		{Name: "Toshiba PX02SM 400GB", Class: "E-SSD", GBPerUSD: 0.33, RandomIOPS: 120000},
		{Name: "Samsung 840 EVO 500GB", Class: "C-SSD", GBPerUSD: 1.55, RandomIOPS: 98000},
		{Name: "Crucial M500 480GB", Class: "C-SSD", GBPerUSD: 1.45, RandomIOPS: 80000},
	}
}
