// Package device simulates the secondary-storage devices of the paper's
// testbed (Section 6.1): a 10K RPM hard disk, a SATA SSD, and main
// memory. Each device stores pages in RAM and charges accesses against a
// deterministic virtual clock using a per-device cost model, so
// experiments measure exactly the quantity the paper reasons about — the
// number and kind of I/O operations weighted by device characteristics —
// without the noise of real hardware.
//
// The cost models distinguish random from sequential access: a read of
// the page that physically follows the previous read is charged the
// sequential rate, anything else pays the random-access penalty (seek +
// rotational latency on the HDD, a flat operation cost on the SSD). This
// reproduces the property the paper's design exploits: on the HDD
// sequential I/O is orders of magnitude cheaper than random I/O, while on
// the SSD the two are nearly identical.
//
// Concurrency: a Device is safe for concurrent use and the read path is
// designed to scale. Accounting (Stats, the sequential-access tracker)
// is kept in atomics, the page directory is published through an atomic
// pointer, and page data is guarded by striped reader/writer locks — so
// concurrent readers of distinct pages never contend on a lock, and
// readers of the same page share a read lock.
package device

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// PageID identifies a page on a device. Pages are numbered from 0.
type PageID uint64

// InvalidPage is a sentinel for "no page".
const InvalidPage = PageID(1<<64 - 1)

// Kind enumerates the simulated device classes.
type Kind int

// Device kinds, in increasing random-read cost.
const (
	Memory Kind = iota
	SSD
	HDD
)

// String returns the conventional short name of the device kind.
func (k Kind) String() string {
	switch k {
	case Memory:
		return "mem"
	case SSD:
		return "SSD"
	case HDD:
		return "HDD"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// CostModel gives the virtual-time cost of each operation class on a
// device. Costs are per page of PageSize bytes.
type CostModel struct {
	RandomRead  time.Duration // read of a non-adjacent page
	SeqRead     time.Duration // read of the page following the last access
	RandomWrite time.Duration
	SeqWrite    time.Duration
}

// Stats accumulates I/O accounting for a device. All counters are
// monotonically increasing. Snapshots taken while I/O is in flight are
// internally consistent per counter (each is read atomically) but may
// straddle an operation that has bumped one counter and not yet another;
// quiescent snapshots are exact.
type Stats struct {
	RandomReads  uint64
	SeqReads     uint64
	RandomWrites uint64
	SeqWrites    uint64
	BytesRead    uint64
	BytesWritten uint64
	Elapsed      time.Duration // virtual time charged against this device
}

// Reads returns total page reads of both kinds.
func (s Stats) Reads() uint64 { return s.RandomReads + s.SeqReads }

// Writes returns total page writes of both kinds.
func (s Stats) Writes() uint64 { return s.RandomWrites + s.SeqWrites }

// String formats the stats compactly for harness output.
func (s Stats) String() string {
	return fmt.Sprintf("reads=%d(rand=%d,seq=%d) writes=%d elapsed=%v",
		s.Reads(), s.RandomReads, s.SeqReads, s.Writes(), s.Elapsed)
}

// ErrOutOfRange reports access to a page beyond the device size.
var ErrOutOfRange = errors.New("device: page out of range")

// ParallelStripes returns GOMAXPROCS rounded up to a power of two,
// floored at 8 and never exceeding limit (the floor wins should a
// caller pass a limit below 8) — the shared sizing rule for
// parallelism-bound lock tables: the device's page-data stripes here
// and the page-cache shard bound in pagestore. More independent locks
// than runnable goroutines buys nothing, while a big fixed count (the
// old constant 64) wastes footprint on small hosts; the power-of-two
// rounding keeps selection a mask or cheap modulo.
func ParallelStripes(limit int) int {
	n := runtime.GOMAXPROCS(0)
	s := 8
	for s < n && s*2 <= limit {
		s *= 2
	}
	return s
}

// pageStripes is the page-data lock stripe count for a new device.
// Accesses to pages in different stripes proceed fully in parallel;
// the count only bounds how many *writers* can be active at once.
func pageStripes() int {
	return ParallelStripes(1024)
}

// statsCounters is the lock-free backing of Stats.
type statsCounters struct {
	randomReads  atomic.Uint64
	seqReads     atomic.Uint64
	randomWrites atomic.Uint64
	seqWrites    atomic.Uint64
	bytesRead    atomic.Uint64
	bytesWritten atomic.Uint64
	elapsedNanos atomic.Int64
}

func (c *statsCounters) snapshot() Stats {
	return Stats{
		RandomReads:  c.randomReads.Load(),
		SeqReads:     c.seqReads.Load(),
		RandomWrites: c.randomWrites.Load(),
		SeqWrites:    c.seqWrites.Load(),
		BytesRead:    c.bytesRead.Load(),
		BytesWritten: c.bytesWritten.Load(),
		Elapsed:      time.Duration(c.elapsedNanos.Load()),
	}
}

func (c *statsCounters) reset() {
	c.randomReads.Store(0)
	c.seqReads.Store(0)
	c.randomWrites.Store(0)
	c.seqWrites.Store(0)
	c.bytesRead.Store(0)
	c.bytesWritten.Store(0)
	c.elapsedNanos.Store(0)
}

// Device is a simulated page-addressable storage device, safe for
// concurrent use. The page directory is a grow-only slice published via
// an atomic pointer (page buffers are stable once allocated), page data
// is guarded by striped RW locks, and all accounting is atomic, so
// concurrent readers never serialize behind a device-wide mutex.
//
// Under concurrency the random/sequential classification of an
// individual access depends on interleaving (the tracker holds the
// globally last-touched page), but the totals reported by Stats —
// Stats.Reads(), Stats.Writes(), bytes — are exact.
type Device struct {
	kind     Kind
	name     string
	pageSize int
	cost     CostModel

	allocMu sync.Mutex               // serializes Allocate
	pages   atomic.Pointer[[][]byte] // grow-only directory; buffers stable
	locks   []sync.RWMutex           // striped page-data locks (pageStripes-sized)

	lastPage atomic.Uint64 // sequential detection; InvalidPage initially
	stats    statsCounters

	realLatency atomic.Int64 // optional real ns slept per I/O op (see SetRealLatency)
}

// New creates a device of the given kind with the default profile for
// that kind (see profiles.go) and a fixed page size in bytes.
func New(kind Kind, pageSize int) *Device {
	return NewWithProfile(Profile{Name: kind.String(), Kind: kind, Cost: DefaultCost(kind)}, pageSize)
}

// NewWithProfile creates a device with an explicit cost profile.
func NewWithProfile(p Profile, pageSize int) *Device {
	if pageSize <= 0 {
		pageSize = 4096
	}
	d := &Device{
		kind:     p.Kind,
		name:     p.Name,
		pageSize: pageSize,
		cost:     p.Cost,
		locks:    make([]sync.RWMutex, pageStripes()),
	}
	empty := make([][]byte, 0)
	d.pages.Store(&empty)
	d.lastPage.Store(uint64(InvalidPage))
	return d
}

// Kind returns the device class.
func (d *Device) Kind() Kind { return d.kind }

// Name returns the profile name.
func (d *Device) Name() string { return d.name }

// PageSize returns the page size in bytes.
func (d *Device) PageSize() int { return d.pageSize }

// NumPages returns the number of allocated pages.
func (d *Device) NumPages() uint64 {
	return uint64(len(*d.pages.Load()))
}

// SetRealLatency makes every subsequent page access block for perOp of
// real (wall-clock) time in addition to the virtual-clock charge. The
// sleep happens outside all locks, modelling a device whose in-flight
// operations overlap: concurrent probers wait in parallel, exactly as
// they would on real storage with queue depth. Zero (the default)
// disables the sleep, keeping tests and experiments instantaneous. The
// concurrent-probe benchmark uses this to measure how probe throughput
// scales with workers even on machines with few cores.
func (d *Device) SetRealLatency(perOp time.Duration) {
	d.realLatency.Store(int64(perOp))
}

func (d *Device) sleepRealLatency() {
	if ns := d.realLatency.Load(); ns > 0 {
		time.Sleep(time.Duration(ns))
	}
}

// stripe returns the data lock guarding page id.
func (d *Device) stripe(id PageID) *sync.RWMutex {
	return &d.locks[uint64(id)%uint64(len(d.locks))]
}

// Allocate appends n zeroed pages and returns the id of the first.
func (d *Device) Allocate(n int) PageID {
	d.allocMu.Lock()
	defer d.allocMu.Unlock()
	old := *d.pages.Load()
	first := PageID(len(old))
	grown := make([][]byte, len(old), len(old)+n)
	copy(grown, old)
	for i := 0; i < n; i++ {
		grown = append(grown, make([]byte, d.pageSize))
	}
	d.pages.Store(&grown)
	return first
}

// chargeRead classifies the access against the sequential tracker and
// bumps the read counters.
func (d *Device) chargeRead(id PageID) (sequential bool) {
	prev := d.lastPage.Swap(uint64(id))
	sequential = prev != uint64(InvalidPage) && uint64(id) == prev+1
	if sequential {
		d.stats.seqReads.Add(1)
		d.stats.elapsedNanos.Add(int64(d.cost.SeqRead))
	} else {
		d.stats.randomReads.Add(1)
		d.stats.elapsedNanos.Add(int64(d.cost.RandomRead))
	}
	d.stats.bytesRead.Add(uint64(d.pageSize))
	return sequential
}

// ReadPage reads page id into buf (which must be at least PageSize long)
// and charges the appropriate cost. It reports whether the access was
// sequential.
func (d *Device) ReadPage(id PageID, buf []byte) (sequential bool, err error) {
	pages := *d.pages.Load()
	if uint64(id) >= uint64(len(pages)) {
		return false, fmt.Errorf("%w: read page %d of %d", ErrOutOfRange, id, len(pages))
	}
	if len(buf) < d.pageSize {
		return false, fmt.Errorf("device: buffer %d smaller than page size %d", len(buf), d.pageSize)
	}
	mu := d.stripe(id)
	mu.RLock()
	copy(buf, pages[id])
	mu.RUnlock()
	sequential = d.chargeRead(id)
	d.sleepRealLatency()
	return sequential, nil
}

// WritePage writes buf to page id, charging the appropriate cost. The
// page must already be allocated.
func (d *Device) WritePage(id PageID, buf []byte) error {
	pages := *d.pages.Load()
	if uint64(id) >= uint64(len(pages)) {
		return fmt.Errorf("%w: write page %d of %d", ErrOutOfRange, id, len(pages))
	}
	if len(buf) > d.pageSize {
		return fmt.Errorf("device: payload %d exceeds page size %d", len(buf), d.pageSize)
	}
	mu := d.stripe(id)
	mu.Lock()
	page := pages[id]
	copy(page, buf)
	for i := len(buf); i < d.pageSize; i++ {
		page[i] = 0
	}
	mu.Unlock()
	prev := d.lastPage.Swap(uint64(id))
	if prev != uint64(InvalidPage) && uint64(id) == prev+1 {
		d.stats.seqWrites.Add(1)
		d.stats.elapsedNanos.Add(int64(d.cost.SeqWrite))
	} else {
		d.stats.randomWrites.Add(1)
		d.stats.elapsedNanos.Add(int64(d.cost.RandomWrite))
	}
	d.stats.bytesWritten.Add(uint64(d.pageSize))
	d.sleepRealLatency()
	return nil
}

// Stats returns a snapshot of the accumulated counters.
func (d *Device) Stats() Stats {
	return d.stats.snapshot()
}

// ResetStats zeroes the counters and the sequential-access tracker. Data
// is untouched; experiments call this between the build phase and the
// measured probe phase.
func (d *Device) ResetStats() {
	d.stats.reset()
	d.lastPage.Store(uint64(InvalidPage))
}
