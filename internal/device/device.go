// Package device simulates the secondary-storage devices of the paper's
// testbed (Section 6.1): a 10K RPM hard disk, a SATA SSD, and main
// memory. Each device stores pages in RAM and charges accesses against a
// deterministic virtual clock using a per-device cost model, so
// experiments measure exactly the quantity the paper reasons about — the
// number and kind of I/O operations weighted by device characteristics —
// without the noise of real hardware.
//
// The cost models distinguish random from sequential access: a read of
// the page that physically follows the previous read is charged the
// sequential rate, anything else pays the random-access penalty (seek +
// rotational latency on the HDD, a flat operation cost on the SSD). This
// reproduces the property the paper's design exploits: on the HDD
// sequential I/O is orders of magnitude cheaper than random I/O, while on
// the SSD the two are nearly identical.
package device

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// PageID identifies a page on a device. Pages are numbered from 0.
type PageID uint64

// InvalidPage is a sentinel for "no page".
const InvalidPage = PageID(1<<64 - 1)

// Kind enumerates the simulated device classes.
type Kind int

// Device kinds, in increasing random-read cost.
const (
	Memory Kind = iota
	SSD
	HDD
)

// String returns the conventional short name of the device kind.
func (k Kind) String() string {
	switch k {
	case Memory:
		return "mem"
	case SSD:
		return "SSD"
	case HDD:
		return "HDD"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// CostModel gives the virtual-time cost of each operation class on a
// device. Costs are per page of PageSize bytes.
type CostModel struct {
	RandomRead  time.Duration // read of a non-adjacent page
	SeqRead     time.Duration // read of the page following the last access
	RandomWrite time.Duration
	SeqWrite    time.Duration
}

// Stats accumulates I/O accounting for a device. All counters are
// monotonically increasing; Snapshot under the device lock gives a
// consistent view.
type Stats struct {
	RandomReads  uint64
	SeqReads     uint64
	RandomWrites uint64
	SeqWrites    uint64
	BytesRead    uint64
	BytesWritten uint64
	Elapsed      time.Duration // virtual time charged against this device
}

// Reads returns total page reads of both kinds.
func (s Stats) Reads() uint64 { return s.RandomReads + s.SeqReads }

// Writes returns total page writes of both kinds.
func (s Stats) Writes() uint64 { return s.RandomWrites + s.SeqWrites }

// String formats the stats compactly for harness output.
func (s Stats) String() string {
	return fmt.Sprintf("reads=%d(rand=%d,seq=%d) writes=%d elapsed=%v",
		s.Reads(), s.RandomReads, s.SeqReads, s.Writes(), s.Elapsed)
}

// ErrOutOfRange reports access to a page beyond the device size.
var ErrOutOfRange = errors.New("device: page out of range")

// Device is a simulated page-addressable storage device. It is safe for
// concurrent use; the virtual clock serializes cost accounting but data
// accesses copy in and out under the lock.
type Device struct {
	mu       sync.Mutex
	kind     Kind
	name     string
	pageSize int
	cost     CostModel
	pages    [][]byte
	lastPage PageID // for sequential detection; InvalidPage initially
	stats    Stats
}

// New creates a device of the given kind with the default profile for
// that kind (see profiles.go) and a fixed page size in bytes.
func New(kind Kind, pageSize int) *Device {
	return NewWithProfile(Profile{Name: kind.String(), Kind: kind, Cost: DefaultCost(kind)}, pageSize)
}

// NewWithProfile creates a device with an explicit cost profile.
func NewWithProfile(p Profile, pageSize int) *Device {
	if pageSize <= 0 {
		pageSize = 4096
	}
	return &Device{
		kind:     p.Kind,
		name:     p.Name,
		pageSize: pageSize,
		cost:     p.Cost,
		lastPage: InvalidPage,
	}
}

// Kind returns the device class.
func (d *Device) Kind() Kind { return d.kind }

// Name returns the profile name.
func (d *Device) Name() string { return d.name }

// PageSize returns the page size in bytes.
func (d *Device) PageSize() int { return d.pageSize }

// NumPages returns the number of allocated pages.
func (d *Device) NumPages() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return uint64(len(d.pages))
}

// Allocate appends n zeroed pages and returns the id of the first.
func (d *Device) Allocate(n int) PageID {
	d.mu.Lock()
	defer d.mu.Unlock()
	first := PageID(len(d.pages))
	for i := 0; i < n; i++ {
		d.pages = append(d.pages, make([]byte, d.pageSize))
	}
	return first
}

// ReadPage reads page id into buf (which must be at least PageSize long)
// and charges the appropriate cost. It reports whether the access was
// sequential.
func (d *Device) ReadPage(id PageID, buf []byte) (sequential bool, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if uint64(id) >= uint64(len(d.pages)) {
		return false, fmt.Errorf("%w: read page %d of %d", ErrOutOfRange, id, len(d.pages))
	}
	if len(buf) < d.pageSize {
		return false, fmt.Errorf("device: buffer %d smaller than page size %d", len(buf), d.pageSize)
	}
	copy(buf, d.pages[id])
	sequential = d.lastPage != InvalidPage && id == d.lastPage+1
	if sequential {
		d.stats.SeqReads++
		d.stats.Elapsed += d.cost.SeqRead
	} else {
		d.stats.RandomReads++
		d.stats.Elapsed += d.cost.RandomRead
	}
	d.stats.BytesRead += uint64(d.pageSize)
	d.lastPage = id
	return sequential, nil
}

// WritePage writes buf to page id, charging the appropriate cost. The
// page must already be allocated.
func (d *Device) WritePage(id PageID, buf []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if uint64(id) >= uint64(len(d.pages)) {
		return fmt.Errorf("%w: write page %d of %d", ErrOutOfRange, id, len(d.pages))
	}
	if len(buf) > d.pageSize {
		return fmt.Errorf("device: payload %d exceeds page size %d", len(buf), d.pageSize)
	}
	copy(d.pages[id], buf)
	for i := len(buf); i < d.pageSize; i++ {
		d.pages[id][i] = 0
	}
	if d.lastPage != InvalidPage && id == d.lastPage+1 {
		d.stats.SeqWrites++
		d.stats.Elapsed += d.cost.SeqWrite
	} else {
		d.stats.RandomWrites++
		d.stats.Elapsed += d.cost.RandomWrite
	}
	d.stats.BytesWritten += uint64(d.pageSize)
	d.lastPage = id
	return nil
}

// Stats returns a snapshot of the accumulated counters.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetStats zeroes the counters and the sequential-access tracker. Data
// is untouched; experiments call this between the build phase and the
// measured probe phase.
func (d *Device) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats = Stats{}
	d.lastPage = InvalidPage
}
