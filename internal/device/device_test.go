package device

import (
	"testing"
	"testing/quick"
	"time"
)

func TestAllocateAndRoundTrip(t *testing.T) {
	d := New(Memory, 4096)
	first := d.Allocate(3)
	if first != 0 {
		t.Fatalf("first allocation should start at page 0, got %d", first)
	}
	if d.NumPages() != 3 {
		t.Fatalf("NumPages = %d, want 3", d.NumPages())
	}
	payload := make([]byte, 4096)
	for i := range payload {
		payload[i] = byte(i % 251)
	}
	if err := d.WritePage(1, payload); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	if _, err := d.ReadPage(1, buf); err != nil {
		t.Fatal(err)
	}
	for i := range payload {
		if buf[i] != payload[i] {
			t.Fatalf("byte %d: got %d want %d", i, buf[i], payload[i])
		}
	}
}

func TestOutOfRange(t *testing.T) {
	d := New(Memory, 512)
	d.Allocate(1)
	buf := make([]byte, 512)
	if _, err := d.ReadPage(5, buf); err == nil {
		t.Error("reading unallocated page should fail")
	}
	if err := d.WritePage(5, buf); err == nil {
		t.Error("writing unallocated page should fail")
	}
	if _, err := d.ReadPage(0, make([]byte, 10)); err == nil {
		t.Error("short buffer should fail")
	}
	if err := d.WritePage(0, make([]byte, 1024)); err == nil {
		t.Error("oversized payload should fail")
	}
}

func TestShortWriteZeroFills(t *testing.T) {
	d := New(Memory, 128)
	d.Allocate(1)
	full := make([]byte, 128)
	for i := range full {
		full[i] = 0xff
	}
	if err := d.WritePage(0, full); err != nil {
		t.Fatal(err)
	}
	if err := d.WritePage(0, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 128)
	if _, err := d.ReadPage(0, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 1 || buf[1] != 2 || buf[2] != 3 {
		t.Error("prefix not written")
	}
	for i := 3; i < 128; i++ {
		if buf[i] != 0 {
			t.Fatalf("byte %d not zero-filled after short write", i)
		}
	}
}

func TestSequentialDetection(t *testing.T) {
	d := New(HDD, 4096)
	d.Allocate(10)
	buf := make([]byte, 4096)

	seq, err := d.ReadPage(3, buf)
	if err != nil {
		t.Fatal(err)
	}
	if seq {
		t.Error("first access can never be sequential")
	}
	seq, _ = d.ReadPage(4, buf)
	if !seq {
		t.Error("page 4 after page 3 should be sequential")
	}
	seq, _ = d.ReadPage(4, buf)
	if seq {
		t.Error("re-reading the same page is not sequential")
	}
	seq, _ = d.ReadPage(0, buf)
	if seq {
		t.Error("jumping backwards is not sequential")
	}
	s := d.Stats()
	if s.RandomReads != 3 || s.SeqReads != 1 {
		t.Errorf("stats = %+v, want 3 random + 1 seq", s)
	}
}

func TestCostAccounting(t *testing.T) {
	d := New(HDD, 4096)
	d.Allocate(4)
	buf := make([]byte, 4096)
	d.ReadPage(0, buf) // random
	d.ReadPage(1, buf) // seq
	d.ReadPage(2, buf) // seq
	want := DefaultCost(HDD).RandomRead + 2*DefaultCost(HDD).SeqRead
	if got := d.Stats().Elapsed; got != want {
		t.Errorf("elapsed = %v, want %v", got, want)
	}
	d.ResetStats()
	if d.Stats().Elapsed != 0 || d.Stats().Reads() != 0 {
		t.Error("ResetStats should zero the counters")
	}
	// After reset, the next access is charged random again.
	d.ReadPage(3, buf)
	if d.Stats().RandomReads != 1 {
		t.Error("sequential tracker should reset with stats")
	}
}

func TestCostModelOrdering(t *testing.T) {
	hdd := DefaultCost(HDD)
	ssd := DefaultCost(SSD)
	mem := DefaultCost(Memory)
	if !(hdd.RandomRead > ssd.RandomRead && ssd.RandomRead > mem.RandomRead) {
		t.Error("random read cost must order HDD > SSD > memory")
	}
	if hdd.RandomRead < 100*hdd.SeqRead {
		t.Error("HDD random reads should be >=100x sequential reads")
	}
	ratio := float64(ssd.RandomRead) / float64(ssd.SeqRead)
	if ratio > 3 {
		t.Errorf("SSD random/seq ratio %g should be near 1, the paper's key premise", ratio)
	}
}

func TestWriteCosts(t *testing.T) {
	d := New(SSD, 4096)
	d.Allocate(3)
	buf := make([]byte, 4096)
	d.WritePage(0, buf) // random
	d.WritePage(1, buf) // seq
	s := d.Stats()
	if s.RandomWrites != 1 || s.SeqWrites != 1 {
		t.Errorf("write stats = %+v", s)
	}
	want := DefaultCost(SSD).RandomWrite + DefaultCost(SSD).SeqWrite
	if s.Elapsed != want {
		t.Errorf("elapsed = %v, want %v", s.Elapsed, want)
	}
	if s.BytesWritten != 2*4096 {
		t.Errorf("bytes written = %d, want %d", s.BytesWritten, 2*4096)
	}
}

func TestKindString(t *testing.T) {
	if Memory.String() != "mem" || SSD.String() != "SSD" || HDD.String() != "HDD" {
		t.Error("kind names changed; harness output depends on them")
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind should still format")
	}
}

func TestDefaultPageSize(t *testing.T) {
	d := New(Memory, 0)
	if d.PageSize() != 4096 {
		t.Errorf("default page size = %d, want 4096", d.PageSize())
	}
}

func TestFigure2DevicesClusters(t *testing.T) {
	devs := Figure2Devices()
	if len(devs) < 8 {
		t.Fatalf("expected at least 8 devices, got %d", len(devs))
	}
	// The paper's two clusters: every HDD must offer more GB/$ than every
	// SSD, and every SSD must offer >=2 orders of magnitude more IOPS.
	var minHDDCap, maxSSDCap, minSSDIOPS, maxHDDIOPS float64
	minHDDCap, minSSDIOPS = 1e18, 1e18
	for _, d := range devs {
		switch d.Class {
		case "E-HDD", "C-HDD":
			if d.GBPerUSD < minHDDCap {
				minHDDCap = d.GBPerUSD
			}
			if d.RandomIOPS > maxHDDIOPS {
				maxHDDIOPS = d.RandomIOPS
			}
		case "E-SSD", "C-SSD":
			if d.GBPerUSD > maxSSDCap {
				maxSSDCap = d.GBPerUSD
			}
			if d.RandomIOPS < minSSDIOPS {
				minSSDIOPS = d.RandomIOPS
			}
		default:
			t.Errorf("unknown class %q", d.Class)
		}
	}
	if minHDDCap <= maxSSDCap {
		t.Errorf("HDD capacity cluster (min %g GB/$) must exceed SSD (max %g GB/$)", minHDDCap, maxSSDCap)
	}
	if minSSDIOPS < 100*maxHDDIOPS {
		t.Errorf("SSD IOPS cluster (min %g) must dwarf HDD (max %g)", minSSDIOPS, maxHDDIOPS)
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{RandomReads: 2, SeqReads: 3, RandomWrites: 1, Elapsed: time.Second}
	if s.Reads() != 5 || s.Writes() != 1 {
		t.Error("stats totals wrong")
	}
	if s.String() == "" {
		t.Error("stats should format")
	}
}

// Property: after any sequence of writes, reading back returns the last
// written value.
func TestQuickLastWriteWins(t *testing.T) {
	d := New(Memory, 64)
	d.Allocate(8)
	last := make(map[PageID][]byte)
	prop := func(page uint8, val uint8) bool {
		id := PageID(page % 8)
		payload := make([]byte, 64)
		for i := range payload {
			payload[i] = val
		}
		if err := d.WritePage(id, payload); err != nil {
			return false
		}
		last[id] = payload
		buf := make([]byte, 64)
		if _, err := d.ReadPage(id, buf); err != nil {
			return false
		}
		for i := range buf {
			if buf[i] != last[id][i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
