package device

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentReadsExactTotals hammers ReadPage from many goroutines
// and checks that the lock-free accounting loses nothing: total reads
// and bytes must equal the exact number of operations issued, even
// though the random/sequential split depends on interleaving.
func TestConcurrentReadsExactTotals(t *testing.T) {
	const (
		pages   = 128
		workers = 8
		perW    = 500
	)
	d := New(Memory, 512)
	d.Allocate(pages)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]byte, 512)
			for i := 0; i < perW; i++ {
				id := PageID((w*perW + i) % pages)
				if _, err := d.ReadPage(id, buf); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	s := d.Stats()
	if got, want := s.Reads(), uint64(workers*perW); got != want {
		t.Errorf("total reads = %d, want %d", got, want)
	}
	if got, want := s.BytesRead, uint64(workers*perW*512); got != want {
		t.Errorf("bytes read = %d, want %d", got, want)
	}
	if s.RandomReads+s.SeqReads != s.Reads() {
		t.Error("read classification does not sum to the total")
	}
}

// TestConcurrentReadWriteDistinctPages runs writers and readers over
// disjoint page sets concurrently with ongoing allocation; the race
// detector verifies the striped locking, and the totals must be exact.
func TestConcurrentReadWriteDistinctPages(t *testing.T) {
	const (
		readPages  = 64
		writePages = 64
		workers    = 4
		perW       = 300
	)
	d := New(SSD, 256)
	d.Allocate(readPages + writePages)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]byte, 256)
			for i := 0; i < perW; i++ {
				if _, err := d.ReadPage(PageID(i%readPages), buf); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			payload := make([]byte, 256)
			for i := 0; i < perW; i++ {
				payload[0] = byte(w)
				id := PageID(readPages + (w*perW+i)%writePages)
				if err := d.WritePage(id, payload); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				d.Allocate(1)
				d.Stats() // snapshot while I/O is in flight
			}
		}()
	}
	wg.Wait()
	s := d.Stats()
	if got, want := s.Reads(), uint64(workers*perW); got != want {
		t.Errorf("total reads = %d, want %d", got, want)
	}
	if got, want := s.Writes(), uint64(workers*perW); got != want {
		t.Errorf("total writes = %d, want %d", got, want)
	}
	if got, want := d.NumPages(), uint64(readPages+writePages+workers*20); got != want {
		t.Errorf("pages = %d, want %d", got, want)
	}
}

// TestConcurrentSamePageReadWrite verifies a page read racing a write to
// the same page always observes a fully-copied image (never a torn mix),
// because both sides go through the page's stripe lock.
func TestConcurrentSamePageReadWrite(t *testing.T) {
	d := New(Memory, 128)
	d.Allocate(1)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		payload := make([]byte, 128)
		for v := byte(0); ; v++ {
			select {
			case <-stop:
				return
			default:
			}
			for i := range payload {
				payload[i] = v
			}
			if err := d.WritePage(0, payload); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	buf := make([]byte, 128)
	for i := 0; i < 2000; i++ {
		if _, err := d.ReadPage(0, buf); err != nil {
			t.Fatal(err)
		}
		for j := 1; j < len(buf); j++ {
			if buf[j] != buf[0] {
				close(stop)
				wg.Wait()
				t.Fatalf("torn read: byte 0 = %d, byte %d = %d", buf[0], j, buf[j])
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestSetRealLatencyDefaultOff ensures the default device never sleeps
// (latency 0) and that setting and clearing the latency round-trips.
func TestSetRealLatencyDefaultOff(t *testing.T) {
	d := New(Memory, 64)
	d.Allocate(1)
	if got := d.realLatency.Load(); got != 0 {
		t.Fatalf("default real latency = %d, want 0", got)
	}
	d.SetRealLatency(1)
	d.SetRealLatency(0)
	buf := make([]byte, 64)
	for i := 0; i < 3; i++ {
		if _, err := d.ReadPage(0, buf); err != nil {
			t.Fatal(err)
		}
	}
	if fmt.Sprint(d.Stats().Reads()) != "3" {
		t.Error("reads not accounted with latency disabled")
	}
}
