package core

import (
	"encoding/binary"
	"fmt"

	"bftree/internal/device"
)

// Internal nodes reuse the B+-Tree layout (the paper builds the levels
// above the BF-leaves from its B+-Tree code base, Section 6):
//
//	byte 0     kind (2)
//	bytes 1-2  key count (uint16)
//	keys (8 bytes each), then count+1 children (8 bytes each)
const nodeHeaderSize = 3

// internalNode has len(keys)+1 children; child i covers keys < keys[i]
// (leftmost descent on equality).
type internalNode struct {
	keys     []uint64
	children []device.PageID
}

// internalCapacity is the fanout of Equation 2 for this page size.
func internalCapacity(pageSize int) int {
	return (pageSize-nodeHeaderSize-8)/16 + 1
}

func encodeInternal(buf []byte, n *internalNode) error {
	if len(n.children) != len(n.keys)+1 {
		return fmt.Errorf("%w: internal node with %d keys, %d children",
			ErrCorrupt, len(n.keys), len(n.children))
	}
	need := nodeHeaderSize + len(n.keys)*8 + len(n.children)*8
	if need > len(buf) {
		return fmt.Errorf("%w: internal node needs %d bytes > page %d", ErrCorrupt, need, len(buf))
	}
	buf[0] = nodeInternal
	binary.LittleEndian.PutUint16(buf[1:3], uint16(len(n.keys)))
	off := nodeHeaderSize
	for _, k := range n.keys {
		binary.LittleEndian.PutUint64(buf[off:], k)
		off += 8
	}
	for _, c := range n.children {
		binary.LittleEndian.PutUint64(buf[off:], uint64(c))
		off += 8
	}
	for i := off; i < len(buf); i++ {
		buf[i] = 0
	}
	return nil
}

func decodeInternal(buf []byte) (*internalNode, error) {
	if len(buf) < nodeHeaderSize || buf[0] != nodeInternal {
		return nil, fmt.Errorf("%w: not an internal node", ErrCorrupt)
	}
	count := int(binary.LittleEndian.Uint16(buf[1:3]))
	if nodeHeaderSize+count*8+(count+1)*8 > len(buf) {
		return nil, fmt.Errorf("%w: internal count %d overflows page", ErrCorrupt, count)
	}
	n := &internalNode{
		keys:     make([]uint64, count),
		children: make([]device.PageID, count+1),
	}
	off := nodeHeaderSize
	for i := 0; i < count; i++ {
		n.keys[i] = binary.LittleEndian.Uint64(buf[off:])
		off += 8
	}
	for i := 0; i <= count; i++ {
		n.children[i] = device.PageID(binary.LittleEndian.Uint64(buf[off:]))
		off += 8
	}
	return n, nil
}

func nodeKind(buf []byte) (byte, error) {
	if len(buf) < 1 {
		return 0, fmt.Errorf("%w: empty page", ErrCorrupt)
	}
	k := buf[0]
	if k != nodeInternal && k != nodeBFLeaf {
		return 0, fmt.Errorf("%w: unknown node kind %d", ErrCorrupt, k)
	}
	return k, nil
}
