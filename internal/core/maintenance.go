package core

import (
	"math"
	"runtime"
	"sync/atomic"
	"time"
)

// This file is the tree's background maintenance layer (DESIGN.md §4):
// the scheduler that owns the structural upkeep the foreground write
// path used to perform inline — reclaiming retired copy-on-write pages
// once their epoch grace period passes, and compacting the index via
// Rebuild when accumulated insert/delete drift pushes the Equation 14
// fpp estimate past the configured threshold.
//
// The contract in one line: foreground structural writers *retire*
// (under the exclusive lock, as before) and then merely *request*
// maintenance; the maintainer (or an explicit Maintain call) *reclaims*
// and *compacts*. Probes carry a cheap epoch-exit hook (endProbe) that
// nudges the maintainer whenever limbo is non-empty, so a quiescent or
// read-only tree no longer pins retired pages until its next structural
// change.

// MaintenanceStats is a point-in-time snapshot of the maintenance
// layer's accounting. All counters are cumulative since the tree was
// built or opened; they keep counting across maintainer restarts.
type MaintenanceStats struct {
	// Running reports whether a background maintainer goroutine is
	// currently live (MaintenanceAuto, or an explicit StartMaintenance).
	Running bool
	// LimboPages is the current number of retired pages awaiting their
	// epoch grace period.
	LimboPages int
	// EffectiveFPP is the drift estimate observed by the most recent
	// maintenance pass (0 until a pass has run).
	EffectiveFPP float64
	// FPPThreshold is the policy's compaction threshold (after
	// defaulting): the Equation 14 estimate at which drift compaction
	// triggers, 1 when drift compaction is disabled. Exposed so layers
	// above the tree — the serving layer's admission backpressure — can
	// relate live drift to the compaction point without holding the
	// policy themselves.
	FPPThreshold float64

	// Passes counts maintenance passes (background or explicit Maintain).
	Passes uint64
	// PagesReclaimed counts limbo pages returned to the store's free list
	// by maintenance passes.
	PagesReclaimed uint64
	// Compactions counts drift-triggered whole-tree Rebuilds that
	// succeeded; CompactionFailures counts compactions (full or
	// incremental) that returned an error.
	Compactions        uint64
	CompactionFailures uint64

	// IncrementalPasses counts maintenance passes that compacted a
	// top-drifted leaf subset instead of rebuilding the whole tree
	// (MaintenancePolicy.IncrementalBatch > 0); LeavesCompacted counts
	// the leaves those passes (and explicit CompactLeaves calls)
	// rewrote.
	IncrementalPasses uint64
	LeavesCompacted   uint64

	// CompactionMinStall / CompactionMaxStall / CompactionTotalStall
	// aggregate the exclusive-lock hold of every compaction (one
	// whole-tree rebuild, or one bounded incremental batch including
	// its ranking walk). CompactionMaxStall is the longest single
	// writer stall any compaction caused — the headline number the
	// incremental path exists to shrink.
	CompactionMinStall   time.Duration
	CompactionMaxStall   time.Duration
	CompactionTotalStall time.Duration

	// ProbeWakeups counts maintainer nudges armed by the
	// probe-completion epoch-exit hook (at most one per maintenance
	// pass cycle, not one per probe); StructuralRequests counts foreground structural
	// changes that requested maintenance instead of reclaiming inline;
	// DriftWakeups counts writers that published a drift increment past
	// the compaction threshold and nudged the maintainer; TimerWakeups
	// counts periodic ReclaimInterval ticks that found work.
	ProbeWakeups       uint64
	StructuralRequests uint64
	DriftWakeups       uint64
	TimerWakeups       uint64

	// LockMisses counts passes that found the writer lock busy and
	// backed off (TryLock failed); ForcedLocks counts the escalations to
	// a blocking acquire because work was overdue (limbo past the high
	// water mark, fpp past the threshold, or the device growing while
	// reclaimable pages sat in limbo).
	LockMisses  uint64
	ForcedLocks uint64
}

// maintStats is the lock-free backing of MaintenanceStats. It lives on
// the Tree, not the maintainer, so counters survive stop/start cycles
// and explicit Maintain calls account into the same totals.
type maintStats struct {
	passes             atomic.Uint64
	pagesReclaimed     atomic.Uint64
	compactions        atomic.Uint64
	compactionFailures atomic.Uint64
	incrementalPasses  atomic.Uint64
	leavesCompacted    atomic.Uint64
	stallMinNS         atomic.Int64 // 0 = no compaction recorded yet
	stallMaxNS         atomic.Int64
	stallTotalNS       atomic.Int64
	probeWakeups       atomic.Uint64
	structuralRequests atomic.Uint64
	driftWakeups       atomic.Uint64
	timerWakeups       atomic.Uint64
	lockMisses         atomic.Uint64
	forcedLocks        atomic.Uint64
	lastFPPBits        atomic.Uint64
}

// recordCompactionStall folds one compaction's exclusive-lock hold into
// the min/max/total stall aggregates. CAS loops, not locks: the
// recorder may race MaintenanceStats snapshots, never another recorder
// of consequence (compactions run under the exclusive writeMu).
func (s *maintStats) recordCompactionStall(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 1 {
		ns = 1 // a sub-nanosecond hold still counts as a recorded stall
	}
	s.stallTotalNS.Add(ns)
	for {
		cur := s.stallMaxNS.Load()
		if ns <= cur || s.stallMaxNS.CompareAndSwap(cur, ns) {
			break
		}
	}
	for {
		cur := s.stallMinNS.Load()
		if (cur != 0 && ns >= cur) || s.stallMinNS.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// maintainer is the background goroutine driving the maintenance layer.
// One per Tree at most; the Tree holds it behind an atomic pointer so
// the probe-exit hook can consult it without locks.
type maintainer struct {
	tree *Tree
	wake chan struct{} // coalesced wakeup signal (probe exits, structural requests)
	stop chan struct{}
	done chan struct{}

	// pending arms the probe-exit nudge: endProbe touches the wake
	// channel only on the false→true transition, so probes completing
	// while a wakeup is already queued (or a pass is running) pay one
	// atomic load instead of contending on the channel lock.
	pending atomic.Bool

	// failedUntil (unix nanoseconds) backs a persistently failing
	// compaction off: drift past the threshold is not actionable again
	// before this instant, so a rebuild that keeps erroring does not
	// turn every wakeup into a blocking exclusive-lock hold for another
	// doomed bulk-load scan. Written by the maintainer, read by
	// drift-nudging writers (hence atomic). Explicit Maintain calls
	// ignore it — their caller sees the error directly.
	failedUntil atomic.Int64

	// driftCheckAt is the inserts+deletes total at which the next exact
	// Equation 14 evaluation runs: below it, crossing the threshold is
	// impossible (every drift op moves the estimate by at most
	// 1/numKeys — see rearmDriftCheck), so driftNudge's hot path is two
	// atomic loads and a compare instead of a math.Pow per write.
	driftCheckAt atomic.Uint64

	// lastFresh is the device-extending allocation count observed at
	// the end of the previous pass: growth while limbo is non-empty
	// means the store is extending the device for pages the free list
	// could have supplied — the free-list pressure signal that makes
	// reclamation overdue. misses counts consecutive TryLock failures
	// since the last acquired pass; past missEscalation the maintainer
	// stops being polite, or a tree whose latched writers never go idle
	// (the shared lock is read-held whenever any of them is inside)
	// would starve reclamation indefinitely. Both
	// maintainer-goroutine-only.
	lastFresh uint64
	misses    int
}

// missEscalation bounds how many consecutive passes the maintainer
// backs off before escalating to one blocking lock acquisition: with
// pending work it stalls writers at most once per missEscalation
// wakeups, instead of never reclaiming under sustained write pressure.
const missEscalation = 16

// compactionBackoffIntervals is the failed-compaction cooldown in
// reclaim intervals (50 × the 5ms default ≈ 250ms between retries).
const compactionBackoffIntervals = 50

func newMaintainer(t *Tree) *maintainer {
	fresh, _, _ := t.store.PressureStats()
	m := &maintainer{
		tree: t,
		wake: make(chan struct{}, 1),
		stop: make(chan struct{}),
		done: make(chan struct{}),
		// Baseline the pressure signal at start-up, or the bulk load's
		// own allocations would read as device growth and force the
		// first contended pass to a blocking lock.
		lastFresh: fresh,
	}
	m.rearmDriftCheck()
	return m
}

// rearmDriftCheck defers the next exact Equation 14 evaluation by the
// drift headroom: a delete adds exactly 1/numKeys to the effective fpp
// (Section 7) and an insert's marginal effect is strictly smaller (the
// derivative of fpp^(1/(1+x)) is bounded by 4e⁻²/|ln fpp| · 1/numKeys
// < 1/numKeys for every design fpp), so from estimate g the threshold
// cannot be crossed in fewer than (threshold-g)×numKeys drift ops.
// Writers skip the transcendental math until that total.
func (m *maintainer) rearmDriftCheck() {
	t := m.tree
	th := t.opts.Maintenance.FPPThreshold
	md := t.loadMeta()
	if th >= 1 || md.numKeys == 0 {
		m.driftCheckAt.Store(^uint64(0)) // compaction disabled: never check
		return
	}
	fpp := t.EffectiveFPP()
	if fpp >= th {
		m.driftCheckAt.Store(0) // actionable now: don't defer
		return
	}
	gap := uint64((th - fpp) * float64(md.numKeys))
	if gap < 1 {
		gap = 1
	}
	m.driftCheckAt.Store(md.inserts + md.deletes + gap)
}

// notify wakes the maintainer without ever blocking the caller; signals
// arriving while one is already pending coalesce.
func (m *maintainer) notify() {
	select {
	case m.wake <- struct{}{}:
	default:
	}
}

// run is the maintainer loop: wait for a signal (probe exit, structural
// request) or the periodic tick, then run one pass. The loop exits when
// Close (or StopMaintenance) closes the stop channel.
func (m *maintainer) run() {
	defer close(m.done)
	ticker := time.NewTicker(m.tree.opts.Maintenance.ReclaimInterval)
	defer ticker.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-m.wake:
		case <-ticker.C:
			if m.workPending() {
				m.tree.maintStats.timerWakeups.Add(1)
			}
		}
		// Re-arm the probe-exit nudge before the pass: a probe
		// completing mid-pass may be the one that drains the last
		// pinned epoch, and its nudge must queue another pass.
		m.pending.Store(false)
		m.pass()
	}
}

// nudgeProbe is the probe-exit side of the wake signal: only the
// arming transition touches the channel, so concurrent probe
// completions don't serialize on its lock while limbo drains.
func (m *maintainer) nudgeProbe() {
	if m.pending.CompareAndSwap(false, true) {
		m.tree.maintStats.probeWakeups.Add(1)
		m.notify()
	}
}

// workPending reports whether a pass would have anything productive to
// do: limbo pages whose epoch flip could actually succeed (a straggler
// reader pinning the flip makes limbo work futile — the pass would
// acquire the lock only for reclaim to free nothing), or actionable
// drift past the compaction threshold.
func (m *maintainer) workPending() bool {
	t := m.tree
	if t.limboLen.Load() > 0 && t.readers.canAdvance() {
		return true
	}
	return m.driftActionable()
}

// driftActionable reports drift past the compaction threshold, unless
// a recent compaction failure put retries on cooldown.
func (m *maintainer) driftActionable() bool {
	if time.Now().UnixNano() < m.failedUntil.Load() {
		return false
	}
	return m.tree.driftNeedsCompaction()
}

// overdue reports whether the maintainer should stop being polite about
// lock acquisition: limbo past the high water mark, drift past the
// compaction threshold, or the device growing (fresh, device-extending
// allocations) while reclaimable pages sit in limbo. Limbo-driven
// escalation requires a feasible epoch flip — stalling writers while a
// straggler reader pins the flip would free nothing.
func (m *maintainer) overdue() bool {
	t := m.tree
	if m.driftActionable() {
		return true
	}
	limbo := t.limboLen.Load()
	if limbo == 0 || !t.readers.canAdvance() {
		return false
	}
	if limbo > int64(t.opts.Maintenance.LimboHighWater) {
		return true
	}
	fresh, _, _ := t.store.PressureStats()
	return fresh > m.lastFresh
}

// pass runs one maintenance pass. Lock acquisition is TryLock-first: a
// TryLock never queues on writeMu, so a busy tree's latched writers are
// never stalled behind a waiting maintainer (Go's RWMutex blocks new
// RLocks once a writer waits). Only when work is overdue does the
// maintainer pay for one blocking acquire — the same bounded stall any
// foreground structural change causes.
func (m *maintainer) pass() {
	if !m.workPending() {
		return
	}
	t := m.tree
	if !t.writeMu.TryLock() {
		t.maintStats.lockMisses.Add(1)
		m.misses++
		if m.misses < missEscalation && !m.overdue() {
			return // back off; the ticker or the next signal retries
		}
		t.maintStats.forcedLocks.Add(1)
		t.writeMu.Lock()
	}
	m.misses = 0
	// Compaction errors are accounted in the stats; the maintainer has
	// no caller to surface them to, so a failure puts retries on a
	// cooldown instead — without it, unactionable drift would turn
	// every wakeup into a blocking lock hold for another doomed
	// bulk-load scan.
	more, err := t.maintainLocked(m.driftActionable())
	if err != nil {
		backoff := compactionBackoffIntervals * t.opts.Maintenance.ReclaimInterval
		m.failedUntil.Store(time.Now().Add(backoff).UnixNano())
	}
	// Re-baseline the pressure signal while still holding the lock (no
	// structural writer can allocate now): the pass's own compaction
	// allocations must not read as device growth next time. The drift
	// crossing bound is re-derived too — a compaction just reset the
	// counters, so the old bound no longer describes the new snapshot.
	fresh, _, _ := t.store.PressureStats()
	m.lastFresh = fresh
	m.rearmDriftCheck()
	t.writeMu.Unlock()
	// An incremental batch that left drift past the threshold queues the
	// next batch — after the unlock, so latched writers get their window.
	// Progress is guaranteed (each pass sheds the current top-drifted
	// leaves), so this converges unless writers re-earn drift as fast as
	// it is shed, in which case back-to-back bounded batches are exactly
	// the intended behavior.
	if more {
		m.notify()
	}
}

// driftNeedsCompaction reports whether the Equation 14 drift estimate
// has crossed the policy threshold. Only post-build drift is
// compactable: with zero recorded inserts and deletes a Rebuild would
// reproduce the same tree, so it is never triggered.
func (t *Tree) driftNeedsCompaction() bool {
	th := t.opts.Maintenance.FPPThreshold
	if th >= 1 {
		return false
	}
	m := t.loadMeta()
	if m.inserts == 0 && m.deletes == 0 {
		return false
	}
	return t.EffectiveFPP() >= th
}

// maintainLocked runs one maintenance pass under the exclusive writer
// lock: reclaim what the epoch scheme allows, compact if allowed and
// drift crossed the threshold, then reclaim again (a compaction retires
// old pages, and with quiescent readers the second flip frees the
// previous batch immediately). allowCompact lets the maintainer skip
// compaction during its failure cooldown; explicit Maintain calls
// always pass true, since their caller sees the error directly.
//
// With MaintenancePolicy.IncrementalBatch > 0 the compaction step
// rewrites only the top-drifted k leaves (compactIncrementalLocked)
// instead of the whole tree, bounding the lock hold; when drift is
// still past the threshold afterwards the pass reports more=true so the
// caller schedules another batch *after releasing the lock*, giving
// latched writers a window between batches — that release is the whole
// point of the incremental path. A batch that finds no attributable
// leaf drift while the estimate is past the threshold (pathological:
// counters desynced by a half-failed structural change) falls back to
// the whole-tree rebuild, which resets everything.
func (t *Tree) maintainLocked(allowCompact bool) (more bool, err error) {
	st := &t.maintStats
	st.passes.Add(1)
	if n := t.reclaim(); n > 0 {
		st.pagesReclaimed.Add(uint64(n))
	}
	fpp := t.EffectiveFPP()
	st.lastFPPBits.Store(math.Float64bits(fpp))
	if allowCompact && t.driftNeedsCompaction() {
		batch := t.opts.Maintenance.IncrementalBatch
		begin := time.Now()
		full := batch <= 0
		var compacted int
		if !full {
			compacted, err = t.compactIncrementalLocked(batch)
			if err == nil && compacted == 0 {
				full = true
			}
		}
		if full && err == nil {
			err = t.rebuildLocked()
		}
		stall := time.Since(begin)
		if err != nil {
			st.compactionFailures.Add(1)
		} else {
			if full {
				st.compactions.Add(1)
			} else {
				st.incrementalPasses.Add(1)
				st.leavesCompacted.Add(uint64(compacted))
				more = t.driftNeedsCompaction()
			}
			st.recordCompactionStall(stall)
			st.lastFPPBits.Store(math.Float64bits(t.EffectiveFPP()))
			// The compaction moved the drift counters, so a live
			// maintainer's crossing bound no longer describes the new
			// snapshot. Re-derive it here — not only in the maintainer's
			// own pass — or an explicit Maintain would leave a stale
			// bound that silences writer nudges until it is re-reached.
			if m := t.maint.Load(); m != nil {
				m.rearmDriftCheck()
			}
		}
	}
	if n := t.reclaim(); n > 0 {
		st.pagesReclaimed.Add(uint64(n))
	}
	return more, err
}

// maintRequest is how foreground structural writers (split, append,
// Rebuild — all under the exclusive lock) hand off the reclamation they
// used to perform inline. With a live maintainer the request is one
// non-blocking channel send; in manual mode the writer reclaims
// opportunistically inline, preserving the pre-maintainer behavior; in
// disabled mode retired pages simply accumulate until an explicit
// Maintain call.
func (t *Tree) maintRequest() {
	if m := t.maint.Load(); m != nil {
		t.maintStats.structuralRequests.Add(1)
		m.notify()
		return
	}
	if t.opts.Maintenance.Mode != MaintenanceDisabled {
		t.reclaim()
	}
}

// driftNudge is called by writers after a successful mutation, outside
// all tree locks: when a maintainer is live and the published drift has
// crossed the compaction threshold, the writer signals it and yields
// its timeslice. Compaction latency is then bounded by one scheduling
// round instead of the reclaim ticker — which matters on saturated
// hosts, where a busy writer pool can keep a timer-woken maintainer off
// the CPU for tens of milliseconds while drift keeps accruing. The
// common case (drift counters short of the cached crossing bound) is
// three atomic loads and a compare; the exact Equation 14 estimate runs
// only inside the final approach to the threshold. Writers still never
// perform maintenance — they only request it.
func (t *Tree) driftNudge() {
	m := t.maint.Load()
	if m == nil {
		return
	}
	md := t.loadMeta()
	if md.inserts+md.deletes < m.driftCheckAt.Load() {
		return
	}
	if time.Now().UnixNano() < m.failedUntil.Load() {
		return // compaction on failure cooldown: stay quiet
	}
	if !t.driftNeedsCompaction() {
		m.rearmDriftCheck()
		return
	}
	t.maintStats.driftWakeups.Add(1)
	m.notify()
	runtime.Gosched()
}

// StartMaintenance launches the background maintainer goroutine if none
// is running. BulkLoad and Open call it automatically under
// MaintenanceAuto; callers on MaintenanceManual may start one
// explicitly. It reports whether a maintainer is now running (false
// only under MaintenanceDisabled). Pair with Close.
func (t *Tree) StartMaintenance() bool {
	if t.opts.Maintenance.Mode == MaintenanceDisabled {
		return false
	}
	m := newMaintainer(t)
	if !t.maint.CompareAndSwap(nil, m) {
		return true // already running
	}
	go m.run()
	return true
}

// StopMaintenance stops the background maintainer, if any, and waits
// for its current pass to drain. The tree remains fully usable;
// structural writers fall back to inline reclamation (manual mode
// behavior). Close calls it.
func (t *Tree) StopMaintenance() {
	m := t.maint.Swap(nil)
	if m == nil {
		return
	}
	close(m.stop)
	<-m.done
}

// Close shuts the tree's maintenance layer down: it stops the
// background maintainer (waiting for an in-flight pass to finish) and
// makes a final best-effort reclamation sweep so a quiescent tree
// releases its whole limbo to the store's free list. The tree itself
// stays readable — Close owns no I/O resources — but a closed tree no
// longer performs background maintenance until StartMaintenance is
// called again. Close is idempotent and safe to call concurrently with
// probes and writers.
func (t *Tree) Close() error {
	t.StopMaintenance()
	if t.opts.Maintenance.Mode == MaintenanceDisabled {
		return nil
	}
	t.writeMu.Lock()
	defer t.writeMu.Unlock()
	// Two flips drain both limbo buckets when readers are quiescent; a
	// still-registered reader legitimately blocks the flip, and the
	// pages stay in limbo for a later Maintain or maintainer restart.
	for i := 0; i < 2; i++ {
		if n := t.reclaim(); n > 0 {
			t.maintStats.pagesReclaimed.Add(uint64(n))
		}
	}
	return nil
}

// Maintain runs synchronous maintenance to completion: reclaim whatever
// the epoch scheme allows and compact if the drift threshold is
// crossed. It is the manual-mode counterpart of the background
// maintainer and works in every mode (an explicit call is manual by
// definition); it blocks for the exclusive writer lock, like any
// structural change. Under an incremental policy it runs bounded
// batches back to back — releasing the lock between them, like the
// maintainer — until drift is below the threshold; each batch makes
// progress, so the loop terminates. The error, if any, is the
// compaction's.
func (t *Tree) Maintain() error {
	for {
		t.writeMu.Lock()
		more, err := t.maintainLocked(true)
		t.writeMu.Unlock()
		if err != nil || !more {
			return err
		}
	}
}

// MaintenanceStats returns a snapshot of the maintenance layer's
// accounting. Safe to call from any goroutine at any time.
func (t *Tree) MaintenanceStats() MaintenanceStats {
	st := &t.maintStats
	return MaintenanceStats{
		Running:              t.maint.Load() != nil,
		LimboPages:           int(t.limboLen.Load()),
		EffectiveFPP:         math.Float64frombits(st.lastFPPBits.Load()),
		FPPThreshold:         t.opts.Maintenance.FPPThreshold,
		Passes:               st.passes.Load(),
		PagesReclaimed:       st.pagesReclaimed.Load(),
		Compactions:          st.compactions.Load(),
		CompactionFailures:   st.compactionFailures.Load(),
		IncrementalPasses:    st.incrementalPasses.Load(),
		LeavesCompacted:      st.leavesCompacted.Load(),
		CompactionMinStall:   time.Duration(st.stallMinNS.Load()),
		CompactionMaxStall:   time.Duration(st.stallMaxNS.Load()),
		CompactionTotalStall: time.Duration(st.stallTotalNS.Load()),
		ProbeWakeups:         st.probeWakeups.Load(),
		StructuralRequests:   st.structuralRequests.Load(),
		DriftWakeups:         st.driftWakeups.Load(),
		TimerWakeups:         st.timerWakeups.Load(),
		LockMisses:           st.lockMisses.Load(),
		ForcedLocks:          st.forcedLocks.Load(),
	}
}
