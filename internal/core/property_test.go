package core

import (
	"sort"
	"testing"
	"testing/quick"

	"bftree/internal/device"
	"bftree/internal/heapfile"
	"bftree/internal/pagestore"
)

// TestQuickEndToEnd is the whole-index property: for arbitrary ordered
// multisets of keys and arbitrary fpp settings, a bulk-loaded BF-Tree
// returns exactly the tuples of every present key (correct multiplicity,
// no false negatives) and nothing for keys outside the domain.
func TestQuickEndToEnd(t *testing.T) {
	schema := heapfile.Schema{
		TupleSize: 32,
		Fields:    []heapfile.Field{{Name: "k", Offset: 0}},
	}
	prop := func(rawKeys []uint16, fppSel uint8) bool {
		if len(rawKeys) == 0 {
			return true
		}
		keys := make([]uint64, len(rawKeys))
		counts := make(map[uint64]int)
		for i, rk := range rawKeys {
			keys[i] = uint64(rk % 1000)
			counts[keys[i]]++
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

		store := pagestore.New(device.New(device.Memory, 1024))
		b, err := heapfile.NewBuilder(store, schema)
		if err != nil {
			return false
		}
		tup := make([]byte, 32)
		for _, k := range keys {
			schema.Set(tup, 0, k)
			if err := b.Append(tup); err != nil {
				return false
			}
		}
		file, err := b.Finish()
		if err != nil {
			return false
		}
		fpps := []float64{0.3, 0.05, 1e-3, 1e-8}
		tr, err := BulkLoad(pagestore.New(device.New(device.Memory, 1024)),
			file, 0, Options{FPP: fpps[int(fppSel)%len(fpps)]})
		if err != nil {
			return false
		}
		for k, want := range counts {
			res, err := tr.Search(k)
			if err != nil || len(res.Tuples) != want {
				return false
			}
		}
		// Keys beyond the domain never match.
		res, err := tr.Search(5000)
		return err == nil && len(res.Tuples) == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickInsertSearchAgree: after random interleavings of re-inserts,
// every original key stays findable.
func TestQuickInsertSearchAgree(t *testing.T) {
	f, _ := buildInitialFile(t, 2000)
	tr, err := BulkLoad(pagestore.New(device.New(device.Memory, 4096)), f, 0, Options{FPP: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	prop := func(raw uint16) bool {
		k := uint64(raw % 2000)
		if err := tr.Insert(k, f.PageOf(k)); err != nil {
			return false
		}
		res, err := tr.SearchFirst(k)
		return err == nil && len(res.Tuples) == 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
