package core

import (
	"errors"
	"sync"
	"testing"

	"bftree/internal/device"
	"bftree/internal/heapfile"
	"bftree/internal/pagestore"
)

// buildKeyedFile creates a data file holding exactly the given ordered
// keys, one tuple each.
func buildKeyedFile(t *testing.T, keys []uint64) (*heapfile.File, *pagestore.Store) {
	t.Helper()
	store := pagestore.New(device.New(device.Memory, 4096))
	b, err := heapfile.NewBuilder(store, insertSchema)
	if err != nil {
		t.Fatal(err)
	}
	tup := make([]byte, 64)
	for _, k := range keys {
		insertSchema.Set(tup, 0, k)
		if err := b.Append(tup); err != nil {
			t.Fatal(err)
		}
	}
	f, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return f, store
}

// TestRouteBoundMatchesInsertRouting pins the Flush routing invariant:
// for any key, every key up to routeBound of its insert descent must
// route to the same leaf, and the first key past the bound must not.
// The old inclusive bound claimed the separator itself for the left
// leaf, while insert routing (key < separator goes left) sends a key
// equal to the separator right.
func TestRouteBoundMatchesInsertRouting(t *testing.T) {
	f, _ := buildInitialFile(t, 5000)
	idx := pagestore.New(device.New(device.Memory, 4096))
	tr, err := BulkLoad(idx, f, 0, Options{FPP: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumLeaves() < 2 {
		t.Skip("need multiple leaves")
	}
	for k := uint64(0); k < 5000; k += 37 {
		_, leafPid, path, err := tr.descendPath(k, true)
		if err != nil {
			t.Fatal(err)
		}
		bound := routeBound(path)
		if bound < k {
			t.Fatalf("key %d: bound %d below the key itself", k, bound)
		}
		_, atBoundPid, _, err := tr.descendPath(bound, true)
		if err != nil {
			t.Fatal(err)
		}
		if atBoundPid != leafPid {
			t.Fatalf("key %d: bound %d routes to leaf %d, key's leaf is %d",
				k, bound, atBoundPid, leafPid)
		}
		if bound == ^uint64(0) {
			continue
		}
		_, pastPid, _, err := tr.descendPath(bound+1, true)
		if err != nil {
			t.Fatal(err)
		}
		if pastPid == leafPid {
			t.Fatalf("key %d: bound %d is not tight, %d still routes to leaf %d",
				k, bound, bound+1, leafPid)
		}
	}
}

// TestFlushStraddlingSeparator flushes one batch whose keys surround
// (and include) a separator key and checks the buffered tree ends up
// exactly where direct inserts put an identical twin: same drift
// counters, same answers. With the inclusive bound, the separator key
// was applied to the left leaf — the wrong leaf and the wrong filter.
func TestFlushStraddlingSeparator(t *testing.T) {
	f, _ := buildInitialFile(t, 5000)
	direct, err := BulkLoad(pagestore.New(device.New(device.Memory, 4096)), f, 0, Options{FPP: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	buffered, err := BulkLoad(pagestore.New(device.New(device.Memory, 4096)), f, 0, Options{FPP: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if direct.Height() < 2 {
		t.Skip("need internal levels")
	}
	// The first root separator is the min key of some right-hand leaf.
	rootBuf, err := direct.Store().ReadPage(direct.Root())
	if err != nil {
		t.Fatal(err)
	}
	root, err := decodeInternal(rootBuf)
	if err != nil {
		t.Fatal(err)
	}
	sep := root.keys[0]

	buf := buffered.NewBufferedInserter(1 << 20)
	for _, k := range []uint64{sep - 2, sep - 1, sep, sep + 1, sep + 2} {
		pid := f.PageOf(k)
		if err := direct.Insert(k, pid); err != nil {
			t.Fatalf("direct insert %d: %v", k, err)
		}
		if err := buf.Insert(k, pid); err != nil {
			t.Fatal(err)
		}
	}
	if err := buf.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if d, b := direct.loadMeta().inserts, buffered.loadMeta().inserts; d != b {
		t.Errorf("drift counters diverged: direct %d vs buffered %d", d, b)
	}
	for _, k := range []uint64{sep - 2, sep - 1, sep, sep + 1, sep + 2} {
		a, err := direct.SearchFirst(k)
		if err != nil {
			t.Fatal(err)
		}
		b, err := buffered.SearchFirst(k)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Tuples) != len(b.Tuples) {
			t.Errorf("key %d: direct %d tuples vs buffered %d", k, len(a.Tuples), len(b.Tuples))
		}
	}
}

// TestFlushKeepsPendingOnError injects a failing entry mid-flush and
// asserts the no-lost-inserts invariant: every buffered entry is either
// durably applied or still pending after the error. The old Flush
// cleared the buffer up front, silently dropping the unapplied
// remainder.
func TestFlushKeepsPendingOnError(t *testing.T) {
	// Sparse keys (0,2,4,...) leave odd keys free to insert as genuinely
	// new in-range keys, which makes the applied prefix observable.
	keys := make([]uint64, 4000)
	for i := range keys {
		keys[i] = uint64(2 * i)
	}
	f, _ := buildKeyedFile(t, keys)
	tr, err := BulkLoad(pagestore.New(device.New(device.Memory, 4096)), f, 0, Options{FPP: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumLeaves() < 2 {
		t.Skip("need a leaf with minPid > 0")
	}
	// Three new odd keys inside a leaf that does not start at page 0;
	// the third gets an impossible pid (before the leaf's page range) so
	// its slow-path insert fails with ErrKeyRange.
	good1, good2, bad := keys[3000]+1, keys[3001]+1, keys[3002]+1
	b := tr.NewBufferedInserter(1 << 20)
	if err := b.Insert(good1, f.PageOf(3000)); err != nil {
		t.Fatal(err)
	}
	if err := b.Insert(good2, f.PageOf(3001)); err != nil {
		t.Fatal(err)
	}
	if err := b.Insert(bad, 0); err != nil { // page 0 is far left of this leaf
		t.Fatal(err)
	}
	err = b.Flush()
	if !errors.Is(err, ErrKeyRange) {
		t.Fatalf("flush error = %v, want ErrKeyRange", err)
	}
	if got := b.Pending(); got != 1 {
		t.Fatalf("pending after failed flush = %d, want 1 (the failing entry)", got)
	}
	if b.pending[0].key != bad {
		t.Errorf("retained entry has key %d, want the failing %d", b.pending[0].key, bad)
	}
	// The applied prefix is durable: both new keys are now candidates on
	// their pages and counted as drift inserts.
	if got := tr.loadMeta().inserts; got != 2 {
		t.Errorf("drift inserts = %d, want 2 (the applied prefix)", got)
	}
	for i, k := range []uint64{good1, good2} {
		var stats ProbeStats
		pages, err := tr.candidatePages(k, &stats)
		if err != nil {
			t.Fatal(err)
		}
		want := f.PageOf(uint64(3000 + i))
		found := false
		for _, p := range pages {
			if p == want {
				found = true
			}
		}
		if !found {
			t.Errorf("applied key %d lost: page %d not a candidate", k, want)
		}
	}
}

// TestSplitFullDomainSpanLeaf splits a leaf whose key range covers the
// entire uint64 domain. The old enumeration guard computed the span as
// maxKey-minKey+1, which wraps to zero and selected probe enumeration
// over zero keys, failing with a spurious "one half is empty" error.
func TestSplitFullDomainSpanLeaf(t *testing.T) {
	var keys []uint64
	for i := uint64(0); i < 100; i++ {
		keys = append(keys, i)
	}
	for i := uint64(0); i < 100; i++ {
		keys = append(keys, 1<<63+i)
	}
	keys = append(keys, ^uint64(0)) // leaf spans [0, MaxUint64]
	f, _ := buildKeyedFile(t, keys)
	tr, err := BulkLoad(pagestore.New(device.New(device.Memory, 4096)), f, 0, Options{FPP: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumLeaves() != 1 {
		t.Fatalf("fixture should bulk-load one leaf, got %d", tr.NumLeaves())
	}
	// Saturate the leaf's key budget so the next insert must split.
	leaf, leafPid, _, err := tr.descendPath(0, true)
	if err != nil {
		t.Fatal(err)
	}
	if leaf.minKey != 0 || leaf.maxKey != ^uint64(0) {
		t.Fatalf("leaf spans [%d,%d], want the full domain", leaf.minKey, leaf.maxKey)
	}
	leaf.numKeys = uint32(tr.geo.KeysPerLeaf)
	if err := tr.writeLeaf(leafPid, leaf); err != nil {
		t.Fatal(err)
	}
	// A genuinely new key forces the capacity split (a claimed key would
	// absorb in place regardless of capacity).
	if err := tr.Insert(150, f.PageOf(50)); err != nil {
		t.Fatalf("insert into full-domain leaf: %v", err)
	}
	if tr.NumLeaves() != 2 {
		t.Errorf("leaves = %d, want 2 after the split", tr.NumLeaves())
	}
	for _, k := range []uint64{0, 99, 1 << 63, 1<<63 + 99, ^uint64(0)} {
		res, err := tr.SearchFirst(k)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Tuples) != 1 {
			t.Errorf("key %d lost through the full-domain split", k)
		}
	}
}

// TestBufferedSearchMergesIndexedAndBuffered puts the same key on an
// indexed page and on a buffered (not yet flushed) page and checks the
// search returns both tuples. The old overlay appended buffered matches
// only when the index probe found nothing, losing the buffered copy
// whenever the key already existed somewhere.
func TestBufferedSearchMergesIndexedAndBuffered(t *testing.T) {
	f, store := buildInitialFile(t, 2000)
	tr, err := BulkLoad(pagestore.New(device.New(device.Memory, 4096)), f, 0, Options{FPP: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	key := uint64(777)

	// Append a page holding a second tuple for key (a duplicate arriving
	// out of band), extend the file view, and buffer its insert.
	b2, err := heapfile.NewBuilder(store, insertSchema)
	if err != nil {
		t.Fatal(err)
	}
	tup := make([]byte, 64)
	insertSchema.Set(tup, 0, key)
	tup[8] = 1 // distinct payload: a second row for the same key
	if err := b2.Append(tup); err != nil {
		t.Fatal(err)
	}
	f2, err := b2.Finish()
	if err != nil {
		t.Fatal(err)
	}
	f.Extend(f2.NumPages(), f2.NumTuples())

	buf := tr.NewBufferedInserter(1 << 20)
	if err := buf.Insert(key, f2.FirstPage()); err != nil {
		t.Fatal(err)
	}
	res, err := buf.Search(key)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 2 {
		t.Fatalf("search returned %d tuples, want 2 (indexed + buffered page)", len(res.Tuples))
	}

	// A buffered insert pointing at a page the probe already fetched
	// must not duplicate its tuples.
	if err := buf.Insert(key, f.PageOf(key)); err != nil {
		t.Fatal(err)
	}
	res, err = buf.Search(key)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 2 {
		t.Fatalf("re-fetching an already-probed page changed the count: %d tuples, want 2", len(res.Tuples))
	}
}

// TestConcurrentReadersWithWriter is the single-writer/multi-reader
// contract under the race detector: 8 goroutines run Search/RangeScan
// while one writer streams appends that force new leaves, capacity
// splits, and root growth, all through the COW path. Readers must never
// see an error, a torn tree, or a lost key; afterwards the retired COW
// pages must be reclaimable through the store's free list.
func TestConcurrentReadersWithWriter(t *testing.T) {
	const initial = 3000
	f, dataStore := buildInitialFile(t, initial)
	// 128-byte index pages keep leaf capacity and internal fanout small,
	// so a few thousand appended keys drive many splits and at least one
	// root growth.
	idx := pagestore.New(device.New(device.Memory, 128))
	tr, err := BulkLoad(idx, f, 0, Options{FPP: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	h0 := tr.Height()

	done := make(chan struct{})
	var writerErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the single writer
		defer wg.Done()
		defer close(done)
		perPage := f.TuplesPerPage()
		next := uint64(initial)
		tup := make([]byte, 64)
		for batch := 0; batch < 70; batch++ {
			b, err := heapfile.NewBuilder(dataStore, insertSchema)
			if err != nil {
				writerErr = err
				return
			}
			for i := 0; i < perPage; i++ {
				insertSchema.Set(tup, 0, next+uint64(i))
				if err := b.Append(tup); err != nil {
					writerErr = err
					return
				}
			}
			seg, err := b.Finish()
			if err != nil {
				writerErr = err
				return
			}
			f.Extend(seg.NumPages(), seg.NumTuples())
			for i := 0; i < perPage; i++ {
				if err := tr.Insert(next+uint64(i), seg.FirstPage()); err != nil {
					writerErr = err
					return
				}
			}
			next += uint64(perPage)
		}
	}()

	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-done:
					return
				default:
				}
				k := uint64((i*131 + w*977) % initial)
				if i%4 == 3 {
					if _, err := tr.RangeScan(k, k+20); err != nil {
						t.Errorf("reader %d: range scan [%d,%d]: %v", w, k, k+20, err)
						return
					}
				} else {
					res, err := tr.SearchFirst(k)
					if err != nil {
						t.Errorf("reader %d: search %d: %v", w, k, err)
						return
					}
					if len(res.Tuples) == 0 {
						t.Errorf("reader %d: key %d vanished mid-write", w, k)
						return
					}
				}
				i++
			}
		}(w)
	}
	wg.Wait()
	if writerErr != nil {
		t.Fatalf("writer: %v", writerErr)
	}

	// The writer's structural changes went through: new leaves and at
	// least one root growth.
	if tr.Height() <= h0 {
		t.Errorf("height %d did not grow (started at %d); splits not exercised", tr.Height(), h0)
	}
	// Every appended key is indexed.
	final := f.NumTuples()
	for k := uint64(initial); k < final; k += 97 {
		res, err := tr.SearchFirst(k)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Tuples) == 0 {
			t.Errorf("appended key %d lost", k)
		}
	}
	// With all readers gone, two epoch flips reclaim every retired COW
	// page into the store's free list: the structural churn must not
	// leak pages.
	tr.writeMu.Lock()
	tr.reclaim()
	tr.reclaim()
	leaked := len(tr.limboPrev) + len(tr.limboCur)
	tr.writeMu.Unlock()
	if leaked != 0 {
		t.Errorf("%d retired pages stuck in limbo after quiescent flips", leaked)
	}
	if idx.FreePages() == 0 {
		t.Error("no retired pages reached the free list; COW is leaking")
	}
	if freed, _ := idx.FreeListStats(); freed == 0 {
		t.Error("free-list accounting saw no frees")
	}
}

// TestCOWSplitRecyclesPages checks the quiescent (no concurrent
// readers) page economy: after heavy structural churn, retired pages
// are reused by later allocations, so the index's device footprint
// stays near its live page count instead of growing with every split.
func TestCOWSplitRecyclesPages(t *testing.T) {
	// Sparse even keys: the odd keys inserted below are genuinely new,
	// which is what pushes a saturated leaf into a split (a claimed key
	// absorbs in place regardless of capacity).
	keys := make([]uint64, 2000)
	for i := range keys {
		keys[i] = uint64(2 * i)
	}
	f, _ := buildKeyedFile(t, keys)
	idx := pagestore.New(device.New(device.Memory, 128))
	tr, err := BulkLoad(idx, f, 0, Options{FPP: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	// Inserting new odd keys into leaves whose capacity is saturated
	// forces a long run of splits without needing new data pages.
	splits := 0
	for round := 0; round < 60; round++ {
		ord := round * 37 % 2000
		k := keys[ord] + 1
		pid := f.PageOf(uint64(ord))
		leaf, leafPid, _, err := tr.descendPath(k, true)
		if err != nil {
			t.Fatal(err)
		}
		if pid < leaf.minPid || pid > leaf.maxPid {
			continue // boundary ordinal routed past its page's leaf
		}
		if uint64(leaf.numKeys) < tr.geo.KeysPerLeaf {
			leaf.numKeys = uint32(tr.geo.KeysPerLeaf)
			if err := tr.writeLeaf(leafPid, leaf); err != nil {
				t.Fatal(err)
			}
		}
		before := tr.NumLeaves()
		if err := tr.Insert(k, pid); err != nil {
			t.Fatal(err)
		}
		if tr.NumLeaves() > before {
			splits++
		}
	}
	if splits == 0 {
		t.Fatal("no insert forced a split; fixture broken")
	}
	freed, reused := idx.FreeListStats()
	if freed == 0 {
		t.Fatal("no pages were freed across 40 forced splits")
	}
	if reused == 0 {
		t.Fatal("no freed pages were recycled by later splits")
	}
	// Live pages + currently free + still-in-limbo account for the whole
	// device: nothing leaked.
	live := tr.NumNodes()
	inLimbo := uint64(len(tr.limboPrev) + len(tr.limboCur))
	total := idx.Device().NumPages()
	if live+uint64(idx.FreePages())+inLimbo != total {
		t.Errorf("page economy leaks: live %d + free %d + limbo %d != device %d",
			live, idx.FreePages(), inLimbo, total)
	}
}
