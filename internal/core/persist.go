package core

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"bftree/internal/device"
	"bftree/internal/heapfile"
	"bftree/internal/pagestore"
)

// Index metadata layout (little-endian):
//
//	bytes 0-3   magic "BFT1"
//	bytes 4-11  fpp (float64 bits)
//	bytes 12-15 granularity (uint32)
//	bytes 16-19 hashes (uint32)
//	byte  20    filter kind
//	byte  21    parallel probe flag
//	bytes 22-29 root pid
//	bytes 30-37 first leaf pid
//	bytes 38-41 height (uint32)
//	bytes 42-49 leaves
//	bytes 50-57 nodes
//	bytes 58-65 keys
//	bytes 66-73 inserts
//	bytes 74-81 deletes
//	bytes 82-85 field index (uint32)
//
// Blobs may carry a maintenance-policy extension (the self-maintaining
// mode's knobs); 86-byte blobs from before the extension still open,
// defaulting to manual maintenance:
//
//	byte  86    maintenance mode
//	bytes 87-94 fpp compaction threshold (float64 bits)
//	bytes 95-102 reclaim interval (int64 nanoseconds)
//	bytes 103-106 limbo high water (uint32)
//
// A second extension carries the incremental-compaction batch; 107-byte
// blobs from before it still open, defaulting to whole-tree compaction:
//
//	bytes 107-110 incremental compaction batch (uint32, 0 = full rebuild)
const (
	metaSize      = 86
	metaMaintSize = 107
	metaIncrSize  = 111
)

var metaMagic = [4]byte{'B', 'F', 'T', '1'}

// MarshalMeta serializes the tree's metadata — everything needed to
// reopen the index over its store and data file without rebuilding. The
// paper stresses that the small index enables fast rebuilds; persistence
// makes reopening free.
func (t *Tree) MarshalMeta() []byte {
	m := t.loadMeta()
	buf := make([]byte, metaIncrSize)
	copy(buf[0:4], metaMagic[:])
	binary.LittleEndian.PutUint64(buf[4:12], math.Float64bits(t.opts.FPP))
	binary.LittleEndian.PutUint32(buf[12:16], uint32(t.opts.Granularity))
	binary.LittleEndian.PutUint32(buf[16:20], uint32(t.opts.Hashes))
	buf[20] = byte(t.opts.Filter)
	if t.opts.ParallelProbe {
		buf[21] = 1
	}
	binary.LittleEndian.PutUint64(buf[22:30], uint64(m.root))
	binary.LittleEndian.PutUint64(buf[30:38], uint64(m.firstLeaf))
	binary.LittleEndian.PutUint32(buf[38:42], uint32(m.height))
	binary.LittleEndian.PutUint64(buf[42:50], m.numLeaves)
	binary.LittleEndian.PutUint64(buf[50:58], m.numNodes)
	binary.LittleEndian.PutUint64(buf[58:66], m.numKeys)
	binary.LittleEndian.PutUint64(buf[66:74], m.inserts)
	binary.LittleEndian.PutUint64(buf[74:82], m.deletes)
	binary.LittleEndian.PutUint32(buf[82:86], uint32(t.fieldIdx))
	mp := t.opts.Maintenance
	buf[86] = byte(mp.Mode)
	binary.LittleEndian.PutUint64(buf[87:95], math.Float64bits(mp.FPPThreshold))
	binary.LittleEndian.PutUint64(buf[95:103], uint64(mp.ReclaimInterval.Nanoseconds()))
	binary.LittleEndian.PutUint32(buf[103:107], uint32(mp.LimboHighWater))
	binary.LittleEndian.PutUint32(buf[107:111], uint32(mp.IncrementalBatch))
	return buf
}

// Open reopens a tree from metadata produced by MarshalMeta. The store
// must hold the index pages the metadata references, and file must be
// the indexed relation.
func Open(store *pagestore.Store, file *heapfile.File, meta []byte) (*Tree, error) {
	return open(store, file, meta, nil)
}

// open is Open with the tree's partition attached before any maintainer
// goroutine starts — a maintainer racing ahead of the partition could
// compact a shard into a whole-file index.
func open(store *pagestore.Store, file *heapfile.File, meta []byte, part *Partition) (*Tree, error) {
	if len(meta) < metaSize {
		return nil, fmt.Errorf("%w: metadata is %d bytes, want %d", ErrCorrupt, len(meta), metaSize)
	}
	if [4]byte(meta[0:4]) != metaMagic {
		return nil, fmt.Errorf("%w: bad metadata magic", ErrCorrupt)
	}
	opts := Options{
		FPP:           math.Float64frombits(binary.LittleEndian.Uint64(meta[4:12])),
		Granularity:   int(binary.LittleEndian.Uint32(meta[12:16])),
		Hashes:        int(binary.LittleEndian.Uint32(meta[16:20])),
		Filter:        FilterKind(meta[20]),
		ParallelProbe: meta[21] == 1,
	}
	if len(meta) > metaSize && len(meta) < metaMaintSize {
		// Only exactly-86-byte blobs are legacy; anything between is a
		// torn maintenance extension, and opening it would silently
		// revert a tuned policy to manual defaults.
		return nil, fmt.Errorf("%w: metadata is %d bytes, want %d or %d",
			ErrCorrupt, len(meta), metaSize, metaMaintSize)
	}
	if len(meta) > metaMaintSize && len(meta) < metaIncrSize {
		// Same torn-extension rule for the incremental-compaction field:
		// exactly 107 bytes is the previous version, anything between is
		// a truncated write.
		return nil, fmt.Errorf("%w: metadata is %d bytes, want %d or %d",
			ErrCorrupt, len(meta), metaMaintSize, metaIncrSize)
	}
	if len(meta) >= metaMaintSize {
		// Clamp the high-water mark to the platform int so a blob
		// written on a 64-bit host reopens on 32-bit instead of going
		// negative and failing validation.
		hw := uint64(binary.LittleEndian.Uint32(meta[103:107]))
		if hw > math.MaxInt {
			hw = math.MaxInt
		}
		opts.Maintenance = MaintenancePolicy{
			Mode:            MaintenanceMode(meta[86]),
			FPPThreshold:    math.Float64frombits(binary.LittleEndian.Uint64(meta[87:95])),
			ReclaimInterval: time.Duration(binary.LittleEndian.Uint64(meta[95:103])),
			LimboHighWater:  int(hw),
		}
	}
	if len(meta) >= metaIncrSize {
		// Same 32-bit clamp as the high-water mark.
		ib := uint64(binary.LittleEndian.Uint32(meta[107:111]))
		if ib > math.MaxInt {
			ib = math.MaxInt
		}
		opts.Maintenance.IncrementalBatch = int(ib)
	}
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	geo, err := geometryFor(store.PageSize(), o)
	if err != nil {
		return nil, err
	}
	fieldIdx := int(binary.LittleEndian.Uint32(meta[82:86]))
	if fieldIdx < 0 || fieldIdx >= len(file.Schema().Fields) {
		return nil, fmt.Errorf("%w: field index %d out of schema", ErrCorrupt, fieldIdx)
	}
	t := &Tree{
		store:    store,
		file:     file,
		fieldIdx: fieldIdx,
		opts:     o,
		geo:      geo,
		part:     part,
	}
	m := &treeMeta{
		root:      device.PageID(binary.LittleEndian.Uint64(meta[22:30])),
		firstLeaf: device.PageID(binary.LittleEndian.Uint64(meta[30:38])),
		height:    int(binary.LittleEndian.Uint32(meta[38:42])),
		numLeaves: binary.LittleEndian.Uint64(meta[42:50]),
		numNodes:  binary.LittleEndian.Uint64(meta[50:58]),
		numKeys:   binary.LittleEndian.Uint64(meta[58:66]),
		inserts:   binary.LittleEndian.Uint64(meta[66:74]),
		deletes:   binary.LittleEndian.Uint64(meta[74:82]),
	}
	t.meta.Store(m)
	// Sanity-probe the root so corrupt metadata fails fast.
	buf, err := store.ReadPage(m.root)
	if err != nil {
		return nil, fmt.Errorf("bftree: open: %w", err)
	}
	if _, err := nodeKind(buf); err != nil {
		return nil, fmt.Errorf("bftree: open: root page: %w", err)
	}
	if t.opts.Maintenance.Mode == MaintenanceAuto {
		t.StartMaintenance()
	}
	return t, nil
}

// Rebuild re-bulk-loads the index from its data file with the same
// options, discarding accumulated fpp drift from inserts and deletes.
// "The smaller size enables fast rebuilds if needed" (Section 1.4): a
// BF-Tree rebuild is one sequential pass over the data and one over the
// new leaves. The fresh tree is published as one atomic snapshot, so
// probes running concurrently see either the drifted or the rebuilt
// index; every page of the old tree is retired and returns to the
// store's free list once the epoch grace period passes.
func (t *Tree) Rebuild() error {
	t.writeMu.Lock()
	defer t.writeMu.Unlock()
	if err := t.rebuildLocked(); err != nil {
		return err
	}
	t.maintRequest()
	return nil
}

// rebuildLocked is Rebuild's body; callers hold the exclusive writeMu.
// It retires the whole old tree but performs no reclamation — that is
// the maintenance layer's job (the background maintainer under auto
// mode, the inline maintRequest fallback under manual).
//
// The replacement comes from bulkLoadTree, not BulkLoad: the fresh Tree
// shell is discarded after its published meta is adopted, so it must
// not own a maintainer goroutine. The new snapshot carries zero
// insert/delete drift — BulkLoad counts only build-time keys — which is
// what lets the drift-triggered compaction terminate instead of
// re-triggering itself (asserted by TestRebuildClearsDrift).
func (t *Tree) rebuildLocked() error {
	old := t.loadMeta()
	// Collect the old tree's pages (writer-side walk) before the new
	// snapshot replaces it.
	retired, err := t.internalPagesOf(old)
	if err != nil {
		return err
	}
	pid := old.firstLeaf
	for pid != device.InvalidPage {
		retired = append(retired, pid)
		var stats ProbeStats
		leaf, err := t.readLeaf(pid, &stats)
		if err != nil {
			return err
		}
		pid = leaf.next
	}
	fresh, err := bulkLoadTree(t.store, t.file, t.fieldIdx, t.opts, t.part)
	if err != nil {
		return err
	}
	t.meta.Store(fresh.loadMeta())
	t.retire(retired...)
	return nil
}
