package core

import (
	"testing"

	"bftree/internal/device"
	"bftree/internal/heapfile"
	"bftree/internal/pagestore"
	"bftree/internal/workload"
)

// TestChooseShapePKStaysFine: for a unique key (15 distinct keys per
// 4 KB page of 256-byte tuples), the per-page load fits the per-page
// filter capacity, so the paper's best configuration — one filter per
// page — must be selected.
func TestChooseShapePKStaysFine(t *testing.T) {
	fx := newFixture(t, 30000, 11)
	tr := fx.build(t, 0, Options{FPP: 1e-3})
	var stats ProbeStats
	leaf, _, err := tr.descend(tr.Root(), 1000, &stats)
	if err != nil {
		t.Fatal(err)
	}
	if leaf.granularity != 1 {
		t.Errorf("PK leaf granularity = %d, want 1", leaf.granularity)
	}
}

// TestChooseShapeHighCardCoarsens: with a very high-cardinality key
// (every key spans many pages), the leaf covers far more pages than it
// can afford per-page filters for, so granularity must grow — and
// probes must still find every key.
func TestChooseShapeHighCardCoarsens(t *testing.T) {
	store := pagestore.New(device.New(device.Memory, 4096))
	tp, err := workload.GenerateTPCH(store, 60000, 25, 5) // 2400 per date
	if err != nil {
		t.Fatal(err)
	}
	idx := pagestore.New(device.New(device.Memory, 4096))
	shipIdx := workload.TPCHSchema.FieldIndex("shipdate")
	tr, err := BulkLoad(idx, tp.File, shipIdx, Options{FPP: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	var stats ProbeStats
	leaf, _, err := tr.descend(tr.Root(), 10, &stats)
	if err != nil {
		t.Fatal(err)
	}
	if leaf.granularity <= 1 {
		t.Errorf("high-cardinality leaf granularity = %d, want coarse", leaf.granularity)
	}
	// The whole 60k-tuple table should index in very few pages.
	if tr.NumNodes() > 4 {
		t.Errorf("TPCH-style index uses %d pages, want <=4", tr.NumNodes())
	}
	// Every date still findable with the correct cardinality.
	for d := tp.MinDate; d <= tp.MaxDate; d += 3 {
		res, err := tr.Search(d)
		if err != nil {
			t.Fatal(err)
		}
		if uint64(len(res.Tuples)) != tp.DateCards[d] {
			t.Fatalf("date %d: %d tuples, want %d", d, len(res.Tuples), tp.DateCards[d])
		}
	}
}

// TestEightKBPages: the paper allows 4 KB or 8 KB nodes; everything must
// work at 8 KB with roughly twice the keys per leaf.
func TestEightKBPages(t *testing.T) {
	dataStore := pagestore.New(device.New(device.Memory, 8192))
	syn, err := workload.GenerateSynthetic(dataStore, 30000, 11, 9)
	if err != nil {
		t.Fatal(err)
	}
	idx := pagestore.New(device.New(device.Memory, 8192))
	tr, err := BulkLoad(idx, syn.File, 0, Options{FPP: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	o, _ := Options{FPP: 1e-3}.withDefaults()
	geo4, _ := geometryFor(4096, o)
	geo8, _ := geometryFor(8192, o)
	ratio := float64(geo8.KeysPerLeaf) / float64(geo4.KeysPerLeaf)
	if ratio < 1.9 || ratio > 2.1 {
		t.Errorf("8KB leaf capacity ratio = %g, want ≈2", ratio)
	}
	for k := uint64(0); k < 30000; k += 997 {
		res, err := tr.SearchFirst(k)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Tuples) != 1 {
			t.Fatalf("8KB tree lost key %d", k)
		}
	}
}

// TestAvgGroupLoad validates the load computation directly.
func TestAvgGroupLoad(t *testing.T) {
	pages := []pageKeys{
		{pid: 0, keys: []uint64{1, 2}},
		{pid: 1, keys: []uint64{2, 3}}, // 2 straddles pages 0-1
		{pid: 2, keys: []uint64{4}},
		{pid: 3, keys: []uint64{5, 6, 7}},
	}
	// g=1: loads are 2,2,1,3 → avg ceil(8/4) = 2.
	if got := avgGroupLoad(pages, 1); got != 2 {
		t.Errorf("g=1 avg load = %d, want 2", got)
	}
	// g=2: group(0,1) dedups key 2 → 3 distinct; group(2,3) → 4.
	// avg = ceil(7/2) = 4.
	if got := avgGroupLoad(pages, 2); got != 4 {
		t.Errorf("g=2 avg load = %d, want 4", got)
	}
	// g=4: one group, 7 distinct.
	if got := avgGroupLoad(pages, 4); got != 7 {
		t.Errorf("g=4 avg load = %d, want 7", got)
	}
	if got := avgGroupLoad(nil, 1); got != 0 {
		t.Errorf("empty load = %d", got)
	}
}

// TestGranularityOptionRespectedAsFloor: an explicit granularity larger
// than needed is kept, never refined below the request.
func TestGranularityOptionRespectedAsFloor(t *testing.T) {
	fx := newFixture(t, 20000, 11)
	tr := fx.build(t, 0, Options{FPP: 1e-3, Granularity: 4})
	var stats ProbeStats
	leaf, _, err := tr.descend(tr.Root(), 500, &stats)
	if err != nil {
		t.Fatal(err)
	}
	if leaf.granularity < 4 {
		t.Errorf("granularity %d below requested floor 4", leaf.granularity)
	}
}

// TestOpenHeapfileView covers heapfile.Open (reopening a previously
// built file).
func TestOpenHeapfileView(t *testing.T) {
	store := pagestore.New(device.New(device.Memory, 4096))
	syn, err := workload.GenerateSynthetic(store, 5000, 11, 4)
	if err != nil {
		t.Fatal(err)
	}
	f := syn.File
	reopened, err := heapfile.Open(store, workload.SyntheticSchema, f.FirstPage(), f.NumPages(), f.NumTuples())
	if err != nil {
		t.Fatal(err)
	}
	idx := pagestore.New(device.New(device.Memory, 4096))
	tr, err := BulkLoad(idx, reopened, 0, Options{FPP: 1e-2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.SearchFirst(1234)
	if err != nil || len(res.Tuples) != 1 {
		t.Fatal("reopened view should be indexable")
	}
	if _, err := heapfile.Open(store, workload.SyntheticSchema, 0, 0, 0); err == nil {
		t.Error("empty view accepted")
	}
	if _, err := heapfile.Open(store, heapfile.Schema{TupleSize: 4}, 0, 1, 1); err == nil {
		t.Error("invalid schema accepted")
	}
}
