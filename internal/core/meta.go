package core

import (
	"sync/atomic"

	"bftree/internal/device"
)

// treeMeta is one immutable snapshot of the tree's metadata. The writer
// builds a fresh treeMeta for every mutation that changes it and
// publishes it with a single atomic pointer store; every probe loads
// exactly one snapshot at descent start and never observes a torn mix
// of old root and new height (or stale counters with a new root). The
// struct is never mutated after publication.
type treeMeta struct {
	root      device.PageID
	firstLeaf device.PageID
	height    int
	numLeaves uint64
	numNodes  uint64
	numKeys   uint64 // distinct keys indexed at build time (+ appends)

	inserts uint64 // keys added after build (fpp drift, Equation 14)
	deletes uint64 // keys logically deleted without filter support
}

// loadMeta returns the current snapshot.
func (t *Tree) loadMeta() *treeMeta { return t.meta.Load() }

// publish installs a snapshot derived from the current one. Callers
// hold writeMu (shared or exclusive); readers see either the previous
// or the new snapshot, atomically. The CAS loop makes concurrent
// publishes by latched writers linearizable: each retries its mutation
// against the latest snapshot, so no counter increment is lost. A
// structural writer holds the exclusive lock, so its root/height
// mutation never races another publish.
func (t *Tree) publish(mut func(m *treeMeta)) {
	for {
		old := t.meta.Load()
		m := *old
		mut(&m)
		if t.meta.CompareAndSwap(old, &m) {
			return
		}
	}
}

// epochs is the reader-registration side of the tree's epoch-based page
// reclamation. Probes are short, so the scheme is a two-bucket
// epoch counter: a reader registers in the bucket of the current epoch
// for the duration of one probe; the structural writer (exclusive
// writeMu — leaf-latched writers never retire or reclaim) advances the
// epoch only when the bucket the new epoch will reuse has drained, which
// guarantees each bucket holds readers of at most one unretired epoch.
//
// Invariant the reclamation relies on: a page retired (made unreachable
// from the published snapshot) during epoch e can be held only by
// readers that entered during epoch <= e, because a reader entering in
// epoch e+1 entered after the flip to e+1, which the writer performed
// after publishing the snapshot that dropped the page. Those readers
// all sit in buckets that must drain before the writer flips to e+2 —
// so pages retired during epoch e are freed no earlier than the flip to
// e+2.
type epochs struct {
	epoch  atomic.Uint64
	active [2]atomic.Int64
}

// enter registers the caller as a reader and returns the epoch it
// registered under (pass it to exit). The recheck loop guards against
// registering in a bucket the writer flipped away from between the load
// and the increment; with one epoch-advancer at a time (the exclusive
// structural writer) it retries at most a handful of times.
func (e *epochs) enter() uint64 {
	for {
		ep := e.epoch.Load()
		e.active[ep&1].Add(1)
		if e.epoch.Load() == ep {
			return ep
		}
		e.active[ep&1].Add(-1)
	}
}

// exit deregisters a reader that entered at epoch ep.
func (e *epochs) exit(ep uint64) {
	e.active[ep&1].Add(-1)
}

// tryAdvance flips to the next epoch if the bucket that epoch will use
// has drained (i.e. every reader from epoch-1 and earlier has exited).
// Only the writer calls it. It reports whether the flip happened.
func (e *epochs) tryAdvance() bool {
	ep := e.epoch.Load()
	if e.active[(ep+1)&1].Load() != 0 {
		return false
	}
	e.epoch.Store(ep + 1)
	return true
}

// canAdvance reports whether an epoch flip could currently succeed.
// Advisory — readable without the writer lock, and the answer may be
// stale by the time a flip is attempted — but it lets the maintainer
// skip lock acquisitions that would be futile while a straggler reader
// (say, a long range scan) pins the bucket the next epoch needs.
func (e *epochs) canAdvance() bool {
	return e.active[(e.epoch.Load()+1)&1].Load() == 0
}

// beginProbe registers the calling goroutine as a reader and returns
// the snapshot to probe against. Every read-path entry point pairs it
// with endProbe; while registered, no page reachable from the returned
// snapshot (or from any older one the reader may still traverse via
// frozen leaf-chain pointers) can be recycled.
func (t *Tree) beginProbe() (*treeMeta, uint64) {
	ep := t.readers.enter()
	return t.meta.Load(), ep
}

// endProbe deregisters a reader. It doubles as the maintenance layer's
// epoch-exit hook: a completing probe may be the last reader pinning a
// limbo epoch, so when retired pages are waiting and a maintainer is
// running, the probe nudges it. The common case (no limbo) costs a
// single atomic load; while limbo drains, only the probe that arms the
// nudge touches the wake channel (nudgeProbe's CAS), so concurrent
// probe completions never serialize on it and the read path stays
// lock-free.
func (t *Tree) endProbe(ep uint64) {
	t.readers.exit(ep)
	if t.limboLen.Load() != 0 {
		if m := t.maint.Load(); m != nil {
			m.nudgeProbe()
		}
	}
}

// retire records pages that the just-published snapshot no longer
// reaches. They are freed for reuse only after a full epoch grace
// period (see epochs). Structural-writer-only, under the exclusive
// writeMu — latched writers allocate and free nothing, so the
// live + free + limbo == device-pages economy is theirs to ignore.
func (t *Tree) retire(pids ...device.PageID) {
	t.limboCur = append(t.limboCur, pids...)
	t.limboLen.Add(int64(len(pids)))
}

// reclaim attempts one epoch flip and, on success, returns the pages
// retired two flips ago to the store's free list, reporting how many
// were freed. Structural-writer-only, under the exclusive writeMu.
// Who calls it is the maintenance contract of DESIGN.md §4: the
// background maintainer (or an explicit Maintain) under auto mode,
// foreground structural changes opportunistically under manual mode —
// either way reclamation never blocks a reader.
func (t *Tree) reclaim() int {
	if !t.readers.tryAdvance() {
		return 0
	}
	freed := len(t.limboPrev)
	if freed > 0 {
		t.store.Free(t.limboPrev...)
	}
	t.limboPrev = t.limboCur
	t.limboCur = nil
	t.limboLen.Add(-int64(freed))
	return freed
}
