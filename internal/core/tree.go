package core

import (
	"fmt"
	"sort"

	"bftree/internal/bloom"
	"bftree/internal/device"
	"bftree/internal/heapfile"
	"bftree/internal/pagestore"
)

// ProbeStats accounts the work done by one index probe (or accumulates
// over many).
type ProbeStats struct {
	IndexReads     int // index pages read (internal nodes + BF-leaves)
	BFProbes       int // Bloom filter membership tests
	CandidatePages int // data pages the filters flagged
	DataPagesRead  int // data pages actually fetched
	FalseReads     int // fetched data pages containing no match
}

// add accumulates s into p.
func (p *ProbeStats) add(s ProbeStats) {
	p.IndexReads += s.IndexReads
	p.BFProbes += s.BFProbes
	p.CandidatePages += s.CandidatePages
	p.DataPagesRead += s.DataPagesRead
	p.FalseReads += s.FalseReads
}

// Result is the outcome of a probe: matching tuples (copies) and the
// probe's cost accounting.
type Result struct {
	Tuples [][]byte
	Stats  ProbeStats
}

// Store returns the index page store.
func (t *Tree) Store() *pagestore.Store { return t.store }

// File returns the indexed heap file.
func (t *Tree) File() *heapfile.File { return t.file }

// FieldIndex returns the indexed field.
func (t *Tree) FieldIndex() int { return t.fieldIdx }

// Options returns the build options (with defaults applied).
func (t *Tree) Options() Options { return t.opts }

// Geometry returns the derived leaf geometry.
func (t *Tree) Geometry() Geometry { return t.geo }

// Height returns the number of levels, BF-leaves included (Equation 7).
func (t *Tree) Height() int { return t.loadMeta().height }

// NumLeaves returns the BF-leaf count (Equation 6).
func (t *Tree) NumLeaves() uint64 { return t.loadMeta().numLeaves }

// NumNodes returns the total live page count of the index; size in
// bytes is NumNodes × page size (Equation 10). Pages retired by
// copy-on-write structural changes are excluded (they return to the
// store's free list after a grace period).
func (t *Tree) NumNodes() uint64 { return t.loadMeta().numNodes }

// NumKeys returns the number of distinct keys indexed at build time.
func (t *Tree) NumKeys() uint64 { return t.loadMeta().numKeys }

// SizeBytes returns the index footprint in bytes.
func (t *Tree) SizeBytes() uint64 { return t.loadMeta().numNodes * uint64(t.store.PageSize()) }

// Root returns the root page id of the current snapshot.
func (t *Tree) Root() device.PageID { return t.loadMeta().root }

// EffectiveFPP estimates the current false positive probability after
// post-build inserts and deletes: Equation 14 for inserts, plus the
// additive delete term of Section 7.
func (t *Tree) EffectiveFPP() float64 {
	m := t.loadMeta()
	fpp := t.opts.FPP
	if m.numKeys > 0 && m.inserts > 0 {
		fpp = bloom.DriftedFPP(fpp, float64(m.inserts)/float64(m.numKeys))
	}
	if t.opts.Filter == StandardFilter && m.numKeys > 0 && m.deletes > 0 {
		fpp += float64(m.deletes) / float64(m.numKeys)
		if fpp > 1 {
			fpp = 1
		}
	}
	return fpp
}

// InternalPages returns the ids of all internal (non-leaf) pages, for
// pre-warming a buffer cache in warm-cache experiments.
func (t *Tree) InternalPages() ([]device.PageID, error) {
	m, ep := t.beginProbe()
	defer t.endProbe(ep)
	return t.internalPagesOf(m)
}

// internalPagesOf walks the internal levels of one snapshot. Callers
// must hold a reader registration (or be the writer).
func (t *Tree) internalPagesOf(m *treeMeta) ([]device.PageID, error) {
	if m.height == 1 {
		return nil, nil
	}
	var out []device.PageID
	var walk func(pid device.PageID, depth int) error
	walk = func(pid device.PageID, depth int) error {
		if depth == m.height-1 {
			return nil
		}
		out = append(out, pid)
		buf, err := t.store.ReadPage(pid)
		if err != nil {
			return err
		}
		n, err := decodeInternal(buf)
		if err != nil {
			return err
		}
		for _, c := range n.children {
			if err := walk(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(m.root, 0); err != nil {
		return nil, err
	}
	return out, nil
}

// readLeaf fetches and decodes the BF-leaf at pid.
func (t *Tree) readLeaf(pid device.PageID, stats *ProbeStats) (*bfLeaf, error) {
	buf, err := t.store.ReadPage(pid)
	if err != nil {
		return nil, err
	}
	stats.IndexReads++
	return decodeBFLeaf(buf)
}

// descend walks the internal levels from root to the leftmost leaf that
// may hold key, charging one index read per level. The root comes from
// the caller's snapshot, so a whole probe sees one consistent tree.
func (t *Tree) descend(root device.PageID, key uint64, stats *ProbeStats) (*bfLeaf, device.PageID, error) {
	pid := root
	for {
		buf, err := t.store.ReadPage(pid)
		if err != nil {
			return nil, 0, err
		}
		stats.IndexReads++
		kind, err := nodeKind(buf)
		if err != nil {
			return nil, 0, err
		}
		if kind == nodeBFLeaf {
			l, err := decodeBFLeaf(buf)
			if err != nil {
				return nil, 0, err
			}
			return l, pid, nil
		}
		n, err := decodeInternal(buf)
		if err != nil {
			return nil, 0, err
		}
		i := sort.Search(len(n.keys), func(i int) bool { return key <= n.keys[i] })
		pid = n.children[i]
	}
}

// lastDataPage returns the final page id of the indexed file, for
// clamping candidate ranges of leaves that cover not-yet-written pages.
func (t *Tree) lastDataPage() device.PageID {
	return t.file.FirstPage() + device.PageID(t.file.NumPages()) - 1
}

// Search implements Algorithm 1: descend to the BF-leaf for key, probe
// every Bloom filter, fetch the candidate data pages in ascending page
// order (the sorted access list the paper hands to the device), and
// return every tuple whose indexed field equals key.
func (t *Tree) Search(key uint64) (*Result, error) {
	return t.search(key, false)
}

// SearchFirst is the primary-key variant of Algorithm 1: the scan stops
// as soon as one matching tuple is found, as the paper does for unique
// indexes.
func (t *Tree) SearchFirst(key uint64) (*Result, error) {
	return t.search(key, true)
}

func (t *Tree) search(key uint64, firstOnly bool) (*Result, error) {
	m, ep := t.beginProbe()
	defer t.endProbe(ep)
	res := &Result{}
	leaf, _, err := t.descend(m.root, key, &res.Stats)
	if err != nil {
		return nil, err
	}
	// Leftmost descent can land one leaf early when key equals a
	// separator; skip forward while the leaf's range is entirely below.
	for key > leaf.maxKey && leaf.next != device.InvalidPage {
		nextLeaf, err := t.readLeaf(leaf.next, &res.Stats)
		if err != nil {
			return nil, err
		}
		if key < nextLeaf.minKey {
			return res, nil
		}
		leaf = nextLeaf
	}
	// Duplicates of key may continue into following leaves; process
	// every leaf whose [minKey, maxKey] covers key.
	for {
		if key >= leaf.minKey && key <= leaf.maxKey {
			done, err := t.probeLeaf(leaf, key, firstOnly, res)
			if err != nil {
				return nil, err
			}
			if done {
				return res, nil
			}
		} else {
			return res, nil
		}
		if leaf.next == device.InvalidPage {
			return res, nil
		}
		nextLeaf, err := t.readLeaf(leaf.next, &res.Stats)
		if err != nil {
			return nil, err
		}
		if key < nextLeaf.minKey || key > nextLeaf.maxKey {
			return res, nil
		}
		leaf = nextLeaf
	}
}

// probeLeaf runs the filter probes and candidate page reads for one leaf.
// It reports true when firstOnly is set and a match was found.
func (t *Tree) probeLeaf(leaf *bfLeaf, key uint64, firstOnly bool, res *Result) (bool, error) {
	matches := leaf.probe(key, t.opts.ParallelProbe)
	res.Stats.BFProbes += leaf.numBFs()
	last := t.lastDataPage()
	for _, bid := range matches {
		lo, hi := leaf.pageRangeOf(bid)
		if hi > last {
			hi = last
		}
		for pid := lo; pid <= hi; pid++ {
			res.Stats.CandidatePages++
			tuples, err := t.file.SearchPage(pid, t.fieldIdx, key)
			if err != nil {
				return false, err
			}
			res.Stats.DataPagesRead++
			if len(tuples) == 0 {
				res.Stats.FalseReads++
				continue
			}
			for _, tup := range tuples {
				cp := make([]byte, len(tup))
				copy(cp, tup)
				res.Tuples = append(res.Tuples, cp)
			}
			if firstOnly {
				return true, nil
			}
		}
	}
	return false, nil
}

// String summarizes the tree.
func (t *Tree) String() string {
	m := t.loadMeta()
	return fmt.Sprintf("bftree{fpp=%g height=%d leaves=%d nodes=%d keys=%d size=%dB}",
		t.opts.FPP, m.height, m.numLeaves, m.numNodes, m.numKeys,
		m.numNodes*uint64(t.store.PageSize()))
}
