package core

import (
	"sync"
	"testing"

	"bftree/internal/device"
	"bftree/internal/pagestore"
)

func TestBufferedInsertMatchesDirect(t *testing.T) {
	// Two identical trees over the same data: one takes direct inserts,
	// one buffered. After flush, both must answer identically.
	f, _ := buildInitialFile(t, 4000)
	direct, err := BulkLoad(pagestore.New(device.New(device.Memory, 4096)), f, 0, Options{FPP: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	buffered, err := BulkLoad(pagestore.New(device.New(device.Memory, 4096)), f, 0, Options{FPP: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	buf := buffered.NewBufferedInserter(64)

	// Re-insert a spread of existing keys (update workload).
	for k := uint64(0); k < 4000; k += 3 {
		pid := f.PageOf(k)
		if err := direct.Insert(k, pid); err != nil {
			t.Fatal(err)
		}
		if err := buf.Insert(k, pid); err != nil {
			t.Fatal(err)
		}
	}
	if err := buf.Flush(); err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 4000; k += 97 {
		a, err := direct.SearchFirst(k)
		if err != nil {
			t.Fatal(err)
		}
		c, err := buffered.SearchFirst(k)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Tuples) != len(c.Tuples) {
			t.Fatalf("key %d: direct %d vs buffered %d", k, len(a.Tuples), len(c.Tuples))
		}
	}
	if direct.EffectiveFPP() != buffered.EffectiveFPP() {
		t.Errorf("drift accounting diverged: %g vs %g", direct.EffectiveFPP(), buffered.EffectiveFPP())
	}
}

func TestBufferedInsertAmortizesWrites(t *testing.T) {
	f, _ := buildInitialFile(t, 4000)
	dev := device.New(device.Memory, 4096)
	tr, err := BulkLoad(pagestore.New(dev), f, 0, Options{FPP: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	dev.ResetStats()
	for k := uint64(0); k < n; k++ {
		if err := tr.Insert(k, f.PageOf(k)); err != nil {
			t.Fatal(err)
		}
	}
	directWrites := dev.Stats().Writes()

	tr2, err := BulkLoad(pagestore.New(dev), f, 0, Options{FPP: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	buf := tr2.NewBufferedInserter(n + 1)
	dev.ResetStats()
	for k := uint64(0); k < n; k++ {
		if err := buf.Insert(k, f.PageOf(k)); err != nil {
			t.Fatal(err)
		}
	}
	if err := buf.Flush(); err != nil {
		t.Fatal(err)
	}
	bufferedWrites := dev.Stats().Writes()
	if bufferedWrites*10 > directWrites {
		t.Errorf("buffered flush wrote %d pages vs %d direct; expected >=10x amortization",
			bufferedWrites, directWrites)
	}
}

// TestFlushRunsLatchedAlongsideWriters pins the batch-escalation tier
// of Flush: leaf groups run under the shared lock plus per-leaf latches,
// so a flush interleaves with latched writers — including ones that
// force escalated splits — without corrupting drift accounting or
// losing entries. The old Flush held the exclusive lock for the whole
// batch; this test also drives the escalation path inside Flush itself
// (new keys landing on leaves pushed to their Equation 5 capacity).
func TestFlushRunsLatchedAlongsideWriters(t *testing.T) {
	const distinct = 6000
	// Sparse even keys leave odd keys free as genuinely new inserts.
	keys := make([]uint64, distinct)
	for i := range keys {
		keys[i] = uint64(2 * i)
	}
	f, _ := buildKeyedFile(t, keys)
	// Small index pages keep leaf capacity low so the flush's new keys
	// push leaves past capacity and escalate per-group.
	tr, err := BulkLoad(pagestore.New(device.New(device.Memory, 512)), f, 0, Options{FPP: 0.01})
	if err != nil {
		t.Fatal(err)
	}

	// The flusher buffers new odd keys across the first half of the
	// keyspace; concurrent latched writers re-insert existing even keys
	// in the second half (guaranteed non-structural, disjoint leaves).
	buf := tr.NewBufferedInserter(1 << 20)
	flushed := make([]uint64, 0, distinct/4)
	for i := 0; i < distinct/2; i += 2 {
		k := keys[i] + 1
		if err := buf.Insert(k, f.PageOf(uint64(i))); err != nil {
			t.Fatal(err)
		}
		flushed = append(flushed, k)
	}

	var wg sync.WaitGroup
	errs := make([]error, 4)
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				ord := distinct/2 + (i*131+w*977)%(distinct/2)
				if err := tr.Insert(keys[ord], f.PageOf(uint64(ord))); err != nil {
					errs[w] = err
					return
				}
				i++
			}
		}(w)
	}
	flushErr := buf.Flush()
	close(stop)
	wg.Wait()
	if flushErr != nil {
		t.Fatalf("flush: %v", flushErr)
	}
	for w, err := range errs {
		if err != nil {
			t.Fatalf("latched writer %d: %v", w, err)
		}
	}
	if buf.Pending() != 0 {
		t.Fatalf("flush left %d entries pending without an error", buf.Pending())
	}
	// Every flushed key is durable: its data page is a candidate. Some
	// keys may legitimately fail candidacy only if a probe-based split
	// re-shaped a half past the key's page — with re-inserted even keys
	// as the only concurrent writers, no such split touches these leaves
	// beyond the flush's own escalations, which preserve claims.
	for j, k := range flushed {
		if j%23 != 0 {
			continue
		}
		var stats ProbeStats
		pages, err := tr.candidatePages(k, &stats)
		if err != nil {
			t.Fatal(err)
		}
		want := f.PageOf(k / 2)
		found := false
		for _, p := range pages {
			if p == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("flushed key %d lost: page %d not a candidate", k, want)
		}
	}
	if tr.NumLeaves() < 2 {
		t.Error("fixture produced a single leaf; escalation path not exercised")
	}
}

func TestBufferedSearchSeesPending(t *testing.T) {
	f, _ := buildInitialFile(t, 2000)
	tr, err := BulkLoad(pagestore.New(device.New(device.Memory, 4096)), f, 0, Options{FPP: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	buf := tr.NewBufferedInserter(1 << 20) // never auto-flush
	key := uint64(555)
	if err := buf.Insert(key, f.PageOf(key)); err != nil {
		t.Fatal(err)
	}
	if buf.Pending() != 1 {
		t.Fatalf("pending = %d", buf.Pending())
	}
	res, err := buf.Search(key)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) == 0 {
		t.Error("buffered key invisible through the inserter")
	}
}

func TestBufferedAutoFlush(t *testing.T) {
	f, _ := buildInitialFile(t, 2000)
	tr, err := BulkLoad(pagestore.New(device.New(device.Memory, 4096)), f, 0, Options{FPP: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	buf := tr.NewBufferedInserter(8)
	for k := uint64(0); k < 20; k++ {
		if err := buf.Insert(k, f.PageOf(k)); err != nil {
			t.Fatal(err)
		}
	}
	if buf.Pending() >= 8 {
		t.Errorf("auto-flush did not run, pending = %d", buf.Pending())
	}
	// Zero capacity defaults sanely.
	b2 := tr.NewBufferedInserter(0)
	if b2.capacity < 1 {
		t.Error("capacity default broken")
	}
	// Flushing an empty buffer is a no-op.
	if err := b2.Flush(); err != nil {
		t.Fatal(err)
	}
}
