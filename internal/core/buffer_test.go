package core

import (
	"testing"

	"bftree/internal/device"
	"bftree/internal/pagestore"
)

func TestBufferedInsertMatchesDirect(t *testing.T) {
	// Two identical trees over the same data: one takes direct inserts,
	// one buffered. After flush, both must answer identically.
	f, _ := buildInitialFile(t, 4000)
	direct, err := BulkLoad(pagestore.New(device.New(device.Memory, 4096)), f, 0, Options{FPP: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	buffered, err := BulkLoad(pagestore.New(device.New(device.Memory, 4096)), f, 0, Options{FPP: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	buf := buffered.NewBufferedInserter(64)

	// Re-insert a spread of existing keys (update workload).
	for k := uint64(0); k < 4000; k += 3 {
		pid := f.PageOf(k)
		if err := direct.Insert(k, pid); err != nil {
			t.Fatal(err)
		}
		if err := buf.Insert(k, pid); err != nil {
			t.Fatal(err)
		}
	}
	if err := buf.Flush(); err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 4000; k += 97 {
		a, err := direct.SearchFirst(k)
		if err != nil {
			t.Fatal(err)
		}
		c, err := buffered.SearchFirst(k)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Tuples) != len(c.Tuples) {
			t.Fatalf("key %d: direct %d vs buffered %d", k, len(a.Tuples), len(c.Tuples))
		}
	}
	if direct.EffectiveFPP() != buffered.EffectiveFPP() {
		t.Errorf("drift accounting diverged: %g vs %g", direct.EffectiveFPP(), buffered.EffectiveFPP())
	}
}

func TestBufferedInsertAmortizesWrites(t *testing.T) {
	f, _ := buildInitialFile(t, 4000)
	dev := device.New(device.Memory, 4096)
	tr, err := BulkLoad(pagestore.New(dev), f, 0, Options{FPP: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	dev.ResetStats()
	for k := uint64(0); k < n; k++ {
		if err := tr.Insert(k, f.PageOf(k)); err != nil {
			t.Fatal(err)
		}
	}
	directWrites := dev.Stats().Writes()

	tr2, err := BulkLoad(pagestore.New(dev), f, 0, Options{FPP: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	buf := tr2.NewBufferedInserter(n + 1)
	dev.ResetStats()
	for k := uint64(0); k < n; k++ {
		if err := buf.Insert(k, f.PageOf(k)); err != nil {
			t.Fatal(err)
		}
	}
	if err := buf.Flush(); err != nil {
		t.Fatal(err)
	}
	bufferedWrites := dev.Stats().Writes()
	if bufferedWrites*10 > directWrites {
		t.Errorf("buffered flush wrote %d pages vs %d direct; expected >=10x amortization",
			bufferedWrites, directWrites)
	}
}

func TestBufferedSearchSeesPending(t *testing.T) {
	f, _ := buildInitialFile(t, 2000)
	tr, err := BulkLoad(pagestore.New(device.New(device.Memory, 4096)), f, 0, Options{FPP: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	buf := tr.NewBufferedInserter(1 << 20) // never auto-flush
	key := uint64(555)
	if err := buf.Insert(key, f.PageOf(key)); err != nil {
		t.Fatal(err)
	}
	if buf.Pending() != 1 {
		t.Fatalf("pending = %d", buf.Pending())
	}
	res, err := buf.Search(key)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) == 0 {
		t.Error("buffered key invisible through the inserter")
	}
}

func TestBufferedAutoFlush(t *testing.T) {
	f, _ := buildInitialFile(t, 2000)
	tr, err := BulkLoad(pagestore.New(device.New(device.Memory, 4096)), f, 0, Options{FPP: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	buf := tr.NewBufferedInserter(8)
	for k := uint64(0); k < 20; k++ {
		if err := buf.Insert(k, f.PageOf(k)); err != nil {
			t.Fatal(err)
		}
	}
	if buf.Pending() >= 8 {
		t.Errorf("auto-flush did not run, pending = %d", buf.Pending())
	}
	// Zero capacity defaults sanely.
	b2 := tr.NewBufferedInserter(0)
	if b2.capacity < 1 {
		t.Error("capacity default broken")
	}
	// Flushing an empty buffer is a no-op.
	if err := b2.Flush(); err != nil {
		t.Fatal(err)
	}
}
