package core

import (
	"testing"

	"bftree/internal/device"
	"bftree/internal/heapfile"
	"bftree/internal/pagestore"
	"bftree/internal/workload"
)

// fixture bundles a generated relation and the stores backing it.
type fixture struct {
	dataStore *pagestore.Store
	idxStore  *pagestore.Store
	file      *heapfile.File
	syn       *workload.Synthetic
}

// newFixture generates relation R with n tuples on memory devices.
func newFixture(t *testing.T, n uint64, avgCard int) *fixture {
	t.Helper()
	dataStore := pagestore.New(device.New(device.Memory, 4096))
	idxStore := pagestore.New(device.New(device.Memory, 4096))
	syn, err := workload.GenerateSynthetic(dataStore, n, avgCard, 1)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{dataStore: dataStore, idxStore: idxStore, file: syn.File, syn: syn}
}

func (fx *fixture) build(t *testing.T, fieldIdx int, opts Options) *Tree {
	t.Helper()
	tr, err := BulkLoad(fx.idxStore, fx.file, fieldIdx, opts)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestOptionsDefaults(t *testing.T) {
	o, err := Options{FPP: 0.01}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if o.Granularity != 1 || o.Hashes != 0 {
		t.Errorf("defaults: granularity=%d hashes=%d, want 1 and 0 (auto)", o.Granularity, o.Hashes)
	}
	bad := []Options{
		{FPP: 0},
		{FPP: 1},
		{FPP: 0.1, Granularity: -1},
		{FPP: 0.1, Hashes: -2},
		{FPP: 0.1, Filter: FilterKind(9)},
	}
	for i, b := range bad {
		if _, err := b.withDefaults(); err == nil {
			t.Errorf("case %d: invalid options accepted", i)
		}
	}
}

func TestGeometryEquation5(t *testing.T) {
	o, _ := Options{FPP: 0.01}.withDefaults()
	geo, err := geometryFor(4096, o)
	if err != nil {
		t.Fatal(err)
	}
	// (4096-63)*8 = 32264 bits; Equation 5: keys = -bits·ln²2/ln(0.01).
	if geo.FilterBits != 32264 {
		t.Errorf("filter bits = %d, want 32264", geo.FilterBits)
	}
	if geo.KeysPerLeaf < 3300 || geo.KeysPerLeaf > 3400 {
		t.Errorf("keys per leaf = %d, want ≈3365 (Equation 5)", geo.KeysPerLeaf)
	}
	// Counting filters spend 4 bits per position → 4x fewer keys.
	oc, _ := Options{FPP: 0.01, Filter: CountingFilter}.withDefaults()
	gc, err := geometryFor(4096, oc)
	if err != nil {
		t.Fatal(err)
	}
	if gc.KeysPerLeaf < geo.KeysPerLeaf/5 || gc.KeysPerLeaf > geo.KeysPerLeaf/3 {
		t.Errorf("counting keys per leaf = %d, want ≈%d/4", gc.KeysPerLeaf, geo.KeysPerLeaf)
	}
	if _, err := geometryFor(32, o); err == nil {
		t.Error("tiny page should be rejected")
	}
}

func TestBulkLoadPK(t *testing.T) {
	fx := newFixture(t, 50000, 11)
	tr := fx.build(t, 0, Options{FPP: 0.01})
	if tr.NumKeys() != 50000 {
		t.Errorf("distinct keys = %d, want 50000", tr.NumKeys())
	}
	if tr.Height() < 2 {
		t.Errorf("height = %d", tr.Height())
	}
	// 50000 keys / ~3372 keys-per-leaf → ~15 leaves; pages per leaf is
	// bounded by maxS too.
	if tr.NumLeaves() < 10 || tr.NumLeaves() > 40 {
		t.Errorf("leaves = %d, want ≈15", tr.NumLeaves())
	}
}

func TestBulkLoadErrors(t *testing.T) {
	fx := newFixture(t, 100, 11)
	if _, err := BulkLoad(fx.idxStore, fx.file, -1, Options{FPP: 0.01}); err == nil {
		t.Error("bad field index accepted")
	}
	if _, err := BulkLoad(fx.idxStore, fx.file, 5, Options{FPP: 0.01}); err == nil {
		t.Error("out-of-range field index accepted")
	}
	if _, err := BulkLoad(fx.idxStore, fx.file, 0, Options{FPP: 0}); err == nil {
		t.Error("invalid fpp accepted")
	}
}

func TestSearchPKAllHits(t *testing.T) {
	fx := newFixture(t, 20000, 11)
	tr := fx.build(t, 0, Options{FPP: 0.001})
	for _, key := range []uint64{0, 1, 14, 15, 9999, 19999} {
		res, err := tr.SearchFirst(key)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Tuples) != 1 {
			t.Fatalf("key %d: %d tuples", key, len(res.Tuples))
		}
		if got := fx.file.Schema().Get(res.Tuples[0], 0); got != key {
			t.Fatalf("key %d: got tuple with pk %d", key, got)
		}
		if res.Stats.IndexReads < tr.Height() {
			t.Errorf("key %d: %d index reads < height %d", key, res.Stats.IndexReads, tr.Height())
		}
	}
}

func TestSearchPKEveryKey(t *testing.T) {
	fx := newFixture(t, 5000, 11)
	tr := fx.build(t, 0, Options{FPP: 0.01})
	// No false negatives ever: every key must be found.
	for key := uint64(0); key < 5000; key++ {
		res, err := tr.SearchFirst(key)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Tuples) != 1 {
			t.Fatalf("key %d not found", key)
		}
	}
}

func TestSearchMisses(t *testing.T) {
	fx := newFixture(t, 10000, 11)
	tr := fx.build(t, 0, Options{FPP: 0.001})
	misses := 0
	for key := uint64(20000); key < 21000; key++ {
		res, err := tr.Search(key)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Tuples) != 0 {
			misses++
		}
	}
	if misses != 0 {
		t.Errorf("%d out-of-range probes matched", misses)
	}
}

func TestSearchATT1NonUnique(t *testing.T) {
	fx := newFixture(t, 30000, 11)
	tr := fx.build(t, 1, Options{FPP: 0.001})
	// Count reference cardinalities from the file.
	want := make(map[uint64]int)
	fx.file.Scan(func(_ device.PageID, _ int, tup []byte) bool {
		want[fx.file.Schema().Get(tup, 1)]++
		return true
	})
	checked := 0
	for _, key := range fx.syn.ATT1Keys {
		if checked >= 300 {
			break
		}
		checked++
		res, err := tr.Search(key)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Tuples) != want[key] {
			t.Fatalf("key %d: %d tuples, want %d", key, len(res.Tuples), want[key])
		}
		for _, tup := range res.Tuples {
			if fx.file.Schema().Get(tup, 1) != key {
				t.Fatalf("key %d: wrong tuple returned", key)
			}
		}
	}
}

func TestFalseReadsTrackFPP(t *testing.T) {
	fx := newFixture(t, 40000, 11)
	loose := fx.build(t, 0, Options{FPP: 0.2})
	fxTight := newFixture(t, 40000, 11)
	tight := fxTight.build(t, 0, Options{FPP: 1e-6})

	countFalse := func(tr *Tree) int {
		total := 0
		for key := uint64(100); key < 1100; key++ {
			res, err := tr.Search(key)
			if err != nil {
				t.Fatal(err)
			}
			total += res.Stats.FalseReads
		}
		return total
	}
	looseFalse := countFalse(loose)
	tightFalse := countFalse(tight)
	if tightFalse > looseFalse/10 && looseFalse > 0 {
		t.Errorf("false reads: loose=%d tight=%d; tight fpp should nearly eliminate them",
			looseFalse, tightFalse)
	}
	if looseFalse == 0 {
		t.Error("fpp=0.2 should produce false reads over 1000 probes")
	}
}

func TestSizeShrinksWithFPP(t *testing.T) {
	// Table 2's central claim: higher fpp → smaller tree.
	var prev uint64
	for i, fpp := range []float64{0.2, 0.01, 1e-6, 1e-12} {
		fx := newFixture(t, 30000, 11)
		tr := fx.build(t, 0, Options{FPP: fpp})
		if i > 0 && tr.SizeBytes() < prev {
			t.Errorf("fpp=%g: size %d smaller than looser tree %d", fpp, tr.SizeBytes(), prev)
		}
		prev = tr.SizeBytes()
	}
}

func TestLeafChainCoversFile(t *testing.T) {
	fx := newFixture(t, 25000, 11)
	tr := fx.build(t, 0, Options{FPP: 0.01})
	var stats ProbeStats
	pid := tr.loadMeta().firstLeaf
	expectPid := fx.file.FirstPage()
	leaves := uint64(0)
	for pid != device.InvalidPage {
		leaf, err := tr.readLeaf(pid, &stats)
		if err != nil {
			t.Fatal(err)
		}
		if leaf.minPid != expectPid {
			t.Fatalf("leaf %d starts at page %d, want %d (gap or overlap)", leaves, leaf.minPid, expectPid)
		}
		if leaf.maxPid < leaf.minPid {
			t.Fatal("inverted page range")
		}
		expectPid = leaf.maxPid + 1
		leaves++
		pid = leaf.next
	}
	if leaves != tr.NumLeaves() {
		t.Errorf("chain has %d leaves, tree says %d", leaves, tr.NumLeaves())
	}
	wantEnd := fx.file.FirstPage() + device.PageID(fx.file.NumPages())
	if expectPid != wantEnd {
		t.Errorf("chain ends at page %d, file ends at %d", expectPid, wantEnd)
	}
}

func TestCandidatesWithinLeafRange(t *testing.T) {
	fx := newFixture(t, 20000, 11)
	tr := fx.build(t, 0, Options{FPP: 0.1})
	var stats ProbeStats
	pages, err := tr.candidatePages(1234, &stats)
	if err != nil {
		t.Fatal(err)
	}
	if len(pages) == 0 {
		t.Fatal("existing key produced no candidates")
	}
	last := tr.lastDataPage()
	for _, p := range pages {
		if p < fx.file.FirstPage() || p > last {
			t.Fatalf("candidate page %d outside file", p)
		}
	}
}

func TestGranularityGroupsPages(t *testing.T) {
	fx := newFixture(t, 20000, 11)
	g1 := fx.build(t, 0, Options{FPP: 0.01, Granularity: 1})
	fx4 := newFixture(t, 20000, 11)
	g4 := fx4.build(t, 0, Options{FPP: 0.01, Granularity: 4})

	// Coarser granularity reads more candidate pages per probe.
	sumCand := func(tr *Tree) int {
		total := 0
		for key := uint64(0); key < 500; key++ {
			res, err := tr.Search(key)
			if err != nil {
				t.Fatal(err)
			}
			total += res.Stats.CandidatePages
		}
		return total
	}
	c1, c4 := sumCand(g1), sumCand(g4)
	if c4 <= c1 {
		t.Errorf("granularity 4 candidates (%d) should exceed granularity 1 (%d)", c4, c1)
	}
	// But never miss.
	for key := uint64(0); key < 500; key++ {
		res, err := g4.SearchFirst(key)
		if err != nil || len(res.Tuples) != 1 {
			t.Fatalf("granularity 4 lost key %d", key)
		}
	}
}

func TestParallelProbeMatchesSequential(t *testing.T) {
	fx := newFixture(t, 30000, 11)
	seq := fx.build(t, 0, Options{FPP: 0.05})
	fxp := newFixture(t, 30000, 11)
	par := fxp.build(t, 0, Options{FPP: 0.05, ParallelProbe: true})
	for key := uint64(0); key < 2000; key += 13 {
		a, err := seq.Search(key)
		if err != nil {
			t.Fatal(err)
		}
		b, err := par.Search(key)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Tuples) != len(b.Tuples) {
			t.Fatalf("key %d: sequential %d vs parallel %d tuples", key, len(a.Tuples), len(b.Tuples))
		}
	}
}

func TestLeafEncodeDecodeRoundTrip(t *testing.T) {
	o, _ := Options{FPP: 0.01, Hashes: 3}.withDefaults()
	l := newBFLeaf(10, 19, o, 512, 10)
	for k := uint64(100); k < 200; k++ {
		pid := device.PageID(10 + (k-100)/10)
		if err := l.addKey(k, pid); err != nil {
			t.Fatal(err)
		}
		if k < l.minKey {
			l.minKey = k
		}
		if k > l.maxKey {
			l.maxKey = k
		}
		l.numKeys++
	}
	l.next = 77
	buf := make([]byte, 4096)
	if err := encodeBFLeaf(buf, l); err != nil {
		t.Fatal(err)
	}
	back, err := decodeBFLeaf(buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.minPid != 10 || back.maxPid != 19 || back.next != 77 ||
		back.minKey != 100 || back.maxKey != 199 || back.numKeys != 100 {
		t.Fatalf("header mismatch: %+v", back)
	}
	// Filters must answer identically.
	for k := uint64(100); k < 200; k++ {
		bid := int((k - 100) / 10)
		if !back.probeOne(bid, k) {
			t.Fatalf("key %d lost in round trip", k)
		}
	}
}

func TestLeafDecodeCorruption(t *testing.T) {
	buf := make([]byte, 4096)
	if _, err := decodeBFLeaf(buf); err == nil {
		t.Error("zero page decoded as BF-leaf")
	}
	buf[0] = nodeBFLeaf
	// granularity 0 and hashes 0 in header.
	if _, err := decodeBFLeaf(buf); err == nil {
		t.Error("zero granularity accepted")
	}
	if _, err := decodeBFLeaf(buf[:10]); err == nil {
		t.Error("short page accepted")
	}
}

func TestCountingLeafRoundTrip(t *testing.T) {
	o, _ := Options{FPP: 0.01, Filter: CountingFilter, Hashes: 3}.withDefaults()
	l := newBFLeaf(0, 3, o, 256, 4)
	for k := uint64(0); k < 40; k++ {
		if err := l.addKey(k, device.PageID(k/10)); err != nil {
			t.Fatal(err)
		}
	}
	l.minKey, l.maxKey, l.numKeys = 0, 39, 40
	buf := make([]byte, 4096)
	if err := encodeBFLeaf(buf, l); err != nil {
		t.Fatal(err)
	}
	back, err := decodeBFLeaf(buf)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 40; k++ {
		if !back.probeOne(int(k/10), k) {
			t.Fatalf("key %d lost", k)
		}
	}
	// Counting leaves can remove; key 5's only association is on page 0,
	// so its removal reports the last association gone (unless another
	// key's bits alias it, which 3 hashes over 256 slots make unlikely).
	lastGone, err := back.removeKey(5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !lastGone {
		t.Error("sole association removed but not reported as the last")
	}
	// A key claimed by two filters keeps its slot until both are gone.
	if err := back.addKey(7, 3); err != nil { // second association on filter 3
		t.Fatal(err)
	}
	if lastGone, err := back.removeKey(7, 0); err != nil || lastGone {
		t.Errorf("removeKey(7, page 0) = (%v, %v), want (false, nil): filter 3 still claims it", lastGone, err)
	}
	if lastGone, err := back.removeKey(7, 3); err != nil || !lastGone {
		t.Errorf("removeKey(7, page 3) = (%v, %v), want (true, nil): last association", lastGone, err)
	}
	// Standard leaves cannot remove.
	so, _ := Options{FPP: 0.01, Hashes: 3}.withDefaults()
	sl := newBFLeaf(0, 0, so, 256, 1)
	if _, err := sl.removeKey(1, 0); err == nil {
		t.Error("standard leaf allowed a delete")
	}
}

func TestInternalNodeRoundTrip(t *testing.T) {
	buf := make([]byte, 4096)
	n := &internalNode{keys: []uint64{5, 10}, children: []device.PageID{1, 2, 3}}
	if err := encodeInternal(buf, n); err != nil {
		t.Fatal(err)
	}
	back, err := decodeInternal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.keys) != 2 || back.children[2] != 3 {
		t.Fatalf("round trip: %+v", back)
	}
	bad := &internalNode{keys: []uint64{1}, children: []device.PageID{1}}
	if err := encodeInternal(buf, bad); err == nil {
		t.Error("mismatched children accepted")
	}
	if _, err := nodeKind([]byte{}); err == nil {
		t.Error("empty page got a kind")
	}
}

func TestEffectiveFPPDrift(t *testing.T) {
	fx := newFixture(t, 10000, 11)
	tr := fx.build(t, 0, Options{FPP: 0.001})
	if got := tr.EffectiveFPP(); got != 0.001 {
		t.Errorf("fresh tree fpp = %g", got)
	}
	tr.publish(func(m *treeMeta) { m.inserts = m.numKeys / 10 }) // +10 % inserts
	drifted := tr.EffectiveFPP()
	if drifted <= 0.001 {
		t.Error("inserts must raise effective fpp")
	}
	// Equation 14: fpp^(1/1.1).
	tr.publish(func(m *treeMeta) { m.deletes = m.numKeys / 10 })
	withDeletes := tr.EffectiveFPP()
	if withDeletes < drifted+0.09 {
		t.Errorf("10%% deletes should add ≈0.1: %g vs %g", withDeletes, drifted)
	}
}

func TestInternalPagesWarm(t *testing.T) {
	fx := newFixture(t, 50000, 11)
	tr := fx.build(t, 0, Options{FPP: 0.01})
	pages, err := tr.InternalPages()
	if err != nil {
		t.Fatal(err)
	}
	want := tr.NumNodes() - tr.NumLeaves()
	if uint64(len(pages)) != want {
		t.Errorf("internal pages = %d, want %d", len(pages), want)
	}
	// A single-leaf tree has none.
	fx2 := newFixture(t, 100, 11)
	tr2 := fx2.build(t, 0, Options{FPP: 0.1})
	pages2, err := tr2.InternalPages()
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Height() == 1 && len(pages2) != 0 {
		t.Error("single-leaf tree should have no internal pages")
	}
}

func TestTreeString(t *testing.T) {
	fx := newFixture(t, 1000, 11)
	tr := fx.build(t, 0, Options{FPP: 0.01})
	if tr.String() == "" {
		t.Error("String should format")
	}
}
