package core

import (
	"bytes"
	"sort"
	"sync"
	"testing"

	"bftree/internal/device"
	"bftree/internal/pagestore"
)

// concurrentWorkers is the degree of parallelism of the probe-hammer
// tests; the concurrency contract is "any number of concurrent readers",
// so the tests run well past typical core counts.
const concurrentWorkers = 8

// probeKeys picks a deterministic mix of present and absent keys.
func probeKeys(fx *fixture) []uint64 {
	var keys []uint64
	att1 := fx.syn.ATT1Keys
	step := len(att1) / 60
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(att1); i += step {
		keys = append(keys, att1[i])
	}
	maxKey := att1[len(att1)-1]
	for i := uint64(1); i <= 40; i++ {
		keys = append(keys, maxKey+i*7) // guaranteed misses
	}
	return keys
}

// flatten canonicalizes a probe result for equality comparison: tuple
// order within one probe is deterministic (ascending page order for
// plain scans, boundary-probe order for optimized ones), so a plain
// concatenation suffices — against a baseline of the same scan variant.
func flatten(res *Result) []byte {
	var out []byte
	for _, tup := range res.Tuples {
		out = append(out, tup...)
	}
	return out
}

// flattenSorted canonicalizes a result as a tuple multiset, for
// comparisons across scan variants with different emission orders.
func flattenSorted(res *Result) []byte {
	tuples := make([]string, len(res.Tuples))
	for i, tup := range res.Tuples {
		tuples[i] = string(tup)
	}
	sort.Strings(tuples)
	var out []byte
	for _, tup := range tuples {
		out = append(out, tup...)
	}
	return out
}

// concurrentFixture builds the ATT1 tree on an index store created by
// mkStore over a fresh memory device.
func concurrentFixture(t *testing.T, mkStore func(*device.Device) *pagestore.Store) (*fixture, *Tree) {
	t.Helper()
	fx := newFixture(t, 20000, 11)
	fx.idxStore = mkStore(device.New(device.Memory, 4096))
	tr := fx.build(t, 1, Options{FPP: 1e-3})
	return fx, tr
}

// runConcurrentSearch verifies Tree.Search under concurrentWorkers
// goroutines against the sequential baseline, and that I/O accounting
// stays consistent (every page access is counted exactly once).
func runConcurrentSearch(t *testing.T, cached bool) {
	mk := func(d *device.Device) *pagestore.Store { return pagestore.New(d) }
	if cached {
		mk = func(d *device.Device) *pagestore.Store { return pagestore.New(d, pagestore.WithCache(4096)) }
	}
	fx, tr := concurrentFixture(t, mk)
	keys := probeKeys(fx)

	// Sequential baseline: expected tuples per key, and the per-pass
	// index access count once the cache (if any) is at steady state.
	expected := make(map[uint64][]byte, len(keys))
	for _, k := range keys {
		res, err := tr.Search(k)
		if err != nil {
			t.Fatal(err)
		}
		expected[k] = flatten(res)
	}
	h0, m0 := fx.idxStore.CacheStats()
	fx.idxStore.Device().ResetStats()
	for _, k := range keys {
		if _, err := tr.Search(k); err != nil {
			t.Fatal(err)
		}
	}
	h1, m1 := fx.idxStore.CacheStats()
	passAccesses := (h1 + m1) - (h0 + m0)
	passIdxReads := fx.idxStore.Device().Stats().Reads()
	if cached && m1 != m0 {
		t.Fatalf("steady-state pass missed %d times in a full-size cache", m1-m0)
	}
	if !cached && passIdxReads == 0 {
		t.Fatal("uncached baseline did no device reads")
	}

	fx.idxStore.Device().ResetStats()
	var wg sync.WaitGroup
	for w := 0; w < concurrentWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range keys {
				k := keys[(i+w)%len(keys)]
				res, err := tr.Search(k)
				if err != nil {
					t.Error(err)
					return
				}
				if !bytes.Equal(flatten(res), expected[k]) {
					t.Errorf("key %d: concurrent result differs from sequential baseline", k)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	if cached {
		h2, m2 := fx.idxStore.CacheStats()
		gotAccesses := (h2 + m2) - (h1 + m1)
		if want := passAccesses * concurrentWorkers; gotAccesses != want {
			t.Errorf("concurrent phase recorded %d cache accesses, want %d (= %d workers × %d)",
				gotAccesses, want, concurrentWorkers, passAccesses)
		}
		if m2 != m1 {
			t.Errorf("concurrent phase missed %d times in a fully warm cache", m2-m1)
		}
	} else {
		got := fx.idxStore.Device().Stats().Reads()
		if want := passIdxReads * concurrentWorkers; got != want {
			t.Errorf("concurrent phase did %d index device reads, want %d (= %d workers × %d)",
				got, want, concurrentWorkers, passIdxReads)
		}
	}
}

func TestConcurrentSearchUncached(t *testing.T) { runConcurrentSearch(t, false) }
func TestConcurrentSearchCached(t *testing.T)   { runConcurrentSearch(t, true) }

// runConcurrentRangeScan verifies RangeScan (and the optimized variant)
// under concurrency against the sequential baseline.
func runConcurrentRangeScan(t *testing.T, cached bool) {
	mk := func(d *device.Device) *pagestore.Store { return pagestore.New(d) }
	if cached {
		mk = func(d *device.Device) *pagestore.Store { return pagestore.New(d, pagestore.WithCache(4096)) }
	}
	fx, tr := concurrentFixture(t, mk)

	att1 := fx.syn.ATT1Keys
	type span struct{ lo, hi uint64 }
	var spans []span
	width := (att1[len(att1)-1] - att1[0]) / 16
	if width == 0 {
		width = 1
	}
	for i := 0; i < 12; i++ {
		lo := att1[0] + uint64(i)*width
		spans = append(spans, span{lo: lo, hi: lo + width/3})
	}

	expected := make([][]byte, len(spans))
	expectedOpt := make([][]byte, len(spans))
	for i, sp := range spans {
		res, err := tr.RangeScan(sp.lo, sp.hi)
		if err != nil {
			t.Fatal(err)
		}
		expected[i] = flatten(res)
		opt, err := tr.RangeScanOptimized(sp.lo, sp.hi)
		if err != nil {
			t.Fatal(err)
		}
		expectedOpt[i] = flatten(opt)
		// The optimized cursor probes boundary keys lazily, so its
		// emission order differs from the plain scan's page order; the
		// tuple multiset must still match exactly.
		if !bytes.Equal(flattenSorted(res), flattenSorted(opt)) {
			t.Fatalf("span %d: optimized scan differs from plain scan as a multiset", i)
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < concurrentWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range spans {
				sp := spans[(i+w)%len(spans)]
				var want []byte
				var res *Result
				var err error
				if w%2 == 0 {
					want = expected[(i+w)%len(spans)]
					res, err = tr.RangeScan(sp.lo, sp.hi)
				} else {
					want = expectedOpt[(i+w)%len(spans)]
					res, err = tr.RangeScanOptimized(sp.lo, sp.hi)
				}
				if err != nil {
					t.Error(err)
					return
				}
				if !bytes.Equal(flatten(res), want) {
					t.Errorf("span [%d,%d]: concurrent scan differs from baseline", sp.lo, sp.hi)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestConcurrentRangeScanUncached(t *testing.T) { runConcurrentRangeScan(t, false) }
func TestConcurrentRangeScanCached(t *testing.T)   { runConcurrentRangeScan(t, true) }

// TestConcurrentMixedProbes runs point probes, range scans and
// candidate-page intersections together — the full read-path surface —
// under the race detector.
func TestConcurrentMixedProbes(t *testing.T) {
	fx, tr := concurrentFixture(t, func(d *device.Device) *pagestore.Store {
		return pagestore.New(d, pagestore.WithCache(512))
	})
	keys := probeKeys(fx)
	var wg sync.WaitGroup
	for w := 0; w < concurrentWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				k := keys[(i*7+w)%len(keys)]
				switch (i + w) % 3 {
				case 0:
					if _, err := tr.Search(k); err != nil {
						t.Error(err)
						return
					}
				case 1:
					if _, err := tr.SearchFirst(k); err != nil {
						t.Error(err)
						return
					}
				case 2:
					if _, err := tr.RangeScan(k, k+50); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestConcurrentParallelProbeOption exercises the ParallelProbe leaf
// option (per-leaf fan-out) nested inside concurrent callers.
func TestConcurrentParallelProbeOption(t *testing.T) {
	fx := newFixture(t, 20000, 11)
	tr := fx.build(t, 1, Options{FPP: 1e-3, ParallelProbe: true})
	keys := probeKeys(fx)
	var wg sync.WaitGroup
	for w := 0; w < concurrentWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				if _, err := tr.Search(keys[(i+w)%len(keys)]); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
