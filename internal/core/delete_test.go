package core

import (
	"errors"
	"fmt"
	"testing"

	"bftree/internal/device"
	"bftree/internal/pagestore"
)

// separatorFixture bulk-loads a counting-filter tree over a relation of
// duplicated keys sized so that key runs straddle leaf boundaries: each
// key occupies 1.25 data pages, so most leaf-flush boundaries fall
// mid-run and the separator key of a right leaf trails duplicates in
// the left leaf — the exact shape the Delete routing bug missed.
func separatorFixture(t *testing.T) (*Tree, uint64, device.PageID, device.PageID) {
	t.Helper()
	const reps = 80 // 1.25 pages per key at 64 tuples/page
	var keys []uint64
	for k := uint64(0); k < 2000; k++ {
		for r := 0; r < reps; r++ {
			keys = append(keys, k)
		}
	}
	f, _ := buildKeyedFile(t, keys)
	tr, err := BulkLoad(pagestore.New(device.New(device.Memory, 4096)), f, 0,
		Options{FPP: 0.01, Filter: CountingFilter})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Height() < 2 {
		t.Fatal("fixture needs internal levels")
	}
	rootBuf, err := tr.Store().ReadPage(tr.Root())
	if err != nil {
		t.Fatal(err)
	}
	root, err := decodeInternal(rootBuf)
	if err != nil {
		t.Fatal(err)
	}
	// Find a separator whose duplicates trail into the left leaf: the
	// leaf reached by search routing (leftmost) still covers the key.
	for _, sep := range root.keys {
		leaf, leftPid, _, err := tr.descendPath(sep, false)
		if err != nil {
			t.Fatal(err)
		}
		if leaf.maxKey == sep {
			return tr, sep, leftPid, leaf.maxPid
		}
	}
	t.Fatal("fixture produced no separator with left-trailing duplicates; retune reps")
	return nil, 0, 0, 0
}

// TestDeleteAtSeparatorFindsLeftDuplicates pins the Delete routing fix:
// the old path used insert routing (key == separator goes right) and
// only ever walked forward, so a counting-filter delete of a separator
// key's association on the *left* leaf could never reach it — it either
// failed with ErrKeyRange (page before the right leaf's range) or
// silently decremented the wrong filter. Search-style routing walks
// every chained leaf covering the key and removes from the leaf whose
// page range holds the pid.
func TestDeleteAtSeparatorFindsLeftDuplicates(t *testing.T) {
	tr, sep, leftPid, leftPage := separatorFixture(t)

	// The regression is only exercised if insert routing lands elsewhere.
	_, rightPid, _, err := tr.descendPath(sep, true)
	if err != nil {
		t.Fatal(err)
	}
	if rightPid == leftPid {
		t.Fatal("fixture: insert routing reached the left leaf; separator does not discriminate")
	}

	if err := tr.Delete(sep, leftPage); err != nil {
		t.Fatalf("delete of separator key %d on left-leaf page %d: %v", sep, leftPage, err)
	}
	if got := tr.loadMeta().deletes; got != 1 {
		t.Errorf("deletes counter = %d after one successful delete, want 1", got)
	}

	// The removal was physical and on the left leaf: repeating the
	// delete drains the counting filter until no covering leaf claims
	// the association any more.
	drained := false
	for i := 0; i < 256; i++ {
		if err := tr.Delete(sep, leftPage); err != nil {
			if !errors.Is(err, ErrNotIndexed) {
				t.Fatalf("drain delete %d: %v", i, err)
			}
			drained = true
			break
		}
	}
	if !drained {
		t.Error("association never drained: deletes are not reaching the left leaf's filter")
	}
}

// TestDeleteAccountingWithRemainingDuplicates pins the accounting fix:
// a delete that removes one association of a key still claimed on other
// pages of the leaf must not decrement the leaf's distinct-key count
// (the Equation 5 capacity input); only dropping the key's last
// association may. The drift counter moves once per successful delete,
// and not at all for associations no filter claims.
func TestDeleteAccountingWithRemainingDuplicates(t *testing.T) {
	// Unique keys except key 500, which spans three data pages.
	var keys []uint64
	for k := uint64(0); k < 1000; k++ {
		keys = append(keys, k)
		if k == 500 {
			for r := 0; r < 127; r++ {
				keys = append(keys, k)
			}
		}
	}
	f, _ := buildKeyedFile(t, keys)
	tr, err := BulkLoad(pagestore.New(device.New(device.Memory, 4096)), f, 0,
		Options{FPP: 0.001, Filter: CountingFilter})
	if err != nil {
		t.Fatal(err)
	}
	leaf, leafPid, _, err := tr.descendPath(500, false)
	if err != nil {
		t.Fatal(err)
	}
	numKeys0 := leaf.numKeys
	// The three pages holding key 500's run (ordinals 500..627).
	pages := []device.PageID{f.PageOf(500), f.PageOf(563), f.PageOf(627)}
	if pages[0] == pages[2] {
		t.Fatal("fixture: key 500 does not span pages")
	}
	if pages[2] > leaf.maxPid {
		t.Fatal("fixture: key 500's run crosses a leaf boundary; this test needs one leaf")
	}

	readBack := func() *bfLeaf {
		t.Helper()
		var stats ProbeStats
		l, err := tr.readLeaf(leafPid, &stats)
		if err != nil {
			t.Fatal(err)
		}
		return l
	}

	if err := tr.Delete(500, pages[1]); err != nil {
		t.Fatal(err)
	}
	if got := readBack().numKeys; got != numKeys0 {
		t.Errorf("numKeys = %d after deleting one of three associations, want unchanged %d", got, numKeys0)
	}
	if got := tr.loadMeta().deletes; got != 1 {
		t.Errorf("deletes = %d, want 1", got)
	}

	if err := tr.Delete(500, pages[0]); err != nil {
		t.Fatal(err)
	}
	if err := tr.Delete(500, pages[2]); err != nil {
		t.Fatal(err)
	}
	if got := readBack().numKeys; got != numKeys0-1 {
		t.Errorf("numKeys = %d after dropping the key's last association, want %d", got, numKeys0-1)
	}
	if got := tr.loadMeta().deletes; got != 3 {
		t.Errorf("deletes = %d after three removals, want 3", got)
	}

	// An association no filter claims must not move any counter.
	err = tr.Delete(5000, pages[0])
	if !errors.Is(err, ErrNotIndexed) {
		t.Errorf("deleting an absent key = %v, want ErrNotIndexed", err)
	}
	if got := tr.loadMeta().deletes; got != 3 {
		t.Errorf("absent-key delete moved the drift counter to %d", got)
	}
	if got := readBack().numKeys; got != numKeys0-1 {
		t.Errorf("absent-key delete changed numKeys to %d", got)
	}
}

// TestDeleteStandardUnindexedNotCounted: a standard-filter (logical)
// delete of an association the index never claimed must not inflate the
// Section 7 drift term — the old path counted every call.
func TestDeleteStandardUnindexedNotCounted(t *testing.T) {
	f, _ := buildInitialFile(t, 2000)
	tr, err := BulkLoad(pagestore.New(device.New(device.Memory, 4096)), f, 0, Options{FPP: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	base := tr.EffectiveFPP()
	// Far outside the key domain: no leaf covers it.
	if err := tr.Delete(1<<40, f.PageOf(0)); err != nil {
		t.Fatalf("logical delete of an unindexed key must be a no-op, got %v", err)
	}
	if got := tr.loadMeta().deletes; got != 0 {
		t.Errorf("unindexed delete recorded %d drift deletes", got)
	}
	if tr.EffectiveFPP() != base {
		t.Error("unindexed delete drifted the effective fpp")
	}
	// A claimed association still counts.
	if err := tr.Delete(100, f.PageOf(100)); err != nil {
		t.Fatal(err)
	}
	if got := tr.loadMeta().deletes; got != 1 {
		t.Errorf("present-key delete recorded %d drift deletes, want 1", got)
	}
}

// TestAppendTailRelinkFailureFreesCOWPages pins the appendLeaf page-leak
// fix: when the final tail relink fails after cowPath has written the
// new path (and possibly a new root), the unpublished pages must return
// to the free list, keeping live + free + limbo == device pages.
func TestAppendTailRelinkFailureFreesCOWPages(t *testing.T) {
	f, _ := buildInitialFile(t, 3000)
	// 128-byte index pages force internal levels, so cowPath writes
	// several fresh nodes per append.
	idx := pagestore.New(device.New(device.Memory, 128))
	tr, err := BulkLoad(idx, f, 0, Options{FPP: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Height() < 2 {
		t.Fatal("fixture needs internal levels")
	}
	maxKey := uint64(2999)
	_, tailPid, _, err := tr.descendPath(maxKey, true)
	if err != nil {
		t.Fatal(err)
	}

	economy := func(when string) {
		t.Helper()
		tr.writeMu.Lock()
		inLimbo := uint64(len(tr.limboPrev) + len(tr.limboCur))
		tr.writeMu.Unlock()
		live := tr.NumNodes()
		free := uint64(idx.FreePages())
		total := idx.Device().NumPages()
		if live+free+inLimbo != total {
			t.Errorf("%s: page economy leaks: live %d + free %d + limbo %d != device %d",
				when, live, free, inLimbo, total)
		}
	}
	economy("before append")

	injected := fmt.Errorf("injected tail-relink failure")
	tr.leafWriteFault = func(pid device.PageID) error {
		if pid == tailPid {
			return injected
		}
		return nil
	}
	freed0, _ := idx.FreeListStats()
	newPage := tr.lastDataPage()
	err = tr.Insert(maxKey+1, newPage+1)
	if !errors.Is(err, injected) {
		t.Fatalf("append with failing tail relink = %v, want the injected error", err)
	}
	freed1, _ := idx.FreeListStats()
	// At least the new leaf plus one cow path page (the rewritten
	// parent) must have been freed.
	if freed1 < freed0+2 {
		t.Errorf("only %d pages freed on the failure path; cowPath allocations leaked", freed1-freed0)
	}
	economy("after failed append")

	// The tree is undamaged and the freed pages are recyclable: the
	// same append succeeds once the fault is cleared.
	tr.leafWriteFault = nil
	if err := tr.Insert(maxKey+1, newPage+1); err != nil {
		t.Fatalf("retry after clearing the fault: %v", err)
	}
	economy("after successful retry")
	for k := uint64(0); k < 3000; k += 271 {
		res, err := tr.SearchFirst(k)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Tuples) != 1 {
			t.Errorf("key %d lost through the failed append", k)
		}
	}
}
