// Package core implements the BF-Tree, the paper's primary contribution:
// an approximate tree index whose internal nodes are classic B+-Tree
// nodes but whose leaves (BF-leaves) hold Bloom filters instead of
// <key, pointer> entries. Each BF-leaf covers a contiguous range of data
// pages and a contiguous key range, and stores — per data page, or per
// group of pages — a Bloom filter answering "might key k be on this
// page?". Probing trades a configurable false positive probability (and
// the unnecessary page reads it causes) for an index that is one to two
// orders of magnitude smaller than the corresponding B+-Tree.
//
// The package implements bulk loading (Section 4.2), probe Algorithm 1,
// insert Algorithm 3, leaf split Algorithm 2 (with the parallel probing
// optimization of Section 8), range scans with and without the boundary
// optimization of Section 7, false-positive drift under inserts and
// deletes (Equation 14), and counting-filter leaves as the deletable
// alternative Section 7 discusses.
package core

import (
	"errors"
	"fmt"
	"math"
	"time"

	"bftree/internal/bloom"
)

// Errors returned by the package.
var (
	ErrOptions  = errors.New("bftree: invalid options")
	ErrCorrupt  = errors.New("bftree: corrupt node")
	ErrKeyRange = errors.New("bftree: key outside leaf range")
	// ErrNotIndexed reports a counting-filter Delete whose key→page
	// association no covering leaf claims: nothing was removed and no
	// drift was recorded.
	ErrNotIndexed = errors.New("bftree: association not indexed")
)

// FilterKind selects the Bloom filter variant used in BF-leaves.
type FilterKind byte

const (
	// StandardFilter is the plain Bloom filter of the paper's
	// experiments: smallest, insert-only.
	StandardFilter FilterKind = iota
	// CountingFilter uses 4-bit counters per position, supporting
	// deletes at 4x the space per position (Section 7's deletable
	// alternative).
	CountingFilter
)

// MaintenanceMode selects who performs structural maintenance — limbo
// reclamation of retired copy-on-write pages and fpp-drift-triggered
// compaction (see maintenance.go and DESIGN.md §4).
type MaintenanceMode byte

const (
	// MaintenanceManual (the default) keeps the pre-maintainer
	// behavior: structural writers reclaim limbo opportunistically
	// inline, and the caller may run Tree.Maintain (or start a
	// maintainer explicitly with Tree.StartMaintenance) on demand.
	MaintenanceManual MaintenanceMode = iota
	// MaintenanceAuto starts a background maintainer goroutine at
	// BulkLoad/Open. Foreground structural writers then only *request*
	// maintenance; the maintainer reclaims limbo epochs and compacts
	// the tree when the Equation 14 fpp estimate crosses the threshold.
	// The tree must be Closed to drain the maintainer.
	MaintenanceAuto
	// MaintenanceDisabled suppresses all automatic maintenance: no
	// background goroutine and no inline reclamation — retired pages
	// accumulate in limbo until an explicit Tree.Maintain call. Meant
	// for tests and experiments that measure limbo growth.
	MaintenanceDisabled
)

// MaintenancePolicy configures the self-maintaining mode: when retired
// copy-on-write pages are reclaimed and when accumulated insert/delete
// drift (Section 7, Equation 14) triggers a Rebuild-based compaction.
type MaintenancePolicy struct {
	// Mode selects manual (default), auto, or disabled maintenance.
	Mode MaintenanceMode
	// FPPThreshold is the effective false-positive probability
	// (Tree.EffectiveFPP, the Equation 14 estimate plus the Section 7
	// delete term) at which the maintainer compacts the index via
	// Rebuild. It must exceed the design FPP, or the compaction would
	// re-trigger immediately. 0 selects 4x the design FPP (kept below
	// 1); 1 disables drift compaction.
	FPPThreshold float64
	// ReclaimInterval is the maintainer's periodic wakeup: the upper
	// bound on how long reclaimable limbo or unnoticed drift waits when
	// no probe-completion or structural-change signal arrives. 0
	// selects 5ms.
	ReclaimInterval time.Duration
	// LimboHighWater is the limbo page count past which the maintainer
	// escalates from polite lock acquisition (TryLock, which never
	// stalls latched writers) to one blocking acquire. 0 selects 512.
	LimboHighWater int
	// IncrementalBatch, when positive, makes drift compaction
	// incremental: each maintenance pass rewrites only the
	// IncrementalBatch most-drifted leaves (tracked per leaf) under the
	// exclusive lock, releasing it between batches, instead of
	// rebuilding the whole tree in one stall. 0 keeps the legacy
	// whole-tree Rebuild. See DESIGN.md §4 and Tree.CompactLeaves.
	IncrementalBatch int
}

// withDefaults fills zero values and validates against the design fpp.
func (p MaintenancePolicy) withDefaults(fpp float64) (MaintenancePolicy, error) {
	switch p.Mode {
	case MaintenanceManual, MaintenanceAuto, MaintenanceDisabled:
	default:
		return p, fmt.Errorf("%w: unknown maintenance mode %d", ErrOptions, p.Mode)
	}
	if p.FPPThreshold == 0 {
		p.FPPThreshold = 4 * fpp
		if p.FPPThreshold >= 1 {
			// Keep the default strictly inside (fpp, 1) even for the
			// paper's loosest design points.
			p.FPPThreshold = (1 + fpp) / 2
		}
	} else if math.IsNaN(p.FPPThreshold) || p.FPPThreshold <= fpp || p.FPPThreshold > 1 {
		// A NaN fails every ordered comparison, so without the explicit
		// check it would slip through and silently disable compaction.
		return p, fmt.Errorf("%w: fpp threshold %g outside (design fpp %g, 1]",
			ErrOptions, p.FPPThreshold, fpp)
	}
	if p.ReclaimInterval == 0 {
		p.ReclaimInterval = 5 * time.Millisecond
	} else if p.ReclaimInterval < 0 {
		return p, fmt.Errorf("%w: reclaim interval %v", ErrOptions, p.ReclaimInterval)
	}
	if p.LimboHighWater == 0 {
		p.LimboHighWater = 512
	} else if p.LimboHighWater < 0 {
		return p, fmt.Errorf("%w: limbo high water %d", ErrOptions, p.LimboHighWater)
	}
	// The persisted metadata stores the mark as a uint32; clamping here
	// keeps a marshal/reopen cycle faithful (a clamped mark this high
	// never triggers escalation in practice anyway). Via uint64 so the
	// comparison and assignment compile on 32-bit ints, where the
	// branch is simply unreachable.
	if maxHW := uint64(math.MaxUint32); uint64(p.LimboHighWater) > maxHW {
		p.LimboHighWater = int(maxHW)
	}
	if p.IncrementalBatch < 0 {
		return p, fmt.Errorf("%w: incremental batch %d", ErrOptions, p.IncrementalBatch)
	}
	// Same uint32 persistence clamp as the high-water mark; a batch this
	// large is indistinguishable from "the whole tree per pass" anyway.
	if maxB := uint64(math.MaxUint32); uint64(p.IncrementalBatch) > maxB {
		p.IncrementalBatch = int(maxB)
	}
	return p, nil
}

// Options configure a BF-Tree build.
type Options struct {
	// FPP is the design false positive probability of each leaf Bloom
	// filter. The paper sweeps it from 0.2 to 1e-15.
	FPP float64
	// Granularity is the number of consecutive data pages covered by one
	// Bloom filter within a leaf. 1 (the default and the paper's best
	// configuration) directs probes to exactly the matching pages;
	// larger values trade probe precision for fewer, larger filters.
	Granularity int
	// Hashes is the number of hash functions per filter. 0 (the
	// default) selects the optimal count for each leaf's filter
	// geometry — Equation 1, which sizes the filters, assumes optimal
	// hashing, and the paper's measured false-read rates (Table 3) track
	// the design fpp closely, which fixed k cannot do across the sweep.
	// Set 3 to reproduce the paper's stated configuration exactly.
	Hashes int
	// Filter selects standard or counting leaf filters.
	Filter FilterKind
	// ParallelProbe enables concurrent probing of a leaf's filters
	// (Section 8). Off by default: the experiments are I/O-bound.
	ParallelProbe bool
	// Maintenance configures the self-maintaining mode: background
	// limbo reclamation and drift-triggered compaction (DESIGN.md §4).
	// The zero value keeps the manual, inline-reclamation behavior.
	Maintenance MaintenancePolicy
}

// withDefaults fills zero values and validates.
func (o Options) withDefaults() (Options, error) {
	if o.FPP <= 0 || o.FPP >= 1 {
		return o, fmt.Errorf("%w: fpp %g out of (0,1)", ErrOptions, o.FPP)
	}
	if o.Granularity == 0 {
		o.Granularity = 1
	}
	if o.Granularity < 0 {
		return o, fmt.Errorf("%w: granularity %d", ErrOptions, o.Granularity)
	}
	if o.Hashes < 0 {
		return o, fmt.Errorf("%w: hashes %d", ErrOptions, o.Hashes)
	}
	if o.Filter != StandardFilter && o.Filter != CountingFilter {
		return o, fmt.Errorf("%w: unknown filter kind %d", ErrOptions, o.Filter)
	}
	m, err := o.Maintenance.withDefaults(o.FPP)
	if err != nil {
		return o, err
	}
	o.Maintenance = m
	return o, nil
}

// Geometry captures the derived leaf parameters for a page size and
// options: how many bits a leaf can spend on filters and how many
// distinct keys it can index at the design fpp (Equation 5 of the paper,
// adjusted for the leaf header).
type Geometry struct {
	PageSize     int
	FilterBits   uint64 // total filter bits available per leaf
	KeysPerLeaf  uint64 // distinct keys a leaf indexes at the design fpp
	MinBitsPerBF uint64 // lower bound enforced per sub-filter
}

// geometryFor computes the leaf geometry. Counting filters spend 4 bits
// per position, shrinking capacity by 4x.
func geometryFor(pageSize int, o Options) (Geometry, error) {
	avail := pageSize - leafHeaderSize
	if avail < 16 {
		return Geometry{}, fmt.Errorf("%w: page size %d too small for a BF-leaf", ErrOptions, pageSize)
	}
	bits := uint64(avail) * 8
	if o.Filter == CountingFilter {
		bits /= 4
	}
	keys := bloom.KeysForBits(bits, o.FPP)
	if keys == 0 {
		keys = 1
	}
	return Geometry{
		PageSize:     pageSize,
		FilterBits:   bits,
		KeysPerLeaf:  keys,
		MinBitsPerBF: 64,
	}, nil
}

// positionsFor divides the leaf's filter byte budget across s filters
// and returns the positions (bits for standard, counter slots for
// counting) each filter gets. Working in whole bytes per filter
// guarantees s filters always fit in the page.
func (g Geometry) positionsFor(s int, kind FilterKind) uint64 {
	bytesPer := (g.PageSize - leafHeaderSize) / s
	if bytesPer < 1 {
		bytesPer = 1
	}
	if kind == CountingFilter {
		return uint64(bytesPer) * 2
	}
	return uint64(bytesPer) * 8
}

// hashesFor resolves the hash-function count for a leaf with s filters:
// an explicit option wins; otherwise the optimal count for the design
// load (keysPerLeaf/s keys in posPerBF positions), capped to stay cheap
// to probe and to fit the leaf header byte.
func hashesFor(opt int, posPerBF uint64, keysPerLeaf uint64, s int) int {
	if opt > 0 {
		return opt
	}
	design := keysPerLeaf / uint64(s)
	if design < 1 {
		design = 1
	}
	k := bloom.OptimalHashes(posPerBF, design)
	if k > 30 {
		k = 30
	}
	return k
}
