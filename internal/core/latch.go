package core

import (
	"sync"

	"bftree/internal/device"
)

// latchStripes is the size of the leaf-latch hash table. Power of two so
// stripe selection is a mask; 128 stripes comfortably exceed any
// realistic writer parallelism, so two writers collide on a stripe only
// when they target the same leaf (the collision the latch exists for) or
// by rare hash coincidence (a harmless serialization).
const latchStripes = 128

// latchTable hash-partitions a set of mutexes over leaf page ids — the
// leaf-level write latching of DESIGN.md §3. A non-structural insert or
// delete touches exactly one BF-leaf, so it takes the shared tree lock
// (Tree.writeMu.RLock) plus the latch of that leaf and rewrites the leaf
// in place; writers latching distinct leaves proceed in parallel.
// Structural changes (split, append, internal split, root growth,
// Rebuild) escalate to the exclusive tree lock instead and never touch
// the latch table, which keeps the lock order trivially acyclic:
// writeMu, then at most one leaf latch, never two.
//
// The table is keyed by pid, not by leaf identity: after a structural
// change recycles a pid, the new page at that pid shares the old page's
// stripe, which is correct because latched writers always re-read the
// leaf image after acquiring the latch.
type latchTable struct {
	stripes [latchStripes]sync.Mutex
}

// lock acquires the latch covering pid and returns it; the caller
// unlocks. Holding writeMu (shared or exclusive) is a precondition for
// latching — the latch serializes same-leaf rewrites, the tree lock
// keeps the structure those rewrites rely on frozen.
func (lt *latchTable) lock(pid device.PageID) *sync.Mutex {
	// Fibonacci hashing decorrelates the sequential pids of a freshly
	// bulk-loaded leaf level (same constant as the page-cache shards).
	h := uint64(pid) * 0x9E3779B97F4A7C15
	mu := &lt.stripes[(h>>32)&(latchStripes-1)]
	mu.Lock()
	return mu
}
