package core

import (
	"fmt"

	"bftree/internal/heapfile"
	"bftree/internal/pagestore"
)

// Partition restricts a tree to one shard of the indexed relation: the
// tree indexes only the keys the partition accepts, while reading the
// same shared heap file as every sibling shard. Partitioning is by KEY,
// not by page — a duplicate run straddling a page cut belongs wholly to
// the shard that owns its key, so two shards may both cover the
// straddling page without ever double-claiming an association (the
// cross-shard exactly-once rule of the forest layer).
//
// Two kinds exist. A range partition (Hash == false) accepts the keys
// in [KeyLo, KeyHi], which is how the forest keeps shards ordered and
// range scans mergeable by concatenation. A hash partition (Hash ==
// true) accepts keys whose mixed hash lands on the shard ordinal —
// point-lookup-friendly under skew, at the cost of every shard's leaves
// spanning most of the file.
//
// The partition is part of the tree's identity: it survives Rebuild
// (drift compaction re-applies the same filter, so a shard never
// swallows the whole file) and is carried by the owning composite
// across MarshalMeta/OpenPartition.
type Partition struct {
	// Shard is this partition's ordinal in [0, Shards); Shards the
	// total shard count.
	Shard, Shards int
	// KeyLo, KeyHi are the inclusive accepted key bounds of a range
	// partition; ignored when Hash is set.
	KeyLo, KeyHi uint64
	// Hash selects hash partitioning: accept keys with
	// HashKey(key) % Shards == Shard.
	Hash bool
}

// validate rejects malformed partitions before they reach a build.
func (p *Partition) validate() error {
	if p == nil {
		return nil
	}
	if p.Shards < 1 || p.Shard < 0 || p.Shard >= p.Shards {
		return fmt.Errorf("%w: partition %d of %d", ErrOptions, p.Shard, p.Shards)
	}
	if !p.Hash && p.KeyLo > p.KeyHi {
		return fmt.Errorf("%w: partition key range [%d,%d] inverted", ErrOptions, p.KeyLo, p.KeyHi)
	}
	return nil
}

// Accept reports whether the partition owns key. A nil partition owns
// everything (the single-tree case).
func (p *Partition) Accept(key uint64) bool {
	if p == nil {
		return true
	}
	if p.Hash {
		return HashKey(key)%uint64(p.Shards) == uint64(p.Shard)
	}
	return key >= p.KeyLo && key <= p.KeyHi
}

// HashKey is the shard-routing mix (a splitmix64 finalizer): every
// consumer of hash partitions — build, probe routing, scan filtering —
// must agree on it, so it is exported alongside Partition.
func HashKey(k uint64) uint64 {
	k ^= k >> 30
	k *= 0xbf58476d1ce4e5b9
	k ^= k >> 27
	k *= 0x94d049bb133111eb
	k ^= k >> 31
	return k
}

// BulkLoadPartition is BulkLoad restricted to one partition of the
// relation: only accepted keys are indexed, and only the pages holding
// them enter the shard's leaf spans. An empty partition (no accepted
// keys anywhere) builds a valid one-leaf tree that answers every probe
// empty — a forest shard must exist even when the key distribution
// leaves it nothing, and it must accept appends later.
//
// Like BulkLoad, the returned tree owns a background maintainer under
// Options.Maintenance.Mode == MaintenanceAuto; call Close to drain it.
func BulkLoadPartition(idxStore *pagestore.Store, file *heapfile.File, fieldIdx int, opts Options, part *Partition) (*Tree, error) {
	if err := part.validate(); err != nil {
		return nil, err
	}
	t, err := bulkLoadTree(idxStore, file, fieldIdx, opts, part)
	if err != nil {
		return nil, err
	}
	if t.opts.Maintenance.Mode == MaintenanceAuto {
		t.StartMaintenance()
	}
	return t, nil
}

// OpenPartition reopens a partitioned tree from a MarshalMeta blob. The
// metadata layout is identical to an unpartitioned tree's — the
// partition itself is owned and persisted by the composite (the forest
// layer), which hands it back here so Rebuild keeps filtering.
func OpenPartition(store *pagestore.Store, file *heapfile.File, meta []byte, part *Partition) (*Tree, error) {
	if err := part.validate(); err != nil {
		return nil, err
	}
	return open(store, file, meta, part)
}

// PartitionOf returns the tree's partition (nil for a whole-relation
// tree).
func (t *Tree) PartitionOf() *Partition { return t.part }
