package core

import (
	"testing"

	"bftree/internal/device"
	"bftree/internal/heapfile"
	"bftree/internal/pagestore"
)

var insertSchema = heapfile.Schema{
	TupleSize: 64,
	Fields:    []heapfile.Field{{Name: "k", Offset: 0}},
}

// buildInitialFile creates a file with keys 0..n-1 (unique, ordered).
func buildInitialFile(t *testing.T, n int) (*heapfile.File, *pagestore.Store) {
	t.Helper()
	store := pagestore.New(device.New(device.Memory, 4096))
	b, err := heapfile.NewBuilder(store, insertSchema)
	if err != nil {
		t.Fatal(err)
	}
	tup := make([]byte, 64)
	for i := 0; i < n; i++ {
		insertSchema.Set(tup, 0, uint64(i))
		if err := b.Append(tup); err != nil {
			t.Fatal(err)
		}
	}
	f, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return f, store
}

func TestInsertIntoExistingPage(t *testing.T) {
	// Simulate an update that adds a key already physically on a page:
	// re-inserting existing keys must not error, must keep searches
	// working, and must not inflate the distinct-key count.
	f, _ := buildInitialFile(t, 5000)
	idx := pagestore.New(device.New(device.Memory, 4096))
	tr, err := BulkLoad(idx, f, 0, Options{FPP: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	before := tr.NumKeys()
	for k := uint64(0); k < 100; k++ {
		pid := f.PageOf(k)
		if err := tr.Insert(k, pid); err != nil {
			t.Fatalf("re-insert %d: %v", k, err)
		}
	}
	if got := tr.loadMeta().inserts; got != 0 {
		t.Errorf("re-inserting present keys recorded %d drift inserts", got)
	}
	if tr.NumKeys() != before {
		t.Error("re-inserts changed key count")
	}
	res, err := tr.SearchFirst(50)
	if err != nil || len(res.Tuples) != 1 {
		t.Fatal("search broken after re-inserts")
	}
}

func TestInsertRejectsDisorder(t *testing.T) {
	f, _ := buildInitialFile(t, 5000)
	idx := pagestore.New(device.New(device.Memory, 4096))
	tr, err := BulkLoad(idx, f, 0, Options{FPP: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	// Key 10 belongs to the first leaf; claiming it lives on the last
	// page violates the ordering assumption (the first leaf is not the
	// tail, so no append path applies).
	if tr.NumLeaves() < 2 {
		t.Skip("need multiple leaves")
	}
	lastPage := f.FirstPage() + device.PageID(f.NumPages()) - 1
	if err := tr.Insert(10, lastPage); err == nil {
		t.Error("insert violating order accepted")
	}
	if err := tr.Insert(10, f.FirstPage()-1); err == nil && f.FirstPage() > 0 {
		t.Error("insert before leaf range accepted")
	}
}

func TestAppendGrowsTree(t *testing.T) {
	// Start small, append new keys on new data pages, verify everything
	// stays searchable.
	store := pagestore.New(device.New(device.Memory, 4096))
	b, err := heapfile.NewBuilder(store, insertSchema)
	if err != nil {
		t.Fatal(err)
	}
	tup := make([]byte, 64)
	const initial = 1000
	for i := 0; i < initial; i++ {
		insertSchema.Set(tup, 0, uint64(i))
		b.Append(tup)
	}
	f, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	idx := pagestore.New(device.New(device.Memory, 4096))
	tr, err := BulkLoad(idx, f, 0, Options{FPP: 0.01})
	if err != nil {
		t.Fatal(err)
	}

	// Append more tuples to the file (new builder extends the store) and
	// index them. The appended pages continue the pid sequence.
	b2, err := heapfile.NewBuilder(store, insertSchema)
	if err != nil {
		t.Fatal(err)
	}
	const extra = 2000
	for i := initial; i < initial+extra; i++ {
		insertSchema.Set(tup, 0, uint64(i))
		b2.Append(tup)
	}
	f2, err := b2.Finish()
	if err != nil {
		t.Fatal(err)
	}
	// The second segment's pages follow the first contiguously; extend
	// the tree's file view before indexing the new tuples.
	f.Extend(f2.NumPages(), f2.NumTuples())
	perPage := f.TuplesPerPage()
	for i := initial; i < initial+extra; i++ {
		ordinal := uint64(i - initial)
		pid := f2.FirstPage() + device.PageID(ordinal/uint64(perPage))
		if err := tr.Insert(uint64(i), pid); err != nil {
			t.Fatalf("append insert %d: %v", i, err)
		}
	}

	for _, k := range []uint64{0, 999, 1000, 1500, 2999} {
		res, err := tr.SearchFirst(k)
		if err != nil {
			t.Fatalf("search %d: %v", k, err)
		}
		if len(res.Tuples) != 1 {
			t.Fatalf("key %d lost after appends", k)
		}
	}
	if tr.NumLeaves() < 2 {
		t.Error("appends should have added leaves")
	}
}

func TestSplitLeafKeepsAllKeys(t *testing.T) {
	// Force splits with a tiny page size: few keys per leaf.
	f, _ := buildInitialFile(t, 3000)
	idx := pagestore.New(device.New(device.Memory, 512))
	tr, err := BulkLoad(idx, f, 0, Options{FPP: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	leavesBefore := tr.NumLeaves()
	// Descend to a leaf and split it directly.
	leaf, leafPid, path, err := tr.descendPath(100, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.splitLeaf(leaf, leafPid, path); err != nil {
		t.Fatal(err)
	}
	if tr.NumLeaves() != leavesBefore+1 {
		t.Errorf("leaves %d, want %d", tr.NumLeaves(), leavesBefore+1)
	}
	// Every key in the split range must still be findable (no false
	// negatives through a split).
	for k := uint64(0); k < 3000; k += 7 {
		res, err := tr.SearchFirst(k)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Tuples) != 1 {
			t.Fatalf("key %d lost after split", k)
		}
	}
}

func TestSplitByRebuildMatchesProbe(t *testing.T) {
	f, _ := buildInitialFile(t, 2000)
	idx := pagestore.New(device.New(device.Memory, 512))
	tr, err := BulkLoad(idx, f, 0, Options{FPP: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	leaf, _, _, err := tr.descendPath(500, false)
	if err != nil {
		t.Fatal(err)
	}
	pl, pr, err := tr.splitByProbe(leaf)
	if err != nil {
		t.Fatal(err)
	}
	rl, rr, err := tr.splitByRebuild(leaf)
	if err != nil {
		t.Fatal(err)
	}
	// The rebuild is exact; the probe variant may include false
	// positives but must cover at least the same keys.
	if pl.minKey > rl.minKey || pl.maxKey < rl.maxKey {
		t.Errorf("probe left [%d,%d] does not cover exact [%d,%d]",
			pl.minKey, pl.maxKey, rl.minKey, rl.maxKey)
	}
	if pr.minKey > rr.minKey || pr.maxKey < rr.maxKey {
		t.Errorf("probe right [%d,%d] does not cover exact [%d,%d]",
			pr.minKey, pr.maxKey, rr.minKey, rr.maxKey)
	}
	if pl.numKeys < rl.numKeys || pr.numKeys < rr.numKeys {
		t.Error("probe split lost keys vs exact rebuild")
	}
}

func TestParallelSplitMatchesSequential(t *testing.T) {
	f, _ := buildInitialFile(t, 3000)
	idxA := pagestore.New(device.New(device.Memory, 512))
	seq, err := BulkLoad(idxA, f, 0, Options{FPP: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	idxB := pagestore.New(device.New(device.Memory, 512))
	par, err := BulkLoad(idxB, f, 0, Options{FPP: 0.2, ParallelProbe: true})
	if err != nil {
		t.Fatal(err)
	}
	la, _, _, err := seq.descendPath(1000, false)
	if err != nil {
		t.Fatal(err)
	}
	lb, _, _, err := par.descendPath(1000, false)
	if err != nil {
		t.Fatal(err)
	}
	al, ar, err := seq.splitByProbe(la)
	if err != nil {
		t.Fatal(err)
	}
	bl, br, err := par.splitByProbe(lb)
	if err != nil {
		t.Fatal(err)
	}
	if al.numKeys != bl.numKeys || ar.numKeys != br.numKeys {
		t.Errorf("parallel split differs: left %d/%d right %d/%d",
			al.numKeys, bl.numKeys, ar.numKeys, br.numKeys)
	}
}

func TestInsertTriggersSplitAtCapacity(t *testing.T) {
	// Sparse even keys leave odd keys free to insert as genuinely new;
	// only a new key may trigger the capacity split — a key the leaf
	// already claims absorbs in place regardless of capacity.
	keys := make([]uint64, 800)
	for i := range keys {
		keys[i] = uint64(2 * i)
	}
	f, _ := buildKeyedFile(t, keys)
	idx := pagestore.New(device.New(device.Memory, 512))
	tr, err := BulkLoad(idx, f, 0, Options{FPP: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	// Saturate one leaf's key budget by marking it full, then insert a
	// new odd key whose data page the leaf covers.
	leaf, leafPid, _, err := tr.descendPath(keys[100], false)
	if err != nil {
		t.Fatal(err)
	}
	leaf.numKeys = uint32(tr.geo.KeysPerLeaf)
	if err := tr.writeLeaf(leafPid, leaf); err != nil {
		t.Fatal(err)
	}
	leavesBefore := tr.NumLeaves()
	newKey := leaf.minKey + 1
	if err := tr.Insert(newKey, f.PageOf(leaf.minKey/2)); err != nil {
		t.Fatalf("insert at capacity: %v", err)
	}
	if tr.NumLeaves() <= leavesBefore {
		t.Error("new key into a full leaf should split it")
	}
	// A key the tree already claims absorbs in place even into a full
	// leaf: no further split.
	leavesAfter := tr.NumLeaves()
	if err := tr.Insert(newKey, f.PageOf(leaf.minKey/2)); err != nil {
		t.Fatalf("re-insert after split: %v", err)
	}
	if tr.NumLeaves() != leavesAfter {
		t.Error("re-inserting a claimed key split a leaf")
	}
	// Tree still finds pre-existing keys.
	for i := 0; i < len(keys); i += 11 {
		res, err := tr.SearchFirst(keys[i])
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Tuples) != 1 {
			t.Fatalf("key %d lost after capacity split", keys[i])
		}
	}
}

func TestDeleteStandardDrifts(t *testing.T) {
	f, _ := buildInitialFile(t, 2000)
	idx := pagestore.New(device.New(device.Memory, 4096))
	tr, err := BulkLoad(idx, f, 0, Options{FPP: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	base := tr.EffectiveFPP()
	for k := uint64(0); k < 200; k++ {
		if err := tr.Delete(k, f.PageOf(k)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.EffectiveFPP() <= base {
		t.Error("standard-filter deletes must raise effective fpp")
	}
	// Deleted keys still "found" (lossy deletes leave the bits).
	res, err := tr.SearchFirst(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 1 {
		t.Error("standard delete should not remove physical data")
	}
}

func TestDeleteCountingRemoves(t *testing.T) {
	f, _ := buildInitialFile(t, 2000)
	idx := pagestore.New(device.New(device.Memory, 4096))
	tr, err := BulkLoad(idx, f, 0, Options{FPP: 0.001, Filter: CountingFilter})
	if err != nil {
		t.Fatal(err)
	}
	key := uint64(123)
	pid := f.PageOf(key)
	res, err := tr.Search(key)
	if err != nil || len(res.Tuples) != 1 {
		t.Fatal("pre-delete search failed")
	}
	if err := tr.Delete(key, pid); err != nil {
		t.Fatal(err)
	}
	// The filter no longer claims the key for that page; candidates for
	// the key should now be empty (the tuple is still physically there,
	// but the index forgot it, which is the contract of an index delete).
	var stats ProbeStats
	pages, err := tr.candidatePages(key, &stats)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pages {
		if p == pid {
			t.Error("deleted key still a candidate on its page")
		}
	}
	// Neighbors survive.
	for _, k := range []uint64{122, 124} {
		res, err := tr.SearchFirst(k)
		if err != nil || len(res.Tuples) != 1 {
			t.Fatalf("neighbor %d lost by delete", k)
		}
	}
}

func TestCountingTreeSearches(t *testing.T) {
	f, _ := buildInitialFile(t, 3000)
	idx := pagestore.New(device.New(device.Memory, 4096))
	tr, err := BulkLoad(idx, f, 0, Options{FPP: 0.01, Filter: CountingFilter})
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 3000; k += 17 {
		res, err := tr.SearchFirst(k)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Tuples) != 1 {
			t.Fatalf("counting tree lost key %d", k)
		}
	}
	// Counting trees are larger (4 bits/position): fewer keys per leaf.
	idx2 := pagestore.New(device.New(device.Memory, 4096))
	std, err := BulkLoad(idx2, f, 0, Options{FPP: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumLeaves() <= std.NumLeaves() {
		t.Errorf("counting tree should need more leaves: %d vs %d", tr.NumLeaves(), std.NumLeaves())
	}
}
