package core

import (
	"sort"

	"bftree/internal/device"
)

// BufferedInserter implements the update-intensive mode of Section 4.2:
// "each node can maintain a list of inserted/deleted/updated keys in
// order to accumulate enough number of such operations to amortize the
// cost of updating the BF". Inserts accumulate in memory and are applied
// in key order on Flush, one leaf read/write per touched leaf instead of
// one per insert. Searches through the inserter consult the buffer, so
// buffered keys are never invisible.
//
// A BufferedInserter is a single-writer handle: its own buffer state is
// not synchronized, so use it from one goroutine (probes directly on
// the Tree may run concurrently; Flush applies each leaf group under
// the shared writer lock plus that leaf's latch, escalating to the
// exclusive lock per entry only when one actually needs a structural
// change — so a flush coexists with latched writers on other leaves).
type BufferedInserter struct {
	tree     *Tree
	capacity int
	pending  []pendingInsert
}

type pendingInsert struct {
	key uint64
	pid device.PageID
}

// NewBufferedInserter wraps the tree with an insert buffer of the given
// capacity (number of pending inserts that triggers an automatic flush).
func (t *Tree) NewBufferedInserter(capacity int) *BufferedInserter {
	if capacity < 1 {
		capacity = 1024
	}
	return &BufferedInserter{tree: t, capacity: capacity}
}

// Insert buffers one key→page insert, flushing when the buffer is full.
func (b *BufferedInserter) Insert(key uint64, pid device.PageID) error {
	b.pending = append(b.pending, pendingInsert{key: key, pid: pid})
	if len(b.pending) >= b.capacity {
		return b.Flush()
	}
	return nil
}

// Pending returns the number of buffered inserts.
func (b *BufferedInserter) Pending() int { return len(b.pending) }

// Search probes the tree and overlays any buffered inserts for the key:
// each buffered page for the key is fetched directly and its matches are
// merged into the result. Tuples the index probe already fetched (the
// key can be present on an indexed page and a buffered page at once) are
// not duplicated: the merge dedups against the probe's tuples, so a
// buffered page the probe also read contributes nothing twice.
func (b *BufferedInserter) Search(key uint64) (*Result, error) {
	res, err := b.tree.Search(key)
	if err != nil {
		return nil, err
	}
	var have map[string]int
	seen := make(map[device.PageID]bool)
	for _, p := range b.pending {
		if p.key != key || seen[p.pid] {
			continue
		}
		seen[p.pid] = true
		// The page may already have been fetched by the tree probe;
		// re-fetching keeps the code simple and only affects
		// buffered keys.
		tuples, err := b.tree.file.SearchPage(p.pid, b.tree.fieldIdx, key)
		if err != nil {
			return nil, err
		}
		res.Stats.DataPagesRead++
		if have == nil {
			have = make(map[string]int, len(res.Tuples))
			for _, tup := range res.Tuples {
				have[string(tup)]++
			}
		}
		for _, tup := range tuples {
			if have[string(tup)] > 0 {
				have[string(tup)]--
				continue
			}
			cp := make([]byte, len(tup))
			copy(cp, tup)
			res.Tuples = append(res.Tuples, cp)
		}
	}
	return res, nil
}

// Flush applies all buffered inserts. Entries are sorted by key and
// applied leaf by leaf: one descent and one leaf write per touched
// leaf. Each leaf group runs under the shared writer lock plus that
// leaf's latch — the same tier as a non-structural Insert — so a flush
// streams alongside latched writers and other flushes on disjoint
// leaves instead of excluding every writer for the whole batch. Only
// when a group's head entry actually needs structural work (a split, an
// append past the tail) does the flush escalate to the exclusive lock,
// for that one entry. On error, every entry that was not durably
// applied stays in the buffer — a failed flush loses nothing, and a
// retry picks up exactly where it stopped.
func (b *BufferedInserter) Flush() error {
	if len(b.pending) == 0 {
		return nil
	}
	t := b.tree
	batch := b.pending
	b.pending = nil
	sort.Slice(batch, func(i, j int) bool { return batch[i].key < batch[j].key })

	i := 0
	// keepRemainder restores everything from index from onward into the
	// buffer: the failing entry plus all entries behind it.
	keepRemainder := func(from int, err error) error {
		b.pending = append(b.pending, batch[from:]...)
		return err
	}
	for i < len(batch) {
		n, err := b.flushGroupLatched(batch[i:])
		if err != nil {
			return keepRemainder(i, err)
		}
		if n > 0 {
			i += n
			// Outside the shared lock: nudge the maintainer if this
			// group's published drift crossed the compaction threshold.
			t.driftNudge()
			continue
		}
		// The head entry needs the structural path: escalate to the
		// exclusive lock for exactly this entry. insertLocked
		// re-descends, so if another writer did the structural work in
		// between it lands on the in-place path.
		t.writeMu.Lock()
		err = t.insertLocked(batch[i].key, batch[i].pid)
		t.writeMu.Unlock()
		if err != nil {
			return keepRemainder(i, err)
		}
		t.driftNudge()
		i++
	}
	return nil
}

// flushGroupLatched applies the longest prefix of batch that routes to
// one leaf and absorbs in place, under the shared writer lock plus that
// leaf's latch, and reports how many entries it durably applied. Zero
// with a nil error means the head entry needs the exclusive structural
// path (its page lies outside the leaf's range, or it is a new key on a
// leaf at its Equation 5 capacity). On error nothing was applied: the
// leaf image is rewritten only after the whole group absorbed.
func (b *BufferedInserter) flushGroupLatched(batch []pendingInsert) (int, error) {
	t := b.tree
	t.writeMu.RLock()
	defer t.writeMu.RUnlock()
	// The shared lock freezes the structure, so the descent's leaf pid
	// and routing bound stay valid for the whole group; the descent
	// skips the leaf decode (descendPathPid) because the leaf image is
	// read under the latch, like insertLatched — a racing latched
	// writer may have rewritten it after the descent.
	leafPid, path, err := t.descendPathPid(batch[0].key, true)
	if err != nil {
		return 0, err
	}
	bound := routeBound(path)
	mu := t.latches.lock(leafPid)
	defer mu.Unlock()
	var stats ProbeStats
	leaf, err := t.readLeaf(leafPid, &stats)
	if err != nil {
		return 0, err
	}
	n := 0
	newKeys := uint64(0)
	for n < len(batch) {
		e := batch[n]
		if e.key > bound {
			break
		}
		if e.pid < leaf.minPid || e.pid > leaf.maxPid {
			break // append or disorder: slow path
		}
		applied, isNew, err := t.absorbIntoLeaf(leaf, e.key, e.pid)
		if err != nil {
			return 0, err
		}
		if !applied {
			break // split needed: slow path
		}
		if isNew {
			newKeys++
		}
		n++
	}
	if n == 0 {
		return 0, nil
	}
	// The group's new keys are drift charged to this leaf, in the same
	// image write that records them (the per-leaf accounting invariant).
	leaf.driftIns += uint32(newKeys)
	// The group's entries are applied only in memory until the leaf
	// write lands; count nothing before then.
	if err := t.writeLeaf(leafPid, leaf); err != nil {
		return 0, err
	}
	if newKeys > 0 {
		t.publish(func(m *treeMeta) { m.inserts += newKeys })
	}
	return n, nil
}

// routeBound returns the largest key that still routes to the leaf at
// the end of an insert-routed descent path: one below the nearest
// right-hand separator, or MaxUint64 on the rightmost spine. Insert
// routing sends a key equal to a separator to the right child (the
// separator is the right leaf's min key), so the separator itself is
// already outside this leaf — the bound must be separator-1, not the
// separator.
func routeBound(path []frame) uint64 {
	for lv := len(path) - 1; lv >= 0; lv-- {
		f := path[lv]
		if f.slot < len(f.node.keys) {
			return f.node.keys[f.slot] - 1
		}
	}
	return ^uint64(0)
}
