package core

import (
	"sort"

	"bftree/internal/device"
)

// BufferedInserter implements the update-intensive mode of Section 4.2:
// "each node can maintain a list of inserted/deleted/updated keys in
// order to accumulate enough number of such operations to amortize the
// cost of updating the BF". Inserts accumulate in memory and are applied
// in key order on Flush, one leaf read/write per touched leaf instead of
// one per insert. Searches through the inserter consult the buffer, so
// buffered keys are never invisible.
type BufferedInserter struct {
	tree     *Tree
	capacity int
	pending  []pendingInsert
}

type pendingInsert struct {
	key uint64
	pid device.PageID
}

// NewBufferedInserter wraps the tree with an insert buffer of the given
// capacity (number of pending inserts that triggers an automatic flush).
func (t *Tree) NewBufferedInserter(capacity int) *BufferedInserter {
	if capacity < 1 {
		capacity = 1024
	}
	return &BufferedInserter{tree: t, capacity: capacity}
}

// Insert buffers one key→page insert, flushing when the buffer is full.
func (b *BufferedInserter) Insert(key uint64, pid device.PageID) error {
	b.pending = append(b.pending, pendingInsert{key: key, pid: pid})
	if len(b.pending) >= b.capacity {
		return b.Flush()
	}
	return nil
}

// Pending returns the number of buffered inserts.
func (b *BufferedInserter) Pending() int { return len(b.pending) }

// Search probes the tree and overlays any buffered inserts for the key:
// buffered pages are added to the result's candidate set by fetching
// them directly.
func (b *BufferedInserter) Search(key uint64) (*Result, error) {
	res, err := b.tree.Search(key)
	if err != nil {
		return nil, err
	}
	seen := make(map[device.PageID]bool)
	for _, p := range b.pending {
		if p.key == key && !seen[p.pid] {
			seen[p.pid] = true
			// The page may already have been fetched by the tree probe;
			// re-fetching keeps the code simple and only affects
			// buffered keys.
			tuples, err := b.tree.file.SearchPage(p.pid, b.tree.fieldIdx, key)
			if err != nil {
				return nil, err
			}
			res.Stats.DataPagesRead++
			if len(res.Tuples) == 0 {
				for _, tup := range tuples {
					cp := make([]byte, len(tup))
					copy(cp, tup)
					res.Tuples = append(res.Tuples, cp)
				}
			}
		}
	}
	return res, nil
}

// Flush applies all buffered inserts. Entries are sorted by key and
// applied leaf by leaf: one descent and one leaf write per touched leaf.
// Entries that need structural changes (splits, appends past the tail)
// fall back to the tree's one-at-a-time Insert.
func (b *BufferedInserter) Flush() error {
	if len(b.pending) == 0 {
		return nil
	}
	t := b.tree
	batch := b.pending
	b.pending = nil
	sort.Slice(batch, func(i, j int) bool { return batch[i].key < batch[j].key })

	i := 0
	for i < len(batch) {
		leaf, leafPid, path, err := t.descendPath(batch[i].key, true)
		if err != nil {
			return err
		}
		// Keys up to the path's separator bound route to this leaf.
		bound := routeBound(path)
		applied := 0
		for i < len(batch) {
			e := batch[i]
			if e.key > bound {
				break
			}
			if e.pid < leaf.minPid || e.pid > leaf.maxPid {
				break // append or disorder: slow path
			}
			if uint64(leaf.numKeys)+1 > t.geo.KeysPerLeaf {
				break // split needed: slow path
			}
			isNew := !leaf.probeOne(leaf.bfIndexOf(e.pid), e.key)
			if err := leaf.addKey(e.key, e.pid); err != nil {
				return err
			}
			if e.key < leaf.minKey {
				leaf.minKey = e.key
			}
			if e.key > leaf.maxKey {
				leaf.maxKey = e.key
			}
			if isNew {
				leaf.numKeys++
				t.inserts++
			}
			applied++
			i++
		}
		if applied > 0 {
			if err := t.writeLeaf(leafPid, leaf); err != nil {
				return err
			}
			continue
		}
		// The head entry needs the structural path.
		if err := t.Insert(batch[i].key, batch[i].pid); err != nil {
			return err
		}
		i++
	}
	return nil
}

// routeBound returns the largest key that still routes to the leaf at
// the end of the descent path: the nearest right-hand separator above
// it, or MaxUint64 on the rightmost spine.
func routeBound(path []frame) uint64 {
	bound := ^uint64(0)
	for lv := len(path) - 1; lv >= 0; lv-- {
		f := path[lv]
		if f.slot < len(f.node.keys) {
			// Leftmost descent sends key <= keys[slot] into this child.
			return f.node.keys[f.slot]
		}
	}
	return bound
}
