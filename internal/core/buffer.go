package core

import (
	"sort"

	"bftree/internal/device"
)

// BufferedInserter implements the update-intensive mode of Section 4.2:
// "each node can maintain a list of inserted/deleted/updated keys in
// order to accumulate enough number of such operations to amortize the
// cost of updating the BF". Inserts accumulate in memory and are applied
// in key order on Flush, one leaf read/write per touched leaf instead of
// one per insert. Searches through the inserter consult the buffer, so
// buffered keys are never invisible.
//
// A BufferedInserter is a single-writer handle: its own buffer state is
// not synchronized, so use it from one goroutine (probes directly on
// the Tree may run concurrently; the tree-mutating part of Flush takes
// the tree's writer lock exclusively, since a batch may need structural
// changes at any entry — it excludes latched writers for its duration).
type BufferedInserter struct {
	tree     *Tree
	capacity int
	pending  []pendingInsert
}

type pendingInsert struct {
	key uint64
	pid device.PageID
}

// NewBufferedInserter wraps the tree with an insert buffer of the given
// capacity (number of pending inserts that triggers an automatic flush).
func (t *Tree) NewBufferedInserter(capacity int) *BufferedInserter {
	if capacity < 1 {
		capacity = 1024
	}
	return &BufferedInserter{tree: t, capacity: capacity}
}

// Insert buffers one key→page insert, flushing when the buffer is full.
func (b *BufferedInserter) Insert(key uint64, pid device.PageID) error {
	b.pending = append(b.pending, pendingInsert{key: key, pid: pid})
	if len(b.pending) >= b.capacity {
		return b.Flush()
	}
	return nil
}

// Pending returns the number of buffered inserts.
func (b *BufferedInserter) Pending() int { return len(b.pending) }

// Search probes the tree and overlays any buffered inserts for the key:
// each buffered page for the key is fetched directly and its matches are
// merged into the result. Tuples the index probe already fetched (the
// key can be present on an indexed page and a buffered page at once) are
// not duplicated: the merge dedups against the probe's tuples, so a
// buffered page the probe also read contributes nothing twice.
func (b *BufferedInserter) Search(key uint64) (*Result, error) {
	res, err := b.tree.Search(key)
	if err != nil {
		return nil, err
	}
	var have map[string]int
	seen := make(map[device.PageID]bool)
	for _, p := range b.pending {
		if p.key != key || seen[p.pid] {
			continue
		}
		seen[p.pid] = true
		// The page may already have been fetched by the tree probe;
		// re-fetching keeps the code simple and only affects
		// buffered keys.
		tuples, err := b.tree.file.SearchPage(p.pid, b.tree.fieldIdx, key)
		if err != nil {
			return nil, err
		}
		res.Stats.DataPagesRead++
		if have == nil {
			have = make(map[string]int, len(res.Tuples))
			for _, tup := range res.Tuples {
				have[string(tup)]++
			}
		}
		for _, tup := range tuples {
			if have[string(tup)] > 0 {
				have[string(tup)]--
				continue
			}
			cp := make([]byte, len(tup))
			copy(cp, tup)
			res.Tuples = append(res.Tuples, cp)
		}
	}
	return res, nil
}

// Flush applies all buffered inserts. Entries are sorted by key and
// applied leaf by leaf: one descent and one leaf write per touched leaf.
// Entries that need structural changes (splits, appends past the tail)
// fall back to the tree's one-at-a-time insert path. The whole batch
// runs under the exclusive writer lock — amortizing leaf writes is the
// point, so per-leaf latching would buy nothing here. On error, every
// entry that was not durably applied stays in the buffer — a failed
// flush loses nothing, and a retry picks up exactly where it stopped.
func (b *BufferedInserter) Flush() error {
	if len(b.pending) == 0 {
		return nil
	}
	t := b.tree
	batch := b.pending
	b.pending = nil
	sort.Slice(batch, func(i, j int) bool { return batch[i].key < batch[j].key })

	t.writeMu.Lock()
	defer t.writeMu.Unlock()

	i := 0
	// keepRemainder restores everything from index from onward into the
	// buffer: the failing entry plus all entries behind it.
	keepRemainder := func(from int, err error) error {
		b.pending = append(b.pending, batch[from:]...)
		return err
	}
	for i < len(batch) {
		leaf, leafPid, path, err := t.descendPath(batch[i].key, true)
		if err != nil {
			return keepRemainder(i, err)
		}
		// Keys up to the path's separator bound route to this leaf.
		bound := routeBound(path)
		groupStart := i
		newKeys := uint64(0)
		for i < len(batch) {
			e := batch[i]
			if e.key > bound {
				break
			}
			if e.pid < leaf.minPid || e.pid > leaf.maxPid {
				break // append or disorder: slow path
			}
			applied, isNew, err := t.absorbIntoLeaf(leaf, e.key, e.pid)
			if err != nil {
				return keepRemainder(groupStart, err)
			}
			if !applied {
				break // split needed: slow path
			}
			if isNew {
				newKeys++
			}
			i++
		}
		if i > groupStart {
			// The group's entries are applied only in memory until the
			// leaf write lands; count nothing before then.
			if err := t.writeLeaf(leafPid, leaf); err != nil {
				return keepRemainder(groupStart, err)
			}
			if newKeys > 0 {
				t.publish(func(m *treeMeta) { m.inserts += newKeys })
			}
			continue
		}
		// The head entry needs the structural path.
		if err := t.insertLocked(batch[i].key, batch[i].pid); err != nil {
			return keepRemainder(i, err)
		}
		i++
	}
	return nil
}

// routeBound returns the largest key that still routes to the leaf at
// the end of an insert-routed descent path: one below the nearest
// right-hand separator, or MaxUint64 on the rightmost spine. Insert
// routing sends a key equal to a separator to the right child (the
// separator is the right leaf's min key), so the separator itself is
// already outside this leaf — the bound must be separator-1, not the
// separator.
func routeBound(path []frame) uint64 {
	for lv := len(path) - 1; lv >= 0; lv-- {
		f := path[lv]
		if f.slot < len(f.node.keys) {
			return f.node.keys[f.slot] - 1
		}
	}
	return ^uint64(0)
}
