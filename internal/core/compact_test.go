package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"bftree/internal/device"
	"bftree/internal/heapfile"
	"bftree/internal/pagestore"
)

// driftFixture bulk-loads a tree over even keys 0,2,..,2(n-1) on small
// index pages (many leaves) and returns the keys; odd keys are
// guaranteed absent, so inserting them records drift deterministically.
func driftFixture(t *testing.T, n int, opts Options) ([]uint64, *Tree, *pagestore.Store, *heapfile.File) {
	t.Helper()
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(2 * i)
	}
	f, _ := buildKeyedFile(t, keys)
	idx := pagestore.New(device.New(device.Memory, 512))
	tr, err := BulkLoad(idx, f, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	return keys, tr, idx, f
}

// sumDrift folds per-leaf drift into tree-wide totals.
func sumDrift(t *testing.T, tr *Tree) (ins, del uint64) {
	t.Helper()
	drifts, err := tr.DriftByLeaf()
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range drifts {
		ins += uint64(d.Inserts)
		del += uint64(d.Deletes)
	}
	return ins, del
}

// assertDriftInvariant checks the accounting contract behind incremental
// compaction: at quiescence the per-leaf counters partition the global
// ones exactly — every published increment is charged to exactly one
// leaf, and compaction sheds exactly what it charged.
func assertDriftInvariant(t *testing.T, tr *Tree) {
	t.Helper()
	ins, del := sumDrift(t, tr)
	m := tr.loadMeta()
	if ins != m.inserts || del != m.deletes {
		t.Errorf("per-leaf drift (ins %d, del %d) != global (ins %d, del %d)",
			ins, del, m.inserts, m.deletes)
	}
}

// TestPerLeafDriftInvariant pins the core accounting: mixed inserts of
// new keys and logical deletes of present keys must leave the per-leaf
// counters summing exactly to the published global drift, spread over
// more than one leaf.
func TestPerLeafDriftInvariant(t *testing.T) {
	keys, tr, _, f := driftFixture(t, 4000, Options{FPP: 0.01})
	if tr.NumLeaves() < 4 {
		t.Fatalf("fixture too small: %d leaves", tr.NumLeaves())
	}
	// 300 new (odd) keys spread across the key space, 150 logical
	// deletes of present keys.
	for i := 0; i < 300; i++ {
		ord := (i * 13) % len(keys)
		if err := tr.Insert(keys[ord]+1, f.PageOf(uint64(ord))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 150; i++ {
		ord := (i * 277) % len(keys)
		if err := tr.Delete(keys[ord], f.PageOf(uint64(ord))); err != nil {
			t.Fatal(err)
		}
	}
	// Deletes of present keys always probe true, so the count is exact;
	// a new key can collide in a filter (design fpp) and absorb without
	// drift, so the insert count may fall a hair short of 300.
	m := tr.loadMeta()
	if m.inserts < 290 || m.inserts > 300 || m.deletes != 150 {
		t.Fatalf("global drift (ins %d, del %d), want (≈300, 150)", m.inserts, m.deletes)
	}
	assertDriftInvariant(t, tr)
	drifts, err := tr.DriftByLeaf()
	if err != nil {
		t.Fatal(err)
	}
	charged := 0
	for _, d := range drifts {
		if d.Total() > 0 {
			charged++
		}
	}
	if charged < 2 {
		t.Errorf("drift landed on %d leaves, want it spread over several", charged)
	}
}

// TestCompactLeavesShedsDrift drives the partial-rebuild path directly:
// compacting the most-drifted leaf must shed exactly its contribution
// from the global counters, keep every key findable, skip the now-stale
// pid on a second call, and leave the page economy balanced.
func TestCompactLeavesShedsDrift(t *testing.T) {
	keys, tr, idx, f := driftFixture(t, 4000, Options{FPP: 0.01})
	for i := 0; i < 200; i++ {
		ord := (i * 17) % len(keys)
		if err := tr.Insert(keys[ord]+1, f.PageOf(uint64(ord))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		ord := (i * 173) % len(keys)
		if err := tr.Delete(keys[ord], f.PageOf(uint64(ord))); err != nil {
			t.Fatal(err)
		}
	}
	drifts, err := tr.DriftByLeaf()
	if err != nil {
		t.Fatal(err)
	}
	top := drifts[0]
	for _, d := range drifts[1:] {
		if d.Total() > top.Total() {
			top = d
		}
	}
	if top.Total() == 0 {
		t.Fatal("no drifted leaf to compact")
	}

	pre := tr.loadMeta()
	n, err := tr.CompactLeaves([]device.PageID{top.Pid})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("compacted %d leaves, want 1", n)
	}
	post := tr.loadMeta()
	if post.inserts != pre.inserts-uint64(top.Inserts) ||
		post.deletes != pre.deletes-uint64(top.Deletes) {
		t.Errorf("compaction shed (ins %d, del %d), want exactly (%d, %d)",
			pre.inserts-post.inserts, pre.deletes-post.deletes, top.Inserts, top.Deletes)
	}
	if post.numKeys != pre.numKeys || post.numLeaves != pre.numLeaves {
		t.Errorf("compaction changed shape: keys %d->%d leaves %d->%d",
			pre.numKeys, post.numKeys, pre.numLeaves, post.numLeaves)
	}
	assertDriftInvariant(t, tr)
	// Every build-time key must survive the rewrite.
	for i := 0; i < len(keys); i += 97 {
		res, err := tr.SearchFirst(keys[i])
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Tuples) == 0 {
			t.Fatalf("key %d lost after CompactLeaves", keys[i])
		}
	}
	st := tr.MaintenanceStats()
	if st.LeavesCompacted != 1 {
		t.Errorf("LeavesCompacted = %d, want 1", st.LeavesCompacted)
	}
	if st.CompactionMaxStall <= 0 || st.CompactionTotalStall < st.CompactionMaxStall ||
		st.CompactionMinStall > st.CompactionMaxStall {
		t.Errorf("stall stats inconsistent: min %v max %v total %v",
			st.CompactionMinStall, st.CompactionMaxStall, st.CompactionTotalStall)
	}

	// The old pid is retired: a second compaction of it is a no-op skip.
	n, err = tr.CompactLeaves([]device.PageID{top.Pid})
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("stale pid compacted %d leaves, want 0 (skip)", n)
	}

	// Drain limbo and balance the books.
	if err := tr.Maintain(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	inLimbo := uint64(tr.MaintenanceStats().LimboPages)
	live := tr.NumNodes()
	free := uint64(idx.FreePages())
	if total := idx.Device().NumPages(); live+free+inLimbo != total {
		t.Errorf("page economy leaks: live %d + free %d + limbo %d != device %d",
			live, free, inLimbo, total)
	}
}

// TestCompactSingleLeafRoot exercises the height-1 special case: the
// lone leaf is the root, so compaction must swap the root pointer
// itself (no parent to relink) and still shed the drift.
func TestCompactSingleLeafRoot(t *testing.T) {
	keys := make([]uint64, 200)
	for i := range keys {
		keys[i] = uint64(2 * i)
	}
	f, _ := buildKeyedFile(t, keys)
	idx := pagestore.New(device.New(device.Memory, 4096))
	tr, err := BulkLoad(idx, f, 0, Options{FPP: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Height() != 1 {
		t.Fatalf("fixture should be a single-leaf tree, height %d", tr.Height())
	}
	for i := 0; i < 20; i++ {
		if err := tr.Insert(keys[i]+1, f.PageOf(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	oldRoot := tr.loadMeta().root
	n, err := tr.CompactLeaves([]device.PageID{oldRoot})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("compacted %d leaves, want 1", n)
	}
	m := tr.loadMeta()
	if m.root == oldRoot || m.firstLeaf != m.root {
		t.Errorf("root not swapped: root %d firstLeaf %d old %d", m.root, m.firstLeaf, oldRoot)
	}
	if m.inserts != 0 || m.deletes != 0 {
		t.Errorf("drift not shed: ins %d del %d", m.inserts, m.deletes)
	}
	assertDriftInvariant(t, tr)
	for _, k := range keys {
		res, err := tr.SearchFirst(k)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Tuples) == 0 {
			t.Fatalf("key %d lost compacting the root leaf", k)
		}
	}
}

// TestIncrementalMaintainConverges puts the maintainer's selection
// policy under test: with IncrementalBatch set and drift past the
// threshold, Maintain must converge below the threshold through
// partial rebuilds alone — multiple bounded passes, zero whole-tree
// Rebuilds — because the decrement rule sheds exactly the compacted
// leaves' contributions.
func TestIncrementalMaintainConverges(t *testing.T) {
	keys, tr, _, f := driftFixture(t, 4000, Options{FPP: 0.01, Maintenance: MaintenancePolicy{
		FPPThreshold:     0.05,
		IncrementalBatch: 2,
	}})
	// 280 logical deletes alone push the Section 7 additive term to
	// deletes/numKeys = 0.07; with 300 insert drift on top the estimate
	// is safely past the threshold, and one 2-leaf batch cannot shed
	// enough to converge — multiple passes are structurally required.
	for i := 0; i < 300; i++ {
		ord := (i * 13) % len(keys)
		if err := tr.Insert(keys[ord]+1, f.PageOf(uint64(ord))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 280; i++ {
		ord := (i * 277) % len(keys)
		if err := tr.Delete(keys[ord], f.PageOf(uint64(ord))); err != nil {
			t.Fatal(err)
		}
	}
	if !tr.driftNeedsCompaction() {
		t.Fatalf("fixture under threshold: fpp %g", tr.EffectiveFPP())
	}
	if err := tr.Maintain(); err != nil {
		t.Fatal(err)
	}
	if tr.driftNeedsCompaction() {
		t.Errorf("incremental maintenance did not converge: fpp %g", tr.EffectiveFPP())
	}
	st := tr.MaintenanceStats()
	if st.Compactions != 0 {
		t.Errorf("%d whole-tree rebuilds; incremental mode must not fall back here", st.Compactions)
	}
	if st.IncrementalPasses < 2 {
		t.Errorf("IncrementalPasses = %d, want ≥2 (batch 2 over several drifted leaves)", st.IncrementalPasses)
	}
	if st.LeavesCompacted < uint64(st.IncrementalPasses) {
		t.Errorf("LeavesCompacted = %d < passes %d", st.LeavesCompacted, st.IncrementalPasses)
	}
	if st.CompactionMaxStall <= 0 {
		t.Error("no compaction stall recorded")
	}
	assertDriftInvariant(t, tr)
}

// TestFullRebuildFallbackWhenDriftUnattributed pins the pathological
// path: when the estimate is over threshold but no leaf carries
// attributable drift (here: counters zeroed behind the meta's back),
// the incremental pass finds nothing and the maintainer falls back to
// the whole-tree Rebuild rather than spinning forever.
func TestFullRebuildFallbackWhenDriftUnattributed(t *testing.T) {
	keys, tr, _, f := driftFixture(t, 4000, Options{FPP: 0.01, Maintenance: MaintenancePolicy{
		FPPThreshold:     0.05,
		IncrementalBatch: 2,
	}})
	for i := 0; i < 300; i++ {
		ord := (i * 277) % len(keys)
		if err := tr.Delete(keys[ord], f.PageOf(uint64(ord))); err != nil {
			t.Fatal(err)
		}
	}
	// Wipe the per-leaf counters, simulating an index whose leaves
	// predate per-leaf accounting (or lost it to corruption).
	drifts, err := tr.DriftByLeaf()
	if err != nil {
		t.Fatal(err)
	}
	var stats ProbeStats
	for _, d := range drifts {
		leaf, err := tr.readLeaf(d.Pid, &stats)
		if err != nil {
			t.Fatal(err)
		}
		leaf.driftIns, leaf.driftDel = 0, 0
		if err := tr.writeLeaf(d.Pid, leaf); err != nil {
			t.Fatal(err)
		}
	}
	if !tr.driftNeedsCompaction() {
		t.Fatalf("fixture under threshold: fpp %g", tr.EffectiveFPP())
	}
	if err := tr.Maintain(); err != nil {
		t.Fatal(err)
	}
	st := tr.MaintenanceStats()
	if st.Compactions != 1 {
		t.Errorf("Compactions = %d, want 1 full-rebuild fallback", st.Compactions)
	}
	if tr.driftNeedsCompaction() {
		t.Errorf("fallback did not converge: fpp %g", tr.EffectiveFPP())
	}
}

// TestSplitByRebuildShedsDriftToGlobals is the regression test for the
// drift accounting at the rebuild split (the full-domain leaf forces
// splitByRebuild): the halves are re-derived exactly from the data
// pages, so the old leaf's drift must be shed from the global counters
// — not carried into halves that no longer contain it. Before the fix
// the globals kept the dead contribution forever and
// driftNeedsCompaction could never converge past such a split.
func TestSplitByRebuildShedsDriftToGlobals(t *testing.T) {
	var keys []uint64
	for i := uint64(0); i < 100; i++ {
		keys = append(keys, i)
	}
	for i := uint64(0); i < 100; i++ {
		keys = append(keys, 1<<63+i)
	}
	keys = append(keys, ^uint64(0)) // leaf spans [0, MaxUint64]
	f, _ := buildKeyedFile(t, keys)
	tr, err := BulkLoad(pagestore.New(device.New(device.Memory, 4096)), f, 0, Options{FPP: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumLeaves() != 1 {
		t.Fatalf("fixture should bulk-load one leaf, got %d", tr.NumLeaves())
	}
	// Drift the leaf: one genuinely new key, two logical deletes.
	if err := tr.Insert(150, f.PageOf(50)); err != nil {
		t.Fatal(err)
	}
	for _, k := range []uint64{40, 60} {
		if err := tr.Delete(k, f.PageOf(k)); err != nil {
			t.Fatal(err)
		}
	}
	if m := tr.loadMeta(); m.inserts != 1 || m.deletes != 2 {
		t.Fatalf("setup drift (ins %d, del %d), want (1, 2)", m.inserts, m.deletes)
	}
	// Saturate the key budget so the next insert splits; the full-domain
	// span selects the exact rebuild variant.
	leaf, leafPid, _, err := tr.descendPath(0, true)
	if err != nil {
		t.Fatal(err)
	}
	leaf.numKeys = uint32(tr.geo.KeysPerLeaf)
	if err := tr.writeLeaf(leafPid, leaf); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(151, f.PageOf(51)); err != nil {
		t.Fatal(err)
	}
	if tr.NumLeaves() != 2 {
		t.Fatalf("leaves = %d, want 2 after the split", tr.NumLeaves())
	}
	// The split shed all pre-split drift; the only drift left is the
	// triggering key 151, absorbed after the re-descend and charged to
	// its half.
	m := tr.loadMeta()
	if m.inserts != 1 || m.deletes != 0 {
		t.Errorf("post-split drift (ins %d, del %d), want (1, 0): rebuild split must shed",
			m.inserts, m.deletes)
	}
	assertDriftInvariant(t, tr)
}

// TestSplitByProbeTransfersDrift is the counterpart: a probe-based
// split carries the old filters' contents into the halves, so the
// drift contribution survives and must transfer — sum preserved across
// the halves, globals untouched.
func TestSplitByProbeTransfersDrift(t *testing.T) {
	f, _ := buildInitialFile(t, 2000)
	idx := pagestore.New(device.New(device.Memory, 512))
	tr, err := BulkLoad(idx, f, 0, Options{FPP: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	// Drift one narrow-domain leaf with logical deletes.
	leaf, leafPid, path, err := tr.descendPath(500, false)
	if err != nil {
		t.Fatal(err)
	}
	for k := leaf.minKey; k < leaf.minKey+5; k++ {
		if err := tr.Delete(k, f.PageOf(k)); err != nil {
			t.Fatal(err)
		}
	}
	preIns, preDel := tr.loadMeta().inserts, tr.loadMeta().deletes
	// Re-read: the deletes rewrote the leaf page.
	var stats ProbeStats
	leaf, err = tr.readLeaf(leafPid, &stats)
	if err != nil {
		t.Fatal(err)
	}
	if leaf.maxKey-leaf.minKey >= splitEnumLimit {
		t.Fatalf("leaf span [%d,%d] would select the rebuild split", leaf.minKey, leaf.maxKey)
	}
	if leaf.driftDel == 0 {
		t.Fatal("setup recorded no per-leaf drift")
	}
	want := LeafDrift{Inserts: leaf.driftIns, Deletes: leaf.driftDel}
	if err := tr.splitLeaf(leaf, leafPid, path); err != nil {
		t.Fatal(err)
	}
	m := tr.loadMeta()
	if m.inserts != preIns || m.deletes != preDel {
		t.Errorf("probe split changed globals (ins %d->%d, del %d->%d)",
			preIns, m.inserts, preDel, m.deletes)
	}
	ins, del := sumDrift(t, tr)
	if ins != uint64(want.Inserts) || del != uint64(want.Deletes) {
		t.Errorf("halves carry (ins %d, del %d), want the transferred (%d, %d)",
			ins, del, want.Inserts, want.Deletes)
	}
	assertDriftInvariant(t, tr)
}

// TestIncrementalCompactionRace is the satellite race test: 8 latched
// writers (new-key inserts and logical deletes) and 4 readers run
// while the auto maintainer performs incremental compaction. At
// quiescence the page economy must balance exactly and the per-leaf
// drift counters must sum to the global ones — no published increment
// lost to a concurrent partial rebuild.
func TestIncrementalCompactionRace(t *testing.T) {
	const distinct = 4000
	keys := make([]uint64, distinct)
	for i := range keys {
		keys[i] = uint64(2 * i)
	}
	f, _ := buildKeyedFile(t, keys)
	idx := pagestore.New(device.New(device.Memory, 512))
	tr, err := BulkLoad(idx, f, 0, Options{FPP: 0.01, Maintenance: MaintenancePolicy{
		Mode:             MaintenanceAuto,
		ReclaimInterval:  time.Millisecond,
		FPPThreshold:     0.04, // ~160 drifted ops re-arm it
		IncrementalBatch: 2,
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make([]error, 12)
	// 4 writers insert odd keys — genuinely new, so each run charges
	// drift; compaction rewrites the leaf from the relation, dropping
	// the phantom claims, so re-inserting keeps regenerating drift.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				ord := (i*131 + w*977) % distinct
				if err := tr.Insert(keys[ord]+1, f.PageOf(uint64(ord))); err != nil {
					errs[w] = err
					return
				}
				i++
			}
		}(w)
	}
	// 4 writers logically delete present keys — the standard-filter
	// delete always claims, so drift accrues unboundedly.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				ord := (i*193 + w*547) % distinct
				if err := tr.Delete(keys[ord], f.PageOf(uint64(ord))); err != nil {
					errs[4+w] = err
					return
				}
				i++
			}
		}(w)
	}
	// 4 readers: build-time keys stay physically present, so a rewrite
	// must never lose them.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := keys[(i*173+r*709)%distinct]
				res, err := tr.SearchFirst(k)
				if err != nil {
					errs[8+r] = err
					return
				}
				if len(res.Tuples) == 0 {
					errs[8+r] = errors.New("key vanished")
					return
				}
				i++
			}
		}(r)
	}

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st := tr.MaintenanceStats()
		if st.IncrementalPasses >= 3 && st.PagesReclaimed > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	st := tr.MaintenanceStats()
	if st.IncrementalPasses == 0 {
		t.Fatalf("maintainer never compacted incrementally in 10s: %+v", st)
	}
	if st.LeavesCompacted == 0 || st.CompactionMaxStall <= 0 {
		t.Errorf("compaction ran without stats: %+v", st)
	}

	// Quiescence: no increment lost, no page leaked.
	assertDriftInvariant(t, tr)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	inLimbo := uint64(tr.MaintenanceStats().LimboPages)
	if inLimbo != 0 {
		t.Errorf("%d pages stuck in limbo after Close on a quiescent tree", inLimbo)
	}
	live := tr.NumNodes()
	free := uint64(idx.FreePages())
	total := idx.Device().NumPages()
	if live+free+inLimbo != total {
		t.Errorf("page economy leaks: live %d + free %d + limbo %d != device %d",
			live, free, inLimbo, total)
	}
}
