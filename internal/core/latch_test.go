package core

import (
	"errors"
	"sync"
	"testing"

	"bftree/internal/device"
	"bftree/internal/heapfile"
	"bftree/internal/pagestore"
)

// TestConcurrentLatchedWritersAndReaders is the multi-writer contract
// under the race detector: 8 writer goroutines — one appender streaming
// structural changes (new leaves, capacity splits, root growth) through
// the exclusive COW path, five inserters filling disjoint leaf regions
// with new keys through the leaf-latched path (escalating to splits as
// leaves hit their Equation 5 capacity), and two deleters physically
// removing counting-filter associations under leaf latches — run against
// 8 readers. Readers must never see an error or a lost key, and after
// quiescence the page economy must balance: live + free + limbo pages
// account for the whole index device.
func TestConcurrentLatchedWritersAndReaders(t *testing.T) {
	const distinct = 6000
	// Sparse even keys leave odd keys free to insert as genuinely new
	// in-range keys through the latched path.
	keys := make([]uint64, distinct)
	for i := range keys {
		keys[i] = uint64(2 * i)
	}
	f, dataStore := buildKeyedFile(t, keys)
	// 512-byte index pages keep leaf key capacity small, so the
	// inserters push many leaves past capacity and force escalated
	// splits while other writers hold leaf latches elsewhere.
	idx := pagestore.New(device.New(device.Memory, 512))
	tr, err := BulkLoad(idx, f, 0, Options{FPP: 0.01, Filter: CountingFilter})
	if err != nil {
		t.Fatal(err)
	}
	h0, leaves0 := tr.Height(), tr.NumLeaves()

	// Ordinal partitions: [0] appender (tail), [1..5] inserters,
	// [6..7] deleters, readers probe the inserter partitions' even keys.
	part := func(w int) (lo, hi int) {
		span := distinct / 8
		return w * span, (w + 1) * span
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}

	// Writer 0: the appender — structural changes at the tail for the
	// whole run, exactly the COW path the latched writers must interleave
	// with.
	wg.Add(1)
	appended := make([]uint64, 0, 4096)
	go func() {
		defer wg.Done()
		defer close(done)
		perPage := f.TuplesPerPage()
		next := uint64(2 * distinct)
		tup := make([]byte, 64)
		for batch := 0; batch < 50; batch++ {
			b, err := heapfile.NewBuilder(dataStore, insertSchema)
			if err != nil {
				fail(err)
				return
			}
			for i := 0; i < perPage; i++ {
				insertSchema.Set(tup, 0, next+uint64(i))
				if err := b.Append(tup); err != nil {
					fail(err)
					return
				}
			}
			seg, err := b.Finish()
			if err != nil {
				fail(err)
				return
			}
			f.Extend(seg.NumPages(), seg.NumTuples())
			for i := 0; i < perPage; i++ {
				if err := tr.Insert(next+uint64(i), seg.FirstPage()); err != nil {
					fail(err)
					return
				}
				appended = append(appended, next+uint64(i))
			}
			next += uint64(perPage)
		}
	}()

	// Writers 1..5: latched inserters, each filling its own leaf region
	// with new odd keys. A probe-based split can occasionally re-shape a
	// half so that a key's true page falls just outside the covering
	// leaf's range; those inserts fail with ErrKeyRange and are skipped —
	// the test asserts on the keys that were accepted.
	inserted := make([][]uint64, 6)
	for w := 1; w <= 5; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lo, hi := part(w)
			acc := make([]uint64, 0, hi-lo)
			for i := lo; i < hi; i++ {
				odd := keys[i] + 1
				err := tr.Insert(odd, f.PageOf(uint64(i)))
				if err != nil {
					if errors.Is(err, ErrKeyRange) {
						continue
					}
					fail(err)
					return
				}
				acc = append(acc, odd)
			}
			inserted[w] = acc
		}(w)
	}

	// Writers 6..7: latched deleters, physically removing their even
	// keys' associations from the counting filters.
	for w := 6; w <= 7; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lo, hi := part(w)
			for i := lo; i < hi; i++ {
				if err := tr.Delete(keys[i], f.PageOf(uint64(i))); err != nil {
					fail(err)
					return
				}
			}
		}(w)
	}

	// Readers: the inserter partitions' even keys must stay findable
	// through every split, append, and neighboring delete.
	lo1, _ := part(1)
	_, hi5 := part(5)
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-done:
					return
				default:
				}
				ord := lo1 + (i*131+r*977)%(hi5-lo1)
				k := keys[ord]
				if i%5 == 4 {
					if _, err := tr.RangeScan(k, k+16); err != nil {
						fail(err)
						return
					}
				} else {
					res, err := tr.SearchFirst(k)
					if err != nil {
						fail(err)
						return
					}
					if len(res.Tuples) == 0 {
						t.Errorf("reader %d: key %d vanished mid-write", r, k)
						return
					}
				}
				i++
			}
		}(r)
	}

	wg.Wait()
	if firstErr != nil {
		t.Fatalf("concurrent writer/reader error: %v", firstErr)
	}

	// Structural churn really happened while latches were in play.
	if tr.NumLeaves() <= leaves0 {
		t.Errorf("no leaves added (still %d); splits/appends not exercised", leaves0)
	}
	if tr.Height() <= h0 {
		t.Logf("height stayed %d; splits happened without root growth", h0)
	}

	// Every accepted latched insert is durable: its page is a candidate.
	checked := 0
	for w := 1; w <= 5; w++ {
		lo, _ := part(w)
		for j, odd := range inserted[w] {
			if j%97 != 0 {
				continue
			}
			var stats ProbeStats
			pages, err := tr.candidatePages(odd, &stats)
			if err != nil {
				t.Fatal(err)
			}
			want := f.PageOf(uint64(lo + int(odd-keys[lo])/2))
			found := false
			for _, p := range pages {
				if p == want {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("latched insert of key %d lost: page %d not a candidate", odd, want)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Error("no latched inserts were accepted; the fast path never ran")
	}
	// Appended keys are physically present and indexed.
	for i := 0; i < len(appended); i += 113 {
		res, err := tr.SearchFirst(appended[i])
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Tuples) == 0 {
			t.Errorf("appended key %d lost", appended[i])
		}
	}

	// Quiescent page economy: two epoch flips reclaim all limbo pages,
	// and live + free + limbo accounts for the whole device — the
	// latched writers (who allocate and free nothing) must not have
	// disturbed the COW accounting.
	tr.writeMu.Lock()
	tr.reclaim()
	tr.reclaim()
	inLimbo := uint64(len(tr.limboPrev) + len(tr.limboCur))
	tr.writeMu.Unlock()
	if inLimbo != 0 {
		t.Errorf("%d retired pages stuck in limbo after quiescent flips", inLimbo)
	}
	live := tr.NumNodes()
	free := uint64(idx.FreePages())
	total := idx.Device().NumPages()
	if live+free+inLimbo != total {
		t.Errorf("page economy leaks: live %d + free %d + limbo %d != device %d",
			live, free, inLimbo, total)
	}
}

// TestLatchedInsertPublishesEveryDrift pins the CAS publish: concurrent
// latched writers incrementing the drift counter from disjoint leaves
// must not lose updates (the old single-writer publish was a plain
// load-modify-store).
func TestLatchedInsertPublishesEveryDrift(t *testing.T) {
	const distinct = 4000
	keys := make([]uint64, distinct)
	for i := range keys {
		keys[i] = uint64(2 * i)
	}
	f, _ := buildKeyedFile(t, keys)
	// The tiny fpp makes a false-positive "already present" verdict on a
	// genuinely new key (which would legitimately skip the counter)
	// vanishingly unlikely, so every insert must publish — escalated
	// splits included.
	tr, err := BulkLoad(pagestore.New(device.New(device.Memory, 4096)), f, 0, Options{FPP: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	span := distinct / workers
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w * span; i < (w+1)*span; i++ {
				if err := tr.Insert(keys[i]+1, f.PageOf(uint64(i))); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", w, err)
		}
	}
	if got := tr.loadMeta().inserts; got != uint64(distinct) {
		t.Errorf("drift inserts = %d after %d new keys from %d writers, want every one counted",
			got, distinct, workers)
	}
}
