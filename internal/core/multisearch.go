package core

import (
	"sort"

	"bftree/internal/device"
)

// MultiSearch answers a batch of point lookups in one pass: it sorts
// and dedups the keys, descends once per key through a per-batch cache
// of decoded index pages (adjacent keys share their root-to-leaf path,
// so the cache turns n descents into little more than one), probes each
// BF-leaf's filters once per key that lands on it, and fetches every
// flagged data page exactly once even when several keys want it.
//
// Accounting: IndexReads counts distinct index pages decoded for the
// batch (the shared-descent savings the batched-probe experiment
// measures); BFProbes and CandidatePages accumulate per key exactly as
// n individual Search calls would; DataPagesRead counts distinct data
// pages fetched; FalseReads counts fetched pages yielding no match for
// any batch key. Tuples are returned in page order (grouped by data
// page, not by probe key); every tuple whose indexed field equals any
// batch key appears exactly once.
//
// The whole batch runs under one reader registration, so it observes a
// single consistent snapshot.
func (t *Tree) MultiSearch(keys []uint64) (*Result, error) {
	res := &Result{}
	if len(keys) == 0 {
		return res, nil
	}
	sorted := append([]uint64(nil), keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	n := 0
	for i, k := range sorted {
		if i == 0 || k != sorted[n-1] {
			sorted[n] = k
			n++
		}
	}
	sorted = sorted[:n]
	batch := make(map[uint64]bool, n)
	for _, k := range sorted {
		batch[k] = true
	}

	m, ep := t.beginProbe()
	defer t.endProbe(ep)
	cache := &nodeCache{
		t:      t,
		nodes:  make(map[device.PageID]*internalNode),
		leaves: make(map[device.PageID]*bfLeaf),
	}
	// Phase 1: index side. Collect the union of flagged data pages.
	wanted := make(map[device.PageID]bool)
	last := t.lastDataPage()
	for _, key := range sorted {
		if err := t.multiProbeKey(m.root, key, cache, wanted, last, &res.Stats); err != nil {
			return nil, err
		}
	}
	// Phase 2: data side. Read each flagged page once, ascending (the
	// sorted access list of Algorithm 1, now shared across the batch).
	pages := make([]device.PageID, 0, len(wanted))
	for pid := range wanted {
		pages = append(pages, pid)
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	for _, pid := range pages {
		tuples, err := t.file.ReadPageTuples(pid)
		if err != nil {
			return nil, err
		}
		res.Stats.DataPagesRead++
		matched := false
		for _, tup := range tuples {
			// Bloom filters have no false negatives, so a batch key's
			// tuples always lie on pages its own probe flagged; matching
			// against the batch set equals per-key matching.
			if batch[t.file.Schema().Get(tup, t.fieldIdx)] {
				cp := make([]byte, len(tup))
				copy(cp, tup)
				res.Tuples = append(res.Tuples, cp)
				matched = true
			}
		}
		if !matched {
			res.Stats.FalseReads++
		}
	}
	return res, nil
}

// multiProbeKey runs the index part of Algorithm 1 for one key against
// the batch cache: cached descent, separator skip-forward, and the
// duplicate-following leaf walk of search, adding flagged pages to
// wanted instead of fetching them.
func (t *Tree) multiProbeKey(root device.PageID, key uint64, cache *nodeCache,
	wanted map[device.PageID]bool, last device.PageID, stats *ProbeStats) error {
	leaf, err := cache.descend(root, key, stats)
	if err != nil {
		return err
	}
	for key > leaf.maxKey && leaf.next != device.InvalidPage {
		nl, err := cache.leaf(leaf.next, stats)
		if err != nil {
			return err
		}
		if key < nl.minKey {
			return nil
		}
		leaf = nl
	}
	for {
		if key < leaf.minKey || key > leaf.maxKey {
			return nil
		}
		matches := leaf.probe(key, t.opts.ParallelProbe)
		stats.BFProbes += leaf.numBFs()
		for _, bid := range matches {
			lo, hi := leaf.pageRangeOf(bid)
			if hi > last {
				hi = last
			}
			for pid := lo; pid <= hi; pid++ {
				stats.CandidatePages++
				wanted[pid] = true
			}
		}
		if leaf.next == device.InvalidPage {
			return nil
		}
		nl, err := cache.leaf(leaf.next, stats)
		if err != nil {
			return err
		}
		if key < nl.minKey || key > nl.maxKey {
			return nil
		}
		leaf = nl
	}
}

// nodeCache memoizes decoded index pages for the lifetime of one batch.
// IndexReads is charged only on a miss, so the stat reflects distinct
// index pages touched — the quantity a buffer pool would serve.
type nodeCache struct {
	t      *Tree
	nodes  map[device.PageID]*internalNode
	leaves map[device.PageID]*bfLeaf
}

// descend is Tree.descend through the cache.
func (c *nodeCache) descend(root device.PageID, key uint64, stats *ProbeStats) (*bfLeaf, error) {
	pid := root
	for {
		if n, ok := c.nodes[pid]; ok {
			i := sort.Search(len(n.keys), func(i int) bool { return key <= n.keys[i] })
			pid = n.children[i]
			continue
		}
		if l, ok := c.leaves[pid]; ok {
			return l, nil
		}
		buf, err := c.t.store.ReadPage(pid)
		if err != nil {
			return nil, err
		}
		stats.IndexReads++
		kind, err := nodeKind(buf)
		if err != nil {
			return nil, err
		}
		if kind == nodeBFLeaf {
			l, err := decodeBFLeaf(buf)
			if err != nil {
				return nil, err
			}
			c.leaves[pid] = l
			return l, nil
		}
		n, err := decodeInternal(buf)
		if err != nil {
			return nil, err
		}
		c.nodes[pid] = n
		i := sort.Search(len(n.keys), func(i int) bool { return key <= n.keys[i] })
		pid = n.children[i]
	}
}

// leaf is Tree.readLeaf through the cache.
func (c *nodeCache) leaf(pid device.PageID, stats *ProbeStats) (*bfLeaf, error) {
	if l, ok := c.leaves[pid]; ok {
		return l, nil
	}
	l, err := c.t.readLeaf(pid, stats)
	if err != nil {
		return nil, err
	}
	c.leaves[pid] = l
	return l, nil
}
