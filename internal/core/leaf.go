package core

import (
	"encoding/binary"
	"fmt"
	"sync"

	"bftree/internal/bloom"
	"bftree/internal/device"
)

// Node kinds on disk. Internal nodes share the B+-Tree layout; BF-leaves
// are specific to this package.
const (
	nodeInternal = byte(2)
	nodeBFLeaf   = byte(3)
)

// Serialized BF-leaf layout (little-endian):
//
//	byte 0      kind (3)
//	bytes 1-2   S, the number of Bloom filters (uint16)
//	bytes 3-10  min pid
//	bytes 11-18 max pid
//	bytes 19-26 min key
//	bytes 27-34 max key
//	bytes 35-38 #keys (uint32)
//	bytes 39-46 next-leaf pid
//	byte 47     hash-function count
//	byte 48     filter kind
//	bytes 49-50 granularity (uint16, data pages per filter)
//	bytes 51-54 positions per filter (uint32)
//	bytes 55-58 drift inserts (uint32, keys absorbed since build/compaction)
//	bytes 59-62 drift deletes (uint32, associations deleted since build/compaction)
//	bytes 63+   S packed filter arrays
const leafHeaderSize = 63

// bfLeaf is the in-memory form of a BF-leaf (Section 4.1): a page range,
// a key range, the indexed-key count that guards the fpp, the next-leaf
// pointer for range scans, and S Bloom filters each covering granularity
// consecutive data pages.
//
// driftIns and driftDel are this leaf's contribution to the tree-wide
// Equation 14 drift counters (treeMeta.inserts/deletes): every published
// global increment is charged to exactly one leaf, under that leaf's
// latch, in the same page write that records the mutation itself — so
// sum(leaf drift) == global drift at quiescence, which is what lets a
// partial rebuild (CompactLeaves) decrement the global counters by
// exactly the compacted leaves' contributions.
type bfLeaf struct {
	minPid, maxPid device.PageID
	minKey, maxKey uint64
	numKeys        uint32
	next           device.PageID
	hashes         int
	kind           FilterKind
	granularity    int
	posPerBF       uint64
	driftIns       uint32
	driftDel       uint32

	std []*bloom.Filter         // kind == StandardFilter
	cnt []*bloom.CountingFilter // kind == CountingFilter
}

// numBFs returns S.
func (l *bfLeaf) numBFs() int {
	if l.kind == CountingFilter {
		return len(l.cnt)
	}
	return len(l.std)
}

// numPages returns the number of data pages the leaf covers.
func (l *bfLeaf) numPages() int {
	return int(l.maxPid-l.minPid) + 1
}

// bfIndexOf maps a data page to the filter covering it.
func (l *bfLeaf) bfIndexOf(pid device.PageID) int {
	return int(pid-l.minPid) / l.granularity
}

// pageRangeOf returns the data pages covered by filter bid.
func (l *bfLeaf) pageRangeOf(bid int) (lo, hi device.PageID) {
	lo = l.minPid + device.PageID(bid*l.granularity)
	hi = lo + device.PageID(l.granularity) - 1
	if hi > l.maxPid {
		hi = l.maxPid
	}
	return lo, hi
}

// addKey inserts key into the filter covering data page pid.
func (l *bfLeaf) addKey(key uint64, pid device.PageID) error {
	if pid < l.minPid || pid > l.maxPid {
		return fmt.Errorf("%w: pid %d outside [%d,%d]", ErrKeyRange, pid, l.minPid, l.maxPid)
	}
	bid := l.bfIndexOf(pid)
	if l.kind == CountingFilter {
		l.cnt[bid].AddUint64(key)
	} else {
		l.std[bid].AddUint64(key)
	}
	return nil
}

// removeKey deletes the key→page association from the filter covering
// pid; only counting leaves support this. It reports whether that was
// the key's last association in the leaf — no filter claims the key
// afterwards — which is when (and only when) the caller may decrement
// the leaf's distinct-key count. The check is a membership test, so a
// false positive in another filter keeps numKeys conservatively high;
// that errs on the safe side of the Equation 5 capacity check.
func (l *bfLeaf) removeKey(key uint64, pid device.PageID) (lastGone bool, err error) {
	if l.kind != CountingFilter {
		return false, fmt.Errorf("%w: standard filters cannot delete", ErrOptions)
	}
	if pid < l.minPid || pid > l.maxPid {
		return false, fmt.Errorf("%w: pid %d outside [%d,%d]", ErrKeyRange, pid, l.minPid, l.maxPid)
	}
	if err := l.cnt[l.bfIndexOf(pid)].RemoveUint64(key); err != nil {
		return false, err
	}
	for _, c := range l.cnt {
		if c.ContainsUint64(key) {
			return false, nil
		}
	}
	return true, nil
}

// probeOne tests a single filter.
func (l *bfLeaf) probeOne(bid int, key uint64) bool {
	if l.kind == CountingFilter {
		return l.cnt[bid].ContainsUint64(key)
	}
	return l.std[bid].ContainsUint64(key)
}

// probe tests every filter for key and returns the matching filter
// indices in ascending order — the candidate page groups of Algorithm 1.
// When parallel is true the probes fan out over goroutines (the Section 8
// optimization for leaves with hundreds of filters).
func (l *bfLeaf) probe(key uint64, parallel bool) []int {
	s := l.numBFs()
	if !parallel || s < 16 {
		var out []int
		for bid := 0; bid < s; bid++ {
			if l.probeOne(bid, key) {
				out = append(out, bid)
			}
		}
		return out
	}
	const workers = 8
	matched := make([]bool, s)
	var wg sync.WaitGroup
	chunk := (s + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= s {
			break
		}
		hi := lo + chunk
		if hi > s {
			hi = s
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for bid := lo; bid < hi; bid++ {
				if l.probeOne(bid, key) {
					matched[bid] = true
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	var out []int
	for bid, m := range matched {
		if m {
			out = append(out, bid)
		}
	}
	return out
}

// filterBytes returns the serialized size of one filter.
func filterBytes(kind FilterKind, positions uint64) int {
	if kind == CountingFilter {
		return int((positions + 1) / 2) // 4-bit counters
	}
	return int((positions + 7) / 8)
}

// newBFLeaf constructs an empty leaf covering [minPid, maxPid] with S
// filters of posPerBF positions each.
func newBFLeaf(minPid, maxPid device.PageID, o Options, posPerBF uint64, s int) *bfLeaf {
	l := &bfLeaf{
		minPid:      minPid,
		maxPid:      maxPid,
		minKey:      ^uint64(0),
		maxKey:      0,
		next:        device.InvalidPage,
		hashes:      o.Hashes,
		kind:        o.Filter,
		granularity: o.Granularity,
		posPerBF:    posPerBF,
	}
	if o.Filter == CountingFilter {
		l.cnt = make([]*bloom.CountingFilter, s)
		for i := range l.cnt {
			l.cnt[i] = bloom.NewCountingWithParams(bloom.Params{Bits: posPerBF, Hashes: o.Hashes})
		}
	} else {
		l.std = make([]*bloom.Filter, s)
		for i := range l.std {
			l.std[i] = bloom.NewWithParams(bloom.Params{Bits: posPerBF, Hashes: o.Hashes})
		}
	}
	return l
}

// encodeBFLeaf serializes the leaf into a page buffer.
func encodeBFLeaf(buf []byte, l *bfLeaf) error {
	s := l.numBFs()
	need := leafHeaderSize + s*filterBytes(l.kind, l.posPerBF)
	if need > len(buf) {
		return fmt.Errorf("%w: BF-leaf needs %d bytes > page %d", ErrCorrupt, need, len(buf))
	}
	if s > 0xffff {
		return fmt.Errorf("%w: %d filters exceed uint16", ErrCorrupt, s)
	}
	buf[0] = nodeBFLeaf
	binary.LittleEndian.PutUint16(buf[1:3], uint16(s))
	binary.LittleEndian.PutUint64(buf[3:11], uint64(l.minPid))
	binary.LittleEndian.PutUint64(buf[11:19], uint64(l.maxPid))
	binary.LittleEndian.PutUint64(buf[19:27], l.minKey)
	binary.LittleEndian.PutUint64(buf[27:35], l.maxKey)
	binary.LittleEndian.PutUint32(buf[35:39], l.numKeys)
	binary.LittleEndian.PutUint64(buf[39:47], uint64(l.next))
	buf[47] = byte(l.hashes)
	buf[48] = byte(l.kind)
	binary.LittleEndian.PutUint16(buf[49:51], uint16(l.granularity))
	binary.LittleEndian.PutUint32(buf[51:55], uint32(l.posPerBF))
	binary.LittleEndian.PutUint32(buf[55:59], l.driftIns)
	binary.LittleEndian.PutUint32(buf[59:63], l.driftDel)
	off := leafHeaderSize
	fb := filterBytes(l.kind, l.posPerBF)
	for i := 0; i < s; i++ {
		if l.kind == CountingFilter {
			copy(buf[off:off+fb], l.cnt[i].Raw())
		} else {
			words := l.std[i].Words()
			for j, w := range words {
				if off+j*8+8 <= off+fb {
					binary.LittleEndian.PutUint64(buf[off+j*8:], w)
				} else {
					// Trailing partial word.
					var tmp [8]byte
					binary.LittleEndian.PutUint64(tmp[:], w)
					copy(buf[off+j*8:off+fb], tmp[:])
				}
			}
		}
		off += fb
	}
	for i := off; i < len(buf); i++ {
		buf[i] = 0
	}
	return nil
}

// decodeBFLeaf deserializes a BF-leaf from a page buffer.
func decodeBFLeaf(buf []byte) (*bfLeaf, error) {
	if len(buf) < leafHeaderSize || buf[0] != nodeBFLeaf {
		return nil, fmt.Errorf("%w: not a BF-leaf", ErrCorrupt)
	}
	s := int(binary.LittleEndian.Uint16(buf[1:3]))
	l := &bfLeaf{
		minPid:      device.PageID(binary.LittleEndian.Uint64(buf[3:11])),
		maxPid:      device.PageID(binary.LittleEndian.Uint64(buf[11:19])),
		minKey:      binary.LittleEndian.Uint64(buf[19:27]),
		maxKey:      binary.LittleEndian.Uint64(buf[27:35]),
		numKeys:     binary.LittleEndian.Uint32(buf[35:39]),
		next:        device.PageID(binary.LittleEndian.Uint64(buf[39:47])),
		hashes:      int(buf[47]),
		kind:        FilterKind(buf[48]),
		granularity: int(binary.LittleEndian.Uint16(buf[49:51])),
		posPerBF:    uint64(binary.LittleEndian.Uint32(buf[51:55])),
		driftIns:    binary.LittleEndian.Uint32(buf[55:59]),
		driftDel:    binary.LittleEndian.Uint32(buf[59:63]),
	}
	if l.granularity < 1 || l.hashes < 1 {
		return nil, fmt.Errorf("%w: BF-leaf header granularity=%d hashes=%d", ErrCorrupt, l.granularity, l.hashes)
	}
	fb := filterBytes(l.kind, l.posPerBF)
	if leafHeaderSize+s*fb > len(buf) {
		return nil, fmt.Errorf("%w: %d filters of %d bytes overflow page", ErrCorrupt, s, fb)
	}
	perBFKeys := uint64(0)
	if s > 0 {
		perBFKeys = uint64(l.numKeys) / uint64(s)
	}
	off := leafHeaderSize
	switch l.kind {
	case CountingFilter:
		l.cnt = make([]*bloom.CountingFilter, s)
		for i := 0; i < s; i++ {
			raw := make([]uint8, fb)
			copy(raw, buf[off:off+fb])
			l.cnt[i] = bloom.CountingFromRaw(raw, l.posPerBF, l.hashes, perBFKeys)
			off += fb
		}
	case StandardFilter:
		l.std = make([]*bloom.Filter, s)
		words := int((l.posPerBF + 63) / 64)
		for i := 0; i < s; i++ {
			ws := make([]uint64, words)
			var tmp [8]byte
			for j := 0; j < words; j++ {
				if off+j*8+8 <= off+fb {
					ws[j] = binary.LittleEndian.Uint64(buf[off+j*8:])
				} else {
					copy(tmp[:], buf[off+j*8:off+fb])
					ws[j] = binary.LittleEndian.Uint64(tmp[:])
					tmp = [8]byte{}
				}
			}
			l.std[i] = bloom.FromWords(ws, l.posPerBF, l.hashes, perBFKeys)
			off += fb
		}
	default:
		return nil, fmt.Errorf("%w: unknown filter kind %d", ErrCorrupt, l.kind)
	}
	return l, nil
}
