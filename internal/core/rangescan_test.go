package core

import (
	"testing"
	"testing/quick"

	"bftree/internal/device"
	"bftree/internal/pagestore"
)

func TestRangeScanExact(t *testing.T) {
	fx := newFixture(t, 20000, 11)
	tr := fx.build(t, 0, Options{FPP: 0.01})
	res, err := tr.RangeScan(1000, 1999)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 1000 {
		t.Fatalf("range returned %d tuples, want 1000", len(res.Tuples))
	}
	for _, tup := range res.Tuples {
		k := fx.file.Schema().Get(tup, 0)
		if k < 1000 || k > 1999 {
			t.Fatalf("tuple %d outside range", k)
		}
	}
}

func TestRangeScanWholeFile(t *testing.T) {
	fx := newFixture(t, 5000, 11)
	tr := fx.build(t, 0, Options{FPP: 0.01})
	res, err := tr.RangeScan(0, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(res.Tuples)) != fx.file.NumTuples() {
		t.Fatalf("whole-file scan returned %d of %d", len(res.Tuples), fx.file.NumTuples())
	}
	// A whole-file scan touches every data page exactly once.
	if uint64(res.Stats.DataPagesRead) != fx.file.NumPages() {
		t.Errorf("read %d pages, file has %d", res.Stats.DataPagesRead, fx.file.NumPages())
	}
}

func TestRangeScanEmptyAndErrors(t *testing.T) {
	fx := newFixture(t, 5000, 11)
	tr := fx.build(t, 0, Options{FPP: 0.01})
	res, err := tr.RangeScan(100000, 200000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 0 {
		t.Error("out-of-domain range matched")
	}
	if _, err := tr.RangeScan(10, 5); err == nil {
		t.Error("inverted range accepted")
	}
}

func TestRangeScanBoundaryOverheadShrinksWithFPP(t *testing.T) {
	// Figure 13's mechanism: lower fpp → leaves hold fewer keys → less
	// boundary over-read.
	readPages := func(fpp float64) int {
		fx := newFixture(t, 40000, 11)
		tr := fx.build(t, 0, Options{FPP: fpp})
		res, err := tr.RangeScan(10000, 10999) // small range, boundary-dominated
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.DataPagesRead
	}
	loose := readPages(0.3)
	tight := readPages(1e-8)
	if tight > loose {
		t.Errorf("tight fpp read %d pages, loose %d; overhead should shrink", tight, loose)
	}
}

func TestRangeScanOptimizedReadsFewerPages(t *testing.T) {
	fx := newFixture(t, 40000, 11)
	tr := fx.build(t, 0, Options{FPP: 1e-6})
	plain, err := tr.RangeScan(5000, 5099)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := tr.RangeScanOptimized(5000, 5099)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Tuples) != len(opt.Tuples) {
		t.Fatalf("optimized scan changed results: %d vs %d", len(opt.Tuples), len(plain.Tuples))
	}
	if opt.Stats.DataPagesRead > plain.Stats.DataPagesRead {
		t.Errorf("optimized read %d pages, plain %d", opt.Stats.DataPagesRead, plain.Stats.DataPagesRead)
	}
}

func TestIntersect(t *testing.T) {
	// Two indexes on the same relation: PK and ATT1. The pages containing
	// pk=110 and its att1 value must intersect on pk's page.
	fx := newFixture(t, 20000, 11)
	pkTree := fx.build(t, 0, Options{FPP: 0.01})
	att1Idx := pagestore.New(device.New(device.Memory, 4096))
	att1Tree, err := BulkLoad(att1Idx, fx.file, 1, Options{FPP: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	// Find att1 of pk=110 from the data.
	res, err := pkTree.SearchFirst(110)
	if err != nil || len(res.Tuples) != 1 {
		t.Fatal("seed search failed")
	}
	att1 := fx.file.Schema().Get(res.Tuples[0], 1)
	pages, stats, err := pkTree.Intersect(att1Tree, 110, att1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.BFProbes == 0 {
		t.Error("intersection should probe filters")
	}
	target := fx.file.PageOf(110)
	found := false
	for _, p := range pages {
		if p == target {
			found = true
		}
	}
	if !found {
		t.Error("intersection lost the true page")
	}
	// The intersection is at most as large as either candidate set.
	var s1, s2 ProbeStats
	mine, _ := pkTree.candidatePages(110, &s1)
	theirs, _ := att1Tree.candidatePages(att1, &s2)
	if len(pages) > len(mine) || len(pages) > len(theirs) {
		t.Error("intersection larger than an input set")
	}
}

// Property: RangeScan returns exactly the tuples a full scan filtered to
// [lo,hi] would, for random ranges.
func TestQuickRangeScanMatchesScan(t *testing.T) {
	fx := newFixture(t, 15000, 11)
	tr := fx.build(t, 0, Options{FPP: 0.05})
	prop := func(a, b uint16) bool {
		lo, hi := uint64(a), uint64(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		res, err := tr.RangeScan(lo, hi)
		if err != nil {
			return false
		}
		want := 0
		for k := lo; k <= hi && k < 15000; k++ {
			want++
		}
		return len(res.Tuples) == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: optimized and plain range scans agree on results.
func TestQuickOptimizedAgrees(t *testing.T) {
	fx := newFixture(t, 10000, 11)
	tr := fx.build(t, 0, Options{FPP: 0.01})
	prop := func(a uint16, span uint8) bool {
		lo := uint64(a % 11000)
		hi := lo + uint64(span)
		p, err := tr.RangeScan(lo, hi)
		if err != nil {
			return false
		}
		o, err := tr.RangeScanOptimized(lo, hi)
		if err != nil {
			return false
		}
		return len(p.Tuples) == len(o.Tuples)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
