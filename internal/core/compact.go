package core

import (
	"errors"
	"sort"
	"time"

	"bftree/internal/device"
)

// This file is the incremental-compaction path: instead of paying one
// whole-tree rebuildLocked stall when Equation 14 drift crosses the
// threshold, the tree rewrites only the leaves that earned the drift.
// Each leaf carries its own drift counters (bfLeaf.driftIns/driftDel,
// charged under the leaf latch in the same page write as the mutation),
// so a partial rebuild can shed exactly the compacted leaves'
// contributions from the global counters and driftNeedsCompaction
// converges without a full reset. DESIGN.md §4 states the contract.

// defaultCompactBatch bounds the leaves rewritten per exclusive-lock
// hold when CompactLeaves runs on a tree whose policy leaves
// IncrementalBatch unset.
const defaultCompactBatch = 8

// LeafDrift is one leaf's share of the tree-wide drift accounting.
type LeafDrift struct {
	Pid     device.PageID
	Inserts uint32 // keys absorbed since the leaf was built or compacted
	Deletes uint32 // associations deleted since then
}

// Total is the leaf's drift contribution used for compaction ranking.
func (d LeafDrift) Total() uint64 { return uint64(d.Inserts) + uint64(d.Deletes) }

// DriftByLeaf walks the leaf chain of the current snapshot and returns
// every leaf's drift counters, in chain order. It runs lock-free under
// the epoch scheme, like any probe; the answer is a consistent snapshot
// of each leaf but may trail concurrent writers. The sum of the
// returned counters equals the published global drift at quiescence —
// the invariant the race tests assert.
func (t *Tree) DriftByLeaf() ([]LeafDrift, error) {
	m, ep := t.beginProbe()
	defer t.endProbe(ep)
	return t.driftWalk(m)
}

// driftWalk is DriftByLeaf's body; callers either hold the exclusive
// writeMu (maintenance ranking) or are registered as epoch readers.
func (t *Tree) driftWalk(m *treeMeta) ([]LeafDrift, error) {
	var out []LeafDrift
	var stats ProbeStats
	pid := m.firstLeaf
	for pid != device.InvalidPage {
		l, err := t.readLeaf(pid, &stats)
		if err != nil {
			return nil, err
		}
		out = append(out, LeafDrift{Pid: pid, Inserts: l.driftIns, Deletes: l.driftDel})
		pid = l.next
	}
	return out, nil
}

// CompactLeaves rebuilds the named leaves from their data pages — fresh
// pages, filters sized to current contents, zero drift — holding the
// exclusive writer lock only per bounded batch of k leaves
// (MaintenancePolicy.IncrementalBatch, or defaultCompactBatch when the
// policy leaves it 0), so latched writers run between batches instead
// of stalling for one whole-tree rebuild. Stale pids — a leaf that a
// concurrent (earlier-batch) split, rebuild, or compaction already
// retired — are skipped, not errors: the method reports how many leaves
// it actually compacted. The global drift counters are decremented by
// exactly the compacted leaves' contributions.
//
// Like Rebuild, compaction re-derives a leaf from the relation, so
// logical deletes of tuples still physically present are resurrected —
// the index is approximate in exactly the direction probes tolerate.
func (t *Tree) CompactLeaves(pids []device.PageID) (int, error) {
	k := t.opts.Maintenance.IncrementalBatch
	if k <= 0 {
		k = defaultCompactBatch
	}
	n := 0
	for start := 0; start < len(pids); start += k {
		batch := pids[start:min(start+k, len(pids))]
		t.writeMu.Lock()
		begin := time.Now()
		bn, err := t.compactBatchLocked(batch)
		n += bn
		if bn > 0 {
			t.maintStats.leavesCompacted.Add(uint64(bn))
			t.maintStats.recordCompactionStall(time.Since(begin))
		}
		t.maintRequest()
		t.writeMu.Unlock()
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// compactBatchLocked compacts one bounded batch; callers hold the
// exclusive writeMu.
func (t *Tree) compactBatchLocked(pids []device.PageID) (int, error) {
	n := 0
	for _, pid := range pids {
		ok, err := t.compactLeafLocked(pid)
		if err != nil {
			return n, err
		}
		if ok {
			n++
		}
	}
	return n, nil
}

// compactIncrementalLocked is the maintainer's selection policy: rank
// every leaf by drift contribution and compact the top k. Callers hold
// the exclusive writeMu. The ranking walk reads only leaf pages —
// O(numLeaves) cached page reads, a small fraction of the whole-file
// scan a full rebuild pays — and happens under the same lock hold as
// the batch, so the reported stall covers selection too.
func (t *Tree) compactIncrementalLocked(k int) (int, error) {
	drifts, err := t.driftWalk(t.loadMeta())
	if err != nil {
		return 0, err
	}
	sort.Slice(drifts, func(i, j int) bool { return drifts[i].Total() > drifts[j].Total() })
	if k > len(drifts) {
		k = len(drifts)
	}
	n := 0
	for _, d := range drifts[:k] {
		if d.Total() == 0 {
			break // ranked order: everything after is drift-free too
		}
		ok, err := t.compactLeafLocked(d.Pid)
		if err != nil {
			return n, err
		}
		if ok {
			n++
		}
	}
	return n, nil
}

// compactLeafLocked rebuilds one leaf in place in the tree: fresh page,
// filters sized to its current data-page contents, chain and parent
// relinked page-atomically, the old page retired into epoch limbo, and
// the old leaf's drift shed from the global counters. Callers hold the
// exclusive writeMu. It reports false (no error) for pids that are not
// currently live leaves — already compacted, split, or recycled — so
// callers can hand it a ranking computed before the lock was taken.
//
// Unlike a split, no separator changes: the parent keeps its keys and
// swaps one child pointer, so the relink is a single in-place
// page-atomic write instead of a copy-on-write path — a racing probe
// reads either the old or the new parent image, and both route to a
// leaf claiming the same keys (the old leaf stays frozen in limbo
// until every reader drains).
func (t *Tree) compactLeafLocked(pid device.PageID) (bool, error) {
	var stats ProbeStats
	leaf, err := t.readLeaf(pid, &stats)
	if err != nil {
		return false, nil // not a decodable leaf: stale pid, skip
	}
	if leaf.minKey > leaf.maxKey {
		return false, nil // empty sentinel leaf: nothing to rebuild
	}
	m := t.loadMeta()
	var path []frame
	if m.height == 1 {
		if m.root != pid {
			return false, nil
		}
	} else {
		// Liveness check: the leaf covering its own min key must still
		// be this page. Insert routing matches how separators are
		// derived (a separator is its right leaf's min key), so a live
		// leaf always descends to itself; a retired one does not.
		curPid, p, err := t.descendPathPid(leaf.minKey, true)
		if err != nil {
			return false, err
		}
		if curPid != pid {
			return false, nil // stale: the leaf was replaced since ranking
		}
		path = p
	}

	fresh, err := t.rebuildLeafContents(leaf)
	if err != nil {
		return false, err
	}
	fresh.next = leaf.next
	newPid := t.store.Allocate(1)
	if err := t.writeLeaf(newPid, fresh); err != nil {
		t.store.Free(newPid) // never linked: immediately reusable
		return false, err
	}

	// Chain relink first: after it, scans reach the new leaf while
	// descents still reach the old one — both claim the same keys, so
	// the transient is consistent — and a failure before the parent
	// relink leaves the new page unreferenced and immediately freeable.
	predPid, err := t.predecessorLeaf(path)
	if err != nil {
		t.store.Free(newPid)
		return false, err
	}
	relinked := false
	var pred *bfLeaf
	if predPid != device.InvalidPage {
		pred, err = t.readLeaf(predPid, &stats)
		if err != nil {
			t.store.Free(newPid)
			return false, err
		}
		pred.next = newPid
		if err := t.writeLeaf(predPid, pred); err != nil {
			t.store.Free(newPid)
			return false, err
		}
		relinked = true
	}

	// Parent relink (or root swap): the single structural pointer moves.
	if len(path) > 0 {
		f := path[len(path)-1]
		f.node.children[f.slot] = newPid
		buf := make([]byte, t.store.PageSize())
		perr := encodeInternal(buf, f.node)
		if perr == nil {
			perr = t.store.WritePage(f.pid, buf)
		}
		if perr != nil {
			// Undo the chain relink so the new page really is
			// unreferenced before freeing it. A failure here too leaves
			// the tree consistent (old leaf serves both paths) but leaks
			// newPid — the double-fault case the page economy accepts.
			if relinked {
				pred.next = pid
				if rerr := t.writeLeaf(predPid, pred); rerr != nil {
					return false, errors.Join(perr, rerr)
				}
			}
			t.store.Free(newPid)
			return false, perr
		}
	}

	shedIns, shedDel := uint64(leaf.driftIns), uint64(leaf.driftDel)
	t.publish(func(mm *treeMeta) {
		if len(path) == 0 {
			mm.root = newPid
		}
		if mm.firstLeaf == pid {
			mm.firstLeaf = newPid
		}
		mm.inserts -= min(mm.inserts, shedIns)
		mm.deletes -= min(mm.deletes, shedDel)
	})
	t.retire(pid)
	return true, nil
}

// rebuildLeafContents re-derives one leaf from its data pages: exactly
// the keys physically present in [minPid, maxPid] (clamped to the file's
// tail for a still-growing tail leaf) that fall inside the leaf's key
// range and the tree's partition. The page span is preserved even when
// boundary pages hold no in-range keys, so neighboring leaves' coverage
// and future in-range inserts are unaffected; the filters are rebuilt
// from scratch at the size the current contents need, which is what
// restores the design fpp.
func (t *Tree) rebuildLeafContents(leaf *bfLeaf) (*bfLeaf, error) {
	last := t.lastDataPage()
	pages := make([]pageKeys, 0, leaf.numPages())
	for pid := leaf.minPid; pid <= leaf.maxPid; pid++ {
		pk := pageKeys{pid: pid}
		if pid <= last {
			tuples, err := t.file.ReadPageTuples(pid)
			if err != nil {
				return nil, err
			}
			for _, tup := range tuples {
				k := t.file.Schema().Get(tup, t.fieldIdx)
				if k < leaf.minKey || k > leaf.maxKey || !t.part.Accept(k) {
					continue
				}
				if len(pk.keys) == 0 || pk.keys[len(pk.keys)-1] != k {
					pk.keys = append(pk.keys, k)
				}
			}
		}
		pages = append(pages, pk)
	}
	return buildLeaf(pages, t.opts, t.geo)
}
