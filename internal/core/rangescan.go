package core

import (
	"fmt"

	"bftree/internal/device"
)

// rangeEnumLimit caps the boundary-value enumeration of the optimized
// range scan; Section 7 notes the optimization is impractical for very
// high-cardinality domains, where the plain scan is used instead.
const rangeEnumLimit = 1 << 20

// RangeScan returns every tuple whose indexed field lies in [lo, hi],
// reading whole partitions: each BF-leaf overlapping the range
// contributes all of its data pages (Section 7). Middle partitions are
// entirely useful; boundary partitions incur the read overhead Figure 13
// quantifies.
func (t *Tree) RangeScan(lo, hi uint64) (*Result, error) {
	return t.rangeScan(lo, hi, false)
}

// RangeScanOptimized is the boundary optimization of Section 7: for the
// boundary partitions it enumerates the key values of the overlap and
// probes the Bloom filters, reading only the matching pages.
func (t *Tree) RangeScanOptimized(lo, hi uint64) (*Result, error) {
	return t.rangeScan(lo, hi, true)
}

func (t *Tree) rangeScan(lo, hi uint64, optimize bool) (*Result, error) {
	if lo > hi {
		return nil, fmt.Errorf("%w: range [%d,%d] inverted", ErrOptions, lo, hi)
	}
	m, ep := t.beginProbe()
	defer t.endProbe(ep)
	res := &Result{}
	leaf, _, err := t.descend(m.root, lo, &res.Stats)
	if err != nil {
		return nil, err
	}
	for {
		if leaf.minKey > hi {
			return res, nil
		}
		if leaf.maxKey >= lo && leaf.numKeys > 0 {
			boundary := leaf.minKey < lo || leaf.maxKey > hi
			if boundary && optimize && overlapSpan(leaf, lo, hi) <= rangeEnumLimit {
				if err := t.scanBoundaryOptimized(leaf, lo, hi, res); err != nil {
					return nil, err
				}
			} else {
				if err := t.scanWholeLeaf(leaf, lo, hi, res); err != nil {
					return nil, err
				}
			}
		}
		if leaf.next == device.InvalidPage {
			return res, nil
		}
		leaf, err = t.readLeaf(leaf.next, &res.Stats)
		if err != nil {
			return nil, err
		}
	}
}

// overlapSpan returns the size of the key overlap between a leaf and the
// scan range, saturating at MaxUint64 instead of wrapping when the
// overlap covers the whole key domain (which would otherwise select the
// boundary enumeration for an un-enumerable range).
func overlapSpan(leaf *bfLeaf, lo, hi uint64) uint64 {
	a, b := leaf.minKey, leaf.maxKey
	if lo > a {
		a = lo
	}
	if hi < b {
		b = hi
	}
	if b < a {
		return 0
	}
	if b-a == ^uint64(0) {
		return ^uint64(0)
	}
	return b - a + 1
}

// scanWholeLeaf reads every data page of the partition sequentially and
// keeps the tuples inside [lo, hi].
func (t *Tree) scanWholeLeaf(leaf *bfLeaf, lo, hi uint64, res *Result) error {
	last := t.lastDataPage()
	end := leaf.maxPid
	if end > last {
		end = last
	}
	for pid := leaf.minPid; pid <= end; pid++ {
		if err := t.collectPage(pid, lo, hi, res); err != nil {
			return err
		}
	}
	return nil
}

// scanBoundaryOptimized enumerates the overlap keys, probes the leaf's
// filters, and reads only the flagged pages.
func (t *Tree) scanBoundaryOptimized(leaf *bfLeaf, lo, hi uint64, res *Result) error {
	a, b := leaf.minKey, leaf.maxKey
	if lo > a {
		a = lo
	}
	if hi < b {
		b = hi
	}
	wanted := make(map[device.PageID]bool)
	for k := a; ; k++ {
		matches := leaf.probe(k, t.opts.ParallelProbe)
		res.Stats.BFProbes += leaf.numBFs()
		for _, bid := range matches {
			plo, phi := leaf.pageRangeOf(bid)
			for p := plo; p <= phi; p++ {
				wanted[p] = true
			}
		}
		if k == b {
			break
		}
	}
	last := t.lastDataPage()
	// Read the wanted pages in ascending order (the sorted access list).
	end := leaf.maxPid
	if end > last {
		end = last
	}
	for pid := leaf.minPid; pid <= end; pid++ {
		if !wanted[pid] {
			continue
		}
		if err := t.collectPage(pid, lo, hi, res); err != nil {
			return err
		}
	}
	return nil
}

// collectPage reads one data page and appends its in-range tuples.
func (t *Tree) collectPage(pid device.PageID, lo, hi uint64, res *Result) error {
	tuples, err := t.file.ReadPageTuples(pid)
	if err != nil {
		return err
	}
	res.Stats.DataPagesRead++
	matched := false
	for _, tup := range tuples {
		k := t.file.Schema().Get(tup, t.fieldIdx)
		if k >= lo && k <= hi {
			cp := make([]byte, len(tup))
			copy(cp, tup)
			res.Tuples = append(res.Tuples, cp)
			matched = true
		}
	}
	if !matched {
		res.Stats.FalseReads++
	}
	return nil
}

// Intersect probes this tree and another for the same key and returns
// the data pages both indexes consider candidates — the index
// intersection of Section 8, whose false positive probability is the
// product of the two trees' probabilities.
func (t *Tree) Intersect(other *Tree, keyThis, keyOther uint64) ([]device.PageID, *ProbeStats, error) {
	stats := &ProbeStats{}
	mine, err := t.candidatePages(keyThis, stats)
	if err != nil {
		return nil, nil, err
	}
	theirs, err := other.candidatePages(keyOther, stats)
	if err != nil {
		return nil, nil, err
	}
	inOther := make(map[device.PageID]bool, len(theirs))
	for _, p := range theirs {
		inOther[p] = true
	}
	var out []device.PageID
	for _, p := range mine {
		if inOther[p] {
			out = append(out, p)
		}
	}
	return out, stats, nil
}

// candidatePages runs the index part of Algorithm 1 only: descend, probe,
// and return candidate data pages without fetching them.
func (t *Tree) candidatePages(key uint64, stats *ProbeStats) ([]device.PageID, error) {
	m, ep := t.beginProbe()
	defer t.endProbe(ep)
	leaf, _, err := t.descend(m.root, key, stats)
	if err != nil {
		return nil, err
	}
	for key > leaf.maxKey && leaf.next != device.InvalidPage {
		nl, err := t.readLeaf(leaf.next, stats)
		if err != nil {
			return nil, err
		}
		if key < nl.minKey {
			return nil, nil
		}
		leaf = nl
	}
	var out []device.PageID
	last := t.lastDataPage()
	for {
		if key < leaf.minKey || key > leaf.maxKey {
			return out, nil
		}
		matches := leaf.probe(key, t.opts.ParallelProbe)
		stats.BFProbes += leaf.numBFs()
		for _, bid := range matches {
			lo, hi := leaf.pageRangeOf(bid)
			if hi > last {
				hi = last
			}
			for p := lo; p <= hi; p++ {
				out = append(out, p)
				stats.CandidatePages++
			}
		}
		if leaf.next == device.InvalidPage {
			return out, nil
		}
		nl, err := t.readLeaf(leaf.next, stats)
		if err != nil {
			return nil, err
		}
		if key < nl.minKey || key > nl.maxKey {
			return out, nil
		}
		leaf = nl
	}
}
