package core

import (
	"bftree/internal/device"
)

// rangeEnumLimit caps the boundary-value enumeration of the optimized
// range scan; Section 7 notes the optimization is impractical for very
// high-cardinality domains, where the plain scan is used instead.
const rangeEnumLimit = 1 << 20

// RangeScan returns every tuple whose indexed field lies in [lo, hi],
// reading whole partitions: each BF-leaf overlapping the range
// contributes all of its data pages (Section 7). Middle partitions are
// entirely useful; boundary partitions incur the read overhead Figure 13
// quantifies. It is exactly Scan drained to a slice — the streaming
// cursor is the one scan code path.
func (t *Tree) RangeScan(lo, hi uint64) (*Result, error) {
	return t.rangeScan(lo, hi, false)
}

// RangeScanOptimized is the boundary optimization of Section 7: for the
// boundary partitions it enumerates the key values of the overlap and
// probes the Bloom filters, reading only the matching pages.
func (t *Tree) RangeScanOptimized(lo, hi uint64) (*Result, error) {
	return t.rangeScan(lo, hi, true)
}

func (t *Tree) rangeScan(lo, hi uint64, optimize bool) (*Result, error) {
	c, err := t.scan(lo, hi, optimize)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	res := &Result{}
	for c.Next() {
		res.Tuples = append(res.Tuples, c.Tuple())
	}
	res.Stats = c.Stats()
	if err := c.Err(); err != nil {
		return nil, err
	}
	return res, nil
}

// overlapSpan returns the size of the key overlap between a leaf and the
// scan range, saturating at MaxUint64 instead of wrapping when the
// overlap covers the whole key domain (which would otherwise select the
// boundary enumeration for an un-enumerable range).
func overlapSpan(leaf *bfLeaf, lo, hi uint64) uint64 {
	a, b := leaf.minKey, leaf.maxKey
	if lo > a {
		a = lo
	}
	if hi < b {
		b = hi
	}
	if b < a {
		return 0
	}
	if b-a == ^uint64(0) {
		return ^uint64(0)
	}
	return b - a + 1
}

// Intersect probes this tree and another for the same key and returns
// the data pages both indexes consider candidates — the index
// intersection of Section 8, whose false positive probability is the
// product of the two trees' probabilities.
func (t *Tree) Intersect(other *Tree, keyThis, keyOther uint64) ([]device.PageID, *ProbeStats, error) {
	stats := &ProbeStats{}
	mine, err := t.candidatePages(keyThis, stats)
	if err != nil {
		return nil, nil, err
	}
	theirs, err := other.candidatePages(keyOther, stats)
	if err != nil {
		return nil, nil, err
	}
	inOther := make(map[device.PageID]bool, len(theirs))
	for _, p := range theirs {
		inOther[p] = true
	}
	var out []device.PageID
	for _, p := range mine {
		if inOther[p] {
			out = append(out, p)
		}
	}
	return out, stats, nil
}

// candidatePages runs the index part of Algorithm 1 only: descend, probe,
// and return candidate data pages without fetching them.
func (t *Tree) candidatePages(key uint64, stats *ProbeStats) ([]device.PageID, error) {
	m, ep := t.beginProbe()
	defer t.endProbe(ep)
	leaf, _, err := t.descend(m.root, key, stats)
	if err != nil {
		return nil, err
	}
	for key > leaf.maxKey && leaf.next != device.InvalidPage {
		nl, err := t.readLeaf(leaf.next, stats)
		if err != nil {
			return nil, err
		}
		if key < nl.minKey {
			return nil, nil
		}
		leaf = nl
	}
	var out []device.PageID
	last := t.lastDataPage()
	for {
		if key < leaf.minKey || key > leaf.maxKey {
			return out, nil
		}
		matches := leaf.probe(key, t.opts.ParallelProbe)
		stats.BFProbes += leaf.numBFs()
		for _, bid := range matches {
			lo, hi := leaf.pageRangeOf(bid)
			if hi > last {
				hi = last
			}
			for p := lo; p <= hi; p++ {
				out = append(out, p)
				stats.CandidatePages++
			}
		}
		if leaf.next == device.InvalidPage {
			return out, nil
		}
		nl, err := t.readLeaf(leaf.next, stats)
		if err != nil {
			return nil, err
		}
		if key < nl.minKey || key > nl.maxKey {
			return out, nil
		}
		leaf = nl
	}
}
