package core

import (
	"fmt"
	"sync"
	"testing"

	"bftree/internal/device"
	"bftree/internal/heapfile"
	"bftree/internal/pagestore"
)

// activeReaders sums the epoch registry's buckets — the number of
// probes (including open scan cursors) currently pinning a snapshot.
func activeReaders(tr *Tree) int64 {
	return tr.readers.active[0].Load() + tr.readers.active[1].Load()
}

// TestScanCursorEpochLifecycle pins the cursor's reader registration:
// held from Scan across every Next, released exactly once — whether the
// cursor is drained, closed early, or closed twice.
func TestScanCursorEpochLifecycle(t *testing.T) {
	keys := make([]uint64, 4000)
	for i := range keys {
		keys[i] = uint64(i)
	}
	f, _ := buildKeyedFile(t, keys)
	idx := pagestore.New(device.New(device.Memory, 4096))
	tr, err := BulkLoad(idx, f, 0, Options{FPP: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if n := activeReaders(tr); n != 0 {
		t.Fatalf("%d active readers before any scan", n)
	}

	// Early Close releases the registration exactly once.
	c, err := tr.Scan(0, 3999)
	if err != nil {
		t.Fatal(err)
	}
	if n := activeReaders(tr); n != 1 {
		t.Fatalf("open cursor: %d active readers, want 1", n)
	}
	for i := 0; i < 3 && c.Next(); i++ {
	}
	if n := activeReaders(tr); n != 1 {
		t.Fatalf("mid-scan: %d active readers, want 1", n)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if n := activeReaders(tr); n != 0 {
		t.Fatalf("after early Close: %d active readers, want 0", n)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
	if n := activeReaders(tr); n != 0 {
		t.Fatalf("after double Close: %d active readers, want 0 (released twice?)", n)
	}
	if c.Next() {
		t.Error("Next() = true after Close")
	}

	// Exhaustion releases without an explicit Close.
	c, err = tr.Scan(100, 200)
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	for c.Next() {
		got++
	}
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	if got != 101 {
		t.Fatalf("drained %d tuples, want 101", got)
	}
	if n := activeReaders(tr); n != 0 {
		t.Fatalf("after exhaustion: %d active readers, want 0", n)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("Close after exhaustion: %v", err)
	}
	if n := activeReaders(tr); n != 0 {
		t.Fatalf("Close after exhaustion released again: %d active readers", n)
	}

	// An inverted range fails before registering anything.
	if _, err := tr.Scan(10, 5); err == nil {
		t.Error("Scan(10,5) did not fail")
	}
	if n := activeReaders(tr); n != 0 {
		t.Fatalf("failed Scan leaked a reader registration: %d active", n)
	}
}

// TestScanEarlyClosePageEconomy asserts that a cursor abandoned
// mid-scan leaves the page economy balanced: once it is closed,
// structural writers can flip epochs, limbo drains completely, and
// live + free + limbo pages account for the whole index device.
func TestScanEarlyClosePageEconomy(t *testing.T) {
	keys := make([]uint64, 4000)
	for i := range keys {
		keys[i] = uint64(i)
	}
	f, dataStore := buildKeyedFile(t, keys)
	// Small index pages force splits (and hence COW retirements) as the
	// appends below land.
	idx := pagestore.New(device.New(device.Memory, 512))
	tr, err := BulkLoad(idx, f, 0, Options{FPP: 0.01})
	if err != nil {
		t.Fatal(err)
	}

	// Open a cursor, pull a little, abandon it. While it is open the
	// epoch it pinned cannot be retired past.
	c, err := tr.Scan(0, 3999)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5 && c.Next(); i++ {
	}

	// Structural churn while the cursor is open: append new data pages
	// and index their keys at the tail, forcing splits that retire pages
	// into limbo.
	perPage := f.TuplesPerPage()
	next := uint64(len(keys))
	tup := make([]byte, 64)
	for batch := 0; batch < 20; batch++ {
		b, err := heapfile.NewBuilder(dataStore, insertSchema)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < perPage; i++ {
			insertSchema.Set(tup, 0, next+uint64(i))
			if err := b.Append(tup); err != nil {
				t.Fatal(err)
			}
		}
		seg, err := b.Finish()
		if err != nil {
			t.Fatal(err)
		}
		f.Extend(seg.NumPages(), seg.NumTuples())
		for i := 0; i < perPage; i++ {
			if err := tr.Insert(next+uint64(i), seg.FirstPage()); err != nil {
				t.Fatal(err)
			}
		}
		next += uint64(perPage)
	}

	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if n := activeReaders(tr); n != 0 {
		t.Fatalf("after Close: %d active readers, want 0", n)
	}

	// With the cursor gone, two quiescent epoch flips must reclaim all
	// limbo, and the economy must balance.
	tr.writeMu.Lock()
	tr.reclaim()
	tr.reclaim()
	inLimbo := uint64(len(tr.limboPrev) + len(tr.limboCur))
	tr.writeMu.Unlock()
	if inLimbo != 0 {
		t.Errorf("%d retired pages stuck in limbo after the cursor closed", inLimbo)
	}
	live := tr.NumNodes()
	free := uint64(idx.FreePages())
	total := idx.Device().NumPages()
	if live+free+inLimbo != total {
		t.Errorf("page economy leaks: live %d + free %d + limbo %d != device %d",
			live, free, inLimbo, total)
	}
}

// TestScanConcurrentWithWriters runs streaming cursors — some drained,
// some abandoned mid-scan — against a structural appender, under the
// race detector in CI. Every drained scan must see exactly the
// initially loaded tuples of its range (appends land beyond hi), and at
// quiescence no reader registration or limbo page may linger.
func TestScanConcurrentWithWriters(t *testing.T) {
	const distinct = 4000
	keys := make([]uint64, distinct)
	for i := range keys {
		keys[i] = uint64(i)
	}
	f, dataStore := buildKeyedFile(t, keys)
	idx := pagestore.New(device.New(device.Memory, 512))
	tr, err := BulkLoad(idx, f, 0, Options{FPP: 0.01})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	done := make(chan struct{})

	// The appender: structural churn at the tail for the whole run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		perPage := f.TuplesPerPage()
		next := uint64(distinct)
		tup := make([]byte, 64)
		for batch := 0; batch < 30; batch++ {
			b, err := heapfile.NewBuilder(dataStore, insertSchema)
			if err != nil {
				fail(err)
				return
			}
			for i := 0; i < perPage; i++ {
				insertSchema.Set(tup, 0, next+uint64(i))
				if err := b.Append(tup); err != nil {
					fail(err)
					return
				}
			}
			seg, err := b.Finish()
			if err != nil {
				fail(err)
				return
			}
			f.Extend(seg.NumPages(), seg.NumTuples())
			for i := 0; i < perPage; i++ {
				if err := tr.Insert(next+uint64(i), seg.FirstPage()); err != nil {
					fail(err)
					return
				}
			}
			next += uint64(perPage)
		}
	}()

	// Drainers: full scans over the initial key domain; appended keys
	// all land past hi, so each drain must count exactly its range.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			lo := uint64(g * 500)
			hi := uint64(distinct - 1 - g*250)
			for {
				select {
				case <-done:
					return
				default:
				}
				c, err := tr.Scan(lo, hi)
				if err != nil {
					fail(err)
					return
				}
				got := 0
				for c.Next() {
					got++
				}
				if err := c.Err(); err != nil {
					fail(err)
					return
				}
				if want := int(hi - lo + 1); got != want {
					fail(fmt.Errorf("scan [%d,%d] saw %d tuples, want %d", lo, hi, got, want))
					return
				}
			}
		}(g)
	}

	// Abandoners: open, pull a handful, Close mid-scan — the release
	// path racing the appender's epoch flips.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				c, err := tr.Scan(0, distinct-1)
				if err != nil {
					fail(err)
					return
				}
				for i := 0; i < 10 && c.Next(); i++ {
				}
				if err := c.Err(); err != nil {
					fail(err)
					return
				}
				if err := c.Close(); err != nil {
					fail(err)
					return
				}
			}
		}()
	}

	wg.Wait()
	if firstErr != nil {
		t.Fatal(firstErr)
	}
	if n := activeReaders(tr); n != 0 {
		t.Fatalf("at quiescence: %d active readers, want 0", n)
	}
	tr.writeMu.Lock()
	tr.reclaim()
	tr.reclaim()
	inLimbo := uint64(len(tr.limboPrev) + len(tr.limboCur))
	tr.writeMu.Unlock()
	if inLimbo != 0 {
		t.Errorf("%d retired pages stuck in limbo at quiescence", inLimbo)
	}
	live := tr.NumNodes()
	free := uint64(idx.FreePages())
	total := idx.Device().NumPages()
	if live+free+inLimbo != total {
		t.Errorf("page economy leaks: live %d + free %d + limbo %d != device %d",
			live, free, inLimbo, total)
	}
}
