package core

import (
	"fmt"
	"sort"
	"sync"

	"bftree/internal/device"
)

// splitEnumLimit caps the key-domain enumeration of the probe-based
// Algorithm 2 split. Wider leaf key ranges fall back to rebuilding the
// leaf from its data pages, which is exact and bounded by the leaf's page
// count (the paper notes enumeration is impractical for very-high-
// cardinality domains, Section 7).
const splitEnumLimit = 1 << 20

// frame is one step of a root-to-leaf descent, kept for split
// propagation. node is a writer-private decoded copy, free to mutate.
type frame struct {
	pid  device.PageID
	node *internalNode
	slot int
}

// sepInsert is a separator/child pair a structural change adds to the
// parent level: the new right sibling produced by a leaf or internal
// split, or a freshly appended tail leaf.
type sepInsert struct {
	key   uint64
	child device.PageID
}

// descendLeafPid walks to the leaf pid for key without decoding the
// leaf image or recording the internal path. The latched insert path
// uses it: the leaf must be re-read under its latch anyway, so decoding
// it during the descent would be wasted work on the hot path.
func (t *Tree) descendLeafPid(key uint64, forInsert bool) (device.PageID, error) {
	pid := t.loadMeta().root
	for {
		buf, err := t.store.ReadPage(pid)
		if err != nil {
			return 0, err
		}
		kind, err := nodeKind(buf)
		if err != nil {
			return 0, err
		}
		if kind == nodeBFLeaf {
			return pid, nil
		}
		n, err := decodeInternal(buf)
		if err != nil {
			return 0, err
		}
		var i int
		if forInsert {
			i = sort.Search(len(n.keys), func(i int) bool { return key < n.keys[i] })
		} else {
			i = sort.Search(len(n.keys), func(i int) bool { return key <= n.keys[i] })
		}
		pid = n.children[i]
	}
}

// descendPath walks to the leaf for key, recording the internal path.
// Searches use leftmost routing (key <= separator goes left, because
// duplicates may trail in the left leaf); inserts use rightmost routing
// (key == separator goes right, because a separator is the right leaf's
// min key, so new tuples for it live in the right leaf's page range).
func (t *Tree) descendPath(key uint64, forInsert bool) (*bfLeaf, device.PageID, []frame, error) {
	pid, path, buf, err := t.descendPathBuf(key, forInsert)
	if err != nil {
		return nil, 0, nil, err
	}
	l, err := decodeBFLeaf(buf)
	if err != nil {
		return nil, 0, nil, err
	}
	return l, pid, path, nil
}

// descendPathPid is descendPath without the leaf decode, for callers
// that re-read the leaf under its latch anyway (flushGroupLatched) and
// need the path only for routeBound.
func (t *Tree) descendPathPid(key uint64, forInsert bool) (device.PageID, []frame, error) {
	pid, path, _, err := t.descendPathBuf(key, forInsert)
	return pid, path, err
}

// descendPathBuf is the shared body: it returns the leaf's pid, the
// recorded internal path, and the leaf's undecoded page image.
func (t *Tree) descendPathBuf(key uint64, forInsert bool) (device.PageID, []frame, []byte, error) {
	var path []frame
	pid := t.loadMeta().root
	for {
		buf, err := t.store.ReadPage(pid)
		if err != nil {
			return 0, nil, nil, err
		}
		kind, err := nodeKind(buf)
		if err != nil {
			return 0, nil, nil, err
		}
		if kind == nodeBFLeaf {
			return pid, path, buf, nil
		}
		n, err := decodeInternal(buf)
		if err != nil {
			return 0, nil, nil, err
		}
		var i int
		if forInsert {
			i = sort.Search(len(n.keys), func(i int) bool { return key < n.keys[i] })
		} else {
			i = sort.Search(len(n.keys), func(i int) bool { return key <= n.keys[i] })
		}
		path = append(path, frame{pid: pid, node: n, slot: i})
		pid = n.children[i]
	}
}

// writeLeaf serializes and writes a leaf.
func (t *Tree) writeLeaf(pid device.PageID, l *bfLeaf) error {
	if t.leafWriteFault != nil {
		if err := t.leafWriteFault(pid); err != nil {
			return err
		}
	}
	buf := make([]byte, t.store.PageSize())
	if err := encodeBFLeaf(buf, l); err != nil {
		return err
	}
	return t.store.WritePage(pid, buf)
}

// Insert implements Algorithm 3: route to the BF-leaf for key, split if
// the leaf is at its key capacity, then update the key range, the key
// count and the Bloom filter of the data page holding the tuple. The
// data page pid must fall inside the leaf's page range, or extend the
// file's tail (appends), mirroring the paper's assumption that data stays
// ordered or partitioned on the indexed attribute.
//
// Insert is safe to call concurrently with any number of probes and
// writers. A non-structural insert — the leaf absorbs the key in place —
// runs under the shared writer lock plus the target leaf's latch, so
// inserts into disjoint leaves proceed in parallel; an insert that needs
// a structural change (append past the tail, split at capacity)
// escalates to the exclusive writer lock (DESIGN.md §3).
func (t *Tree) Insert(key uint64, pid device.PageID) error {
	err := t.insert(key, pid)
	if err == nil {
		// Outside all tree locks: nudge the maintainer if this insert's
		// published drift crossed the compaction threshold.
		t.driftNudge()
	}
	return err
}

func (t *Tree) insert(key uint64, pid device.PageID) error {
	if done, err := t.insertLatched(key, pid); done {
		return err
	}
	// Escalate: re-run the full path under the exclusive lock. Another
	// writer may have done the structural work between the shared-lock
	// release and this acquisition; insertLocked re-descends, so it
	// either performs the change itself or lands on the in-place path.
	t.writeMu.Lock()
	defer t.writeMu.Unlock()
	return t.insertLocked(key, pid)
}

// absorbIntoLeaf applies one key→page association to a decoded leaf in
// place: filter update, key-range widening, and the distinct-key count.
// Shared by the latched and exclusive insert paths and by Flush, so the
// accounting cannot diverge between them. If the association is new and
// the leaf sits at its Equation 5 capacity, nothing is changed and
// applied=false: the caller must split first. An association the target
// filter already claims is always absorbed in place — it cannot grow
// the distinct-key count, so capacity is irrelevant.
//
// isNew is judged per target filter, not leaf-wide, which makes numKeys
// a conservative upper bound on the leaf's distinct keys: a key indexed
// under two page groups counts twice, and the delete side decrements
// only when the key vanishes from every filter (removeKey's
// last-association rule) — both rules err on the high side of the
// capacity check. The leaf-wide alternative (count only keys no filter
// claims) would undercount as the leaf fills: near design load the
// chance that some filter false-positively claims a genuinely new key
// approaches S×fpp, disabling the capacity guard exactly when it
// matters. A symmetric per-filter decrement on delete is no better:
// bulk load counts a key spanning two page groups once, so per-filter
// decrements would push numKeys below the true distinct load and let
// overloaded filters degrade the fpp silently. The residual cost of
// the chosen rules — insert-then-delete churn of multi-group keys can
// ratchet numKeys up — is bounded: every split recounts its halves
// exactly.
func (t *Tree) absorbIntoLeaf(leaf *bfLeaf, key uint64, pid device.PageID) (applied, isNew bool, err error) {
	isNew = !leaf.probeOne(leaf.bfIndexOf(pid), key)
	if isNew && uint64(leaf.numKeys)+1 > t.geo.KeysPerLeaf {
		return false, true, nil
	}
	if err := leaf.addKey(key, pid); err != nil {
		return false, false, err
	}
	if key < leaf.minKey {
		leaf.minKey = key
	}
	if key > leaf.maxKey {
		leaf.maxKey = key
	}
	if isNew {
		leaf.numKeys++
	}
	return true, isNew, nil
}

// insertLatched is Insert's leaf-latched fast path: descend under the
// shared writer lock (the tree structure is frozen; only in-place leaf
// rewrites may race), latch the target leaf, and absorb the key in
// place. It reports done=false when the insert needs the exclusive
// structural path — a page beyond the leaf's range (append or ordering
// violation, both diagnosed against a stable tree) or a new key landing
// on a leaf at its Equation 5 capacity (split).
func (t *Tree) insertLatched(key uint64, pid device.PageID) (done bool, err error) {
	t.writeMu.RLock()
	defer t.writeMu.RUnlock()
	leafPid, err := t.descendLeafPid(key, true)
	if err != nil {
		return true, err
	}
	mu := t.latches.lock(leafPid)
	defer mu.Unlock()
	// Re-read under the latch: another latched writer may have rewritten
	// the leaf between the descent's read and the latch acquisition. The
	// shared lock guarantees leafPid is still the leaf that covers key —
	// in-place rewrites never move a leaf's page range or its separators.
	var stats ProbeStats
	leaf, err := t.readLeaf(leafPid, &stats)
	if err != nil {
		return true, err
	}
	if pid < leaf.minPid || pid > leaf.maxPid {
		return false, nil
	}
	applied, isNew, err := t.absorbIntoLeaf(leaf, key, pid)
	if err != nil {
		return true, err
	}
	if !applied {
		return false, nil
	}
	if isNew {
		leaf.driftIns++
	}
	if err := t.writeLeaf(leafPid, leaf); err != nil {
		return true, err
	}
	if isNew {
		t.publish(func(m *treeMeta) { m.inserts++ })
	}
	return true, nil
}

// insertLocked is Insert's body; callers hold writeMu.
func (t *Tree) insertLocked(key uint64, pid device.PageID) error {
	leaf, leafPid, path, err := t.descendPath(key, true)
	if err != nil {
		return err
	}

	// Appends past the last covered page open a fresh leaf.
	if pid > leaf.maxPid {
		if leaf.next != device.InvalidPage {
			return fmt.Errorf("%w: page %d beyond leaf range [%d,%d] of a non-tail leaf",
				ErrKeyRange, pid, leaf.minPid, leaf.maxPid)
		}
		return t.appendLeaf(key, pid, leaf, leafPid, path)
	}
	if pid < leaf.minPid {
		return fmt.Errorf("%w: page %d before leaf range [%d,%d]; data must stay ordered",
			ErrKeyRange, pid, leaf.minPid, leaf.maxPid)
	}

	// Non-structural insert: the leaf keeps its pid and is rewritten in
	// place. Page writes are atomic at the store level, so a concurrent
	// probe sees either the pre- or the post-insert leaf image — both
	// consistent trees. absorbIntoLeaf refuses only a new key on a leaf
	// at its Equation 5 capacity, which is the split trigger.
	applied, isNew, err := t.absorbIntoLeaf(leaf, key, pid)
	if err != nil {
		return err
	}
	if !applied {
		if err := t.splitLeaf(leaf, leafPid, path); err != nil {
			return err
		}
		// Re-descend: the key now routes to one of the halves.
		return t.insertLocked(key, pid)
	}
	if isNew {
		leaf.driftIns++
	}
	if err := t.writeLeaf(leafPid, leaf); err != nil {
		return err
	}
	if isNew {
		t.publish(func(m *treeMeta) { m.inserts++ })
	}
	return nil
}

// Delete removes one key→page association. Counting-filter leaves
// delete physically (Section 7's deletable-filter alternative); standard
// leaves only record the delete, which degrades the effective fpp by the
// additive term of Section 7 until the leaf is rebuilt.
//
// Routing mirrors Search, not Insert: insert routing sends a key equal
// to a separator right, but duplicates of a separator key trail in the
// *left* leaf, so Delete descends leftmost and walks every chained leaf
// whose [minKey, maxKey] covers the key, removing the association from
// each leaf whose page range holds pid (post-split halves may overlap by
// one page group, so more than one leaf can claim it). The drift counter
// moves only when a covering filter actually claimed the association;
// a counting-filter delete that finds none returns ErrNotIndexed.
//
// Delete is always non-structural: it runs under the shared writer lock
// with per-leaf latches, in parallel with inserts and deletes on other
// leaves.
func (t *Tree) Delete(key uint64, pid device.PageID) error {
	err := t.delete(key, pid)
	if err == nil {
		// Outside all tree locks: nudge the maintainer if this delete's
		// published drift crossed the compaction threshold.
		t.driftNudge()
	}
	return err
}

func (t *Tree) delete(key uint64, pid device.PageID) error {
	t.writeMu.RLock()
	defer t.writeMu.RUnlock()
	var stats ProbeStats
	leaf, leafPid, err := t.descend(t.loadMeta().root, key, &stats)
	if err != nil {
		return err
	}
	// Leftmost descent can land one leaf early when key equals a
	// separator; skip forward while the leaf's range is entirely below.
	for key > leaf.maxKey && leaf.next != device.InvalidPage {
		nextPid := leaf.next
		nl, err := t.readLeaf(nextPid, &stats)
		if err != nil {
			return err
		}
		if key < nl.minKey {
			break
		}
		leaf, leafPid = nl, nextPid
	}
	counting := t.opts.Filter == CountingFilter
	removed := false
	for key >= leaf.minKey && key <= leaf.maxKey {
		if pid >= leaf.minPid && pid <= leaf.maxPid {
			if counting {
				// Only the first successful removal carries the drift
				// charge: one published global decrement is attributed to
				// exactly one leaf (the per-leaf accounting invariant).
				r, err := t.deleteLatched(key, pid, leafPid, !removed)
				if err != nil {
					return err
				}
				removed = removed || r
			} else if !removed && leaf.probeOne(leaf.bfIndexOf(pid), key) {
				// Standard filters cannot clear bits; the association is
				// claimed, so the logical delete counts toward drift —
				// charged to this first claiming leaf, under its latch,
				// so the per-leaf counters stay in sync with the global
				// ones a partial rebuild will decrement.
				if err := t.chargeDeleteLatched(leafPid); err != nil {
					return err
				}
				removed = true
			}
		}
		if leaf.next == device.InvalidPage {
			break
		}
		nextPid := leaf.next
		nl, err := t.readLeaf(nextPid, &stats)
		if err != nil {
			return err
		}
		leaf, leafPid = nl, nextPid
	}
	if !removed {
		if counting {
			return fmt.Errorf("%w: key %d on page %d", ErrNotIndexed, key, pid)
		}
		// A logical delete of an unindexed association records nothing:
		// counting it would overstate the Section 7 drift term.
		return nil
	}
	t.publish(func(m *treeMeta) { m.deletes++ })
	return nil
}

// deleteLatched removes the key→page association from the leaf at
// leafPid under its latch, re-reading the leaf image first (a racing
// latched writer may have rewritten it since the caller's read) and
// re-checking coverage. It reports whether an association was removed.
// The leaf's distinct-key count drops only when removeKey reports the
// key's last association gone — a key still claimed on other pages of
// the leaf keeps its slot in the Equation 5 capacity check. With
// chargeDrift set, a successful removal also records one unit of delete
// drift on the leaf, matching the single global decrement the caller
// publishes.
func (t *Tree) deleteLatched(key uint64, pid device.PageID, leafPid device.PageID, chargeDrift bool) (bool, error) {
	mu := t.latches.lock(leafPid)
	defer mu.Unlock()
	var stats ProbeStats
	leaf, err := t.readLeaf(leafPid, &stats)
	if err != nil {
		return false, err
	}
	if key < leaf.minKey || key > leaf.maxKey || pid < leaf.minPid || pid > leaf.maxPid {
		return false, nil
	}
	if !leaf.probeOne(leaf.bfIndexOf(pid), key) {
		return false, nil // the filter never claimed this association
	}
	lastGone, err := leaf.removeKey(key, pid)
	if err != nil {
		return false, err
	}
	if lastGone && leaf.numKeys > 0 {
		leaf.numKeys--
	}
	if chargeDrift {
		leaf.driftDel++
	}
	if err := t.writeLeaf(leafPid, leaf); err != nil {
		return false, err
	}
	return true, nil
}

// chargeDeleteLatched records one unit of delete drift on the leaf at
// leafPid — the standard-filter logical-delete counterpart of
// deleteLatched's chargeDrift. Standard filters cannot clear bits, so
// the leaf's content is untouched; only the drift counter moves, under
// the leaf's latch and re-read like any latched rewrite, so no racing
// writer's increment is lost. A claim observed by the caller cannot
// vanish before the latch is held: standard filters never clear bits
// and compaction needs the exclusive lock the caller's RLock excludes.
func (t *Tree) chargeDeleteLatched(leafPid device.PageID) error {
	mu := t.latches.lock(leafPid)
	defer mu.Unlock()
	var stats ProbeStats
	leaf, err := t.readLeaf(leafPid, &stats)
	if err != nil {
		return err
	}
	leaf.driftDel++
	return t.writeLeaf(leafPid, leaf)
}

// appendLeaf grows the tree at its right edge: a new leaf covering the
// page range starting at pid, pre-sized to the maximum filter count so
// later appends land in it without resizing. The new leaf goes to a
// freshly allocated page; the old tail keeps its pid and only has its
// chain pointer updated (a page-atomic write), so the sole structural
// edit — inserting the new separator and child — is done copy-on-write
// up the path and published as one new snapshot.
func (t *Tree) appendLeaf(key uint64, pid device.PageID, lastLeaf *bfLeaf, lastPid device.PageID, path []frame) error {
	maxS := maxFiltersPerLeaf(t.geo)
	posPerBF := t.geo.positionsFor(maxS, t.opts.Filter)
	span := device.PageID(maxS*t.opts.Granularity) - 1
	o := t.opts
	o.Hashes = hashesFor(t.opts.Hashes, posPerBF, t.geo.KeysPerLeaf, maxS)
	nl := newBFLeaf(pid, pid+span, o, posPerBF, maxS)
	if err := nl.addKey(key, pid); err != nil {
		return err
	}
	nl.minKey = key
	nl.maxKey = key
	nl.numKeys = 1
	nl.driftIns = 1 // the appended key is post-build drift, charged here
	newPid := t.store.Allocate(1)
	nl.next = lastLeaf.next // InvalidPage: this is the new tail
	if err := t.writeLeaf(newPid, nl); err != nil {
		t.store.Free(newPid) // never linked: immediately reusable
		return err
	}
	newRoot, added, grew, fresh, retired, err := t.cowPath(path, lastPid, &sepInsert{key: key, child: newPid})
	if err != nil {
		t.store.Free(newPid)
		return err
	}
	// Chain the old tail to the new leaf, now that nothing can fail and
	// leave a linked-but-unindexed tail behind. Probes racing this see
	// the tail either without the appended leaf (the pre-insert
	// snapshot) or with it fully written — both consistent.
	lastLeaf.next = newPid
	if err := t.writeLeaf(lastPid, lastLeaf); err != nil {
		// The snapshot was never published, so every page cowPath wrote
		// (including a grown root) is unreachable: free it all now, or
		// the live + free + limbo page economy leaks.
		t.store.Free(newPid)
		t.store.Free(fresh...)
		return err
	}
	t.publish(func(m *treeMeta) {
		m.root = newRoot
		m.height += grew
		m.numLeaves++
		m.numNodes += 1 + added
		m.numKeys++
		m.inserts++
	})
	t.retire(retired...)
	t.maintRequest()
	return nil
}

// splitLeaf implements Algorithm 2: divide the leaf's key range at its
// midpoint, discover each half's page range by probing the old filters
// for every key in the domain (parallelized across workers when the
// option is set), and build two fresh leaves from the probe results.
// False positives of the old filters carry into the new ones, which is
// exactly the accuracy contract of the paper. Leaves whose key span
// exceeds splitEnumLimit are rebuilt exactly from their data pages
// instead.
//
// The split is copy-on-write: both halves and every internal node on
// the descent path are written to freshly allocated pages, then the new
// root is published as one snapshot. The pre-split leaf and the old
// path stay frozen until every probe that could still reach them has
// drained (the epoch grace period of meta.go), after which their pages
// return to the store's free list.
func (t *Tree) splitLeaf(leaf *bfLeaf, leafPid device.PageID, path []frame) error {
	var left, right *bfLeaf
	var err error
	// The natural span check maxKey-minKey+1 wraps to zero for a leaf
	// covering the whole uint64 domain, which would select enumeration
	// with span 0; the minus-one form is overflow-safe and still sends
	// wide leaves to the exact rebuild.
	exact := leaf.maxKey-leaf.minKey >= splitEnumLimit
	if exact {
		left, right, err = t.splitByRebuild(leaf)
	} else {
		left, right, err = t.splitByProbe(leaf)
	}
	if err != nil {
		return err
	}
	// Drift accounting across the split. A probe-based split carries the
	// old filters' state (false positives and all) into the halves, so
	// the leaf's drift contribution survives and is transferred to them —
	// the exact split point of each unit is unknowable, so it is divided,
	// preserving the sum. An exact rebuild re-derives the halves from the
	// data pages: the absorbed inserts become build-time content and the
	// logical deletes are resurrected, so the old leaf's contribution is
	// shed from the global counters instead — the same decrement rule as
	// incremental compaction (CompactLeaves), of which this is the
	// one-leaf special case.
	var shedIns, shedDel uint64
	if exact {
		shedIns, shedDel = uint64(leaf.driftIns), uint64(leaf.driftDel)
	} else {
		left.driftIns = leaf.driftIns / 2
		right.driftIns = leaf.driftIns - left.driftIns
		left.driftDel = leaf.driftDel / 2
		right.driftDel = leaf.driftDel - left.driftDel
	}

	leftPid := t.store.Allocate(1)
	rightPid := t.store.Allocate(1)
	right.next = leaf.next
	left.next = rightPid
	if err := t.writeLeaf(leftPid, left); err != nil {
		t.store.Free(leftPid, rightPid) // never linked: immediately reusable
		return err
	}
	if err := t.writeLeaf(rightPid, right); err != nil {
		t.store.Free(leftPid, rightPid)
		return err
	}
	// Locate the predecessor leaf before cowPath mutates the recorded
	// path nodes (separator insert, internal splits); the relink itself
	// happens after the last fallible step below.
	predPid, err := t.predecessorLeaf(path)
	if err != nil {
		t.store.Free(leftPid, rightPid)
		return err
	}
	newRoot, added, grew, fresh, retired, err := t.cowPath(path, leftPid, &sepInsert{key: right.minKey, child: rightPid})
	if err != nil {
		t.store.Free(leftPid, rightPid)
		return err
	}
	// Relink the predecessor's chain pointer (page-atomic) so
	// current-snapshot range scans reach the halves; running it last
	// means a failed split never leaks linked pages. A probe that
	// already followed the old pointer keeps traversing the frozen
	// pre-split leaf, which covers the same keys and pages and answers
	// identically. On failure the unpublished cowPath pages are freed
	// along with the halves — same page-economy rule as appendLeaf.
	if predPid != device.InvalidPage {
		var stats ProbeStats
		pred, err := t.readLeaf(predPid, &stats)
		if err != nil {
			t.store.Free(leftPid, rightPid)
			t.store.Free(fresh...)
			return err
		}
		pred.next = leftPid
		if err := t.writeLeaf(predPid, pred); err != nil {
			t.store.Free(leftPid, rightPid)
			t.store.Free(fresh...)
			return err
		}
	}
	t.publish(func(m *treeMeta) {
		m.root = newRoot
		m.height += grew
		m.numLeaves++
		m.numNodes += 1 + added
		if m.firstLeaf == leafPid {
			m.firstLeaf = leftPid
		}
		m.inserts -= min(m.inserts, shedIns)
		m.deletes -= min(m.deletes, shedDel)
	})
	t.retire(leafPid)
	t.retire(retired...)
	t.maintRequest()
	return nil
}

// predecessorLeaf returns the pid of the leaf chained immediately
// before the leaf at the bottom of path, or InvalidPage when that leaf
// is the leftmost: the rightmost leaf under the nearest left-sibling
// pointer along the path.
func (t *Tree) predecessorLeaf(path []frame) (device.PageID, error) {
	for lv := len(path) - 1; lv >= 0; lv-- {
		f := path[lv]
		if f.slot == 0 {
			continue
		}
		pid := f.node.children[f.slot-1]
		for {
			buf, err := t.store.ReadPage(pid)
			if err != nil {
				return device.InvalidPage, err
			}
			kind, err := nodeKind(buf)
			if err != nil {
				return device.InvalidPage, err
			}
			if kind == nodeBFLeaf {
				return pid, nil
			}
			n, err := decodeInternal(buf)
			if err != nil {
				return device.InvalidPage, err
			}
			pid = n.children[len(n.children)-1]
		}
	}
	return device.InvalidPage, nil
}

// keyPages maps a surviving key to the page groups it matched.
type keyPages struct {
	key  uint64
	bids []int
}

// splitByProbe enumerates [minKey, maxKey], probing the old leaf for
// every key (Algorithm 2 lines 7-17), then packs the halves.
func (t *Tree) splitByProbe(leaf *bfLeaf) (*bfLeaf, *bfLeaf, error) {
	span := leaf.maxKey - leaf.minKey + 1
	results := make([][]int, span)
	probeRange := func(lo, hi uint64) {
		for k := lo; k < hi; k++ {
			m := leaf.probe(leaf.minKey+k, false)
			if len(m) > 0 {
				results[k] = m
			}
		}
	}
	if t.opts.ParallelProbe && span >= 1024 {
		const workers = 8
		var wg sync.WaitGroup
		chunk := (span + workers - 1) / workers
		for w := uint64(0); w < workers; w++ {
			lo := w * chunk
			if lo >= span {
				break
			}
			hi := lo + chunk
			if hi > span {
				hi = span
			}
			wg.Add(1)
			go func(lo, hi uint64) {
				defer wg.Done()
				probeRange(lo, hi)
			}(lo, hi)
		}
		wg.Wait()
	} else {
		probeRange(0, span)
	}

	midKey := leaf.minKey + (leaf.maxKey-leaf.minKey)/2
	var lowKeys, highKeys []keyPages
	for off, bids := range results {
		if bids == nil {
			continue
		}
		k := leaf.minKey + uint64(off)
		if k <= midKey {
			lowKeys = append(lowKeys, keyPages{key: k, bids: bids})
		} else {
			highKeys = append(highKeys, keyPages{key: k, bids: bids})
		}
	}
	return t.packHalves(leaf, lowKeys, highKeys)
}

// splitByRebuild reads the leaf's data pages and rebuilds both halves
// exactly. Used when the key domain is too wide to enumerate.
func (t *Tree) splitByRebuild(leaf *bfLeaf) (*bfLeaf, *bfLeaf, error) {
	midKey := leaf.minKey + (leaf.maxKey-leaf.minKey)/2
	last := t.lastDataPage()
	hi := leaf.maxPid
	if hi > last {
		hi = last
	}
	var lowKeys, highKeys []keyPages
	seenLow := make(map[uint64]int)  // key → index in lowKeys
	seenHigh := make(map[uint64]int) // key → index in highKeys
	for pid := leaf.minPid; pid <= hi; pid++ {
		tuples, err := t.file.ReadPageTuples(pid)
		if err != nil {
			return nil, nil, err
		}
		bid := leaf.bfIndexOf(pid)
		for _, tup := range tuples {
			k := t.file.Schema().Get(tup, t.fieldIdx)
			if k < leaf.minKey || k > leaf.maxKey {
				continue
			}
			var seen map[uint64]int
			var list *[]keyPages
			if k <= midKey {
				seen, list = seenLow, &lowKeys
			} else {
				seen, list = seenHigh, &highKeys
			}
			i, ok := seen[k]
			if !ok {
				*list = append(*list, keyPages{key: k})
				i = len(*list) - 1
				seen[k] = i
			}
			kp := &(*list)[i]
			if len(kp.bids) == 0 || kp.bids[len(kp.bids)-1] != bid {
				kp.bids = append(kp.bids, bid)
			}
		}
	}
	return t.packHalves(leaf, lowKeys, highKeys)
}

// packHalves builds the two post-split leaves from per-key page-group
// assignments (Algorithm 2 lines 18-29). The left half covers
// [leaf.minPid, max page of low keys]; the right half covers [min page of
// high keys, leaf.maxPid]; with a key straddling the boundary the two
// ranges may overlap by one page group, as in the paper.
func (t *Tree) packHalves(leaf *bfLeaf, lowKeys, highKeys []keyPages) (*bfLeaf, *bfLeaf, error) {
	if len(lowKeys) == 0 || len(highKeys) == 0 {
		return nil, nil, fmt.Errorf("%w: cannot split leaf [%d,%d]: one half is empty",
			ErrOptions, leaf.minKey, leaf.maxKey)
	}
	leftMax := 0
	for _, kp := range lowKeys {
		if b := kp.bids[len(kp.bids)-1]; b > leftMax {
			leftMax = b
		}
	}
	rightMin := leaf.numBFs() - 1
	for _, kp := range highKeys {
		if b := kp.bids[0]; b < rightMin {
			rightMin = b
		}
	}
	g := device.PageID(leaf.granularity)
	leftLo := leaf.minPid
	leftHi := leaf.minPid + device.PageID(leftMax+1)*g - 1
	if leftHi > leaf.maxPid {
		leftHi = leaf.maxPid
	}
	rightLo := leaf.minPid + device.PageID(rightMin)*g
	rightHi := leaf.maxPid

	build := func(lo, hi device.PageID, keys []keyPages) (*bfLeaf, error) {
		pages := int(hi-lo) + 1
		g, s := leafShape(pages, t.opts.Granularity, maxFiltersPerLeaf(t.geo))
		o := t.opts
		o.Granularity = g
		posPerBF := t.geo.positionsFor(s, t.opts.Filter)
		o.Hashes = hashesFor(t.opts.Hashes, posPerBF, t.geo.KeysPerLeaf, s)
		nl := newBFLeaf(lo, hi, o, posPerBF, s)
		for _, kp := range keys {
			for _, oldBid := range kp.bids {
				plo, phi := leaf.pageRangeOf(oldBid)
				if plo < lo {
					plo = lo
				}
				if phi > hi {
					phi = hi
				}
				for p := plo; p <= phi; p++ {
					if err := nl.addKey(kp.key, p); err != nil {
						return nil, err
					}
				}
			}
			if kp.key < nl.minKey {
				nl.minKey = kp.key
			}
			if kp.key > nl.maxKey {
				nl.maxKey = kp.key
			}
			nl.numKeys++
		}
		return nl, nil
	}
	left, err := build(leftLo, leftHi, lowKeys)
	if err != nil {
		return nil, nil, err
	}
	right, err := build(rightLo, rightHi, highKeys)
	if err != nil {
		return nil, nil, err
	}
	return left, right, nil
}

// cowPath rewrites the recorded descent path copy-on-write, bottom-up:
// at the deepest frame the child at the taken slot is replaced by
// newChild and (sep.key, sep.child) is inserted to its right; above, the
// replacement propagates. Every touched internal node is written to a
// freshly allocated page; overfull nodes split into two fresh pages; if
// a separator reaches past the top frame, a new root is written. The
// function returns the new root pid, the net number of internal pages
// added (splits and root growth), the height delta (0 or 1), the pages
// it allocated (all unreachable until the caller publishes — the caller
// must Free them if a later step fails before publication, or the page
// economy leaks), and the old path pages to retire — which the caller
// hands to retire() only after publishing the new snapshot, so an error
// mid-way never poisons the free list with reachable pages.
func (t *Tree) cowPath(path []frame, newChild device.PageID, sep *sepInsert) (newRoot device.PageID, added uint64, grew int, fresh, retired []device.PageID, err error) {
	buf := make([]byte, t.store.PageSize())
	capacity := internalCapacity(t.store.PageSize())
	// Pages allocated here are unreachable until the caller publishes;
	// on error they go straight back to the free list.
	var allocated []device.PageID
	fail := func(err error) (device.PageID, uint64, int, []device.PageID, []device.PageID, error) {
		t.store.Free(allocated...)
		return 0, 0, 0, nil, nil, err
	}
	writeNode := func(n *internalNode) (device.PageID, error) {
		pid := t.store.Allocate(1)
		allocated = append(allocated, pid)
		if err := encodeInternal(buf, n); err != nil {
			return 0, err
		}
		if err := t.store.WritePage(pid, buf); err != nil {
			return 0, err
		}
		return pid, nil
	}
	for level := len(path) - 1; level >= 0; level-- {
		f := path[level]
		n := f.node
		n.children[f.slot] = newChild
		if sep != nil {
			n.keys = append(n.keys, 0)
			copy(n.keys[f.slot+1:], n.keys[f.slot:])
			n.keys[f.slot] = sep.key
			n.children = append(n.children, 0)
			copy(n.children[f.slot+2:], n.children[f.slot+1:])
			n.children[f.slot+1] = sep.child
		}
		retired = append(retired, f.pid)
		if len(n.children) <= capacity {
			pid, err := writeNode(n)
			if err != nil {
				return fail(err)
			}
			newChild = pid
			sep = nil
			continue
		}
		// Internal split: both halves on fresh pages.
		mid := len(n.keys) / 2
		upKey := n.keys[mid]
		right := &internalNode{
			keys:     append([]uint64(nil), n.keys[mid+1:]...),
			children: append([]device.PageID(nil), n.children[mid+1:]...),
		}
		n.keys = n.keys[:mid]
		n.children = n.children[:mid+1]
		leftPid, err := writeNode(n)
		if err != nil {
			return fail(err)
		}
		rightPid, err := writeNode(right)
		if err != nil {
			return fail(err)
		}
		added++
		newChild = leftPid
		sep = &sepInsert{key: upKey, child: rightPid}
	}
	if sep == nil {
		return newChild, added, 0, allocated, retired, nil
	}
	// Root grows one level (also the first split of a single-leaf tree).
	root := &internalNode{keys: []uint64{sep.key}, children: []device.PageID{newChild, sep.child}}
	rootPid, err := writeNode(root)
	if err != nil {
		return fail(err)
	}
	added++
	return rootPid, added, 1, allocated, retired, nil
}
