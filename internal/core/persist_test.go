package core

import (
	"testing"
)

func TestMarshalMetaOpenRoundTrip(t *testing.T) {
	fx := newFixture(t, 20000, 11)
	tr := fx.build(t, 0, Options{FPP: 1e-3, Granularity: 2})
	// Drift some state so all counters round-trip.
	if err := tr.Delete(5, fx.file.PageOf(5)); err != nil {
		t.Fatal(err)
	}
	meta := tr.MarshalMeta()

	back, err := Open(fx.idxStore, fx.file, meta)
	if err != nil {
		t.Fatal(err)
	}
	if back.Height() != tr.Height() || back.NumLeaves() != tr.NumLeaves() ||
		back.NumNodes() != tr.NumNodes() || back.NumKeys() != tr.NumKeys() {
		t.Fatalf("geometry mismatch: %s vs %s", back, tr)
	}
	if back.Options().FPP != 1e-3 || back.Options().Granularity != 2 {
		t.Errorf("options mismatch: %+v", back.Options())
	}
	if back.EffectiveFPP() != tr.EffectiveFPP() {
		t.Error("drift counters lost")
	}
	// The reopened tree must answer probes identically.
	for k := uint64(0); k < 20000; k += 1111 {
		a, err := tr.SearchFirst(k)
		if err != nil {
			t.Fatal(err)
		}
		b, err := back.SearchFirst(k)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Tuples) != len(b.Tuples) {
			t.Fatalf("key %d: %d vs %d tuples after reopen", k, len(a.Tuples), len(b.Tuples))
		}
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	fx := newFixture(t, 1000, 11)
	tr := fx.build(t, 0, Options{FPP: 1e-2})
	meta := tr.MarshalMeta()

	if _, err := Open(fx.idxStore, fx.file, meta[:10]); err == nil {
		t.Error("short metadata accepted")
	}
	bad := append([]byte(nil), meta...)
	bad[0] = 'X'
	if _, err := Open(fx.idxStore, fx.file, bad); err == nil {
		t.Error("bad magic accepted")
	}
	// Field index beyond the schema.
	bad = append([]byte(nil), meta...)
	bad[82] = 99
	if _, err := Open(fx.idxStore, fx.file, bad); err == nil {
		t.Error("out-of-schema field accepted")
	}
	// Root pointing at an unallocated page.
	bad = append([]byte(nil), meta...)
	bad[22] = 0xff
	bad[23] = 0xff
	if _, err := Open(fx.idxStore, fx.file, bad); err == nil {
		t.Error("dangling root accepted")
	}
}

func TestRebuildClearsDrift(t *testing.T) {
	fx := newFixture(t, 10000, 11)
	tr := fx.build(t, 0, Options{FPP: 1e-3})
	base := tr.EffectiveFPP()
	for k := uint64(0); k < 500; k++ {
		if err := tr.Delete(k, fx.file.PageOf(k)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.EffectiveFPP() <= base {
		t.Fatal("deletes should have drifted the fpp")
	}
	if err := tr.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if got := tr.EffectiveFPP(); got != base {
		t.Errorf("rebuild fpp = %g, want design %g", got, base)
	}
	// Probes still work against the rebuilt pages.
	for k := uint64(0); k < 10000; k += 997 {
		res, err := tr.SearchFirst(k)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Tuples) != 1 {
			t.Fatalf("key %d lost by rebuild", k)
		}
	}
}

// TestRebuildDeviceBounded pins the contiguous free-list contract: a
// Rebuild retires the whole old tree, Maintain reclaims it into the
// store's free list as coalesced runs, and the next Rebuild's bulk
// allocations are carved from those runs. The index device therefore
// stays bounded — roughly two tree footprints — across arbitrarily many
// rebuilds, instead of growing by one footprint per compaction.
func TestRebuildDeviceBounded(t *testing.T) {
	fx := newFixture(t, 20000, 11)
	tr := fx.build(t, 0, Options{FPP: 1e-3})
	footprint := tr.NumNodes()

	if err := tr.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Maintain(); err != nil {
		t.Fatal(err)
	}
	// After one rebuild+reclaim cycle the device holds the live tree
	// plus the (now free) old one; that is the steady-state bound.
	bound := fx.idxStore.Device().NumPages()

	for i := 0; i < 6; i++ {
		if err := tr.Rebuild(); err != nil {
			t.Fatal(err)
		}
		if err := tr.Maintain(); err != nil {
			t.Fatal(err)
		}
		if got := fx.idxStore.Device().NumPages(); got > bound {
			t.Fatalf("rebuild %d grew the device to %d pages (bound %d, tree footprint %d)",
				i+1, got, bound, footprint)
		}
	}
	// The reclaimed footprint must sit in coalesced runs large enough to
	// serve the next bulk load, not as single-page fragments.
	if runs, largest := fx.idxStore.FreeRuns(); largest < int(footprint) {
		t.Errorf("largest free run %d < tree footprint %d across %d runs",
			largest, footprint, runs)
	}
	// Nothing leaked: live + free + limbo covers the device.
	live := tr.NumNodes()
	inLimbo := uint64(tr.limboLen.Load())
	total := fx.idxStore.Device().NumPages()
	if live+uint64(fx.idxStore.FreePages())+inLimbo != total {
		t.Errorf("page economy leaks: live %d + free %d + limbo %d != device %d",
			live, fx.idxStore.FreePages(), inLimbo, total)
	}
}
