package core

import (
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"bftree/internal/device"
	"bftree/internal/pagestore"
)

// forceSplit saturates the leaf covering key and inserts newKey, which
// must be genuinely new, driving one capacity split through the
// exclusive COW path. It returns an error the caller can assert on.
func forceSplit(t *testing.T, tr *Tree, f interface {
	PageOf(uint64) device.PageID
}, key, newKey uint64, ord uint64) error {
	t.Helper()
	leaf, leafPid, _, err := tr.descendPath(key, true)
	if err != nil {
		return err
	}
	if uint64(leaf.numKeys) < tr.geo.KeysPerLeaf {
		leaf.numKeys = uint32(tr.geo.KeysPerLeaf)
		if err := tr.writeLeaf(leafPid, leaf); err != nil {
			return err
		}
	}
	return tr.Insert(newKey, f.PageOf(ord))
}

// TestMaintenancePolicyDefaults pins the policy validation: zero values
// fill with usable defaults, the threshold must exceed the design fpp,
// and junk modes are rejected.
func TestMaintenancePolicyDefaults(t *testing.T) {
	o, err := Options{FPP: 0.01}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	mp := o.Maintenance
	if mp.Mode != MaintenanceManual {
		t.Errorf("default mode = %d, want manual", mp.Mode)
	}
	if mp.FPPThreshold != 0.04 {
		t.Errorf("default threshold = %g, want 4x design fpp", mp.FPPThreshold)
	}
	if mp.ReclaimInterval <= 0 || mp.LimboHighWater <= 0 {
		t.Errorf("defaults unfilled: %+v", mp)
	}
	// A loose design fpp still gets a threshold strictly inside (fpp, 1).
	o, err = Options{FPP: 0.4}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if th := o.Maintenance.FPPThreshold; th <= 0.4 || th >= 1 {
		t.Errorf("loose-fpp default threshold = %g, want in (0.4, 1)", th)
	}
	bad := []Options{
		{FPP: 0.01, Maintenance: MaintenancePolicy{Mode: 99}},
		{FPP: 0.01, Maintenance: MaintenancePolicy{FPPThreshold: 0.01}}, // == fpp
		{FPP: 0.01, Maintenance: MaintenancePolicy{FPPThreshold: 1.5}},
		{FPP: 0.01, Maintenance: MaintenancePolicy{FPPThreshold: math.NaN()}}, // would silently disable compaction
		{FPP: 0.01, Maintenance: MaintenancePolicy{ReclaimInterval: -time.Second}},
		{FPP: 0.01, Maintenance: MaintenancePolicy{LimboHighWater: -1}},
		{FPP: 0.01, Maintenance: MaintenancePolicy{IncrementalBatch: -1}},
	}
	for i, o := range bad {
		if _, err := o.withDefaults(); !errors.Is(err, ErrOptions) {
			t.Errorf("bad policy %d accepted: %v", i, err)
		}
	}
}

// TestMaintenancePolicyRoundTrip checks the persisted metadata carries
// the maintenance policy, and that pre-extension 86-byte blobs still
// open with manual defaults.
func TestMaintenancePolicyRoundTrip(t *testing.T) {
	fx := newFixture(t, 5000, 11)
	tr := fx.build(t, 0, Options{FPP: 1e-3, Maintenance: MaintenancePolicy{
		Mode:             MaintenanceManual,
		FPPThreshold:     0.25,
		ReclaimInterval:  42 * time.Millisecond,
		LimboHighWater:   7,
		IncrementalBatch: 5,
	}})
	meta := tr.MarshalMeta()
	back, err := Open(fx.idxStore, fx.file, meta)
	if err != nil {
		t.Fatal(err)
	}
	if got := back.Options().Maintenance; got != tr.Options().Maintenance {
		t.Errorf("policy did not round-trip: %+v vs %+v", got, tr.Options().Maintenance)
	}
	// A legacy blob (pre-extension length) opens with defaults.
	legacy, err := Open(fx.idxStore, fx.file, meta[:86])
	if err != nil {
		t.Fatal(err)
	}
	if got := legacy.Options().Maintenance.Mode; got != MaintenanceManual {
		t.Errorf("legacy blob mode = %d, want manual", got)
	}
	if legacy.Options().Maintenance.FPPThreshold <= 1e-3 {
		t.Error("legacy blob threshold not defaulted")
	}
	// A torn maintenance extension is corruption, not a legacy blob:
	// opening it would silently revert a tuned policy to defaults.
	if _, err := Open(fx.idxStore, fx.file, meta[:100]); !errors.Is(err, ErrCorrupt) {
		t.Errorf("truncated policy extension accepted: %v", err)
	}
	// A 107-byte blob predates the incremental-compaction extension:
	// it opens with the legacy whole-tree compaction (batch 0)...
	prev, err := Open(fx.idxStore, fx.file, meta[:107])
	if err != nil {
		t.Fatal(err)
	}
	if got := prev.Options().Maintenance.IncrementalBatch; got != 0 {
		t.Errorf("pre-extension blob batch = %d, want 0 (full rebuild)", got)
	}
	// ...while a torn batch field is corruption, same rule as above.
	if _, err := Open(fx.idxStore, fx.file, meta[:109]); !errors.Is(err, ErrCorrupt) {
		t.Errorf("truncated incremental extension accepted: %v", err)
	}
}

// TestRebuildResetsDriftCounters is the compaction-termination audit: a
// Rebuild must zero the published inserts/deletes drift in the new
// snapshot — a compaction that left stale drift would immediately
// re-trigger itself through driftNeedsCompaction.
func TestRebuildResetsDriftCounters(t *testing.T) {
	keys := make([]uint64, 4000)
	for i := range keys {
		keys[i] = uint64(2 * i)
	}
	f, _ := buildKeyedFile(t, keys)
	tr, err := BulkLoad(pagestore.New(device.New(device.Memory, 4096)), f, 0, Options{FPP: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := tr.Insert(keys[i]+1, f.PageOf(uint64(i))); err != nil {
			t.Fatal(err)
		}
		if err := tr.Delete(keys[i], f.PageOf(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	m := tr.loadMeta()
	if m.inserts == 0 || m.deletes == 0 {
		t.Fatalf("fixture accrued no drift: inserts=%d deletes=%d", m.inserts, m.deletes)
	}
	if err := tr.Rebuild(); err != nil {
		t.Fatal(err)
	}
	m = tr.loadMeta()
	if m.inserts != 0 || m.deletes != 0 {
		t.Errorf("rebuild left stale drift: inserts=%d deletes=%d, want 0/0", m.inserts, m.deletes)
	}
	if tr.driftNeedsCompaction() {
		t.Error("driftNeedsCompaction still true after rebuild: compaction would loop")
	}
	if got, want := tr.EffectiveFPP(), tr.Options().FPP; got != want {
		t.Errorf("post-rebuild fpp = %g, want design %g", got, want)
	}
}

// TestDisabledModeAccumulatesUntilMaintain pins the disabled policy: no
// inline reclamation at structural changes (limbo grows), and an
// explicit Maintain drains it.
func TestDisabledModeAccumulatesUntilMaintain(t *testing.T) {
	keys := make([]uint64, 2000)
	for i := range keys {
		keys[i] = uint64(2 * i)
	}
	f, _ := buildKeyedFile(t, keys)
	idx := pagestore.New(device.New(device.Memory, 128))
	tr, err := BulkLoad(idx, f, 0, Options{FPP: 0.01,
		Maintenance: MaintenancePolicy{Mode: MaintenanceDisabled}})
	if err != nil {
		t.Fatal(err)
	}
	if tr.StartMaintenance() {
		t.Fatal("disabled mode started a maintainer")
	}
	for round := 0; round < 8; round++ {
		ord := uint64(round * 211 % 2000)
		if err := forceSplit(t, tr, f, keys[ord], keys[ord]+1, ord); err != nil {
			if errors.Is(err, ErrKeyRange) {
				continue
			}
			t.Fatal(err)
		}
	}
	if tr.limboLen.Load() == 0 {
		t.Fatal("structural changes reclaimed inline under MaintenanceDisabled")
	}
	if free := idx.FreePages(); free != 0 {
		t.Fatalf("%d pages reached the free list without maintenance", free)
	}
	// Two explicit passes drain both limbo buckets at quiescence.
	if err := tr.Maintain(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Maintain(); err != nil {
		t.Fatal(err)
	}
	if got := tr.limboLen.Load(); got != 0 {
		t.Errorf("limbo = %d after quiescent Maintain passes, want 0", got)
	}
	st := tr.MaintenanceStats()
	if st.PagesReclaimed == 0 || st.Passes < 2 {
		t.Errorf("stats did not account the explicit passes: %+v", st)
	}
	live := tr.NumNodes()
	free := uint64(idx.FreePages())
	if total := idx.Device().NumPages(); live+free != total {
		t.Errorf("page economy leaks: live %d + free %d != device %d", live, free, total)
	}
}

// TestAutoCompactionOnDriftThreshold drives delete drift past the
// configured Equation 14 threshold and waits for the background
// maintainer to compact: MaintenanceStats must record the compaction,
// and the published drift must be back to zero.
func TestAutoCompactionOnDriftThreshold(t *testing.T) {
	f, _ := buildInitialFile(t, 8000)
	idx := pagestore.New(device.New(device.Memory, 4096))
	tr, err := BulkLoad(idx, f, 0, Options{FPP: 0.01, Maintenance: MaintenancePolicy{
		Mode:            MaintenanceAuto,
		FPPThreshold:    0.05,
		ReclaimInterval: time.Millisecond,
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if !tr.MaintenanceStats().Running {
		t.Fatal("auto mode did not start a maintainer")
	}
	// Standard-filter deletes accrue the additive Section 7 drift term;
	// 0.04*8000 = 320 deletes cross the 0.05 threshold. The maintainer
	// may compact mid-loop (later deletes then accrue fresh drift on the
	// rebuilt tree), so the terminal condition is: at least one
	// compaction observed AND the residual drift back under threshold.
	for k := uint64(0); k < 500; k++ {
		if err := tr.Delete(k, f.PageOf(k)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st := tr.MaintenanceStats()
		if st.Compactions > 0 && tr.EffectiveFPP() < 0.05 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	st := tr.MaintenanceStats()
	if st.Compactions == 0 {
		t.Fatalf("maintainer never compacted: %+v", st)
	}
	if fpp := tr.EffectiveFPP(); fpp >= 0.05 {
		t.Errorf("drift not held under threshold after compaction: fpp = %g", fpp)
	}
	// The last compaction zeroed the counters; only deletes issued after
	// it may remain, and they must be strictly fewer than the total.
	if m := tr.loadMeta(); m.deletes >= 500 {
		t.Errorf("compaction left all %d deletes in the snapshot", m.deletes)
	}
	// Probes answer correctly against the compacted tree.
	for k := uint64(0); k < 8000; k += 397 {
		res, err := tr.SearchFirst(k)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Tuples) != 1 {
			t.Errorf("key %d lost through auto-compaction", k)
		}
	}
}

// TestCloseDrainsMaintainer pins the lifecycle: Close stops the
// goroutine, drains limbo at quiescence, and is idempotent; a closed
// tree keeps answering probes.
func TestCloseDrainsMaintainer(t *testing.T) {
	keys := make([]uint64, 2000)
	for i := range keys {
		keys[i] = uint64(2 * i)
	}
	f, _ := buildKeyedFile(t, keys)
	idx := pagestore.New(device.New(device.Memory, 128))
	tr, err := BulkLoad(idx, f, 0, Options{FPP: 0.01, Maintenance: MaintenancePolicy{
		Mode: MaintenanceAuto,
		// A long interval plus a high threshold: the maintainer sits
		// idle, so the final drain is Close's own doing.
		ReclaimInterval: time.Hour,
		FPPThreshold:    1,
		LimboHighWater:  1 << 30,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.MaintenanceStats().Running {
		t.Fatal("maintainer not running")
	}
	for round := 0; round < 6; round++ {
		ord := uint64(round * 307 % 2000)
		if err := forceSplit(t, tr, f, keys[ord], keys[ord]+1, ord); err != nil && !errors.Is(err, ErrKeyRange) {
			t.Fatal(err)
		}
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	st := tr.MaintenanceStats()
	if st.Running {
		t.Error("maintainer still running after Close")
	}
	if st.LimboPages != 0 {
		t.Errorf("Close left %d limbo pages on a quiescent tree", st.LimboPages)
	}
	if err := tr.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	res, err := tr.SearchFirst(keys[42])
	if err != nil || len(res.Tuples) == 0 {
		t.Errorf("closed tree lost key %d: %v", keys[42], err)
	}
	live := tr.NumNodes()
	free := uint64(idx.FreePages())
	if total := idx.Device().NumPages(); live+free != total {
		t.Errorf("page economy leaks: live %d + free %d != device %d", live, free, total)
	}
}

// TestMaintainerReclaimsWithoutForegroundStructuralChange is the
// maintenance-layer contract under the race detector: with 4 latched
// writers and 4 readers live, pages retired by one structural change
// must return to the free list through the maintainer alone — driven by
// the probe-completion epoch-exit hook and the ticker, with zero
// further foreground structural changes — and the
// live + free + limbo == device page economy must hold at quiescence.
func TestMaintainerReclaimsWithoutForegroundStructuralChange(t *testing.T) {
	const distinct = 4000
	keys := make([]uint64, distinct)
	for i := range keys {
		keys[i] = uint64(2 * i)
	}
	f, _ := buildKeyedFile(t, keys)
	idx := pagestore.New(device.New(device.Memory, 512))
	tr, err := BulkLoad(idx, f, 0, Options{FPP: 0.01, Maintenance: MaintenancePolicy{
		Mode:            MaintenanceAuto,
		ReclaimInterval: time.Millisecond,
		FPPThreshold:    1, // isolate reclamation: no drift compaction
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	// One structural change populates limbo. In auto mode the foreground
	// writer only requests maintenance, so the pages may only reach the
	// free list through the maintainer.
	if err := forceSplit(t, tr, f, keys[100], keys[100]+1, 100); err != nil {
		t.Fatal(err)
	}
	leavesAfterSetup := tr.NumLeaves()
	if got := tr.MaintenanceStats().StructuralRequests; got == 0 {
		t.Fatal("split did not request maintenance")
	}

	// 4 latched writers re-insert existing claimed keys (guaranteed
	// non-structural) and 4 readers probe; the maintainer must reclaim
	// while they run.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				ord := (i*131 + w*977) % distinct
				if err := tr.Insert(keys[ord], f.PageOf(uint64(ord))); err != nil {
					errs[w] = err
					return
				}
				i++
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := keys[(i*173+r*709)%distinct]
				res, err := tr.SearchFirst(k)
				if err != nil {
					errs[4+r] = err
					return
				}
				if len(res.Tuples) == 0 {
					errs[4+r] = errors.New("key vanished")
					return
				}
				i++
			}
		}(r)
	}

	deadline := time.Now().Add(10 * time.Second)
	reclaimed := false
	for time.Now().Before(deadline) {
		if tr.MaintenanceStats().PagesReclaimed > 0 {
			reclaimed = true
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	if !reclaimed {
		t.Fatalf("maintainer reclaimed nothing in 10s with live readers: %+v", tr.MaintenanceStats())
	}
	if got := tr.NumLeaves(); got != leavesAfterSetup {
		t.Fatalf("leaves went %d -> %d; reclamation was not foreground-free", leavesAfterSetup, got)
	}
	st := tr.MaintenanceStats()
	if st.ProbeWakeups == 0 {
		t.Error("epoch-exit hook never signalled the maintainer")
	}
	if idx.FreePages() == 0 {
		t.Error("no retired pages reached the free list")
	}

	// Quiescence: Close drains the remaining limbo; the page economy
	// must balance.
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	inLimbo := uint64(tr.MaintenanceStats().LimboPages)
	if inLimbo != 0 {
		t.Errorf("%d pages stuck in limbo after Close on a quiescent tree", inLimbo)
	}
	live := tr.NumNodes()
	free := uint64(idx.FreePages())
	total := idx.Device().NumPages()
	if live+free+inLimbo != total {
		t.Errorf("page economy leaks: live %d + free %d + limbo %d != device %d",
			live, free, inLimbo, total)
	}
}
