package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"bftree/internal/bloom"
	"bftree/internal/device"
	"bftree/internal/heapfile"
	"bftree/internal/pagestore"
)

// Tree is a BF-Tree indexing one attribute of a heap file. Index pages
// live on their own store (which may sit on a different device than the
// data, reproducing the paper's five storage configurations).
//
// Concurrency: the tree is multi-writer/multi-reader. All metadata
// lives in an immutable treeMeta snapshot behind an atomic pointer;
// probes load it once and run lock-free. Writers split into two tiers
// (DESIGN.md §3): non-structural inserts and deletes rewrite one BF-leaf
// in place under the shared writeMu plus that leaf's latch, so writers
// on disjoint leaves proceed in parallel; structural changes (split,
// append, internal split, root growth, Rebuild) escalate to the
// exclusive writeMu and are copy-on-write — they build the new leaves
// and internal path on freshly allocated pages, publish a new snapshot,
// and retire the old pages through an epoch grace period (meta.go).
type Tree struct {
	store    *pagestore.Store
	file     *heapfile.File
	fieldIdx int
	opts     Options
	geo      Geometry

	meta    atomic.Pointer[treeMeta]
	readers epochs

	// writeMu is the writer-tier lock: RLock for leaf-latched in-place
	// rewrites (many may hold it at once), Lock for structural changes
	// and Flush/Rebuild (exclusive among all writers). Readers never
	// touch it.
	writeMu   sync.RWMutex
	latches   latchTable      // per-leaf write latches (hash-partitioned)
	limboPrev []device.PageID // retired one flip ago (exclusive-writer-only)
	limboCur  []device.PageID // retired since the last flip (exclusive-writer-only)

	// limboLen mirrors len(limboPrev)+len(limboCur) for lock-free
	// observers: the probe-exit hook (endProbe) and MaintenanceStats
	// read it without touching writeMu. Written only by the exclusive
	// writer (retire/reclaim).
	limboLen atomic.Int64

	// maint is the background maintainer, nil when none is running; the
	// atomic pointer lets the probe-exit hook consult it lock-free.
	// maintStats lives on the tree so counters survive maintainer
	// stop/start cycles and explicit Maintain calls (maintenance.go).
	maint      atomic.Pointer[maintainer]
	maintStats maintStats

	// leafWriteFault, when non-nil, is consulted by writeLeaf before
	// every leaf write; a non-nil return is injected as the write's
	// error. Test-only: set while the tree is quiescent to exercise
	// failure paths (e.g. the appendLeaf tail relink).
	leafWriteFault func(device.PageID) error

	// part, when non-nil, restricts the tree to one shard of the
	// relation (partition.go). Immutable after construction; Rebuild
	// re-applies it so drift compaction never re-indexes keys the
	// shard does not own.
	part *Partition
}

// pageKeys is the per-data-page key summary gathered while scanning the
// relation during bulk load.
type pageKeys struct {
	pid  device.PageID
	keys []uint64 // distinct keys on the page, in order
}

// maxFiltersPerLeaf bounds S so every filter keeps at least
// geo.MinBitsPerBF positions' worth of bytes.
func maxFiltersPerLeaf(geo Geometry) int {
	minBytes := int(geo.MinBitsPerBF / 8)
	if minBytes < 1 {
		minBytes = 1
	}
	maxS := (geo.PageSize - leafHeaderSize) / minBytes
	if maxS < 1 {
		maxS = 1
	}
	if maxS > 0xffff {
		maxS = 0xffff
	}
	return maxS
}

// leafShape picks the effective granularity and filter count for a leaf
// covering the given number of data pages: the requested granularity,
// coarsened just enough that S filters fit the page. This is the
// paper's "the number of BFs in a BF-leaf can vary between 1 and the
// number of pages comprising the range": the key budget (Equation 5)
// decides the leaf's reach, and the filters adapt.
func leafShape(pages, baseGranularity, maxS int) (granularity, s int) {
	granularity = baseGranularity
	if need := (pages + maxS - 1) / maxS; need > granularity {
		granularity = need
	}
	s = (pages + granularity - 1) / granularity
	return granularity, s
}

// BulkLoad builds a BF-Tree over field fieldIdx of file, writing index
// pages to idxStore. It makes one pass over the data to pack BF-leaves
// and one pass over the leaves to build the internal levels, as Section
// 4.2 prescribes. The file must be ordered or partitioned on the field:
// each key must occupy one contiguous page range.
//
// Under Options.Maintenance.Mode == MaintenanceAuto the returned tree
// owns a background maintainer goroutine; call Close to drain it.
func BulkLoad(idxStore *pagestore.Store, file *heapfile.File, fieldIdx int, opts Options) (*Tree, error) {
	t, err := bulkLoadTree(idxStore, file, fieldIdx, opts, nil)
	if err != nil {
		return nil, err
	}
	if t.opts.Maintenance.Mode == MaintenanceAuto {
		t.StartMaintenance()
	}
	return t, nil
}

// bulkLoadTree is BulkLoad without the maintainer lifecycle: Rebuild
// uses it to construct the replacement tree (whose Tree shell is
// discarded — only its published meta survives), so no goroutine may be
// attached to it. A non-nil part filters the build down to the keys the
// partition accepts: pages holding none of them are skipped entirely,
// which is what gives a range shard leaf spans covering only its slice
// of the file.
func bulkLoadTree(idxStore *pagestore.Store, file *heapfile.File, fieldIdx int, opts Options, part *Partition) (*Tree, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if fieldIdx < 0 || fieldIdx >= len(file.Schema().Fields) {
		return nil, fmt.Errorf("%w: field index %d", ErrOptions, fieldIdx)
	}
	geo, err := geometryFor(idxStore.PageSize(), o)
	if err != nil {
		return nil, err
	}
	t := &Tree{store: idxStore, file: file, fieldIdx: fieldIdx, opts: o, geo: geo, part: part}

	// Pass 1: scan data pages, packing leaves by distinct keys — at most
	// KeysPerLeaf each, the Equation 5 capacity that guarantees the
	// design fpp. Each leaf's filter granularity is then chosen so that
	// the busiest filter's actual load — including keys straddling
	// page-group boundaries, which are inserted into both groups'
	// filters — fits its Equation 1 capacity (see chooseShape).
	// The packing budget keeps a 15 % margin below the Equation 5
	// capacity: filters also absorb keys straddling page-group
	// boundaries (inserted into both groups), and without slack the
	// granularity search cannot hold one-filter-per-page precision.
	budget := geo.KeysPerLeaf * 85 / 100
	if budget < 1 {
		budget = 1
	}
	var leaves []*bfLeaf
	var cur []pageKeys
	var curDistinct uint64
	var lastKey uint64
	haveLast := false

	flush := func() error {
		// Trailing gap pages (possible only under a partition) would
		// stretch the leaf's span past its last owned page.
		for len(cur) > 0 && len(cur[len(cur)-1].keys) == 0 {
			cur = cur[:len(cur)-1]
		}
		if len(cur) == 0 {
			return nil
		}
		l, err := buildLeaf(cur, o, geo)
		if err != nil {
			return err
		}
		leaves = append(leaves, l)
		cur = nil
		curDistinct = 0
		return nil
	}

	first := file.FirstPage()
	for p := uint64(0); p < file.NumPages(); p++ {
		pid := first + device.PageID(p)
		tuples, err := file.ReadPageTuples(pid)
		if err != nil {
			return nil, err
		}
		var keys []uint64
		newDistinct := uint64(0)
		for _, tup := range tuples {
			k := file.Schema().Get(tup, fieldIdx)
			if !part.Accept(k) {
				continue
			}
			if len(keys) == 0 || keys[len(keys)-1] != k {
				keys = append(keys, k)
			}
			if !haveLast || k != lastKey {
				newDistinct++
				lastKey = k
				haveLast = true
			}
		}
		if part != nil && len(keys) == 0 {
			// No accepted keys on this page. A leading gap is skipped
			// outright (leaf spans start at the shard's first owned
			// page); an interior gap — possible under hash partitioning
			// — must stay in the leaf as an empty entry, because leaf
			// geometry (bfIndexOf, pageRangeOf) assumes its page run is
			// contiguous. Trailing gaps are trimmed at flush.
			if len(cur) > 0 {
				cur = append(cur, pageKeys{pid: pid})
			}
			continue
		}
		if len(cur) > 0 && curDistinct+newDistinct > budget {
			if err := flush(); err != nil {
				return nil, err
			}
			// Keys continuing from the previous leaf count as new here.
			newDistinct = uint64(len(keys))
		}
		cur = append(cur, pageKeys{pid: pid, keys: keys})
		curDistinct += newDistinct
	}
	if err := flush(); err != nil {
		return nil, err
	}
	if len(leaves) == 0 {
		if part == nil {
			return nil, fmt.Errorf("%w: empty relation", ErrOptions)
		}
		// The key distribution left this shard nothing. A shard must
		// still exist — and accept appends later — so build one empty
		// leaf over the file's first page. Its minKey/maxKey sentinels
		// (^0/0) keep every probe and scan out of it until an insert
		// lands.
		posPerBF := geo.positionsFor(1, o.Filter)
		lo := o
		lo.Granularity = 1
		lo.Hashes = hashesFor(o.Hashes, posPerBF, geo.KeysPerLeaf, 1)
		leaves = append(leaves, newBFLeaf(file.FirstPage(), file.FirstPage(), lo, posPerBF, 1))
	}

	// Write the leaf level to contiguous pages, chaining next pointers.
	var m treeMeta
	firstLeaf := idxStore.Allocate(len(leaves))
	buf := make([]byte, idxStore.PageSize())
	for i, l := range leaves {
		if i < len(leaves)-1 {
			l.next = firstLeaf + device.PageID(i) + 1
		}
		if err := encodeBFLeaf(buf, l); err != nil {
			return nil, err
		}
		if err := idxStore.WritePage(firstLeaf+device.PageID(i), buf); err != nil {
			return nil, err
		}
		m.numKeys += uint64(l.numKeys)
	}
	m.firstLeaf = firstLeaf
	m.numLeaves = uint64(len(leaves))
	m.numNodes = m.numLeaves
	m.height = 1

	// Pass 2: build the internal levels bottom-up over the leaves.
	type childRef struct {
		minKey uint64
		pid    device.PageID
	}
	level := make([]childRef, len(leaves))
	for i, l := range leaves {
		level[i] = childRef{minKey: l.minKey, pid: firstLeaf + device.PageID(i)}
	}
	fanout := internalCapacity(idxStore.PageSize())
	for len(level) > 1 {
		numNodes := (len(level) + fanout - 1) / fanout
		firstNode := idxStore.Allocate(numNodes)
		next := make([]childRef, 0, numNodes)
		for i := 0; i < numNodes; i++ {
			lo := i * fanout
			hi := lo + fanout
			if hi > len(level) {
				hi = len(level)
			}
			group := level[lo:hi]
			n := &internalNode{
				keys:     make([]uint64, len(group)-1),
				children: make([]device.PageID, len(group)),
			}
			for j, c := range group {
				n.children[j] = c.pid
				if j > 0 {
					n.keys[j-1] = c.minKey
				}
			}
			if err := encodeInternal(buf, n); err != nil {
				return nil, err
			}
			pid := firstNode + device.PageID(i)
			if err := idxStore.WritePage(pid, buf); err != nil {
				return nil, err
			}
			next = append(next, childRef{minKey: group[0].minKey, pid: pid})
		}
		level = next
		m.numNodes += uint64(numNodes)
		m.height++
	}
	m.root = level[0].pid
	t.meta.Store(&m)
	return t, nil
}

// avgGroupLoad returns the mean number of distinct keys per page group
// of width g — the average filter load, counting a key once per group it
// touches (straddling keys are inserted into every group they span).
// Keys are in file order, so adjacent deduplication within a group is
// exact for ordered data. The average, not the maximum, drives the
// expected false-read rate: occasional overloaded groups (a cardinality
// spike) degrade only their own filters, by the bounded drift of
// Equation 14.
func avgGroupLoad(pages []pageKeys, g int) uint64 {
	var total uint64
	groups := 0
	for lo := 0; lo < len(pages); lo += g {
		hi := lo + g
		if hi > len(pages) {
			hi = len(pages)
		}
		var last uint64
		have := false
		for _, pk := range pages[lo:hi] {
			for _, k := range pk.keys {
				if !have || k != last {
					total++
					last = k
					have = true
				}
			}
		}
		groups++
	}
	if groups == 0 {
		return 0
	}
	return (total + uint64(groups) - 1) / uint64(groups)
}

// chooseShape picks the finest granularity whose average filter load
// stays within the Equation 1 capacity at the design fpp. Granularity 1
// — one filter per page, the paper's best-precision configuration — wins
// whenever the per-page key load allows; high-cardinality attributes
// whose keys span hundreds of pages converge to coarse groups, trading
// probe precision for leaves that cover whole partitions (Section 4.1's
// "1 up to the number of pages" range for S). Feasibility is found by
// doubling then binary refinement: both load and capacity grow roughly
// linearly in g with capacity growing faster, so feasibility is
// monotone in g.
func chooseShape(pages []pageKeys, o Options, geo Geometry) (granularity, s int) {
	p := len(pages)
	feasible := func(g int) (bool, int) {
		sCand := (p + g - 1) / g
		if sCand > 0xffff {
			return false, sCand
		}
		capKeys := bloom.KeysForBits(geo.positionsFor(sCand, o.Filter), o.FPP)
		if capKeys == 0 {
			capKeys = 1
		}
		return avgGroupLoad(pages, g) <= capKeys, sCand
	}
	if ok, sCand := feasible(o.Granularity); ok || o.Granularity >= p {
		return o.Granularity, sCand
	}
	// Double until feasible; g = p always is (one filter holding the
	// leaf's distinct keys, which the packing budget bounded).
	lastBad := o.Granularity
	g := o.Granularity * 2
	for g < p {
		ok, _ := feasible(g)
		if ok {
			break
		}
		lastBad = g
		g *= 2
	}
	if g > p {
		g = p
	}
	// Binary refine in (lastBad, g].
	lo, hi := lastBad+1, g
	for lo < hi {
		mid := (lo + hi) / 2
		if ok, _ := feasible(mid); ok {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	_, sCand := feasible(lo)
	return lo, sCand
}

// buildLeaf packs one leaf from consecutive data-page key summaries:
// S filters sharing the leaf's filter-bit budget equally (the Section 3
// split property keeps the fpp of the whole-leaf budget).
func buildLeaf(pages []pageKeys, o Options, geo Geometry) (*bfLeaf, error) {
	g, s := chooseShape(pages, o, geo)
	posPerBF := geo.positionsFor(s, o.Filter)
	lo := o
	lo.Granularity = g
	lo.Hashes = hashesFor(o.Hashes, posPerBF, geo.KeysPerLeaf, s)
	l := newBFLeaf(pages[0].pid, pages[len(pages)-1].pid, lo, posPerBF, s)
	var distinct uint32
	var last uint64
	have := false
	for _, pk := range pages {
		for _, k := range pk.keys {
			if err := l.addKey(k, pk.pid); err != nil {
				return nil, err
			}
			if !have || k != last {
				distinct++
				last = k
				have = true
			}
			if k < l.minKey {
				l.minKey = k
			}
			if k > l.maxKey {
				l.maxKey = k
			}
		}
	}
	l.numKeys = distinct
	return l, nil
}
