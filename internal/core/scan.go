package core

import (
	"fmt"
	"sort"

	"bftree/internal/device"
)

// Cursor is a pull-based streaming range scan over the BF-Tree: the
// leaf-chain walk of Section 7 exposed one tuple at a time instead of
// as a materialized slice. A cursor buffers at most one data page of
// in-range tuples, so a LIMIT-k consumer pays only for the pages it
// actually pulled — the early-termination shape RangeScan cannot offer.
//
// The cursor holds the tree's reader registration (the epoch scheme of
// meta.go) from Scan until Close, Next returning false, or the first
// error — whichever comes first. While it is held, concurrent latched
// and structural writers proceed normally, but retired pages of
// snapshots the cursor may still traverse cannot be reclaimed; a
// long-lived open cursor therefore bounds limbo drain, not writer
// progress (DESIGN.md §6). Close is idempotent and must be called even
// after Next returned false (it is then a no-op on the registration,
// which an exhausted cursor has already released).
//
// A Cursor is not safe for concurrent use; open one per goroutine.
type Cursor struct {
	t        *Tree
	lo, hi   uint64
	optimize bool

	ep   uint64 // epoch the registration was taken under
	open bool   // registration still held

	leaf     *bfLeaf         // leaf whose pages are being produced (nil: chain exhausted)
	consumed bool            // leaf's page list already installed once
	enum     *boundaryEnum   // lazy per-key probe of a boundary leaf (optimized mode)
	pages    []device.PageID // data pages of the current leaf still to read
	tuples   [][]byte        // in-range tuples of the current page (copies)
	ti       int             // index of the current tuple, -1 before first
	stats    ProbeStats
	err      error
	done     bool
}

// boundaryEnum walks a boundary leaf's overlap keys one at a time: each
// step probes one key's Bloom filters and yields only its flagged,
// not-yet-read pages. Probing lazily is what makes LIMIT-k cheap here —
// an upfront enumeration of the whole overlap flags nearly every page
// once overlapKeys × fpp approaches 1, so the early-terminating
// consumer would pay for the whole boundary anyway.
type boundaryEnum struct {
	leaf      *bfLeaf
	next, end uint64 // keys still to probe (inclusive)
	exhausted bool
	endPid    device.PageID // page clamp (lastDataPage)
	seen      map[device.PageID]bool
}

// Scan opens a streaming cursor over every tuple whose indexed field
// lies in [lo, hi], in page order — the iterator form of RangeScan,
// which drains exactly this cursor.
func (t *Tree) Scan(lo, hi uint64) (*Cursor, error) {
	return t.scan(lo, hi, false)
}

// ScanOptimized is Scan with the Section 7 boundary optimization: for
// boundary partitions it probes the Bloom filters for one overlap key
// at a time — lazily, as the consumer pulls — and reads only the
// flagged pages. Emission order therefore differs from Scan at the
// boundaries (key-probe order instead of page order); the tuple
// multiset is identical. The laziness is what makes early termination
// cheap: a LIMIT-k consumer pays for the pages behind its k tuples,
// not for the whole boundary's candidate set.
func (t *Tree) ScanOptimized(lo, hi uint64) (*Cursor, error) {
	return t.scan(lo, hi, true)
}

func (t *Tree) scan(lo, hi uint64, optimize bool) (*Cursor, error) {
	if lo > hi {
		return nil, fmt.Errorf("%w: range [%d,%d] inverted", ErrOptions, lo, hi)
	}
	c := &Cursor{t: t, lo: lo, hi: hi, optimize: optimize, ti: -1}
	m, ep := t.beginProbe()
	c.ep, c.open = ep, true
	leaf, _, err := t.descend(m.root, lo, &c.stats)
	if err != nil {
		c.release()
		return nil, err
	}
	c.leaf = leaf
	return c, nil
}

// Next advances the cursor to the next in-range tuple, reporting
// whether one exists. It returns false at the end of the range or on
// error (see Err); once false, the cursor's reader registration has
// been released and every later call returns false.
func (c *Cursor) Next() bool {
	if c.err != nil {
		return false
	}
	if c.ti+1 < len(c.tuples) {
		c.ti++
		return true
	}
	for {
		if c.done {
			c.release()
			return false
		}
		if len(c.pages) == 0 {
			if c.enum != nil {
				c.stepEnum()
				if len(c.pages) > 0 {
					continue
				}
				c.enum = nil // overlap keys exhausted; move on
			}
			if err := c.advanceLeaf(); err != nil {
				c.fail(err)
				return false
			}
			continue
		}
		pid := c.pages[0]
		c.pages = c.pages[1:]
		tuples, err := c.collect(pid)
		if err != nil {
			c.fail(err)
			return false
		}
		if len(tuples) > 0 {
			c.tuples, c.ti = tuples, 0
			return true
		}
	}
}

// Tuple returns the current tuple. The slice is a copy owned by the
// caller; it stays valid after further Next calls.
func (c *Cursor) Tuple() []byte {
	if c.ti < 0 || c.ti >= len(c.tuples) {
		return nil
	}
	return c.tuples[c.ti]
}

// Stats returns the cost accounting accumulated so far — after each
// Next it reflects exactly the index and data pages paid to reach the
// current tuple, which is how the bench layer prices early termination.
func (c *Cursor) Stats() ProbeStats { return c.stats }

// Err returns the first error the cursor hit, if any.
func (c *Cursor) Err() error { return c.err }

// Close releases the cursor's reader registration and drops its
// buffers. It is idempotent, safe after exhaustion, and never returns
// an error (iteration errors are reported by Err).
func (c *Cursor) Close() error {
	c.release()
	c.done = true
	c.tuples, c.pages, c.enum, c.ti = nil, nil, nil, -1
	return nil
}

// release drops the reader registration exactly once.
func (c *Cursor) release() {
	if c.open {
		c.open = false
		c.t.endProbe(c.ep)
	}
}

func (c *Cursor) fail(err error) {
	c.err = err
	c.release()
}

// advanceLeaf installs the next leaf's data-page list, or marks the
// scan done. It mirrors the leaf-chain loop of the materialized scan:
// leaves are read lazily, so an early-terminated cursor never touches
// chain links beyond the last page it produced.
func (c *Cursor) advanceLeaf() error {
	for {
		if c.leaf == nil {
			c.done = true
			return nil
		}
		if c.consumed {
			if c.leaf.next == device.InvalidPage {
				c.leaf = nil
				c.done = true
				return nil
			}
			nl, err := c.t.readLeaf(c.leaf.next, &c.stats)
			if err != nil {
				return err
			}
			c.leaf = nl
			c.consumed = false
		}
		leaf := c.leaf
		c.consumed = true
		if leaf.minKey > c.hi {
			c.done = true
			return nil
		}
		if leaf.maxKey < c.lo || leaf.numKeys == 0 {
			continue
		}
		installed, err := c.installLeaf(leaf)
		if err != nil {
			return err
		}
		if installed {
			return nil
		}
	}
}

// installLeaf queues one overlapping leaf's data pages and reports
// whether anything was installed: the whole partition (middle
// partitions are entirely useful, Section 7), or — under the boundary
// optimization, for a boundary partition with an enumerable overlap — a
// lazy per-key Bloom probe that flags pages only as the consumer pulls.
func (c *Cursor) installLeaf(leaf *bfLeaf) (bool, error) {
	last := c.t.lastDataPage()
	end := leaf.maxPid
	if end > last {
		end = last
	}
	if end < leaf.minPid {
		return false, nil
	}
	boundary := leaf.minKey < c.lo || leaf.maxKey > c.hi
	if boundary && c.optimize && overlapSpan(leaf, c.lo, c.hi) <= rangeEnumLimit {
		a, b := leaf.minKey, leaf.maxKey
		if c.lo > a {
			a = c.lo
		}
		if c.hi < b {
			b = c.hi
		}
		c.enum = &boundaryEnum{
			leaf:   leaf,
			next:   a,
			end:    b,
			endPid: end,
			seen:   make(map[device.PageID]bool),
		}
		c.stepEnum()
		if len(c.pages) == 0 {
			// Every overlap key's filters answered no (or flagged only
			// already-clamped pages): the boundary contributes nothing.
			c.enum = nil
			return false, nil
		}
		return true, nil
	}
	pages := make([]device.PageID, 0, int(end-leaf.minPid)+1)
	for pid := leaf.minPid; pid <= end; pid++ {
		pages = append(pages, pid)
	}
	c.pages = pages
	return true, nil
}

// stepEnum probes overlap keys until one flags pages not yet read (they
// become the cursor's page queue) or the overlap is exhausted (c.pages
// stays empty). Filters have no false negatives, so every in-range
// key's pages are flagged by its own probe; the seen set only stops a
// page from being read — and its tuples emitted — twice.
func (c *Cursor) stepEnum() {
	e := c.enum
	for !e.exhausted {
		k := e.next
		if k == e.end {
			e.exhausted = true // probe k below, but don't advance past it
		} else {
			e.next++
		}
		matches := e.leaf.probe(k, c.t.opts.ParallelProbe)
		c.stats.BFProbes += e.leaf.numBFs()
		var pages []device.PageID
		for _, bid := range matches {
			plo, phi := e.leaf.pageRangeOf(bid)
			for p := plo; p <= phi; p++ {
				if p < e.leaf.minPid || p > e.endPid || e.seen[p] {
					continue
				}
				e.seen[p] = true
				pages = append(pages, p)
			}
		}
		if len(pages) > 0 {
			sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
			c.pages = pages
			return
		}
	}
}

// collect reads one data page and returns copies of its in-range
// tuples, charging the read (and a false read when nothing matched).
func (c *Cursor) collect(pid device.PageID) ([][]byte, error) {
	tuples, err := c.t.file.ReadPageTuples(pid)
	if err != nil {
		return nil, err
	}
	c.stats.DataPagesRead++
	var out [][]byte
	for _, tup := range tuples {
		k := c.t.file.Schema().Get(tup, c.t.fieldIdx)
		if k >= c.lo && k <= c.hi {
			cp := make([]byte, len(tup))
			copy(cp, tup)
			out = append(out, cp)
		}
	}
	if len(out) == 0 {
		c.stats.FalseReads++
	}
	return out, nil
}
