// Package pagestore layers page management over a simulated device: page
// allocation, typed read/write, and an optional LRU buffer cache.
//
// The cache models the warm-cache experiments of the paper (Figures 7, 10
// and 12b): with the cache enabled and pre-warmed, repeated accesses to
// index pages above the leaves hit memory, so only leaf and data-page
// accesses reach the device. With the cache disabled the store behaves
// like the paper's O_DIRECT cold-cache runs, where every page access pays
// device cost.
//
// Concurrency: a Store is safe for concurrent use and the read path is
// built to scale. The cache is sharded — each shard owns an independent
// LRU list behind its own lock, and a page's shard is fixed by its id —
// so concurrent probes touching different pages rarely contend; hit/miss
// counters are lock-free atomics. Small caches keep a single shard,
// preserving exact global LRU semantics; large caches trade that for
// per-shard LRU, which is the standard buffer-pool compromise. Probes
// running concurrently with writes to the same page may briefly observe
// the pre-write image — never a torn one — which is what the Tree-level
// concurrency contract (lock-free readers, latched writers; see
// DESIGN.md §3) builds on.
//
// The store also keeps a free list: Free returns page ids whose
// contents are dead (the tree retires copy-on-write pages here after
// its epoch grace period) and coalesces adjacent ids into contiguous
// runs, so Allocations of any size — including the multi-page runs of a
// bulk load or Rebuild — recycle them, and structural churn does not
// grow the device without bound.
package pagestore

import (
	"container/list"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"bftree/internal/device"
)

// Store provides cached page access on top of a device.
type Store struct {
	dev        *device.Device
	cache      *shardedCache // nil when caching is disabled
	pinnedOnly bool          // cache serves only explicitly Warmed pages

	hits   atomic.Uint64
	misses atomic.Uint64

	// freeRuns recycles page ids released through Free, so copy-on-write
	// structural changes and whole-tree rebuilds reuse retired pages
	// instead of growing the device forever. Freed pages stay allocated
	// on the device; only their ids circulate. Runs are kept sorted by
	// start, coalesced and non-adjacent, so contiguous multi-page
	// allocations can be carved out of them.
	freeMu    sync.Mutex
	freeRuns  []freeRun
	freePages int
	freed     atomic.Uint64
	reused    atomic.Uint64
	fresh     atomic.Uint64 // allocations that extended the device
}

// freeRun is a maximal run of contiguous free page ids [start, start+n).
type freeRun struct {
	start device.PageID
	n     int
}

// Option configures a Store.
type Option func(*Store)

// WithCache enables an LRU buffer cache of the given capacity in pages.
// Capacity 0 disables caching (the cold-cache default).
func WithCache(capacityPages int) Option {
	return func(s *Store) {
		if capacityPages > 0 {
			s.cache = newShardedCache(capacityPages)
		}
	}
}

// WithPinnedCache enables a cache that serves only pages loaded through
// Warm: ordinary reads never populate it. This models the paper's
// warm-cache experiments, where the levels above the leaves are resident
// but "only accessing the leaf node would cause an I/O" (Section 6.2) —
// leaf and data accesses keep paying device cost on every probe.
func WithPinnedCache(capacityPages int) Option {
	return func(s *Store) {
		if capacityPages > 0 {
			s.cache = newShardedCache(capacityPages)
			s.pinnedOnly = true
		}
	}
}

// New creates a store over dev. Without options the store is uncached:
// every read and write goes to the device, as in the paper's cold-cache
// O_DIRECT configuration.
func New(dev *device.Device, opts ...Option) *Store {
	s := &Store{dev: dev}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Device returns the underlying device (for stats access).
func (s *Store) Device() *device.Device { return s.dev }

// PageSize returns the page size in bytes.
func (s *Store) PageSize() int { return s.dev.PageSize() }

// Allocate returns n pages, the first id of a contiguous run. The free
// list is searched first — best-fit over its coalesced runs — so both
// single-page copy-on-write allocations and the multi-page runs of a
// bulk load or Rebuild recycle retired pages (which keep their stale
// content until the caller writes them). Only when no free run is large
// enough does the allocation extend the device.
func (s *Store) Allocate(n int) device.PageID {
	s.freeMu.Lock()
	best := -1
	for i := range s.freeRuns {
		if s.freeRuns[i].n < n {
			continue
		}
		if best < 0 || s.freeRuns[i].n < s.freeRuns[best].n {
			best = i
		}
	}
	if best >= 0 {
		r := &s.freeRuns[best]
		id := r.start
		r.start += device.PageID(n)
		r.n -= n
		if r.n == 0 {
			s.freeRuns = append(s.freeRuns[:best], s.freeRuns[best+1:]...)
		}
		s.freePages -= n
		s.freeMu.Unlock()
		s.reused.Add(uint64(n))
		return id
	}
	s.freeMu.Unlock()
	s.fresh.Add(uint64(n))
	return s.dev.Allocate(n)
}

// Free returns pages to the store's free list for reuse by later
// Allocations, coalescing them with each other and with existing runs.
// The caller must guarantee that no reader can still reach the pages —
// the BF-Tree's epoch scheme provides that grace period before retiring
// copy-on-write pages here.
func (s *Store) Free(ids ...device.PageID) {
	if len(ids) == 0 {
		return
	}
	sorted := append([]device.PageID(nil), ids...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	incoming := make([]freeRun, 0, 4)
	for _, id := range sorted {
		if k := len(incoming); k > 0 && incoming[k-1].start+device.PageID(incoming[k-1].n) == id {
			incoming[k-1].n++
			continue
		}
		incoming = append(incoming, freeRun{start: id, n: 1})
	}
	s.freeMu.Lock()
	s.freeRuns = mergeFreeRuns(s.freeRuns, incoming)
	s.freePages = 0
	for _, r := range s.freeRuns {
		s.freePages += r.n
	}
	s.freeMu.Unlock()
	s.freed.Add(uint64(len(ids)))
}

// mergeFreeRuns merges two sorted run lists into one sorted, coalesced
// list. Overlapping spans collapse to their union, which keeps the free
// list consistent even if a caller double-frees a page.
func mergeFreeRuns(a, b []freeRun) []freeRun {
	out := make([]freeRun, 0, len(a)+len(b))
	i, j := 0, 0
	push := func(r freeRun) {
		if k := len(out); k > 0 {
			prev := &out[k-1]
			prevEnd := prev.start + device.PageID(prev.n)
			if r.start <= prevEnd { // adjacent or overlapping: coalesce
				if end := r.start + device.PageID(r.n); end > prevEnd {
					prev.n = int(end - prev.start)
				}
				return
			}
		}
		out = append(out, r)
	}
	for i < len(a) && j < len(b) {
		if a[i].start <= b[j].start {
			push(a[i])
			i++
		} else {
			push(b[j])
			j++
		}
	}
	for ; i < len(a); i++ {
		push(a[i])
	}
	for ; j < len(b); j++ {
		push(b[j])
	}
	return out
}

// FreePages reports how many page ids currently sit on the free list.
func (s *Store) FreePages() int {
	s.freeMu.Lock()
	defer s.freeMu.Unlock()
	return s.freePages
}

// FreeRuns reports the shape of the free list: how many contiguous runs
// it holds and the length of the largest. A single large run after a
// Rebuild means the next bulk allocation will be recycled rather than
// extend the device.
func (s *Store) FreeRuns() (runs, largest int) {
	s.freeMu.Lock()
	defer s.freeMu.Unlock()
	for _, r := range s.freeRuns {
		if r.n > largest {
			largest = r.n
		}
	}
	return len(s.freeRuns), largest
}

// FreeListStats reports lifetime totals: pages released through Free and
// pages recycled by Allocate.
func (s *Store) FreeListStats() (freed, reused uint64) {
	return s.freed.Load(), s.reused.Load()
}

// PressureStats reports the free-list pressure counters the maintenance
// policy feeds on: fresh is the lifetime count of pages allocated by
// extending the device (the free list could not serve them), freed and
// reused as in FreeListStats. A growing fresh count while reclaimable
// pages sit in the tree's limbo means reclamation is overdue — the
// device is expanding for pages that dead ids could have supplied.
func (s *Store) PressureStats() (fresh, freed, reused uint64) {
	return s.fresh.Load(), s.freed.Load(), s.reused.Load()
}

// ReadPage returns the contents of page id. The returned slice is a copy
// owned by the caller. A cache hit costs no device I/O.
func (s *Store) ReadPage(id device.PageID) ([]byte, error) {
	var sh *cacheShard
	if s.cache != nil {
		sh = s.cache.shardFor(id)
		sh.mu.Lock()
		if data, ok := sh.lru.get(id); ok {
			out := make([]byte, len(data))
			copy(out, data)
			sh.mu.Unlock()
			s.hits.Add(1)
			return out, nil
		}
		sh.mu.Unlock()
		s.misses.Add(1)
	}

	var gen uint64
	if sh != nil && !s.pinnedOnly {
		gen = sh.gen.Load()
	}
	buf := make([]byte, s.dev.PageSize())
	if _, err := s.dev.ReadPage(id, buf); err != nil {
		return nil, err
	}

	if sh != nil && !s.pinnedOnly {
		cp := make([]byte, len(buf))
		copy(cp, buf)
		sh.mu.Lock()
		// Admit only if no write to this shard overlapped the device
		// read: a concurrent writer bumps gen both before its device
		// write and before its own cache update, so if this read raced
		// it — and could be holding the pre-write image — the check
		// fails and the cache never regresses to stale data.
		if sh.gen.Load() == gen {
			sh.lru.put(id, cp)
		}
		sh.mu.Unlock()
	}
	return buf, nil
}

// WritePage writes buf to page id, updating the cache (write-through).
func (s *Store) WritePage(id device.PageID, buf []byte) error {
	var sh *cacheShard
	if s.cache != nil {
		sh = s.cache.shardFor(id)
		sh.gen.Add(1) // readers sampling after this must not admit pre-write data
	}
	if err := s.dev.WritePage(id, buf); err != nil {
		return err
	}
	if sh != nil {
		sh.gen.Add(1) // invalidate readers whose device read preceded the write
		sh.mu.Lock()
		// A pinned-only cache must stay coherent for pages it already
		// holds, but writes never admit new pages into it.
		if !s.pinnedOnly || sh.lru.contains(id) {
			full := make([]byte, s.dev.PageSize())
			copy(full, buf)
			sh.lru.put(id, full)
		}
		sh.mu.Unlock()
	}
	return nil
}

// Warm pre-loads the given pages into the cache without charging device
// cost, modelling the paper's warm-cache setup where the upper levels of
// a tree are already resident after previous queries.
func (s *Store) Warm(ids []device.PageID) error {
	if s.cache == nil {
		return fmt.Errorf("pagestore: Warm on an uncached store")
	}
	for _, id := range ids {
		buf := make([]byte, s.dev.PageSize())
		if _, err := s.dev.ReadPage(id, buf); err != nil {
			return err
		}
		sh := s.cache.shardFor(id)
		sh.mu.Lock()
		sh.lru.putResident(id, buf)
		sh.mu.Unlock()
	}
	// Warming is free: it models pages already resident, so refund the
	// device cost it just charged.
	s.dev.ResetStats()
	return nil
}

// CacheStats reports cache hits and misses since creation.
func (s *Store) CacheStats() (hits, misses uint64) {
	return s.hits.Load(), s.misses.Load()
}

// Cached reports whether the store has a buffer cache.
func (s *Store) Cached() bool { return s.cache != nil }

// DropCache empties the buffer cache (keeps it enabled).
func (s *Store) DropCache() {
	if s.cache == nil {
		return
	}
	for i := range s.cache.shards {
		sh := &s.cache.shards[i]
		sh.mu.Lock()
		sh.lru.drop()
		sh.mu.Unlock()
	}
}

// minShardCapacity is the smallest per-shard page budget worth splitting
// for: below it, sharding would make eviction noticeably less LRU-like
// while saving contention no probe workload can generate.
const minShardCapacity = 64

// maxCacheShards bounds the shard count. It tracks the host's
// parallelism (device.ParallelStripes) instead of a fixed constant:
// more independent locks than runnable goroutines buys nothing, while
// a big fixed count fragments small caches' LRU for no contention win.
var maxCacheShards = device.ParallelStripes(256)

// shardedCache splits a page cache into independently locked LRU shards.
// A page's shard is a hash of its id, so tree levels laid out on
// contiguous pages spread across shards instead of striding into one.
type shardedCache struct {
	shards []cacheShard
	mask   uint64
}

type cacheShard struct {
	mu  sync.Mutex
	lru *lruCache

	// gen counts writes to pages of this shard; ReadPage uses it to
	// detect a write overlapping its uncached device read and skip
	// admission (see WritePage). Per-shard so unrelated writes don't
	// cancel admissions across the whole store.
	gen atomic.Uint64
}

// shardCount picks the largest power-of-two shard count that keeps every
// shard at least minShardCapacity pages, capped at maxCacheShards.
// Capacities below 2×minShardCapacity get a single shard — exact global
// LRU, matching the semantics small deterministic experiments rely on.
func shardCount(capacity int) int {
	n := 1
	for n*2 <= maxCacheShards && capacity/(n*2) >= minShardCapacity {
		n *= 2
	}
	return n
}

func newShardedCache(capacity int) *shardedCache {
	n := shardCount(capacity)
	perShard := (capacity + n - 1) / n
	c := &shardedCache{
		shards: make([]cacheShard, n),
		mask:   uint64(n - 1),
	}
	for i := range c.shards {
		c.shards[i].lru = newLRUCache(perShard)
	}
	return c
}

// shardFor maps a page id to its shard with a Fibonacci hash, decorrelating
// the sequential page ids of a freshly bulk-loaded level.
func (c *shardedCache) shardFor(id device.PageID) *cacheShard {
	h := uint64(id) * 0x9E3779B97F4A7C15
	return &c.shards[(h>>32)&c.mask]
}

// lruCache is a classic LRU page cache. Callers hold the shard lock.
type lruCache struct {
	capacity     int
	baseCapacity int        // configured budget; drop() restores it after putResident growth
	ll           *list.List // front = most recent; values are *cacheEntry
	index        map[device.PageID]*list.Element
}

type cacheEntry struct {
	id   device.PageID
	data []byte
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{
		capacity:     capacity,
		baseCapacity: capacity,
		ll:           list.New(),
		index:        make(map[device.PageID]*list.Element),
	}
}

func (c *lruCache) get(id device.PageID) ([]byte, bool) {
	el, ok := c.index[id]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).data, true
}

func (c *lruCache) put(id device.PageID, data []byte) {
	if el, ok := c.index[id]; ok {
		el.Value.(*cacheEntry).data = data
		c.ll.MoveToFront(el)
		return
	}
	el := c.ll.PushFront(&cacheEntry{id: id, data: data})
	c.index[id] = el
	if c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.index, oldest.Value.(*cacheEntry).id)
	}
}

// putResident inserts without ever evicting, growing the shard's budget
// if needed. Warm uses it: warmed pages model data that is already
// resident, so a hash imbalance across shards must not push part of the
// warmed set back out.
func (c *lruCache) putResident(id device.PageID, data []byte) {
	if !c.contains(id) && c.ll.Len()+1 > c.capacity {
		c.capacity = c.ll.Len() + 1
	}
	c.put(id, data)
}

func (c *lruCache) contains(id device.PageID) bool {
	_, ok := c.index[id]
	return ok
}

func (c *lruCache) drop() {
	c.ll.Init()
	c.index = make(map[device.PageID]*list.Element)
	c.capacity = c.baseCapacity
}
