// Package pagestore layers page management over a simulated device: page
// allocation, typed read/write, and an optional LRU buffer cache.
//
// The cache models the warm-cache experiments of the paper (Figures 7, 10
// and 12b): with the cache enabled and pre-warmed, repeated accesses to
// index pages above the leaves hit memory, so only leaf and data-page
// accesses reach the device. With the cache disabled the store behaves
// like the paper's O_DIRECT cold-cache runs, where every page access pays
// device cost.
package pagestore

import (
	"container/list"
	"fmt"
	"sync"

	"bftree/internal/device"
)

// Store provides cached page access on top of a device.
type Store struct {
	mu         sync.Mutex
	dev        *device.Device
	cache      *lruCache // nil when caching is disabled
	pinnedOnly bool      // cache serves only explicitly Warmed pages

	hits   uint64
	misses uint64
}

// Option configures a Store.
type Option func(*Store)

// WithCache enables an LRU buffer cache of the given capacity in pages.
// Capacity 0 disables caching (the cold-cache default).
func WithCache(capacityPages int) Option {
	return func(s *Store) {
		if capacityPages > 0 {
			s.cache = newLRUCache(capacityPages)
		}
	}
}

// WithPinnedCache enables a cache that serves only pages loaded through
// Warm: ordinary reads never populate it. This models the paper's
// warm-cache experiments, where the levels above the leaves are resident
// but "only accessing the leaf node would cause an I/O" (Section 6.2) —
// leaf and data accesses keep paying device cost on every probe.
func WithPinnedCache(capacityPages int) Option {
	return func(s *Store) {
		if capacityPages > 0 {
			s.cache = newLRUCache(capacityPages)
			s.pinnedOnly = true
		}
	}
}

// New creates a store over dev. Without options the store is uncached:
// every read and write goes to the device, as in the paper's cold-cache
// O_DIRECT configuration.
func New(dev *device.Device, opts ...Option) *Store {
	s := &Store{dev: dev}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Device returns the underlying device (for stats access).
func (s *Store) Device() *device.Device { return s.dev }

// PageSize returns the page size in bytes.
func (s *Store) PageSize() int { return s.dev.PageSize() }

// Allocate appends n zeroed pages to the device and returns the first id.
func (s *Store) Allocate(n int) device.PageID {
	return s.dev.Allocate(n)
}

// ReadPage returns the contents of page id. The returned slice is a copy
// owned by the caller. A cache hit costs no device I/O.
func (s *Store) ReadPage(id device.PageID) ([]byte, error) {
	s.mu.Lock()
	if s.cache != nil {
		if data, ok := s.cache.get(id); ok {
			s.hits++
			out := make([]byte, len(data))
			copy(out, data)
			s.mu.Unlock()
			return out, nil
		}
		s.misses++
	}
	s.mu.Unlock()

	buf := make([]byte, s.dev.PageSize())
	if _, err := s.dev.ReadPage(id, buf); err != nil {
		return nil, err
	}

	if s.cache != nil && !s.pinnedOnly {
		s.mu.Lock()
		s.cache.put(id, buf)
		s.mu.Unlock()
		out := make([]byte, len(buf))
		copy(out, buf)
		return out, nil
	}
	return buf, nil
}

// WritePage writes buf to page id, updating the cache (write-through).
func (s *Store) WritePage(id device.PageID, buf []byte) error {
	if err := s.dev.WritePage(id, buf); err != nil {
		return err
	}
	if s.cache != nil {
		s.mu.Lock()
		// A pinned-only cache must stay coherent for pages it already
		// holds, but writes never admit new pages into it.
		if !s.pinnedOnly || s.cache.contains(id) {
			full := make([]byte, s.dev.PageSize())
			copy(full, buf)
			s.cache.put(id, full)
		}
		s.mu.Unlock()
	}
	return nil
}

// Warm pre-loads the given pages into the cache without charging device
// cost, modelling the paper's warm-cache setup where the upper levels of
// a tree are already resident after previous queries.
func (s *Store) Warm(ids []device.PageID) error {
	if s.cache == nil {
		return fmt.Errorf("pagestore: Warm on an uncached store")
	}
	for _, id := range ids {
		buf := make([]byte, s.dev.PageSize())
		if _, err := s.dev.ReadPage(id, buf); err != nil {
			return err
		}
		s.mu.Lock()
		s.cache.put(id, buf)
		s.mu.Unlock()
	}
	// Warming is free: it models pages already resident, so refund the
	// device cost it just charged.
	s.dev.ResetStats()
	return nil
}

// CacheStats reports cache hits and misses since creation.
func (s *Store) CacheStats() (hits, misses uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits, s.misses
}

// Cached reports whether the store has a buffer cache.
func (s *Store) Cached() bool { return s.cache != nil }

// DropCache empties the buffer cache (keeps it enabled).
func (s *Store) DropCache() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cache != nil {
		s.cache.drop()
	}
}

// lruCache is a classic LRU page cache. Callers hold the store lock.
type lruCache struct {
	capacity int
	ll       *list.List // front = most recent; values are *cacheEntry
	index    map[device.PageID]*list.Element
}

type cacheEntry struct {
	id   device.PageID
	data []byte
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{
		capacity: capacity,
		ll:       list.New(),
		index:    make(map[device.PageID]*list.Element),
	}
}

func (c *lruCache) get(id device.PageID) ([]byte, bool) {
	el, ok := c.index[id]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).data, true
}

func (c *lruCache) put(id device.PageID, data []byte) {
	if el, ok := c.index[id]; ok {
		el.Value.(*cacheEntry).data = data
		c.ll.MoveToFront(el)
		return
	}
	el := c.ll.PushFront(&cacheEntry{id: id, data: data})
	c.index[id] = el
	if c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.index, oldest.Value.(*cacheEntry).id)
	}
}

func (c *lruCache) contains(id device.PageID) bool {
	_, ok := c.index[id]
	return ok
}

func (c *lruCache) drop() {
	c.ll.Init()
	c.index = make(map[device.PageID]*list.Element)
}
