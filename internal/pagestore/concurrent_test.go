package pagestore

import (
	"sync"
	"testing"

	"bftree/internal/device"
)

// TestShardCount pins the sizing policy: tiny caches stay single-shard
// (exact global LRU, which the deterministic experiments rely on), big
// caches split while keeping every shard at least minShardCapacity,
// capped by the GOMAXPROCS-derived shard bound.
func TestShardCount(t *testing.T) {
	cases := []struct{ capacity, want int }{
		{1, 1},
		{8, 1},
		{127, 1},
		{128, 2},
		{256, 4},
		{1 << 20, maxCacheShards},
	}
	for _, c := range cases {
		want := c.want
		if want > maxCacheShards {
			want = maxCacheShards
		}
		if got := shardCount(c.capacity); got != want {
			t.Errorf("shardCount(%d) = %d, want %d", c.capacity, got, want)
		}
	}
	sc := newShardedCache(1024)
	if len(sc.shards) != shardCount(1024) {
		t.Error("shard slice does not match shardCount")
	}
}

// TestParallelStripes pins the GOMAXPROCS derivation (shared with the
// device's page-lock stripes): a power of two, floored at 8, capped at
// the given limit.
func TestParallelStripes(t *testing.T) {
	for _, limit := range []int{8, 64, 256, 1024} {
		s := device.ParallelStripes(limit)
		if s < 8 {
			t.Errorf("ParallelStripes(%d) = %d, below the floor of 8", limit, s)
		}
		if s&(s-1) != 0 {
			t.Errorf("ParallelStripes(%d) = %d, not a power of two", limit, s)
		}
		if s > limit {
			t.Errorf("ParallelStripes(%d) = %d, runs past the cap", limit, s)
		}
	}
	if maxCacheShards != device.ParallelStripes(256) {
		t.Errorf("maxCacheShards = %d, want ParallelStripes(256) = %d",
			maxCacheShards, device.ParallelStripes(256))
	}
}

// TestShardedCacheCapacity checks the per-shard budgets sum to at least
// the requested capacity, so sharding never shrinks the cache.
func TestShardedCacheCapacity(t *testing.T) {
	for _, capacity := range []int{1, 64, 100, 129, 1000, 4096} {
		sc := newShardedCache(capacity)
		total := 0
		for i := range sc.shards {
			total += sc.shards[i].lru.capacity
		}
		if total < capacity {
			t.Errorf("capacity %d: shards hold only %d pages", capacity, total)
		}
	}
}

// TestConcurrentCachedReads hammers a cached store from many goroutines.
// Every read must return the page's content, and the lock-free counters
// must account every access: hits+misses equals the exact number of
// ReadPage calls.
func TestConcurrentCachedReads(t *testing.T) {
	const (
		pages   = 64
		workers = 8
		perW    = 400
	)
	dev := device.New(device.Memory, 256)
	dev.Allocate(pages)
	s := New(dev, WithCache(pages))
	// Stamp each page with its id for content verification.
	payload := make([]byte, 256)
	for id := 0; id < pages; id++ {
		payload[0] = byte(id)
		if err := s.WritePage(device.PageID(id), payload); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				id := device.PageID((w + i) % pages)
				got, err := s.ReadPage(id)
				if err != nil {
					t.Error(err)
					return
				}
				if got[0] != byte(id) {
					t.Errorf("page %d returned content %d", id, got[0])
					return
				}
			}
		}(w)
	}
	wg.Wait()
	hits, misses := s.CacheStats()
	if hits+misses != uint64(workers*perW) {
		t.Errorf("hits %d + misses %d != %d accesses", hits, misses, workers*perW)
	}
	if misses != 0 {
		t.Errorf("write-through warmed every page; got %d misses", misses)
	}
}

// TestConcurrentUncachedReads verifies an uncached store under
// concurrency: every access reaches the device, exactly once per call.
func TestConcurrentUncachedReads(t *testing.T) {
	const (
		pages   = 32
		workers = 8
		perW    = 250
	)
	s := newMemStore(pages)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				if _, err := s.ReadPage(device.PageID(i % pages)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got, want := s.Device().Stats().Reads(), uint64(workers*perW); got != want {
		t.Errorf("device reads = %d, want %d", got, want)
	}
}

// TestConcurrentReadersAndWriter runs one writer against many readers of
// a cached store: after the writer finishes, a fresh read must observe
// the final image (write-through + admission guard keep the cache from
// regressing to a stale pre-write copy).
func TestConcurrentReadersAndWriter(t *testing.T) {
	const pages = 16
	dev := device.New(device.Memory, 128)
	dev.Allocate(pages)
	s := New(dev, WithCache(pages))
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := s.ReadPage(device.PageID(i % pages)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	payload := make([]byte, 128)
	for round := byte(1); round <= 50; round++ {
		for id := 0; id < pages; id++ {
			payload[0] = round
			if err := s.WritePage(device.PageID(id), payload); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
	for id := 0; id < pages; id++ {
		got, err := s.ReadPage(device.PageID(id))
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != 50 {
			t.Fatalf("page %d shows round %d after all writes finished, want 50", id, got[0])
		}
	}
}

// TestShardedWarmAndDrop exercises Warm and DropCache on a capacity big
// enough to shard, ensuring per-shard bookkeeping stays coherent.
func TestShardedWarmAndDrop(t *testing.T) {
	const pages = 256
	dev := device.New(device.Memory, 64)
	dev.Allocate(pages)
	s := New(dev, WithCache(pages))
	if len(s.cache.shards) < 2 {
		t.Fatalf("capacity %d should shard, got %d shard(s)", pages, len(s.cache.shards))
	}
	ids := make([]device.PageID, pages)
	for i := range ids {
		ids[i] = device.PageID(i)
	}
	if err := s.Warm(ids); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if _, err := s.ReadPage(id); err != nil {
			t.Fatal(err)
		}
	}
	if reads := s.Device().Stats().Reads(); reads != 0 {
		t.Errorf("warmed pages charged %d device reads", reads)
	}
	s.DropCache()
	s.ReadPage(0)
	if reads := s.Device().Stats().Reads(); reads != 1 {
		t.Error("dropped sharded cache should re-read from device")
	}
}
