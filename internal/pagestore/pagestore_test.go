package pagestore

import (
	"sync"
	"testing"
	"testing/quick"

	"bftree/internal/device"
)

func newMemStore(pages int, opts ...Option) *Store {
	dev := device.New(device.Memory, 256)
	dev.Allocate(pages)
	return New(dev, opts...)
}

func TestUncachedReadWrite(t *testing.T) {
	s := newMemStore(4)
	payload := make([]byte, 256)
	payload[0] = 42
	if err := s.WritePage(1, payload); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadPage(1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 42 {
		t.Fatalf("read back %d, want 42", got[0])
	}
	if s.Cached() {
		t.Error("store without options must be uncached")
	}
	// Every read hits the device.
	s.ReadPage(1)
	s.ReadPage(1)
	if reads := s.Device().Stats().Reads(); reads != 3 {
		t.Errorf("uncached store did %d device reads, want 3", reads)
	}
}

func TestCacheHits(t *testing.T) {
	s := newMemStore(4, WithCache(4))
	payload := make([]byte, 256)
	payload[5] = 7
	if err := s.WritePage(2, payload); err != nil {
		t.Fatal(err)
	}
	before := s.Device().Stats().Reads()
	for i := 0; i < 10; i++ {
		got, err := s.ReadPage(2)
		if err != nil {
			t.Fatal(err)
		}
		if got[5] != 7 {
			t.Fatal("cache returned wrong data")
		}
	}
	if after := s.Device().Stats().Reads(); after != before {
		t.Errorf("cached reads reached the device: %d -> %d", before, after)
	}
	hits, misses := s.CacheStats()
	if hits != 10 || misses != 0 {
		t.Errorf("hits=%d misses=%d, want 10/0 (write-through warms the cache)", hits, misses)
	}
}

func TestCacheEviction(t *testing.T) {
	s := newMemStore(10, WithCache(2))
	// Touch pages 0,1,2: capacity 2 means page 0 is evicted.
	for _, id := range []device.PageID{0, 1, 2} {
		if _, err := s.ReadPage(id); err != nil {
			t.Fatal(err)
		}
	}
	before := s.Device().Stats().Reads()
	s.ReadPage(2) // hit
	s.ReadPage(1) // hit
	if got := s.Device().Stats().Reads(); got != before {
		t.Error("recently used pages should be cached")
	}
	s.ReadPage(0) // miss: evicted
	if got := s.Device().Stats().Reads(); got != before+1 {
		t.Error("evicted page should cause a device read")
	}
}

func TestLRUOrderOnGet(t *testing.T) {
	s := newMemStore(10, WithCache(2))
	s.ReadPage(0)
	s.ReadPage(1)
	s.ReadPage(0) // refresh 0; LRU victim is now 1
	s.ReadPage(2) // evicts 1
	before := s.Device().Stats().Reads()
	s.ReadPage(0)
	if got := s.Device().Stats().Reads(); got != before {
		t.Error("page 0 should have been refreshed by the get")
	}
	s.ReadPage(1)
	if got := s.Device().Stats().Reads(); got != before+1 {
		t.Error("page 1 should have been the eviction victim")
	}
}

func TestReadReturnsCopy(t *testing.T) {
	s := newMemStore(2, WithCache(2))
	payload := make([]byte, 256)
	payload[0] = 1
	s.WritePage(0, payload)
	a, _ := s.ReadPage(0)
	a[0] = 99 // mutate the caller's copy
	b, _ := s.ReadPage(0)
	if b[0] != 1 {
		t.Error("mutating a returned page must not corrupt the cache")
	}
}

func TestWarm(t *testing.T) {
	s := newMemStore(8, WithCache(8))
	payload := make([]byte, 256)
	payload[0] = 9
	s.WritePage(3, payload)
	s.DropCache()
	s.Device().ResetStats()
	if err := s.Warm([]device.PageID{3}); err != nil {
		t.Fatal(err)
	}
	if reads := s.Device().Stats().Reads(); reads != 0 {
		t.Errorf("warming must be free, charged %d reads", reads)
	}
	got, err := s.ReadPage(3)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 9 {
		t.Error("warmed page content wrong")
	}
	if reads := s.Device().Stats().Reads(); reads != 0 {
		t.Error("read of a warmed page should not touch the device")
	}
}

func TestWarmUncachedFails(t *testing.T) {
	s := newMemStore(2)
	if err := s.Warm([]device.PageID{0}); err == nil {
		t.Error("Warm on an uncached store should fail")
	}
}

func TestWarmBadPage(t *testing.T) {
	s := newMemStore(2, WithCache(2))
	if err := s.Warm([]device.PageID{100}); err == nil {
		t.Error("warming an unallocated page should fail")
	}
}

func TestDropCache(t *testing.T) {
	s := newMemStore(4, WithCache(4))
	s.ReadPage(0)
	s.DropCache()
	before := s.Device().Stats().Reads()
	s.ReadPage(0)
	if got := s.Device().Stats().Reads(); got != before+1 {
		t.Error("dropped page should re-read from device")
	}
	// DropCache on an uncached store is a no-op.
	u := newMemStore(1)
	u.DropCache()
}

func TestAllocateThroughStore(t *testing.T) {
	dev := device.New(device.Memory, 128)
	s := New(dev)
	id := s.Allocate(5)
	if id != 0 || dev.NumPages() != 5 {
		t.Errorf("allocate through store: first=%d pages=%d", id, dev.NumPages())
	}
	if s.PageSize() != 128 {
		t.Errorf("page size = %d", s.PageSize())
	}
}

func TestReadErrorsPropagate(t *testing.T) {
	s := newMemStore(1, WithCache(2))
	if _, err := s.ReadPage(9); err == nil {
		t.Error("out-of-range read should propagate the device error")
	}
	if err := s.WritePage(9, make([]byte, 256)); err == nil {
		t.Error("out-of-range write should propagate the device error")
	}
}

// Property: cached and uncached stores return identical data for any
// write/read interleaving.
func TestQuickCacheTransparency(t *testing.T) {
	cached := newMemStore(8, WithCache(3))
	plain := newMemStore(8)
	prop := func(page, val uint8) bool {
		id := device.PageID(page % 8)
		payload := make([]byte, 256)
		payload[0] = val
		if err := cached.WritePage(id, payload); err != nil {
			return false
		}
		if err := plain.WritePage(id, payload); err != nil {
			return false
		}
		a, err1 := cached.ReadPage(id)
		b, err2 := plain.ReadPage(id)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestPinnedCacheServesOnlyWarmedPages(t *testing.T) {
	s := newMemStore(8, WithPinnedCache(8))
	payload := make([]byte, 256)
	payload[0] = 5
	s.WritePage(2, payload)
	s.WritePage(3, payload)
	if err := s.Warm([]device.PageID{2}); err != nil {
		t.Fatal(err)
	}
	// Warmed page: no device I/O.
	s.ReadPage(2)
	if reads := s.Device().Stats().Reads(); reads != 0 {
		t.Errorf("warmed page charged %d reads", reads)
	}
	// Unwarmed page: pays device I/O every time (never admitted).
	s.ReadPage(3)
	s.ReadPage(3)
	if reads := s.Device().Stats().Reads(); reads != 2 {
		t.Errorf("unwarmed page reads = %d, want 2", reads)
	}
}

func TestPinnedCacheWriteCoherence(t *testing.T) {
	s := newMemStore(4, WithPinnedCache(4))
	old := make([]byte, 256)
	old[0] = 1
	s.WritePage(0, old)
	if err := s.Warm([]device.PageID{0}); err != nil {
		t.Fatal(err)
	}
	// Overwrite a warmed page: the pinned copy must update.
	updated := make([]byte, 256)
	updated[0] = 9
	s.WritePage(0, updated)
	got, err := s.ReadPage(0)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 9 {
		t.Errorf("pinned cache served stale data: %d", got[0])
	}
	if reads := s.Device().Stats().Reads(); reads != 0 {
		t.Error("warmed page should still be served from cache after write")
	}
	// Writes to unwarmed pages must not populate the cache.
	s.WritePage(1, updated)
	s.ReadPage(1)
	if reads := s.Device().Stats().Reads(); reads != 1 {
		t.Error("write admitted an unwarmed page into a pinned cache")
	}
}

func TestFreeListReuse(t *testing.T) {
	s := New(device.New(device.Memory, 512))
	first := s.Allocate(4)
	s.Free(first+1, first+2)
	if got := s.FreePages(); got != 2 {
		t.Fatalf("FreePages = %d, want 2", got)
	}
	// Single-page allocations carve from the coalesced run, lowest id
	// first.
	if got := s.Allocate(1); got != first+1 {
		t.Errorf("first recycled id = %d, want %d", got, first+1)
	}
	if got := s.Allocate(1); got != first+2 {
		t.Errorf("second recycled id = %d, want %d", got, first+2)
	}
	if got := s.FreePages(); got != 0 {
		t.Errorf("FreePages after reuse = %d, want 0", got)
	}
	// With the free list drained, allocation extends the device again.
	if got := s.Allocate(1); got != first+4 {
		t.Errorf("fresh id = %d, want %d", got, first+4)
	}
	freed, reused := s.FreeListStats()
	if freed != 2 || reused != 2 {
		t.Errorf("stats freed=%d reused=%d, want 2 and 2", freed, reused)
	}
}

func TestFreeListCoalescesRuns(t *testing.T) {
	s := New(device.New(device.Memory, 512))
	first := s.Allocate(8)
	// Free out of order and in separate calls; adjacent ids must
	// coalesce into one run.
	s.Free(first+2, first+4)
	s.Free(first + 3)
	s.Free(first+6, first+5)
	if runs, largest := s.FreeRuns(); runs != 1 || largest != 5 {
		t.Fatalf("FreeRuns = (%d, %d), want one run of 5", runs, largest)
	}
	// A multi-page allocation is served from the coalesced run instead
	// of extending the device.
	devPages := s.Device().NumPages()
	if got := s.Allocate(5); got != first+2 {
		t.Errorf("multi-page allocation = %d, want recycled %d", got, first+2)
	}
	if grown := s.Device().NumPages(); grown != devPages {
		t.Errorf("device grew from %d to %d pages despite a fitting free run", devPages, grown)
	}
	if got := s.FreePages(); got != 0 {
		t.Errorf("FreePages after run reuse = %d, want 0", got)
	}
}

func TestFreeListBestFit(t *testing.T) {
	s := New(device.New(device.Memory, 512))
	first := s.Allocate(16)
	s.Free(first, first+1, first+2, first+3, first+4) // run of 5
	s.Free(first+8, first+9)                          // run of 2
	// Best fit: the 2-run serves a 2-page allocation, leaving the 5-run
	// intact for a later large request.
	if got := s.Allocate(2); got != first+8 {
		t.Errorf("best-fit allocation = %d, want %d", got, first+8)
	}
	if got := s.Allocate(5); got != first {
		t.Errorf("large allocation = %d, want %d", got, first)
	}
	// A request larger than any run extends the device.
	devPages := s.Device().NumPages()
	s.Free(first+12, first+13)
	if got := s.Allocate(3); uint64(got) != devPages {
		t.Errorf("oversized allocation = %d, want fresh %d", got, devPages)
	}
	if got := s.FreePages(); got != 2 {
		t.Errorf("oversized allocation consumed undersized run: %d left, want 2", got)
	}
}

func TestFreeListConcurrent(t *testing.T) {
	s := New(device.New(device.Memory, 512))
	base := s.Allocate(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s.Free(base + device.PageID(w*8+i%8))
				s.Allocate(1)
			}
		}(w)
	}
	wg.Wait()
	freed, reused := s.FreeListStats()
	if freed != 800 {
		t.Errorf("freed = %d, want 800", freed)
	}
	if reused == 0 {
		t.Error("no concurrent reuse observed")
	}
}
