// Package model implements the analytical model of Section 5 of the
// paper: closed-form size and probe-cost formulas for B+-Trees
// (Equations 2-4, 9, 12), BF-Trees (Equations 5-8, 10, 13), the
// compressed B+-Tree, and the SILT and FD-Tree comparators of Figure 4,
// plus the insert-drift formula of Equation 14 behind Figure 14.
package model

import (
	"errors"
	"fmt"
	"math"

	"bftree/internal/bloom"
)

// ErrParams reports out-of-domain model parameters.
var ErrParams = errors.New("model: invalid parameters")

// Params are the model inputs of Table 1. I/O costs are unitless
// relative weights; the paper's Figure 4 uses idxIO=1, dataIO=50,
// seqDtIO=5 (index on SSD, data on HDD).
type Params struct {
	PageSize  int     // pagesize, bytes (data and index)
	TupleSize int     // fixed tuple size, bytes
	NoTuples  float64 // relation size in tuples
	AvgCard   float64 // average occurrences of each indexed value
	KeySize   int     // indexed value size, bytes
	PtrSize   int     // pointer size, bytes
	FPP       float64 // BF-Tree false positive probability
	IdxIO     float64 // cost of one random index page read
	DataIO    float64 // cost of one random data page read
	SeqDtIO   float64 // cost of one sequential data page read
}

// Figure4Params returns the configuration of the paper's Figure 4: 4 KB
// pages, 256-byte tuples, 32-byte keys, 8-byte pointers, a 1 GB relation,
// index on SSD and data on HDD.
func Figure4Params(fpp float64) Params {
	return Params{
		PageSize:  4096,
		TupleSize: 256,
		NoTuples:  float64(1<<30) / 256,
		AvgCard:   1,
		KeySize:   32,
		PtrSize:   8,
		FPP:       fpp,
		IdxIO:     1,
		DataIO:    50,
		SeqDtIO:   5,
	}
}

// Validate checks the parameter domain.
func (p Params) Validate() error {
	if p.PageSize <= 0 || p.TupleSize <= 0 || p.NoTuples <= 0 ||
		p.AvgCard <= 0 || p.KeySize <= 0 || p.PtrSize <= 0 {
		return fmt.Errorf("%w: %+v", ErrParams, p)
	}
	if p.FPP <= 0 || p.FPP >= 1 {
		return fmt.Errorf("%w: fpp %g", ErrParams, p.FPP)
	}
	return nil
}

// Fanout is Equation 2: pagesize / (ptrsize + keysize).
func (p Params) Fanout() float64 {
	return float64(p.PageSize) / float64(p.PtrSize+p.KeySize)
}

// BPLeaves is Equation 3: leaves of the B+-Tree.
func (p Params) BPLeaves() float64 {
	perTuple := float64(p.KeySize)/p.AvgCard + float64(p.PtrSize)
	return p.NoTuples * perTuple / float64(p.PageSize)
}

// BPHeight is Equation 4.
func (p Params) BPHeight() float64 {
	return math.Ceil(math.Log(p.BPLeaves())/math.Log(p.Fanout())) + 1
}

// BPSize is Equation 9, in bytes.
func (p Params) BPSize() float64 {
	l := p.BPLeaves()
	return float64(p.PageSize) * (l + l/p.Fanout())
}

// BFKeysPerPage is Equation 5: distinct keys one BF-leaf indexes.
func (p Params) BFKeysPerPage() float64 {
	return -float64(p.PageSize) * 8 * bloom.Ln2Squared / math.Log(p.FPP)
}

// BFLeaves is Equation 6.
func (p Params) BFLeaves() float64 {
	return p.NoTuples / (p.AvgCard * p.BFKeysPerPage())
}

// BFHeight is Equation 7.
func (p Params) BFHeight() float64 {
	l := p.BFLeaves()
	if l < 1 {
		l = 1
	}
	return math.Ceil(math.Log(l)/math.Log(p.Fanout())) + 1
}

// BFPagesLeaf is Equation 8: data pages covered by one BF-leaf.
func (p Params) BFPagesLeaf() float64 {
	return p.BFKeysPerPage() * p.AvgCard * float64(p.TupleSize) / float64(p.PageSize)
}

// BFSize is Equation 10, in bytes.
func (p Params) BFSize() float64 {
	l := p.BFLeaves()
	return float64(p.PageSize) * (l + l/p.Fanout())
}

// MatchingPages is Equation 11: pages holding the tuples of one key.
func (p Params) MatchingPages() float64 {
	return math.Ceil(p.AvgCard * float64(p.TupleSize) / float64(p.PageSize))
}

// BPCost is Equation 12: the probe cost of a B+-Tree.
func (p Params) BPCost() float64 {
	return p.BPHeight()*p.IdxIO + p.MatchingPages()*p.DataIO
}

// BFCost is Equation 13 (first form): index descent, matching-page
// reads, and the expected sequential cost of false-positively flagged
// pages within the leaf's page range.
func (p Params) BFCost() float64 {
	return p.BFHeight()*p.IdxIO +
		p.MatchingPages()*p.DataIO +
		p.FPP*p.BFPagesLeaf()*p.SeqDtIO
}

// CompressedBPSize estimates the footprint of a prefix-compressed
// B+-Tree (Bayer & Unterauer): both the key (via prefix truncation) and
// the pointer (via dense in-page offsets) shrink, leaving entryBytes per
// tuple. With 4 bytes per entry against the 40-byte vanilla entries of
// Figure 4 this reproduces the ≈10 % relative size the paper cites.
func (p Params) CompressedBPSize(entryBytes float64) float64 {
	leaves := p.NoTuples * entryBytes / float64(p.PageSize)
	fanout := float64(p.PageSize) / entryBytes
	return float64(p.PageSize) * (leaves + leaves/fanout)
}

// SILT model. The paper does not run SILT; it plugs the SILT paper's
// published constants into this model (Figure 4): the index is ≈28 % of
// the B+-Tree, a probe costs one data read when the trie is cached
// (≈5 % faster than B+-Tree) and trie loading adds ≈32 % when it is not.

// SILTBytesPerKey is the modeled per-key index footprint that reproduces
// the 28 % relative size for the Figure 4 configuration.
const SILTBytesPerKey = 11.2

// SILTSize returns the modeled SILT index size in bytes.
func (p Params) SILTSize() float64 {
	return p.NoTuples / p.AvgCard * SILTBytesPerKey
}

// SILTTriePages is the modeled number of index pages read when the SILT
// trie must be loaded from the device.
const SILTTriePages = 20

// SILTCostCached returns the probe cost with the trie memory-resident.
func (p Params) SILTCostCached() float64 {
	return p.MatchingPages() * p.DataIO
}

// SILTCostUncached returns the probe cost when the trie is loaded.
func (p Params) SILTCostUncached() float64 {
	return SILTTriePages*p.IdxIO + p.MatchingPages()*p.DataIO
}

// FD-Tree model (Li et al.): a memory-resident head tree plus
// log_ratio(leaves) on-device levels, one page read per level; the
// structure stores one entry per tuple, so its size matches the vanilla
// B+-Tree, as the paper states.

// FDLevels returns the number of on-device levels at the given size
// ratio.
func (p Params) FDLevels(ratio float64) float64 {
	if ratio < 2 {
		ratio = 2
	}
	return math.Ceil(math.Log(p.BPLeaves()) / math.Log(ratio))
}

// FDCost returns the probe cost at the given level ratio.
func (p Params) FDCost(ratio float64) float64 {
	return p.FDLevels(ratio)*p.IdxIO + p.MatchingPages()*p.DataIO
}

// FDCostOptimal picks the ratio in [2, 256] minimizing FDCost — the
// paper lets FD-Tree choose its optimal k.
func (p Params) FDCostOptimal() float64 {
	best := math.Inf(1)
	for r := 2.0; r <= 256; r *= 2 {
		if c := p.FDCost(r); c < best {
			best = c
		}
	}
	return best
}

// FDSize returns the modeled FD-Tree size (same as the B+-Tree).
func (p Params) FDSize() float64 { return p.BPSize() }

// DriftedFPP re-exports Equation 14 for Figure 14.
func DriftedFPP(fpp, insertRatio float64) float64 {
	return bloom.DriftedFPP(fpp, insertRatio)
}

// Figure4Row is one x-position of Figures 4(a) and 4(b): every series
// normalized to the B+-Tree.
type Figure4Row struct {
	FPP              float64
	BFCostRel        float64 // Fig 4a: BF-Tree response time / B+-Tree
	SILTCachedRel    float64
	SILTUncachedRel  float64
	FDTreeRel        float64
	BFSizeRel        float64 // Fig 4b: BF-Tree size / B+-Tree
	CompressedBPRel  float64
	SILTSizeRel      float64
	FDTreeSizeRel    float64
	BFKeysPerLeaf    float64
	BFHeightAbsolute float64
}

// Figure4 evaluates the model across a sweep of false positive
// probabilities using the paper's Figure 4 configuration.
func Figure4(fpps []float64) []Figure4Row {
	out := make([]Figure4Row, 0, len(fpps))
	for _, fpp := range fpps {
		p := Figure4Params(fpp)
		bp := p.BPCost()
		bpSize := p.BPSize()
		out = append(out, Figure4Row{
			FPP:              fpp,
			BFCostRel:        p.BFCost() / bp,
			SILTCachedRel:    p.SILTCostCached() / bp,
			SILTUncachedRel:  p.SILTCostUncached() / bp,
			FDTreeRel:        p.FDCostOptimal() / bp,
			BFSizeRel:        p.BFSize() / bpSize,
			CompressedBPRel:  p.CompressedBPSize(4) / bpSize,
			SILTSizeRel:      p.SILTSize() / bpSize,
			FDTreeSizeRel:    p.FDSize() / bpSize,
			BFKeysPerLeaf:    p.BFKeysPerPage(),
			BFHeightAbsolute: p.BFHeight(),
		})
	}
	return out
}

// Figure14Row is one x-position of Figure 14: effective fpp after
// inserting insertRatio·n extra keys, for each initial fpp.
type Figure14Row struct {
	InsertRatio float64
	NewFPP      map[float64]float64 // initial fpp → effective fpp
}

// Figure14 evaluates Equation 14 across insert ratios for the paper's
// three initial probabilities (0.01 %, 0.1 %, 1 %).
func Figure14(ratios []float64) []Figure14Row {
	initial := []float64{1e-4, 1e-3, 1e-2}
	out := make([]Figure14Row, 0, len(ratios))
	for _, r := range ratios {
		row := Figure14Row{InsertRatio: r, NewFPP: make(map[float64]float64, 3)}
		for _, f := range initial {
			row.NewFPP[f] = DriftedFPP(f, r)
		}
		out = append(out, row)
	}
	return out
}
