package model

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	if err := Figure4Params(0.01).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Figure4Params(0.01)
	bad.PageSize = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero page size accepted")
	}
	bad = Figure4Params(0)
	if err := bad.Validate(); err == nil {
		t.Error("fpp 0 accepted")
	}
}

func TestEquation2Fanout(t *testing.T) {
	p := Figure4Params(0.01)
	// 4096/(8+32) = 102.4
	if got := p.Fanout(); math.Abs(got-102.4) > 0.01 {
		t.Errorf("fanout = %g, want 102.4", got)
	}
}

func TestEquations3And4(t *testing.T) {
	p := Figure4Params(0.01)
	// notuples = 2^30/256 = 4194304; leaves = 4194304·(32+8)/4096 = 40960.
	if got := p.BPLeaves(); math.Abs(got-40960) > 1 {
		t.Errorf("BPleaves = %g, want 40960", got)
	}
	// log_102.4(40960) = 2.29 → ceil+1 = 4.
	if got := p.BPHeight(); got != 4 {
		t.Errorf("BPh = %g, want 4", got)
	}
}

func TestEquation5(t *testing.T) {
	p := Figure4Params(1e-3)
	// -4096·8·ln²2/ln(1e-3) = 32768·0.48045/6.9078 ≈ 2279.
	if got := p.BFKeysPerPage(); math.Abs(got-2279) > 5 {
		t.Errorf("BFkeysperpage = %g, want ≈2279", got)
	}
}

func TestEquations6Through8(t *testing.T) {
	p := Figure4Params(1e-3)
	leaves := p.BFLeaves()
	want := p.NoTuples / (p.AvgCard * p.BFKeysPerPage())
	if math.Abs(leaves-want) > 1e-9 {
		t.Errorf("BFleaves = %g, want %g", leaves, want)
	}
	if got := p.BFHeight(); got != 3 {
		t.Errorf("BFh = %g, want 3 at fpp 1e-3", got)
	}
	// Equation 8: 2279·1·256/4096 ≈ 142 pages per leaf.
	if got := p.BFPagesLeaf(); math.Abs(got-142) > 3 {
		t.Errorf("BFpagesleaf = %g, want ≈142", got)
	}
}

func TestSizesShrink(t *testing.T) {
	p := Figure4Params(1e-3)
	if p.BFSize() >= p.BPSize() {
		t.Error("BF-Tree must be smaller than B+-Tree")
	}
	// Tighter fpp → larger BF-Tree.
	tight := Figure4Params(1e-12)
	if tight.BFSize() <= p.BFSize() {
		t.Error("tighter fpp must grow the BF-Tree")
	}
	if p.CompressedBPSize(4) >= p.BPSize() {
		t.Error("compressed B+-Tree must be smaller")
	}
}

func TestFigure4aShape(t *testing.T) {
	rows := Figure4([]float64{0.2, 0.01, 1e-3, 1e-6, 1e-8, 1e-12})
	// Paper: BF-Tree beats B+-Tree for fpp <= 1e-3.
	for _, r := range rows {
		if r.FPP <= 1e-3 && r.BFCostRel > 1.0 {
			t.Errorf("fpp=%g: BF cost rel %g, paper says <=1 for fpp<=1e-3", r.FPP, r.BFCostRel)
		}
	}
	// SILT cached ≈5 % faster; uncached ≈32 % slower.
	r := rows[1]
	if r.SILTCachedRel > 0.97 || r.SILTCachedRel < 0.90 {
		t.Errorf("SILT cached rel = %g, want ≈0.95", r.SILTCachedRel)
	}
	if r.SILTUncachedRel < 1.25 || r.SILTUncachedRel > 1.40 {
		t.Errorf("SILT uncached rel = %g, want ≈1.32", r.SILTUncachedRel)
	}
	// FD-Tree with optimal k is competitive with BF-Tree (within a few
	// percent of B+-Tree).
	if r.FDTreeRel > 1.05 {
		t.Errorf("FD-Tree rel = %g, should be near 1", r.FDTreeRel)
	}
}

func TestFigure4bShape(t *testing.T) {
	rows := Figure4([]float64{1e-3, 1e-8})
	for _, r := range rows {
		// SILT ≈28 % of B+-Tree.
		if r.SILTSizeRel < 0.25 || r.SILTSizeRel > 0.31 {
			t.Errorf("SILT size rel = %g, want ≈0.28", r.SILTSizeRel)
		}
		// FD-Tree same size as B+-Tree.
		if math.Abs(r.FDTreeSizeRel-1) > 1e-9 {
			t.Errorf("FD size rel = %g, want 1", r.FDTreeSizeRel)
		}
		// Compressed ≈10 %.
		if r.CompressedBPRel < 0.05 || r.CompressedBPRel > 0.15 {
			t.Errorf("compressed rel = %g, want ≈0.10", r.CompressedBPRel)
		}
	}
	// Paper: BF-Tree size matches the compressed B+-Tree near fpp=1e-8.
	r8 := rows[1]
	if r8.BFSizeRel < r8.CompressedBPRel/2 || r8.BFSizeRel > r8.CompressedBPRel*2 {
		t.Errorf("at fpp=1e-8 BF size rel %g should be near compressed %g",
			r8.BFSizeRel, r8.CompressedBPRel)
	}
	// And far smaller at high fpp.
	loose := Figure4([]float64{0.1})[0]
	if loose.BFSizeRel > 0.02 {
		t.Errorf("at fpp=0.1 BF size rel = %g, want <2%%", loose.BFSizeRel)
	}
}

func TestBFCostComposition(t *testing.T) {
	p := Figure4Params(0.01)
	want := p.BFHeight()*p.IdxIO + p.MatchingPages()*p.DataIO + p.FPP*p.BFPagesLeaf()*p.SeqDtIO
	if got := p.BFCost(); math.Abs(got-want) > 1e-9 {
		t.Errorf("BFCost = %g, want %g", got, want)
	}
}

func TestEquation11MatchingPages(t *testing.T) {
	p := Figure4Params(0.01)
	if got := p.MatchingPages(); got != 1 {
		t.Errorf("mP = %g, want 1 for avgcard 1", got)
	}
	p.AvgCard = 2400
	p.TupleSize = 200
	// 2400·200/4096 = 117.2 → 118.
	if got := p.MatchingPages(); got != 118 {
		t.Errorf("mP = %g, want 118 for the TPCH config", got)
	}
}

func TestFDLevelsMonotone(t *testing.T) {
	p := Figure4Params(0.01)
	if p.FDLevels(4) < p.FDLevels(64) {
		t.Error("larger ratio must not increase level count")
	}
	if p.FDLevels(1) != p.FDLevels(2) {
		t.Error("ratio below 2 should clamp")
	}
	if p.FDCostOptimal() > p.FDCost(2) {
		t.Error("optimal cost cannot exceed a specific ratio's cost")
	}
}

func TestFigure14(t *testing.T) {
	rows := Figure14([]float64{0, 0.01, 0.05, 0.10, 0.12, 1, 6})
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Paper's example: fpp=0.01 %, +1 % inserts → ≈0.011 %.
	r := rows[1]
	got := r.NewFPP[1e-4]
	if got < 1.05e-4 || got > 1.2e-4 {
		t.Errorf("drift(1e-4, 1%%) = %g, want ≈1.1e-4", got)
	}
	// Monotone in insert ratio for each initial fpp.
	for _, f := range []float64{1e-4, 1e-3, 1e-2} {
		prev := 0.0
		for _, row := range rows {
			if row.NewFPP[f] < prev {
				t.Errorf("drift not monotone for %g", f)
			}
			prev = row.NewFPP[f]
		}
	}
	// Long-run convergence towards 1.
	if rows[6].NewFPP[1e-2] < 0.4 {
		t.Errorf("drift(1e-2, 600%%) = %g, should head towards 1", rows[6].NewFPP[1e-2])
	}
}

// Property: for any valid fpp, the BF-Tree is never larger than the
// B+-Tree in the Figure 4 configuration, and cost decreases as fpp
// decreases past the crossover.
func TestQuickBFSizeAlwaysSmaller(t *testing.T) {
	prop := func(raw uint16) bool {
		exp := 1 + int(raw%14) // fpp from 1e-1 to 1e-14
		fpp := math.Pow(10, -float64(exp))
		p := Figure4Params(fpp)
		return p.BFSize() < p.BPSize()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
