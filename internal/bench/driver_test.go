package bench

import (
	"fmt"
	"reflect"
	"testing"

	"bftree/index"
	"bftree/internal/device"
	"bftree/internal/pagestore"
	"bftree/internal/workload"
)

// driverTestFixture builds a small synthetic PK fixture shared by the
// driver tests (the relation is read-only under mixed driving; each
// test builds its own index over it).
func driverTestFixture(t *testing.T) *mixedFixture {
	t.Helper()
	fx, err := mixedSyntheticFixture(Scale{SyntheticTuples: 4096, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return fx
}

// driverTestIndex builds one backend over the fixture on a fresh store.
func driverTestIndex(t *testing.T, fx *mixedFixture, name string) index.Index {
	t.Helper()
	ix, err := index.New(name, pagestore.New(device.New(device.Memory, PageSize)),
		fx.file, fx.fieldIdx, fx.opts)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

// TestDriverGoldenModel drives every preset against every backend with
// one worker and replays the executed op sequence against a brute-force
// model: a key the model holds live must be found, a key it deleted
// must be absent on exact backends (approximate backends may still
// surface the physically present tuple — their deletes drop the filter
// claim, not the data page). The redistribution the driver applied must
// match what the mix declares for the target's capabilities.
func TestDriverGoldenModel(t *testing.T) {
	fx := driverTestFixture(t)
	for _, name := range index.Backends() {
		backend, ok := index.Lookup(name)
		if !ok {
			t.Fatalf("registry lost backend %q", name)
		}
		for _, preset := range workload.Presets() {
			t.Run(fmt.Sprintf("%s/%s", name, preset.Name), func(t *testing.T) {
				ix := driverTestIndex(t, fx, name)
				defer ix.Close()

				// live holds the model state of every touched key; keys it
				// has never seen are live from the bulk load.
				live := make(map[uint64]bool)
				const ops = 400
				res, err := DriveMix(ix, MixConfig{
					Mix:            preset,
					Dist:           workload.DistUniform,
					NumKeys:        fx.numKeys,
					Seed:           11,
					Workers:        1,
					Ops:            ops,
					RefOf:          fx.refOf,
					UseSearchFirst: true,
					OnOp: func(_, _ int, op workload.Op) {
						switch op.Kind {
						case workload.OpInsert:
							live[op.Key] = true
						case workload.OpDelete:
							live[op.Key] = false
						}
					},
				})
				if err != nil {
					t.Fatal(err)
				}
				if res.Ops != ops {
					t.Fatalf("measured %d ops, want %d", res.Ops, ops)
				}
				var kindOps int
				for k := workload.OpKind(0); k < workload.NumOpKinds; k++ {
					kindOps += res.Kinds[k].Ops
				}
				if kindOps != ops {
					t.Fatalf("per-kind ops sum to %d, want %d", kindOps, ops)
				}
				_, wantMoves := preset.Redistribute(targetCaps(ix))
				if !reflect.DeepEqual(res.Moves, wantMoves) {
					t.Fatalf("driver moves %v, want %v", res.Moves, wantMoves)
				}

				for k := uint64(0); k < fx.numKeys; k++ {
					r, err := ix.SearchFirst(k)
					if err != nil {
						t.Fatal(err)
					}
					state, seen := live[k]
					switch {
					case !seen || state:
						if len(r.Tuples) == 0 {
							t.Fatalf("key %d live in model but not found", k)
						}
					case !backend.Approximate:
						if len(r.Tuples) != 0 {
							t.Fatalf("key %d deleted in model but %s found %d tuples",
								k, name, len(r.Tuples))
						}
					}
				}
			})
		}
	}
}

// TestDriverDeterminism runs the same seeded mix twice against fresh
// indexes and requires byte-identical per-worker op sequences — the
// reproducibility contract of the splitmix64 sub-streams.
func TestDriverDeterminism(t *testing.T) {
	fx := driverTestFixture(t)
	const workers = 4
	run := func() [][]workload.Op {
		ix := driverTestIndex(t, fx, "bftree")
		defer ix.Close()
		seqs := make([][]workload.Op, workers)
		_, err := DriveMix(ix, MixConfig{
			Mix:     workload.OLTPMix(),
			Dist:    workload.DistZipf,
			Skew:    1.3,
			NumKeys: fx.numKeys,
			Seed:    99,
			Workers: workers,
			Ops:     256,
			RefOf:   fx.refOf,
			OnOp: func(w, _ int, op workload.Op) {
				seqs[w] = append(seqs[w], op)
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return seqs
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two runs with identical (seed, mix, workers) drew different op sequences")
	}
	if reflect.DeepEqual(a[0], a[1]) {
		t.Fatal("workers 0 and 1 drew identical sequences; sub-streams not split")
	}
}

// TestDriverConcurrentMixed drives the oltp preset with four workers
// against every backend — concurrent mixed writers and readers on
// backends with the ConcurrentWriters trait, serialized writers behind
// overlapping readers on the rest. Run with -race (the `make mixed`
// target); correctness here is "no data race, no error, full budget".
func TestDriverConcurrentMixed(t *testing.T) {
	fx := driverTestFixture(t)
	for _, name := range index.Backends() {
		backend, _ := index.Lookup(name)
		t.Run(name, func(t *testing.T) {
			ix := driverTestIndex(t, fx, name)
			defer ix.Close()
			const ops = 256
			res, err := DriveMix(ix, MixConfig{
				Mix:             workload.OLTPMix(),
				Dist:            workload.DistUniform,
				NumKeys:         fx.numKeys,
				Seed:            5,
				Workers:         4,
				Ops:             ops,
				Warmup:          4,
				RefOf:           fx.refOf,
				SerializeWrites: !backend.ConcurrentWriters,
				UseSearchFirst:  true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Ops != ops {
				t.Fatalf("measured %d ops, want %d", res.Ops, ops)
			}
			if res.Throughput <= 0 {
				t.Fatal("throughput not positive")
			}
		})
	}
}
