package bench

import (
	"testing"
)

// stallScaleForTest mirrors make bench-json's CI scale: a 65536-key
// tree (a few dozen leaves) under ~260k churn ops per variant.
func stallScaleForTest() Scale {
	s := DefaultScale()
	s.SyntheticTuples = 30000
	return s
}

// TestCompactionStallIncrementalCutsMaxStall is the acceptance gate of
// the incremental-compaction PR: against the same churn mix, the
// incremental variant must cut the longest single writer stall (the
// maintainer's exclusive-lock hold) at least 3x versus the whole-tree
// Rebuild, while holding the effective-fpp ceiling at the same
// threshold line, converging through partial rebuilds alone, and
// keeping the page economy balanced.
func TestCompactionStallIncrementalCutsMaxStall(t *testing.T) {
	scale := stallScaleForTest()
	batch, err := stallBatch(scale)
	if err != nil {
		t.Fatal(err)
	}
	full, err := CompactionStallRun(scale, 0)
	if err != nil {
		t.Fatal(err)
	}
	incr, err := CompactionStallRun(scale, batch)
	if err != nil {
		t.Fatal(err)
	}

	if full.Stats.Compactions == 0 {
		t.Fatalf("full variant never compacted; fixture too small to drift: %+v", full.Stats)
	}
	if incr.Stats.IncrementalPasses == 0 || incr.Stats.LeavesCompacted == 0 {
		t.Fatalf("incremental variant never compacted incrementally: %+v", incr.Stats)
	}
	if incr.Stats.Compactions != 0 {
		t.Errorf("incremental variant fell back to %d whole-tree rebuilds", incr.Stats.Compactions)
	}

	// The headline: the longest exclusive hold shrinks at least 3x.
	if incr.Stats.CompactionMaxStall <= 0 || full.Stats.CompactionMaxStall <= 0 {
		t.Fatalf("stall not recorded: full %v incr %v",
			full.Stats.CompactionMaxStall, incr.Stats.CompactionMaxStall)
	}
	ratio := float64(full.Stats.CompactionMaxStall) / float64(incr.Stats.CompactionMaxStall)
	if ratio < 3 {
		t.Errorf("max stall ratio %.2fx < 3x: full %v vs incremental %v",
			ratio, full.Stats.CompactionMaxStall, incr.Stats.CompactionMaxStall)
	}

	// Both variants hold the fpp line. The maintainer detects a
	// crossing up to one reclaim interval late and incremental
	// convergence spans several passes, so allow the same bounded
	// overshoot the churn test allows.
	for _, r := range []*CompactionStallResult{full, incr} {
		if r.MaxFPP >= r.Threshold+0.05 {
			t.Errorf("%s: max effective fpp %.4f overshot threshold %.3f by more than 0.05",
				r.Mode, r.MaxFPP, r.Threshold)
		}
		if !r.EconomyBalanced() {
			t.Errorf("%s: page economy leaks: live %d + free %d + limbo %d != device %d",
				r.Mode, r.LiveNodes, r.FreePages, r.LimboAtEnd, r.DevicePages)
		}
		if r.LimboAtEnd != 0 {
			t.Errorf("%s: %d pages stuck in limbo at quiescence", r.Mode, r.LimboAtEnd)
		}
	}
}

// TestCompactionStallExperimentRegistered runs the registered
// experiment end-to-end and checks the rendered comparison table.
func TestCompactionStallExperimentRegistered(t *testing.T) {
	if testing.Short() {
		t.Skip("compaction-stall runs both variants; skipped in -short")
	}
	tbl, err := Run("compaction-stall", stallScaleForTest())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatal("compaction-stall produced no rows")
	}
	found := false
	for _, row := range tbl.Rows {
		if row[0] == "max writer stall" {
			found = true
			if len(row) != 3 || row[1] == "" || row[2] == "" {
				t.Errorf("max-stall row malformed: %v", row)
			}
		}
	}
	if !found {
		t.Error("no max-writer-stall row in the table")
	}
}
