package bench

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"bftree/index"
	"bftree/internal/device"
)

// ScanStreamLimits is the LIMIT-k sweep of the scan-stream experiment;
// 0 is the full drain.
var ScanStreamLimits = []int{1, 10, 100}

// scanStreamOps is how many ranges each mode scans; enough for stable
// quantiles while keeping the harness interactive.
const scanStreamOps = 32

// ScanStreamResult is one mode of the scan-stream experiment: the
// materialized RangeScan against the streaming cursor at several LIMITs
// over the same ~10%-selectivity ranges.
type ScanStreamResult struct {
	Backend string
	// Mode is "materialized", "stream" (drained cursor) or "limit-k".
	Mode  string
	Limit int // the k of limit modes, 0 otherwise
	Ops   int
	// PagesPerOp is index+data pages read per operation (ProbeStats);
	// TuplesPerOp the tuples returned per operation.
	PagesPerOp  float64
	TuplesPerOp float64
	// FirstTuple is the average virtual time until the first tuple is
	// available — the end of the call for the materialized scan, the
	// first Next for streams.
	FirstTuple time.Duration
	Throughput float64 // operations per virtual second
	P50, P99   time.Duration
}

// latencyQuantiles sorts (destructively) and reads the p50/p99 of a
// latency sample.
func latencyQuantiles(lats []time.Duration) (p50, p99 time.Duration) {
	if len(lats) == 0 {
		return 0, 0
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	q := func(f float64) time.Duration { return lats[int(f*float64(len(lats)-1))] }
	return q(0.50), q(0.99)
}

// ScanStreamSweep builds the ATT1 index of the selected backend on the
// SSD/SSD configuration and runs the same ~10%-selectivity ranges
// through the materialized RangeScan and the streaming cursor at each
// LIMIT. The streaming rows show what the pull API buys: a LIMIT-k
// consumer pays for the pages behind its k tuples, not the whole range.
func ScanStreamSweep(scale Scale) ([]*ScanStreamResult, error) {
	cfg := StorageConfig{Name: "SSD/SSD", Index: device.SSD, Data: device.SSD}
	env, syn, err := syntheticEnv(cfg, scale, 0)
	if err != nil {
		return nil, err
	}
	backend := scale.IndexBackend()
	ix, err := BuildIndex(backend, env, syn.File, 1, pointOpts(1, 1e-3))
	if err != nil {
		return nil, err
	}
	defer ix.Close()
	s, ok := ix.(index.Scanner)
	if !ok {
		return nil, fmt.Errorf("bench: backend %q does not implement Scanner", backend)
	}

	// ~10% selectivity of the ATT1 key domain, starts spread by seed.
	maxKey := syn.ATT1Keys[len(syn.ATT1Keys)-1]
	span := maxKey / 10
	if span == 0 {
		span = 1
	}
	rng := rand.New(rand.NewSource(scale.Seed + 7))
	ranges := make([][2]uint64, scanStreamOps)
	for i := range ranges {
		lo := uint64(rng.Int63n(int64(maxKey - span + 1)))
		ranges[i] = [2]uint64{lo, lo + span}
	}

	type mode struct {
		name  string
		limit int // -1 materialized, 0 full drain, k>0 LIMIT-k
	}
	modes := []mode{{"materialized", -1}, {"stream", 0}}
	for _, k := range ScanStreamLimits {
		modes = append(modes, mode{fmt.Sprintf("limit-%d", k), k})
	}

	var out []*ScanStreamResult
	for _, m := range modes {
		env.ResetIO()
		var pages, tuples uint64
		var firstTotal, elapsedTotal time.Duration
		lats := make([]time.Duration, 0, len(ranges))
		for _, r := range ranges {
			e0 := env.Elapsed()
			var st index.ProbeStats
			var first, lat time.Duration
			if m.limit < 0 {
				res, err := ix.RangeScan(r[0], r[1])
				if err != nil {
					return nil, err
				}
				st = res.Stats
				tuples += uint64(len(res.Tuples))
				lat = env.Elapsed() - e0
				first = lat
			} else {
				it, err := s.Scan(r[0], r[1])
				if err != nil {
					return nil, err
				}
				n := 0
				for it.Next() {
					n++
					if n == 1 {
						first = env.Elapsed() - e0
					}
					if m.limit > 0 && n >= m.limit {
						break
					}
				}
				if err := it.Err(); err != nil {
					it.Close()
					return nil, err
				}
				st = it.Stats()
				if err := it.Close(); err != nil {
					return nil, err
				}
				tuples += uint64(n)
				lat = env.Elapsed() - e0
				if n == 0 {
					first = lat
				}
			}
			pages += uint64(st.IndexReads + st.DataPagesRead)
			firstTotal += first
			elapsedTotal += lat
			lats = append(lats, lat)
		}
		p50, p99 := latencyQuantiles(lats)
		ops := len(ranges)
		throughput := 0.0
		if elapsedTotal > 0 {
			throughput = float64(ops) / elapsedTotal.Seconds()
		}
		out = append(out, &ScanStreamResult{
			Backend:     backend,
			Mode:        m.name,
			Limit:       max(m.limit, 0),
			Ops:         ops,
			PagesPerOp:  float64(pages) / float64(ops),
			TuplesPerOp: float64(tuples) / float64(ops),
			FirstTuple:  firstTotal / time.Duration(ops),
			Throughput:  throughput,
			P50:         p50,
			P99:         p99,
		})
	}
	return out, nil
}

// RunScanStream is the `scan-stream` experiment: materialized RangeScan
// versus the streaming cursor at LIMIT 1/10/100 over ~10%-selectivity
// ATT1 ranges on SSD/SSD. With -json it also writes BENCH_scan.json.
func RunScanStream(scale Scale) (*Table, error) {
	results, err := ScanStreamSweep(scale)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  fmt.Sprintf("Streaming scans: %s on SSD/SSD, ~10%% selectivity ranges", results[0].Backend),
		Header: []string{"mode", "ops", "pages/op", "tuples/op", "first tuple", "p50", "p99", "ops/s(virt)"},
		Notes: []string{
			"pages/op counts index + data pages (ProbeStats); a LIMIT-k stream",
			"pays only for the pages behind its k tuples, while the materialized",
			"scan reads the whole range before the first tuple is available",
		},
	}
	var records []Record
	for _, r := range results {
		t.AddRow(
			r.Mode,
			fmt.Sprint(r.Ops),
			fmtF(r.PagesPerOp),
			fmtF(r.TuplesPerOp),
			r.FirstTuple.Round(time.Microsecond).String(),
			r.P50.Round(time.Microsecond).String(),
			r.P99.Round(time.Microsecond).String(),
			fmtF(r.Throughput),
		)
		records = append(records, Record{
			Experiment: "scan-stream",
			Backend:    r.Backend,
			Mode:       r.Mode,
			Batch:      r.Limit,
			Throughput: r.Throughput,
			P50:        r.P50.Seconds(),
			P99:        r.P99.Seconds(),
			PagesPerOp: r.PagesPerOp,
		})
	}
	if err := writeArtifact(scale, "scan-stream", records); err != nil {
		return nil, err
	}
	return t, nil
}
