package bench

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"bftree/index"
	"bftree/internal/core"
	"bftree/internal/device"
	"bftree/internal/heapfile"
	"bftree/internal/pagestore"
	"bftree/internal/workload"
)

// The compaction-stall experiment measures what incremental compaction
// buys: the same delete-heavy churn mix runs twice through DriveMix —
// once with the legacy whole-tree Rebuild (IncrementalBatch 0) and
// once with per-leaf partial rebuilds — and the runs are compared on
// the longest single writer stall (the maintainer's exclusive-lock
// hold, MaintenanceStats.CompactionMaxStall) and on the effective-fpp
// ceiling both held. The headline: incremental compaction shrinks the
// stall to the leaves that earned it while holding the same fpp line.

const (
	stallWriters = 4

	// stallFPP and stallFPPThreshold mirror the churn drift budget: with
	// standard filters every logical delete adds 1/numKeys of Section 7
	// drift, so the threshold crossing recurs throughout the run and
	// both variants compact repeatedly.
	stallFPP          = 0.02
	stallFPPThreshold = 0.12
)

// stallMix is the churn-shaped mix the experiment drives: delete-heavy
// with a read component, so compaction races live probes.
var stallMix = workload.Mix{
	Name: "churn",
	Weights: func() [workload.NumOpKinds]float64 {
		var w [workload.NumOpKinds]float64
		w[workload.OpDelete] = 0.45
		w[workload.OpInsert] = 0.35
		w[workload.OpSearch] = 0.20
		return w
	}(),
}

// CompactionStallResult is the outcome of one variant's run.
type CompactionStallResult struct {
	Mode  string // "full-rebuild" or "incremental"
	Batch int    // IncrementalBatch used (0 for full)

	Keys    uint64
	Ops     uint64
	Elapsed time.Duration

	Throughput float64
	P50, P99   time.Duration // per-op writer+reader latency quantiles

	MaxFPP    float64 // highest effective fpp observed (sampled)
	Threshold float64

	Stats core.MaintenanceStats // terminal snapshot (after Close)

	LiveNodes   uint64
	FreePages   uint64
	LimboAtEnd  uint64
	DevicePages uint64
}

// EconomyBalanced reports whether every index page is accounted for at
// quiescence: live + free + limbo == device.
func (r *CompactionStallResult) EconomyBalanced() bool {
	return r.LiveNodes+r.FreePages+r.LimboAtEnd == r.DevicePages
}

// stallFixture builds a unique-key relation of n tuples and an
// auto-maintained BF-Tree over it with the given compaction batch.
func stallFixture(n uint64, batch int) (*core.Tree, *heapfile.File, *pagestore.Store, *device.Device, error) {
	dataStore := pagestore.New(device.New(device.Memory, PageSize))
	idxDev := device.New(device.Memory, PageSize)
	idxStore := pagestore.New(idxDev)
	b, err := heapfile.NewBuilder(dataStore, mixedRWSchema)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	tup := make([]byte, mixedRWSchema.TupleSize)
	for i := uint64(0); i < n; i++ {
		mixedRWSchema.Set(tup, 0, i)
		if err := b.Append(tup); err != nil {
			return nil, nil, nil, nil, err
		}
	}
	file, err := b.Finish()
	if err != nil {
		return nil, nil, nil, nil, err
	}
	tr, err := core.BulkLoad(idxStore, file, 0, core.Options{
		FPP: stallFPP,
		Maintenance: core.MaintenancePolicy{
			Mode:             core.MaintenanceAuto,
			FPPThreshold:     stallFPPThreshold,
			ReclaimInterval:  2 * time.Millisecond,
			IncrementalBatch: batch,
		},
	})
	if err != nil {
		return nil, nil, nil, nil, err
	}
	return tr, file, idxStore, idxDev, nil
}

// stallScale derives the fixture size and op budget: enough keys that
// the tree holds dozens of leaves — a whole-tree rebuild then costs
// tens of milliseconds of exclusive hold, well clear of scheduler
// noise, while a batch stays a small fraction of it — and enough churn
// for several threshold crossings per variant.
func stallScale(scale Scale) (n, ops uint64) {
	n = scale.SyntheticTuples * 2
	if n < 262144 {
		n = 262144
	}
	ops = scale.SyntheticTuples * 4
	if ops < n {
		ops = n
	}
	return n, ops
}

// CompactionStallRun runs the churn mix against one variant and
// reports its stall and drift profile. batch 0 selects the legacy
// whole-tree Rebuild; positive batches compact that many top-drifted
// leaves per exclusive-lock hold.
func CompactionStallRun(scale Scale, batch int) (*CompactionStallResult, error) {
	n, ops := stallScale(scale)
	tr, file, idxStore, idxDev, err := stallFixture(n, batch)
	if err != nil {
		return nil, err
	}

	var maxFPP atomic.Uint64 // float64 bits; positive floats order like uints
	sampleFPP := func() {
		bits := math.Float64bits(tr.EffectiveFPP())
		for {
			old := maxFPP.Load()
			if bits <= old || maxFPP.CompareAndSwap(old, bits) {
				return
			}
		}
	}

	start := time.Now()
	res, err := DriveMix(coreTarget{tr}, MixConfig{
		Mix:     stallMix,
		Dist:    workload.DistUniform,
		NumKeys: n,
		Seed:    scale.Seed,
		Workers: stallWriters,
		Ops:     int(ops),
		RefOf:   func(k uint64) index.Ref { return index.Ref{Page: file.PageOf(k)} },
		OnOp: func(_, i int, _ workload.Op) {
			if i%128 == 0 {
				sampleFPP()
			}
		},
	})
	elapsed := time.Since(start)
	if err != nil {
		tr.Close()
		return nil, err
	}
	sampleFPP()

	if err := tr.Close(); err != nil {
		return nil, err
	}
	st := tr.MaintenanceStats()

	// The compacted tree still answers: spot-check surviving keys.
	for k := uint64(0); k < n; k += n / 64 {
		r, err := tr.SearchFirst(k)
		if err != nil {
			return nil, err
		}
		if len(r.Tuples) == 0 {
			return nil, fmt.Errorf("bench: compaction-stall lost key %d", k)
		}
	}

	mode := "incremental"
	if batch <= 0 {
		mode = "full-rebuild"
	}
	return &CompactionStallResult{
		Mode:        mode,
		Batch:       batch,
		Keys:        n,
		Ops:         uint64(res.Ops),
		Elapsed:     elapsed,
		Throughput:  res.Throughput,
		P50:         res.P50,
		P99:         res.P99,
		MaxFPP:      math.Float64frombits(maxFPP.Load()),
		Threshold:   stallFPPThreshold,
		Stats:       st,
		LiveNodes:   tr.NumNodes(),
		FreePages:   uint64(idxStore.FreePages()),
		LimboAtEnd:  uint64(st.LimboPages),
		DevicePages: idxDev.NumPages(),
	}, nil
}

// stallBatch picks the incremental batch for the comparison: a
// sixteenth of the tree's leaves, so each exclusive hold rewrites a
// small, fixed fraction of what the full rebuild rewrites.
func stallBatch(scale Scale) (int, error) {
	n, _ := stallScale(scale)
	tr, _, _, _, err := stallFixture(n, 0)
	if err != nil {
		return 0, err
	}
	defer tr.Close()
	b := int(tr.NumLeaves() / 16)
	if b < 1 {
		b = 1
	}
	return b, nil
}

// RunCompactionStall is the `compaction-stall` experiment: the same
// churn mix against the whole-tree and incremental compaction
// variants, compared on max writer stall and fpp ceiling. With -json
// it also emits BENCH_compact.json.
func RunCompactionStall(scale Scale) (*Table, error) {
	batch, err := stallBatch(scale)
	if err != nil {
		return nil, err
	}
	full, err := CompactionStallRun(scale, 0)
	if err != nil {
		return nil, err
	}
	incr, err := CompactionStallRun(scale, batch)
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title: fmt.Sprintf("Incremental compaction: %d churn ops over %d keys, full rebuild vs batch %d",
			full.Ops, full.Keys, batch),
		Header: []string{"metric", "full rebuild", fmt.Sprintf("incremental (batch %d)", batch)},
		Notes: []string{
			"both variants run the same delete-heavy mix (DriveMix) against an auto-",
			"maintained tree; every logical delete adds 1/keys of Section 7 drift, so the",
			"Equation 14 estimate crosses the threshold repeatedly. the full variant pays",
			"one whole-tree Rebuild per crossing under the exclusive lock; the incremental",
			"variant rewrites only the most-drifted leaves per hold, releasing the lock",
			"between batches — max stall is the longest single exclusive hold either way.",
		},
	}
	econ := func(r *CompactionStallResult) string {
		if r.EconomyBalanced() {
			return "balanced"
		}
		return fmt.Sprintf("LEAK: %d live + %d free + %d limbo vs %d device",
			r.LiveNodes, r.FreePages, r.LimboAtEnd, r.DevicePages)
	}
	rows := [][3]string{
		{"ops", fmt.Sprint(full.Ops), fmt.Sprint(incr.Ops)},
		{"ops/s", fmt.Sprintf("%.0f", full.Throughput), fmt.Sprintf("%.0f", incr.Throughput)},
		{"op p99", full.P99.Round(time.Microsecond).String(), incr.P99.Round(time.Microsecond).String()},
		{"max writer stall", full.Stats.CompactionMaxStall.Round(10 * time.Microsecond).String(),
			incr.Stats.CompactionMaxStall.Round(10 * time.Microsecond).String()},
		{"total stall", full.Stats.CompactionTotalStall.Round(10 * time.Microsecond).String(),
			incr.Stats.CompactionTotalStall.Round(10 * time.Microsecond).String()},
		{"whole-tree rebuilds", fmt.Sprint(full.Stats.Compactions), fmt.Sprint(incr.Stats.Compactions)},
		{"incremental passes", fmt.Sprint(full.Stats.IncrementalPasses), fmt.Sprint(incr.Stats.IncrementalPasses)},
		{"leaves compacted", fmt.Sprint(full.Stats.LeavesCompacted), fmt.Sprint(incr.Stats.LeavesCompacted)},
		{"fpp threshold", fmt.Sprintf("%.3f", full.Threshold), fmt.Sprintf("%.3f", incr.Threshold)},
		{"max effective fpp", fmt.Sprintf("%.4f", full.MaxFPP), fmt.Sprintf("%.4f", incr.MaxFPP)},
		{"page economy", econ(full), econ(incr)},
	}
	for _, row := range rows {
		t.AddRow(row[0], row[1], row[2])
	}
	if full.Stats.CompactionMaxStall > 0 {
		ratio := float64(full.Stats.CompactionMaxStall) / float64(max(incr.Stats.CompactionMaxStall, 1))
		t.Notes = append(t.Notes, fmt.Sprintf("max-stall ratio (full / incremental): %.1fx", ratio))
	}

	records := make([]Record, 0, 2)
	for _, r := range []*CompactionStallResult{full, incr} {
		records = append(records, Record{
			Experiment:        "compaction-stall",
			Backend:           "bftree",
			Mode:              r.Mode,
			Batch:             r.Batch,
			Workers:           stallWriters,
			Ops:               int(r.Ops),
			Throughput:        r.Throughput,
			P50:               r.P50.Seconds(),
			P99:               r.P99.Seconds(),
			MaxStallMS:        float64(r.Stats.CompactionMaxStall) / float64(time.Millisecond),
			TotalStallMS:      float64(r.Stats.CompactionTotalStall) / float64(time.Millisecond),
			Compactions:       r.Stats.Compactions,
			IncrementalPasses: r.Stats.IncrementalPasses,
			LeavesCompacted:   r.Stats.LeavesCompacted,
			MaxFPP:            r.MaxFPP,
		})
	}
	if err := writeArtifact(scale, "compaction-stall", records); err != nil {
		return nil, err
	}
	return t, nil
}
