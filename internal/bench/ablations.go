package bench

import (
	"fmt"
	"time"

	"bftree/index"
	"bftree/internal/core"
	"bftree/internal/device"
)

// RunAblationGranularity sweeps the pages-per-filter granularity
// (DESIGN.md ablation 1): granularity 1 — the paper's best — directs
// probes to exactly the matching pages; coarser filters shrink probe CPU
// but read more candidate pages.
func RunAblationGranularity(scale Scale) (*Table, error) {
	cfg := StorageConfig{Name: "SSD/SSD", Index: device.SSD, Data: device.SSD}
	t := &Table{
		Title:  "Ablation: Bloom filters per data page (granularity)",
		Header: []string{"granularity", "avg-time", "false-reads/probe", "data-reads", "index-pages"},
	}
	for _, g := range []int{1, 2, 4, 8, 16} {
		env, syn, err := syntheticEnv(cfg, scale, 0)
		if err != nil {
			return nil, err
		}
		ix, err := BuildIndex("bftree", env, syn.File, 0,
			index.Options{BFTree: core.Options{FPP: 1e-3, Granularity: g}})
		if err != nil {
			return nil, err
		}
		keys, err := pkProbes(syn, scale)
		if err != nil {
			return nil, err
		}
		m, err := MeasureIndex(env, ix, keys, true)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprint(g), m.AvgTime.String(), fmtF(m.FalsePerProbe),
			fmt.Sprint(m.DataReads), fmt.Sprint(ix.Stats().Pages))
	}
	t.Notes = append(t.Notes, "granularity 1 (one BF per page) reads the fewest data pages — the paper's chosen configuration")
	return t, nil
}

// RunAblationHashCount sweeps the hash-function count (the paper fixes
// k=3, 'typically enough to have hashing close to ideal').
func RunAblationHashCount(scale Scale) (*Table, error) {
	cfg := StorageConfig{Name: "SSD/SSD", Index: device.SSD, Data: device.SSD}
	t := &Table{
		Title:  "Ablation: hash functions per Bloom filter",
		Header: []string{"k", "avg-time", "false-reads/probe"},
	}
	for _, k := range []int{1, 2, 3, 4, 6, 8} {
		env, syn, err := syntheticEnv(cfg, scale, 0)
		if err != nil {
			return nil, err
		}
		ix, err := BuildIndex("bftree", env, syn.File, 0,
			index.Options{BFTree: core.Options{FPP: 1e-2, Hashes: k}})
		if err != nil {
			return nil, err
		}
		keys, err := pkProbes(syn, scale)
		if err != nil {
			return nil, err
		}
		m, err := MeasureIndex(env, ix, keys, true)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprint(k), m.AvgTime.String(), fmtF(m.FalsePerProbe))
	}
	t.Notes = append(t.Notes, "k=3 is the paper's setting; very low k raises false reads, very high k saturates the filters")
	return t, nil
}

// RunAblationParallelProbe measures wall-clock probe CPU with and
// without the Section 8 parallel-probing optimization. Virtual I/O time
// is identical by construction; this ablation reports real CPU time.
func RunAblationParallelProbe(scale Scale) (*Table, error) {
	cfg := StorageConfig{Name: "mem/mem", Index: device.Memory, Data: device.Memory}
	t := &Table{
		Title:  "Ablation: sequential vs parallel BF probing (Section 8), wall clock",
		Header: []string{"mode", "wall-time/probe", "tuples"},
	}
	for _, parallel := range []bool{false, true} {
		env, syn, err := syntheticEnv(cfg, scale, 0)
		if err != nil {
			return nil, err
		}
		ix, err := BuildIndex("bftree", env, syn.File, 0,
			index.Options{BFTree: core.Options{FPP: 0.1, ParallelProbe: parallel}})
		if err != nil {
			return nil, err
		}
		keys, err := pkProbes(syn, scale)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		tuples := 0
		for _, k := range keys {
			res, err := ix.SearchFirst(k)
			if err != nil {
				return nil, err
			}
			tuples += len(res.Tuples)
		}
		wall := time.Since(start) / time.Duration(len(keys))
		mode := "sequential"
		if parallel {
			mode = "parallel(8)"
		}
		t.AddRow(mode, wall.String(), fmt.Sprint(tuples))
	}
	t.Notes = append(t.Notes, "the paper saw no probe bottleneck in its experiments; parallelism pays off only for very wide leaves")
	return t, nil
}

// RunAblationDeletes compares the two delete strategies of Section 7:
// fpp drift with standard filters vs physical deletes with counting
// filters (4x the leaf space) — deletes issued through the Deleter
// capability of the unified interface.
func RunAblationDeletes(scale Scale) (*Table, error) {
	cfg := StorageConfig{Name: "mem/mem", Index: device.Memory, Data: device.Memory}
	t := &Table{
		Title:  "Ablation: delete handling (Section 7)",
		Header: []string{"filter", "index-pages", "false-reads/probe before", "after deleting 10%", "effective-fpp"},
	}
	for _, kind := range []core.FilterKind{core.StandardFilter, core.CountingFilter} {
		env, syn, err := syntheticEnv(cfg, scale, 0)
		if err != nil {
			return nil, err
		}
		ix, err := BuildIndex("bftree", env, syn.File, 0,
			index.Options{BFTree: core.Options{FPP: 1e-3, Filter: kind}})
		if err != nil {
			return nil, err
		}
		keys, err := pkProbes(syn, scale)
		if err != nil {
			return nil, err
		}
		before, err := MeasureIndex(env, ix, keys, true)
		if err != nil {
			return nil, err
		}
		del, ok := ix.(index.Deleter)
		if !ok {
			return nil, fmt.Errorf("bench: bftree backend lost the Deleter capability")
		}
		// Delete every 10th key.
		for k := uint64(0); k <= syn.MaxPK; k += 10 {
			if err := del.Delete(k, index.Ref{Page: syn.File.PageOf(k)}); err != nil {
				return nil, err
			}
		}
		// Probe the surviving keys only.
		var survivors []uint64
		for _, k := range keys {
			if k%10 != 0 {
				survivors = append(survivors, k)
			}
		}
		after, err := MeasureIndex(env, ix, survivors, true)
		if err != nil {
			return nil, err
		}
		name := "standard(drift)"
		if kind == core.CountingFilter {
			name = "counting(4-bit)"
		}
		st := ix.Stats()
		t.AddRow(name, fmt.Sprint(st.Pages), fmtF(before.FalsePerProbe),
			fmtF(after.FalsePerProbe), fmtF(st.EffectiveFPP))
	}
	t.Notes = append(t.Notes,
		"standard filters keep deleted bits (fpp drifts up per Section 7); counting filters delete physically at 4x space")
	return t, nil
}

// RunAblationBufferedInserts measures the write amortization of the
// Section 4.2 buffered-update mode: index page writes per insert for
// direct inserts vs a buffered batch — both modes driven through the
// Inserter/Flusher capabilities.
func RunAblationBufferedInserts(scale Scale) (*Table, error) {
	cfg := StorageConfig{Name: "SSD/SSD", Index: device.SSD, Data: device.SSD}
	t := &Table{
		Title:  "Ablation: direct vs buffered inserts (Section 4.2)",
		Header: []string{"mode", "inserts", "index-page-writes", "writes/insert"},
	}
	n := scale.SyntheticTuples / 50
	if n < 100 {
		n = 100
	}
	for _, buffered := range []bool{false, true} {
		env, syn, err := syntheticEnv(cfg, scale, 0)
		if err != nil {
			return nil, err
		}
		opts := index.Options{BFTree: core.Options{FPP: 1e-3}}
		if buffered {
			opts.BufferedInserts = int(n) + 1
		}
		ix, err := BuildIndex("bftree", env, syn.File, 0, opts)
		if err != nil {
			return nil, err
		}
		ins := ix.(index.Inserter)
		env.ResetIO()
		for k := uint64(0); k < n; k++ {
			if err := ins.Insert(k, index.Ref{Page: syn.File.PageOf(k)}); err != nil {
				return nil, err
			}
		}
		if fl, ok := ix.(index.Flusher); ok {
			if err := fl.Flush(); err != nil {
				return nil, err
			}
		}
		writes := env.IdxDev.Stats().Writes()
		mode := "direct"
		if buffered {
			mode = "buffered"
		}
		t.AddRow(mode, fmt.Sprint(n), fmt.Sprint(writes),
			fmtF(float64(writes)/float64(n)))
	}
	t.Notes = append(t.Notes,
		"buffering amortizes one leaf write over every buffered insert that lands in the same leaf")
	return t, nil
}
