package bench

import (
	"fmt"
	"time"

	"bftree/index"
	"bftree/internal/core"
	"bftree/internal/workload"
)

// tpchEnv creates a configuration cell with the TPCH-like lineitem
// table on the data device, ordered on shipdate.
func tpchEnv(cfg StorageConfig, scale Scale, cachePages int) (*Env, *workload.TPCH, error) {
	env := NewEnv(cfg, cachePages)
	tp, err := workload.GenerateTPCH(env.DataStore, scale.TPCHTuples, scale.TPCHDates, scale.Seed)
	if err != nil {
		return nil, nil, err
	}
	return env, tp, nil
}

// shdEnv creates a configuration cell with the smart-home dataset on the
// data device, ordered on timestamp.
func shdEnv(cfg StorageConfig, scale Scale, cachePages int) (*Env, *workload.SHD, error) {
	env := NewEnv(cfg, cachePages)
	shd, err := workload.GenerateSHD(env.DataStore, scale.SHDTuples, scale.Seed)
	if err != nil {
		return nil, nil, err
	}
	return env, shd, nil
}

// tpchProbes builds probe keys over ship dates at the given hit rate;
// misses are dates outside the populated range, as every in-range date
// has lineitems at TPCH densities.
func tpchProbes(tp *workload.TPCH, scale Scale, hitRate float64) ([]uint64, error) {
	existing := make([]uint64, 0, len(tp.DateCards))
	for d := range tp.DateCards {
		existing = append(existing, d)
	}
	absent := workload.AbsentKeys(tp.MaxDate, 4096)
	ps, err := workload.MakeProbes(scale.Probes, hitRate, existing, absent, scale.Seed+3)
	if err != nil {
		return nil, err
	}
	return ps.Keys, nil
}

// shdProbes builds 100 % hit-rate probes over SHD timestamps
// (Section 6.5: the hardest case for BF-Trees).
func shdProbes(shd *workload.SHD, scale Scale) ([]uint64, error) {
	existing := make([]uint64, 0, len(shd.Cards))
	for ts := range shd.Cards {
		existing = append(existing, ts)
	}
	ps, err := workload.MakeProbes(scale.Probes, 1.0, existing, nil, scale.Seed+4)
	if err != nil {
		return nil, err
	}
	return ps.Keys, nil
}

// fig11HitRates is the x-axis of Figure 11.
var fig11HitRates = []float64{0, 0.05, 0.10, 0.20}

// RunFig11 reproduces Figure 11: BF-Tree response time on TPCH shipdate
// probes normalized to the B+-Tree, varying the hit rate, for the five
// storage configurations. The BF-Tree uses fpp=1e-3 (variation across
// fpp is low here because the huge per-date cardinality keeps the tree
// short, as the paper notes).
func RunFig11(scale Scale) (*Table, error) {
	const fpp = 1e-3
	configs := FiveConfigs()
	header := []string{"hit-rate"}
	for _, c := range configs {
		header = append(header, c.Name)
	}
	t := &Table{Title: "Figure 11: TPCH shipdate, BF-Tree time / B+-Tree time", Header: header}
	shipIdx := workload.TPCHSchema.FieldIndex("shipdate")
	for _, hr := range fig11HitRates {
		row := []string{fmtF(hr)}
		for _, cfg := range configs {
			env, tp, err := tpchEnv(cfg, scale, 0)
			if err != nil {
				return nil, err
			}
			bp, err := BuildIndex("bptree", env, tp.File, shipIdx, pointOpts(shipIdx, 0))
			if err != nil {
				return nil, err
			}
			keys, err := tpchProbes(tp, scale, hr)
			if err != nil {
				return nil, err
			}
			mBP, err := MeasureIndex(env, bp, keys, false)
			if err != nil {
				return nil, err
			}

			env2, tp2, err := tpchEnv(cfg, scale, 0)
			if err != nil {
				return nil, err
			}
			bf, err := BuildIndex("bftree", env2, tp2.File, shipIdx, pointOpts(shipIdx, fpp))
			if err != nil {
				return nil, err
			}
			keys2, err := tpchProbes(tp2, scale, hr)
			if err != nil {
				return nil, err
			}
			mBF, err := MeasureIndex(env2, bf, keys2, false)
			if err != nil {
				return nil, err
			}
			row = append(row, fmtF(float64(mBF.AvgTime)/float64(mBP.AvgTime)))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"<1 means BF-Tree faster; paper: large BF-Tree wins at 0% hit, small wins at 5%, B+-Tree ahead from ~10% except same-medium configs",
		"at 0% hit both indexes do little I/O, so the ratio reflects tree heights rather than the paper's CPU-bound 20x")
	return t, nil
}

// RunFig12a reproduces Figure 12(a): SHD timestamp probes with cold
// caches — optimal BF-Tree vs B+-Tree per configuration, with the
// capacity gain.
func RunFig12a(scale Scale) (*Table, error) {
	t := &Table{
		Title:  "Figure 12(a): SHD cold caches — optimal BF-Tree vs B+-Tree",
		Header: []string{"config", "B+-Tree", "best BF-Tree", "bf-fpp", "capacity-gain"},
	}
	tsIdx := workload.SHDSchema.FieldIndex("timestamp")
	for _, cfg := range FiveConfigs() {
		env, shd, err := shdEnv(cfg, scale, 0)
		if err != nil {
			return nil, err
		}
		// The SHD timestamp is field 0 but non-unique: the baselines use
		// the deduplicated ordered layout regardless of field position.
		bp, err := BuildIndex("bptree", env, shd.File, tsIdx, index.Options{DedupKeys: true})
		if err != nil {
			return nil, err
		}
		keys, err := shdProbes(shd, scale)
		if err != nil {
			return nil, err
		}
		mBP, err := MeasureIndex(env, bp, keys, false)
		if err != nil {
			return nil, err
		}
		best, bestFPP, bestGain, err := bestSHDBF(cfg, scale, tsIdx, bp.Stats().Pages, 0)
		if err != nil {
			return nil, err
		}
		t.AddRow(cfg.Name, mBP.AvgTime.String(), best.String(), fmtF(bestFPP), fmtF(bestGain)+"x")
	}
	t.Notes = append(t.Notes, "paper: BF-Tree matches B+-Tree at 2x-3x capacity gain on the 100%-hit SHD workload")
	return t, nil
}

// bestSHDBF sweeps fpp and returns the fastest BF-Tree measurement on
// the SHD workload for one configuration.
func bestSHDBF(cfg StorageConfig, scale Scale, tsIdx int, bpPages uint64, cachePages int) (time.Duration, float64, float64, error) {
	bestTime := time.Duration(1<<62 - 1)
	var bestFPP, bestGain float64
	for _, fpp := range []float64{0.1, 1.9e-2, 1.8e-3, 1.72e-4, 1.5e-7} {
		env, shd, err := shdEnv(cfg, scale, cachePages)
		if err != nil {
			return 0, 0, 0, err
		}
		bf, err := BuildIndex("bftree", env, shd.File, tsIdx, index.Options{BFTree: core.Options{FPP: fpp}})
		if err != nil {
			return 0, 0, 0, err
		}
		if cachePages > 0 {
			if err := WarmBuiltIndex(env, bf); err != nil {
				return 0, 0, 0, err
			}
		}
		keys, err := shdProbes(shd, scale)
		if err != nil {
			return 0, 0, 0, err
		}
		m, err := MeasureIndex(env, bf, keys, false)
		if err != nil {
			return 0, 0, 0, err
		}
		if m.AvgTime < bestTime {
			bestTime = m.AvgTime
			bestFPP = fpp
			bestGain = float64(bpPages) / float64(bf.Stats().Pages)
		}
	}
	return bestTime, bestFPP, bestGain, nil
}

// RunFig12b reproduces Figure 12(b): SHD with warm caches for the three
// on-device configurations, adding the FD-Tree comparator — all four
// measurements through the same MeasureIndex path.
func RunFig12b(scale Scale) (*Table, error) {
	const cachePages = 65536
	t := &Table{
		Title:  "Figure 12(b): SHD warm caches — BF-Tree vs B+-Tree vs FD-Tree",
		Header: []string{"config", "B+-Tree", "best BF-Tree", "FD-Tree", "capacity-gain"},
	}
	tsIdx := workload.SHDSchema.FieldIndex("timestamp")
	for _, cfg := range WarmConfigs() {
		env, shd, err := shdEnv(cfg, scale, cachePages)
		if err != nil {
			return nil, err
		}
		bp, err := BuildIndex("bptree", env, shd.File, tsIdx, index.Options{DedupKeys: true})
		if err != nil {
			return nil, err
		}
		if err := WarmBuiltIndex(env, bp); err != nil {
			return nil, err
		}
		keys, err := shdProbes(shd, scale)
		if err != nil {
			return nil, err
		}
		mBP, err := MeasureIndex(env, bp, keys, false)
		if err != nil {
			return nil, err
		}

		best, _, bestGain, err := bestSHDBF(cfg, scale, tsIdx, bp.Stats().Pages, cachePages)
		if err != nil {
			return nil, err
		}

		// FD-Tree: head tree memory-resident (its design), runs on the
		// index device.
		envFD, shdFD, err := shdEnv(cfg, scale, 0)
		if err != nil {
			return nil, err
		}
		fd, err := BuildIndex("fdtree", envFD, shdFD.File, tsIdx, index.Options{DedupKeys: true})
		if err != nil {
			return nil, err
		}
		keysFD, err := shdProbes(shdFD, scale)
		if err != nil {
			return nil, err
		}
		mFD, err := MeasureIndex(envFD, fd, keysFD, false)
		if err != nil {
			return nil, err
		}
		t.AddRow(cfg.Name, mBP.AvgTime.String(), best.String(), mFD.AvgTime.String(), fmtF(bestGain)+"x")
	}
	t.Notes = append(t.Notes,
		"paper: FD-Tree ≈ BF-Tree and B+-Tree on HDD data; ~33% slower than BF-Tree on SSD/SSD")
	return t, nil
}

// fig13FPPs and fig13Ranges are the axes of Figure 13.
var (
	fig13FPPs   = []float64{0.3, 0.1, 1e-2, 1e-4, 1e-6, 1e-8, 1e-10, 1e-12}
	fig13Ranges = []float64{0.01, 0.05, 0.10, 0.20}
)

// RunFig13 reproduces Figure 13: data-page I/Os of a BF-Tree range scan
// normalized to the B+-Tree, varying fpp, for ranges of 1-20 % of the
// relation (PK index).
func RunFig13(scale Scale) (*Table, error) {
	header := []string{"fpp"}
	for _, r := range fig13Ranges {
		header = append(header, fmt.Sprintf("range %.0f%%", r*100))
	}
	t := &Table{Title: "Figure 13: range-scan data I/Os, BF-Tree / B+-Tree", Header: header}
	// One shared dataset; a fresh index store per fpp.
	cfg := StorageConfig{Name: "mem/mem"}
	_, syn, err := syntheticEnv(cfg, scale, 0)
	if err != nil {
		return nil, err
	}
	for _, fpp := range fig13FPPs {
		idxEnv := NewEnv(cfg, 0)
		bf, err := BuildIndex("bftree", idxEnv, syn.File, 0, index.Options{BFTree: core.Options{FPP: fpp}})
		if err != nil {
			return nil, err
		}
		row := []string{fmtF(fpp)}
		for _, frac := range fig13Ranges {
			span := uint64(float64(syn.MaxPK+1) * frac)
			lo := (syn.MaxPK + 1) / 3 // start a third in, away from file edges
			hi := lo + span - 1
			res, err := bf.RangeScan(lo, hi)
			if err != nil {
				return nil, err
			}
			// B+-Tree I/O: the matching tuples occupy a contiguous page
			// span; the B+-Tree reads exactly those pages.
			firstPage := syn.File.PageOf(lo)
			lastPage := syn.File.PageOf(hi)
			bpIO := int(lastPage-firstPage) + 1
			row = append(row, fmtF(float64(res.Stats.DataPagesRead)/float64(bpIO)))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"paper: overhead negligible for fpp<=1e-4 at ranges >=5%, <20% for 1% ranges at fpp<=1e-6")
	return t, nil
}
