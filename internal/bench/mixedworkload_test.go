package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bftree/index"
	"bftree/internal/workload"
)

// TestMixedWorkloadMatrix runs the mixed-workload experiment across the
// whole registry at a small scale and checks the BENCH_mixed.json rows:
// every preset × backend cell present, throughput measured, and the
// redistribution column reporting the delete fold on backends without a
// Deleter.
func TestMixedWorkloadMatrix(t *testing.T) {
	scale := DefaultScale()
	scale.SyntheticTuples = 16384
	scale.SHDTuples = 16384
	scale.Probes = 128
	scale.Index = "each"
	scale.JSONDir = t.TempDir()

	if _, err := RunMixedWorkload(scale); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(filepath.Join(scale.JSONDir, "BENCH_mixed.json"))
	if err != nil {
		t.Fatal(err)
	}
	var recs []Record
	if err := json.Unmarshal(blob, &recs); err != nil {
		t.Fatal(err)
	}

	backends := index.Backends()
	presets := workload.MixNames()
	seen := map[string]bool{}
	for _, r := range recs {
		if r.Experiment != "mixed-workload" {
			t.Fatalf("record experiment %q, want mixed-workload", r.Experiment)
		}
		if r.Throughput <= 0 || r.Ops <= 0 {
			t.Fatalf("cell %s/%s/%s has no measurement: %+v", r.Backend, r.Preset, r.Dist, r)
		}
		if r.Workers != mixedWorkloadWorkers {
			t.Fatalf("cell %s/%s/%s ran %d workers, want %d", r.Backend, r.Preset, r.Dist, r.Workers, mixedWorkloadWorkers)
		}
		seen[r.Backend+"/"+r.Preset] = true
		// The no-Deleter backends must report the oltp delete fold.
		b, _ := index.Lookup(r.Backend)
		if r.Preset == "oltp" && !b.ConcurrentWriters && !strings.Contains(r.Moved, "delete") {
			if _, isDeleter := mustBuild(t, r.Backend).(index.Deleter); !isDeleter {
				t.Fatalf("cell %s/oltp moved %q, want a delete fold", r.Backend, r.Moved)
			}
		}
	}
	for _, b := range backends {
		for _, p := range presets {
			if !seen[b+"/"+p] {
				t.Fatalf("matrix missing cell %s/%s (have %d records)", b, p, len(recs))
			}
		}
	}
	// 3 presets × 2 dists + timeseries × 1 dist per backend.
	if want := len(backends) * 7; len(recs) != want {
		t.Fatalf("got %d records, want %d", len(recs), want)
	}
}

// mustBuild builds a tiny index of the named backend for capability
// inspection.
func mustBuild(t *testing.T, name string) index.Index {
	t.Helper()
	fx, err := mixedSyntheticFixture(Scale{SyntheticTuples: 256, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ix := driverTestIndex(t, fx, name)
	t.Cleanup(func() { ix.Close() })
	return ix
}
