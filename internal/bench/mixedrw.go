package bench

import (
	"fmt"
	"sync/atomic"
	"time"

	"bftree/internal/core"
	"bftree/internal/device"
	"bftree/internal/heapfile"
	"bftree/internal/pagestore"
	"bftree/internal/workload"
)

// MixedRWReaderCounts is the reader sweep of the mixed-rw experiment.
var MixedRWReaderCounts = []int{1, 2, 4, 8}

// mixedRWLatency is the real per-I/O blocking time imposed on both
// devices during the measured phase (see Device.SetRealLatency and the
// concurrent-probe experiment it follows). It applies to the writer's
// page I/O too, so readers and the writer contend for nothing but the
// software path — exactly what the single-writer/multi-reader contract
// claims is free of locks on the read side.
const mixedRWLatency = 100 * time.Microsecond

// mixedRWSchema is the appended relation: a unique ordered key.
var mixedRWSchema = heapfile.Schema{
	TupleSize: 64,
	Fields:    []heapfile.Field{{Name: "k", Offset: 0}},
}

// MixedRWResult is one row of the sweep: reader-side throughput and
// tail latency while one writer streams appends through the COW
// structural path.
type MixedRWResult struct {
	Readers       int
	Probes        int
	Elapsed       time.Duration
	Throughput    float64 // probes per second of wall time
	P50           time.Duration
	P99           time.Duration
	WriterInserts int64   // inserts the live writer completed meanwhile
	WriterRate    float64 // inserts per second over the measured window
	LeavesAdded   uint64  // structural changes the readers raced
	FreedPages    uint64  // COW pages reclaimed through the free list
}

// mixedRWFixture builds a fresh unique-key relation and BF-Tree on
// Memory devices (no latency during the build).
func mixedRWFixture(scale Scale) (*core.Tree, *heapfile.File, *pagestore.Store, *device.Device, *device.Device, error) {
	n := scale.SyntheticTuples
	if n < 1024 {
		n = 1024
	}
	dataDev := device.New(device.Memory, PageSize)
	idxDev := device.New(device.Memory, PageSize)
	dataStore := pagestore.New(dataDev)
	idxStore := pagestore.New(idxDev)
	b, err := heapfile.NewBuilder(dataStore, mixedRWSchema)
	if err != nil {
		return nil, nil, nil, nil, nil, err
	}
	tup := make([]byte, mixedRWSchema.TupleSize)
	for i := uint64(0); i < n; i++ {
		mixedRWSchema.Set(tup, 0, i)
		if err := b.Append(tup); err != nil {
			return nil, nil, nil, nil, nil, err
		}
	}
	file, err := b.Finish()
	if err != nil {
		return nil, nil, nil, nil, nil, err
	}
	tr, err := core.BulkLoad(idxStore, file, 0, core.Options{FPP: 1e-3})
	if err != nil {
		return nil, nil, nil, nil, nil, err
	}
	return tr, file, dataStore, idxDev, dataDev, nil
}

// MixedRWSweep measures probe throughput and latency at each reader
// count while a single writer continuously appends new tuples to the
// relation and inserts them — forcing fresh leaves, capacity splits and
// root growth through the copy-on-write path, concurrently with every
// probe. Each row runs against a fresh tree so rows stay comparable.
// The reader pool runs through the shared Driver (RunConcurrentProbes);
// the background appender below is fixture machinery — it grows the
// relation the readers race, and is not itself measured.
func MixedRWSweep(scale Scale, readerCounts []int) ([]*MixedRWResult, error) {
	probes := scale.Probes
	if probes < 64 {
		probes = 64
	}
	var out []*MixedRWResult
	for _, readers := range readerCounts {
		tr, file, dataStore, idxDev, dataDev, err := mixedRWFixture(scale)
		if err != nil {
			return nil, err
		}
		n := file.NumTuples()
		// Probe keys come from the run seed's sub-stream, so the probed
		// set is reproducible from -seed like every other driver input.
		keys := make([]uint64, 512)
		krng := workload.SubStream(scale.Seed, 0)
		for i := range keys {
			keys[i] = krng.Uint64n(n)
		}
		leaves0 := tr.NumLeaves()
		idxDev.SetRealLatency(mixedRWLatency)
		dataDev.SetRealLatency(mixedRWLatency)

		stop := make(chan struct{})
		writerDone := make(chan error, 1)
		var inserted atomic.Int64
		go func() { // the single writer: append one data page per batch
			perPage := file.TuplesPerPage()
			next := n
			tup := make([]byte, mixedRWSchema.TupleSize)
			for {
				select {
				case <-stop:
					writerDone <- nil
					return
				default:
				}
				b, err := heapfile.NewBuilder(dataStore, mixedRWSchema)
				if err != nil {
					writerDone <- err
					return
				}
				for i := 0; i < perPage; i++ {
					mixedRWSchema.Set(tup, 0, next+uint64(i))
					if err := b.Append(tup); err != nil {
						writerDone <- err
						return
					}
				}
				seg, err := b.Finish()
				if err != nil {
					writerDone <- err
					return
				}
				file.Extend(seg.NumPages(), seg.NumTuples())
				for i := 0; i < perPage; i++ {
					if err := tr.Insert(next+uint64(i), seg.FirstPage()); err != nil {
						writerDone <- err
						return
					}
					inserted.Add(1)
				}
				next += uint64(perPage)
			}
		}()

		// Bound the writer accounting to the measured probe window:
		// inserts during the writer's ramp-up and its final in-flight
		// batch after stop would otherwise inflate the reported rate.
		insBefore := inserted.Load()
		r, probeErr := RunConcurrentProbes(tr, keys, readers, probes)
		insDuring := inserted.Load() - insBefore
		close(stop)
		werr := <-writerDone
		idxDev.SetRealLatency(0)
		dataDev.SetRealLatency(0)
		if probeErr != nil {
			return nil, probeErr
		}
		if werr != nil {
			return nil, fmt.Errorf("bench: mixed-rw writer: %w", werr)
		}
		freed, _ := tr.Store().FreeListStats()
		out = append(out, &MixedRWResult{
			Readers:       readers,
			Probes:        r.Probes,
			Elapsed:       r.Elapsed,
			Throughput:    r.Throughput,
			P50:           r.P50,
			P99:           r.P99,
			WriterInserts: insDuring,
			WriterRate:    float64(insDuring) / r.Elapsed.Seconds(),
			LeavesAdded:   tr.NumLeaves() - leaves0,
			FreedPages:    freed,
		})
	}
	return out, nil
}

// RunMixedRW is the `mixed-rw` experiment: reader throughput and
// p50/p99 under a live writer streaming inserts, at 1/2/4/8 reader
// workers. The writer's structural changes (new leaves, splits, root
// growth) go through the copy-on-write path, so reader throughput
// scaling here demonstrates the single-writer/multi-reader contract:
// probes never block on the writer, and a probe racing a split sees
// either the pre- or post-split tree, never a torn one.
func RunMixedRW(scale Scale) (*Table, error) {
	results, err := MixedRWSweep(scale, MixedRWReaderCounts)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  fmt.Sprintf("Mixed read/write: probes vs one streaming writer, %v per page access", mixedRWLatency),
		Header: []string{"readers", "probes", "wall time", "probes/s", "speedup", "p50", "p99", "writer ins/s", "leaves+", "pages freed"},
		Notes: []string{
			"one writer streams appends (fresh leaves, capacity splits, root growth)",
			"through the COW path for the whole measured window; readers never block.",
			"speedup is reader throughput relative to the 1-reader row; pages freed",
			"counts retired COW pages reclaimed through the store free list.",
		},
	}
	base := results[0].Throughput
	for _, r := range results {
		t.AddRow(
			fmt.Sprint(r.Readers),
			fmt.Sprint(r.Probes),
			r.Elapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%.0f", r.Throughput),
			fmt.Sprintf("%.2fx", r.Throughput/base),
			r.P50.Round(10*time.Microsecond).String(),
			r.P99.Round(10*time.Microsecond).String(),
			fmt.Sprintf("%.0f", r.WriterRate),
			fmt.Sprint(r.LeavesAdded),
			fmt.Sprint(r.FreedPages),
		)
	}
	return t, nil
}
