package bench

import (
	"strconv"
	"testing"
	"time"

	"bftree/index"
	"bftree/internal/core"
)

// microScale is the smallest scale at which every experiment still
// exercises multi-leaf trees.
func microScale() Scale {
	return Scale{
		SyntheticTuples: 12000,
		TPCHTuples:      12000,
		TPCHDates:       24,
		SHDTuples:       12000,
		Probes:          60,
		Seed:            3,
	}
}

// TestEveryExperimentRuns executes the full registry end to end: every
// table and figure of the paper must produce rows without error.
func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry run")
	}
	scale := microScale()
	for _, name := range ExperimentNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			start := time.Now()
			tbl, err := Run(name, scale)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if len(tbl.Rows) == 0 {
				t.Fatalf("%s: no rows", name)
			}
			if len(tbl.Header) == 0 || tbl.Title == "" {
				t.Fatalf("%s: missing header/title", name)
			}
			for i, row := range tbl.Rows {
				if len(row) != len(tbl.Header) {
					t.Fatalf("%s row %d: %d cells for %d columns", name, i, len(row), len(tbl.Header))
				}
			}
			t.Logf("%s: %d rows in %v", name, len(tbl.Rows), time.Since(start))
		})
	}
}

// TestFig5aTimesOrderedByDevice checks the physical sanity of the probe
// sweep: for any fpp row, probing with data on HDD must cost more than
// with data on SSD, and index-on-HDD more than index-in-memory.
func TestFig5aTimesOrderedByDevice(t *testing.T) {
	tbl, err := RunFig5a(microScale())
	if err != nil {
		t.Fatal(err)
	}
	col := map[string]int{}
	for i, h := range tbl.Header {
		col[h] = i
	}
	parse := func(s string) time.Duration {
		d, err := time.ParseDuration(s)
		if err != nil {
			t.Fatalf("bad duration %q", s)
		}
		return d
	}
	for _, row := range tbl.Rows {
		memHDD := parse(row[col["mem/HDD"]])
		hddHDD := parse(row[col["HDD/HDD"]])
		memSSD := parse(row[col["mem/SSD"]])
		if hddHDD < memHDD {
			t.Errorf("fpp=%s: HDD-resident index (%v) cannot beat memory-resident (%v)",
				row[0], hddHDD, memHDD)
		}
		if memSSD > memHDD {
			t.Errorf("fpp=%s: SSD data (%v) cannot cost more than HDD data (%v)",
				row[0], memSSD, memHDD)
		}
	}
}

// TestFig6BreakEvenConsistency: capacity gain must decrease as fpp
// tightens within one configuration.
func TestFig6BreakEvenConsistency(t *testing.T) {
	tbl, err := RunFig6(microScale())
	if err != nil {
		t.Fatal(err)
	}
	lastGain := map[string]float64{}
	for _, row := range tbl.Rows {
		cfg := row[0]
		gain, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatalf("bad gain %q", row[2])
		}
		if gain <= 0 {
			t.Errorf("%s: non-positive capacity gain %g", cfg, gain)
		}
		// Rows are sorted by (config, gain): within a config the gain is
		// nondecreasing by construction; just check positivity and that
		// norm-perf parses.
		if _, err := strconv.ParseFloat(row[3], 64); err != nil {
			t.Fatalf("bad norm-perf %q", row[3])
		}
		lastGain[cfg] = gain
	}
	if len(lastGain) != 5 {
		t.Errorf("expected 5 configurations, saw %d", len(lastGain))
	}
}

// TestFig7WarmBeatsColdForBP: with the internal levels cached, the
// B+-Tree's probe time must not exceed the cold-cache time of the same
// configuration.
func TestFig7WarmBeatsColdForBP(t *testing.T) {
	scale := microScale()
	warm, err := RunFig7(scale)
	if err != nil {
		t.Fatal(err)
	}
	if len(warm.Rows) != 3 {
		t.Fatalf("warm rows = %d", len(warm.Rows))
	}
	for _, row := range warm.Rows {
		bp, err := time.ParseDuration(row[1])
		if err != nil {
			t.Fatal(err)
		}
		bf, err := time.ParseDuration(row[2])
		if err != nil {
			t.Fatal(err)
		}
		if bp <= 0 || bf <= 0 {
			t.Errorf("%s: non-positive warm times", row[0])
		}
	}
}

// TestFig11MissesAreCheap: at 0 % hit rate neither index should touch
// the data device.
func TestFig11MissesAreCheap(t *testing.T) {
	scale := microScale()
	cfg := FiveConfigs()[0] // mem/HDD
	env, tp, err := tpchEnv(cfg, scale, 0)
	if err != nil {
		t.Fatal(err)
	}
	shipIdx := 1
	keys, err := tpchProbes(tp, scale, 0)
	if err != nil {
		t.Fatal(err)
	}
	bf, err := BuildIndex("bftree", env, tp.File, shipIdx, index.Options{BFTree: core.Options{FPP: 1e-3}})
	if err != nil {
		t.Fatal(err)
	}
	m, err := MeasureIndex(env, bf, keys, false)
	if err != nil {
		t.Fatal(err)
	}
	if m.DataReads != 0 {
		t.Errorf("pure-miss probes read %d data pages", m.DataReads)
	}
}

// TestFig12CapacityGainBand: the SHD capacity gain must be positive and
// in a plausible band around the paper's 2x-3x.
func TestFig12CapacityGainBand(t *testing.T) {
	tbl, err := RunFig12a(microScale())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		g, err := strconv.ParseFloat(trimX(row[4]), 64)
		if err != nil {
			t.Fatalf("bad gain %q", row[4])
		}
		if g < 1 || g > 30 {
			t.Errorf("%s: capacity gain %g outside plausible band", row[0], g)
		}
	}
}

func trimX(s string) string {
	if len(s) > 0 && s[len(s)-1] == 'x' {
		return s[:len(s)-1]
	}
	return s
}
