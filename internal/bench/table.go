package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result: the rows/series of one paper
// table or figure.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table in aligned plain text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// fmtF formats a float compactly.
func fmtF(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 0.01 && v < 1e6:
		return fmt.Sprintf("%.3g", v)
	default:
		return fmt.Sprintf("%.2e", v)
	}
}
