package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"testing"
)

// serveScaleForTest mirrors the CI smoke scale of `bfbench -exp
// serve-load`: a small relation, a modest probe budget, real loopback
// connections.
func serveScaleForTest() Scale {
	s := DefaultScale()
	s.SyntheticTuples = 20000
	s.Probes = 128
	return s
}

// TestServeLoadScalesWithConnections is the serving-layer acceptance
// gate: against the bftree backend, aggregate throughput at 64
// connections must be at least 4x the single-connection throughput.
// With real per-page device latency imposed during the measured
// window, one connection is latency-bound — it waits out every page
// read end to end — while 64 connections overlap those waits inside
// the server's handler pool, so the speedup holds even on one core.
func TestServeLoadScalesWithConnections(t *testing.T) {
	cells, err := ServeLoadSweep(serveScaleForTest(), []string{"bftree"}, []int{1, 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("expected 2 cells, got %d", len(cells))
	}
	one, many := cells[0], cells[1]
	if one.Conns != 1 || many.Conns != 64 {
		t.Fatalf("unexpected levels: %d, %d", one.Conns, many.Conns)
	}
	if one.Result.Throughput <= 0 {
		t.Fatalf("1-connection throughput not measured: %+v", one.Result)
	}
	speedup := many.Result.Throughput / one.Result.Throughput
	if speedup < 4 {
		t.Errorf("64-connection speedup %.2fx < 4x: %.0f ops/s vs %.0f ops/s",
			speedup, many.Result.Throughput, one.Result.Throughput)
	}
}

// TestServeLoadExperimentRegistered runs the registered experiment
// end-to-end against one backend with JSON output and checks both the
// rendered table and the BENCH_serve.json artifact.
func TestServeLoadExperimentRegistered(t *testing.T) {
	if testing.Short() {
		t.Skip("serve-load sweeps four connection levels; skipped in -short")
	}
	scale := serveScaleForTest()
	scale.Index = "bftree"
	scale.JSONDir = t.TempDir()
	tbl, err := Run("serve-load", scale)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(ServeLoadLevels); len(tbl.Rows) != want {
		t.Fatalf("expected %d rows (one per connection level), got %d", want, len(tbl.Rows))
	}

	blob, err := os.ReadFile(filepath.Join(scale.JSONDir, ArtifactFor("serve-load")))
	if err != nil {
		t.Fatal(err)
	}
	var records []Record
	if err := json.Unmarshal(blob, &records); err != nil {
		t.Fatal(err)
	}
	if len(records) != len(ServeLoadLevels) {
		t.Fatalf("expected %d records, got %d", len(ServeLoadLevels), len(records))
	}
	for i, r := range records {
		if r.Experiment != "serve-load" || r.Backend != "bftree" || r.Preset != "oltp" {
			t.Errorf("record %d mislabeled: %+v", i, r)
		}
		if r.Workers != ServeLoadLevels[i] {
			t.Errorf("record %d: workers %d, want %d", i, r.Workers, ServeLoadLevels[i])
		}
		if r.Throughput <= 0 || r.P50 <= 0 || r.P99 < r.P50 {
			t.Errorf("record %d: implausible latency row: %+v", i, r)
		}
	}
}

// TestArtifactRegistryConsistent pins the contract between the
// Artifacts map, the experiment registry, and the flag table: every
// artifact belongs to a registered experiment that consumes -json,
// every json-consuming experiment owns exactly one artifact, and the
// filenames are unique and canonical (BENCH_<name>.json).
func TestArtifactRegistryConsistent(t *testing.T) {
	canonical := regexp.MustCompile(`^BENCH_[a-z]+\.json$`)
	seen := map[string]string{}
	for exp, name := range Artifacts {
		if _, ok := Experiments[exp]; !ok {
			t.Errorf("artifact %q belongs to unregistered experiment %q", name, exp)
		}
		consumesJSON := false
		for _, f := range ExperimentFlags(exp) {
			if f == "json" {
				consumesJSON = true
			}
		}
		if !consumesJSON {
			t.Errorf("experiment %q has artifact %q but does not declare the json flag", exp, name)
		}
		if !canonical.MatchString(name) {
			t.Errorf("artifact %q of %q is not canonical BENCH_<name>.json", name, exp)
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("artifact %q claimed by both %q and %q", name, prev, exp)
		}
		seen[name] = exp
	}
	// The reverse direction: declaring -json without an artifact would
	// make `bfbench -json DIR` silently write nothing for that
	// experiment.
	for exp, flags := range experimentFlags {
		for _, f := range flags {
			if f == "json" && ArtifactFor(exp) == "" {
				t.Errorf("experiment %q declares the json flag but has no artifact", exp)
			}
		}
	}
	if ArtifactFor("no-such-experiment") != "" {
		t.Error("ArtifactFor should return \"\" for unknown experiments")
	}
}
