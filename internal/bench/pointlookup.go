package bench

import (
	"fmt"

	"bftree/index"
	"bftree/internal/device"
)

// RunPointLookup is the paper's headline comparison as a registry walk:
// the same relation, the same probe batches, every selected backend
// measured through the one generic MeasureIndex path. Scale.Index picks
// a single backend; "each" (the default here) walks the whole registry.
// Two rows per backend: the unique PK at 100 % hits and the non-unique
// ATT1 at 14 % hits, both on the SSD/SSD configuration.
func RunPointLookup(scale Scale) (*Table, error) {
	names := []string{scale.IndexBackend()}
	if scale.Index == "each" || scale.Index == "" {
		names = index.Backends()
	}
	cfg := StorageConfig{Name: "SSD/SSD", Index: device.SSD, Data: device.SSD}
	t := &Table{
		Title:  "Point lookups across registered backends (SSD/SSD)",
		Header: []string{"index", "field", "avg-time", "p99", "idx-reads", "data-reads", "false/probe", "size-pages", "size-bytes", "tuples"},
	}
	var records []Record
	for _, name := range names {
		for _, fieldIdx := range []int{0, 1} {
			env, syn, err := syntheticEnv(cfg, scale, 0)
			if err != nil {
				return nil, err
			}
			ix, err := BuildIndex(name, env, syn.File, fieldIdx, pointOpts(fieldIdx, 1e-3))
			if err != nil {
				return nil, err
			}
			keys, unique, err := syntheticProbes(syn, scale, fieldIdx)
			if err != nil {
				return nil, err
			}
			m, err := MeasureIndex(env, ix, keys, unique)
			if err != nil {
				return nil, err
			}
			st := ix.Stats()
			field := "PK"
			if fieldIdx != 0 {
				field = "ATT1"
			}
			t.AddRow(name, field, m.AvgTime.String(), m.P99.String(),
				fmt.Sprint(m.IdxReads), fmt.Sprint(m.DataReads),
				fmtF(m.FalsePerProbe), fmt.Sprint(st.Pages),
				fmt.Sprint(st.SizeBytes), fmt.Sprint(m.Tuples))
			records = append(records, Record{
				Experiment:       "point-lookup",
				Backend:          name,
				Mode:             field,
				Throughput:       1 / m.AvgTime.Seconds(),
				P50:              m.P50.Seconds(),
				P99:              m.P99.Seconds(),
				IndexReadsPerKey: float64(m.IdxReads) / float64(len(keys)),
			})
			if err := ix.Close(); err != nil {
				return nil, err
			}
		}
	}
	if err := writeArtifact(scale, "point-lookup", records); err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"the paper's claim in one table: the BF-Tree probes within ~2x of the exact indexes at 1-2 orders of magnitude less space",
		"hash is memory-resident (idx-reads 0 by design); bfbench -index=<name|each> selects the backends")
	return t, nil
}
