package bench

import (
	"fmt"
	"time"

	"bftree/index"
	"bftree/internal/core"
	"bftree/internal/device"
	"bftree/internal/heapfile"
	"bftree/internal/pagestore"
	"bftree/internal/workload"
)

// MultiWriterCounts is the writer sweep of the multi-writer experiment.
var MultiWriterCounts = []int{1, 2, 4, 8}

// multiWriterLatency is the real per-I/O blocking time imposed during
// the measured phase (see Device.SetRealLatency and the concurrent-probe
// experiment that introduced the technique). Each non-structural insert
// pays a handful of page accesses — the descent reads, the latched
// re-read, the leaf write — so aggregate insert throughput scales with
// writer count if and only if the write path lets writers overlap those
// waits: exactly what leaf-level latching provides for disjoint leaves
// and what a single writer mutex forbids.
const multiWriterLatency = 100 * time.Microsecond

// multiWriterOps is the total insert count of one measurement, shared
// between the writers.
const multiWriterOps = 256

// MultiWriterResult is one row of the sweep: aggregate insert throughput
// at a writer count, for writers spread over disjoint leaves and for
// writers hammering one leaf.
type MultiWriterResult struct {
	Writers             int
	Ops                 int
	DisjointElapsed     time.Duration
	DisjointThroughput  float64 // inserts per second of wall time
	ContendedElapsed    time.Duration
	ContendedThroughput float64
}

// multiWriterFixture builds a fresh unique-key relation and BF-Tree on
// Memory devices (no latency during the build). The fpp is chosen low
// so the tree has enough leaves for 8 writers to claim disjoint sets.
func multiWriterFixture(scale Scale) (*core.Tree, *heapfile.File, *device.Device, *device.Device, error) {
	n := scale.SyntheticTuples
	if n < 32768 {
		n = 32768
	}
	dataDev := device.New(device.Memory, PageSize)
	idxDev := device.New(device.Memory, PageSize)
	dataStore := pagestore.New(dataDev)
	idxStore := pagestore.New(idxDev)
	b, err := heapfile.NewBuilder(dataStore, mixedRWSchema)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	tup := make([]byte, mixedRWSchema.TupleSize)
	for i := uint64(0); i < n; i++ {
		mixedRWSchema.Set(tup, 0, i)
		if err := b.Append(tup); err != nil {
			return nil, nil, nil, nil, err
		}
	}
	file, err := b.Finish()
	if err != nil {
		return nil, nil, nil, nil, err
	}
	tr, err := core.BulkLoad(idxStore, file, 0, core.Options{FPP: 1e-4})
	if err != nil {
		return nil, nil, nil, nil, err
	}
	return tr, file, idxDev, dataDev, nil
}

// runMultiWriter measures aggregate wall-clock insert throughput for
// the given writer count through the shared Driver. keyFor maps a
// writer and its seeded sub-stream to the key that writer re-inserts;
// re-inserting a present key at its own page is the non-structural
// in-place rewrite of Algorithm 3, so the measurement isolates the
// latched write path (no splits, no COW).
func runMultiWriter(tr *core.Tree, file *heapfile.File, writers, ops int, seed int64,
	keyFor func(w int, rng *workload.SplitMix64) uint64) (time.Duration, float64, error) {
	res, err := Drive(coreTarget{tr}, DriverConfig{
		Workers: writers,
		Ops:     ops,
		RefOf:   func(k uint64) index.Ref { return index.Ref{Page: file.PageOf(k)} },
		Source: func(w int) func() workload.Op {
			rng := workload.SubStream(seed, w)
			return func() workload.Op {
				return workload.Op{Kind: workload.OpInsert, Key: keyFor(w, rng)}
			}
		},
	})
	if err != nil {
		return 0, 0, err
	}
	return res.Elapsed, res.Throughput, nil
}

// MultiWriterSweep measures aggregate insert throughput at each writer
// count, twice per row: writers partitioned over disjoint leaf regions
// (each writer draws from its own contiguous slice of the keyspace via
// its seeded sub-stream), and writers contending for one leaf (everyone
// re-inserts keys from the same 64-key range). Each measurement runs
// against a fresh tree so rows stay comparable.
func MultiWriterSweep(scale Scale, writerCounts []int) ([]*MultiWriterResult, error) {
	var out []*MultiWriterResult
	for _, writers := range writerCounts {
		r := &MultiWriterResult{Writers: writers, Ops: multiWriterOps}
		for _, contended := range []bool{false, true} {
			tr, file, idxDev, dataDev, err := multiWriterFixture(scale)
			if err != nil {
				return nil, err
			}
			n := file.NumTuples()
			chunk := n / uint64(writers)
			keyFor := func(w int, rng *workload.SplitMix64) uint64 {
				if contended {
					return rng.Uint64n(64) // one leaf for every writer
				}
				return uint64(w)*chunk + rng.Uint64n(chunk)
			}
			idxDev.SetRealLatency(multiWriterLatency)
			dataDev.SetRealLatency(multiWriterLatency)
			elapsed, thr, err := runMultiWriter(tr, file, writers, multiWriterOps, scale.Seed, keyFor)
			idxDev.SetRealLatency(0)
			dataDev.SetRealLatency(0)
			if err != nil {
				return nil, err
			}
			if contended {
				r.ContendedElapsed, r.ContendedThroughput = elapsed, thr
			} else {
				r.DisjointElapsed, r.DisjointThroughput = elapsed, thr
			}
		}
		out = append(out, r)
	}
	return out, nil
}

// RunMultiWriter is the `multi-writer` experiment: aggregate in-place
// insert throughput at 1/2/4/8 writer goroutines, with real per-access
// device latency, over disjoint leaves vs one contended leaf. Disjoint
// scaling demonstrates leaf-level write latching: writers share the
// tree's writer lock in read mode and serialize only on per-leaf
// latches, so writers on different leaves overlap their page waits.
// The contended column shows the cost of the latch actually doing its
// job: same-leaf writers serialize on the leaf's latch (and its page
// write), but still overlap their descents.
func RunMultiWriter(scale Scale) (*Table, error) {
	results, err := MultiWriterSweep(scale, MultiWriterCounts)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: fmt.Sprintf("Multi-writer inserts: leaf-latched in-place writes, %v per page access",
			multiWriterLatency),
		Header: []string{"writers", "ops", "disjoint wall", "disjoint ins/s", "speedup",
			"contended wall", "contended ins/s", "speedup"},
		Notes: []string{
			"writers re-insert present keys in place (no structural changes); disjoint",
			"rows draw from writer-private keyspace slices, contended rows share one leaf.",
			"each page access blocks for the stated real latency outside all locks, so",
			"disjoint speedup measures write-path concurrency, not host core count;",
			"speedups are relative to the 1-writer row of the same column.",
		},
	}
	baseD := results[0].DisjointThroughput
	baseC := results[0].ContendedThroughput
	for _, r := range results {
		t.AddRow(
			fmt.Sprint(r.Writers),
			fmt.Sprint(r.Ops),
			r.DisjointElapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%.0f", r.DisjointThroughput),
			fmt.Sprintf("%.2fx", r.DisjointThroughput/baseD),
			r.ContendedElapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%.0f", r.ContendedThroughput),
			fmt.Sprintf("%.2fx", r.ContendedThroughput/baseC),
		)
	}
	return t, nil
}
