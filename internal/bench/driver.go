package bench

import (
	"fmt"
	"sync"
	"time"

	"bftree/index"
	"bftree/internal/core"
	"bftree/internal/workload"
)

// This file is the execution half of the workload engine (DESIGN.md
// §8): one Driver runs any operation stream — a workload.Mix preset or
// an experiment's bespoke source — against any drive target through the
// capability interfaces. Every concurrency experiment (concurrent-probe,
// mixed-rw, multi-writer, churn, shard-scale, mixed-workload) routes its
// worker pool, latency recording and stop condition through Drive, so
// worker setup, warm-up, quota splitting and quantile math exist once.

// Target is the minimal probe surface the Driver requires. Both
// index.Index and *core.Tree satisfy it (index.Result aliases
// core.Result); everything beyond it — inserts, deletes, streaming
// scans, batched probes — is discovered per target via the index
// package's capability interfaces.
type Target interface {
	Search(key uint64) (*index.Result, error)
	SearchFirst(key uint64) (*index.Result, error)
	RangeScan(lo, hi uint64) (*index.Result, error)
}

// coreTarget adapts *core.Tree to the capability surface: the tree's
// page-keyed Insert/Delete become the Ref-keyed capability signatures
// (the slot is ignored, exactly as in the bftree index backend). The
// embedded tree supplies the Target methods.
type coreTarget struct{ *core.Tree }

func (c coreTarget) Insert(key uint64, ref index.Ref) error { return c.Tree.Insert(key, ref.Page) }
func (c coreTarget) Delete(key uint64, ref index.Ref) error { return c.Tree.Delete(key, ref.Page) }

// OpSource yields one worker's operation sequence: Source(w) is called
// once per worker and the returned draw function is called from that
// worker's goroutine only, so sources need no internal locking.
type OpSource func(worker int) func() workload.Op

// DriverConfig configures one Drive run.
type DriverConfig struct {
	// Workers is the goroutine count; 0 selects 1.
	Workers int
	// Ops is the total operation budget, split into per-worker quotas
	// (worker w runs Ops/Workers ops, the first Ops%Workers workers one
	// more) — deterministic per-worker counts, so a seeded run is
	// reproducible at any worker count. Ignored when Until is set.
	Ops int
	// Until, when non-nil, replaces the quota stop condition: workers
	// draw ops until the channel closes (churn's reader pool).
	Until <-chan struct{}
	// Warmup ops per worker run before the measured window opens;
	// executed but not counted, timed or reported.
	Warmup int
	// Source yields each worker's op stream. Required.
	Source OpSource
	// RefOf maps an insert/delete key to the tuple ref the capability
	// call needs. Required when the source emits writes.
	RefOf func(key uint64) index.Ref
	// SerializeWrites serializes writers behind an RWMutex (readers
	// proceed shared) — the drive mode for targets without the
	// ConcurrentWriters registry trait, which are read-safe only while
	// no writer runs.
	SerializeWrites bool
	// OnOp, when non-nil, runs on the worker goroutine after each
	// measured op completes; i is the worker-local op ordinal. Churn's
	// drift/limbo sampling hooks in here.
	OnOp func(worker, i int, op workload.Op)
	// Apply, when non-nil, replaces the capability dispatch: the op is
	// executed (and timed) by this closure instead. Experiments whose op
	// execution needs extra state under the clock — shard-scale's
	// lock-allocate-insert append — plug in here and still share the
	// pool, quotas and quantile plumbing.
	Apply func(worker int, op workload.Op) error
	// UseSearchFirst makes search ops probe via SearchFirst (the
	// primary-key early exit) instead of Search.
	UseSearchFirst bool
}

// KindStats aggregates the measured ops of one op kind.
type KindStats struct {
	Ops        int
	P50, P99   time.Duration
	FalseReads int
	Tuples     int
}

// DriverResult is one Drive run's outcome. Kinds is indexed by
// workload.OpKind; Moves is filled by DriveMix with the capability
// redistribution that produced the executed mix.
type DriverResult struct {
	Workers    int
	Ops        int
	Elapsed    time.Duration
	Throughput float64 // measured ops per second of wall time
	P50, P99   time.Duration

	Kinds [workload.NumOpKinds]KindStats
	Moves []workload.Move

	// Probe sums the cost accounting of every measured op's Result.
	Probe index.ProbeStats
	// Maintenance is the target's post-run snapshot when it implements
	// index.Maintainer, nil otherwise.
	Maintenance *index.MaintenanceStats
}

// opQuotas splits ops into per-worker quotas: base share everywhere,
// the remainder on the lowest workers.
func opQuotas(ops, workers int) []int {
	q := make([]int, workers)
	for w := range q {
		q[w] = ops / workers
		if w < ops%workers {
			q[w]++
		}
	}
	return q
}

// opLat is one measured op's latency sample.
type opLat struct {
	kind workload.OpKind
	d    time.Duration
}

// Drive executes the configured operation streams against t from
// Workers goroutines and aggregates throughput, per-kind latency
// quantiles and probe-cost accounting. The first worker error aborts
// the run.
func Drive(t Target, cfg DriverConfig) (*DriverResult, error) {
	workers := cfg.Workers
	if workers <= 0 {
		workers = 1
	}
	if cfg.Source == nil {
		return nil, fmt.Errorf("bench: driver needs an op source")
	}
	if cfg.Ops <= 0 && cfg.Until == nil {
		return nil, fmt.Errorf("bench: driver needs an op budget or an until channel")
	}

	ins, _ := t.(index.Inserter)
	del, _ := t.(index.Deleter)
	sc, _ := t.(index.Scanner)
	ms, _ := t.(index.MultiSearcher)

	var writeMu sync.RWMutex
	readLock, readUnlock := func() {}, func() {}
	writeLock, writeUnlock := func() {}, func() {}
	if cfg.SerializeWrites {
		readLock, readUnlock = writeMu.RLock, writeMu.RUnlock
		writeLock, writeUnlock = writeMu.Lock, writeMu.Unlock
	}

	exec := func(w int, op workload.Op) (*index.Result, error) {
		if cfg.Apply != nil {
			return nil, cfg.Apply(w, op)
		}
		switch op.Kind {
		case workload.OpSearch:
			readLock()
			defer readUnlock()
			if cfg.UseSearchFirst {
				return t.SearchFirst(op.Key)
			}
			return t.Search(op.Key)
		case workload.OpRangeScan:
			readLock()
			defer readUnlock()
			return t.RangeScan(op.Key, op.Hi)
		case workload.OpMultiSearch:
			if ms == nil {
				return nil, fmt.Errorf("bench: driver op %v unsupported by target (mix not redistributed?)", op.Kind)
			}
			readLock()
			defer readUnlock()
			return ms.MultiSearch(op.Keys)
		case workload.OpScanLimit:
			if sc == nil {
				return nil, fmt.Errorf("bench: driver op %v unsupported by target (mix not redistributed?)", op.Kind)
			}
			readLock()
			defer readUnlock()
			it, err := sc.Scan(op.Key, op.Hi)
			if err != nil {
				return nil, err
			}
			res := &index.Result{}
			for len(res.Tuples) < op.Limit && it.Next() {
				res.Tuples = append(res.Tuples, it.Tuple())
			}
			res.Stats = it.Stats()
			err = it.Err()
			if cerr := it.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return nil, err
			}
			return res, nil
		case workload.OpInsert, workload.OpDelete:
			if cfg.RefOf == nil {
				return nil, fmt.Errorf("bench: driver op %v needs a RefOf", op.Kind)
			}
			ref := cfg.RefOf(op.Key)
			writeLock()
			defer writeUnlock()
			if op.Kind == workload.OpInsert {
				if ins == nil {
					return nil, fmt.Errorf("bench: driver op %v unsupported by target (mix not redistributed?)", op.Kind)
				}
				return nil, ins.Insert(op.Key, ref)
			}
			if del == nil {
				return nil, fmt.Errorf("bench: driver op %v unsupported by target (mix not redistributed?)", op.Kind)
			}
			return nil, del.Delete(op.Key, ref)
		}
		return nil, fmt.Errorf("bench: driver got unknown op kind %v", op.Kind)
	}

	var quotas []int
	if cfg.Until == nil {
		quotas = opQuotas(cfg.Ops, workers)
	}

	lats := make([][]opLat, workers)
	falseReads := make([][workload.NumOpKinds]int, workers)
	tuples := make([][workload.NumOpKinds]int, workers)
	probes := make([]index.ProbeStats, workers)
	errs := make([]error, workers)

	// Warm up off the clock: every worker runs its warm-up ops, then all
	// block on the start gate so the measured window opens for everyone
	// at once.
	var warmWg, wg sync.WaitGroup
	startGate := make(chan struct{})
	for w := 0; w < workers; w++ {
		warmWg.Add(1)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			next := cfg.Source(w)
			for i := 0; i < cfg.Warmup; i++ {
				if _, err := exec(w, next()); err != nil {
					errs[w] = err
					break
				}
			}
			warmWg.Done()
			if errs[w] != nil {
				return
			}
			<-startGate
			for i := 0; ; i++ {
				if cfg.Until != nil {
					select {
					case <-cfg.Until:
						return
					default:
					}
				} else if i >= quotas[w] {
					return
				}
				op := next()
				t0 := time.Now()
				res, err := exec(w, op)
				d := time.Since(t0)
				if err != nil {
					errs[w] = err
					return
				}
				lats[w] = append(lats[w], opLat{kind: op.Kind, d: d})
				if res != nil {
					falseReads[w][op.Kind] += res.Stats.FalseReads
					tuples[w][op.Kind] += len(res.Tuples)
					addProbeStats(&probes[w], res.Stats)
				}
				if cfg.OnOp != nil {
					cfg.OnOp(w, i, op)
				}
			}
		}(w)
	}
	warmWg.Wait()
	start := time.Now()
	close(startGate)
	wg.Wait()
	elapsed := time.Since(start)

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	res := &DriverResult{Workers: workers, Elapsed: elapsed}
	var all []time.Duration
	perKind := make([][]time.Duration, workload.NumOpKinds)
	for w := 0; w < workers; w++ {
		for _, l := range lats[w] {
			all = append(all, l.d)
			perKind[l.kind] = append(perKind[l.kind], l.d)
		}
		for k := workload.OpKind(0); k < workload.NumOpKinds; k++ {
			res.Kinds[k].FalseReads += falseReads[w][k]
			res.Kinds[k].Tuples += tuples[w][k]
		}
		addProbeStats(&res.Probe, probes[w])
	}
	res.Ops = len(all)
	res.P50, res.P99 = latencyQuantiles(all)
	if elapsed > 0 {
		res.Throughput = float64(res.Ops) / elapsed.Seconds()
	}
	for k := workload.OpKind(0); k < workload.NumOpKinds; k++ {
		res.Kinds[k].Ops = len(perKind[k])
		res.Kinds[k].P50, res.Kinds[k].P99 = latencyQuantiles(perKind[k])
	}
	if m, ok := t.(index.Maintainer); ok {
		snap := m.MaintenanceStats()
		res.Maintenance = &snap
	}
	return res, nil
}

// addProbeStats accumulates s into dst.
func addProbeStats(dst *index.ProbeStats, s index.ProbeStats) {
	dst.IndexReads += s.IndexReads
	dst.BFProbes += s.BFProbes
	dst.CandidatePages += s.CandidatePages
	dst.DataPagesRead += s.DataPagesRead
	dst.FalseReads += s.FalseReads
}

// targetCaps derives the workload-facing capability set of a target
// from its discovered interfaces.
func targetCaps(t Target) workload.Caps {
	c := index.Capabilities(t)
	return workload.Caps{
		Insert:      c.Insert,
		Delete:      c.Delete,
		Scan:        c.Scan,
		MultiSearch: c.MultiSearch,
	}
}

// MixConfig configures DriveMix: a preset (or custom) Mix, the key
// domain and distribution, and the Drive knobs.
type MixConfig struct {
	Mix workload.Mix
	// Dist and Skew pick the key-choice distribution.
	Dist workload.Dist
	Skew float64
	// NumKeys and KeyAt define the key domain (see
	// workload.StreamConfig).
	NumKeys uint64
	KeyAt   func(rank uint64) uint64
	Seed    int64

	Workers         int
	Ops             int
	Warmup          int
	Until           <-chan struct{}
	RefOf           func(key uint64) index.Ref
	SerializeWrites bool
	UseSearchFirst  bool
	OnOp            func(worker, i int, op workload.Op)
}

// DriveMix is the front door of the workload engine: it redistributes
// the mix along t's declared capabilities (reporting every move in the
// result), builds one deterministic op stream per worker from the run
// seed, and executes them through Drive.
func DriveMix(t Target, cfg MixConfig) (*DriverResult, error) {
	mix, moves := cfg.Mix.Redistribute(targetCaps(t))
	if mix.WriteFraction() > 0 && cfg.RefOf == nil {
		return nil, fmt.Errorf("bench: mix %q has writes but no RefOf", cfg.Mix.Name)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 1
	}
	streams := make([]*workload.OpStream, workers)
	for w := range streams {
		s, err := workload.NewOpStream(mix, workload.StreamConfig{
			Dist:    cfg.Dist,
			Skew:    cfg.Skew,
			NumKeys: cfg.NumKeys,
			KeyAt:   cfg.KeyAt,
			Worker:  w,
			Workers: workers,
			Seed:    cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		streams[w] = s
	}
	res, err := Drive(t, DriverConfig{
		Workers:         workers,
		Ops:             cfg.Ops,
		Until:           cfg.Until,
		Warmup:          cfg.Warmup,
		Source:          func(w int) func() workload.Op { return streams[w].Next },
		RefOf:           cfg.RefOf,
		SerializeWrites: cfg.SerializeWrites,
		UseSearchFirst:  cfg.UseSearchFirst,
		OnOp:            cfg.OnOp,
	})
	if err != nil {
		return nil, err
	}
	res.Moves = moves
	return res, nil
}
