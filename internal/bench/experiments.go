package bench

import (
	"fmt"
	"sort"
	"time"

	"bftree/internal/bptree"
	"bftree/internal/core"
	"bftree/internal/device"
	"bftree/internal/hashindex"
	"bftree/internal/workload"
)

// table2FPPs and table3FPPs are the sweeps of Tables 2 and 3.
var (
	table2FPPs = []float64{0.2, 0.1, 1.5e-7, 1e-15}
	table3FPPs = []float64{0.2, 0.1, 1.9e-2, 1.8e-3, 1.72e-4}
	// fig5FPPs spans the paper's x-axis (0.2 down to 1e-15).
	fig5FPPs = []float64{0.2, 0.1, 1.9e-2, 1.8e-3, 1.72e-4, 1.5e-7, 1e-10, 1e-15}
)

// syntheticEnv creates a configuration cell with relation R generated on
// the data device.
func syntheticEnv(cfg StorageConfig, scale Scale, cachePages int) (*Env, *workload.Synthetic, error) {
	env := NewEnv(cfg, cachePages)
	syn, err := workload.GenerateSynthetic(env.DataStore, scale.SyntheticTuples, 11, scale.Seed)
	if err != nil {
		return nil, nil, err
	}
	return env, syn, nil
}

// pkProbes returns the PK probe keys: 100 % hit rate, as in Section 6.2.
func pkProbes(syn *workload.Synthetic, scale Scale) ([]uint64, error) {
	existing := make([]uint64, 4096)
	step := syn.MaxPK / uint64(len(existing))
	if step == 0 {
		step = 1
	}
	for i := range existing {
		existing[i] = uint64(i) * step % (syn.MaxPK + 1)
	}
	ps, err := workload.MakeProbes(scale.Probes, 1.0, existing, nil, scale.Seed+1)
	if err != nil {
		return nil, err
	}
	return ps.Keys, nil
}

// att1Probes returns the ATT1 probe keys: 14 % of probes match, as in
// Section 6.3, with misses falling inside the key domain.
func att1Probes(syn *workload.Synthetic, scale Scale) ([]uint64, error) {
	maxKey := syn.ATT1Keys[len(syn.ATT1Keys)-1]
	absent := workload.AbsentWithin(1, maxKey, syn.ATT1Keys, 4096)
	if len(absent) == 0 {
		absent = workload.AbsentKeys(maxKey, 4096)
	}
	ps, err := workload.MakeProbes(scale.Probes, 0.14, syn.ATT1Keys, absent, scale.Seed+2)
	if err != nil {
		return nil, err
	}
	return ps.Keys, nil
}

// buildBF bulk-loads a BF-Tree in a cell.
func buildBF(env *Env, syn *workload.Synthetic, fieldIdx int, fpp float64) (*core.Tree, error) {
	return core.BulkLoad(env.IdxStore, syn.File, fieldIdx, core.Options{FPP: fpp})
}

// buildBP bulk-loads the B+-Tree baseline in a cell: per-tuple entries
// for the unique PK, one entry per distinct key for ordered non-unique
// attributes (the paper's baseline; see BuildDedupEntries).
func buildBP(env *Env, syn *workload.Synthetic, fieldIdx int) (*bptree.Tree, error) {
	var entries []bptree.Entry
	var err error
	if fieldIdx == 0 {
		entries, err = BuildPKEntries(syn.File, fieldIdx)
	} else {
		entries, err = BuildDedupEntries(syn.File, fieldIdx)
	}
	if err != nil {
		return nil, err
	}
	return bptree.BulkLoad(env.IdxStore, entries, 1.0)
}

// measureBP picks the probe style matching the entry layout.
func measureBP(env *Env, tr *bptree.Tree, syn *workload.Synthetic, fieldIdx int, keys []uint64) (*Measurement, error) {
	if fieldIdx == 0 {
		return MeasureBPTree(env, tr, syn.File, fieldIdx, keys)
	}
	return MeasureBPTreeOrdered(env, tr, syn.File, fieldIdx, keys)
}

// RunTable2 reproduces Table 2: index size in pages for the B+-Tree and
// BF-Trees at four fpp settings, for both the PK and ATT1 indexes of the
// synthetic relation.
func RunTable2(scale Scale) (*Table, error) {
	cfg := StorageConfig{Name: "mem/mem", Index: device.Memory, Data: device.Memory}
	env, syn, err := syntheticEnv(cfg, scale, 0)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: fmt.Sprintf("Table 2: index size in 4KB pages (%d-tuple relation, %d MB)",
			scale.SyntheticTuples, scale.SyntheticTuples*256/(1<<20)),
		Header: []string{"variation", "fpp", "pages(PK)", "pages(ATT1)", "gain(PK)", "gain(ATT1)"},
	}
	bpPK, err := buildBP(env, syn, 0)
	if err != nil {
		return nil, err
	}
	bpATT, err := buildBP(env, syn, 1)
	if err != nil {
		return nil, err
	}
	t.AddRow("B+-Tree", "-", fmt.Sprint(bpPK.NumNodes()), fmt.Sprint(bpATT.NumNodes()), "1x", "1x")
	for _, fpp := range table2FPPs {
		bfPK, err := buildBF(env, syn, 0, fpp)
		if err != nil {
			return nil, err
		}
		bfATT, err := buildBF(env, syn, 1, fpp)
		if err != nil {
			return nil, err
		}
		t.AddRow("BF-Tree", fmtF(fpp),
			fmt.Sprint(bfPK.NumNodes()), fmt.Sprint(bfATT.NumNodes()),
			fmt.Sprintf("%.3gx", float64(bpPK.NumNodes())/float64(bfPK.NumNodes())),
			fmt.Sprintf("%.3gx", float64(bpATT.NumNodes())/float64(bfATT.NumNodes())))
	}
	t.Notes = append(t.Notes, "paper (1GB): PK gain 48x at fpp=0.2 down to 2.25x at 1e-15; ATT1 46x to 2.22x")
	return t, nil
}

// RunTable3 reproduces Table 3: falsely read data pages per search for
// the PK index (100 % hits) and the ATT1 index (14 % hits).
func RunTable3(scale Scale) (*Table, error) {
	cfg := StorageConfig{Name: "mem/mem", Index: device.Memory, Data: device.Memory}
	t := &Table{
		Title:  "Table 3: false reads per search",
		Header: []string{"fpp", "false-reads(PK)", "false-reads(ATT1)"},
	}
	for _, fpp := range table3FPPs {
		env, syn, err := syntheticEnv(cfg, scale, 0)
		if err != nil {
			return nil, err
		}
		bfPK, err := buildBF(env, syn, 0, fpp)
		if err != nil {
			return nil, err
		}
		pk, err := pkProbes(syn, scale)
		if err != nil {
			return nil, err
		}
		mPK, err := MeasureBFTree(env, bfPK, pk, true)
		if err != nil {
			return nil, err
		}
		bfATT, err := buildBF(env, syn, 1, fpp)
		if err != nil {
			return nil, err
		}
		att, err := att1Probes(syn, scale)
		if err != nil {
			return nil, err
		}
		mATT, err := MeasureBFTree(env, bfATT, att, false)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmtF(fpp), fmtF(mPK.FalsePerProbe), fmtF(mATT.FalsePerProbe))
	}
	t.Notes = append(t.Notes, "paper (1GB): PK 13.58 → 0.01; ATT1 701 → 0.04 over the same sweep")
	return t, nil
}

// RunFig5a reproduces Figure 5(a): PK BF-Tree response time across the
// fpp sweep for the five storage configurations.
func RunFig5a(scale Scale) (*Table, error) {
	return runPerfSweep(scale, 0, true, "Figure 5(a): PK BF-Tree avg response time")
}

// RunFig8a reproduces Figure 8(a): the same sweep for the non-unique
// ATT1 index at 14 % hit rate.
func RunFig8a(scale Scale) (*Table, error) {
	return runPerfSweep(scale, 1, false, "Figure 8(a): ATT1 BF-Tree avg response time")
}

func runPerfSweep(scale Scale, fieldIdx int, unique bool, title string) (*Table, error) {
	configs := FiveConfigs()
	header := []string{"fpp"}
	for _, c := range configs {
		header = append(header, c.Name)
	}
	t := &Table{Title: title, Header: header}
	for _, fpp := range fig5FPPs {
		row := []string{fmtF(fpp)}
		for _, cfg := range configs {
			env, syn, err := syntheticEnv(cfg, scale, 0)
			if err != nil {
				return nil, err
			}
			tr, err := buildBF(env, syn, fieldIdx, fpp)
			if err != nil {
				return nil, err
			}
			var keys []uint64
			if unique {
				keys, err = pkProbes(syn, scale)
			} else {
				keys, err = att1Probes(syn, scale)
			}
			if err != nil {
				return nil, err
			}
			m, err := MeasureBFTree(env, tr, keys, unique)
			if err != nil {
				return nil, err
			}
			row = append(row, m.AvgTime.String())
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes, "columns = index-device/data-device; virtual I/O time per probe")
	return t, nil
}

// RunFig5b reproduces Figure 5(b): the B+-Tree baseline across the five
// configurations plus the memory-resident hash index.
func RunFig5b(scale Scale) (*Table, error) {
	return runBaselines(scale, 0, "Figure 5(b): PK baselines avg response time", true)
}

// RunFig8b reproduces Figure 8(b): ATT1 baselines.
func RunFig8b(scale Scale) (*Table, error) {
	return runBaselines(scale, 1, "Figure 8(b): ATT1 baselines avg response time", false)
}

func runBaselines(scale Scale, fieldIdx int, title string, unique bool) (*Table, error) {
	t := &Table{Title: title, Header: []string{"index", "config", "avg-time"}}
	for _, cfg := range FiveConfigs() {
		env, syn, err := syntheticEnv(cfg, scale, 0)
		if err != nil {
			return nil, err
		}
		bp, err := buildBP(env, syn, fieldIdx)
		if err != nil {
			return nil, err
		}
		var keys []uint64
		if unique {
			keys, err = pkProbes(syn, scale)
		} else {
			keys, err = att1Probes(syn, scale)
		}
		if err != nil {
			return nil, err
		}
		m, err := measureBP(env, bp, syn, fieldIdx, keys)
		if err != nil {
			return nil, err
		}
		t.AddRow("B+-Tree", cfg.Name, m.AvgTime.String())
	}
	// Hash index: always memory-resident; data on HDD and on SSD.
	for _, dataKind := range []device.Kind{device.HDD, device.SSD} {
		cfg := StorageConfig{Name: "mem/" + dataKind.String(), Index: device.Memory, Data: dataKind}
		env, syn, err := syntheticEnv(cfg, scale, 0)
		if err != nil {
			return nil, err
		}
		entries, err := BuildPKEntries(syn.File, fieldIdx)
		if err != nil {
			return nil, err
		}
		hi := hashindex.Build(entries)
		var keys []uint64
		if unique {
			keys, err = pkProbes(syn, scale)
		} else {
			keys, err = att1Probes(syn, scale)
		}
		if err != nil {
			return nil, err
		}
		m, err := MeasureHash(env, hi, syn.File, fieldIdx, keys)
		if err != nil {
			return nil, err
		}
		t.AddRow("hash(mem)", cfg.Name, m.AvgTime.String())
	}
	return t, nil
}

// breakEvenRow is one point of Figures 6 and 9.
type breakEvenRow struct {
	config   string
	fpp      float64
	gain     float64 // B+-Tree size / BF-Tree size
	normPerf float64 // B+-Tree time / BF-Tree time (>1: BF faster)
}

// RunFig6 reproduces Figure 6: PK break-even points — normalized
// performance vs capacity gain per storage configuration.
func RunFig6(scale Scale) (*Table, error) {
	return runBreakEven(scale, 0, true, "Figure 6: PK break-even points (norm perf >1 means BF-Tree faster)")
}

// RunFig9 reproduces Figure 9: ATT1 break-even points.
func RunFig9(scale Scale) (*Table, error) {
	return runBreakEven(scale, 1, false, "Figure 9: ATT1 break-even points (norm perf >1 means BF-Tree faster)")
}

func runBreakEven(scale Scale, fieldIdx int, unique bool, title string) (*Table, error) {
	var rows []breakEvenRow
	for _, cfg := range FiveConfigs() {
		// Baseline per config.
		env, syn, err := syntheticEnv(cfg, scale, 0)
		if err != nil {
			return nil, err
		}
		bp, err := buildBP(env, syn, fieldIdx)
		if err != nil {
			return nil, err
		}
		var keys []uint64
		if unique {
			keys, err = pkProbes(syn, scale)
		} else {
			keys, err = att1Probes(syn, scale)
		}
		if err != nil {
			return nil, err
		}
		mBP, err := measureBP(env, bp, syn, fieldIdx, keys)
		if err != nil {
			return nil, err
		}
		bpSize := bp.NumNodes()
		for _, fpp := range fig5FPPs {
			env2, syn2, err := syntheticEnv(cfg, scale, 0)
			if err != nil {
				return nil, err
			}
			bf, err := buildBF(env2, syn2, fieldIdx, fpp)
			if err != nil {
				return nil, err
			}
			var keys2 []uint64
			if unique {
				keys2, err = pkProbes(syn2, scale)
			} else {
				keys2, err = att1Probes(syn2, scale)
			}
			if err != nil {
				return nil, err
			}
			m, err := MeasureBFTree(env2, bf, keys2, unique)
			if err != nil {
				return nil, err
			}
			perf := float64(mBP.AvgTime) / float64(m.AvgTime)
			rows = append(rows, breakEvenRow{
				config:   cfg.Name,
				fpp:      fpp,
				gain:     float64(bpSize) / float64(bf.NumNodes()),
				normPerf: perf,
			})
		}
	}
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].config != rows[j].config {
			return rows[i].config < rows[j].config
		}
		return rows[i].gain < rows[j].gain
	})
	t := &Table{Title: title, Header: []string{"config", "fpp", "capacity-gain", "norm-perf"}}
	for _, r := range rows {
		t.AddRow(r.config, fmtF(r.fpp), fmtF(r.gain), fmtF(r.normPerf))
	}
	t.Notes = append(t.Notes,
		"break-even = largest capacity gain with norm-perf >= 1; paper: break-even shifts to larger gains as I/O gets slower")
	return t, nil
}

// RunFig7 reproduces Figure 7: PK response time with warm caches for
// SSD/SSD, SSD/HDD and HDD/HDD — the B+-Tree against the fastest
// BF-Tree.
func RunFig7(scale Scale) (*Table, error) {
	return runWarm(scale, 0, true, "Figure 7: PK with warm caches (internal index levels resident)")
}

// RunFig10 reproduces Figure 10: ATT1 with warm caches.
func RunFig10(scale Scale) (*Table, error) {
	return runWarm(scale, 1, false, "Figure 10: ATT1 with warm caches (internal index levels resident)")
}

func runWarm(scale Scale, fieldIdx int, unique bool, title string) (*Table, error) {
	const cachePages = 65536
	t := &Table{Title: title, Header: []string{"config", "B+-Tree", "best BF-Tree", "bf-fpp", "capacity-gain"}}
	for _, cfg := range WarmConfigs() {
		env, syn, err := syntheticEnv(cfg, scale, cachePages)
		if err != nil {
			return nil, err
		}
		bp, err := buildBP(env, syn, fieldIdx)
		if err != nil {
			return nil, err
		}
		internal, err := bp.InternalPages()
		if err != nil {
			return nil, err
		}
		if err := WarmIndex(env, internal); err != nil {
			return nil, err
		}
		var keys []uint64
		if unique {
			keys, err = pkProbes(syn, scale)
		} else {
			keys, err = att1Probes(syn, scale)
		}
		if err != nil {
			return nil, err
		}
		mBP, err := measureBP(env, bp, syn, fieldIdx, keys)
		if err != nil {
			return nil, err
		}
		bestTime := time.Duration(1<<62 - 1)
		bestFPP := 0.0
		bestGain := 0.0
		for _, fpp := range fig5FPPs {
			env2, syn2, err := syntheticEnv(cfg, scale, cachePages)
			if err != nil {
				return nil, err
			}
			bf, err := buildBF(env2, syn2, fieldIdx, fpp)
			if err != nil {
				return nil, err
			}
			internalBF, err := bf.InternalPages()
			if err != nil {
				return nil, err
			}
			if len(internalBF) > 0 {
				if err := WarmIndex(env2, internalBF); err != nil {
					return nil, err
				}
			}
			var keys2 []uint64
			if unique {
				keys2, err = pkProbes(syn2, scale)
			} else {
				keys2, err = att1Probes(syn2, scale)
			}
			if err != nil {
				return nil, err
			}
			m, err := MeasureBFTree(env2, bf, keys2, unique)
			if err != nil {
				return nil, err
			}
			if m.AvgTime < bestTime {
				bestTime = m.AvgTime
				bestFPP = fpp
				bestGain = float64(bp.NumNodes()) / float64(bf.NumNodes())
			}
		}
		t.AddRow(cfg.Name, mBP.AvgTime.String(), bestTime.String(), fmtF(bestFPP), fmtF(bestGain)+"x")
	}
	t.Notes = append(t.Notes,
		"paper: warm caches help the (taller) B+-Tree more, but BF-Tree stays competitive except ATT1 SSD/SSD")
	return t, nil
}
