package bench

import (
	"fmt"
	"sort"
	"time"

	"bftree/index"
	"bftree/internal/core"
	"bftree/internal/device"
	"bftree/internal/workload"
)

// table2FPPs and table3FPPs are the sweeps of Tables 2 and 3.
var (
	table2FPPs = []float64{0.2, 0.1, 1.5e-7, 1e-15}
	table3FPPs = []float64{0.2, 0.1, 1.9e-2, 1.8e-3, 1.72e-4}
	// fig5FPPs spans the paper's x-axis (0.2 down to 1e-15).
	fig5FPPs = []float64{0.2, 0.1, 1.9e-2, 1.8e-3, 1.72e-4, 1.5e-7, 1e-10, 1e-15}
)

// syntheticEnv creates a configuration cell with relation R generated on
// the data device.
func syntheticEnv(cfg StorageConfig, scale Scale, cachePages int) (*Env, *workload.Synthetic, error) {
	env := NewEnv(cfg, cachePages)
	syn, err := workload.GenerateSynthetic(env.DataStore, scale.SyntheticTuples, 11, scale.Seed)
	if err != nil {
		return nil, nil, err
	}
	return env, syn, nil
}

// pkProbes returns the PK probe keys: 100 % hit rate, as in Section 6.2.
func pkProbes(syn *workload.Synthetic, scale Scale) ([]uint64, error) {
	existing := make([]uint64, 4096)
	step := syn.MaxPK / uint64(len(existing))
	if step == 0 {
		step = 1
	}
	for i := range existing {
		existing[i] = uint64(i) * step % (syn.MaxPK + 1)
	}
	ps, err := workload.MakeProbes(scale.Probes, 1.0, existing, nil, scale.Seed+1)
	if err != nil {
		return nil, err
	}
	return ps.Keys, nil
}

// att1Probes returns the ATT1 probe keys: 14 % of probes match, as in
// Section 6.3, with misses falling inside the key domain.
func att1Probes(syn *workload.Synthetic, scale Scale) ([]uint64, error) {
	maxKey := syn.ATT1Keys[len(syn.ATT1Keys)-1]
	absent := workload.AbsentWithin(1, maxKey, syn.ATT1Keys, 4096)
	if len(absent) == 0 {
		absent = workload.AbsentKeys(maxKey, 4096)
	}
	ps, err := workload.MakeProbes(scale.Probes, 0.14, syn.ATT1Keys, absent, scale.Seed+2)
	if err != nil {
		return nil, err
	}
	return ps.Keys, nil
}

// syntheticProbes picks the probe batch for a field of the synthetic
// relation: unique-PK probes for field 0, ATT1 probes otherwise.
func syntheticProbes(syn *workload.Synthetic, scale Scale, fieldIdx int) ([]uint64, bool, error) {
	if fieldIdx == 0 {
		keys, err := pkProbes(syn, scale)
		return keys, true, err
	}
	keys, err := att1Probes(syn, scale)
	return keys, false, err
}

// pointOpts returns the build options of a point-lookup experiment:
// the fpp for approximate backends, the deduplicated entry layout for
// exact tree backends over ordered non-unique attributes (the paper's
// baseline; field 0 is the unique PK).
func pointOpts(fieldIdx int, fpp float64) index.Options {
	return index.Options{
		BFTree:    core.Options{FPP: fpp},
		DedupKeys: fieldIdx != 0,
	}
}

// sweepFPPs adapts an fpp sweep to a backend: approximate backends get
// the full sweep, exact ones a single don't-care point (their build
// ignores the fpp, so one row carries everything).
func sweepFPPs(backend string, fpps []float64) ([]float64, error) {
	b, ok := index.Lookup(backend)
	if !ok {
		return nil, fmt.Errorf("bench: unknown index backend %q (have %v)", backend, index.Backends())
	}
	if b.Approximate {
		return fpps, nil
	}
	return []float64{0}, nil
}

// fppLabel renders a sweep point; the exact backends' don't-care point
// shows as "-".
func fppLabel(fpp float64) string {
	if fpp == 0 {
		return "-"
	}
	return fmtF(fpp)
}

// RunTable2 reproduces Table 2: index size in pages for the B+-Tree and
// BF-Trees at four fpp settings, for both the PK and ATT1 indexes of the
// synthetic relation.
func RunTable2(scale Scale) (*Table, error) {
	cfg := StorageConfig{Name: "mem/mem", Index: device.Memory, Data: device.Memory}
	env, syn, err := syntheticEnv(cfg, scale, 0)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: fmt.Sprintf("Table 2: index size in 4KB pages (%d-tuple relation, %d MB)",
			scale.SyntheticTuples, scale.SyntheticTuples*256/(1<<20)),
		Header: []string{"variation", "fpp", "pages(PK)", "pages(ATT1)", "gain(PK)", "gain(ATT1)"},
	}
	bpPK, err := BuildIndex("bptree", env, syn.File, 0, pointOpts(0, 0))
	if err != nil {
		return nil, err
	}
	bpATT, err := BuildIndex("bptree", env, syn.File, 1, pointOpts(1, 0))
	if err != nil {
		return nil, err
	}
	pkPages, attPages := bpPK.Stats().Pages, bpATT.Stats().Pages
	t.AddRow("B+-Tree", "-", fmt.Sprint(pkPages), fmt.Sprint(attPages), "1x", "1x")
	for _, fpp := range table2FPPs {
		bfPK, err := BuildIndex("bftree", env, syn.File, 0, pointOpts(0, fpp))
		if err != nil {
			return nil, err
		}
		bfATT, err := BuildIndex("bftree", env, syn.File, 1, pointOpts(1, fpp))
		if err != nil {
			return nil, err
		}
		t.AddRow("BF-Tree", fmtF(fpp),
			fmt.Sprint(bfPK.Stats().Pages), fmt.Sprint(bfATT.Stats().Pages),
			fmt.Sprintf("%.3gx", float64(pkPages)/float64(bfPK.Stats().Pages)),
			fmt.Sprintf("%.3gx", float64(attPages)/float64(bfATT.Stats().Pages)))
	}
	t.Notes = append(t.Notes, "paper (1GB): PK gain 48x at fpp=0.2 down to 2.25x at 1e-15; ATT1 46x to 2.22x")
	return t, nil
}

// RunTable3 reproduces Table 3: falsely read data pages per search for
// the PK index (100 % hits) and the ATT1 index (14 % hits). The -index
// flag swaps in any registered backend (exact backends report 0).
func RunTable3(scale Scale) (*Table, error) {
	cfg := StorageConfig{Name: "mem/mem", Index: device.Memory, Data: device.Memory}
	backend := scale.IndexBackend()
	fpps, err := sweepFPPs(backend, table3FPPs)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  fmt.Sprintf("Table 3: false reads per search (%s)", backend),
		Header: []string{"fpp", "false-reads(PK)", "false-reads(ATT1)"},
	}
	for _, fpp := range fpps {
		env, syn, err := syntheticEnv(cfg, scale, 0)
		if err != nil {
			return nil, err
		}
		ixPK, err := BuildIndex(backend, env, syn.File, 0, pointOpts(0, fpp))
		if err != nil {
			return nil, err
		}
		pk, err := pkProbes(syn, scale)
		if err != nil {
			return nil, err
		}
		mPK, err := MeasureIndex(env, ixPK, pk, true)
		if err != nil {
			return nil, err
		}
		ixATT, err := BuildIndex(backend, env, syn.File, 1, pointOpts(1, fpp))
		if err != nil {
			return nil, err
		}
		att, err := att1Probes(syn, scale)
		if err != nil {
			return nil, err
		}
		mATT, err := MeasureIndex(env, ixATT, att, false)
		if err != nil {
			return nil, err
		}
		t.AddRow(fppLabel(fpp), fmtF(mPK.FalsePerProbe), fmtF(mATT.FalsePerProbe))
	}
	t.Notes = append(t.Notes, "paper (1GB): PK 13.58 → 0.01; ATT1 701 → 0.04 over the same sweep")
	return t, nil
}

// RunFig5a reproduces Figure 5(a): PK response time across the fpp
// sweep for the five storage configurations, for the selected backend
// (BF-Tree by default; -index swaps in any registered one).
func RunFig5a(scale Scale) (*Table, error) {
	return runPerfSweep(scale, 0, "Figure 5(a): PK avg response time")
}

// RunFig8a reproduces Figure 8(a): the same sweep for the non-unique
// ATT1 index at 14 % hit rate.
func RunFig8a(scale Scale) (*Table, error) {
	return runPerfSweep(scale, 1, "Figure 8(a): ATT1 avg response time")
}

func runPerfSweep(scale Scale, fieldIdx int, title string) (*Table, error) {
	backend := scale.IndexBackend()
	fpps, err := sweepFPPs(backend, fig5FPPs)
	if err != nil {
		return nil, err
	}
	configs := FiveConfigs()
	header := []string{"fpp"}
	for _, c := range configs {
		header = append(header, c.Name)
	}
	t := &Table{Title: fmt.Sprintf("%s (%s)", title, backend), Header: header}
	for _, fpp := range fpps {
		row := []string{fppLabel(fpp)}
		for _, cfg := range configs {
			env, syn, err := syntheticEnv(cfg, scale, 0)
			if err != nil {
				return nil, err
			}
			ix, err := BuildIndex(backend, env, syn.File, fieldIdx, pointOpts(fieldIdx, fpp))
			if err != nil {
				return nil, err
			}
			keys, unique, err := syntheticProbes(syn, scale, fieldIdx)
			if err != nil {
				return nil, err
			}
			m, err := MeasureIndex(env, ix, keys, unique)
			if err != nil {
				return nil, err
			}
			row = append(row, m.AvgTime.String())
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes, "columns = index-device/data-device; virtual I/O time per probe")
	return t, nil
}

// RunFig5b reproduces Figure 5(b): the exact baselines across the
// storage configurations — a walk over every registered non-approximate
// backend (B+-Tree and FD-Tree on all five, the memory-resident hash on
// the two data-device cells).
func RunFig5b(scale Scale) (*Table, error) {
	return runBaselines(scale, 0, "Figure 5(b): PK baselines avg response time")
}

// RunFig8b reproduces Figure 8(b): ATT1 baselines.
func RunFig8b(scale Scale) (*Table, error) {
	return runBaselines(scale, 1, "Figure 8(b): ATT1 baselines avg response time")
}

// baselineConfigs returns the storage configurations applicable to a
// backend: all five for on-device indexes, the data-device axis only
// for memory-resident ones.
func baselineConfigs(b index.Backend) []StorageConfig {
	if !b.MemoryResident {
		return FiveConfigs()
	}
	return []StorageConfig{
		{Name: "mem/HDD", Index: device.Memory, Data: device.HDD},
		{Name: "mem/SSD", Index: device.Memory, Data: device.SSD},
	}
}

func runBaselines(scale Scale, fieldIdx int, title string) (*Table, error) {
	t := &Table{Title: title, Header: []string{"index", "config", "avg-time"}}
	for _, name := range index.Backends() {
		b, _ := index.Lookup(name)
		if b.Approximate {
			continue // the approximate side is Figures 5(a)/8(a)
		}
		for _, cfg := range baselineConfigs(b) {
			env, syn, err := syntheticEnv(cfg, scale, 0)
			if err != nil {
				return nil, err
			}
			ix, err := BuildIndex(name, env, syn.File, fieldIdx, pointOpts(fieldIdx, 0))
			if err != nil {
				return nil, err
			}
			keys, unique, err := syntheticProbes(syn, scale, fieldIdx)
			if err != nil {
				return nil, err
			}
			m, err := MeasureIndex(env, ix, keys, unique)
			if err != nil {
				return nil, err
			}
			t.AddRow(name, cfg.Name, m.AvgTime.String())
		}
	}
	return t, nil
}

// breakEvenRow is one point of Figures 6 and 9.
type breakEvenRow struct {
	config   string
	fpp      float64
	gain     float64 // B+-Tree size / BF-Tree size
	normPerf float64 // B+-Tree time / BF-Tree time (>1: BF faster)
}

// RunFig6 reproduces Figure 6: PK break-even points — normalized
// performance vs capacity gain per storage configuration.
func RunFig6(scale Scale) (*Table, error) {
	return runBreakEven(scale, 0, "Figure 6: PK break-even points (norm perf >1 means BF-Tree faster)")
}

// RunFig9 reproduces Figure 9: ATT1 break-even points.
func RunFig9(scale Scale) (*Table, error) {
	return runBreakEven(scale, 1, "Figure 9: ATT1 break-even points (norm perf >1 means BF-Tree faster)")
}

func runBreakEven(scale Scale, fieldIdx int, title string) (*Table, error) {
	var rows []breakEvenRow
	for _, cfg := range FiveConfigs() {
		// Baseline per config.
		env, syn, err := syntheticEnv(cfg, scale, 0)
		if err != nil {
			return nil, err
		}
		bp, err := BuildIndex("bptree", env, syn.File, fieldIdx, pointOpts(fieldIdx, 0))
		if err != nil {
			return nil, err
		}
		keys, unique, err := syntheticProbes(syn, scale, fieldIdx)
		if err != nil {
			return nil, err
		}
		mBP, err := MeasureIndex(env, bp, keys, unique)
		if err != nil {
			return nil, err
		}
		bpSize := bp.Stats().Pages
		for _, fpp := range fig5FPPs {
			env2, syn2, err := syntheticEnv(cfg, scale, 0)
			if err != nil {
				return nil, err
			}
			bf, err := BuildIndex("bftree", env2, syn2.File, fieldIdx, pointOpts(fieldIdx, fpp))
			if err != nil {
				return nil, err
			}
			keys2, unique2, err := syntheticProbes(syn2, scale, fieldIdx)
			if err != nil {
				return nil, err
			}
			m, err := MeasureIndex(env2, bf, keys2, unique2)
			if err != nil {
				return nil, err
			}
			perf := float64(mBP.AvgTime) / float64(m.AvgTime)
			rows = append(rows, breakEvenRow{
				config:   cfg.Name,
				fpp:      fpp,
				gain:     float64(bpSize) / float64(bf.Stats().Pages),
				normPerf: perf,
			})
		}
	}
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].config != rows[j].config {
			return rows[i].config < rows[j].config
		}
		return rows[i].gain < rows[j].gain
	})
	t := &Table{Title: title, Header: []string{"config", "fpp", "capacity-gain", "norm-perf"}}
	for _, r := range rows {
		t.AddRow(r.config, fmtF(r.fpp), fmtF(r.gain), fmtF(r.normPerf))
	}
	t.Notes = append(t.Notes,
		"break-even = largest capacity gain with norm-perf >= 1; paper: break-even shifts to larger gains as I/O gets slower")
	return t, nil
}

// RunFig7 reproduces Figure 7: PK response time with warm caches for
// SSD/SSD, SSD/HDD and HDD/HDD — the B+-Tree against the fastest
// BF-Tree.
func RunFig7(scale Scale) (*Table, error) {
	return runWarm(scale, 0, "Figure 7: PK with warm caches (internal index levels resident)")
}

// RunFig10 reproduces Figure 10: ATT1 with warm caches.
func RunFig10(scale Scale) (*Table, error) {
	return runWarm(scale, 1, "Figure 10: ATT1 with warm caches (internal index levels resident)")
}

func runWarm(scale Scale, fieldIdx int, title string) (*Table, error) {
	const cachePages = 65536
	t := &Table{Title: title, Header: []string{"config", "B+-Tree", "best BF-Tree", "bf-fpp", "capacity-gain"}}
	for _, cfg := range WarmConfigs() {
		env, syn, err := syntheticEnv(cfg, scale, cachePages)
		if err != nil {
			return nil, err
		}
		bp, err := BuildIndex("bptree", env, syn.File, fieldIdx, pointOpts(fieldIdx, 0))
		if err != nil {
			return nil, err
		}
		if err := WarmBuiltIndex(env, bp); err != nil {
			return nil, err
		}
		keys, unique, err := syntheticProbes(syn, scale, fieldIdx)
		if err != nil {
			return nil, err
		}
		mBP, err := MeasureIndex(env, bp, keys, unique)
		if err != nil {
			return nil, err
		}
		bpPages := bp.Stats().Pages
		bestTime := time.Duration(1<<62 - 1)
		bestFPP := 0.0
		bestGain := 0.0
		for _, fpp := range fig5FPPs {
			env2, syn2, err := syntheticEnv(cfg, scale, cachePages)
			if err != nil {
				return nil, err
			}
			bf, err := BuildIndex("bftree", env2, syn2.File, fieldIdx, pointOpts(fieldIdx, fpp))
			if err != nil {
				return nil, err
			}
			if err := WarmBuiltIndex(env2, bf); err != nil {
				return nil, err
			}
			keys2, unique2, err := syntheticProbes(syn2, scale, fieldIdx)
			if err != nil {
				return nil, err
			}
			m, err := MeasureIndex(env2, bf, keys2, unique2)
			if err != nil {
				return nil, err
			}
			if m.AvgTime < bestTime {
				bestTime = m.AvgTime
				bestFPP = fpp
				bestGain = float64(bpPages) / float64(bf.Stats().Pages)
			}
		}
		t.AddRow(cfg.Name, mBP.AvgTime.String(), bestTime.String(), fmtF(bestFPP), fmtF(bestGain)+"x")
	}
	t.Notes = append(t.Notes,
		"paper: warm caches help the (taller) B+-Tree more, but BF-Tree stays competitive except ATT1 SSD/SSD")
	return t, nil
}
