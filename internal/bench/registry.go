package bench

import (
	"fmt"
	"sort"
)

// Runner executes one experiment at a scale and returns its table.
type Runner func(Scale) (*Table, error)

// Experiments maps experiment ids (the `-exp` values of cmd/bfbench and
// the ids of DESIGN.md's per-experiment index) to runners.
var Experiments = map[string]Runner{
	"fig1a":  RunFig1a,
	"fig1b":  RunFig1b,
	"fig2":   func(Scale) (*Table, error) { return RunFig2(), nil },
	"fig4a":  func(Scale) (*Table, error) { return RunFig4a(), nil },
	"fig4b":  func(Scale) (*Table, error) { return RunFig4b(), nil },
	"table2": RunTable2,
	"table3": RunTable3,
	"fig5a":  RunFig5a,
	"fig5b":  RunFig5b,
	"fig6":   RunFig6,
	"fig7":   RunFig7,
	"fig8a":  RunFig8a,
	"fig8b":  RunFig8b,
	"fig9":   RunFig9,
	"fig10":  RunFig10,
	"fig11":  RunFig11,
	"fig12a": RunFig12a,
	"fig12b": RunFig12b,
	"fig13":  RunFig13,
	"fig14":  func(Scale) (*Table, error) { return RunFig14(), nil },

	"concurrent-probe": RunConcurrentProbe,
	"mixed-rw":         RunMixedRW,
	"multi-writer":     RunMultiWriter,
	"churn":            RunChurn,
	"scan-stream":      RunScanStream,
	"batched-probe":    RunBatchedProbe,
	"shard-scale":      RunShardScale,
	"mixed-workload":   RunMixedWorkload,
	"compaction-stall": RunCompactionStall,
	"serve-load":       RunServeLoad,

	"point-lookup": RunPointLookup,

	"ablation-granularity": RunAblationGranularity,
	"ablation-hashes":      RunAblationHashCount,
	"ablation-parallel":    RunAblationParallelProbe,
	"ablation-deletes":     RunAblationDeletes,
	"ablation-buffer":      RunAblationBufferedInserts,
}

// experimentFlags declares which of the workload-shaping Scale knobs
// (the optional bfbench flags) each experiment consumes. bfbench keys
// its unused-flag validation on this: overriding -index for an
// experiment that ignores it is an error, not a silent no-op.
var experimentFlags = map[string][]string{
	"table3":           {"index"},
	"fig5a":            {"index"},
	"fig8a":            {"index"},
	"scan-stream":      {"index", "json"},
	"batched-probe":    {"index", "json"},
	"point-lookup":     {"index", "json"},
	"shard-scale":      {"skew"},
	"mixed-workload":   {"index", "skew", "mix", "json"},
	"compaction-stall": {"json"},
	"serve-load":       {"index", "json"},
}

// ExperimentFlags returns the workload-shaping flags the named
// experiment consumes ("index", "skew", "mix", "json"); experiments
// absent from the table consume none.
func ExperimentFlags(name string) []string {
	return experimentFlags[name]
}

// ExperimentNames returns the registered ids in a stable order.
func ExperimentNames() []string {
	names := make([]string, 0, len(Experiments))
	for n := range Experiments {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Run executes one experiment by id.
func Run(name string, scale Scale) (*Table, error) {
	r, ok := Experiments[name]
	if !ok {
		return nil, fmt.Errorf("bench: unknown experiment %q (have %v)", name, ExperimentNames())
	}
	return r(scale)
}
