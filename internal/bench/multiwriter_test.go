package bench

import (
	"testing"
)

// multiWriterScale keeps the sweep fast in unit tests while leaving
// enough leaves for 8 disjoint writer regions.
func multiWriterScale() Scale {
	s := DefaultScale()
	s.SyntheticTuples = 40000
	return s
}

// TestMultiWriterSweepScalesOnDisjointLeaves asserts the property the
// experiment exists to demonstrate — and the acceptance bar of the
// leaf-latching work: aggregate insert throughput over disjoint leaves
// grows by more than 1.5x from 1 to 4 writers, because latched writers
// only share the tree lock in read mode and overlap their page waits.
func TestMultiWriterSweepScalesOnDisjointLeaves(t *testing.T) {
	results, err := MultiWriterSweep(multiWriterScale(), []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[0].Writers != 1 || results[1].Writers != 4 {
		t.Fatalf("unexpected sweep rows: %+v", results)
	}
	for _, r := range results {
		if r.DisjointThroughput <= 0 || r.ContendedThroughput <= 0 {
			t.Fatalf("writers=%d: no throughput measured: %+v", r.Writers, r)
		}
	}
	speedup := results[1].DisjointThroughput / results[0].DisjointThroughput
	if speedup <= 1.5 {
		t.Errorf("4-writer disjoint-leaf speedup = %.2fx, want > 1.5x", speedup)
	}
}

// TestMultiWriterExperimentRegistered runs the registered experiment
// end-to-end and sanity-checks the rendered table.
func TestMultiWriterExperimentRegistered(t *testing.T) {
	tbl, err := Run("multi-writer", multiWriterScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(MultiWriterCounts) {
		t.Fatalf("table has %d rows, want %d", len(tbl.Rows), len(MultiWriterCounts))
	}
	if tbl.Rows[0][0] != "1" || tbl.Rows[len(tbl.Rows)-1][0] != "8" {
		t.Errorf("writer sweep rows wrong: first=%q last=%q", tbl.Rows[0][0], tbl.Rows[len(tbl.Rows)-1][0])
	}
}
