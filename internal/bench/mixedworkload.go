package bench

import (
	"fmt"
	"strings"
	"time"

	"bftree/index"
	"bftree/internal/core"
	"bftree/internal/device"
	"bftree/internal/heapfile"
	"bftree/internal/pagestore"
	"bftree/internal/workload"
)

// The mixed-workload experiment is the workload engine end to end: every
// preset Mix × key distribution runs through DriveMix against every
// registered backend, so one table (and BENCH_mixed.json) compares how
// the five structures absorb the same blended load. Backends missing a
// capability still run the preset — the redistribution column says what
// was folded where.

const (
	// mixedWorkloadWorkers is the driver pool of every cell.
	mixedWorkloadWorkers = 4

	// mixedWorkloadLatency is the real per-I/O blocking time imposed
	// during the measured window (see Device.SetRealLatency): turns the
	// mixed pool's concurrency into wall-clock throughput.
	mixedWorkloadLatency = 50 * time.Microsecond

	// mixedWorkloadWarmup ops per worker run off the clock before the
	// measured window opens.
	mixedWorkloadWarmup = 8
)

// mixedFixture is one relation prepared for mixed driving: the key
// domain (ranks → keys), the ref resolver writes need, and the build
// options of every index over it. The data device is shared across
// cells (the relation is read-only under the mixed ops — inserts re-add
// existing associations); each cell builds its index fresh.
type mixedFixture struct {
	file     *heapfile.File
	dataDev  *device.Device
	fieldIdx int
	opts     index.Options
	numKeys  uint64
	keyAt    func(rank uint64) uint64 // nil: dense identity domain
	refOf    func(key uint64) index.Ref
	unique   bool // primary-key domain: probe via SearchFirst
}

// mixedSyntheticFixture prepares the synthetic relation's PK domain:
// dense ranks 0..MaxPK, one tuple per key, refs by tuple ordinal.
func mixedSyntheticFixture(scale Scale) (*mixedFixture, error) {
	dataDev := device.New(device.Memory, PageSize)
	syn, err := workload.GenerateSynthetic(pagestore.New(dataDev), scale.SyntheticTuples, 11, scale.Seed)
	if err != nil {
		return nil, err
	}
	file := syn.File
	per := uint64(file.TuplesPerPage())
	return &mixedFixture{
		file:     file,
		dataDev:  dataDev,
		fieldIdx: 0,
		opts:     pointOpts(0, 1e-3),
		numKeys:  syn.MaxPK + 1,
		refOf: func(k uint64) index.Ref {
			return index.Ref{Page: file.PageOf(k), Slot: uint16(k % per)}
		},
		unique: true,
	}, nil
}

// mixedSHDFixture prepares the SHD timestamp domain for the timeseries
// preset: ranks are the sorted distinct timestamps, refs point at each
// timestamp's first tuple (timestamps are nondecreasing in file order,
// so first occurrences are the cardinality prefix sums).
func mixedSHDFixture(scale Scale) (*mixedFixture, error) {
	dataDev := device.New(device.Memory, PageSize)
	shd, err := workload.GenerateSHD(pagestore.New(dataDev), scale.SHDTuples, scale.Seed)
	if err != nil {
		return nil, err
	}
	keys := workload.SortedDistinct(shd.Cards)
	per := uint64(shd.File.TuplesPerPage())
	refs := make(map[uint64]index.Ref, len(keys))
	ord := uint64(0)
	for _, k := range keys {
		refs[k] = index.Ref{Page: shd.File.PageOf(ord), Slot: uint16(ord % per)}
		ord += shd.Cards[k]
	}
	return &mixedFixture{
		file:     shd.File,
		dataDev:  dataDev,
		fieldIdx: workload.SHDSchema.FieldIndex("timestamp"),
		opts:     index.Options{BFTree: core.Options{FPP: 1e-3}, DedupKeys: true},
		numKeys:  uint64(len(keys)),
		keyAt:    func(rank uint64) uint64 { return keys[rank] },
		refOf:    func(k uint64) index.Ref { return refs[k] },
		unique:   false,
	}, nil
}

// mixedDistSpec is one key-distribution cell of a preset.
type mixedDistSpec struct {
	dist workload.Dist
	skew float64
}

// mixedWorkloadDists returns the distribution cells of a preset: the
// append-mostly timeseries pairs with latest-key tailing readers, every
// other preset runs uniform and Zipfian (skew from -skew when above 1,
// else a default hot-set exponent).
func mixedWorkloadDists(preset workload.Mix, scale Scale) []mixedDistSpec {
	if preset.Monotonic {
		return []mixedDistSpec{{dist: workload.DistLatest}}
	}
	z := scale.Skew
	if z <= 1 {
		z = 1.2
	}
	return []mixedDistSpec{
		{dist: workload.DistUniform},
		{dist: workload.DistZipf, skew: z},
	}
}

// mixedMovesLabel renders a redistribution for the table and JSON rows.
func mixedMovesLabel(moves []workload.Move) string {
	if len(moves) == 0 {
		return "-"
	}
	parts := make([]string, len(moves))
	for i, m := range moves {
		parts[i] = m.String()
	}
	return strings.Join(parts, ", ")
}

// MixedWorkloadCell is one measured (backend, preset, dist) cell.
type MixedWorkloadCell struct {
	Backend string
	Preset  string
	Dist    workload.Dist
	Skew    float64
	Result  *DriverResult
}

// MixedWorkloadSweep runs every requested preset × distribution against
// every requested backend through DriveMix. Backends without the
// ConcurrentWriters trait drive with serialized writers (readers still
// overlap); the per-cell index is built fresh on its own Memory device
// and real latency applies only during the measured window.
func MixedWorkloadSweep(scale Scale, names []string, presets []workload.Mix) ([]*MixedWorkloadCell, error) {
	ops := scale.Probes / 4
	if ops < 64 {
		ops = 64
	}
	var synFx, shdFx *mixedFixture
	fixtureFor := func(preset workload.Mix) (*mixedFixture, error) {
		var err error
		if preset.Monotonic {
			if shdFx == nil {
				shdFx, err = mixedSHDFixture(scale)
			}
			return shdFx, err
		}
		if synFx == nil {
			synFx, err = mixedSyntheticFixture(scale)
		}
		return synFx, err
	}

	var out []*MixedWorkloadCell
	for _, name := range names {
		b, ok := index.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("bench: mixed-workload: %w: %q", index.ErrUnknownBackend, name)
		}
		for _, preset := range presets {
			fx, err := fixtureFor(preset)
			if err != nil {
				return nil, err
			}
			for _, ds := range mixedWorkloadDists(preset, scale) {
				idxDev := device.New(device.Memory, PageSize)
				ix, err := index.New(name, pagestore.New(idxDev), fx.file, fx.fieldIdx, fx.opts)
				if err != nil {
					return nil, err
				}
				idxDev.SetRealLatency(mixedWorkloadLatency)
				fx.dataDev.SetRealLatency(mixedWorkloadLatency)
				res, derr := DriveMix(ix, MixConfig{
					Mix:             preset,
					Dist:            ds.dist,
					Skew:            ds.skew,
					NumKeys:         fx.numKeys,
					KeyAt:           fx.keyAt,
					Seed:            scale.Seed,
					Workers:         mixedWorkloadWorkers,
					Ops:             ops,
					Warmup:          mixedWorkloadWarmup,
					RefOf:           fx.refOf,
					SerializeWrites: !b.ConcurrentWriters,
					UseSearchFirst:  fx.unique,
				})
				idxDev.SetRealLatency(0)
				fx.dataDev.SetRealLatency(0)
				cerr := ix.Close()
				if derr != nil {
					return nil, fmt.Errorf("bench: mixed-workload %s/%s/%v: %w", name, preset.Name, ds.dist, derr)
				}
				if cerr != nil {
					return nil, cerr
				}
				out = append(out, &MixedWorkloadCell{
					Backend: name,
					Preset:  preset.Name,
					Dist:    ds.dist,
					Skew:    ds.skew,
					Result:  res,
				})
			}
		}
	}
	return out, nil
}

// RunMixedWorkload is the `mixed-workload` experiment: the preset ×
// distribution matrix across every registered backend (`-index=each` or
// unset; a single name narrows it), driven by the shared workload
// engine. `-mix` narrows to one preset, `-skew` sets the Zipfian cells'
// exponent, and `-json` also writes the rows as BENCH_mixed.json.
func RunMixedWorkload(scale Scale) (*Table, error) {
	names := []string{scale.IndexBackend()}
	if scale.Index == "each" || scale.Index == "" {
		names = index.Backends()
	}
	presets := workload.Presets()
	if scale.Mix != "" {
		m, err := workload.MixByName(scale.Mix)
		if err != nil {
			return nil, err
		}
		presets = []workload.Mix{m}
	}
	cells, err := MixedWorkloadSweep(scale, names, presets)
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title: fmt.Sprintf("Mixed workloads: %d workers, %v per page access",
			mixedWorkloadWorkers, mixedWorkloadLatency),
		Header: []string{"backend", "preset", "dist", "ops", "wall", "ops/s", "p50", "p99", "redistributed"},
		Notes: []string{
			"every cell drives the named preset through the shared workload engine",
			"(DriveMix): per-worker deterministic op streams from -seed, capability",
			"redistribution before any op is drawn (the last column reports the",
			"folds), serialized writers for backends without the concurrent-writer",
			"trait. timeseries runs on the SHD timestamp domain with latest-key",
			"readers; the other presets run the synthetic PK domain.",
		},
	}
	var records []Record
	for _, c := range cells {
		r := c.Result
		t.AddRow(
			c.Backend,
			c.Preset,
			c.Dist.String(),
			fmt.Sprint(r.Ops),
			r.Elapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%.0f", r.Throughput),
			r.P50.Round(10*time.Microsecond).String(),
			r.P99.Round(10*time.Microsecond).String(),
			mixedMovesLabel(r.Moves),
		)
		records = append(records, Record{
			Experiment: "mixed-workload",
			Backend:    c.Backend,
			Preset:     c.Preset,
			Dist:       c.Dist.String(),
			Workers:    r.Workers,
			Ops:        r.Ops,
			Throughput: r.Throughput,
			P50:        r.P50.Seconds(),
			P99:        r.P99.Seconds(),
			Moved:      mixedMovesLabel(r.Moves),
		})
	}
	if err := writeArtifact(scale, "mixed-workload", records); err != nil {
		return nil, err
	}
	return t, nil
}
