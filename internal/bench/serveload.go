package bench

import (
	"fmt"
	"net"
	"net/http"
	"time"

	"bftree/index"
	"bftree/internal/core"
	"bftree/internal/device"
	"bftree/internal/pagestore"
	"bftree/internal/server"
	"bftree/internal/server/loadgen"
	"bftree/internal/workload"
)

// The serve-load experiment is the serving layer under measurement:
// every backend is mounted behind a real HTTP server on a loopback
// listener, and the load generator drives the OLTP preset over 1, 8,
// 64 and 256 concurrent connections. The point is queue-depth overlap:
// with real per-page device latency imposed, a single connection is
// latency-bound (every probe waits out its page reads end to end),
// while N connections overlap their waits inside the server's handler
// pool — aggregate throughput climbs until the CPU, not the device,
// is the bottleneck. p50/p99 then show what that overlap costs each
// individual request.

const (
	// serveLoadLatency is the real blocking time per page access during
	// the measured window — the device the served indexes "run on". It
	// is deliberately higher than the in-process experiments' 50µs so
	// wall-clock overlap (not request parsing) dominates the sweep.
	serveLoadLatency = 200 * time.Microsecond

	// serveLoadWarmup ops per connection run off the clock: dials the
	// connections and faults the caches before the window opens.
	serveLoadWarmup = 2
)

// ServeLoadLevels are the concurrent-connection sweep points.
var ServeLoadLevels = []int{1, 8, 64, 256}

// serveLoadOps sizes one level's measured budget: the scale's probe
// count, floored so every connection gets at least a few measured ops.
func serveLoadOps(scale Scale, conns int) int {
	ops := scale.Probes
	if ops < conns*4 {
		ops = conns * 4
	}
	return ops
}

// ServeLoadCell is one measured (backend, connections) level.
type ServeLoadCell struct {
	Backend string
	Conns   int
	Result  *DriverResult
	// Backpressure counts the 429 rejections the client absorbed
	// (sleep-and-retry) during the level.
	Backpressure int64
}

// ServeLoadSweep mounts each named backend behind an HTTP server on a
// loopback listener and drives the OLTP preset through the load
// generator at every connection level. SerializeWrites follows the
// registry trait, exactly as cmd/bfserve wires it.
func ServeLoadSweep(scale Scale, names []string, levels []int) ([]*ServeLoadCell, error) {
	fx, err := mixedSyntheticFixture(scale)
	if err != nil {
		return nil, err
	}
	preset := workload.OLTPMix()

	var out []*ServeLoadCell
	for _, name := range names {
		b, ok := index.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("bench: serve-load: %w: %q", index.ErrUnknownBackend, name)
		}
		// A served index must drain its own drift: the OLTP preset's
		// writes push the fpp estimate toward the compaction threshold,
		// and the server's admission gate turns that drift into 429s.
		// Without a background maintainer those rejections would be
		// terminal — nothing ever compacts — so serve-load mounts every
		// backend exactly as cmd/bfserve does: auto maintenance on a
		// short reclaim tick (exact backends ignore the policy).
		opts := fx.opts
		opts.BFTree.Maintenance = core.MaintenancePolicy{
			Mode:             core.MaintenanceAuto,
			ReclaimInterval:  time.Millisecond,
			IncrementalBatch: 8,
		}
		idxDev := device.New(device.Memory, PageSize)
		ix, err := index.New(name, pagestore.New(idxDev), fx.file, fx.fieldIdx, opts)
		if err != nil {
			return nil, err
		}
		srv := server.New(ix, server.Options{
			SerializeWrites: !b.ConcurrentWriters,
			RetryAfter:      time.Millisecond,
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			ix.Close()
			return nil, err
		}
		hs := &http.Server{Handler: srv}
		go hs.Serve(ln)
		base := "http://" + ln.Addr().String()

		runLevels := func() error {
			for _, conns := range levels {
				// MaxRetries must outlast the longest backpressure
				// drain: at drift >= threshold every write rejects
				// until the maintainer compacts the estimate back
				// below the admission ramp.
				cl, err := loadgen.Dial(base, loadgen.Options{
					Connections: conns,
					MaxRetries:  10000,
				})
				if err != nil {
					return err
				}
				// Fold the preset against the *server's* capability
				// surface before any stream is built: the client type
				// has every method, so the in-driver redistribution
				// (keyed on the client) would never fold anything.
				folded, moves := preset.Redistribute(cl.WorkloadCaps())

				idxDev.SetRealLatency(serveLoadLatency)
				fx.dataDev.SetRealLatency(serveLoadLatency)
				res, derr := DriveMix(cl, MixConfig{
					Mix:            folded,
					Dist:           workload.DistUniform,
					NumKeys:        fx.numKeys,
					Seed:           scale.Seed,
					Workers:        conns,
					Ops:            serveLoadOps(scale, conns),
					Warmup:         serveLoadWarmup,
					RefOf:          fx.refOf,
					UseSearchFirst: fx.unique,
				})
				idxDev.SetRealLatency(0)
				fx.dataDev.SetRealLatency(0)
				bp := cl.BackpressureEvents()
				cl.Close()
				if derr != nil {
					return fmt.Errorf("bench: serve-load %s @%d conns: %w", name, conns, derr)
				}
				res.Moves = moves
				out = append(out, &ServeLoadCell{
					Backend:      name,
					Conns:        conns,
					Result:       res,
					Backpressure: bp,
				})
			}
			return nil
		}
		err = runLevels()
		hs.Close()
		if cerr := ix.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// RunServeLoad is the `serve-load` experiment: the OLTP preset over
// real HTTP connections against every registered backend (`-index=each`
// or unset; a single name narrows it), swept across connection counts.
// `-json` also writes the rows as BENCH_serve.json.
func RunServeLoad(scale Scale) (*Table, error) {
	names := []string{scale.IndexBackend()}
	if scale.Index == "each" || scale.Index == "" {
		names = index.Backends()
	}
	cells, err := ServeLoadSweep(scale, names, ServeLoadLevels)
	if err != nil {
		return nil, err
	}

	// Index 1-connection throughput per backend for the speedup column.
	base := map[string]float64{}
	for _, c := range cells {
		if c.Conns == 1 {
			base[c.Backend] = c.Result.Throughput
		}
	}

	t := &Table{
		Title: fmt.Sprintf("Latency under load: OLTP preset over HTTP, %v per page access",
			serveLoadLatency),
		Header: []string{"backend", "conns", "ops", "wall", "ops/s", "speedup", "p50", "p99", "429s"},
		Notes: []string{
			"every row drives the OLTP preset through the load generator over",
			"real loopback connections against an HTTP server mounting the",
			"backend (internal/server). One connection is latency-bound: each",
			"probe waits out its page reads end to end. N connections overlap",
			"those waits in the server's handler pool; speedup is ops/s over",
			"the backend's own 1-connection row. 429s counts backpressure",
			"rejections the client absorbed by sleep-and-retry.",
		},
	}
	var records []Record
	for _, c := range cells {
		r := c.Result
		speedup := "-"
		if b := base[c.Backend]; b > 0 && c.Conns > 1 {
			speedup = fmt.Sprintf("%.1fx", r.Throughput/b)
		}
		t.AddRow(
			c.Backend,
			fmt.Sprint(c.Conns),
			fmt.Sprint(r.Ops),
			r.Elapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%.0f", r.Throughput),
			speedup,
			r.P50.Round(10*time.Microsecond).String(),
			r.P99.Round(10*time.Microsecond).String(),
			fmt.Sprint(c.Backpressure),
		)
		records = append(records, Record{
			Experiment:   "serve-load",
			Backend:      c.Backend,
			Preset:       "oltp",
			Workers:      c.Conns,
			Ops:          r.Ops,
			Throughput:   r.Throughput,
			P50:          r.P50.Seconds(),
			P99:          r.P99.Seconds(),
			Moved:        mixedMovesLabel(r.Moves),
			Backpressure: c.Backpressure,
		})
	}
	if err := writeArtifact(scale, "serve-load", records); err != nil {
		return nil, err
	}
	return t, nil
}
