package bench

import (
	"testing"
)

// TestShardScaleSpeedup is the experiment's acceptance bar: 4 shards
// must deliver at least 2x the aggregate structural-insert throughput
// of 1 shard under the fixed 8-writer population. The append path holds
// a shard's writer lock exclusively across its page waits, so one shard
// serializes the whole population and four shards overlap up to four
// appends; 2x leaves headroom for scheduler noise on top of the ~4x
// ideal.
func TestShardScaleSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("real-latency measurement")
	}
	scale := DefaultScale()
	results, err := ShardScaleSweep(scale, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d rows, want 2", len(results))
	}
	one, four := results[0], results[1]
	if one.Shards != 1 || four.Shards != 4 {
		t.Fatalf("shard counts = %d, %d; want 1, 4", one.Shards, four.Shards)
	}
	if four.Throughput < 2*one.Throughput {
		t.Errorf("4-shard throughput %.0f/s < 2x 1-shard %.0f/s", four.Throughput, one.Throughput)
	}
	for _, r := range results {
		if r.Ops != shardScaleOps {
			t.Errorf("%d shards: ops = %d, want %d", r.Shards, r.Ops, shardScaleOps)
		}
		if r.P99 < r.P50 || r.P50 <= 0 {
			t.Errorf("%d shards: implausible stalls p50=%v p99=%v", r.Shards, r.P50, r.P99)
		}
	}
}

// TestShardScaleSkewErodesScaling pins the skew knob's effect: with all
// ops funnelled to one hot shard (extreme Zipf), a 4-shard forest loses
// most of its multiplier.
func TestShardScaleSkewErodesScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("real-latency measurement")
	}
	uniform := DefaultScale()
	skewed := uniform
	skewed.Skew = 8 // nearly all draws hit rank 0
	fast, err := ShardScaleSweep(uniform, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := ShardScaleSweep(skewed, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	if slow[0].Throughput > 0.75*fast[0].Throughput {
		t.Errorf("skewed throughput %.0f/s not below 0.75x uniform %.0f/s",
			slow[0].Throughput, fast[0].Throughput)
	}
}

// TestShardScalePlans sanity-checks the per-shard append plans: keys
// start above each shard's resident maximum and below the next
// separator, pids start past the relation in disjoint regions.
func TestShardScalePlans(t *testing.T) {
	f, file, _, _, err := shardScaleFixture(DefaultScale(), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	plans := shardAppendPlans(f, file)
	seps := f.Separators()
	for i, p := range plans {
		if i < len(seps) && p.nextKey >= seps[i] {
			t.Errorf("shard %d: next key %d not below separator %d", i, p.nextKey, seps[i])
		}
		if i > 0 && plans[i-1].nextPid >= p.nextPid {
			t.Errorf("shard %d: pid region %d not above shard %d's %d", i, p.nextPid, i-1, plans[i-1].nextPid)
		}
		if uint64(p.nextPid) <= uint64(file.FirstPage())+file.NumPages() && i > 0 {
			t.Errorf("shard %d: pid region %d overlaps the relation", i, p.nextPid)
		}
	}
	// A few appends per shard must route back to their shard and take
	// the structural path (node count grows).
	before := f.Shard(2).NumNodes()
	p := plans[2]
	for j := 0; j < 3; j++ {
		if err := f.Insert(p.nextKey, p.nextPid); err != nil {
			t.Fatal(err)
		}
		p.nextKey++
		p.nextPid += shardPidStride
	}
	if after := f.Shard(2).NumNodes(); after < before+3 {
		t.Errorf("3 appends grew shard 2 from %d to %d nodes; want ≥ +3", before, after)
	}
}
