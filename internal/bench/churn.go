package bench

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"bftree/index"
	"bftree/internal/core"
	"bftree/internal/device"
	"bftree/internal/heapfile"
	"bftree/internal/pagestore"
	"bftree/internal/workload"
)

// The churn experiment drives the self-maintaining mode (DESIGN.md §4):
// sustained insert+delete load on an auto-maintained tree, measuring
// that (a) the Equation 14 fpp drift is held near the configured
// compaction threshold by background Rebuilds, (b) limbo stays bounded
// — retired pages are reclaimed by the maintainer, with zero foreground
// structural changes required — and (c) the page economy balances at
// quiescence: live + free + limbo == device.

const (
	// churnWriters delete+re-insert over disjoint key partitions;
	// churnReaders probe concurrently, driving the epoch-exit hook that
	// lets the maintainer reclaim without foreground structural help.
	churnWriters = 4
	churnReaders = 2

	// churnFPP and churnFPPThreshold set the drift budget: with
	// standard filters every logical delete adds 1/numKeys to the
	// effective fpp (Section 7), so the maintainer must compact roughly
	// every (threshold-fpp)×numKeys deletes to hold the line.
	churnFPP          = 0.02
	churnFPPThreshold = 0.12
)

// ChurnResult is the outcome of one churn run.
type ChurnResult struct {
	Keys    uint64 // distinct keys in the fixture
	Ops     uint64 // insert+delete operations performed
	Elapsed time.Duration

	MaxFPP    float64 // highest effective fpp observed (sampled)
	Threshold float64
	MaxLimbo  int // highest limbo page count observed (sampled)

	Stats core.MaintenanceStats // terminal snapshot (after Close)

	LiveNodes   uint64
	FreePages   uint64
	LimboAtEnd  uint64
	DevicePages uint64
}

// EconomyBalanced reports whether every index page is accounted for at
// quiescence: live + free + limbo == device.
func (r *ChurnResult) EconomyBalanced() bool {
	return r.LiveNodes+r.FreePages+r.LimboAtEnd == r.DevicePages
}

// churnFixture builds a unique-key relation of n tuples and an
// auto-maintained BF-Tree over it, both on Memory devices.
func churnFixture(n uint64) (*core.Tree, *heapfile.File, *pagestore.Store, *device.Device, error) {
	dataStore := pagestore.New(device.New(device.Memory, PageSize))
	idxDev := device.New(device.Memory, PageSize)
	idxStore := pagestore.New(idxDev)
	b, err := heapfile.NewBuilder(dataStore, mixedRWSchema)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	tup := make([]byte, mixedRWSchema.TupleSize)
	for i := uint64(0); i < n; i++ {
		mixedRWSchema.Set(tup, 0, i)
		if err := b.Append(tup); err != nil {
			return nil, nil, nil, nil, err
		}
	}
	file, err := b.Finish()
	if err != nil {
		return nil, nil, nil, nil, err
	}
	tr, err := core.BulkLoad(idxStore, file, 0, core.Options{
		FPP: churnFPP,
		Maintenance: core.MaintenancePolicy{
			Mode:            core.MaintenanceAuto,
			FPPThreshold:    churnFPPThreshold,
			ReclaimInterval: 2 * time.Millisecond,
		},
	})
	if err != nil {
		return nil, nil, nil, nil, err
	}
	return tr, file, idxStore, idxDev, nil
}

// ChurnRun performs the churn measurement: at least 4×SyntheticTuples
// insert+delete operations (≥1M at the default scale) against an
// auto-maintained tree, with concurrent readers, sampling drift and
// limbo throughout. Both pools run through the shared Driver: writers
// on deterministic per-worker quotas of delete+re-insert pairs, readers
// in until-mode drawing seeded uniform probes for the whole writer
// window.
func ChurnRun(scale Scale) (*ChurnResult, error) {
	n := scale.SyntheticTuples / 8
	if n < 16384 {
		n = 16384
	}
	target := scale.SyntheticTuples * 4
	if target < 4*n {
		target = 4 * n
	}
	tr, file, idxStore, idxDev, err := churnFixture(n)
	if err != nil {
		return nil, err
	}

	var (
		maxFPP   atomic.Uint64 // float64 bits; positive floats order like uints
		maxLimbo atomic.Int64
	)
	sampleFPP := func() {
		bits := math.Float64bits(tr.EffectiveFPP())
		for {
			old := maxFPP.Load()
			if bits <= old || maxFPP.CompareAndSwap(old, bits) {
				return
			}
		}
	}
	sampleLimbo := func() {
		l := int64(tr.MaintenanceStats().LimboPages)
		for {
			old := maxLimbo.Load()
			if l <= old || maxLimbo.CompareAndSwap(old, l) {
				return
			}
		}
	}

	// Per-writer quota: pairs rounded up so the run totals at least
	// target ops; each worker's quota is even, so every delete's
	// re-insert lands in the same worker's budget.
	pairsPerWriter := (target + 2*churnWriters - 1) / (2 * churnWriters)
	totalOps := int(2 * pairsPerWriter * churnWriters)
	span := n / uint64(churnWriters)
	refOf := func(k uint64) index.Ref { return index.Ref{Page: file.PageOf(k)} }

	writerCfg := DriverConfig{
		Workers: churnWriters,
		Ops:     totalOps,
		RefOf:   refOf,
		// Delete then re-insert the same drawn key: with standard
		// filters the delete accrues Section 7 drift and the re-insert
		// is absorbed in place (the filter still claims it), so the
		// workload is pure in-place churn plus the compactions it
		// provokes. Keys come from each writer's seeded sub-stream over
		// its private span partition.
		Source: func(w int) func() workload.Op {
			rng := workload.SubStream(scale.Seed, w)
			lo := uint64(w) * span
			var pending uint64
			havePending := false
			return func() workload.Op {
				if havePending {
					havePending = false
					return workload.Op{Kind: workload.OpInsert, Key: pending}
				}
				pending = lo + rng.Uint64n(span)
				havePending = true
				return workload.Op{Kind: workload.OpDelete, Key: pending}
			}
		},
		OnOp: func(_, i int, _ workload.Op) {
			if i%256 == 0 {
				sampleFPP()
				sampleLimbo()
			}
		},
	}

	writerDone := make(chan struct{})
	readerCfg := DriverConfig{
		Workers:        churnReaders,
		Until:          writerDone,
		UseSearchFirst: true,
		Source: func(r int) func() workload.Op {
			rng := workload.SubStream(scale.Seed, churnWriters+r)
			return func() workload.Op {
				return workload.Op{Kind: workload.OpSearch, Key: rng.Uint64n(n)}
			}
		},
		OnOp: func(_, i int, _ workload.Op) {
			if i%64 == 0 {
				sampleFPP()
				sampleLimbo()
			}
		},
	}

	start := time.Now()
	readerErr := make(chan error, 1)
	go func() {
		_, err := Drive(coreTarget{tr}, readerCfg)
		readerErr <- err
	}()
	// Sample limbo on a ticker until the writers exit — the epoch-driven
	// reclamation the samples bound happens between writer ops too.
	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		for {
			select {
			case <-writerDone:
				return
			case <-time.After(time.Millisecond):
				sampleLimbo()
			}
		}
	}()
	writerRes, werr := Drive(coreTarget{tr}, writerCfg)
	close(writerDone)
	<-samplerDone
	rerr := <-readerErr
	elapsed := time.Since(start)
	if werr == nil {
		werr = rerr
	}
	if werr != nil {
		tr.Close()
		return nil, werr
	}
	sampleFPP()

	// Quiescence: Close stops the maintainer and drains limbo; the full
	// page economy must then balance with zero foreground structural
	// changes having performed any reclamation (auto mode forbids it by
	// construction).
	if err := tr.Close(); err != nil {
		return nil, err
	}
	st := tr.MaintenanceStats()

	// The compacted tree still answers: spot-check surviving keys.
	for k := uint64(0); k < n; k += n / 64 {
		res, err := tr.SearchFirst(k)
		if err != nil {
			return nil, err
		}
		if len(res.Tuples) == 0 {
			return nil, fmt.Errorf("bench: churn lost key %d", k)
		}
	}

	return &ChurnResult{
		Keys:        n,
		Ops:         uint64(writerRes.Ops),
		Elapsed:     elapsed,
		MaxFPP:      math.Float64frombits(maxFPP.Load()),
		Threshold:   churnFPPThreshold,
		MaxLimbo:    int(maxLimbo.Load()),
		Stats:       st,
		LiveNodes:   tr.NumNodes(),
		FreePages:   uint64(idxStore.FreePages()),
		LimboAtEnd:  uint64(st.LimboPages),
		DevicePages: idxDev.NumPages(),
	}, nil
}

// RunChurn is the `churn` experiment: sustained insert+delete load on a
// self-maintaining tree. The maintainer must hold the Equation 14 drift
// near the compaction threshold via background Rebuilds and keep limbo
// bounded via epoch-driven reclamation, without any foreground
// structural change performing reclamation.
func RunChurn(scale Scale) (*Table, error) {
	r, err := ChurnRun(scale)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: fmt.Sprintf("Self-maintaining churn: %d insert+delete ops over %d keys, auto maintenance",
			r.Ops, r.Keys),
		Header: []string{"metric", "value"},
		Notes: []string{
			"writers delete+re-insert in place; every delete adds 1/keys of Section 7 drift,",
			"so the maintainer must compact (Rebuild) each time the Equation 14 estimate",
			"crosses the threshold. limbo pages are retired-tree pages awaiting their epoch",
			"grace period; the maintainer reclaims them (probe-exit hook + ticker) — the",
			"foreground write path performs no reclamation in auto mode.",
		},
	}
	econ := fmt.Sprintf("%d live + %d free + %d limbo vs %d device",
		r.LiveNodes, r.FreePages, r.LimboAtEnd, r.DevicePages)
	if r.EconomyBalanced() {
		econ += " (balanced)"
	} else {
		econ += " (LEAK)"
	}
	rows := [][2]string{
		{"ops", fmt.Sprint(r.Ops)},
		{"wall time", r.Elapsed.Round(time.Millisecond).String()},
		{"ops/s", fmt.Sprintf("%.0f", float64(r.Ops)/r.Elapsed.Seconds())},
		{"fpp threshold", fmt.Sprintf("%.3f", r.Threshold)},
		{"max effective fpp", fmt.Sprintf("%.4f", r.MaxFPP)},
		{"compactions", fmt.Sprint(r.Stats.Compactions)},
		{"incremental passes", fmt.Sprint(r.Stats.IncrementalPasses)},
		{"leaves compacted", fmt.Sprint(r.Stats.LeavesCompacted)},
		{"compaction stall min", r.Stats.CompactionMinStall.Round(10 * time.Microsecond).String()},
		{"compaction stall max", r.Stats.CompactionMaxStall.Round(10 * time.Microsecond).String()},
		{"compaction stall total", r.Stats.CompactionTotalStall.Round(10 * time.Microsecond).String()},
		{"maintenance passes", fmt.Sprint(r.Stats.Passes)},
		{"pages reclaimed", fmt.Sprint(r.Stats.PagesReclaimed)},
		{"max limbo pages", fmt.Sprint(r.MaxLimbo)},
		{"probe wakeups", fmt.Sprint(r.Stats.ProbeWakeups)},
		{"drift wakeups", fmt.Sprint(r.Stats.DriftWakeups)},
		{"structural requests", fmt.Sprint(r.Stats.StructuralRequests)},
		{"forced lock acquisitions", fmt.Sprint(r.Stats.ForcedLocks)},
		{"page economy", econ},
	}
	for _, row := range rows {
		t.AddRow(row[0], row[1])
	}
	return t, nil
}
