// Package bench drives the paper's experiments (Section 6): it builds
// the three workloads on simulated devices, runs the index probes of
// every figure and table, and renders the same rows and series the paper
// reports. Each experiment of DESIGN.md's per-experiment index has a
// Run* function here and a `bfbench -exp` alias.
//
// Every index is built and measured through the unified bftree/index
// API: one BuildIndex/MeasureIndex path serves the BF-Tree and every
// baseline alike, so the paper's comparison experiments are registry
// walks and any point-lookup experiment runs against any registered
// backend (`bfbench -index=...`).
package bench

import (
	"fmt"
	"time"

	"bftree/index"
	"bftree/internal/device"
	"bftree/internal/heapfile"
	"bftree/internal/pagestore"
)

// PageSize is the fixed page size of all experiments (Section 6.1).
const PageSize = 4096

// StorageConfig names one of the paper's five storage configurations:
// where the index lives × where the data lives.
type StorageConfig struct {
	Name  string
	Index device.Kind
	Data  device.Kind
}

// FiveConfigs returns the paper's five configurations in the order of
// Figures 5 and 8: data on HDD with index in memory/SSD/HDD, then data
// on SSD with index in memory/SSD.
func FiveConfigs() []StorageConfig {
	return []StorageConfig{
		{Name: "mem/HDD", Index: device.Memory, Data: device.HDD},
		{Name: "SSD/HDD", Index: device.SSD, Data: device.HDD},
		{Name: "HDD/HDD", Index: device.HDD, Data: device.HDD},
		{Name: "mem/SSD", Index: device.Memory, Data: device.SSD},
		{Name: "SSD/SSD", Index: device.SSD, Data: device.SSD},
	}
}

// WarmConfigs returns the three configurations of the warm-cache
// figures (7, 10, 12b): the memory-resident-index cases are excluded
// because warming changes nothing there.
func WarmConfigs() []StorageConfig {
	return []StorageConfig{
		{Name: "SSD/SSD", Index: device.SSD, Data: device.SSD},
		{Name: "SSD/HDD", Index: device.SSD, Data: device.HDD},
		{Name: "HDD/HDD", Index: device.HDD, Data: device.HDD},
	}
}

// Scale sets the dataset sizes. The paper uses a 1 GB synthetic relation
// (4 194 304 tuples), TPCH SF1 lineitem (≈6 M tuples, ≈2526 ship dates)
// and the full SHD. DefaultScale shrinks each by ~16x to keep harness
// runtimes interactive; ratios (capacity gain, normalized response time)
// are scale-invariant. PaperScale matches the paper.
type Scale struct {
	SyntheticTuples uint64
	TPCHTuples      uint64
	TPCHDates       int
	SHDTuples       uint64
	Probes          int
	Seed            int64

	// Index selects the registered backend the point-lookup experiments
	// probe ("bftree", "bptree", "fdtree", "hash"); empty selects the
	// BF-Tree. The point-lookup and mixed-workload experiments also
	// accept "each", walking the whole registry.
	Index string

	// JSONDir, when non-empty, makes the streaming/batching experiments
	// (scan-stream, batched-probe, point-lookup, mixed-workload) also
	// write their Record rows as JSON files (BENCH_scan.json,
	// BENCH_batch.json, BENCH_point.json, BENCH_mixed.json) into this
	// directory.
	JSONDir string

	// Skew is the Zipfian skew parameter of workloads that support it
	// (shard-scale's writer shard choice, mixed-workload's zipf cells):
	// values above 1 concentrate load on the hottest keys, 0 or 1 keeps
	// the pre-skew uniform spread. Set by bfbench's -skew flag.
	Skew float64

	// Mix narrows the mixed-workload experiment to one preset ("oltp",
	// "olap", "reporting", "timeseries"); empty runs all of them. Set by
	// bfbench's -mix flag.
	Mix string
}

// IndexBackend resolves the Index selection, defaulting to the BF-Tree.
func (s Scale) IndexBackend() string {
	if s.Index == "" {
		return "bftree"
	}
	return s.Index
}

// DefaultScale returns the CI-friendly scale (64 MB synthetic relation).
func DefaultScale() Scale {
	return Scale{
		SyntheticTuples: 262144, // 64 MB at 256 B/tuple
		TPCHTuples:      375000, // ≈2400 tuples per date over 156 dates
		TPCHDates:       156,
		SHDTuples:       250000,
		Probes:          1000,
		Seed:            42,
	}
}

// PaperScale returns the paper's sizes (slow: a 1 GB in-memory relation
// per configuration cell).
func PaperScale() Scale {
	return Scale{
		SyntheticTuples: 4194304,
		TPCHTuples:      6000000,
		TPCHDates:       2526,
		SHDTuples:       2000000,
		Probes:          1000,
		Seed:            42,
	}
}

// Env is one experiment cell's environment: an index store and a data
// store on their configured devices.
type Env struct {
	Config    StorageConfig
	IdxDev    *device.Device
	DataDev   *device.Device
	IdxStore  *pagestore.Store
	DataStore *pagestore.Store
}

// NewEnv builds devices and stores for a configuration. cachePages > 0
// adds a pinned buffer cache in front of the index device: warm-cache
// experiments load the tree's internal pages into it, while leaf and
// data accesses keep paying device cost on every probe, exactly the
// paper's warm-cache semantics (Section 6.2).
func NewEnv(cfg StorageConfig, cachePages int) *Env {
	idxDev := device.New(cfg.Index, PageSize)
	dataDev := device.New(cfg.Data, PageSize)
	var idxStore *pagestore.Store
	if cachePages > 0 {
		idxStore = pagestore.New(idxDev, pagestore.WithPinnedCache(cachePages))
	} else {
		idxStore = pagestore.New(idxDev)
	}
	return &Env{
		Config:    cfg,
		IdxDev:    idxDev,
		DataDev:   dataDev,
		IdxStore:  idxStore,
		DataStore: pagestore.New(dataDev),
	}
}

// ResetIO zeroes both devices' counters (called between build and
// measurement).
func (e *Env) ResetIO() {
	e.IdxDev.ResetStats()
	e.DataDev.ResetStats()
}

// Elapsed returns the total virtual I/O time charged since the last
// reset.
func (e *Env) Elapsed() time.Duration {
	return e.IdxDev.Stats().Elapsed + e.DataDev.Stats().Elapsed
}

// Measurement is the outcome of one probe batch.
type Measurement struct {
	AvgTime       time.Duration // virtual response time per probe
	P50, P99      time.Duration // per-probe virtual latency quantiles
	FalsePerProbe float64       // falsely read data pages per probe
	DataReads     uint64
	IdxReads      uint64
	Tuples        int // matching tuples found
}

// BuildIndex bulk-loads any registered backend over a cell's index
// store — the one build path of every experiment.
func BuildIndex(name string, env *Env, file *heapfile.File, fieldIdx int, opts index.Options) (index.Index, error) {
	return index.New(name, env.IdxStore, file, fieldIdx, opts)
}

// MeasureIndex runs the probe batch against any backend through the
// unified interface; unique selects the primary-key early-exit variant.
// Device-level accounting (virtual I/O time, page reads) comes from the
// cell's devices; false reads from the shared Result stats.
func MeasureIndex(env *Env, ix index.Index, keys []uint64, unique bool) (*Measurement, error) {
	env.ResetIO()
	var falseReads, tuples int
	lats := make([]time.Duration, 0, len(keys))
	prev := time.Duration(0)
	for _, k := range keys {
		var res *index.Result
		var err error
		if unique {
			res, err = ix.SearchFirst(k)
		} else {
			res, err = ix.Search(k)
		}
		if err != nil {
			return nil, err
		}
		falseReads += res.Stats.FalseReads
		tuples += len(res.Tuples)
		// Per-probe virtual latency: the delta of the devices' charged
		// I/O time across this probe (probes run sequentially here).
		now := env.Elapsed()
		lats = append(lats, now-prev)
		prev = now
	}
	p50, p99 := latencyQuantiles(lats)
	return &Measurement{
		AvgTime:       env.Elapsed() / time.Duration(len(keys)),
		P50:           p50,
		P99:           p99,
		FalsePerProbe: float64(falseReads) / float64(len(keys)),
		DataReads:     env.DataDev.Stats().Reads(),
		IdxReads:      env.IdxDev.Stats().Reads(),
		Tuples:        tuples,
	}, nil
}

// WarmIndex loads a tree's internal pages into the index store's cache,
// modelling the warm-cache setup where the levels above the leaves are
// resident (Section 6.2's "the nodes of the higher levels of a B+-Tree
// reside always in memory").
func WarmIndex(env *Env, internal []device.PageID) error {
	if !env.IdxStore.Cached() {
		return fmt.Errorf("bench: warm requested on an uncached env")
	}
	return env.IdxStore.Warm(internal)
}

// WarmBuiltIndex warms a built index's internal pages when the backend
// exposes them (the Warmable capability); memory-resident backends have
// nothing to warm and pass through.
func WarmBuiltIndex(env *Env, ix index.Index) error {
	w, ok := ix.(index.Warmable)
	if !ok {
		return nil
	}
	internal, err := w.InternalPages()
	if err != nil {
		return err
	}
	if len(internal) == 0 {
		return nil
	}
	return WarmIndex(env, internal)
}
