// Package bench drives the paper's experiments (Section 6): it builds
// the three workloads on simulated devices, runs the index probes of
// every figure and table, and renders the same rows and series the paper
// reports. Each experiment of DESIGN.md's per-experiment index has a
// Run* function here and a `bfbench -exp` alias.
package bench

import (
	"fmt"
	"time"

	"bftree/internal/bptree"
	"bftree/internal/core"
	"bftree/internal/device"
	"bftree/internal/hashindex"
	"bftree/internal/heapfile"
	"bftree/internal/pagestore"
)

// PageSize is the fixed page size of all experiments (Section 6.1).
const PageSize = 4096

// StorageConfig names one of the paper's five storage configurations:
// where the index lives × where the data lives.
type StorageConfig struct {
	Name  string
	Index device.Kind
	Data  device.Kind
}

// FiveConfigs returns the paper's five configurations in the order of
// Figures 5 and 8: data on HDD with index in memory/SSD/HDD, then data
// on SSD with index in memory/SSD.
func FiveConfigs() []StorageConfig {
	return []StorageConfig{
		{Name: "mem/HDD", Index: device.Memory, Data: device.HDD},
		{Name: "SSD/HDD", Index: device.SSD, Data: device.HDD},
		{Name: "HDD/HDD", Index: device.HDD, Data: device.HDD},
		{Name: "mem/SSD", Index: device.Memory, Data: device.SSD},
		{Name: "SSD/SSD", Index: device.SSD, Data: device.SSD},
	}
}

// WarmConfigs returns the three configurations of the warm-cache
// figures (7, 10, 12b): the memory-resident-index cases are excluded
// because warming changes nothing there.
func WarmConfigs() []StorageConfig {
	return []StorageConfig{
		{Name: "SSD/SSD", Index: device.SSD, Data: device.SSD},
		{Name: "SSD/HDD", Index: device.SSD, Data: device.HDD},
		{Name: "HDD/HDD", Index: device.HDD, Data: device.HDD},
	}
}

// Scale sets the dataset sizes. The paper uses a 1 GB synthetic relation
// (4 194 304 tuples), TPCH SF1 lineitem (≈6 M tuples, ≈2526 ship dates)
// and the full SHD. DefaultScale shrinks each by ~16x to keep harness
// runtimes interactive; ratios (capacity gain, normalized response time)
// are scale-invariant. PaperScale matches the paper.
type Scale struct {
	SyntheticTuples uint64
	TPCHTuples      uint64
	TPCHDates       int
	SHDTuples       uint64
	Probes          int
	Seed            int64
}

// DefaultScale returns the CI-friendly scale (64 MB synthetic relation).
func DefaultScale() Scale {
	return Scale{
		SyntheticTuples: 262144, // 64 MB at 256 B/tuple
		TPCHTuples:      375000, // ≈2400 tuples per date over 156 dates
		TPCHDates:       156,
		SHDTuples:       250000,
		Probes:          1000,
		Seed:            42,
	}
}

// PaperScale returns the paper's sizes (slow: a 1 GB in-memory relation
// per configuration cell).
func PaperScale() Scale {
	return Scale{
		SyntheticTuples: 4194304,
		TPCHTuples:      6000000,
		TPCHDates:       2526,
		SHDTuples:       2000000,
		Probes:          1000,
		Seed:            42,
	}
}

// Env is one experiment cell's environment: an index store and a data
// store on their configured devices.
type Env struct {
	Config    StorageConfig
	IdxDev    *device.Device
	DataDev   *device.Device
	IdxStore  *pagestore.Store
	DataStore *pagestore.Store
}

// NewEnv builds devices and stores for a configuration. cachePages > 0
// adds a pinned buffer cache in front of the index device: warm-cache
// experiments load the tree's internal pages into it, while leaf and
// data accesses keep paying device cost on every probe, exactly the
// paper's warm-cache semantics (Section 6.2).
func NewEnv(cfg StorageConfig, cachePages int) *Env {
	idxDev := device.New(cfg.Index, PageSize)
	dataDev := device.New(cfg.Data, PageSize)
	var idxStore *pagestore.Store
	if cachePages > 0 {
		idxStore = pagestore.New(idxDev, pagestore.WithPinnedCache(cachePages))
	} else {
		idxStore = pagestore.New(idxDev)
	}
	return &Env{
		Config:    cfg,
		IdxDev:    idxDev,
		DataDev:   dataDev,
		IdxStore:  idxStore,
		DataStore: pagestore.New(dataDev),
	}
}

// ResetIO zeroes both devices' counters (called between build and
// measurement).
func (e *Env) ResetIO() {
	e.IdxDev.ResetStats()
	e.DataDev.ResetStats()
}

// Elapsed returns the total virtual I/O time charged since the last
// reset.
func (e *Env) Elapsed() time.Duration {
	return e.IdxDev.Stats().Elapsed + e.DataDev.Stats().Elapsed
}

// Measurement is the outcome of one probe batch.
type Measurement struct {
	AvgTime       time.Duration // virtual response time per probe
	FalsePerProbe float64       // falsely read data pages per probe
	DataReads     uint64
	IdxReads      uint64
	Tuples        int // matching tuples found
}

// MeasureBFTree runs the probe batch against a BF-Tree; unique selects
// the primary-key early-exit variant.
func MeasureBFTree(env *Env, tr *core.Tree, keys []uint64, unique bool) (*Measurement, error) {
	env.ResetIO()
	var falseReads, tuples int
	for _, k := range keys {
		var res *core.Result
		var err error
		if unique {
			res, err = tr.SearchFirst(k)
		} else {
			res, err = tr.Search(k)
		}
		if err != nil {
			return nil, err
		}
		falseReads += res.Stats.FalseReads
		tuples += len(res.Tuples)
	}
	return &Measurement{
		AvgTime:       env.Elapsed() / time.Duration(len(keys)),
		FalsePerProbe: float64(falseReads) / float64(len(keys)),
		DataReads:     env.DataDev.Stats().Reads(),
		IdxReads:      env.IdxDev.Stats().Reads(),
		Tuples:        tuples,
	}, nil
}

// MeasureBPTree runs the probe batch against the B+-Tree baseline: probe
// the index, then fetch every referenced tuple's page (consecutive
// references to the same page cost one read).
func MeasureBPTree(env *Env, tr *bptree.Tree, file *heapfile.File, fieldIdx int, keys []uint64) (*Measurement, error) {
	env.ResetIO()
	tuples := 0
	for _, k := range keys {
		refs, err := tr.Search(k)
		if err != nil {
			return nil, err
		}
		n, err := fetchRefs(file, fieldIdx, k, refs)
		if err != nil {
			return nil, err
		}
		tuples += n
	}
	return &Measurement{
		AvgTime:   env.Elapsed() / time.Duration(len(keys)),
		DataReads: env.DataDev.Stats().Reads(),
		IdxReads:  env.IdxDev.Stats().Reads(),
		Tuples:    tuples,
	}, nil
}

// MeasureHash runs the probe batch against the in-memory hash index.
func MeasureHash(env *Env, idx *hashindex.Index, file *heapfile.File, fieldIdx int, keys []uint64) (*Measurement, error) {
	env.ResetIO()
	tuples := 0
	for _, k := range keys {
		refs := idx.Search(k)
		n, err := fetchRefs(file, fieldIdx, k, refs)
		if err != nil {
			return nil, err
		}
		tuples += n
	}
	return &Measurement{
		AvgTime:   env.Elapsed() / time.Duration(len(keys)),
		DataReads: env.DataDev.Stats().Reads(),
		IdxReads:  env.IdxDev.Stats().Reads(),
		Tuples:    tuples,
	}, nil
}

// fetchRefs reads the data pages of a reference list and counts the
// matching tuples, deduplicating consecutive same-page references.
func fetchRefs(file *heapfile.File, fieldIdx int, key uint64, refs []bptree.TupleRef) (int, error) {
	n := 0
	last := device.InvalidPage
	for _, r := range refs {
		if r.Page == last {
			continue // page already fetched; its matches are counted
		}
		tuples, err := file.SearchPage(r.Page, fieldIdx, key)
		if err != nil {
			return 0, err
		}
		n += len(tuples)
		last = r.Page
	}
	return n, nil
}

// BuildPKEntries extracts (pk, ref) entries from a file for baseline
// index builds.
func BuildPKEntries(file *heapfile.File, fieldIdx int) ([]bptree.Entry, error) {
	entries := make([]bptree.Entry, 0, file.NumTuples())
	err := file.Scan(func(pid device.PageID, slot int, tup []byte) bool {
		entries = append(entries, bptree.Entry{
			Key: file.Schema().Get(tup, fieldIdx),
			Ref: bptree.TupleRef{Page: pid, Slot: uint16(slot)},
		})
		return true
	})
	if err != nil {
		return nil, err
	}
	return entries, nil
}

// WarmIndex loads a tree's internal pages into the index store's cache,
// modelling the warm-cache setup where the levels above the leaves are
// resident (Section 6.2's "the nodes of the higher levels of a B+-Tree
// reside always in memory").
func WarmIndex(env *Env, internal []device.PageID) error {
	if !env.IdxStore.Cached() {
		return fmt.Errorf("bench: warm requested on an uncached env")
	}
	return env.IdxStore.Warm(internal)
}

// BuildDedupEntries returns one entry per distinct key — its first
// occurrence in file order. This is the B+-Tree baseline the paper uses
// for ordered non-unique attributes: Equation 3 stores each key once
// (keysize/avgcard per tuple), and Table 2's ATT1 column (1748 pages vs
// 19296 for the PK) matches only a deduplicated index.
func BuildDedupEntries(file *heapfile.File, fieldIdx int) ([]bptree.Entry, error) {
	var entries []bptree.Entry
	var last uint64
	have := false
	err := file.Scan(func(pid device.PageID, slot int, tup []byte) bool {
		k := file.Schema().Get(tup, fieldIdx)
		if !have || k != last {
			entries = append(entries, bptree.Entry{
				Key: k,
				Ref: bptree.TupleRef{Page: pid, Slot: uint16(slot)},
			})
			last = k
			have = true
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	return entries, nil
}

// MeasureBPTreeOrdered probes a deduplicated B+-Tree over an ordered
// attribute: one descent to the first occurrence, then consecutive data
// pages are read while they keep matching — "every probe with a positive
// match will read all the consecutive tuples that have the same value"
// (Section 6.3).
func MeasureBPTreeOrdered(env *Env, tr *bptree.Tree, file *heapfile.File, fieldIdx int, keys []uint64) (*Measurement, error) {
	env.ResetIO()
	tuples := 0
	last := file.FirstPage() + device.PageID(file.NumPages()) - 1
	for _, k := range keys {
		refs, err := tr.Search(k)
		if err != nil {
			return nil, err
		}
		if len(refs) == 0 {
			continue
		}
		for pid := refs[0].Page; pid <= last; pid++ {
			pageTuples, err := file.ReadPageTuples(pid)
			if err != nil {
				return nil, err
			}
			matched := 0
			past := false
			for _, tup := range pageTuples {
				switch v := file.Schema().Get(tup, fieldIdx); {
				case v == k:
					matched++
				case v > k:
					past = true
				}
			}
			tuples += matched
			// Duplicates are contiguous: stop when a page yields nothing
			// or the key range has moved past the probe key.
			if matched == 0 || past {
				break
			}
		}
	}
	return &Measurement{
		AvgTime:   env.Elapsed() / time.Duration(len(keys)),
		DataReads: env.DataDev.Stats().Reads(),
		IdxReads:  env.IdxDev.Stats().Reads(),
		Tuples:    tuples,
	}, nil
}
