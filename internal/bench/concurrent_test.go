package bench

import (
	"testing"
)

// sweepScale keeps the concurrent sweep fast in unit tests: few probes,
// small relation.
func sweepScale() Scale {
	s := DefaultScale()
	s.SyntheticTuples = 20000
	s.Probes = 128
	return s
}

// TestConcurrentProbeSweepScales runs the 1→8 worker sweep and asserts
// the property the concurrent read path exists to provide: aggregate
// throughput grows by more than 2x from 1 to 8 workers, because probers
// overlap their per-access blocking time instead of serializing behind
// a store- or device-wide lock.
func TestConcurrentProbeSweepScales(t *testing.T) {
	results, err := ConcurrentProbeSweep(sweepScale(), []int{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	one, eight := results[0], results[1]
	if one.Workers != 1 || eight.Workers != 8 {
		t.Fatalf("unexpected sweep rows: %+v", results)
	}
	speedup := eight.Throughput / one.Throughput
	if speedup <= 2 {
		t.Errorf("8-worker speedup = %.2fx, want > 2x (read path still serializes?)", speedup)
	}
	for _, r := range results {
		if r.P50 <= 0 || r.P99 < r.P50 {
			t.Errorf("workers=%d: implausible latencies p50=%v p99=%v", r.Workers, r.P50, r.P99)
		}
		if r.Probes != 128 {
			t.Errorf("workers=%d ran %d probes, want 128", r.Workers, r.Probes)
		}
	}
}

// TestConcurrentProbeExperimentRegistered runs the registered experiment
// end-to-end and sanity-checks the rendered table.
func TestConcurrentProbeExperimentRegistered(t *testing.T) {
	tbl, err := Run("concurrent-probe", sweepScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(ConcurrentWorkerCounts) {
		t.Fatalf("table has %d rows, want %d", len(tbl.Rows), len(ConcurrentWorkerCounts))
	}
	if tbl.Rows[0][0] != "1" || tbl.Rows[len(tbl.Rows)-1][0] != "16" {
		t.Errorf("worker sweep rows wrong: first=%q last=%q", tbl.Rows[0][0], tbl.Rows[len(tbl.Rows)-1][0])
	}
}
