package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// streamScale sizes the streaming/batching experiments for CI: big
// enough that ranges span many data pages and trees have real depth.
func streamScale() Scale {
	return Scale{
		SyntheticTuples: 30000,
		TPCHTuples:      12000,
		TPCHDates:       24,
		SHDTuples:       12000,
		Probes:          256,
		Seed:            7,
	}
}

// TestScanStreamLimitSavesPages pins the issue's acceptance bar: a
// LIMIT-10 streaming scan over a ~10%-selectivity range must read at
// least 10x fewer pages than the materialized RangeScan.
func TestScanStreamLimitSavesPages(t *testing.T) {
	results, err := ScanStreamSweep(streamScale())
	if err != nil {
		t.Fatal(err)
	}
	byMode := map[string]*ScanStreamResult{}
	for _, r := range results {
		byMode[r.Mode] = r
	}
	mat, ok := byMode["materialized"]
	if !ok {
		t.Fatal("no materialized row")
	}
	limit10, ok := byMode["limit-10"]
	if !ok {
		t.Fatal("no limit-10 row")
	}
	if limit10.PagesPerOp*10 > mat.PagesPerOp {
		t.Errorf("limit-10 read %.1f pages/op, materialized %.1f — want at least 10x fewer",
			limit10.PagesPerOp, mat.PagesPerOp)
	}
	if limit10.TuplesPerOp != 10 {
		t.Errorf("limit-10 returned %.1f tuples/op, want 10", limit10.TuplesPerOp)
	}
	// The full stream and the materialized scan are the same drain.
	stream, ok := byMode["stream"]
	if !ok {
		t.Fatal("no stream row")
	}
	if stream.PagesPerOp != mat.PagesPerOp || stream.TuplesPerOp != mat.TuplesPerOp {
		t.Errorf("drained stream (%.1f pages, %.1f tuples) != materialized (%.1f pages, %.1f tuples)",
			stream.PagesPerOp, stream.TuplesPerOp, mat.PagesPerOp, mat.TuplesPerOp)
	}
	// Time to first tuple is where streaming shows up even without a
	// LIMIT: the drain produces its first tuple before reading the rest.
	if stream.FirstTuple >= mat.FirstTuple {
		t.Errorf("stream first tuple at %v, materialized at %v — streaming should answer earlier",
			stream.FirstTuple, mat.FirstTuple)
	}
}

// TestBatchedProbeSharesIndexReads pins the issue's acceptance bar on
// both tree backends: MultiSearch at batch 64 must charge measurably
// fewer index page reads per key than batch 1.
func TestBatchedProbeSharesIndexReads(t *testing.T) {
	results, err := BatchedProbeSweep(streamScale(), []string{"bftree", "bptree"}, []int{1, 64})
	if err != nil {
		t.Fatal(err)
	}
	type cell map[int]*BatchedProbeResult
	byBackend := map[string]cell{}
	for _, r := range results {
		if byBackend[r.Backend] == nil {
			byBackend[r.Backend] = cell{}
		}
		byBackend[r.Backend][r.Batch] = r
	}
	for _, backend := range []string{"bftree", "bptree"} {
		c := byBackend[backend]
		if c == nil || c[1] == nil || c[64] == nil {
			t.Fatalf("%s: missing batch rows", backend)
		}
		if c[64].IndexReadsPerKey >= c[1].IndexReadsPerKey {
			t.Errorf("%s: batch 64 charged %.3f index reads/key, batch 1 %.3f — batching should share reads",
				backend, c[64].IndexReadsPerKey, c[1].IndexReadsPerKey)
		}
	}
}

// TestStreamingJSONRecords pins the BENCH_scan.json / BENCH_batch.json
// emission: running the experiments with a JSONDir writes well-formed
// record arrays with the documented schema fields populated.
func TestStreamingJSONRecords(t *testing.T) {
	dir := t.TempDir()
	scale := streamScale()
	scale.JSONDir = dir
	if _, err := Run("scan-stream", scale); err != nil {
		t.Fatal(err)
	}
	scale.Index = "bftree" // keep the test fast: one backend's sweep
	if _, err := Run("batched-probe", scale); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"BENCH_scan.json", "BENCH_batch.json"} {
		blob, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s not written: %v", name, err)
		}
		var records []Record
		if err := json.Unmarshal(blob, &records); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(records) == 0 {
			t.Fatalf("%s: no records", name)
		}
		for _, r := range records {
			if r.Experiment == "" || r.Backend == "" {
				t.Errorf("%s: record missing experiment/backend: %+v", name, r)
			}
			if r.P99 < r.P50 {
				t.Errorf("%s: p99 %v < p50 %v", name, r.P99, r.P50)
			}
		}
	}
}
