package bench

import (
	"testing"
)

// mixedScale keeps the mixed-rw sweep fast in unit tests.
func mixedScale() Scale {
	s := DefaultScale()
	s.SyntheticTuples = 20000
	s.Probes = 96
	return s
}

// TestMixedRWSweepLiveWriter runs the 1→8 reader sweep and asserts the
// property the experiment exists to demonstrate: readers make progress
// under a continuously structural-writing writer, and the writer really
// was live (it completed inserts, grew the leaf level) during every
// measured window.
func TestMixedRWSweepLiveWriter(t *testing.T) {
	results, err := MixedRWSweep(mixedScale(), []int{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[0].Readers != 1 || results[1].Readers != 8 {
		t.Fatalf("unexpected sweep rows: %+v", results)
	}
	for _, r := range results {
		if r.Throughput <= 0 {
			t.Errorf("readers=%d: no reader throughput", r.Readers)
		}
		if r.P50 <= 0 || r.P99 < r.P50 {
			t.Errorf("readers=%d: implausible latencies p50=%v p99=%v", r.Readers, r.P50, r.P99)
		}
		if r.LeavesAdded == 0 {
			t.Errorf("readers=%d: no structural changes raced the readers", r.Readers)
		}
	}
	// The writer must be live inside the measured window; the 1-reader
	// row has the longest window, so assert there (short windows at high
	// reader counts can legitimately catch the writer mid-batch).
	if results[0].WriterInserts == 0 {
		t.Error("the writer completed no inserts inside the 1-reader measurement window")
	}
	// Readers must scale despite the live writer: the read path takes no
	// locks, so 8 readers beat 1 clearly even while splits stream.
	speedup := results[1].Throughput / results[0].Throughput
	if speedup <= 2 {
		t.Errorf("8-reader speedup under a live writer = %.2fx, want > 2x", speedup)
	}
}

// TestMixedRWExperimentRegistered runs the registered experiment
// end-to-end and sanity-checks the rendered table.
func TestMixedRWExperimentRegistered(t *testing.T) {
	tbl, err := Run("mixed-rw", mixedScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(MixedRWReaderCounts) {
		t.Fatalf("table has %d rows, want %d", len(tbl.Rows), len(MixedRWReaderCounts))
	}
	if tbl.Rows[0][0] != "1" || tbl.Rows[len(tbl.Rows)-1][0] != "8" {
		t.Errorf("reader sweep rows wrong: first=%q last=%q", tbl.Rows[0][0], tbl.Rows[len(tbl.Rows)-1][0])
	}
}
