package bench

import (
	"testing"
)

// churnScale keeps the churn run fast in unit tests: ~120k ops over a
// 16384-key tree, enough for dozens of drift-triggered compactions.
func churnScale() Scale {
	s := DefaultScale()
	s.SyntheticTuples = 30000
	return s
}

// TestChurnSelfMaintains asserts the acceptance properties of the
// self-maintaining mode: under sustained insert+delete churn the
// maintainer compacts on drift (observed in MaintenanceStats), the
// effective fpp stays near the configured Equation 14 threshold, limbo
// stays bounded, and the page economy balances at quiescence with the
// foreground write path having performed zero reclamation.
func TestChurnSelfMaintains(t *testing.T) {
	r, err := ChurnRun(churnScale())
	if err != nil {
		t.Fatal(err)
	}
	if r.Ops < 4*r.Keys {
		t.Fatalf("only %d ops over %d keys; fixture too small to drift", r.Ops, r.Keys)
	}
	if r.Stats.Compactions == 0 {
		t.Errorf("no auto-compaction observed: %+v", r.Stats)
	}
	// Drift is held near the threshold: the maintainer may detect the
	// crossing one reclaim interval late, so allow bounded overshoot.
	if r.MaxFPP >= r.Threshold+0.05 {
		t.Errorf("max effective fpp %.4f overshot threshold %.3f by more than 0.05",
			r.MaxFPP, r.Threshold)
	}
	// Limbo is bounded: at most a couple of retired tree generations,
	// never growing with the op count.
	if limit := 4*int(r.LiveNodes) + 64; r.MaxLimbo > limit {
		t.Errorf("max limbo %d pages exceeds %d (live nodes %d); limbo grows with churn",
			r.MaxLimbo, limit, r.LiveNodes)
	}
	if r.Stats.PagesReclaimed == 0 {
		t.Error("maintainer reclaimed nothing; retired trees leaked")
	}
	if r.LimboAtEnd != 0 {
		t.Errorf("%d pages stuck in limbo at quiescence", r.LimboAtEnd)
	}
	if !r.EconomyBalanced() {
		t.Errorf("page economy leaks: live %d + free %d + limbo %d != device %d",
			r.LiveNodes, r.FreePages, r.LimboAtEnd, r.DevicePages)
	}
}

// TestChurnExperimentRegistered runs the registered experiment
// end-to-end and sanity-checks the rendered table.
func TestChurnExperimentRegistered(t *testing.T) {
	tbl, err := Run("churn", churnScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatal("churn experiment produced no rows")
	}
	for _, row := range tbl.Rows {
		if row[0] == "page economy" {
			if len(row[1]) == 0 || row[1][len(row[1])-1] != ')' {
				t.Errorf("economy row malformed: %q", row[1])
			}
			return
		}
	}
	t.Error("no page-economy row in the churn table")
}
