package bench

import (
	"fmt"
	"time"

	"bftree/index"
	"bftree/internal/device"
)

// BatchSizes is the batch sweep of the batched-probe experiment.
var BatchSizes = []int{1, 8, 64, 512}

// BatchedProbeResult is one (backend, batch size) cell: per-key cost of
// answering the PK probe set through MultiSearch at that batch size.
type BatchedProbeResult struct {
	Backend string
	Batch   int
	Keys    int
	// IndexReadsPerKey and DataReadsPerKey are the ProbeStats page
	// charges divided by the keys answered — the sharing the batch API
	// buys shows up as IndexReadsPerKey falling with the batch size.
	IndexReadsPerKey float64
	DataReadsPerKey  float64
	Throughput       float64 // keys per virtual second
	P50, P99         time.Duration
}

// batchedProbeBackends resolves which backends the experiment walks: a
// concrete -index selection runs alone; the default and "each" walk the
// whole registry, since the experiment is a comparison.
func batchedProbeBackends(scale Scale) []string {
	if scale.Index != "" && scale.Index != "each" {
		return []string{scale.Index}
	}
	return index.Backends()
}

// BatchedProbeSweep builds each backend's PK index on the SSD/SSD
// configuration and answers the same probe keys through MultiSearch at
// each batch size. Batching lets adjacent keys share leaf descents and
// dedup data-page reads, so index reads per key fall as the batch
// grows; batch 1 is the degenerate case costing a full descent per key.
func BatchedProbeSweep(scale Scale, backends []string, batches []int) ([]*BatchedProbeResult, error) {
	cfg := StorageConfig{Name: "SSD/SSD", Index: device.SSD, Data: device.SSD}
	var out []*BatchedProbeResult
	for _, backend := range backends {
		env, syn, err := syntheticEnv(cfg, scale, 0)
		if err != nil {
			return nil, err
		}
		ix, err := BuildIndex(backend, env, syn.File, 0, pointOpts(0, 1e-3))
		if err != nil {
			return nil, err
		}
		m, ok := ix.(index.MultiSearcher)
		if !ok {
			ix.Close()
			return nil, fmt.Errorf("bench: backend %q does not implement MultiSearcher", backend)
		}
		keys, err := pkProbes(syn, scale)
		if err != nil {
			ix.Close()
			return nil, err
		}
		for _, b := range batches {
			// Small probe budgets clamp the batch to what's available.
			step := b
			if step > len(keys) {
				step = len(keys)
			}
			total := len(keys) - len(keys)%step
			env.ResetIO()
			var idxReads, dataReads uint64
			var elapsedTotal time.Duration
			lats := make([]time.Duration, 0, total)
			for at := 0; at+step <= total; at += step {
				e0 := env.Elapsed()
				res, err := m.MultiSearch(keys[at : at+step])
				if err != nil {
					ix.Close()
					return nil, err
				}
				lat := env.Elapsed() - e0
				elapsedTotal += lat
				idxReads += uint64(res.Stats.IndexReads)
				dataReads += uint64(res.Stats.DataPagesRead)
				perKey := lat / time.Duration(step)
				for i := 0; i < step; i++ {
					lats = append(lats, perKey)
				}
			}
			p50, p99 := latencyQuantiles(lats)
			throughput := 0.0
			if elapsedTotal > 0 {
				throughput = float64(total) / elapsedTotal.Seconds()
			}
			out = append(out, &BatchedProbeResult{
				Backend:          backend,
				Batch:            b,
				Keys:             total,
				IndexReadsPerKey: float64(idxReads) / float64(total),
				DataReadsPerKey:  float64(dataReads) / float64(total),
				Throughput:       throughput,
				P50:              p50,
				P99:              p99,
			})
		}
		ix.Close()
	}
	return out, nil
}

// RunBatchedProbe is the `batched-probe` experiment: PK probes answered
// through MultiSearch at batch 1/8/64/512 on SSD/SSD, across the
// backend registry (or the -index selection). With -json it also writes
// BENCH_batch.json.
func RunBatchedProbe(scale Scale) (*Table, error) {
	results, err := BatchedProbeSweep(scale, batchedProbeBackends(scale), BatchSizes)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Batched probes: PK MultiSearch on SSD/SSD",
		Header: []string{"backend", "batch", "keys", "idx reads/key", "data reads/key", "p50/key", "p99/key", "keys/s(virt)"},
		Notes: []string{
			"a batch is sorted once, then adjacent keys share leaf descents and",
			"Bloom probes and duplicate data-page reads collapse; batch 1 is the",
			"degenerate case paying a full descent per key",
		},
	}
	var records []Record
	for _, r := range results {
		t.AddRow(
			r.Backend,
			fmt.Sprint(r.Batch),
			fmt.Sprint(r.Keys),
			fmtF(r.IndexReadsPerKey),
			fmtF(r.DataReadsPerKey),
			r.P50.Round(time.Microsecond).String(),
			r.P99.Round(time.Microsecond).String(),
			fmtF(r.Throughput),
		)
		records = append(records, Record{
			Experiment:       "batched-probe",
			Backend:          r.Backend,
			Batch:            r.Batch,
			Throughput:       r.Throughput,
			P50:              r.P50.Seconds(),
			P99:              r.P99.Seconds(),
			IndexReadsPerKey: r.IndexReadsPerKey,
		})
	}
	if err := writeArtifact(scale, "batched-probe", records); err != nil {
		return nil, err
	}
	return t, nil
}
