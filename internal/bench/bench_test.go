package bench

import (
	"strconv"
	"strings"
	"testing"

	"bftree/index"
	"bftree/internal/bptree"
	"bftree/internal/device"
	"bftree/internal/workload"
)

// tinyScale keeps unit-test experiment runs fast.
func tinyScale() Scale {
	return Scale{
		SyntheticTuples: 30000,
		TPCHTuples:      30000,
		TPCHDates:       50,
		SHDTuples:       30000,
		Probes:          200,
		Seed:            7,
	}
}

func TestFiveConfigs(t *testing.T) {
	cfgs := FiveConfigs()
	if len(cfgs) != 5 {
		t.Fatalf("want 5 configs, got %d", len(cfgs))
	}
	names := map[string]bool{}
	for _, c := range cfgs {
		names[c.Name] = true
	}
	for _, want := range []string{"mem/HDD", "SSD/HDD", "HDD/HDD", "mem/SSD", "SSD/SSD"} {
		if !names[want] {
			t.Errorf("missing config %s", want)
		}
	}
	if len(WarmConfigs()) != 3 {
		t.Error("warm configs must be 3")
	}
}

func TestScales(t *testing.T) {
	d := DefaultScale()
	p := PaperScale()
	if d.SyntheticTuples >= p.SyntheticTuples {
		t.Error("default scale should be smaller than paper scale")
	}
	if p.SyntheticTuples != 4194304 {
		t.Error("paper scale must be the 1GB relation")
	}
}

func TestMeasureIndexAcrossBackends(t *testing.T) {
	scale := tinyScale()
	cfg := StorageConfig{Name: "SSD/HDD", Index: device.SSD, Data: device.HDD}
	env, syn, err := syntheticEnv(cfg, scale, 0)
	if err != nil {
		t.Fatal(err)
	}
	keys, err := pkProbes(syn, scale)
	if err != nil {
		t.Fatal(err)
	}
	// Every registered backend answers the PK probe batch with the same
	// tuple count through the one generic measurement path.
	tuples := map[string]int{}
	for _, name := range index.Backends() {
		ix, err := BuildIndex(name, env, syn.File, 0, pointOpts(0, 1e-3))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		m, err := MeasureIndex(env, ix, keys, true)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m.Tuples != len(keys) {
			t.Errorf("%s: PK probes found %d tuples for %d probes", name, m.Tuples, len(keys))
		}
		if m.AvgTime < 0 {
			t.Errorf("%s: negative avg time", name)
		}
		tuples[name] = m.Tuples
		if err := ix.Close(); err != nil {
			t.Fatal(err)
		}
	}
	for name, n := range tuples {
		if n != tuples["bftree"] {
			t.Errorf("%s found %d tuples, bftree %d", name, n, tuples["bftree"])
		}
	}
}

func TestATT1ProbesHitRate(t *testing.T) {
	scale := tinyScale()
	cfg := StorageConfig{Name: "mem/mem", Index: device.Memory, Data: device.Memory}
	env, syn, err := syntheticEnv(cfg, scale, 0)
	if err != nil {
		t.Fatal(err)
	}
	keys, err := att1Probes(syn, scale)
	if err != nil {
		t.Fatal(err)
	}
	present := make(map[uint64]bool, len(syn.ATT1Keys))
	for _, k := range syn.ATT1Keys {
		present[k] = true
	}
	hits := 0
	for _, k := range keys {
		if present[k] {
			hits++
		}
	}
	rate := float64(hits) / float64(len(keys))
	if rate < 0.10 || rate > 0.18 {
		t.Errorf("ATT1 hit rate %g, want ≈0.14", rate)
	}
	_ = env
}

func TestTableRender(t *testing.T) {
	tb := &Table{Title: "T", Header: []string{"a", "bb"}}
	tb.AddRow("1", "2")
	tb.Notes = append(tb.Notes, "n")
	var sb strings.Builder
	tb.Render(&sb)
	out := sb.String()
	for _, want := range []string{"== T ==", "a", "bb", "note: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryRunsStaticExperiments(t *testing.T) {
	for _, name := range []string{"fig2", "fig4a", "fig4b", "fig14"} {
		tb, err := Run(name, tinyScale())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(tb.Rows) == 0 {
			t.Errorf("%s produced no rows", name)
		}
	}
	if _, err := Run("nope", tinyScale()); err == nil {
		t.Error("unknown experiment accepted")
	}
	if len(ExperimentNames()) < 20 {
		t.Errorf("registry too small: %v", ExperimentNames())
	}
}

func TestRunFig1aAndFig1b(t *testing.T) {
	scale := tinyScale()
	a, err := RunFig1a(scale)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) == 0 {
		t.Error("fig1a has no rows")
	}
	b, err := RunFig1b(scale)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Rows) == 0 {
		t.Error("fig1b has no rows")
	}
	// Fig 1b note must report zero order violations.
	if !strings.Contains(strings.Join(b.Notes, " "), "violations: 0") {
		t.Errorf("fig1b notes: %v", b.Notes)
	}
}

func TestRunTable2ShowsCapacityGain(t *testing.T) {
	tb, err := RunTable2(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 { // B+ row + 4 fpp rows
		t.Fatalf("table2 rows = %d", len(tb.Rows))
	}
	// fpp=0.2 row must show a much larger gain than fpp=1e-15.
	parseGain := func(s string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "x"), 64)
		if err != nil {
			t.Fatalf("bad gain %q", s)
		}
		return v
	}
	loose := parseGain(tb.Rows[1][4])
	tight := parseGain(tb.Rows[4][4])
	if loose <= tight {
		t.Errorf("gain at fpp=0.2 (%g) must exceed gain at 1e-15 (%g)", loose, tight)
	}
	if loose < 5 {
		t.Errorf("loose gain %g implausibly small", loose)
	}
	if tight < 1 {
		t.Errorf("even the tightest BF-Tree must be smaller than B+ (gain %g)", tight)
	}
}

func TestRunTable3FalseReadsDecrease(t *testing.T) {
	tb, err := RunTable3(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	first, err := strconv.ParseFloat(tb.Rows[0][1], 64)
	if err != nil {
		t.Fatal(err)
	}
	last, err := strconv.ParseFloat(tb.Rows[len(tb.Rows)-1][1], 64)
	if err != nil {
		t.Fatal(err)
	}
	if last > first {
		t.Errorf("false reads must fall with fpp: %g → %g", first, last)
	}
	if first == 0 {
		t.Error("fpp=0.2 should cause false reads")
	}
}

func TestRunFig13Shape(t *testing.T) {
	tb, err := RunFig13(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	// Last row (tightest fpp), widest range: overhead ≈1. Narrow ranges
	// at this test's tiny scale span less than one partition, so only
	// the wide-range column is scale-invariant.
	lastRow := tb.Rows[len(tb.Rows)-1]
	wide, err := strconv.ParseFloat(lastRow[len(lastRow)-1], 64)
	if err != nil {
		t.Fatal(err)
	}
	if wide > 1.15 {
		t.Errorf("fpp=1e-12, 20%% range overhead %g should be negligible", wide)
	}
	// First row, smallest range: the worst case, must exceed the last
	// row's overhead.
	firstSmall, _ := strconv.ParseFloat(tb.Rows[0][1], 64)
	lastSmall, _ := strconv.ParseFloat(lastRow[1], 64)
	if firstSmall < lastSmall {
		t.Errorf("overhead should shrink with fpp: %g vs %g", firstSmall, lastSmall)
	}
}

func TestBuildPKEntriesSorted(t *testing.T) {
	cfg := StorageConfig{Name: "mem/mem", Index: device.Memory, Data: device.Memory}
	env, syn, err := syntheticEnv(cfg, tinyScale(), 0)
	if err != nil {
		t.Fatal(err)
	}
	_ = env
	entries, err := bptree.PKEntries(syn.File, 0)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(entries)) != syn.File.NumTuples() {
		t.Fatalf("entries = %d, tuples = %d", len(entries), syn.File.NumTuples())
	}
	for i := 1; i < len(entries); i++ {
		if entries[i].Key < entries[i-1].Key {
			t.Fatal("entries out of order")
		}
	}
}

func TestTPCHAndSHDProbes(t *testing.T) {
	scale := tinyScale()
	cfg := StorageConfig{Name: "mem/mem", Index: device.Memory, Data: device.Memory}
	env, tp, err := tpchEnv(cfg, scale, 0)
	if err != nil {
		t.Fatal(err)
	}
	_ = env
	keys, err := tpchProbes(tp, scale, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for _, k := range keys {
		if tp.DateCards[k] > 0 {
			hits++
		}
	}
	rate := float64(hits) / float64(len(keys))
	if rate < 0.45 || rate > 0.55 {
		t.Errorf("tpch hit rate %g, want 0.5", rate)
	}

	env2, shd, err := shdEnv(cfg, scale, 0)
	if err != nil {
		t.Fatal(err)
	}
	_ = env2
	skeys, err := shdProbes(shd, scale)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range skeys {
		if shd.Cards[k] == 0 {
			t.Fatal("shd probes must be 100% hits")
		}
	}
}

func TestWarmIndexRequiresCache(t *testing.T) {
	env := NewEnv(StorageConfig{Name: "x", Index: device.SSD, Data: device.SSD}, 0)
	if err := WarmIndex(env, nil); err == nil {
		t.Error("warming an uncached env should fail")
	}
}

func TestAblationDeletes(t *testing.T) {
	tb, err := RunAblationDeletes(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Counting filter uses more pages than standard.
	stdPages, _ := strconv.Atoi(tb.Rows[0][1])
	cntPages, _ := strconv.Atoi(tb.Rows[1][1])
	if cntPages <= stdPages {
		t.Errorf("counting (%d pages) must exceed standard (%d)", cntPages, stdPages)
	}
}

func TestAblationGranularity(t *testing.T) {
	tb, err := RunAblationGranularity(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Data reads grow with granularity.
	g1, _ := strconv.Atoi(tb.Rows[0][3])
	g16, _ := strconv.Atoi(tb.Rows[4][3])
	if g16 <= g1 {
		t.Errorf("granularity 16 data reads (%d) must exceed granularity 1 (%d)", g16, g1)
	}
}

func TestSyntheticATT1DomainSparse(t *testing.T) {
	// The ATT1 misses of Figure 8 must land inside the key domain.
	cfg := StorageConfig{Name: "mem/mem", Index: device.Memory, Data: device.Memory}
	_, syn, err := syntheticEnv(cfg, tinyScale(), 0)
	if err != nil {
		t.Fatal(err)
	}
	maxKey := syn.ATT1Keys[len(syn.ATT1Keys)-1]
	absent := workload.AbsentWithin(1, maxKey, syn.ATT1Keys, 100)
	if len(absent) < 50 {
		t.Errorf("ATT1 domain too dense: only %d absent keys", len(absent))
	}
}
