package bench

import (
	"fmt"
	"sync"
	"time"

	"bftree/internal/core"
	"bftree/internal/device"
	"bftree/internal/forest"
	"bftree/internal/heapfile"
	"bftree/internal/pagestore"
	"bftree/internal/workload"
)

// ShardScaleCounts is the shard sweep of the shard-scale experiment.
var ShardScaleCounts = []int{1, 2, 4, 8}

// shardScaleWriters is the fixed writer population of every row: the
// sweep varies shards, not writers, so each row shows how much of the
// same offered structural load the forest can absorb.
const shardScaleWriters = 8

// shardScaleOps is the total structural-insert count of one measurement.
const shardScaleOps = 512

// shardScaleLatency is the real per-I/O blocking time imposed during
// the measured phase (same technique as multi-writer). A structural
// append holds the shard's writer lock exclusively across several page
// accesses, so with one shard the 8 writers fully serialize; with N
// shards up to N appends overlap their page waits.
const shardScaleLatency = 100 * time.Microsecond

// shardKeyGap strides the fixture's keys (key = ordinal * gap) so every
// shard's keyspace has room above its resident maximum for appended
// keys that still route to that shard.
const shardKeyGap = 1 << 20

// shardPidStride spaces consecutive appended page ids far enough apart
// that no new leaf can cover two of them (leaf spans are bounded by
// maxS * granularity ≤ 65535 pages), so every insert takes the
// appendLeaf structural path — no in-place absorption.
const shardPidStride = 1 << 20

// shardPidRegion spaces the per-shard appended-pid regions so shards
// never collide on page ids.
const shardPidRegion = 1 << 40

// ShardScaleResult is one row of the sweep: aggregate structural-insert
// throughput and per-op stall quantiles at a shard count.
type ShardScaleResult struct {
	Shards     int
	Writers    int
	Ops        int
	Elapsed    time.Duration
	Throughput float64 // appends per second of wall time
	P50, P99   time.Duration
}

// shardScaleFixture builds a fresh strided-key relation and a
// range-partitioned forest over it on Memory devices (no latency during
// the build).
func shardScaleFixture(scale Scale, shards int) (*forest.Forest, *heapfile.File, *device.Device, *device.Device, error) {
	n := scale.SyntheticTuples
	if n < 32768 {
		n = 32768
	}
	dataDev := device.New(device.Memory, PageSize)
	idxDev := device.New(device.Memory, PageSize)
	dataStore := pagestore.New(dataDev)
	idxStore := pagestore.New(idxDev)
	b, err := heapfile.NewBuilder(dataStore, mixedRWSchema)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	tup := make([]byte, mixedRWSchema.TupleSize)
	for i := uint64(0); i < n; i++ {
		mixedRWSchema.Set(tup, 0, i*shardKeyGap)
		if err := b.Append(tup); err != nil {
			return nil, nil, nil, nil, err
		}
	}
	file, err := b.Finish()
	if err != nil {
		return nil, nil, nil, nil, err
	}
	f, err := forest.New(idxStore, file, 0, forest.Options{
		Shards: shards,
		Tree:   core.Options{FPP: 1e-4},
	})
	if err != nil {
		return nil, nil, nil, nil, err
	}
	return f, file, idxDev, dataDev, nil
}

// shardAppendPlan is one shard's append state: the next key (just above
// the shard's resident maximum, still below its upper bound) and the
// next page id (its private region past the relation). The mutex keeps
// a shard's appends key- and pid-ordered across writers — the tail-leaf
// append path requires both to be monotone.
type shardAppendPlan struct {
	mu      sync.Mutex
	nextKey uint64
	nextPid device.PageID
}

// shardAppendPlans derives each shard's starting key and pid from the
// forest's separators and the relation geometry.
func shardAppendPlans(f *forest.Forest, file *heapfile.File) []*shardAppendPlan {
	seps := f.Separators()
	maxRelKey := (file.NumTuples() - 1) * shardKeyGap
	base := file.FirstPage() + device.PageID(file.NumPages())
	plans := make([]*shardAppendPlan, f.NumShards())
	for i := range plans {
		maxExisting := maxRelKey
		if i < len(seps) {
			// Separators are resident keys (page minima), so the shard's
			// resident maximum is the last key strictly below the
			// separator — one stride down, as all keys are multiples of
			// the gap.
			maxExisting = ((seps[i] - 1) / shardKeyGap) * shardKeyGap
		}
		plans[i] = &shardAppendPlan{
			nextKey: maxExisting + 1,
			nextPid: base + device.PageID(i)*shardPidRegion,
		}
	}
	return plans
}

// runShardScale drives the fixed writer population through ops
// structural appends via the shared Driver: each writer draws target
// shards from its seeded sub-stream (Zipfian over the shard ids, skew
// ≤ 1 uniform) and executes the append through the Apply hook, so each
// op's stall is wall time including the wait for the shard's append
// mutex — tail quantiles surface queueing, not just I/O cost.
func runShardScale(f *forest.Forest, plans []*shardAppendPlan, writers, ops int,
	skew float64, seed int64) (time.Duration, float64, time.Duration, time.Duration, error) {
	res, err := Drive(f, DriverConfig{
		Workers: writers,
		Ops:     ops,
		Source: func(w int) func() workload.Op {
			ranks := workload.NewRanks(workload.DistZipf, skew, uint64(len(plans)), workload.SubStream(seed, w))
			return func() workload.Op {
				return workload.Op{Kind: workload.OpInsert, Key: ranks.Rank()}
			}
		},
		Apply: func(_ int, op workload.Op) error {
			p := plans[op.Key]
			p.mu.Lock()
			key, pid := p.nextKey, p.nextPid
			p.nextKey++
			p.nextPid += shardPidStride
			err := f.Insert(key, pid)
			p.mu.Unlock()
			return err
		},
	})
	if err != nil {
		return 0, 0, 0, 0, err
	}
	return res.Elapsed, res.Throughput, res.P50, res.P99, nil
}

// ShardScaleSweep measures aggregate structural-insert throughput at
// each shard count under the fixed writer population. Writers pick a
// target shard per op from a Zipfian draw over the shard ids
// (scale.Skew; ≤ 1 is uniform), so a skewed run shows sharding's limit:
// partitions only multiply throughput while load spreads across them.
func ShardScaleSweep(scale Scale, shardCounts []int) ([]*ShardScaleResult, error) {
	var out []*ShardScaleResult
	for _, shards := range shardCounts {
		f, file, idxDev, dataDev, err := shardScaleFixture(scale, shards)
		if err != nil {
			return nil, err
		}
		n := f.NumShards() // separators can collapse; use the real count
		plans := shardAppendPlans(f, file)
		idxDev.SetRealLatency(shardScaleLatency)
		dataDev.SetRealLatency(shardScaleLatency)
		elapsed, thr, p50, p99, err := runShardScale(f, plans, shardScaleWriters, shardScaleOps, scale.Skew, scale.Seed)
		idxDev.SetRealLatency(0)
		dataDev.SetRealLatency(0)
		closeErr := f.Close()
		if err != nil {
			return nil, err
		}
		if closeErr != nil {
			return nil, closeErr
		}
		out = append(out, &ShardScaleResult{
			Shards:     n,
			Writers:    shardScaleWriters,
			Ops:        shardScaleOps,
			Elapsed:    elapsed,
			Throughput: thr,
			P50:        p50,
			P99:        p99,
		})
	}
	return out, nil
}

// RunShardScale is the `shard-scale` experiment: aggregate append-only
// structural-insert throughput at 1/2/4/8 shards under 8 concurrent
// writers, with real per-access device latency. Every insert opens a
// fresh tail leaf (pids jump a full leaf span per op), so each op takes
// its shard's exclusive writer lock across several page waits — the
// workload a single tree serializes entirely and a forest spreads over
// its shards. `-skew` above 1 concentrates writers on the hottest shard
// and erodes the multiplier back toward the single-tree row.
func RunShardScale(scale Scale) (*Table, error) {
	results, err := ShardScaleSweep(scale, ShardScaleCounts)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: fmt.Sprintf("Shard-scale structural inserts: %d writers, %v per page access, skew %.2f",
			shardScaleWriters, shardScaleLatency, scale.Skew),
		Header: []string{"shards", "ops", "wall", "appends/s", "speedup", "p50 stall", "p99 stall"},
		Notes: []string{
			"every insert appends a fresh tail leaf under its shard's exclusive writer",
			"lock, so throughput measures structural-write concurrency across shards;",
			"stalls are per-op wall time including the wait for the shard's append",
			"order lock. speedups are relative to the 1-shard row; skew > 1 drains",
			"them by funnelling ops to the hottest shard.",
		},
	}
	base := results[0].Throughput
	for _, r := range results {
		t.AddRow(
			fmt.Sprint(r.Shards),
			fmt.Sprint(r.Ops),
			r.Elapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%.0f", r.Throughput),
			fmt.Sprintf("%.2fx", r.Throughput/base),
			r.P50.Round(time.Microsecond).String(),
			r.P99.Round(time.Microsecond).String(),
		)
	}
	return t, nil
}
