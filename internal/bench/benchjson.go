package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Record is one machine-readable result row of a streaming/batching
// experiment, the schema behind BENCH_scan.json and BENCH_batch.json.
// Latencies are virtual-I/O seconds per operation (scan-stream) or per
// key (batched-probe); throughput is operations (or keys) per virtual
// second.
type Record struct {
	Experiment string `json:"experiment"`
	Backend    string `json:"backend"`
	// Mode labels the scan-stream variant: "materialized", "stream", or
	// "limit-k".
	Mode string `json:"mode,omitempty"`
	// Preset and Dist label a mixed-workload cell: the workload.Mix
	// preset name and the key distribution it ran under.
	Preset  string `json:"preset,omitempty"`
	Dist    string `json:"dist,omitempty"`
	Workers int    `json:"workers,omitempty"`
	// Ops is the measured operation count of a mixed-workload cell.
	Ops int `json:"ops,omitempty"`
	// Batch is the MultiSearch batch size (batched-probe) or the LIMIT k
	// (scan-stream limit modes).
	Batch      int     `json:"batch,omitempty"`
	Throughput float64 `json:"throughput"`
	P50        float64 `json:"p50"`
	P99        float64 `json:"p99"`
	// PagesPerOp is the total index+data pages a scan-stream operation
	// read; IndexReadsPerKey the index pages a batched probe charged per
	// key — the two headline economies of the experiments.
	PagesPerOp       float64 `json:"pages_per_op,omitempty"`
	IndexReadsPerKey float64 `json:"index_reads_per_key,omitempty"`
	// Moved reports a mixed-workload cell's capability redistribution
	// ("-" when the backend ran the preset verbatim).
	Moved string `json:"moved,omitempty"`
	// MaxStallMS / TotalStallMS are the compaction-stall experiment's
	// exclusive-lock hold times (milliseconds of wall clock): the
	// longest single writer stall and the sum over the run.
	MaxStallMS   float64 `json:"max_stall_ms,omitempty"`
	TotalStallMS float64 `json:"total_stall_ms,omitempty"`
	// Compactions / IncrementalPasses / LeavesCompacted count the
	// whole-tree rebuilds, incremental maintenance passes, and leaves
	// rewritten incrementally over a compaction-stall run.
	Compactions       uint64 `json:"compactions,omitempty"`
	IncrementalPasses uint64 `json:"incremental_passes,omitempty"`
	LeavesCompacted   uint64 `json:"leaves_compacted,omitempty"`
	// MaxFPP is the highest sampled effective false-positive rate.
	MaxFPP float64 `json:"max_fpp,omitempty"`
	// Backpressure counts the 429 rejections a serve-load client
	// absorbed (sleep-and-retry) during its level.
	Backpressure int64 `json:"backpressure,omitempty"`
}

// Artifacts maps each JSON-emitting experiment to its canonical
// artifact filename — the single source of truth for what `-json DIR`
// writes where. `bfbench -exp all -json DIR` emits every file into the
// one directory without collision because each experiment owns exactly
// one name here; the README's artifact table documents this mapping.
var Artifacts = map[string]string{
	"scan-stream":      "BENCH_scan.json",
	"batched-probe":    "BENCH_batch.json",
	"point-lookup":     "BENCH_point.json",
	"mixed-workload":   "BENCH_mixed.json",
	"compaction-stall": "BENCH_compact.json",
	"serve-load":       "BENCH_serve.json",
}

// ArtifactFor returns the canonical artifact filename of an experiment,
// or "" when the experiment emits no JSON records.
func ArtifactFor(experiment string) string {
	return Artifacts[experiment]
}

// WriteRecords writes records as an indented JSON array at dir/name.
func WriteRecords(dir, name string, records []Record) error {
	blob, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		return fmt.Errorf("bench: writing %s: %w", path, err)
	}
	return nil
}

// writeArtifact writes records to the experiment's canonical artifact
// path when the scale asked for JSON output (JSONDir non-empty) and is
// a no-op otherwise, so experiments emit their files only under
// `bfbench -json` / `make bench-json`. Experiments must not pick
// filenames themselves — the name comes from the Artifacts registry,
// so the README table, bfbench's help and the emitted files cannot
// disagree.
func writeArtifact(scale Scale, experiment string, records []Record) error {
	if scale.JSONDir == "" {
		return nil
	}
	name := ArtifactFor(experiment)
	if name == "" {
		return fmt.Errorf("bench: experiment %q has no registered artifact", experiment)
	}
	return WriteRecords(scale.JSONDir, name, records)
}
