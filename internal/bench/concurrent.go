package bench

import (
	"fmt"
	"time"

	"bftree/internal/core"
	"bftree/internal/device"
	"bftree/internal/workload"
)

// ConcurrentWorkerCounts is the worker sweep of the concurrent-probe
// experiment.
var ConcurrentWorkerCounts = []int{1, 2, 4, 8, 16}

// concurrentProbeLatency is the real per-I/O blocking time the
// experiment imposes on the Memory device (see Device.SetRealLatency).
// The paper's harness charges a virtual clock, which measures I/O *count*
// but cannot show concurrency: virtual time is additive no matter how
// many probers run. Making each page access block for a fixed real
// interval — outside all locks, like a device servicing overlapping
// requests — turns probe concurrency into measurable wall-clock
// throughput, independent of the host's core count. 200µs sits well
// above scheduler/timer granularity so the sleep dominates CPU cost.
const concurrentProbeLatency = 200 * time.Microsecond

// ConcurrentResult is one row of the sweep: aggregate throughput and
// tail latencies for a worker count.
type ConcurrentResult struct {
	Workers    int
	Probes     int
	Elapsed    time.Duration
	Throughput float64 // probes per second of wall time
	P50        time.Duration
	P99        time.Duration
}

// RunConcurrentProbes executes probes of keys against tr from the given
// number of workers through the shared Driver: worker w probes its
// deterministic quota slice of the key sequence, so the probed multiset
// is identical at any worker count.
func RunConcurrentProbes(tr *core.Tree, keys []uint64, workers, probes int) (*ConcurrentResult, error) {
	if workers <= 0 || probes <= 0 || len(keys) == 0 {
		return nil, fmt.Errorf("bench: concurrent probes need workers, probes and keys > 0 (got %d, %d, %d)",
			workers, probes, len(keys))
	}
	quotas := opQuotas(probes, workers)
	starts := make([]int, workers)
	for w := 1; w < workers; w++ {
		starts[w] = starts[w-1] + quotas[w-1]
	}
	res, err := Drive(coreTarget{tr}, DriverConfig{
		Workers: workers,
		Ops:     probes,
		Source: func(w int) func() workload.Op {
			i := starts[w]
			return func() workload.Op {
				op := workload.Op{Kind: workload.OpSearch, Key: keys[i%len(keys)]}
				i++
				return op
			}
		},
	})
	if err != nil {
		return nil, err
	}
	return &ConcurrentResult{
		Workers:    workers,
		Probes:     res.Ops,
		Elapsed:    res.Elapsed,
		Throughput: res.Throughput,
		P50:        res.P50,
		P99:        res.P99,
	}, nil
}

// ConcurrentProbeSweep builds the ATT1 BF-Tree on Memory devices with
// per-access real latency and measures probe throughput across the
// worker sweep. It returns one result per entry of workerCounts.
func ConcurrentProbeSweep(scale Scale, workerCounts []int) ([]*ConcurrentResult, error) {
	cfg := StorageConfig{Name: "mem/mem", Index: device.Memory, Data: device.Memory}
	env, syn, err := syntheticEnv(cfg, scale, 0)
	if err != nil {
		return nil, err
	}
	tr, err := core.BulkLoad(env.IdxStore, syn.File, 1, core.Options{FPP: 1e-3})
	if err != nil {
		return nil, err
	}
	keys, err := att1Probes(syn, scale)
	if err != nil {
		return nil, err
	}
	// Latency goes on after the build so construction stays instant.
	env.IdxDev.SetRealLatency(concurrentProbeLatency)
	env.DataDev.SetRealLatency(concurrentProbeLatency)
	defer env.IdxDev.SetRealLatency(0)
	defer env.DataDev.SetRealLatency(0)

	probes := scale.Probes
	if probes < 64 {
		probes = 64
	}
	var out []*ConcurrentResult
	for _, workers := range workerCounts {
		r, err := RunConcurrentProbes(tr, keys, workers, probes)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// RunConcurrentProbe is the `concurrent-probe` experiment: aggregate
// probe throughput and p50/p99 latency at 1/2/4/8/16 workers on the
// Memory device, with each page access blocking for a fixed real
// interval. Scaling close to the worker count demonstrates that the
// read path has no global lock: probers overlap their (simulated) I/O
// waits exactly as they would overlap real device requests.
func RunConcurrentProbe(scale Scale) (*Table, error) {
	results, err := ConcurrentProbeSweep(scale, ConcurrentWorkerCounts)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  fmt.Sprintf("Concurrent probes: ATT1 BF-Tree on mem/mem, %v per page access", concurrentProbeLatency),
		Header: []string{"workers", "probes", "wall time", "probes/s", "speedup", "p50", "p99"},
		Notes: []string{
			"each page access blocks for the stated real latency outside all locks,",
			"so throughput scaling with workers measures read-path concurrency,",
			"not host core count; speedup is relative to the 1-worker row",
		},
	}
	base := results[0].Throughput
	for _, r := range results {
		t.AddRow(
			fmt.Sprint(r.Workers),
			fmt.Sprint(r.Probes),
			r.Elapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%.0f", r.Throughput),
			fmt.Sprintf("%.2fx", r.Throughput/base),
			r.P50.Round(10*time.Microsecond).String(),
			r.P99.Round(10*time.Microsecond).String(),
		)
	}
	return t, nil
}
