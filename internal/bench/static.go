package bench

import (
	"fmt"

	"bftree/internal/device"
	"bftree/internal/model"
	"bftree/internal/pagestore"
	"bftree/internal/workload"
)

// RunFig1a reproduces Figure 1(a): the implicit clustering of the three
// TPCH date columns over the first 10 000 lineitem tuples. The table
// samples the series and reports the max spread between the three dates,
// the quantitative content of the figure.
func RunFig1a(scale Scale) (*Table, error) {
	store := pagestore.New(device.New(device.Memory, PageSize))
	n := scale.TPCHTuples
	if n > 10000 {
		n = 10000
	}
	dates := scale.TPCHDates * int(n) / int(scale.TPCHTuples)
	if dates < 4 {
		dates = 4
	}
	tp, err := workload.GenerateTPCH(store, n, dates, scale.Seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Figure 1(a): implicit clustering of TPCH dates (first 10k tuples)",
		Header: []string{"tuple#", "shipdate", "commitdate", "receiptdate", "spread(days)"},
	}
	var maxSpread, sumSpread uint64
	var rows uint64
	step := n / 20
	if step == 0 {
		step = 1
	}
	i := uint64(0)
	err = tp.File.Scan(func(_ device.PageID, _ int, tup []byte) bool {
		s := workload.TPCHSchema
		ship := s.Get(tup, 1)
		commit := s.Get(tup, 2)
		receipt := s.Get(tup, 3)
		lo, hi := commit, receipt
		if ship < lo {
			lo = ship
		}
		if ship > hi {
			hi = ship
		}
		spread := hi - lo
		sumSpread += spread
		rows++
		if spread > maxSpread {
			maxSpread = spread
		}
		if i%step == 0 {
			t.AddRow(fmt.Sprint(i), fmt.Sprint(ship), fmt.Sprint(commit), fmt.Sprint(receipt), fmt.Sprint(spread))
		}
		i++
		return true
	})
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("three dates stay within a bounded window: mean spread %.1f days, max %d days — the implicit clustering of §1.1",
			float64(sumSpread)/float64(rows), maxSpread))
	return t, nil
}

// RunFig1b reproduces Figure 1(b): timestamps and aggregate energy of
// the first 100 000 SHD entries; both series are (near-)monotone, the
// implicit clustering the SHD index exploits.
func RunFig1b(scale Scale) (*Table, error) {
	store := pagestore.New(device.New(device.Memory, PageSize))
	n := scale.SHDTuples
	if n > 100000 {
		n = 100000
	}
	shd, err := workload.GenerateSHD(store, n, scale.Seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Figure 1(b): implicit clustering of SHD (first 100k entries)",
		Header: []string{"entry#", "timestamp", "aggregate-energy(client0)"},
	}
	step := n / 20
	if step == 0 {
		step = 1
	}
	var i, tsViolations, lastTS uint64
	var lastEnergy0 uint64
	err = shd.File.Scan(func(_ device.PageID, _ int, tup []byte) bool {
		s := workload.SHDSchema
		ts := s.Get(tup, 0)
		if ts < lastTS {
			tsViolations++
		}
		lastTS = ts
		if s.Get(tup, 1) == 0 {
			lastEnergy0 = s.Get(tup, 2)
		}
		if i%step == 0 {
			t.AddRow(fmt.Sprint(i), fmt.Sprint(ts), fmt.Sprint(lastEnergy0))
		}
		i++
		return true
	})
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("timestamp order violations: %d of %d (must be 0); per-timestamp cardinality mean %.1f max %d",
			tsViolations, i, shd.MeanCard, shd.MaxCard))
	return t, nil
}

// RunFig2 reproduces Figure 2: the capacity/performance trade-off of
// late-2013 storage devices. HDDs and SSDs form the two clusters the
// paper describes.
func RunFig2() *Table {
	t := &Table{
		Title:  "Figure 2: capacity/performance storage trade-off",
		Header: []string{"device", "class", "GB-per-$", "random-read-IOPS"},
	}
	for _, d := range device.Figure2Devices() {
		t.AddRow(d.Name, d.Class, fmtF(d.GBPerUSD), fmtF(d.RandomIOPS))
	}
	t.Notes = append(t.Notes,
		"HDDs cluster lower-right (cheap capacity, slow random reads); SSDs upper-left — the trade-off of §1.2")
	return t
}

// fig4FPPs is the fpp sweep of Figure 4.
var fig4FPPs = []float64{0.2, 0.1, 1e-2, 1e-3, 1e-4, 1e-6, 1e-8, 1e-10, 1e-12, 1e-15}

// RunFig4a reproduces Figure 4(a): analytical response time of BF-Tree,
// SILT and FD-Tree normalized to the B+-Tree, for the 1 GB / 32-byte-key
// configuration with index on SSD and data on HDD.
func RunFig4a() *Table {
	t := &Table{
		Title:  "Figure 4(a): analytical response time normalized to B+-Tree",
		Header: []string{"fpp", "BF-Tree", "SILT(cached)", "SILT(loaded)", "FD-Tree"},
	}
	for _, r := range model.Figure4(fig4FPPs) {
		t.AddRow(fmtF(r.FPP), fmtF(r.BFCostRel), fmtF(r.SILTCachedRel), fmtF(r.SILTUncachedRel), fmtF(r.FDTreeRel))
	}
	t.Notes = append(t.Notes, "paper: BF-Tree beats B+-Tree for fpp <= 1e-3; SILT 5% faster cached, 32% slower loaded; FD-Tree ~BF-Tree")
	return t
}

// RunFig4b reproduces Figure 4(b): analytical index size normalized to
// the B+-Tree.
func RunFig4b() *Table {
	t := &Table{
		Title:  "Figure 4(b): analytical index size normalized to B+-Tree",
		Header: []string{"fpp", "BF-Tree", "compressed-B+", "SILT", "FD-Tree"},
	}
	for _, r := range model.Figure4(fig4FPPs) {
		t.AddRow(fmtF(r.FPP), fmtF(r.BFSizeRel), fmtF(r.CompressedBPRel), fmtF(r.SILTSizeRel), fmtF(r.FDTreeSizeRel))
	}
	t.Notes = append(t.Notes, "paper: SILT 28% of B+-Tree; compressed B+ ~10%; BF-Tree matches compressed B+ at fpp=1e-8")
	return t
}

// RunFig14 reproduces Figures 14(a) and (b): effective fpp after inserts
// (Equation 14) for initial fpp 0.01%, 0.1% and 1%.
func RunFig14() *Table {
	t := &Table{
		Title:  "Figure 14: fpp in the presence of inserts (Equation 14)",
		Header: []string{"insert-ratio", "fpp0=0.01%", "fpp0=0.1%", "fpp0=1%"},
	}
	ratios := []float64{0, 0.01, 0.02, 0.04, 0.06, 0.08, 0.10, 0.12, 0.5, 1, 2, 4, 6}
	for _, r := range model.Figure14(ratios) {
		t.AddRow(fmtF(r.InsertRatio), fmtF(r.NewFPP[1e-4]), fmtF(r.NewFPP[1e-3]), fmtF(r.NewFPP[1e-2]))
	}
	t.Notes = append(t.Notes, "paper: linear growth up to ~12-15% inserts, converging to 1 in the long run")
	return t
}
