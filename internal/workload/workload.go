// Package workload generates the three datasets of the paper's
// evaluation (Section 6.1) and the probe-key streams used to drive index
// experiments.
//
//   - Synthetic relation R: 256-byte tuples with an 8-byte primary key
//     (unique, ordered) and an 8-byte attribute ATT1 whose values repeat
//     11 times on average; both correlate with creation time.
//   - TPCH-like lineitem: 200-byte tuples with the three correlated date
//     columns of Figure 1(a); the indexed shipdate repeats ≈2400 times per
//     distinct date at scale factor 1, and the file is ordered on it.
//   - Smart-home dataset (SHD): timestamped energy readings whose
//     per-timestamp cardinality is highly variable (mean 52, range
//     21–8295, 99.7 % ≤ 126 — the statistics the paper reports for the
//     proprietary BigFoot dataset).
//
// All generators are deterministic given a seed.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"bftree/internal/heapfile"
	"bftree/internal/pagestore"
)

// SyntheticSchema is the layout of relation R: 256-byte tuples, PK at
// offset 0, ATT1 at offset 8; the rest is payload.
var SyntheticSchema = heapfile.Schema{
	TupleSize: 256,
	Fields: []heapfile.Field{
		{Name: "pk", Offset: 0},
		{Name: "att1", Offset: 8},
	},
}

// TPCHSchema is the layout of the lineitem-like table: 200-byte tuples
// with orderkey and the three date columns.
var TPCHSchema = heapfile.Schema{
	TupleSize: 200,
	Fields: []heapfile.Field{
		{Name: "orderkey", Offset: 0},
		{Name: "shipdate", Offset: 8},
		{Name: "commitdate", Offset: 16},
		{Name: "receiptdate", Offset: 24},
	},
}

// SHDSchema is the layout of the smart-home readings: 64-byte tuples with
// a timestamp, client id, aggregate energy and instantaneous power.
var SHDSchema = heapfile.Schema{
	TupleSize: 64,
	Fields: []heapfile.Field{
		{Name: "timestamp", Offset: 0},
		{Name: "client", Offset: 8},
		{Name: "energy", Offset: 16},
		{Name: "power", Offset: 24},
	},
}

// Synthetic describes a generated instance of relation R.
type Synthetic struct {
	File     *heapfile.File
	NumKeys  uint64   // distinct ATT1 values
	MaxPK    uint64   // last primary key (PKs are 0..MaxPK)
	ATT1Keys []uint64 // distinct ATT1 values in order
}

// GenerateSynthetic builds relation R with n tuples on store. PK is the
// tuple ordinal. ATT1 is a timestamp-like value where each distinct value
// repeats avgCard times on average (the paper uses avgCard=11); the
// repetition count varies by ±50 % to avoid an unrealistically regular
// file. Both attributes are nondecreasing in file order.
func GenerateSynthetic(store *pagestore.Store, n uint64, avgCard int, seed int64) (*Synthetic, error) {
	if n == 0 {
		return nil, fmt.Errorf("workload: empty relation")
	}
	if avgCard < 1 {
		avgCard = 1
	}
	rng := rand.New(rand.NewSource(seed))
	b, err := heapfile.NewBuilder(store, SyntheticSchema)
	if err != nil {
		return nil, err
	}
	tuple := make([]byte, SyntheticSchema.TupleSize)
	var att1Keys []uint64
	var att1 uint64
	remaining := 0
	for pk := uint64(0); pk < n; pk++ {
		if remaining == 0 {
			// Timestamp-like: strictly increasing with occasional gaps,
			// so the domain is sparse and in-range misses exist (the
			// random-probe misses of §6.3 land inside [min, max]).
			att1 += 1 + uint64(rng.Intn(3))
			att1Keys = append(att1Keys, att1)
			// Repetitions in [avgCard/2, 3·avgCard/2], mean avgCard.
			span := avgCard
			if span > 1 {
				remaining = avgCard/2 + rng.Intn(avgCard+1)
			} else {
				remaining = 1
			}
			if remaining == 0 {
				remaining = 1
			}
		}
		SyntheticSchema.Set(tuple, 0, pk)
		SyntheticSchema.Set(tuple, 1, att1)
		fillPayload(tuple[16:], pk)
		if err := b.Append(tuple); err != nil {
			return nil, err
		}
		remaining--
	}
	f, err := b.Finish()
	if err != nil {
		return nil, err
	}
	return &Synthetic{File: f, NumKeys: uint64(len(att1Keys)), MaxPK: n - 1, ATT1Keys: att1Keys}, nil
}

// TPCH describes a generated lineitem-like instance ordered on shipdate.
type TPCH struct {
	File      *heapfile.File
	MinDate   uint64
	MaxDate   uint64
	DateCards map[uint64]uint64 // shipdate → cardinality
}

// tpchEpochDay anchors generated dates: day numbers count from 1992-01-01
// as in the TPCH specification.
const tpchEpochDay = 0

// GenerateTPCH builds an n-tuple lineitem-like table ordered (hence
// partitioned) on shipdate, spanning numDates distinct ship dates. At the
// paper's configuration n/numDates ≈ 2400. The commit and receipt dates
// track the shipdate with the small bounded variations of Figure 1(a).
func GenerateTPCH(store *pagestore.Store, n uint64, numDates int, seed int64) (*TPCH, error) {
	if n == 0 || numDates < 1 {
		return nil, fmt.Errorf("workload: need tuples and dates, got n=%d dates=%d", n, numDates)
	}
	rng := rand.New(rand.NewSource(seed))
	b, err := heapfile.NewBuilder(store, TPCHSchema)
	if err != nil {
		return nil, err
	}
	tuple := make([]byte, TPCHSchema.TupleSize)
	cards := make(map[uint64]uint64, numDates)
	perDate := n / uint64(numDates)
	if perDate == 0 {
		perDate = 1
	}
	var written uint64
	minDate := uint64(tpchEpochDay + 1)
	var maxDate uint64
	for d := 0; d < numDates && written < n; d++ {
		ship := uint64(tpchEpochDay + 1 + d)
		maxDate = ship
		// Cardinality varies ±25 % around the mean like dbgen output.
		count := perDate
		if perDate >= 4 {
			count = perDate - perDate/4 + uint64(rng.Int63n(int64(perDate/2)+1))
		}
		if d == numDates-1 || written+count > n {
			count = n - written
		}
		for i := uint64(0); i < count; i++ {
			TPCHSchema.Set(tuple, 0, written+1)                   // orderkey
			TPCHSchema.Set(tuple, 1, ship)                        // shipdate
			TPCHSchema.Set(tuple, 2, commitLag(rng, ship))        // commitdate lags
			TPCHSchema.Set(tuple, 3, ship+1+uint64(rng.Intn(30))) // receiptdate leads
			fillPayload(tuple[32:], written)
			if err := b.Append(tuple); err != nil {
				return nil, err
			}
			cards[ship]++
			written++
		}
	}
	// If dates ran out before n (rounding), extend the last date.
	for written < n {
		ship := maxDate
		TPCHSchema.Set(tuple, 0, written+1)
		TPCHSchema.Set(tuple, 1, ship)
		TPCHSchema.Set(tuple, 2, commitLag(rng, ship))
		TPCHSchema.Set(tuple, 3, ship+1+uint64(rng.Intn(30)))
		fillPayload(tuple[32:], written)
		if err := b.Append(tuple); err != nil {
			return nil, err
		}
		cards[ship]++
		written++
	}
	f, err := b.Finish()
	if err != nil {
		return nil, err
	}
	return &TPCH{File: f, MinDate: minDate, MaxDate: maxDate, DateCards: cards}, nil
}

// commitLag returns a commit date up to 30 days before ship without
// underflowing near the epoch.
func commitLag(rng *rand.Rand, ship uint64) uint64 {
	lag := uint64(rng.Intn(30))
	if lag >= ship {
		lag = ship - 1
	}
	return ship - lag
}

// SHD describes a generated smart-home dataset ordered on timestamp.
type SHD struct {
	File         *heapfile.File
	MinTimestamp uint64
	MaxTimestamp uint64
	Cards        map[uint64]uint64 // timestamp → cardinality
	MeanCard     float64
	MaxCard      uint64
}

// GenerateSHD builds n smart-home readings across as many timestamps as
// the cardinality model yields. Per-timestamp cardinality follows a
// shifted log-normal matched to the paper's statistics (mean ≈52, min 21,
// 99.7 % ≤ 126) with rare spikes up to 8295 — the variable-cardinality
// property that makes SHD the hardest case for BF-Trees (Section 6.5).
func GenerateSHD(store *pagestore.Store, n uint64, seed int64) (*SHD, error) {
	if n == 0 {
		return nil, fmt.Errorf("workload: empty relation")
	}
	rng := rand.New(rand.NewSource(seed))
	b, err := heapfile.NewBuilder(store, SHDSchema)
	if err != nil {
		return nil, err
	}
	tuple := make([]byte, SHDSchema.TupleSize)
	cards := make(map[uint64]uint64)
	const baseTS = 1_300_000_000 // seconds; arbitrary 2011-era epoch
	ts := uint64(baseTS)
	var written uint64
	var maxCard uint64
	energy := make(map[uint64]uint64) // per-client aggregate energy
	for written < n {
		card := shdCardinality(rng)
		if card > n-written {
			card = n - written
		}
		if card == 0 {
			card = 1
		}
		for i := uint64(0); i < card; i++ {
			client := uint64(rng.Intn(500))
			energy[client] += uint64(rng.Intn(50)) // watt-hours this tick
			SHDSchema.Set(tuple, 0, ts)
			SHDSchema.Set(tuple, 1, client)
			SHDSchema.Set(tuple, 2, energy[client])
			SHDSchema.Set(tuple, 3, uint64(rng.Intn(3000)))
			fillPayload(tuple[32:], written)
			if err := b.Append(tuple); err != nil {
				return nil, err
			}
			written++
			if written == n {
				break
			}
		}
		recorded := cards[ts] + card
		cards[ts] = recorded
		if recorded > maxCard {
			maxCard = recorded
		}
		ts += uint64(1 + rng.Intn(10)) // irregular sampling gaps
	}
	f, err := b.Finish()
	if err != nil {
		return nil, err
	}
	return &SHD{
		File:         f,
		MinTimestamp: baseTS,
		MaxTimestamp: ts - 1,
		Cards:        cards,
		MeanCard:     float64(n) / float64(len(cards)),
		MaxCard:      maxCard,
	}, nil
}

// shdCardinality draws a per-timestamp cardinality: 21 + lognormal(µ,σ)
// tuned so the bulk matches the paper (mean ≈52, 99.7 % ≤ 126), with a
// 0.2 % chance of a spike in [1000, 8295].
func shdCardinality(rng *rand.Rand) uint64 {
	if rng.Float64() < 0.002 {
		return uint64(1000 + rng.Intn(7296))
	}
	y := math.Exp(math.Log(28) + 0.5*rng.NormFloat64())
	c := 21 + uint64(y)
	if c > 8295 {
		c = 8295
	}
	return c
}

// fillPayload writes a deterministic pattern so data pages aren't
// compressible zero runs (irrelevant to the simulation but keeps tuple
// content distinguishable in tests and dumps).
func fillPayload(dst []byte, seed uint64) {
	x := seed*0x9e3779b97f4a7c15 + 1
	for i := range dst {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		dst[i] = byte(x)
	}
}
