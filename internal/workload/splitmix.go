package workload

// SplitMix64 is the splitmix64 generator (Steele, Lea, Flood — "Fast
// splittable pseudorandom number generators", OOPSLA'14): one 64-bit
// word of state, one add and three xor-shift-multiply steps per draw.
// Two properties make it the sub-stream source of the workload engine:
// seeding is O(1) with no warm-up, and the output function avalanches,
// so states derived from (seed, worker) pairs yield decorrelated
// streams. Worker w of a run seeded with -seed draws from
// SubStream(seed, w); the full operation sequence of every worker is
// then reproducible at any worker count, with no shared state between
// goroutines.
//
// SplitMix64 implements math/rand.Source64, so the stdlib's rand.New
// and rand.NewZipf compose with a sub-stream directly.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a generator starting from state seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// SubStream derives worker w's deterministic sub-stream of a run seed.
// The (seed, worker) pair is folded through one avalanche draw so
// sub-streams of adjacent workers (and adjacent seeds) share no
// low-entropy prefix.
func SubStream(seed int64, worker int) *SplitMix64 {
	d := NewSplitMix64(uint64(seed) ^ (uint64(worker)+1)*0x6a09e667f3bcc909)
	return NewSplitMix64(d.Uint64())
}

// Uint64 returns the next 64 pseudo-random bits.
func (s *SplitMix64) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63 returns a non-negative 63-bit draw (rand.Source).
func (s *SplitMix64) Int63() int64 { return int64(s.Uint64() >> 1) }

// Seed resets the generator state (rand.Source).
func (s *SplitMix64) Seed(seed int64) { s.state = uint64(seed) }

// Uint64n returns a draw in [0, n); n of 0 returns 0. The modulo bias
// is below 2^-40 for every domain the workloads use (key ranks, shard
// ids), far under measurement noise.
func (s *SplitMix64) Uint64n(n uint64) uint64 {
	if n == 0 {
		return 0
	}
	return s.Uint64() % n
}

// Float64 returns a draw in [0, 1) with 53 bits of precision.
func (s *SplitMix64) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}
