package workload

import (
	"fmt"
	"math/rand"
	"sort"
)

// ProbeSet is a stream of search keys with a known hit rate, used to
// drive index-probe experiments. The paper uses 1000 random-key probes
// per measurement, the same key set across every configuration (§6.1),
// and varies the hit rate in the TPCH experiment (Figure 11).
type ProbeSet struct {
	Keys    []uint64
	HitRate float64 // fraction of keys that exist in the indexed relation
}

// MakeProbes builds n probe keys: a hitRate fraction drawn uniformly from
// existing (present in the relation), the rest drawn from absent keys.
// Both pools must be non-empty unless their share is zero.
func MakeProbes(n int, hitRate float64, existing, absent []uint64, seed int64) (*ProbeSet, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: need at least one probe")
	}
	if hitRate < 0 || hitRate > 1 {
		return nil, fmt.Errorf("workload: hit rate %g out of [0,1]", hitRate)
	}
	if hitRate > 0 && len(existing) == 0 {
		return nil, fmt.Errorf("workload: hit rate %g requires existing keys", hitRate)
	}
	if hitRate < 1 && len(absent) == 0 {
		return nil, fmt.Errorf("workload: hit rate %g requires absent keys", hitRate)
	}
	rng := rand.New(rand.NewSource(seed))
	keys := make([]uint64, n)
	hits := int(float64(n)*hitRate + 0.5)
	for i := 0; i < hits; i++ {
		keys[i] = existing[rng.Intn(len(existing))]
	}
	for i := hits; i < n; i++ {
		keys[i] = absent[rng.Intn(len(absent))]
	}
	rng.Shuffle(n, func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	return &ProbeSet{Keys: keys, HitRate: float64(hits) / float64(n)}, nil
}

// ZipfRanks draws n ranks in [0, imax] with Zipfian skew s: rank 0 is
// the hottest, and larger s concentrates more of the draw on the lowest
// ranks. A skew of 1 or below selects the uniform distribution — the
// pre-skew behavior of every experiment, and the -skew flag's default.
func ZipfRanks(n int, s float64, imax uint64, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]uint64, n)
	if s <= 1 {
		for i := range out {
			out[i] = uint64(rng.Int63n(int64(imax + 1)))
		}
		return out
	}
	z := rand.NewZipf(rng, s, 1, imax)
	for i := range out {
		out[i] = z.Uint64()
	}
	return out
}

// ZipfKeys draws n keys from existing with Zipfian rank skew s: the
// slice's leading elements are the hot set. s ≤ 1 draws uniformly.
func ZipfKeys(n int, s float64, existing []uint64, seed int64) []uint64 {
	ranks := ZipfRanks(n, s, uint64(len(existing)-1), seed)
	out := make([]uint64, n)
	for i, r := range ranks {
		out[i] = existing[r]
	}
	return out
}

// AbsentKeys returns up to n keys that are guaranteed absent from a dense
// key domain [lo, hi]: it returns keys above hi.
func AbsentKeys(hi uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = hi + 2 + uint64(i)*7
	}
	return out
}

// AbsentWithin returns up to n keys within [lo, hi] that do not occur in
// the sorted slice present. It is used for hit-rate experiments where
// misses must still land inside the indexed key range (so the index
// cannot reject them from the root's min/max alone).
func AbsentWithin(lo, hi uint64, present []uint64, n int) []uint64 {
	sorted := make([]uint64, len(present))
	copy(sorted, present)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var out []uint64
	for k := lo; k <= hi && len(out) < n; k++ {
		i := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= k })
		if i == len(sorted) || sorted[i] != k {
			out = append(out, k)
		}
	}
	return out
}

// UniqueKeys deduplicates and sorts a key slice.
func UniqueKeys(keys []uint64) []uint64 {
	sorted := make([]uint64, len(keys))
	copy(sorted, keys)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	out := sorted[:0]
	for i, k := range sorted {
		if i == 0 || k != sorted[i-1] {
			out = append(out, k)
		}
	}
	return out
}
