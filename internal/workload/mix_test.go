package workload

import (
	"math"
	"reflect"
	"testing"
)

func TestPresetWeightsSumToOne(t *testing.T) {
	for _, m := range Presets() {
		if math.Abs(m.TotalWeight()-1) > 1e-9 {
			t.Errorf("%s: weights sum to %g, want 1", m.Name, m.TotalWeight())
		}
	}
	if _, err := MixByName("oltp"); err != nil {
		t.Fatalf("oltp preset missing: %v", err)
	}
	if _, err := MixByName("nope"); err == nil {
		t.Fatal("unknown mix name did not error")
	}
	if got, want := len(MixNames()), 4; got != want {
		t.Fatalf("have %d presets, want %d", got, want)
	}
}

func TestPresetHeadlineRatios(t *testing.T) {
	if w := OLTPMix().WriteFraction(); math.Abs(w-0.10) > 1e-9 {
		t.Errorf("oltp write fraction %g, want 0.10", w)
	}
	if w := OLAPMix().WriteFraction(); w != 0 {
		t.Errorf("olap write fraction %g, want 0 (read-only)", w)
	}
	ts := TimeseriesMix()
	if !ts.Monotonic {
		t.Error("timeseries preset must be monotonic")
	}
	if ts.WriteFraction() < 0.8 {
		t.Errorf("timeseries write fraction %g, want append-mostly (≥ 0.8)", ts.WriteFraction())
	}
}

func TestRedistribute(t *testing.T) {
	m := OLTPMix()

	full, moves := m.Redistribute(AllCaps())
	if len(moves) != 0 {
		t.Errorf("full caps produced moves: %v", moves)
	}
	if full.Weights != m.Weights {
		t.Error("full caps changed weights")
	}

	// No Delete but Insert (the bfforest/bftree shape is full; bptree
	// and fdtree have Insert without Delete): deletes become inserts.
	noDel, moves := m.Redistribute(Caps{Insert: true, Scan: true, MultiSearch: true})
	if noDel.Weights[OpDelete] != 0 {
		t.Error("delete weight not moved")
	}
	wantIns := m.Weights[OpInsert] + m.Weights[OpDelete]
	if math.Abs(noDel.Weights[OpInsert]-wantIns) > 1e-9 {
		t.Errorf("insert weight %g, want %g", noDel.Weights[OpInsert], wantIns)
	}
	if len(moves) != 1 || moves[0].From != OpDelete || moves[0].To != OpInsert {
		t.Errorf("moves %v, want delete→insert", moves)
	}

	// Read-only target: every write degrades to search; no Scan folds
	// scan-limit into range-scan.
	ro, _ := ReportingMix().Redistribute(Caps{MultiSearch: true})
	if ro.Weights[OpInsert] != 0 || ro.Weights[OpDelete] != 0 || ro.Weights[OpScanLimit] != 0 {
		t.Errorf("read-only redistribution left unsupported weight: %v", ro.Weights)
	}
	if math.Abs(ro.TotalWeight()-ReportingMix().TotalWeight()) > 1e-9 {
		t.Errorf("redistribution changed total weight: %g", ro.TotalWeight())
	}
}

func TestParseDist(t *testing.T) {
	for _, name := range []string{"uniform", "zipf", "latest"} {
		d, err := ParseDist(name)
		if err != nil {
			t.Fatalf("ParseDist(%q): %v", name, err)
		}
		if d.String() != name {
			t.Errorf("round trip %q → %v", name, d)
		}
	}
	if _, err := ParseDist("gauss"); err == nil {
		t.Fatal("unknown dist did not error")
	}
}

func drawOps(t *testing.T, mix Mix, cfg StreamConfig, n int) []Op {
	t.Helper()
	s, err := NewOpStream(mix, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ops := make([]Op, n)
	for i := range ops {
		ops[i] = s.Next()
	}
	return ops
}

func TestOpStreamDeterminism(t *testing.T) {
	cfg := StreamConfig{Dist: DistZipf, Skew: 1.5, NumKeys: 4096, Worker: 1, Workers: 4, Seed: 42}
	a := drawOps(t, OLTPMix(), cfg, 300)
	b := drawOps(t, OLTPMix(), cfg, 300)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same (mix, config) produced different op sequences")
	}
	cfg2 := cfg
	cfg2.Worker = 2
	c := drawOps(t, OLTPMix(), cfg2, 300)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different workers produced identical op sequences")
	}
}

func TestOpStreamDomain(t *testing.T) {
	const n = 1000
	for _, mix := range Presets() {
		cfg := StreamConfig{Dist: DistUniform, NumKeys: n, Workers: 2, Seed: 7}
		if mix.Name == "timeseries" {
			cfg.Dist = DistLatest
		}
		for _, op := range drawOps(t, mix, cfg, 500) {
			check := func(k uint64) {
				if k >= n {
					t.Fatalf("%s: key %d outside domain [0,%d)", mix.Name, k, n)
				}
			}
			check(op.Key)
			if op.Kind == OpRangeScan || op.Kind == OpScanLimit {
				check(op.Hi)
				if op.Hi < op.Key {
					t.Fatalf("%s: inverted range [%d,%d]", mix.Name, op.Key, op.Hi)
				}
			}
			for _, k := range op.Keys {
				check(k)
			}
			if op.Kind == OpScanLimit && op.Limit <= 0 {
				t.Fatalf("%s: scan-limit without a limit", mix.Name)
			}
		}
	}
}

func TestOpStreamMonotonicInserts(t *testing.T) {
	cfg := StreamConfig{Dist: DistLatest, NumKeys: 1 << 20, Worker: 1, Workers: 4, Seed: 9}
	ops := drawOps(t, TimeseriesMix(), cfg, 400)
	want := uint64(1) // worker 1 strides 1, 5, 9, …
	for _, op := range ops {
		if op.Kind != OpInsert {
			continue
		}
		if op.Key != want {
			t.Fatalf("monotonic insert key %d, want %d", op.Key, want)
		}
		want += 4
	}
	if want == 1 {
		t.Fatal("timeseries stream drew no inserts")
	}
}

func TestRanksZipfConcentrates(t *testing.T) {
	const n, draws = 64, 4000
	counts := make([]int, n)
	r := NewRanks(DistZipf, 8, n, SubStream(3, 0))
	for i := 0; i < draws; i++ {
		counts[r.Rank()]++
	}
	if counts[0] < draws/2 {
		t.Errorf("skew 8 put only %d/%d draws on rank 0", counts[0], draws)
	}
	// Skew ≤ 1 is uniform, matching ZipfRanks' convention.
	u := NewRanks(DistZipf, 1, n, SubStream(3, 0))
	hot := 0
	for i := 0; i < draws; i++ {
		if u.Rank() == 0 {
			hot++
		}
	}
	if hot > draws/8 {
		t.Errorf("skew 1 concentrated %d/%d draws on rank 0", hot, draws)
	}
}

func TestRanksLatestFollowsFrontier(t *testing.T) {
	r := NewRanks(DistLatest, 0, 1<<20, SubStream(5, 0))
	r.Observe(100)
	for i := 0; i < 200; i++ {
		k := r.Rank()
		if k > 100 {
			t.Fatalf("latest draw %d above frontier 100", k)
		}
	}
}

func TestSortedDistinct(t *testing.T) {
	got := SortedDistinct(map[uint64]uint64{9: 1, 3: 2, 7: 5})
	want := []uint64{3, 7, 9}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SortedDistinct = %v, want %v", got, want)
	}
}
