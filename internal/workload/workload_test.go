package workload

import (
	"testing"

	"bftree/internal/device"
	"bftree/internal/pagestore"
)

func memStore() *pagestore.Store {
	return pagestore.New(device.New(device.Memory, 4096))
}

func TestGenerateSyntheticOrderedPK(t *testing.T) {
	syn, err := GenerateSynthetic(memStore(), 10000, 11, 1)
	if err != nil {
		t.Fatal(err)
	}
	if syn.File.NumTuples() != 10000 {
		t.Fatalf("tuples = %d", syn.File.NumTuples())
	}
	// PK must be the ordinal: dense, unique, ordered.
	var next uint64
	syn.File.Scan(func(_ device.PageID, _ int, tup []byte) bool {
		if SyntheticSchema.Get(tup, 0) != next {
			t.Fatalf("pk at ordinal %d is %d", next, SyntheticSchema.Get(tup, 0))
		}
		next++
		return true
	})
	if syn.MaxPK != 9999 {
		t.Errorf("MaxPK = %d", syn.MaxPK)
	}
}

func TestGenerateSyntheticATT1Cardinality(t *testing.T) {
	syn, err := GenerateSynthetic(memStore(), 110000, 11, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Average cardinality should be near 11 (paper's value).
	avg := float64(syn.File.NumTuples()) / float64(syn.NumKeys)
	if avg < 9 || avg > 13 {
		t.Errorf("ATT1 average cardinality = %g, want ≈11", avg)
	}
	// ATT1 must be nondecreasing (ordered attribute).
	var prev uint64
	syn.File.Scan(func(_ device.PageID, _ int, tup []byte) bool {
		v := SyntheticSchema.Get(tup, 1)
		if v < prev {
			t.Fatalf("ATT1 decreased: %d after %d", v, prev)
		}
		prev = v
		return true
	})
	// Distinct values recorded match the file contents.
	if uint64(len(syn.ATT1Keys)) != syn.NumKeys {
		t.Error("ATT1Keys length mismatch")
	}
}

func TestGenerateSyntheticDeterministic(t *testing.T) {
	a, err := GenerateSynthetic(memStore(), 5000, 11, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateSynthetic(memStore(), 5000, 11, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumKeys != b.NumKeys {
		t.Error("same seed must give same key count")
	}
	c, err := GenerateSynthetic(memStore(), 5000, 11, 43)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumKeys == c.NumKeys {
		t.Log("different seeds gave same key count (possible but unlikely)")
	}
}

func TestGenerateSyntheticErrors(t *testing.T) {
	if _, err := GenerateSynthetic(memStore(), 0, 11, 1); err == nil {
		t.Error("empty relation should fail")
	}
	// avgCard < 1 is clamped, not an error.
	syn, err := GenerateSynthetic(memStore(), 100, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if syn.NumKeys == 0 {
		t.Error("clamped cardinality should still generate keys")
	}
}

func TestGenerateTPCHOrderedShipdate(t *testing.T) {
	tp, err := GenerateTPCH(memStore(), 50000, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tp.File.NumTuples() != 50000 {
		t.Fatalf("tuples = %d", tp.File.NumTuples())
	}
	var prev uint64
	tp.File.Scan(func(_ device.PageID, _ int, tup []byte) bool {
		ship := TPCHSchema.Get(tup, 1)
		if ship < prev {
			t.Fatalf("shipdate decreased: %d after %d", ship, prev)
		}
		prev = ship
		// The three dates are correlated: commit within 30 days before
		// ship, receipt within 30 days after (implicit clustering).
		commit := TPCHSchema.Get(tup, 2)
		receipt := TPCHSchema.Get(tup, 3)
		if commit > ship || ship-commit > 30 {
			t.Fatalf("commitdate %d not within 30 days of shipdate %d", commit, ship)
		}
		if receipt <= ship || receipt-ship > 31 {
			t.Fatalf("receiptdate %d not within (0,31] days after shipdate %d", receipt, ship)
		}
		return true
	})
	// ~2400 paper cardinality scaled: 50000/100 = 500 mean.
	var total uint64
	for _, c := range tp.DateCards {
		total += c
	}
	if total != 50000 {
		t.Errorf("cardinalities sum to %d", total)
	}
	mean := float64(total) / float64(len(tp.DateCards))
	if mean < 350 || mean > 700 {
		t.Errorf("mean date cardinality %g far from target 500", mean)
	}
}

func TestGenerateTPCHErrors(t *testing.T) {
	if _, err := GenerateTPCH(memStore(), 0, 10, 1); err == nil {
		t.Error("zero tuples should fail")
	}
	if _, err := GenerateTPCH(memStore(), 100, 0, 1); err == nil {
		t.Error("zero dates should fail")
	}
}

func TestGenerateTPCHSmallerThanDates(t *testing.T) {
	tp, err := GenerateTPCH(memStore(), 10, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tp.File.NumTuples() != 10 {
		t.Errorf("tuples = %d, want 10", tp.File.NumTuples())
	}
}

func TestGenerateSHDStatistics(t *testing.T) {
	shd, err := GenerateSHD(memStore(), 200000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if shd.File.NumTuples() != 200000 {
		t.Fatalf("tuples = %d", shd.File.NumTuples())
	}
	// Paper statistics: mean ≈52, min ≥21 (except a possibly truncated
	// final timestamp), max ≤8295, 99.7 % ≤126.
	if shd.MeanCard < 35 || shd.MeanCard > 75 {
		t.Errorf("mean cardinality %g, want ≈52", shd.MeanCard)
	}
	within126 := 0
	total := 0
	truncatedOK := 0
	for _, c := range shd.Cards {
		total++
		if c <= 126 {
			within126++
		}
		if c > 8295 {
			t.Fatalf("cardinality %d exceeds paper max 8295", c)
		}
		if c < 21 {
			truncatedOK++ // only the final timestamp may be short
		}
	}
	if truncatedOK > 1 {
		t.Errorf("%d timestamps below min cardinality 21", truncatedOK)
	}
	frac := float64(within126) / float64(total)
	if frac < 0.98 {
		t.Errorf("fraction ≤126 = %g, want ≥0.98 (paper: 0.997)", frac)
	}
	// Timestamps strictly increase across groups (ordered attribute).
	var prev uint64
	shd.File.Scan(func(_ device.PageID, _ int, tup []byte) bool {
		ts := SHDSchema.Get(tup, 0)
		if ts < prev {
			t.Fatalf("timestamp decreased")
		}
		prev = ts
		return true
	})
}

func TestGenerateSHDEnergyMonotonePerClient(t *testing.T) {
	shd, err := GenerateSHD(memStore(), 20000, 5)
	if err != nil {
		t.Fatal(err)
	}
	last := make(map[uint64]uint64)
	shd.File.Scan(func(_ device.PageID, _ int, tup []byte) bool {
		client := SHDSchema.Get(tup, 1)
		energy := SHDSchema.Get(tup, 2)
		if energy < last[client] {
			t.Fatalf("aggregate energy decreased for client %d", client)
		}
		last[client] = energy
		return true
	})
}

func TestGenerateSHDErrors(t *testing.T) {
	if _, err := GenerateSHD(memStore(), 0, 1); err == nil {
		t.Error("empty SHD should fail")
	}
}

func TestMakeProbesHitRate(t *testing.T) {
	existing := []uint64{1, 2, 3, 4, 5}
	absent := []uint64{100, 200}
	ps, err := MakeProbes(1000, 0.3, existing, absent, 9)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	in := map[uint64]bool{1: true, 2: true, 3: true, 4: true, 5: true}
	for _, k := range ps.Keys {
		if in[k] {
			hits++
		}
	}
	if hits != 300 {
		t.Errorf("hits = %d, want 300", hits)
	}
	if ps.HitRate != 0.3 {
		t.Errorf("recorded hit rate %g", ps.HitRate)
	}
}

func TestMakeProbesEdges(t *testing.T) {
	existing := []uint64{1}
	absent := []uint64{9}
	if _, err := MakeProbes(0, 0.5, existing, absent, 1); err == nil {
		t.Error("zero probes should fail")
	}
	if _, err := MakeProbes(10, -0.1, existing, absent, 1); err == nil {
		t.Error("negative hit rate should fail")
	}
	if _, err := MakeProbes(10, 0.5, nil, absent, 1); err == nil {
		t.Error("missing existing pool should fail")
	}
	if _, err := MakeProbes(10, 0.5, existing, nil, 1); err == nil {
		t.Error("missing absent pool should fail")
	}
	// Pure hit and pure miss work with a single pool.
	if _, err := MakeProbes(10, 1, existing, nil, 1); err != nil {
		t.Errorf("pure hits: %v", err)
	}
	if _, err := MakeProbes(10, 0, nil, absent, 1); err != nil {
		t.Errorf("pure misses: %v", err)
	}
}

func TestAbsentKeys(t *testing.T) {
	keys := AbsentKeys(100, 5)
	if len(keys) != 5 {
		t.Fatalf("got %d keys", len(keys))
	}
	for _, k := range keys {
		if k <= 101 {
			t.Errorf("absent key %d not above hi+1", k)
		}
	}
}

func TestAbsentWithin(t *testing.T) {
	present := []uint64{2, 4, 6, 8}
	absent := AbsentWithin(1, 9, present, 10)
	want := map[uint64]bool{1: true, 3: true, 5: true, 7: true, 9: true}
	if len(absent) != 5 {
		t.Fatalf("got %d absent keys: %v", len(absent), absent)
	}
	for _, k := range absent {
		if !want[k] {
			t.Errorf("key %d is not absent", k)
		}
	}
}

func TestUniqueKeys(t *testing.T) {
	got := UniqueKeys([]uint64{5, 1, 5, 3, 1})
	if len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Errorf("UniqueKeys = %v", got)
	}
}

func TestZipfRanksSkewConcentrates(t *testing.T) {
	const n = 10000
	const imax = 7
	uniform := ZipfRanks(n, 0, imax, 42)
	skewed := ZipfRanks(n, 1.5, imax, 42)
	count := func(ranks []uint64, r uint64) int {
		c := 0
		for _, k := range ranks {
			if k > imax {
				t.Fatalf("rank %d out of [0,%d]", k, imax)
			}
			if k == r {
				c++
			}
		}
		return c
	}
	// Uniform spreads within a loose band; skew concentrates rank 0 well
	// past its uniform share.
	u0 := count(uniform, 0)
	if u0 < n/(imax+1)/2 || u0 > n/(imax+1)*2 {
		t.Errorf("uniform rank-0 share %d of %d is not near 1/%d", u0, n, imax+1)
	}
	s0 := count(skewed, 0)
	if s0 < 2*u0 {
		t.Errorf("skew 1.5 gave rank 0 only %d draws vs uniform %d — no concentration", s0, u0)
	}
}

func TestZipfKeysDrawFromExisting(t *testing.T) {
	existing := []uint64{100, 200, 300, 400}
	keys := ZipfKeys(500, 2.0, existing, 7)
	if len(keys) != 500 {
		t.Fatalf("got %d keys", len(keys))
	}
	member := map[uint64]bool{}
	for _, k := range existing {
		member[k] = true
	}
	hot := 0
	for _, k := range keys {
		if !member[k] {
			t.Fatalf("key %d not drawn from existing", k)
		}
		if k == existing[0] {
			hot++
		}
	}
	if hot <= 500/len(existing) {
		t.Errorf("hottest key drew %d of 500 under skew 2.0", hot)
	}
}
