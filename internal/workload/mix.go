package workload

import (
	"fmt"
	"math/rand"
	"sort"
)

// This file is the operation-stream layer of the workload engine: a Mix
// weights the six operation kinds, a Dist picks the keys they target,
// and an OpStream turns one worker's (mix, dist, sub-stream) triple into
// a reproducible operation sequence. The bench Driver executes streams
// against any index backend; ops a backend cannot run are redistributed
// along declared capabilities before any stream is built (Redistribute),
// so model and measurement always see the same executable mix.

// OpKind enumerates the operation types a Mix can weight.
type OpKind int

const (
	OpSearch OpKind = iota
	OpRangeScan
	OpMultiSearch
	OpInsert
	OpDelete
	OpScanLimit

	// NumOpKinds sizes per-kind arrays.
	NumOpKinds
)

var opKindNames = [NumOpKinds]string{
	"search", "range-scan", "multi-search", "insert", "delete", "scan-limit",
}

func (k OpKind) String() string {
	if k < 0 || k >= NumOpKinds {
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
	return opKindNames[k]
}

// Op is one drawn operation. Key is the point key of a search, insert
// or delete, and the low bound of range-scan and scan-limit ops (Hi the
// high bound); Keys is a multi-search batch; Limit is scan-limit's row
// budget.
type Op struct {
	Kind  OpKind
	Key   uint64
	Hi    uint64
	Keys  []uint64
	Limit int
}

// Mix is a weighted blend of operations — the declarative half of a
// workload scenario (the imperative half, key choice, is the Dist of
// the stream that draws from it). Weights need not sum to 1; only their
// ratios matter.
type Mix struct {
	Name    string
	Weights [NumOpKinds]float64

	// Batch is the multi-search batch size; 0 selects 16.
	Batch int
	// RangeFrac is the span of range-scan and scan-limit ops as a
	// fraction of the key domain; 0 selects 1/256.
	RangeFrac float64
	// Limit is scan-limit's row budget k; 0 selects 10.
	Limit int
	// Monotonic makes inserts walk ascending keys in per-worker strides
	// (worker w of W inserts ranks w, w+W, w+2W, …) instead of
	// re-targeting drawn keys — the append-mostly shape of the
	// timeseries preset, reproducible at any worker count without any
	// cross-worker coordination.
	Monotonic bool
}

// TotalWeight returns the sum of all op weights.
func (m Mix) TotalWeight() float64 {
	var t float64
	for _, w := range m.Weights {
		t += w
	}
	return t
}

// WriteFraction returns the weight share of mutating ops.
func (m Mix) WriteFraction() float64 {
	t := m.TotalWeight()
	if t == 0 {
		return 0
	}
	return (m.Weights[OpInsert] + m.Weights[OpDelete]) / t
}

// The named presets. Weight tables are documented in DESIGN.md §8; the
// headline ratios follow the scenario names: oltp is 90 % point
// reads / 10 % writes, olap is 10 % point reads / 90 % scans and
// batches, reporting is dominated by LIMIT-k scans, timeseries is
// append-mostly with monotonic keys.

// OLTPMix is the transactional preset: 90 % point reads (single and
// batched), 10 % writes split between inserts and deletes.
func OLTPMix() Mix {
	m := Mix{Name: "oltp"}
	m.Weights[OpSearch] = 0.72
	m.Weights[OpMultiSearch] = 0.18
	m.Weights[OpInsert] = 0.06
	m.Weights[OpDelete] = 0.04
	return m
}

// OLAPMix is the analytical preset: 10 % point reads, 90 % range scans,
// LIMIT-k scans and batched probes. Read-only.
func OLAPMix() Mix {
	m := Mix{Name: "olap"}
	m.Weights[OpSearch] = 0.10
	m.Weights[OpRangeScan] = 0.50
	m.Weights[OpScanLimit] = 0.20
	m.Weights[OpMultiSearch] = 0.20
	return m
}

// ReportingMix is the range-heavy preset: LIMIT-k page fills and range
// scans dominate, with a trickle of point reads and inserts.
func ReportingMix() Mix {
	m := Mix{Name: "reporting"}
	m.Weights[OpScanLimit] = 0.60
	m.Weights[OpRangeScan] = 0.30
	m.Weights[OpSearch] = 0.05
	m.Weights[OpInsert] = 0.05
	return m
}

// TimeseriesMix is the append-mostly preset: monotonic inserts dominate,
// readers tail the freshest keys (pair it with DistLatest).
func TimeseriesMix() Mix {
	m := Mix{Name: "timeseries", Monotonic: true}
	m.Weights[OpInsert] = 0.85
	m.Weights[OpSearch] = 0.05
	m.Weights[OpScanLimit] = 0.08
	m.Weights[OpRangeScan] = 0.02
	return m
}

// Presets returns the named mixes in their canonical order.
func Presets() []Mix {
	return []Mix{OLTPMix(), OLAPMix(), ReportingMix(), TimeseriesMix()}
}

// MixNames returns the preset names in canonical order.
func MixNames() []string {
	ps := Presets()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}

// MixByName resolves a preset name (the -mix flag's values).
func MixByName(name string) (Mix, error) {
	for _, p := range Presets() {
		if p.Name == name {
			return p, nil
		}
	}
	return Mix{}, fmt.Errorf("workload: unknown mix %q (have %v)", name, MixNames())
}

// Caps declares which optional op kinds a drive target supports; point
// and range lookups are mandatory on every target. The bench layer
// derives a Caps from a target's capability interfaces.
type Caps struct {
	Insert      bool
	Delete      bool
	Scan        bool // streaming Scan, required by scan-limit ops
	MultiSearch bool
}

// AllCaps returns the full capability set.
func AllCaps() Caps {
	return Caps{Insert: true, Delete: true, Scan: true, MultiSearch: true}
}

// Move records one redistribution step: From's weight folded into To.
type Move struct {
	From, To OpKind
	Weight   float64
}

func (v Move) String() string {
	return fmt.Sprintf("%v→%v %.0f%%", v.From, v.To, v.Weight*100)
}

// Redistribute returns a copy of m executable under caps: the weight of
// each unsupported op kind moves to its declared fallback, and every
// move is reported so results can say what actually ran. The fallback
// chain degrades toward the mandatory ops — Delete→Insert→Search,
// ScanLimit→RangeScan, MultiSearch→Search — keeping the read/write
// split intact where the target allows and the access pattern close
// where it does not.
func (m Mix) Redistribute(caps Caps) (Mix, []Move) {
	out := m
	var moves []Move
	move := func(from, to OpKind) {
		w := out.Weights[from]
		if w == 0 {
			return
		}
		out.Weights[from] = 0
		out.Weights[to] += w
		moves = append(moves, Move{From: from, To: to, Weight: w})
	}
	if !caps.Delete {
		if caps.Insert {
			move(OpDelete, OpInsert)
		} else {
			move(OpDelete, OpSearch)
		}
	}
	if !caps.Insert {
		move(OpInsert, OpSearch)
	}
	if !caps.Scan {
		move(OpScanLimit, OpRangeScan)
	}
	if !caps.MultiSearch {
		move(OpMultiSearch, OpSearch)
	}
	return out, moves
}

// Dist names a key-choice distribution.
type Dist int

const (
	// DistUniform draws ranks uniformly over the domain.
	DistUniform Dist = iota
	// DistZipf draws Zipfian ranks: rank 0 is hottest, skew above 1
	// concentrates the draw (skew ≤ 1 is uniform, matching ZipfRanks).
	DistZipf
	// DistLatest draws near the most recently inserted rank — the
	// tailing readers of an append-mostly stream.
	DistLatest
)

var distNames = []string{"uniform", "zipf", "latest"}

func (d Dist) String() string {
	if d < 0 || int(d) >= len(distNames) {
		return fmt.Sprintf("Dist(%d)", int(d))
	}
	return distNames[d]
}

// ParseDist resolves a distribution name.
func ParseDist(s string) (Dist, error) {
	for i, n := range distNames {
		if n == s {
			return Dist(i), nil
		}
	}
	return 0, fmt.Errorf("workload: unknown distribution %q (have %v)", s, distNames)
}

// Ranks draws key ranks in [0, n) under a distribution from one
// deterministic sub-stream. It is the single key-choice path of the
// workload engine — OpStream draws through it, and experiments with
// bespoke op shapes (shard-scale's shard choice) use it directly so
// every concurrency experiment seeds the same way.
type Ranks struct {
	n        uint64
	dist     Dist
	rng      *SplitMix64
	zipf     *rand.Zipf
	frontier uint64 // most recently observed written rank
	window   uint64
}

// NewRanks builds a chooser over the domain [0, n) (n of 0 is treated
// as 1). DistZipf with skew ≤ 1 degrades to uniform, the convention of
// ZipfRanks and the -skew flag.
func NewRanks(dist Dist, skew float64, n uint64, rng *SplitMix64) *Ranks {
	if n == 0 {
		n = 1
	}
	r := &Ranks{n: n, dist: dist, rng: rng, frontier: n - 1, window: n/16 + 1}
	if dist == DistZipf && skew > 1 {
		r.zipf = rand.NewZipf(rand.New(rng), skew, 1, n-1)
	}
	return r
}

// Rank draws the next rank.
func (r *Ranks) Rank() uint64 {
	switch {
	case r.zipf != nil:
		return r.zipf.Uint64()
	case r.dist == DistLatest:
		w := r.window
		if f := r.frontier + 1; f < w {
			w = f
		}
		return r.frontier - r.rng.Uint64n(w)
	default:
		return r.rng.Uint64n(r.n)
	}
}

// Observe tells the chooser a rank was just written, moving the
// DistLatest read window to the write frontier. A no-op for the other
// distributions.
func (r *Ranks) Observe(rank uint64) { r.frontier = rank }

// StreamConfig parameterizes one worker's operation stream.
type StreamConfig struct {
	// Dist and Skew pick the key-choice distribution (Skew is DistZipf's
	// exponent; ≤ 1 is uniform).
	Dist Dist
	Skew float64
	// NumKeys is the rank domain: the count of distinct indexable keys.
	NumKeys uint64
	// KeyAt maps a rank to its key; nil is the identity (dense domains).
	KeyAt func(rank uint64) uint64
	// Worker and Workers place this stream in the run's worker
	// population (monotonic inserts stride by Workers starting at
	// Worker). Workers of 0 selects a single-worker run.
	Worker  int
	Workers int
	// Seed is the run seed; the stream draws from SubStream(Seed,
	// Worker).
	Seed int64
}

// OpStream draws one worker's deterministic operation sequence from a
// mix. Two streams with equal (mix, config) yield identical sequences.
type OpStream struct {
	mix     Mix
	cfg     StreamConfig
	rng     *SplitMix64
	ranks   *Ranks
	keyAt   func(uint64) uint64
	total   float64
	span    uint64
	nextIns uint64
}

// NewOpStream validates and builds one worker's stream. Mix defaults
// (Batch 16, RangeFrac 1/256, Limit 10) are applied here.
func NewOpStream(mix Mix, cfg StreamConfig) (*OpStream, error) {
	if cfg.NumKeys == 0 {
		return nil, fmt.Errorf("workload: op stream needs a non-empty key domain")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.Worker < 0 || cfg.Worker >= cfg.Workers {
		return nil, fmt.Errorf("workload: worker %d out of [0,%d)", cfg.Worker, cfg.Workers)
	}
	if mix.TotalWeight() <= 0 {
		return nil, fmt.Errorf("workload: mix %q has no positive op weight", mix.Name)
	}
	if mix.Batch <= 0 {
		mix.Batch = 16
	}
	if mix.RangeFrac <= 0 {
		mix.RangeFrac = 1.0 / 256
	}
	if mix.Limit <= 0 {
		mix.Limit = 10
	}
	keyAt := cfg.KeyAt
	if keyAt == nil {
		keyAt = func(rank uint64) uint64 { return rank }
	}
	span := uint64(mix.RangeFrac * float64(cfg.NumKeys))
	if span == 0 {
		span = 1
	}
	rng := SubStream(cfg.Seed, cfg.Worker)
	return &OpStream{
		mix:     mix,
		cfg:     cfg,
		rng:     rng,
		ranks:   NewRanks(cfg.Dist, cfg.Skew, cfg.NumKeys, rng),
		keyAt:   keyAt,
		total:   mix.TotalWeight(),
		span:    span,
		nextIns: uint64(cfg.Worker),
	}, nil
}

// Next draws the next operation.
func (s *OpStream) Next() Op {
	x := s.rng.Float64() * s.total
	kind := OpSearch
	for k := OpKind(0); k < NumOpKinds; k++ {
		if w := s.mix.Weights[k]; w > 0 {
			x -= w
			if x < 0 {
				kind = k
				break
			}
		}
	}
	switch kind {
	case OpRangeScan, OpScanLimit:
		lo := s.ranks.Rank()
		hi := lo + s.span
		if hi >= s.cfg.NumKeys {
			hi = s.cfg.NumKeys - 1
		}
		op := Op{Kind: kind, Key: s.keyAt(lo), Hi: s.keyAt(hi)}
		if kind == OpScanLimit {
			op.Limit = s.mix.Limit
		}
		return op
	case OpMultiSearch:
		keys := make([]uint64, s.mix.Batch)
		for i := range keys {
			keys[i] = s.keyAt(s.ranks.Rank())
		}
		return Op{Kind: kind, Keys: keys}
	case OpInsert:
		var rank uint64
		if s.mix.Monotonic {
			rank = s.nextIns % s.cfg.NumKeys
			s.nextIns += uint64(s.cfg.Workers)
		} else {
			rank = s.ranks.Rank()
		}
		s.ranks.Observe(rank)
		return Op{Kind: kind, Key: s.keyAt(rank)}
	default: // OpSearch, OpDelete
		return Op{Kind: kind, Key: s.keyAt(s.ranks.Rank())}
	}
}

// SortedDistinct returns the sorted distinct keys of a cardinality map
// — the rank→key table (StreamConfig.KeyAt) of non-dense domains like
// the SHD timestamps.
func SortedDistinct(cards map[uint64]uint64) []uint64 {
	keys := make([]uint64, 0, len(cards))
	for k := range cards {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
