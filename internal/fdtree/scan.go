package fdtree

import (
	"fmt"
	"sort"

	"bftree/internal/bptree"
	"bftree/internal/device"
)

// Cursor streams the records of a range scan in key order: a k-way
// merge over the head tree and one lazy cursor per on-device run.
// Opening the cursor pays each run's binary-search positioning (the
// same page reads the materialized RangeScan charges); after that, run
// pages are fetched only as the merge consumes them, so a LIMIT-k
// consumer reads the front of each run instead of every in-range page
// of every level. Ties across levels yield shallower levels first —
// head, then L1, L2, … — matching the left-biased mergeRecords order of
// the materialized scan, which drains exactly this cursor.
//
// The tree must not be mutated while a cursor is open (same contract as
// every other FD-Tree read). Close only drops buffers and is optional.
type Cursor struct {
	lo, hi uint64
	srcs   []*levelCursor // index 0 is the head, then L1..Lk
	cur    bptree.TupleRef
	valid  bool
	stats  SearchStats
	err    error
	done   bool
}

// Scan opens a streaming cursor over every record with key in [lo, hi].
func (t *Tree) Scan(lo, hi uint64) (*Cursor, error) {
	if lo > hi {
		return nil, fmt.Errorf("%w: range [%d,%d] inverted", ErrInvalid, lo, hi)
	}
	c := &Cursor{lo: lo, hi: hi}
	head := &levelCursor{c: c, mem: t.head}
	head.memPos = sort.Search(len(t.head), func(i int) bool { return t.head[i].key >= lo }) - 1
	c.srcs = append(c.srcs, head)
	for _, lv := range t.levels {
		if lv.pages == 0 {
			continue
		}
		lc := &levelCursor{c: c, t: t, lv: lv}
		if err := lc.position(); err != nil {
			return nil, err
		}
		c.srcs = append(c.srcs, lc)
	}
	for _, s := range c.srcs {
		if err := s.advance(); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Next advances to the next in-range record, reporting whether one
// exists.
func (c *Cursor) Next() bool {
	if c.done || c.err != nil {
		c.valid = false
		return false
	}
	// Pick the source with the smallest current key; ties go to the
	// shallowest level (lowest index), reproducing mergeRecords order.
	best := -1
	for i, s := range c.srcs {
		if !s.valid {
			continue
		}
		if best == -1 || s.key < c.srcs[best].key {
			best = i
		}
	}
	if best == -1 {
		c.done = true
		c.valid = false
		return false
	}
	s := c.srcs[best]
	c.cur, c.valid = s.ref, true
	if err := s.advance(); err != nil {
		c.err = err
		c.valid = false
		return false
	}
	return true
}

// Ref returns the current record's tuple reference.
func (c *Cursor) Ref() bptree.TupleRef {
	if !c.valid {
		return bptree.TupleRef{}
	}
	return c.cur
}

// Stats returns the run pages read so far.
func (c *Cursor) Stats() SearchStats { return c.stats }

// Err returns the first error the cursor hit, if any.
func (c *Cursor) Err() error { return c.err }

// Close releases the cursor's buffers. Idempotent; never fails.
func (c *Cursor) Close() error {
	c.done = true
	c.valid = false
	c.srcs = nil
	return nil
}

// levelCursor walks one source — the in-memory head (mem != nil) or one
// on-device run — yielding its in-range records in order.
type levelCursor struct {
	c *Cursor

	// Head source.
	mem    []entry
	memPos int

	// Run source.
	t    *Tree
	lv   level
	p    int // page index within the run, -1 before the first load
	page []entry
	i    int // entry index within page, -1 before first

	key   uint64
	ref   bptree.TupleRef
	valid bool
	done  bool
}

// position runs the materialized scan's binary search over the run's
// pages — charging each predicate read — and backs up one page, since
// the page before the boundary may hold in-range records at its tail.
func (s *levelCursor) position() error {
	var searchErr error
	start := sort.Search(s.lv.pages, func(p int) bool {
		page, err := s.t.readRunPage(s.lv.first + device.PageID(p))
		if err != nil {
			searchErr = err
			return true
		}
		s.c.stats.PagesRead++
		return len(page) > 0 && page[0].key >= s.c.lo
	})
	if searchErr != nil {
		return searchErr
	}
	if start > 0 {
		start--
	}
	s.p = start - 1 // advance loads start first
	s.i = -1
	return nil
}

// advance moves to the source's next in-range record, loading run pages
// lazily. The source exhausts at the first key past hi (the page
// holding it has already been read, matching the materialized scan's
// read-then-break accounting) or at the end of the run.
func (s *levelCursor) advance() error {
	s.valid = false
	if s.done {
		return nil
	}
	if s.t == nil { // head source

		for {
			s.memPos++
			if s.memPos >= len(s.mem) || s.mem[s.memPos].key > s.c.hi {
				s.done = true
				return nil
			}
			e := s.mem[s.memPos]
			if e.kind != kindRecord || e.key < s.c.lo {
				continue
			}
			s.key, s.ref, s.valid = e.key, e.ref, true
			return nil
		}
	}
	for {
		s.i++
		if s.i >= len(s.page) {
			s.p++
			if s.p >= s.lv.pages {
				s.done = true
				return nil
			}
			page, err := s.t.readRunPage(s.lv.first + device.PageID(s.p))
			if err != nil {
				return err
			}
			s.c.stats.PagesRead++
			s.page, s.i = page, 0
			if len(page) == 0 {
				continue
			}
		}
		e := s.page[s.i]
		if e.key > s.c.hi {
			s.done = true
			return nil
		}
		if e.kind != kindRecord || e.key < s.c.lo {
			continue
		}
		s.key, s.ref, s.valid = e.key, e.ref, true
		return nil
	}
}

// MultiSearch answers a batch of point lookups in one pass: keys are
// sorted and deduped, then each runs the fractional-cascade search of
// Search through a per-batch cache of decoded run pages, so adjacent
// keys routed to the same pages share their reads. Groups come back in
// ascending key order, keys without matches omitted; PagesRead counts
// distinct run pages read for the whole batch.
func (t *Tree) MultiSearch(keys []uint64) ([]bptree.KeyRefs, *SearchStats, error) {
	stats := &SearchStats{}
	if len(keys) == 0 {
		return nil, stats, nil
	}
	sorted := append([]uint64(nil), keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	cache := make(map[device.PageID][]entry)
	read := func(pid device.PageID) ([]entry, error) {
		if page, ok := cache[pid]; ok {
			return page, nil
		}
		page, err := t.readRunPage(pid)
		if err != nil {
			return nil, err
		}
		stats.PagesRead++
		cache[pid] = page
		return page, nil
	}
	var out []bptree.KeyRefs
	var prev uint64
	for n, key := range sorted {
		if n > 0 && key == prev {
			continue
		}
		prev = key
		refs, err := t.searchCached(key, read)
		if err != nil {
			return nil, stats, err
		}
		if len(refs) > 0 {
			out = append(out, bptree.KeyRefs{Key: key, Refs: refs})
		}
	}
	return out, stats, nil
}

// searchCached is Search for one key with page reads going through the
// batch cache instead of straight to the store.
func (t *Tree) searchCached(key uint64, read func(device.PageID) ([]entry, error)) ([]bptree.TupleRef, error) {
	var out []bptree.TupleRef
	nextPage := device.InvalidPage
	collect := func(entries []entry) {
		i := sort.Search(len(entries), func(i int) bool { return entries[i].key > key })
		for j := i - 1; j >= 0 && entries[j].key == key; j-- {
			if entries[j].kind == kindRecord {
				out = append(out, entries[j].ref)
			}
		}
	}
	scan := func(entries []entry) {
		i := sort.Search(len(entries), func(i int) bool { return entries[i].key > key })
		for j := i - 1; j >= 0; j-- {
			if entries[j].kind == kindFence {
				nextPage = entries[j].next
				break
			}
		}
		collect(entries)
	}
	scan(t.head)
	for lv := 0; lv < len(t.levels); lv++ {
		if nextPage == device.InvalidPage {
			if t.levels[lv].pages == 0 {
				continue
			}
			nextPage = t.levels[lv].first
		}
		pid := nextPage
		page, err := read(pid)
		if err != nil {
			return nil, err
		}
		nextPage = device.InvalidPage
		scan(page)
		for len(page) > 0 && page[0].key == key && pid > t.levels[lv].first {
			pid--
			page, err = read(pid)
			if err != nil {
				return nil, err
			}
			collect(page)
		}
	}
	return out, nil
}
