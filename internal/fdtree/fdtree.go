// Package fdtree implements the FD-Tree of Li et al. (PVLDB 2010), the
// flash-aware comparator of the paper's analysis (Section 5) and
// smart-home experiment (Section 6.5). An FD-Tree keeps a small head
// tree in memory and a logarithmic series of sorted runs on the device;
// each run embeds fence entries pointing into the next run (fractional
// cascading), so a point search reads exactly one page per on-device
// level. Inserts go to the head tree and cascade down through merges.
package fdtree

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"bftree/internal/bptree"
	"bftree/internal/device"
	"bftree/internal/pagestore"
)

// ErrInvalid reports invalid configuration or corrupt state.
var ErrInvalid = errors.New("fdtree: invalid")

// entryKind distinguishes data records from fence pointers within a run.
type entryKind byte

const (
	kindRecord entryKind = 0
	kindFence  entryKind = 1
)

// entry is one slot of a sorted run: a record (key → tuple ref) or a
// fence (key → page id in the next level).
type entry struct {
	key  uint64
	kind entryKind
	ref  bptree.TupleRef // records
	next device.PageID   // fences
}

// Serialized entry: key(8) kind(1) page(8) slot(2) = 19 bytes; a page
// holds (pageSize-3)/19 entries after the 3-byte header (kind, count).
const (
	entrySize      = 19
	runHeaderSize  = 3
	runPageKind    = byte(7)
	defaultHeadCap = 4096
	defaultRatio   = 8
)

func entriesPerPage(pageSize int) int {
	return (pageSize - runHeaderSize) / entrySize
}

// level is one on-device sorted run.
type level struct {
	first device.PageID
	pages int
	count int // total entries including fences
}

// Tree is an FD-Tree over a page store.
type Tree struct {
	store   *pagestore.Store
	head    []entry // level 0, memory-resident, sorted
	headCap int
	ratio   int
	levels  []level // on-device runs, L1..Lk
	records uint64  // data records across all levels
}

// Options configure an FD-Tree.
type Options struct {
	// HeadCapacity is the entry capacity of the in-memory head tree
	// (default 4096).
	HeadCapacity int
	// Ratio is the size ratio between adjacent levels (the k of the
	// logarithmic method, default 8). The FD-Tree paper tunes it per
	// workload; the BF-Tree paper lets it pick the optimal value.
	Ratio int
}

// New creates an empty FD-Tree on store.
func New(store *pagestore.Store, o Options) (*Tree, error) {
	if o.HeadCapacity == 0 {
		o.HeadCapacity = defaultHeadCap
	}
	if o.Ratio == 0 {
		o.Ratio = defaultRatio
	}
	if o.HeadCapacity < 4 || o.Ratio < 2 {
		return nil, fmt.Errorf("%w: head capacity %d, ratio %d", ErrInvalid, o.HeadCapacity, o.Ratio)
	}
	return &Tree{store: store, headCap: o.HeadCapacity, ratio: o.Ratio}, nil
}

// BulkLoad builds an FD-Tree from sorted entries: everything lands in
// the deepest level, with fences cascading up into the head.
func BulkLoad(store *pagestore.Store, entries []bptree.Entry, o Options) (*Tree, error) {
	t, err := New(store, o)
	if err != nil {
		return nil, err
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("%w: bulk load of zero entries", ErrInvalid)
	}
	for i := 1; i < len(entries); i++ {
		if entries[i].Key < entries[i-1].Key {
			return nil, fmt.Errorf("%w: entries not sorted at %d", ErrInvalid, i)
		}
	}
	recs := make([]entry, len(entries))
	for i, e := range entries {
		recs[i] = entry{key: e.Key, kind: kindRecord, ref: e.Ref}
	}
	// Find the shallowest depth whose capacity holds the records, then
	// write the run at that depth and cascade fences upward.
	depth := 1
	for t.levelCapacity(depth) < len(recs) {
		depth++
	}
	for len(t.levels) < depth {
		t.levels = append(t.levels, level{})
	}
	if err := t.writeRun(depth, recs); err != nil {
		return nil, err
	}
	// Levels above the deepest hold only fences; build them bottom-up:
	// level d gets one fence per page of level d+1.
	for d := depth - 1; d >= 1; d-- {
		if err := t.composeAndWrite(d, nil); err != nil {
			return nil, err
		}
	}
	t.head = t.fencesFor(t.levels[0])
	t.records = uint64(len(recs))
	return t, nil
}

// levelCapacity returns the entry capacity of on-device level d (1-based).
func (t *Tree) levelCapacity(d int) int {
	c := t.headCap
	for i := 0; i < d; i++ {
		c *= t.ratio
	}
	return c
}

// fencesFor builds the fence entries describing a level: one per page,
// keyed by the page's first key (first fence forced to key 0 so every
// search finds a fence).
func (t *Tree) fencesFor(lv level) []entry {
	fences := make([]entry, 0, lv.pages)
	for p := 0; p < lv.pages; p++ {
		pid := lv.first + device.PageID(p)
		page, err := t.readRunPage(pid)
		if err != nil || len(page) == 0 {
			continue
		}
		key := page[0].key
		if p == 0 {
			key = 0
		}
		fences = append(fences, entry{key: key, kind: kindFence, next: pid})
	}
	return fences
}

// writeRun replaces level d (1-based) with the given sorted entries,
// packing them into pages. A page that would otherwise start mid-stream
// gets a copy of the most recent fence prepended (the FD-Tree's internal
// fences), so every page is self-sufficient for routing. The replaced
// run's pages are returned to the store's free list, where they
// coalesce into contiguous runs that later rewrites recycle — without
// this the logarithmic merge cascade would grow the device by the full
// level size on every merge.
func (t *Tree) writeRun(d int, entries []entry) error {
	per := entriesPerPage(t.store.PageSize())
	var pagesData [][]entry
	var lastFence *entry
	cur := make([]entry, 0, per)
	for _, e := range entries {
		if len(cur) == 0 && e.kind != kindFence && lastFence != nil {
			// The carried copy adopts the page's first key so the run
			// stays sorted and the page's routing fence covers exactly
			// the keys that land here.
			cf := *lastFence
			cf.key = e.key
			cur = append(cur, cf)
		}
		cur = append(cur, e)
		if e.kind == kindFence {
			f := e
			lastFence = &f
		}
		if len(cur) == per {
			pagesData = append(pagesData, cur)
			cur = make([]entry, 0, per)
		}
	}
	if len(cur) > 0 || len(pagesData) == 0 {
		pagesData = append(pagesData, cur)
	}
	first := t.store.Allocate(len(pagesData))
	buf := make([]byte, t.store.PageSize())
	total := 0
	for p, pe := range pagesData {
		encodeRunPage(buf, pe)
		if err := t.store.WritePage(first+device.PageID(p), buf); err != nil {
			return err
		}
		total += len(pe)
	}
	for len(t.levels) < d {
		t.levels = append(t.levels, level{})
	}
	if old := t.levels[d-1]; old.pages > 0 {
		dead := make([]device.PageID, old.pages)
		for p := range dead {
			dead[p] = old.first + device.PageID(p)
		}
		t.store.Free(dead...)
	}
	t.levels[d-1] = level{first: first, pages: len(pagesData), count: total}
	return nil
}

func encodeRunPage(buf []byte, entries []entry) {
	buf[0] = runPageKind
	binary.LittleEndian.PutUint16(buf[1:3], uint16(len(entries)))
	off := runHeaderSize
	for _, e := range entries {
		binary.LittleEndian.PutUint64(buf[off:], e.key)
		buf[off+8] = byte(e.kind)
		if e.kind == kindFence {
			binary.LittleEndian.PutUint64(buf[off+9:], uint64(e.next))
			binary.LittleEndian.PutUint16(buf[off+17:], 0)
		} else {
			binary.LittleEndian.PutUint64(buf[off+9:], uint64(e.ref.Page))
			binary.LittleEndian.PutUint16(buf[off+17:], e.ref.Slot)
		}
		off += entrySize
	}
	for i := off; i < len(buf); i++ {
		buf[i] = 0
	}
}

func decodeRunPage(buf []byte) ([]entry, error) {
	if len(buf) < runHeaderSize || buf[0] != runPageKind {
		return nil, fmt.Errorf("%w: not a run page", ErrInvalid)
	}
	count := int(binary.LittleEndian.Uint16(buf[1:3]))
	if runHeaderSize+count*entrySize > len(buf) {
		return nil, fmt.Errorf("%w: run page overflow", ErrInvalid)
	}
	out := make([]entry, count)
	off := runHeaderSize
	for i := 0; i < count; i++ {
		e := entry{
			key:  binary.LittleEndian.Uint64(buf[off:]),
			kind: entryKind(buf[off+8]),
		}
		if e.kind == kindFence {
			e.next = device.PageID(binary.LittleEndian.Uint64(buf[off+9:]))
		} else {
			e.ref = bptree.TupleRef{
				Page: device.PageID(binary.LittleEndian.Uint64(buf[off+9:])),
				Slot: binary.LittleEndian.Uint16(buf[off+17:]),
			}
		}
		out[i] = e
		off += entrySize
	}
	return out, nil
}

func (t *Tree) readRunPage(pid device.PageID) ([]entry, error) {
	buf, err := t.store.ReadPage(pid)
	if err != nil {
		return nil, err
	}
	return decodeRunPage(buf)
}

// SearchStats accounts one FD-Tree probe.
type SearchStats struct {
	PagesRead int // run pages read (one per on-device level)
}

// Search returns the tuple references for key. It scans the head tree,
// then follows one fence per level, reading one run page per level — the
// logarithmic search pattern the paper models. Duplicates of key that
// straddle a page boundary within a run cost extra page reads: the
// fence routing is rightmost-biased, so the remaining records sit at
// the tails of the immediately preceding pages (see the left walk).
func (t *Tree) Search(key uint64) ([]bptree.TupleRef, *SearchStats, error) {
	stats := &SearchStats{}
	var out []bptree.TupleRef
	nextPage := device.InvalidPage

	// collect gathers the records matching key.
	collect := func(entries []entry) {
		i := sort.Search(len(entries), func(i int) bool { return entries[i].key > key })
		for j := i - 1; j >= 0 && entries[j].key == key; j-- {
			if entries[j].kind == kindRecord {
				out = append(out, entries[j].ref)
			}
		}
	}
	scan := func(entries []entry) {
		i := sort.Search(len(entries), func(i int) bool { return entries[i].key > key })
		// The last fence at or below key routes the next level; records
		// in between are skipped. Every run page starts with a carried
		// fence (see writeRun), so the fence is always on this page.
		for j := i - 1; j >= 0; j-- {
			if entries[j].kind == kindFence {
				nextPage = entries[j].next
				break
			}
		}
		collect(entries)
	}

	scan(t.head)
	for lv := 0; lv < len(t.levels); lv++ {
		if nextPage == device.InvalidPage {
			// No fence found (empty level); fall back to the level's
			// first page.
			if t.levels[lv].pages == 0 {
				continue
			}
			nextPage = t.levels[lv].first
		}
		pid := nextPage
		page, err := t.readRunPage(pid)
		if err != nil {
			return nil, nil, err
		}
		stats.PagesRead++
		nextPage = device.InvalidPage
		scan(page)
		// Duplicates of key may straddle page boundaries within the
		// run. The entry page is the rightmost page whose first key is
		// at or below key (fences are one per page, keyed by first key,
		// and routing picks the last fence at or below key), so any
		// remaining records of key sit at the tails of the preceding
		// pages: walk left while the page still *starts* at key. The
		// left pages never carry routing information the entry page
		// lacks — a fence at or below key on them precedes every fence
		// the entry page holds — so only records are collected.
		for len(page) > 0 && page[0].key == key && pid > t.levels[lv].first {
			pid--
			page, err = t.readRunPage(pid)
			if err != nil {
				return nil, nil, err
			}
			stats.PagesRead++
			collect(page)
		}
	}
	return out, stats, nil
}

// Insert adds an entry to the head tree, cascading merges when levels
// overflow.
func (t *Tree) Insert(key uint64, ref bptree.TupleRef) error {
	e := entry{key: key, kind: kindRecord, ref: ref}
	i := sort.Search(len(t.head), func(i int) bool { return t.head[i].key > key })
	t.head = append(t.head, entry{})
	copy(t.head[i+1:], t.head[i:])
	t.head[i] = e
	t.records++
	if len(t.head) <= t.headCap {
		return nil
	}
	return t.mergeDown()
}

// mergeDown flushes the head into L1, then cascades while levels
// overflow. Each merge rewrites the lower level from the records of both
// (fences are regenerated, not merged) and replaces the upper level with
// fences only.
func (t *Tree) mergeDown() error {
	// Records currently in the head.
	upper := recordsOf(t.head)
	d := 1
	for {
		if len(t.levels) < d {
			t.levels = append(t.levels, level{})
		}
		lowerEntries, err := t.levelRecords(d)
		if err != nil {
			return err
		}
		merged := mergeRecords(upper, lowerEntries)
		if len(merged) <= t.levelCapacity(d) {
			if err := t.composeAndWrite(d, merged); err != nil {
				return err
			}
			break
		}
		// Level d overflows too: push everything down; level d will be
		// rebuilt as fences afterwards.
		upper = merged
		d++
	}
	// Rebuild the levels above d as fences of the level below, bottom-up,
	// then the head.
	for lv := d - 1; lv >= 1; lv-- {
		if err := t.composeAndWrite(lv, nil); err != nil {
			return err
		}
	}
	t.head = t.fencesFor(t.levels[0])
	return nil
}

// composeAndWrite rewrites level d with the given records interleaved
// with fences pointing into level d+1 (when one exists). Every level
// rewrite goes through here so routing to deeper levels is never lost.
func (t *Tree) composeAndWrite(d int, records []entry) error {
	var fences []entry
	if d < len(t.levels) && t.levels[d].pages > 0 {
		fences = t.fencesFor(t.levels[d])
	}
	return t.writeRun(d, mergeRecords(records, fences))
}

// levelRecords reads all record entries of on-device level d (1-based).
func (t *Tree) levelRecords(d int) ([]entry, error) {
	if d > len(t.levels) || t.levels[d-1].pages == 0 {
		return nil, nil
	}
	lv := t.levels[d-1]
	var out []entry
	for p := 0; p < lv.pages; p++ {
		page, err := t.readRunPage(lv.first + device.PageID(p))
		if err != nil {
			return nil, err
		}
		out = append(out, recordsOf(page)...)
	}
	return out, nil
}

func recordsOf(entries []entry) []entry {
	var out []entry
	for _, e := range entries {
		if e.kind == kindRecord {
			out = append(out, e)
		}
	}
	return out
}

func mergeRecords(a, b []entry) []entry {
	out := make([]entry, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].key <= b[j].key {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// NumRecords returns the number of data records stored.
func (t *Tree) NumRecords() uint64 { return t.records }

// Levels returns the number of on-device levels.
func (t *Tree) Levels() int { return len(t.levels) }

// SizeBytes returns the on-device footprint (run pages × page size); the
// head tree is memory-resident by design.
func (t *Tree) SizeBytes() uint64 {
	var pages int
	for _, lv := range t.levels {
		pages += lv.pages
	}
	return uint64(pages) * uint64(t.store.PageSize())
}

// FlushHead forces the in-memory head tree's records onto the device by
// running the same merge cascade an overflow triggers. After it returns
// the head holds only fences, so the tree's record state is fully
// device-resident. A no-op when the head holds no records.
func (t *Tree) FlushHead() error {
	if len(recordsOf(t.head)) == 0 {
		return nil
	}
	return t.mergeDown()
}

// RangeScan returns the tuple references of every record with key in
// [lo, hi], in key order, and the run pages read. Each sorted run is
// scanned independently — binary search over its contiguous pages to the
// first page that may hold lo, then forward until past hi — and the
// per-level results are merged, the ordered-scan pattern the fractional
// cascade cannot provide across levels.
func (t *Tree) RangeScan(lo, hi uint64) ([]bptree.TupleRef, *SearchStats, error) {
	c, err := t.Scan(lo, hi)
	if err != nil {
		return nil, nil, err
	}
	var refs []bptree.TupleRef
	for c.Next() {
		refs = append(refs, c.Ref())
	}
	stats := c.Stats()
	if err := c.Err(); err != nil {
		return nil, nil, err
	}
	return refs, &stats, nil
}
