package fdtree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bftree/internal/bptree"
	"bftree/internal/device"
	"bftree/internal/pagestore"
)

func memStore() *pagestore.Store {
	return pagestore.New(device.New(device.Memory, 4096))
}

func seqEntries(n int) []bptree.Entry {
	out := make([]bptree.Entry, n)
	for i := range out {
		out[i] = bptree.Entry{Key: uint64(i), Ref: bptree.TupleRef{Page: device.PageID(i / 15), Slot: uint16(i % 15)}}
	}
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New(memStore(), Options{HeadCapacity: 2}); err == nil {
		t.Error("tiny head accepted")
	}
	if _, err := New(memStore(), Options{Ratio: 1}); err == nil {
		t.Error("ratio 1 accepted")
	}
	tr, err := New(memStore(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.headCap != defaultHeadCap || tr.ratio != defaultRatio {
		t.Error("defaults not applied")
	}
}

func TestBulkLoadSearch(t *testing.T) {
	entries := seqEntries(100000)
	tr, err := BulkLoad(memStore(), entries, Options{HeadCapacity: 256, Ratio: 4})
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumRecords() != 100000 {
		t.Fatalf("records = %d", tr.NumRecords())
	}
	if tr.Levels() < 2 {
		t.Errorf("levels = %d, want multi-level", tr.Levels())
	}
	for _, key := range []uint64{0, 1, 777, 50000, 99999} {
		refs, stats, err := tr.Search(key)
		if err != nil {
			t.Fatal(err)
		}
		if len(refs) != 1 {
			t.Fatalf("key %d: %d refs", key, len(refs))
		}
		if refs[0] != entries[key].Ref {
			t.Fatalf("key %d: wrong ref", key)
		}
		// One page read per on-device level.
		if stats.PagesRead > tr.Levels() {
			t.Errorf("key %d: %d reads > %d levels", key, stats.PagesRead, tr.Levels())
		}
	}
}

func TestSearchMiss(t *testing.T) {
	tr, err := BulkLoad(memStore(), seqEntries(10000), Options{HeadCapacity: 128, Ratio: 4})
	if err != nil {
		t.Fatal(err)
	}
	refs, _, err := tr.Search(999999)
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 0 {
		t.Error("absent key matched")
	}
}

func TestBulkLoadValidation(t *testing.T) {
	if _, err := BulkLoad(memStore(), nil, Options{}); err == nil {
		t.Error("empty bulk load accepted")
	}
	bad := []bptree.Entry{{Key: 5}, {Key: 1}}
	if _, err := BulkLoad(memStore(), bad, Options{}); err == nil {
		t.Error("unsorted entries accepted")
	}
}

func TestInsertAndCascade(t *testing.T) {
	tr, err := New(memStore(), Options{HeadCapacity: 64, Ratio: 4})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	inserted := make(map[uint64]bptree.TupleRef)
	for i := 0; i < 3000; i++ {
		k := uint64(rng.Intn(1000000))
		for _, dup := range []bool{inserted[k] != (bptree.TupleRef{})} {
			if dup {
				k++
			}
		}
		ref := bptree.TupleRef{Page: device.PageID(i + 1), Slot: uint16(i % 9)}
		if err := tr.Insert(k, ref); err != nil {
			t.Fatal(err)
		}
		inserted[k] = ref
	}
	if tr.Levels() == 0 {
		t.Error("inserts should have spilled to device levels")
	}
	checked := 0
	for k, ref := range inserted {
		refs, _, err := tr.Search(k)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, r := range refs {
			if r == ref {
				found = true
			}
		}
		if !found {
			t.Fatalf("key %d lost after cascading merges", k)
		}
		checked++
		if checked >= 500 {
			break
		}
	}
}

func TestDuplicateKeys(t *testing.T) {
	tr, err := New(memStore(), Options{HeadCapacity: 64, Ratio: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := tr.Insert(42, bptree.TupleRef{Page: device.PageID(i), Slot: 0}); err != nil {
			t.Fatal(err)
		}
	}
	refs, _, err := tr.Search(42)
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 10 {
		t.Errorf("duplicates: %d of 10", len(refs))
	}
}

func TestLevelGrowth(t *testing.T) {
	tr, err := New(memStore(), Options{HeadCapacity: 32, Ratio: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if err := tr.Insert(uint64(i*7%100000), bptree.TupleRef{Page: device.PageID(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Level sizes respect the logarithmic ratio: each level's capacity
	// is ratio times the previous.
	if tr.levelCapacity(2) != tr.levelCapacity(1)*2 {
		t.Error("level capacities must follow the ratio")
	}
	if tr.Levels() < 3 {
		t.Errorf("expected ≥3 levels after 2000 inserts at head 32, got %d", tr.Levels())
	}
}

func TestSizeBytes(t *testing.T) {
	tr, err := BulkLoad(memStore(), seqEntries(50000), Options{HeadCapacity: 256, Ratio: 4})
	if err != nil {
		t.Fatal(err)
	}
	if tr.SizeBytes() == 0 {
		t.Error("bulk-loaded tree should have on-device pages")
	}
}

func TestRunPageRoundTrip(t *testing.T) {
	buf := make([]byte, 4096)
	in := []entry{
		{key: 0, kind: kindFence, next: 99},
		{key: 5, kind: kindRecord, ref: bptree.TupleRef{Page: 7, Slot: 3}},
	}
	encodeRunPage(buf, in)
	out, err := decodeRunPage(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].next != 99 || out[1].ref.Page != 7 || out[1].ref.Slot != 3 {
		t.Fatalf("round trip: %+v", out)
	}
	if _, err := decodeRunPage(make([]byte, 64)); err == nil {
		t.Error("zero page decoded")
	}
}

// Property: FD-Tree search agrees with a reference map across random
// insert batches.
func TestQuickMatchesReference(t *testing.T) {
	tr, err := New(memStore(), Options{HeadCapacity: 32, Ratio: 2})
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[uint64]int)
	prop := func(raw uint16) bool {
		k := uint64(raw % 300)
		if err := tr.Insert(k, bptree.TupleRef{Page: device.PageID(counts[k])}); err != nil {
			return false
		}
		counts[k]++
		refs, _, err := tr.Search(k)
		return err == nil && len(refs) == counts[k]
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 600}); err != nil {
		t.Fatal(err)
	}
}

// TestSearchDuplicatesStraddlingPageBoundary pins the straddle fix:
// duplicates of one key split across a run-page boundary must all be
// found. Fence routing is rightmost-biased — it lands on the page that
// *starts* with the key — so without the leftward page walk the records
// at the tail of the preceding page were silently dropped (the flake
// TestQuickMatchesReference used to hit).
func TestSearchDuplicatesStraddlingPageBoundary(t *testing.T) {
	store := memStore()
	per := entriesPerPage(store.PageSize())
	// 210 singleton keys, then 20 duplicates of key 210 positioned so
	// the page boundary at `per` entries falls inside the group, then
	// more singletons to give the run several pages.
	const dupKey, dups = uint64(210), 20
	var entries []bptree.Entry
	for k := uint64(0); k < dupKey; k++ {
		entries = append(entries, bptree.Entry{Key: k, Ref: bptree.TupleRef{Page: device.PageID(k)}})
	}
	for d := 0; d < dups; d++ {
		entries = append(entries, bptree.Entry{Key: dupKey, Ref: bptree.TupleRef{Page: device.PageID(1000 + d)}})
	}
	for k := dupKey + 1; k < dupKey+100; k++ {
		entries = append(entries, bptree.Entry{Key: k, Ref: bptree.TupleRef{Page: device.PageID(k)}})
	}
	if len(entries) <= per || int(dupKey)+dups <= per {
		t.Fatalf("fixture does not straddle: %d entries, %d per page", len(entries), per)
	}
	tr, err := BulkLoad(store, entries, Options{HeadCapacity: 32, Ratio: 2})
	if err != nil {
		t.Fatal(err)
	}
	refs, stats, err := tr.Search(dupKey)
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != dups {
		t.Fatalf("found %d of %d duplicates straddling the page boundary", len(refs), dups)
	}
	seen := make(map[device.PageID]bool)
	for _, r := range refs {
		if r.Page < 1000 || r.Page >= 1000+dups || seen[r.Page] {
			t.Fatalf("wrong or duplicated ref %v", r)
		}
		seen[r.Page] = true
	}
	if stats.PagesRead == 0 {
		t.Fatal("no pages read")
	}
	// Non-straddling keys are unaffected.
	for _, k := range []uint64{0, 107, 250} {
		refs, _, err := tr.Search(k)
		if err != nil || len(refs) != 1 {
			t.Fatalf("key %d: %d refs, err %v", k, len(refs), err)
		}
	}
}

func TestRangeScan(t *testing.T) {
	entries := seqEntries(50000)
	store := memStore()
	tr, err := BulkLoad(store, entries, Options{HeadCapacity: 256, Ratio: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Spread later inserts across levels so the scan must merge runs.
	for i := 0; i < 600; i++ {
		k := uint64(i * 83)
		if err := tr.Insert(k, bptree.TupleRef{Page: device.PageID(90000 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	for _, rng := range [][2]uint64{{0, 0}, {100, 250}, {49900, 60000}, {7, 7}} {
		lo, hi := rng[0], rng[1]
		refs, stats, err := tr.RangeScan(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for _, e := range entries {
			if e.Key >= lo && e.Key <= hi {
				want++
			}
		}
		for i := 0; i < 600; i++ {
			if k := uint64(i * 83); k >= lo && k <= hi {
				want++
			}
		}
		if len(refs) != want {
			t.Fatalf("range [%d,%d]: %d refs, want %d", lo, hi, len(refs), want)
		}
		if stats.PagesRead == 0 && tr.Levels() > 0 {
			t.Errorf("range [%d,%d] read no run pages", lo, hi)
		}
		for i := 1; i < len(refs); i++ {
			// seqEntries key i maps to page i/15; inserted keys map to
			// 90000+. Key order implies non-decreasing pages within the
			// bulk entries, which is all the contract promises.
			_ = i
		}
	}
	if _, _, err := tr.RangeScan(5, 4); err == nil {
		t.Error("inverted range accepted")
	}
}

func TestFlushHead(t *testing.T) {
	store := memStore()
	tr, err := BulkLoad(store, seqEntries(1000), Options{HeadCapacity: 64, Ratio: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Buffer a few inserts that stay below the head capacity.
	for i := 0; i < 10; i++ {
		if err := tr.Insert(uint64(100000+i), bptree.TupleRef{Page: 500}); err != nil {
			t.Fatal(err)
		}
	}
	if len(recordsOf(tr.head)) == 0 {
		t.Fatal("inserts did not buffer in the head")
	}
	if err := tr.FlushHead(); err != nil {
		t.Fatal(err)
	}
	if n := len(recordsOf(tr.head)); n != 0 {
		t.Fatalf("head still holds %d records after FlushHead", n)
	}
	for i := 0; i < 10; i++ {
		refs, _, err := tr.Search(uint64(100000 + i))
		if err != nil {
			t.Fatal(err)
		}
		if len(refs) != 1 {
			t.Fatalf("key %d lost by FlushHead", 100000+i)
		}
	}
	if err := tr.FlushHead(); err != nil { // idempotent no-op
		t.Fatal(err)
	}
}

// TestMergeDeviceBounded pins the free-run recycling of writeRun: the
// merge cascade rewrites whole levels, and without returning the old
// runs to the store's free list the device would grow by a level
// footprint per merge.
func TestMergeDeviceBounded(t *testing.T) {
	store := memStore()
	tr, err := BulkLoad(store, seqEntries(20000), Options{HeadCapacity: 64, Ratio: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 22000; i++ {
		if err := tr.Insert(uint64(i*7), bptree.TupleRef{Page: device.PageID(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Each level rewrite double-buffers (new run allocated before the
	// old one is freed) and requests grow with the record count, so some
	// free-list fragmentation is inherent; 3x the live footprint bounds
	// it. Without recycling, the cascade's cumulative rewrites allocate
	// roughly 10x the live footprint over this workload.
	live := tr.SizeBytes() / uint64(store.PageSize())
	if got := store.Device().NumPages(); got > 3*live {
		t.Fatalf("device at %d pages for %d live run pages; old runs not recycled", got, live)
	}
	if _, reused := store.FreeListStats(); reused == 0 {
		t.Error("no freed run pages were recycled by later merges")
	}
}

// TestRangeScanDuplicatesSpanPages pins the boundary rule of RangeScan:
// when duplicates of the range's low key fill more than one run page,
// the scan must still return every one of them (the binary search lands
// on the first duplicate page and backs up one; the forward scan covers
// the rest), and must agree with Search on the same tree.
func TestRangeScanDuplicatesSpanPages(t *testing.T) {
	const dups = 600 // ~3 run pages at 215 entries/page
	var entries []bptree.Entry
	for i := 0; i < 1000; i++ {
		entries = append(entries, bptree.Entry{Key: uint64(i), Ref: bptree.TupleRef{Page: device.PageID(i)}})
	}
	for i := 0; i < dups; i++ {
		entries = append(entries, bptree.Entry{Key: 1000, Ref: bptree.TupleRef{Page: device.PageID(2000 + i)}})
	}
	for i := 1; i < 1000; i++ {
		entries = append(entries, bptree.Entry{Key: 1000 + uint64(i), Ref: bptree.TupleRef{Page: device.PageID(i)}})
	}
	tr, err := BulkLoad(memStore(), entries, Options{HeadCapacity: 64, Ratio: 4})
	if err != nil {
		t.Fatal(err)
	}
	point, _, err := tr.Search(1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(point) != dups {
		t.Fatalf("Search(1000) = %d refs, want %d", len(point), dups)
	}
	rng, _, err := tr.RangeScan(1000, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rng) != dups {
		t.Fatalf("RangeScan(1000,1000) = %d refs, want %d (disagrees with Search)", len(rng), dups)
	}
	// A range starting inside the duplicate block behaves the same.
	rng2, _, err := tr.RangeScan(1000, 1005)
	if err != nil {
		t.Fatal(err)
	}
	if len(rng2) != dups+5 {
		t.Fatalf("RangeScan(1000,1005) = %d refs, want %d", len(rng2), dups+5)
	}
}
