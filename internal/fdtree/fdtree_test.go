package fdtree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bftree/internal/bptree"
	"bftree/internal/device"
	"bftree/internal/pagestore"
)

func memStore() *pagestore.Store {
	return pagestore.New(device.New(device.Memory, 4096))
}

func seqEntries(n int) []bptree.Entry {
	out := make([]bptree.Entry, n)
	for i := range out {
		out[i] = bptree.Entry{Key: uint64(i), Ref: bptree.TupleRef{Page: device.PageID(i / 15), Slot: uint16(i % 15)}}
	}
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New(memStore(), Options{HeadCapacity: 2}); err == nil {
		t.Error("tiny head accepted")
	}
	if _, err := New(memStore(), Options{Ratio: 1}); err == nil {
		t.Error("ratio 1 accepted")
	}
	tr, err := New(memStore(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.headCap != defaultHeadCap || tr.ratio != defaultRatio {
		t.Error("defaults not applied")
	}
}

func TestBulkLoadSearch(t *testing.T) {
	entries := seqEntries(100000)
	tr, err := BulkLoad(memStore(), entries, Options{HeadCapacity: 256, Ratio: 4})
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumRecords() != 100000 {
		t.Fatalf("records = %d", tr.NumRecords())
	}
	if tr.Levels() < 2 {
		t.Errorf("levels = %d, want multi-level", tr.Levels())
	}
	for _, key := range []uint64{0, 1, 777, 50000, 99999} {
		refs, stats, err := tr.Search(key)
		if err != nil {
			t.Fatal(err)
		}
		if len(refs) != 1 {
			t.Fatalf("key %d: %d refs", key, len(refs))
		}
		if refs[0] != entries[key].Ref {
			t.Fatalf("key %d: wrong ref", key)
		}
		// One page read per on-device level.
		if stats.PagesRead > tr.Levels() {
			t.Errorf("key %d: %d reads > %d levels", key, stats.PagesRead, tr.Levels())
		}
	}
}

func TestSearchMiss(t *testing.T) {
	tr, err := BulkLoad(memStore(), seqEntries(10000), Options{HeadCapacity: 128, Ratio: 4})
	if err != nil {
		t.Fatal(err)
	}
	refs, _, err := tr.Search(999999)
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 0 {
		t.Error("absent key matched")
	}
}

func TestBulkLoadValidation(t *testing.T) {
	if _, err := BulkLoad(memStore(), nil, Options{}); err == nil {
		t.Error("empty bulk load accepted")
	}
	bad := []bptree.Entry{{Key: 5}, {Key: 1}}
	if _, err := BulkLoad(memStore(), bad, Options{}); err == nil {
		t.Error("unsorted entries accepted")
	}
}

func TestInsertAndCascade(t *testing.T) {
	tr, err := New(memStore(), Options{HeadCapacity: 64, Ratio: 4})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	inserted := make(map[uint64]bptree.TupleRef)
	for i := 0; i < 3000; i++ {
		k := uint64(rng.Intn(1000000))
		for _, dup := range []bool{inserted[k] != (bptree.TupleRef{})} {
			if dup {
				k++
			}
		}
		ref := bptree.TupleRef{Page: device.PageID(i + 1), Slot: uint16(i % 9)}
		if err := tr.Insert(k, ref); err != nil {
			t.Fatal(err)
		}
		inserted[k] = ref
	}
	if tr.Levels() == 0 {
		t.Error("inserts should have spilled to device levels")
	}
	checked := 0
	for k, ref := range inserted {
		refs, _, err := tr.Search(k)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, r := range refs {
			if r == ref {
				found = true
			}
		}
		if !found {
			t.Fatalf("key %d lost after cascading merges", k)
		}
		checked++
		if checked >= 500 {
			break
		}
	}
}

func TestDuplicateKeys(t *testing.T) {
	tr, err := New(memStore(), Options{HeadCapacity: 64, Ratio: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := tr.Insert(42, bptree.TupleRef{Page: device.PageID(i), Slot: 0}); err != nil {
			t.Fatal(err)
		}
	}
	refs, _, err := tr.Search(42)
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 10 {
		t.Errorf("duplicates: %d of 10", len(refs))
	}
}

func TestLevelGrowth(t *testing.T) {
	tr, err := New(memStore(), Options{HeadCapacity: 32, Ratio: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if err := tr.Insert(uint64(i*7%100000), bptree.TupleRef{Page: device.PageID(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Level sizes respect the logarithmic ratio: each level's capacity
	// is ratio times the previous.
	if tr.levelCapacity(2) != tr.levelCapacity(1)*2 {
		t.Error("level capacities must follow the ratio")
	}
	if tr.Levels() < 3 {
		t.Errorf("expected ≥3 levels after 2000 inserts at head 32, got %d", tr.Levels())
	}
}

func TestSizeBytes(t *testing.T) {
	tr, err := BulkLoad(memStore(), seqEntries(50000), Options{HeadCapacity: 256, Ratio: 4})
	if err != nil {
		t.Fatal(err)
	}
	if tr.SizeBytes() == 0 {
		t.Error("bulk-loaded tree should have on-device pages")
	}
}

func TestRunPageRoundTrip(t *testing.T) {
	buf := make([]byte, 4096)
	in := []entry{
		{key: 0, kind: kindFence, next: 99},
		{key: 5, kind: kindRecord, ref: bptree.TupleRef{Page: 7, Slot: 3}},
	}
	encodeRunPage(buf, in)
	out, err := decodeRunPage(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].next != 99 || out[1].ref.Page != 7 || out[1].ref.Slot != 3 {
		t.Fatalf("round trip: %+v", out)
	}
	if _, err := decodeRunPage(make([]byte, 64)); err == nil {
		t.Error("zero page decoded")
	}
}

// Property: FD-Tree search agrees with a reference map across random
// insert batches.
func TestQuickMatchesReference(t *testing.T) {
	tr, err := New(memStore(), Options{HeadCapacity: 32, Ratio: 2})
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[uint64]int)
	prop := func(raw uint16) bool {
		k := uint64(raw % 300)
		if err := tr.Insert(k, bptree.TupleRef{Page: device.PageID(counts[k])}); err != nil {
			return false
		}
		counts[k]++
		refs, _, err := tr.Search(k)
		return err == nil && len(refs) == counts[k]
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 600}); err != nil {
		t.Fatal(err)
	}
}

// TestSearchDuplicatesStraddlingPageBoundary pins the straddle fix:
// duplicates of one key split across a run-page boundary must all be
// found. Fence routing is rightmost-biased — it lands on the page that
// *starts* with the key — so without the leftward page walk the records
// at the tail of the preceding page were silently dropped (the flake
// TestQuickMatchesReference used to hit).
func TestSearchDuplicatesStraddlingPageBoundary(t *testing.T) {
	store := memStore()
	per := entriesPerPage(store.PageSize())
	// 210 singleton keys, then 20 duplicates of key 210 positioned so
	// the page boundary at `per` entries falls inside the group, then
	// more singletons to give the run several pages.
	const dupKey, dups = uint64(210), 20
	var entries []bptree.Entry
	for k := uint64(0); k < dupKey; k++ {
		entries = append(entries, bptree.Entry{Key: k, Ref: bptree.TupleRef{Page: device.PageID(k)}})
	}
	for d := 0; d < dups; d++ {
		entries = append(entries, bptree.Entry{Key: dupKey, Ref: bptree.TupleRef{Page: device.PageID(1000 + d)}})
	}
	for k := dupKey + 1; k < dupKey+100; k++ {
		entries = append(entries, bptree.Entry{Key: k, Ref: bptree.TupleRef{Page: device.PageID(k)}})
	}
	if len(entries) <= per || int(dupKey)+dups <= per {
		t.Fatalf("fixture does not straddle: %d entries, %d per page", len(entries), per)
	}
	tr, err := BulkLoad(store, entries, Options{HeadCapacity: 32, Ratio: 2})
	if err != nil {
		t.Fatal(err)
	}
	refs, stats, err := tr.Search(dupKey)
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != dups {
		t.Fatalf("found %d of %d duplicates straddling the page boundary", len(refs), dups)
	}
	seen := make(map[device.PageID]bool)
	for _, r := range refs {
		if r.Page < 1000 || r.Page >= 1000+dups || seen[r.Page] {
			t.Fatalf("wrong or duplicated ref %v", r)
		}
		seen[r.Page] = true
	}
	if stats.PagesRead == 0 {
		t.Fatal("no pages read")
	}
	// Non-straddling keys are unaffected.
	for _, k := range []uint64{0, 107, 250} {
		refs, _, err := tr.Search(k)
		if err != nil || len(refs) != 1 {
			t.Fatalf("key %d: %d refs, err %v", k, len(refs), err)
		}
	}
}
