package bptree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"bftree/internal/device"
	"bftree/internal/pagestore"
)

func memStore(pageSize int) *pagestore.Store {
	return pagestore.New(device.New(device.Memory, pageSize))
}

func seqEntries(n int) []Entry {
	out := make([]Entry, n)
	for i := range out {
		out[i] = Entry{Key: uint64(i), Ref: TupleRef{Page: device.PageID(i / 15), Slot: uint16(i % 15)}}
	}
	return out
}

func TestCapacities(t *testing.T) {
	// 4096: leaf (4096-11)/18 = 226, internal (4096-11)/16+1 = 256.
	if c := LeafCapacity(4096); c != 226 {
		t.Errorf("LeafCapacity(4096) = %d, want 226", c)
	}
	if c := InternalCapacity(4096); c != 256 {
		t.Errorf("InternalCapacity(4096) = %d, want 256 (Equation 2)", c)
	}
}

func TestBulkLoadAndSearch(t *testing.T) {
	store := memStore(4096)
	entries := seqEntries(100000)
	tr, err := BulkLoad(store, entries, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumEntries() != 100000 {
		t.Fatalf("entries = %d", tr.NumEntries())
	}
	// 100000/226 = 443 leaves, 2 internal levels → height 3.
	if tr.Height() != 3 {
		t.Errorf("height = %d, want 3", tr.Height())
	}
	for _, probe := range []uint64{0, 1, 225, 226, 4999, 99999} {
		refs, err := tr.Search(probe)
		if err != nil {
			t.Fatal(err)
		}
		if len(refs) != 1 {
			t.Fatalf("key %d: %d refs", probe, len(refs))
		}
		want := entries[probe].Ref
		if refs[0] != want {
			t.Fatalf("key %d: ref %+v, want %+v", probe, refs[0], want)
		}
	}
	// Absent keys.
	if refs, _ := tr.Search(200000); len(refs) != 0 {
		t.Error("absent key matched")
	}
}

func TestBulkLoadValidation(t *testing.T) {
	store := memStore(4096)
	if _, err := BulkLoad(store, nil, 1.0); err == nil {
		t.Error("empty bulk load should fail")
	}
	if _, err := BulkLoad(store, seqEntries(10), 0); err == nil {
		t.Error("zero fill factor should fail")
	}
	if _, err := BulkLoad(store, seqEntries(10), 1.5); err == nil {
		t.Error("fill factor > 1 should fail")
	}
	unsorted := []Entry{{Key: 5}, {Key: 3}}
	if _, err := BulkLoad(store, unsorted, 1.0); err == nil {
		t.Error("unsorted entries should fail")
	}
}

func TestSingleLeafTree(t *testing.T) {
	tr, err := BulkLoad(memStore(4096), seqEntries(10), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Height() != 1 {
		t.Errorf("height = %d, want 1", tr.Height())
	}
	refs, err := tr.Search(5)
	if err != nil || len(refs) != 1 {
		t.Fatal("search in single-leaf tree failed")
	}
	pages, err := tr.InternalPages()
	if err != nil {
		t.Fatal(err)
	}
	if len(pages) != 0 {
		t.Error("single-leaf tree has no internal pages")
	}
}

func TestDuplicateKeysAcrossLeaves(t *testing.T) {
	// One key repeated more than a leaf's capacity forces duplicates to
	// spill across leaves; Search must chase the next pointers.
	var entries []Entry
	for i := 0; i < 500; i++ {
		entries = append(entries, Entry{Key: 7, Ref: TupleRef{Page: device.PageID(i), Slot: 0}})
	}
	for i := 0; i < 100; i++ {
		entries = append(entries, Entry{Key: 9 + uint64(i), Ref: TupleRef{Page: 1000, Slot: uint16(i)}})
	}
	tr, err := BulkLoad(memStore(4096), entries, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	refs, err := tr.Search(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 500 {
		t.Fatalf("duplicate search found %d of 500", len(refs))
	}
}

func TestRangeScan(t *testing.T) {
	tr, err := BulkLoad(memStore(4096), seqEntries(10000), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	refs, err := tr.RangeScan(100, 199)
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 100 {
		t.Fatalf("range scan returned %d, want 100", len(refs))
	}
	// Range past the end.
	refs, err = tr.RangeScan(9990, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 10 {
		t.Fatalf("tail range returned %d, want 10", len(refs))
	}
	// Empty range between keys.
	if _, err := tr.RangeScan(10, 5); err == nil {
		t.Error("inverted range should fail")
	}
}

func TestFillFactor(t *testing.T) {
	full, err := BulkLoad(memStore(4096), seqEntries(10000), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	half, err := BulkLoad(memStore(4096), seqEntries(10000), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if half.NumLeaves() <= full.NumLeaves() {
		t.Errorf("half-full tree should have more leaves: %d vs %d", half.NumLeaves(), full.NumLeaves())
	}
}

func TestInsertIntoBulkLoaded(t *testing.T) {
	store := memStore(4096)
	// Even keys bulk-loaded, odd keys inserted.
	var entries []Entry
	for i := 0; i < 20000; i += 2 {
		entries = append(entries, Entry{Key: uint64(i), Ref: TupleRef{Page: device.PageID(i), Slot: 1}})
	}
	tr, err := BulkLoad(store, entries, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 20000; i += 2 {
		if err := tr.Insert(Entry{Key: uint64(i), Ref: TupleRef{Page: device.PageID(i), Slot: 2}}); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if tr.NumEntries() != 20000 {
		t.Fatalf("entries = %d", tr.NumEntries())
	}
	for i := 0; i < 20000; i++ {
		refs, err := tr.Search(uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		if len(refs) != 1 {
			t.Fatalf("key %d: %d refs", i, len(refs))
		}
		wantSlot := uint16(1 + i%2)
		if refs[0].Slot != wantSlot {
			t.Fatalf("key %d: slot %d, want %d", i, refs[0].Slot, wantSlot)
		}
	}
}

func TestInsertGrowsFromSingleLeaf(t *testing.T) {
	store := memStore(512) // tiny pages force early splits
	tr, err := BulkLoad(store, seqEntries(5), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	inserted := map[uint64]bool{0: true, 1: true, 2: true, 3: true, 4: true}
	for i := 0; i < 5000; i++ {
		k := uint64(rng.Intn(100000))
		for inserted[k] {
			k++
		}
		inserted[k] = true
		if err := tr.Insert(Entry{Key: k, Ref: TupleRef{Page: device.PageID(k), Slot: 3}}); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Height() < 3 {
		t.Errorf("tree should have grown, height = %d", tr.Height())
	}
	for k := range inserted {
		refs, err := tr.Search(k)
		if err != nil {
			t.Fatal(err)
		}
		if len(refs) != 1 {
			t.Fatalf("key %d lost after splits: %d refs", k, len(refs))
		}
	}
	// Keys() must yield everything in order.
	var keys []uint64
	tr.Keys(func(e Entry) bool {
		keys = append(keys, e.Key)
		return true
	})
	if len(keys) != len(inserted) {
		t.Fatalf("Keys yielded %d, want %d", len(keys), len(inserted))
	}
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Error("leaf chain out of order after splits")
	}
}

func TestKeysEarlyStop(t *testing.T) {
	tr, err := BulkLoad(memStore(4096), seqEntries(1000), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	tr.Keys(func(Entry) bool {
		count++
		return count < 7
	})
	if count != 7 {
		t.Errorf("early stop at %d, want 7", count)
	}
}

func TestInternalPagesForWarming(t *testing.T) {
	tr, err := BulkLoad(memStore(4096), seqEntries(100000), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	pages, err := tr.InternalPages()
	if err != nil {
		t.Fatal(err)
	}
	wantInternal := tr.NumNodes() - tr.NumLeaves()
	if uint64(len(pages)) != wantInternal {
		t.Errorf("internal pages = %d, want %d", len(pages), wantInternal)
	}
}

func TestSizeAccounting(t *testing.T) {
	tr, err := BulkLoad(memStore(4096), seqEntries(100000), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.SizeBytes() != tr.NumNodes()*4096 {
		t.Error("SizeBytes mismatch")
	}
	// Compressed estimate must be much smaller for wide keys: the paper's
	// Figure 4(b) shows ≈10 % for 32-byte keys.
	comp := tr.CompressedSizeBytes(32, 8, 2)
	full := tr.NumEntries() * (32 + 8) // notional uncompressed leaf bytes
	if comp >= full {
		t.Errorf("compressed size %d should undercut uncompressed %d", comp, full)
	}
}

func TestNodeRoundTrip(t *testing.T) {
	buf := make([]byte, 4096)
	leaf := &leafNode{
		next:    77,
		entries: []Entry{{Key: 1, Ref: TupleRef{Page: 2, Slot: 3}}, {Key: 9, Ref: TupleRef{Page: 8, Slot: 7}}},
	}
	if err := encodeLeaf(buf, leaf); err != nil {
		t.Fatal(err)
	}
	back, err := decodeLeaf(buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.next != 77 || len(back.entries) != 2 || back.entries[1].Ref.Page != 8 {
		t.Errorf("leaf round trip: %+v", back)
	}
	in := &internalNode{keys: []uint64{10, 20}, children: []device.PageID{1, 2, 3}}
	if err := encodeInternal(buf, in); err != nil {
		t.Fatal(err)
	}
	backIn, err := decodeInternal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(backIn.keys) != 2 || backIn.children[2] != 3 {
		t.Errorf("internal round trip: %+v", backIn)
	}
}

func TestNodeCorruption(t *testing.T) {
	buf := make([]byte, 64)
	if _, err := decodeLeaf(buf); err == nil {
		t.Error("zero page should not decode as leaf")
	}
	if _, err := decodeInternal(buf); err == nil {
		t.Error("zero page should not decode as internal")
	}
	if _, err := nodeKind(buf); err == nil {
		t.Error("unknown kind should fail")
	}
	if _, err := nodeKind(buf[:1]); err == nil {
		t.Error("short page should fail")
	}
	// Mismatched children count.
	bad := &internalNode{keys: []uint64{1}, children: []device.PageID{1}}
	if err := encodeInternal(buf, bad); err == nil {
		t.Error("internal node with wrong child count should fail to encode")
	}
	// Overflow.
	huge := &leafNode{entries: make([]Entry, 1000)}
	if err := encodeLeaf(buf, huge); err == nil {
		t.Error("oversized leaf should fail to encode")
	}
}

// Property: bulk load + search agree with a map for random multisets.
func TestQuickSearchMatchesReference(t *testing.T) {
	prop := func(rawKeys []uint16) bool {
		if len(rawKeys) == 0 {
			return true
		}
		entries := make([]Entry, len(rawKeys))
		counts := make(map[uint64]int)
		for i, rk := range rawKeys {
			k := uint64(rk % 500)
			entries[i] = Entry{Key: k, Ref: TupleRef{Page: device.PageID(i), Slot: 0}}
			counts[k]++
		}
		sort.Slice(entries, func(i, j int) bool { return entries[i].Key < entries[j].Key })
		tr, err := BulkLoad(memStore(512), entries, 1.0)
		if err != nil {
			return false
		}
		for k, want := range counts {
			refs, err := tr.Search(k)
			if err != nil || len(refs) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: range scans agree with filtering the sorted entry list.
func TestQuickRangeScanMatchesReference(t *testing.T) {
	entries := seqEntries(3000)
	tr, err := BulkLoad(memStore(1024), entries, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(a, b uint16) bool {
		lo, hi := uint64(a%3500), uint64(b%3500)
		if lo > hi {
			lo, hi = hi, lo
		}
		refs, err := tr.RangeScan(lo, hi)
		if err != nil {
			return false
		}
		want := 0
		for k := lo; k <= hi && k < 3000; k++ {
			want++
		}
		return len(refs) == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
