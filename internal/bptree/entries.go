package bptree

import (
	"bftree/internal/device"
	"bftree/internal/heapfile"
)

// PKEntries extracts one (key, ref) entry per tuple of file — the
// per-tuple layout of a primary-key or exact secondary index. Every
// exact baseline (B+-Tree, hash, FD-Tree) builds from these.
func PKEntries(file *heapfile.File, fieldIdx int) ([]Entry, error) {
	entries := make([]Entry, 0, file.NumTuples())
	err := file.Scan(func(pid device.PageID, slot int, tup []byte) bool {
		entries = append(entries, Entry{
			Key: file.Schema().Get(tup, fieldIdx),
			Ref: TupleRef{Page: pid, Slot: uint16(slot)},
		})
		return true
	})
	if err != nil {
		return nil, err
	}
	return entries, nil
}

// DedupEntries returns one entry per distinct key — its first occurrence
// in file order. This is the baseline layout the paper uses for ordered
// non-unique attributes: Equation 3 stores each key once (keysize/avgcard
// per tuple), and Table 2's ATT1 column (1748 pages vs 19296 for the PK)
// matches only a deduplicated index. Probing it requires the ordered
// scan from the first occurrence (duplicates carry no entries of their
// own).
func DedupEntries(file *heapfile.File, fieldIdx int) ([]Entry, error) {
	var entries []Entry
	var last uint64
	have := false
	err := file.Scan(func(pid device.PageID, slot int, tup []byte) bool {
		k := file.Schema().Get(tup, fieldIdx)
		if !have || k != last {
			entries = append(entries, Entry{
				Key: k,
				Ref: TupleRef{Page: pid, Slot: uint16(slot)},
			})
			last = k
			have = true
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	return entries, nil
}
