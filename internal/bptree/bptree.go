package bptree

import (
	"fmt"
	"sort"

	"bftree/internal/device"
	"bftree/internal/pagestore"
)

// Tree is a disk-resident B+-Tree over a page store. Keys are uint64 and
// may repeat (non-unique secondary indexes hold one entry per tuple).
type Tree struct {
	store     *pagestore.Store
	root      device.PageID
	height    int // number of levels, leaves included
	firstLeaf device.PageID
	numLeaves uint64
	numNodes  uint64
	numEntry  uint64
	leafCap   int
	branchCap int
}

// BulkLoad builds a tree from entries sorted by key (ties in any order).
// It packs leaves to fillFactor (0 < fillFactor <= 1, e.g. 1.0 for the
// paper's read-only experiments) and builds the internal levels bottom-up,
// one pass over the leaves, exactly as Section 4.2 describes for trees in
// this family.
func BulkLoad(store *pagestore.Store, entries []Entry, fillFactor float64) (*Tree, error) {
	if len(entries) == 0 {
		return nil, fmt.Errorf("bptree: bulk load of zero entries")
	}
	if fillFactor <= 0 || fillFactor > 1 {
		return nil, fmt.Errorf("bptree: fill factor %g out of (0,1]", fillFactor)
	}
	for i := 1; i < len(entries); i++ {
		if entries[i].Key < entries[i-1].Key {
			return nil, fmt.Errorf("bptree: entries not sorted at %d", i)
		}
	}
	t := &Tree{
		store:     store,
		leafCap:   LeafCapacity(store.PageSize()),
		branchCap: InternalCapacity(store.PageSize()),
	}
	perLeaf := int(float64(t.leafCap) * fillFactor)
	if perLeaf < 1 {
		perLeaf = 1
	}

	// Level 0: pack leaves into consecutive pages so the next pointers
	// can be assigned before writing.
	numLeaves := (len(entries) + perLeaf - 1) / perLeaf
	firstLeaf := store.Allocate(numLeaves)
	buf := make([]byte, store.PageSize())
	type childRef struct {
		minKey uint64
		pid    device.PageID
	}
	level := make([]childRef, 0, numLeaves)
	for i := 0; i < numLeaves; i++ {
		lo := i * perLeaf
		hi := lo + perLeaf
		if hi > len(entries) {
			hi = len(entries)
		}
		next := device.InvalidPage
		if i < numLeaves-1 {
			next = firstLeaf + device.PageID(i) + 1
		}
		n := &leafNode{next: next, entries: entries[lo:hi]}
		if err := encodeLeaf(buf, n); err != nil {
			return nil, err
		}
		pid := firstLeaf + device.PageID(i)
		if err := store.WritePage(pid, buf); err != nil {
			return nil, err
		}
		level = append(level, childRef{minKey: entries[lo].Key, pid: pid})
	}
	t.firstLeaf = firstLeaf
	t.numLeaves = uint64(numLeaves)
	t.numNodes = uint64(numLeaves)
	t.numEntry = uint64(len(entries))
	t.height = 1

	// Build internal levels until a single root remains.
	for len(level) > 1 {
		perNode := t.branchCap
		numNodes := (len(level) + perNode - 1) / perNode
		first := store.Allocate(numNodes)
		nextLevel := make([]childRef, 0, numNodes)
		for i := 0; i < numNodes; i++ {
			lo := i * perNode
			hi := lo + perNode
			if hi > len(level) {
				hi = len(level)
			}
			group := level[lo:hi]
			n := &internalNode{
				keys:     make([]uint64, len(group)-1),
				children: make([]device.PageID, len(group)),
			}
			for j, c := range group {
				n.children[j] = c.pid
				if j > 0 {
					n.keys[j-1] = c.minKey
				}
			}
			if err := encodeInternal(buf, n); err != nil {
				return nil, err
			}
			pid := first + device.PageID(i)
			if err := store.WritePage(pid, buf); err != nil {
				return nil, err
			}
			nextLevel = append(nextLevel, childRef{minKey: group[0].minKey, pid: pid})
		}
		level = nextLevel
		t.numNodes += uint64(numNodes)
		t.height++
	}
	t.root = level[0].pid
	return t, nil
}

// Store returns the underlying page store.
func (t *Tree) Store() *pagestore.Store { return t.store }

// Height returns the number of levels including the leaf level
// (Equation 4 of the paper).
func (t *Tree) Height() int { return t.height }

// NumLeaves returns the leaf count (Equation 3).
func (t *Tree) NumLeaves() uint64 { return t.numLeaves }

// NumNodes returns the total node count; size in bytes is
// NumNodes × page size (Equation 9).
func (t *Tree) NumNodes() uint64 { return t.numNodes }

// NumEntries returns the number of indexed entries.
func (t *Tree) NumEntries() uint64 { return t.numEntry }

// SizeBytes returns the index footprint in bytes.
func (t *Tree) SizeBytes() uint64 { return t.numNodes * uint64(t.store.PageSize()) }

// Root returns the root page id.
func (t *Tree) Root() device.PageID { return t.root }

// InternalPages returns the ids of all non-leaf pages, for warming the
// buffer cache in warm-cache experiments.
func (t *Tree) InternalPages() ([]device.PageID, error) {
	var out []device.PageID
	var walk func(pid device.PageID, depth int) error
	walk = func(pid device.PageID, depth int) error {
		if depth == t.height-1 {
			return nil // leaf level
		}
		out = append(out, pid)
		buf, err := t.store.ReadPage(pid)
		if err != nil {
			return err
		}
		n, err := decodeInternal(buf)
		if err != nil {
			return err
		}
		for _, c := range n.children {
			if err := walk(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if t.height == 1 {
		return nil, nil
	}
	if err := walk(t.root, 0); err != nil {
		return nil, err
	}
	return out, nil
}

// descend walks from the root to the leaf that may contain key,
// returning the leaf, its page id, and the pages read on the way down.
func (t *Tree) descend(key uint64) (*leafNode, device.PageID, int, error) {
	pid := t.root
	reads := 0
	for {
		buf, err := t.store.ReadPage(pid)
		if err != nil {
			return nil, 0, reads, err
		}
		reads++
		kind, err := nodeKind(buf)
		if err != nil {
			return nil, 0, reads, err
		}
		if kind == nodeLeaf {
			n, err := decodeLeaf(buf)
			if err != nil {
				return nil, 0, reads, err
			}
			return n, pid, reads, nil
		}
		n, err := decodeInternal(buf)
		if err != nil {
			return nil, 0, reads, err
		}
		// Leftmost descent: when key equals a separator the left subtree
		// may still hold equal keys (non-unique indexes), so route left
		// and let the leaf chain carry the search forward.
		i := sort.Search(len(n.keys), func(i int) bool { return key <= n.keys[i] })
		pid = n.children[i]
	}
}

// Search returns the tuple references of every entry with the given key.
// For non-unique indexes duplicates may spill into following leaves,
// which are chased through the next pointers.
func (t *Tree) Search(key uint64) ([]TupleRef, error) {
	refs, _, err := t.SearchStats(key)
	return refs, err
}

// SearchStats is Search with cost accounting: it also reports the index
// pages read by the probe (descent plus leaf-chain chasing).
func (t *Tree) SearchStats(key uint64) ([]TupleRef, int, error) {
	leaf, _, reads, err := t.descend(key)
	if err != nil {
		return nil, reads, err
	}
	var out []TupleRef
	for {
		i := sort.Search(len(leaf.entries), func(i int) bool { return leaf.entries[i].Key >= key })
		for ; i < len(leaf.entries) && leaf.entries[i].Key == key; i++ {
			out = append(out, leaf.entries[i].Ref)
		}
		// If the scan ran off the end of the leaf the key may continue.
		if i < len(leaf.entries) || leaf.next == device.InvalidPage {
			return out, reads, nil
		}
		buf, err := t.store.ReadPage(leaf.next)
		if err != nil {
			return nil, reads, err
		}
		reads++
		leaf, err = decodeLeaf(buf)
		if err != nil {
			return nil, reads, err
		}
		if len(leaf.entries) == 0 || leaf.entries[0].Key != key {
			return out, reads, nil
		}
	}
}

// RangeScan returns the tuple references of every entry with key in
// [lo, hi], in key order.
func (t *Tree) RangeScan(lo, hi uint64) ([]TupleRef, error) {
	refs, _, err := t.RangeScanStats(lo, hi)
	return refs, err
}

// RangeScanStats is RangeScan with cost accounting: it also reports the
// index pages read (descent plus the leaf chain covering the range). It
// is exactly Scan drained to a slice.
func (t *Tree) RangeScanStats(lo, hi uint64) ([]TupleRef, int, error) {
	c, err := t.Scan(lo, hi)
	if err != nil {
		return nil, 0, err
	}
	var out []TupleRef
	for c.Next() {
		out = append(out, c.Entry().Ref)
	}
	reads := c.Reads()
	if err := c.Err(); err != nil {
		return nil, reads, err
	}
	return out, reads, nil
}

// Insert adds an entry, splitting nodes as needed. The implementation
// reads the root-to-leaf path, inserts into the leaf and splits upwards;
// the root splits by allocating a new root, growing the height.
func (t *Tree) Insert(e Entry) error {
	type frame struct {
		pid  device.PageID
		node *internalNode
		slot int
	}
	// Collect the descent path.
	var path []frame
	pid := t.root
	var leaf *leafNode
	for {
		buf, err := t.store.ReadPage(pid)
		if err != nil {
			return err
		}
		kind, err := nodeKind(buf)
		if err != nil {
			return err
		}
		if kind == nodeLeaf {
			leaf, err = decodeLeaf(buf)
			if err != nil {
				return err
			}
			break
		}
		n, err := decodeInternal(buf)
		if err != nil {
			return err
		}
		i := sort.Search(len(n.keys), func(i int) bool { return e.Key < n.keys[i] })
		path = append(path, frame{pid: pid, node: n, slot: i})
		pid = n.children[i]
	}

	// Insert into the leaf in key order.
	i := sort.Search(len(leaf.entries), func(i int) bool { return leaf.entries[i].Key > e.Key })
	leaf.entries = append(leaf.entries, Entry{})
	copy(leaf.entries[i+1:], leaf.entries[i:])
	leaf.entries[i] = e
	t.numEntry++

	buf := make([]byte, t.store.PageSize())
	if len(leaf.entries) <= t.leafCap {
		if err := encodeLeaf(buf, leaf); err != nil {
			return err
		}
		return t.store.WritePage(pid, buf)
	}

	// Leaf split: left keeps the low half, right gets the rest.
	mid := len(leaf.entries) / 2
	rightPid := t.store.Allocate(1)
	right := &leafNode{next: leaf.next, entries: append([]Entry(nil), leaf.entries[mid:]...)}
	left := &leafNode{next: rightPid, entries: leaf.entries[:mid]}
	if err := encodeLeaf(buf, left); err != nil {
		return err
	}
	if err := t.store.WritePage(pid, buf); err != nil {
		return err
	}
	if err := encodeLeaf(buf, right); err != nil {
		return err
	}
	if err := t.store.WritePage(rightPid, buf); err != nil {
		return err
	}
	t.numLeaves++
	t.numNodes++

	// Propagate the separator upward.
	sepKey := right.entries[0].Key
	newChild := rightPid
	for level := len(path) - 1; level >= 0; level-- {
		f := path[level]
		n := f.node
		// Insert sepKey/newChild after slot f.slot.
		n.keys = append(n.keys, 0)
		copy(n.keys[f.slot+1:], n.keys[f.slot:])
		n.keys[f.slot] = sepKey
		n.children = append(n.children, 0)
		copy(n.children[f.slot+2:], n.children[f.slot+1:])
		n.children[f.slot+1] = newChild
		if len(n.children) <= t.branchCap {
			if err := encodeInternal(buf, n); err != nil {
				return err
			}
			return t.store.WritePage(f.pid, buf)
		}
		// Split the internal node; the middle key moves up.
		midk := len(n.keys) / 2
		upKey := n.keys[midk]
		rightNode := &internalNode{
			keys:     append([]uint64(nil), n.keys[midk+1:]...),
			children: append([]device.PageID(nil), n.children[midk+1:]...),
		}
		n.keys = n.keys[:midk]
		n.children = n.children[:midk+1]
		rightPid := t.store.Allocate(1)
		if err := encodeInternal(buf, n); err != nil {
			return err
		}
		if err := t.store.WritePage(f.pid, buf); err != nil {
			return err
		}
		if err := encodeInternal(buf, rightNode); err != nil {
			return err
		}
		if err := t.store.WritePage(rightPid, buf); err != nil {
			return err
		}
		t.numNodes++
		sepKey = upKey
		newChild = rightPid
	}

	// The root itself split: grow the tree.
	newRoot := &internalNode{
		keys:     []uint64{sepKey},
		children: []device.PageID{t.root, newChild},
	}
	rootPid := t.store.Allocate(1)
	if err := encodeInternal(buf, newRoot); err != nil {
		return err
	}
	if err := t.store.WritePage(rootPid, buf); err != nil {
		return err
	}
	t.root = rootPid
	t.height++
	t.numNodes++
	return nil
}

// Keys iterates all keys in order via the leaf chain, calling fn for each
// entry; iteration stops early if fn returns false.
func (t *Tree) Keys(fn func(Entry) bool) error {
	pid := t.firstLeaf
	for pid != device.InvalidPage {
		buf, err := t.store.ReadPage(pid)
		if err != nil {
			return err
		}
		leaf, err := decodeLeaf(buf)
		if err != nil {
			return err
		}
		for _, e := range leaf.entries {
			if !fn(e) {
				return nil
			}
		}
		pid = leaf.next
	}
	return nil
}

// CompressedSizeBytes estimates the footprint of this tree under
// key-prefix compression (Bayer & Unterauer, cited by the paper for the
// compressed B+-Tree line of Figure 4b): leaf keys shrink to
// compressedKeyBytes, internal nodes are rebuilt with the corresponding
// fanout. The paper's Figure 4(b) uses ≈10 % of the vanilla size; with
// 32-byte keys compressing to ~2-3 bytes this estimate reproduces that.
func (t *Tree) CompressedSizeBytes(keySize, ptrSize, compressedKeyBytes int) uint64 {
	if compressedKeyBytes < 1 {
		compressedKeyBytes = 1
	}
	pageSize := t.store.PageSize()
	entrySize := compressedKeyBytes + ptrSize
	perLeaf := pageSize / entrySize
	leaves := (t.numEntry + uint64(perLeaf) - 1) / uint64(perLeaf)
	fanout := pageSize / (compressedKeyBytes + ptrSize)
	nodes := leaves
	level := leaves
	for level > 1 {
		level = (level + uint64(fanout) - 1) / uint64(fanout)
		nodes += level
	}
	return nodes * uint64(pageSize)
}
