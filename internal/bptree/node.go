// Package bptree implements the disk-resident B+-Tree baseline of the
// paper's evaluation: a classic tree with <key, pointer> internal nodes
// (Equation 2 fanout) and leaf nodes holding one entry per indexed tuple.
// It supports bulk loading, point search, range scans and inserts with
// node splits, and reports the size and height figures the paper compares
// BF-Trees against (Equations 3, 4 and 9).
package bptree

import (
	"encoding/binary"
	"errors"
	"fmt"

	"bftree/internal/device"
)

// ErrCorrupt reports an invalid serialized node.
var ErrCorrupt = errors.New("bptree: corrupt node")

// TupleRef locates one tuple: its data page and slot within the page.
type TupleRef struct {
	Page device.PageID
	Slot uint16
}

// Entry is one leaf entry: an indexed key and the tuple it points to.
type Entry struct {
	Key uint64
	Ref TupleRef
}

// Node kinds on disk.
const (
	nodeLeaf     = byte(1)
	nodeInternal = byte(2)
)

// Serialized layout (little-endian):
//
//	byte 0      kind
//	bytes 1-2   count (uint16)
//	leaf:       bytes 3-10 next-leaf pid; entries of 18 bytes
//	            (key 8, page 8, slot 2) follow
//	internal:   keys (8 bytes each) then count+1 children (8 bytes each)
const (
	nodeHeaderSize = 3
	leafHeaderSize = nodeHeaderSize + 8
	leafEntrySize  = 18
	branchPairSize = 16 // one key + one child pointer
)

// LeafCapacity returns the number of entries a leaf page holds.
func LeafCapacity(pageSize int) int {
	return (pageSize - leafHeaderSize) / leafEntrySize
}

// InternalCapacity returns the fanout of an internal page: the maximum
// number of children. This matches Equation 2 of the paper,
// fanout = pagesize/(ptrsize+keysize), up to header rounding.
func InternalCapacity(pageSize int) int {
	// count keys + (count+1) children: solve 3 + 8k + 8(k+1) <= pageSize.
	return (pageSize-nodeHeaderSize-8)/branchPairSize + 1
}

// leafNode is the in-memory form of a leaf page.
type leafNode struct {
	next    device.PageID
	entries []Entry
}

// internalNode is the in-memory form of an internal page. It has
// len(keys)+1 children; child[i] covers keys < keys[i], the last child
// covers the rest.
type internalNode struct {
	keys     []uint64
	children []device.PageID
}

func encodeLeaf(buf []byte, n *leafNode) error {
	need := leafHeaderSize + len(n.entries)*leafEntrySize
	if need > len(buf) {
		return fmt.Errorf("%w: leaf with %d entries needs %d bytes > page %d",
			ErrCorrupt, len(n.entries), need, len(buf))
	}
	buf[0] = nodeLeaf
	binary.LittleEndian.PutUint16(buf[1:3], uint16(len(n.entries)))
	binary.LittleEndian.PutUint64(buf[3:11], uint64(n.next))
	off := leafHeaderSize
	for _, e := range n.entries {
		binary.LittleEndian.PutUint64(buf[off:], e.Key)
		binary.LittleEndian.PutUint64(buf[off+8:], uint64(e.Ref.Page))
		binary.LittleEndian.PutUint16(buf[off+16:], e.Ref.Slot)
		off += leafEntrySize
	}
	for i := off; i < len(buf); i++ {
		buf[i] = 0
	}
	return nil
}

func decodeLeaf(buf []byte) (*leafNode, error) {
	if len(buf) < leafHeaderSize || buf[0] != nodeLeaf {
		return nil, fmt.Errorf("%w: not a leaf", ErrCorrupt)
	}
	count := int(binary.LittleEndian.Uint16(buf[1:3]))
	if leafHeaderSize+count*leafEntrySize > len(buf) {
		return nil, fmt.Errorf("%w: leaf count %d overflows page", ErrCorrupt, count)
	}
	n := &leafNode{
		next:    device.PageID(binary.LittleEndian.Uint64(buf[3:11])),
		entries: make([]Entry, count),
	}
	off := leafHeaderSize
	for i := 0; i < count; i++ {
		n.entries[i] = Entry{
			Key: binary.LittleEndian.Uint64(buf[off:]),
			Ref: TupleRef{
				Page: device.PageID(binary.LittleEndian.Uint64(buf[off+8:])),
				Slot: binary.LittleEndian.Uint16(buf[off+16:]),
			},
		}
		off += leafEntrySize
	}
	return n, nil
}

func encodeInternal(buf []byte, n *internalNode) error {
	if len(n.children) != len(n.keys)+1 {
		return fmt.Errorf("%w: internal node with %d keys, %d children",
			ErrCorrupt, len(n.keys), len(n.children))
	}
	need := nodeHeaderSize + len(n.keys)*8 + len(n.children)*8
	if need > len(buf) {
		return fmt.Errorf("%w: internal node needs %d bytes > page %d", ErrCorrupt, need, len(buf))
	}
	buf[0] = nodeInternal
	binary.LittleEndian.PutUint16(buf[1:3], uint16(len(n.keys)))
	off := nodeHeaderSize
	for _, k := range n.keys {
		binary.LittleEndian.PutUint64(buf[off:], k)
		off += 8
	}
	for _, c := range n.children {
		binary.LittleEndian.PutUint64(buf[off:], uint64(c))
		off += 8
	}
	for i := off; i < len(buf); i++ {
		buf[i] = 0
	}
	return nil
}

func decodeInternal(buf []byte) (*internalNode, error) {
	if len(buf) < nodeHeaderSize || buf[0] != nodeInternal {
		return nil, fmt.Errorf("%w: not an internal node", ErrCorrupt)
	}
	count := int(binary.LittleEndian.Uint16(buf[1:3]))
	if nodeHeaderSize+count*8+(count+1)*8 > len(buf) {
		return nil, fmt.Errorf("%w: internal count %d overflows page", ErrCorrupt, count)
	}
	n := &internalNode{
		keys:     make([]uint64, count),
		children: make([]device.PageID, count+1),
	}
	off := nodeHeaderSize
	for i := 0; i < count; i++ {
		n.keys[i] = binary.LittleEndian.Uint64(buf[off:])
		off += 8
	}
	for i := 0; i <= count; i++ {
		n.children[i] = device.PageID(binary.LittleEndian.Uint64(buf[off:]))
		off += 8
	}
	return n, nil
}

// nodeKind returns the kind byte of a serialized node.
func nodeKind(buf []byte) (byte, error) {
	if len(buf) < nodeHeaderSize {
		return 0, fmt.Errorf("%w: short page", ErrCorrupt)
	}
	k := buf[0]
	if k != nodeLeaf && k != nodeInternal {
		return 0, fmt.Errorf("%w: unknown node kind %d", ErrCorrupt, k)
	}
	return k, nil
}
