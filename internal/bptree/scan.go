package bptree

import (
	"fmt"
	"sort"

	"bftree/internal/device"
)

// Cursor streams the entries of a range scan in key order, one at a
// time: the leaf-sibling walk of RangeScanStats exposed pull-style, so
// a LIMIT-k consumer reads only the leaves it actually advances into.
// Leaves are fetched lazily on Next; Reads reports the index pages read
// so far (descent plus consumed leaf-chain links). A Cursor holds no
// locks or pins — the tree is read-only during scans — so Close only
// drops buffers and is optional.
type Cursor struct {
	t      *Tree
	hi     uint64
	leaf   *leafNode
	i      int // index of the current entry within leaf, -1 before first
	reads  int
	err    error
	done   bool
	primed bool // first positioned entry not yet returned
}

// Scan opens a cursor over every entry with key in [lo, hi]. The
// materialized RangeScanStats drains exactly this cursor.
func (t *Tree) Scan(lo, hi uint64) (*Cursor, error) {
	if lo > hi {
		return nil, fmt.Errorf("bptree: range [%d,%d] inverted", lo, hi)
	}
	leaf, _, reads, err := t.descend(lo)
	if err != nil {
		return nil, err
	}
	c := &Cursor{t: t, hi: hi, leaf: leaf, reads: reads}
	c.i = sort.Search(len(leaf.entries), func(i int) bool { return leaf.entries[i].Key >= lo }) - 1
	return c, nil
}

// Next advances to the next in-range entry, reporting whether one
// exists. It returns false at the end of the range or on error.
func (c *Cursor) Next() bool {
	if c.done || c.err != nil {
		return false
	}
	for {
		if c.i+1 < len(c.leaf.entries) {
			c.i++
			if c.leaf.entries[c.i].Key > c.hi {
				c.done = true
				return false
			}
			return true
		}
		if c.leaf.next == device.InvalidPage {
			c.done = true
			return false
		}
		buf, err := c.t.store.ReadPage(c.leaf.next)
		if err != nil {
			c.err = err
			return false
		}
		c.reads++
		leaf, err := decodeLeaf(buf)
		if err != nil {
			c.err = err
			return false
		}
		c.leaf = leaf
		c.i = -1
	}
}

// Entry returns the current entry.
func (c *Cursor) Entry() Entry {
	if c.leaf == nil || c.i < 0 || c.i >= len(c.leaf.entries) {
		return Entry{}
	}
	return c.leaf.entries[c.i]
}

// Reads returns the index pages read so far.
func (c *Cursor) Reads() int { return c.reads }

// Err returns the first error the cursor hit, if any.
func (c *Cursor) Err() error { return c.err }

// Close releases the cursor's buffers. Idempotent; never fails.
func (c *Cursor) Close() error {
	c.done = true
	c.leaf = nil
	c.i = -1
	return nil
}

// KeyRefs groups the tuple references of one batch key. The exact
// backends return batched-probe answers in this shape so callers can
// run per-key fetches (the deduplicated layout's ordered scans) without
// re-deriving which ref answers which key.
type KeyRefs struct {
	Key  uint64
	Refs []TupleRef
}

// MultiSearch answers a batch of point lookups in one pass: keys are
// sorted and deduped, then probed in order through a per-batch cache of
// decoded pages, so adjacent keys share their root-to-leaf path and a
// leaf holding several batch keys is decoded once. Groups come back in
// ascending key order, keys without matches omitted; reads counts
// distinct index pages read for the whole batch — the shared-descent
// savings the batched-probe experiment measures.
func (t *Tree) MultiSearch(keys []uint64) ([]KeyRefs, int, error) {
	if len(keys) == 0 {
		return nil, 0, nil
	}
	sorted := append([]uint64(nil), keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	c := &pageCache{t: t}
	var out []KeyRefs
	var prev uint64
	for i, key := range sorted {
		if i > 0 && key == prev {
			continue
		}
		prev = key
		refs, err := c.search(key)
		if err != nil {
			return nil, c.reads, err
		}
		if len(refs) > 0 {
			out = append(out, KeyRefs{Key: key, Refs: refs})
		}
	}
	return out, c.reads, nil
}

// pageCache memoizes decoded pages for one batch; reads is charged only
// on a miss, so it counts distinct pages — what a buffer pool would
// actually fetch.
type pageCache struct {
	t      *Tree
	nodes  map[device.PageID]*internalNode
	leaves map[device.PageID]*leafNode
	reads  int
}

func (c *pageCache) search(key uint64) ([]TupleRef, error) {
	leaf, err := c.descend(key)
	if err != nil {
		return nil, err
	}
	var out []TupleRef
	for {
		i := sort.Search(len(leaf.entries), func(i int) bool { return leaf.entries[i].Key >= key })
		for ; i < len(leaf.entries) && leaf.entries[i].Key == key; i++ {
			out = append(out, leaf.entries[i].Ref)
		}
		if i < len(leaf.entries) || leaf.next == device.InvalidPage {
			return out, nil
		}
		next, err := c.leaf(leaf.next)
		if err != nil {
			return nil, err
		}
		if len(next.entries) == 0 || next.entries[0].Key != key {
			return out, nil
		}
		leaf = next
	}
}

func (c *pageCache) descend(key uint64) (*leafNode, error) {
	pid := c.t.root
	for {
		if n, ok := c.nodes[pid]; ok {
			i := sort.Search(len(n.keys), func(i int) bool { return key <= n.keys[i] })
			pid = n.children[i]
			continue
		}
		if l, ok := c.leaves[pid]; ok {
			return l, nil
		}
		buf, err := c.t.store.ReadPage(pid)
		if err != nil {
			return nil, err
		}
		c.reads++
		kind, err := nodeKind(buf)
		if err != nil {
			return nil, err
		}
		if kind == nodeLeaf {
			l, err := decodeLeaf(buf)
			if err != nil {
				return nil, err
			}
			if c.leaves == nil {
				c.leaves = make(map[device.PageID]*leafNode)
			}
			c.leaves[pid] = l
			return l, nil
		}
		n, err := decodeInternal(buf)
		if err != nil {
			return nil, err
		}
		if c.nodes == nil {
			c.nodes = make(map[device.PageID]*internalNode)
		}
		c.nodes[pid] = n
		i := sort.Search(len(n.keys), func(i int) bool { return key <= n.keys[i] })
		pid = n.children[i]
	}
}

func (c *pageCache) leaf(pid device.PageID) (*leafNode, error) {
	if l, ok := c.leaves[pid]; ok {
		return l, nil
	}
	buf, err := c.t.store.ReadPage(pid)
	if err != nil {
		return nil, err
	}
	c.reads++
	l, err := decodeLeaf(buf)
	if err != nil {
		return nil, err
	}
	if c.leaves == nil {
		c.leaves = make(map[device.PageID]*leafNode)
	}
	c.leaves[pid] = l
	return l, nil
}
