package server_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"net/http/httptest"
	"testing"

	"bftree/index"
	"bftree/internal/device"
	"bftree/internal/heapfile"
	"bftree/internal/pagestore"
	"bftree/internal/server"
	"bftree/internal/server/loadgen"
)

// These tests live in server_test (not server) so they can import
// loadgen — the client imports the server package for the wire types,
// and a same-package test would close an import cycle.

// servedRelation builds the conformance suite's golden shape: key step
// 5, three tuples per key, payload = ordinal.
func servedRelation(t testing.TB, n int) (*heapfile.File, *pagestore.Store) {
	t.Helper()
	schema := heapfile.Schema{
		TupleSize: 64,
		Fields:    []heapfile.Field{{Name: "key", Offset: 0}, {Name: "seq", Offset: 8}},
	}
	store := pagestore.New(device.New(device.Memory, 4096))
	b, err := heapfile.NewBuilder(store, schema)
	if err != nil {
		t.Fatal(err)
	}
	tup := make([]byte, schema.TupleSize)
	for i := 0; i < n; i++ {
		binary.BigEndian.PutUint64(tup[0:8], uint64(i/3)*5)
		binary.BigEndian.PutUint64(tup[8:16], uint64(i))
		if err := b.Append(tup); err != nil {
			t.Fatal(err)
		}
	}
	file, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return file, store
}

// mount builds backend name over file, serves it over a real listener,
// and dials a client. SerializeWrites is set from the registry trait,
// exactly as production wiring does.
func mount(t testing.TB, name string, file *heapfile.File, sopts server.Options) (index.Index, *loadgen.Client) {
	t.Helper()
	b, ok := index.Lookup(name)
	if !ok {
		t.Fatalf("backend %q not registered", name)
	}
	idxStore := pagestore.New(device.New(device.Memory, 4096))
	ix, err := index.New(name, idxStore, file, 0, index.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ix.Close() })
	sopts.SerializeWrites = !b.ConcurrentWriters
	ts := httptest.NewServer(server.New(ix, sopts))
	t.Cleanup(ts.Close)
	cl, err := loadgen.Dial(ts.URL, loadgen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return ix, cl
}

// sameResult requires tuple-for-tuple, stat-for-stat equality — the
// served answer must be byte-identical to the direct call.
func sameResult(t *testing.T, op string, got, want *index.Result) {
	t.Helper()
	if len(got.Tuples) != len(want.Tuples) {
		t.Errorf("%s: served %d tuples, direct %d", op, len(got.Tuples), len(want.Tuples))
		return
	}
	for i := range want.Tuples {
		if !bytes.Equal(got.Tuples[i], want.Tuples[i]) {
			t.Errorf("%s: tuple %d differs between served and direct", op, i)
			return
		}
	}
	if got.Stats != want.Stats {
		t.Errorf("%s: served stats %+v, direct stats %+v", op, got.Stats, want.Stats)
	}
}

// TestGoldenEquivalence is the serving layer's conformance gate: for
// every registered backend, every read answer served over HTTP —
// point, first-match, range, batched, streamed scan with LIMIT —
// equals the direct index.Index call on the same store, stats
// included. The wire adds transport, never semantics.
func TestGoldenEquivalence(t *testing.T) {
	const n = 3000 // keys 0,5,...,4995; 3 tuples each
	file, _ := servedRelation(t, n)
	maxKey := uint64(n/3-1) * 5

	for _, name := range index.Backends() {
		t.Run(name, func(t *testing.T) {
			ix, cl := mount(t, name, file, server.Options{})

			for _, key := range []uint64{0, 5, maxKey / 2, maxKey, 7, maxKey + 100} {
				got, err := cl.Search(key)
				if err != nil {
					t.Fatal(err)
				}
				want, err := ix.Search(key)
				if err != nil {
					t.Fatal(err)
				}
				sameResult(t, "search", got, want)

				got, err = cl.SearchFirst(key)
				if err != nil {
					t.Fatal(err)
				}
				want, err = ix.SearchFirst(key)
				if err != nil {
					t.Fatal(err)
				}
				sameResult(t, "search-first", got, want)
			}

			for _, r := range [][2]uint64{{0, 50}, {maxKey - 95, maxKey}, {maxKey + 10, maxKey + 500}} {
				got, err := cl.RangeScan(r[0], r[1])
				if err != nil {
					t.Fatal(err)
				}
				want, err := ix.RangeScan(r[0], r[1])
				if err != nil {
					t.Fatal(err)
				}
				sameResult(t, "range", got, want)
			}

			if cl.Caps().MultiSearch {
				keys := []uint64{0, 25, 25, maxKey, 7, maxKey / 2}
				got, err := cl.MultiSearch(keys)
				if err != nil {
					t.Fatal(err)
				}
				want, err := index.MultiSearch(ix, keys)
				if err != nil {
					t.Fatal(err)
				}
				sameResult(t, "multi", got, want)
			}

			if cl.Caps().Scan {
				// LIMIT-k: the served scan must return the same k tuples
				// at the same iterator cost as pulling k directly —
				// early-termination pricing preserved over the wire.
				const k = 7
				it, err := cl.ScanLimit(0, maxKey, k)
				if err != nil {
					t.Fatal(err)
				}
				got := &index.Result{}
				for it.Next() {
					got.Tuples = append(got.Tuples, it.Tuple())
				}
				got.Stats = it.Stats()
				if err := it.Err(); err != nil {
					t.Fatal(err)
				}
				it.Close()

				dit, err := index.Scan(ix, 0, maxKey)
				if err != nil {
					t.Fatal(err)
				}
				want := &index.Result{}
				for len(want.Tuples) < k && dit.Next() {
					want.Tuples = append(want.Tuples, dit.Tuple())
				}
				want.Stats = dit.Stats()
				if err := dit.Err(); err != nil {
					t.Fatal(err)
				}
				dit.Close()

				if len(got.Tuples) != k {
					t.Fatalf("scan-limit: served %d tuples, want %d", len(got.Tuples), k)
				}
				sameResult(t, "scan-limit", got, want)

				// Unlimited streamed scan == materialized range scan.
				it, err = cl.Scan(100, 300)
				if err != nil {
					t.Fatal(err)
				}
				full, err := index.Drain(it)
				if err != nil {
					t.Fatal(err)
				}
				direct, err := ix.RangeScan(100, 300)
				if err != nil {
					t.Fatal(err)
				}
				sameResult(t, "scan-full", full, direct)
			}

			// Inverted ranges are the caller's fault on both paths.
			if _, err := cl.RangeScan(10, 5); !errors.Is(err, index.ErrInvalidRange) {
				t.Errorf("served inverted range: err %v, want ErrInvalidRange", err)
			}
		})
	}
}

// TestCapabilityMatrix checks the 405 contract against every backend:
// a capability route answers iff the mounted backend has the
// capability, and a refusal names it — surfaced by the client as
// index.ErrUnsupported, same sentinel as the in-process helpers.
func TestCapabilityMatrix(t *testing.T) {
	const n = 600
	file, _ := servedRelation(t, n)

	for _, name := range index.Backends() {
		t.Run(name, func(t *testing.T) {
			_, cl := mount(t, name, file, server.Options{})
			caps := cl.Caps()
			ref := index.Ref{Page: file.PageOf(0)}

			check := func(op string, supported bool, err error) {
				t.Helper()
				if supported && err != nil {
					t.Errorf("%s: supported but failed: %v", op, err)
				}
				if !supported && !errors.Is(err, index.ErrUnsupported) {
					t.Errorf("%s: unsupported, err %v, want ErrUnsupported", op, err)
				}
			}

			_, merr := cl.MultiSearch([]uint64{0, 5})
			check("multi", caps.MultiSearch, merr)

			it, serr := cl.ScanLimit(0, 50, 2)
			if serr == nil {
				index.Drain(it)
			}
			check("scan", caps.Scan, serr)

			check("insert", caps.Insert, cl.Insert(3, ref))
			check("delete", caps.Delete, cl.Delete(3, ref))
			check("flush", caps.Flush, cl.Flush())
		})
	}
}

// TestStatsEndpoint pins what /stats must carry: the backend name, the
// true capability surface, the index shape, and served accounting that
// actually moves as requests land.
func TestStatsEndpoint(t *testing.T) {
	const n = 600
	file, _ := servedRelation(t, n)
	ix, cl := mount(t, "bftree", file, server.Options{})

	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Backend != "bftree" {
		t.Errorf("backend = %q, want bftree", st.Backend)
	}
	if st.Caps != index.Capabilities(ix) {
		t.Errorf("caps = %+v, want %+v", st.Caps, index.Capabilities(ix))
	}
	if st.Index.Entries == 0 || st.Index.Pages == 0 {
		t.Errorf("index shape empty: %+v", st.Index)
	}
	if st.Maintenance == nil {
		t.Error("bftree mount must expose a maintenance snapshot")
	}

	if _, err := cl.Search(0); err != nil {
		t.Fatal(err)
	}
	st2, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st2.Served.Requests <= st.Served.Requests {
		t.Errorf("served requests did not advance: %d -> %d",
			st.Served.Requests, st2.Served.Requests)
	}
	if st2.Served.Probe.DataPagesRead == 0 {
		t.Error("served probe accounting did not record the search's page reads")
	}
}
