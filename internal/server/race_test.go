package server_test

import (
	"encoding/binary"
	"math/rand"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"bftree/index"
	"bftree/internal/core"
	"bftree/internal/device"
	"bftree/internal/heapfile"
	"bftree/internal/pagestore"
	"bftree/internal/server"
	"bftree/internal/server/loadgen"
)

// TestServerConcurrency is the serving layer's -race gate (ISSUE
// satellite): 8 HTTP clients run a delete-heavy mixed workload against
// a live bftree whose auto maintainer reclaims and compacts underneath
// them. It asserts (a) every request succeeds (the 429s are absorbed by
// the client's retry loop), (b) backpressure actually fires, and (c)
// the page economy balances at quiescence — no page leaked between
// live, free and limbo across the whole served run.
func TestServerConcurrency(t *testing.T) {
	const (
		n       = 8192 // unique keys 0..n-1, one tuple each
		workers = 8
		ops     = 300 // per worker
	)

	schema := heapfile.Schema{
		TupleSize: 64,
		Fields:    []heapfile.Field{{Name: "key", Offset: 0}},
	}
	dataStore := pagestore.New(device.New(device.Memory, 4096))
	b, err := heapfile.NewBuilder(dataStore, schema)
	if err != nil {
		t.Fatal(err)
	}
	tup := make([]byte, schema.TupleSize)
	for i := 0; i < n; i++ {
		binary.BigEndian.PutUint64(tup[0:8], uint64(i))
		if err := b.Append(tup); err != nil {
			t.Fatal(err)
		}
	}
	file, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}

	idxDev := device.New(device.Memory, 4096)
	idxStore := pagestore.New(idxDev)
	ix, err := index.New("bftree", idxStore, file, 0, index.Options{
		BFTree: core.Options{
			FPP: 1e-3,
			Maintenance: core.MaintenancePolicy{
				Mode:             core.MaintenanceAuto,
				ReclaimInterval:  time.Millisecond,
				FPPThreshold:     0.04, // low threshold: deletes drift into the ramp fast
				IncrementalBatch: 8,
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	srv := server.New(ix, server.Options{
		BackpressureFraction: 0.5, // wide ramp: rejections start early
		RetryAfter:           time.Millisecond,
	})
	ts := httptest.NewServer(srv)

	// MaxRetries must outlast the longest drain: at drift >= threshold
	// every write rejects until the incremental maintainer compacts the
	// estimate back below the ramp, a few ReclaimInterval ticks away.
	cl, err := loadgen.Dial(ts.URL, loadgen.Options{Connections: workers, MaxRetries: 2000})
	if err != nil {
		t.Fatal(err)
	}

	refOf := func(k uint64) index.Ref { return index.Ref{Page: file.PageOf(k)} }

	// Delete-heavy mix: 50% delete, 20% insert (re-adding what deletes
	// ghosted), 30% reads across the capability surface.
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			for i := 0; i < ops; i++ {
				k := uint64(rng.Intn(n))
				var err error
				switch p := rng.Float64(); {
				case p < 0.50:
					err = cl.Delete(k, refOf(k))
				case p < 0.70:
					err = cl.Insert(k, refOf(k))
				case p < 0.80:
					_, err = cl.Search(k)
				case p < 0.90:
					_, err = cl.MultiSearch([]uint64{k, k / 2, k + 7})
				default:
					var it index.Iterator
					it, err = cl.ScanLimit(k, k+64, 5)
					if err == nil {
						_, err = index.Drain(it)
					}
				}
				if err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}

	// Backpressure must have fired somewhere in a delete-heavy run at
	// this threshold: the server counted rejections and the client
	// absorbed them.
	if rej := srv.Served().Rejected; rej == 0 {
		t.Error("delete-heavy mix never hit 429 backpressure")
	} else if cl.BackpressureEvents() == 0 {
		t.Errorf("server rejected %d writes but the client absorbed none", rej)
	}

	ts.Close()
	cl.Close()

	// Quiescence: Close stops the maintainer after a final drain; the
	// page economy must balance through the public surface alone.
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	ms := ix.(index.Maintainer).MaintenanceStats()
	live := ix.Stats().Pages
	free := uint64(idxStore.FreePages())
	limbo := uint64(ms.LimboPages)
	if live+free+limbo != idxDev.NumPages() {
		t.Errorf("page economy leaks: live %d + free %d + limbo %d != device %d",
			live, free, limbo, idxDev.NumPages())
	}
}
