// Package server is the serving layer of DESIGN.md §9: an HTTP index
// server that mounts any backend registered with the index package and
// exposes its full capability surface over a JSON body protocol —
// stdlib only, matching the repo's zero-dependency go.mod.
//
// Routes follow the capability matrix: the mandatory Index surface
// (point lookup, materialized range scan) is always served; every
// optional capability (streamed scans, batched probes, inserts,
// deletes, flush) is discovered via index.Capabilities at mount time
// and answered with 405 naming the missing capability when the backend
// lacks it. GET /stats reports the mount — backend name, CapSet, index
// shape, served-probe accounting, and the maintenance snapshot — which
// is also how clients learn what they may call.
//
// The server turns the maintenance layer's drift accounting into flow
// control: when a mounted Maintainer's live drift estimate
// (Stats().EffectiveFPP, which writers update continuously) approaches
// its Equation-14 compaction threshold, writes are rejected
// with 429 + Retry-After at a probability that ramps from 0 at
// BackpressureFraction×threshold to 1 at the threshold itself. The ramp
// matters: rejecting every write below the threshold would freeze the
// drift just under the compaction point and the maintainer would never
// fire — a permanent write outage. Probabilistic admission always lets
// some writes through, so drift still reaches the threshold, compaction
// runs, the published drift drops, and admission reopens.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand/v2"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"bftree/index"
)

// Options configures a Server.
type Options struct {
	// BackpressureFraction positions the admission ramp: writes start
	// being rejected once drift exceeds fraction×threshold, and are
	// always rejected at the threshold. 0 selects 0.9; a value >= 1
	// disables backpressure entirely. Ignored when the mounted backend
	// is not a Maintainer or its policy disables drift compaction
	// (threshold 0 or >= 1).
	BackpressureFraction float64
	// RetryAfter is the pause a 429 asks rejected writers to take,
	// carried at millisecond precision in X-Retry-After-Ms (the
	// standard Retry-After header rounds up to whole seconds). 0
	// selects 50ms.
	RetryAfter time.Duration
	// SerializeWrites serializes capability writes behind an RWMutex
	// (reads proceed shared) — the serving mode for backends without
	// the ConcurrentWriters registry trait, which are read-safe only
	// while no writer runs. Mount-time wiring (cmd/bfserve, the bench
	// experiment) sets it from the registry trait.
	SerializeWrites bool
	// ScanChunk is the tuple count per streamed /scan NDJSON line;
	// 0 selects 64.
	ScanChunk int
}

const (
	defaultBackpressureFraction = 0.9
	defaultRetryAfter           = 50 * time.Millisecond
	defaultScanChunk            = 64
)

// Server mounts one index.Index behind the HTTP protocol of wire.go.
// It is an http.Handler; run it under any http.Server.
type Server struct {
	ix      index.Index
	backend string
	caps    index.CapSet
	opts    Options
	mux     *http.ServeMux

	// threshold is the mounted Maintainer's Equation-14 compaction
	// threshold, cached at mount (the policy never changes after
	// build); 0 when the backend has no maintainer. The admission gate
	// compares the *live* drift estimate (Stats().EffectiveFPP, which
	// writers update continuously) against it — the pass-published
	// MaintenanceStats().EffectiveFPP is post-compaction and would
	// always read as healthy.
	threshold float64

	// writeMu implements Options.SerializeWrites; the zero-overhead
	// no-op pairs are installed when serialization is off.
	writeMu                sync.RWMutex
	readLock, readUnlock   func()
	writeLock, writeUnlock func()

	// served accounting, accumulated with atomics on the request path.
	requests, errCount, rejected, tuplesSent atomic.Int64
	indexReads, bfProbes, candPages          atomic.Int64
	dataPages, falseReads                    atomic.Int64

	// admitRand draws the admission coin; replaced in tests.
	admitRand func() float64
}

// New mounts ix behind a Server. The capability surface is discovered
// once here — backends do not grow or lose capabilities after build.
func New(ix index.Index, opts Options) *Server {
	if opts.BackpressureFraction == 0 {
		opts.BackpressureFraction = defaultBackpressureFraction
	}
	if opts.RetryAfter <= 0 {
		opts.RetryAfter = defaultRetryAfter
	}
	if opts.ScanChunk <= 0 {
		opts.ScanChunk = defaultScanChunk
	}
	s := &Server{
		ix:        ix,
		backend:   ix.Stats().Backend,
		caps:      index.Capabilities(ix),
		opts:      opts,
		mux:       http.NewServeMux(),
		admitRand: rand.Float64,
	}
	if m, ok := ix.(index.Maintainer); ok {
		s.threshold = m.MaintenanceStats().FPPThreshold
	}
	nop := func() {}
	s.readLock, s.readUnlock, s.writeLock, s.writeUnlock = nop, nop, nop, nop
	if opts.SerializeWrites {
		s.readLock, s.readUnlock = s.writeMu.RLock, s.writeMu.RUnlock
		s.writeLock, s.writeUnlock = s.writeMu.Lock, s.writeMu.Unlock
	}

	s.mux.HandleFunc("POST /search", s.handleSearch)
	s.mux.HandleFunc("POST /range", s.handleRange)
	s.mux.HandleFunc("POST /multi", s.handleMulti)
	s.mux.HandleFunc("POST /scan", s.handleScan)
	s.mux.HandleFunc("POST /insert", s.handleInsert)
	s.mux.HandleFunc("POST /delete", s.handleDelete)
	s.mux.HandleFunc("POST /flush", s.handleFlush)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	return s
}

// Backend returns the mounted backend's registered name.
func (s *Server) Backend() string { return s.backend }

// Caps returns the mounted backend's discovered capability surface.
func (s *Server) Caps() index.CapSet { return s.caps }

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	s.mux.ServeHTTP(w, r)
}

// Served snapshots the server-side accounting.
func (s *Server) Served() ServedStats {
	return ServedStats{
		Requests:   s.requests.Load(),
		Errors:     s.errCount.Load(),
		Rejected:   s.rejected.Load(),
		TuplesSent: s.tuplesSent.Load(),
		Probe: index.ProbeStats{
			IndexReads:     int(s.indexReads.Load()),
			BFProbes:       int(s.bfProbes.Load()),
			CandidatePages: int(s.candPages.Load()),
			DataPagesRead:  int(s.dataPages.Load()),
			FalseReads:     int(s.falseReads.Load()),
		},
	}
}

// recordProbe folds one served probe's cost into the totals.
func (s *Server) recordProbe(st index.ProbeStats, tuples int) {
	s.indexReads.Add(int64(st.IndexReads))
	s.bfProbes.Add(int64(st.BFProbes))
	s.candPages.Add(int64(st.CandidatePages))
	s.dataPages.Add(int64(st.DataPagesRead))
	s.falseReads.Add(int64(st.FalseReads))
	s.tuplesSent.Add(int64(tuples))
}

// writeJSON sends v with the given status.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// fail maps an index error onto the protocol: invalid ranges are the
// caller's fault (400), ErrUnsupported means a capability gap (405),
// anything else is the server's (500).
func (s *Server) fail(w http.ResponseWriter, err error) {
	s.errCount.Add(1)
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, index.ErrInvalidRange):
		status = http.StatusBadRequest
	case errors.Is(err, index.ErrUnsupported):
		status = http.StatusMethodNotAllowed
	}
	s.writeJSON(w, status, ErrorResponse{Error: err.Error()})
}

// unsupported answers a request for a capability the mounted backend
// does not implement: 405 naming the capability, so clients can map the
// refusal back to the CapSet field without parsing prose.
func (s *Server) unsupported(w http.ResponseWriter, capability string) {
	s.errCount.Add(1)
	s.writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{
		Error:      fmt.Sprintf("backend %q lacks the %s capability", s.backend, capability),
		Capability: capability,
	})
}

// decode parses the JSON request body into v; on failure it answers 400
// and reports false.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		s.errCount.Add(1)
		s.writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "bad request body: " + err.Error()})
		return false
	}
	return true
}

// result sends a probe outcome and folds its cost into the served
// accounting.
func (s *Server) result(w http.ResponseWriter, res *index.Result) {
	s.recordProbe(res.Stats, len(res.Tuples))
	s.writeJSON(w, http.StatusOK, Result{Tuples: res.Tuples, Stats: res.Stats})
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	var req PointRequest
	if !s.decode(w, r, &req) {
		return
	}
	s.readLock()
	var res *index.Result
	var err error
	if req.First {
		res, err = s.ix.SearchFirst(req.Key)
	} else {
		res, err = s.ix.Search(req.Key)
	}
	s.readUnlock()
	if err != nil {
		s.fail(w, err)
		return
	}
	s.result(w, res)
}

func (s *Server) handleRange(w http.ResponseWriter, r *http.Request) {
	var req RangeRequest
	if !s.decode(w, r, &req) {
		return
	}
	s.readLock()
	res, err := s.ix.RangeScan(req.Lo, req.Hi)
	s.readUnlock()
	if err != nil {
		s.fail(w, err)
		return
	}
	s.result(w, res)
}

func (s *Server) handleMulti(w http.ResponseWriter, r *http.Request) {
	if !s.caps.MultiSearch {
		s.unsupported(w, "MultiSearch")
		return
	}
	var req MultiRequest
	if !s.decode(w, r, &req) {
		return
	}
	s.readLock()
	res, err := s.ix.(index.MultiSearcher).MultiSearch(req.Keys)
	s.readUnlock()
	if err != nil {
		s.fail(w, err)
		return
	}
	s.result(w, res)
}

// handleScan streams a range scan as NDJSON ScanChunk lines: cumulative
// stats per chunk, a Done line to close, an Error line on mid-stream
// failure (the HTTP status is already committed by then — streaming
// protocols carry their errors in-band). A Limit > 0 stops the
// iterator after exactly that many tuples, so a LIMIT-k client pays
// only the pages behind those k tuples — the Scanner early-termination
// contract, preserved over the wire.
func (s *Server) handleScan(w http.ResponseWriter, r *http.Request) {
	if !s.caps.Scan {
		s.unsupported(w, "Scan")
		return
	}
	var req ScanRequest
	if !s.decode(w, r, &req) {
		return
	}
	s.readLock()
	defer s.readUnlock()
	it, err := s.ix.(index.Scanner).Scan(req.Lo, req.Hi)
	if err != nil {
		s.fail(w, err)
		return
	}
	defer it.Close()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	emit := func(c ScanChunk) bool {
		if err := enc.Encode(c); err != nil {
			return false // client went away; stop pulling pages
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}

	var chunk [][]byte
	sent := 0
	for (req.Limit <= 0 || sent < req.Limit) && it.Next() {
		chunk = append(chunk, it.Tuple())
		sent++
		if len(chunk) >= s.opts.ScanChunk {
			s.tuplesSent.Add(int64(len(chunk)))
			if !emit(ScanChunk{Tuples: chunk, Stats: it.Stats()}) {
				return
			}
			chunk = nil
		}
	}
	if err := it.Err(); err != nil {
		s.errCount.Add(1)
		emit(ScanChunk{Stats: it.Stats(), Error: err.Error()})
		return
	}
	if len(chunk) > 0 {
		s.tuplesSent.Add(int64(len(chunk)))
		if !emit(ScanChunk{Tuples: chunk, Stats: it.Stats()}) {
			return
		}
	}
	s.recordProbe(it.Stats(), 0)
	emit(ScanChunk{Stats: it.Stats(), Done: true})
}

// admitWrite decides one write's admission given the published drift,
// the compaction threshold, the ramp start fraction, and a uniform
// draw in [0,1). Pure, so the contract is directly testable:
//
//	drift <  fraction×T          → always admit
//	drift in [fraction×T, T)     → admit with probability 1 − ramp
//	drift >= T                   → always reject (until compaction
//	                               publishes a lower drift)
func admitWrite(drift, threshold, fraction, draw float64) bool {
	if threshold <= 0 || threshold >= 1 || fraction >= 1 {
		return true // drift compaction or backpressure disabled
	}
	start := fraction * threshold
	if drift < start {
		return true
	}
	if drift >= threshold {
		return false
	}
	ramp := (drift - start) / (threshold - start)
	return draw >= ramp
}

// admit runs the backpressure gate for one write. A false return has
// already answered the request with 429 + Retry-After.
func (s *Server) admit(w http.ResponseWriter) bool {
	if s.threshold == 0 {
		return true // no maintainer mounted
	}
	if admitWrite(s.ix.Stats().EffectiveFPP, s.threshold, s.opts.BackpressureFraction, s.admitRand()) {
		return true
	}
	s.rejected.Add(1)
	retryMs := int(s.opts.RetryAfter / time.Millisecond)
	// Retry-After is whole seconds by spec; round up so "50ms" does not
	// become "0". X-Retry-After-Ms carries the real pause.
	w.Header().Set("Retry-After", fmt.Sprintf("%d", (s.opts.RetryAfter+time.Second-1)/time.Second))
	w.Header().Set("X-Retry-After-Ms", fmt.Sprintf("%d", retryMs))
	s.writeJSON(w, http.StatusTooManyRequests, ErrorResponse{
		Error:        "write rejected: drift at the compaction threshold; retry after maintenance",
		RetryAfterMs: retryMs,
	})
	return false
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	if !s.caps.Insert {
		s.unsupported(w, "Insert")
		return
	}
	var req WriteRequest
	if !s.decode(w, r, &req) {
		return
	}
	if !s.admit(w) {
		return
	}
	s.writeLock()
	err := s.ix.(index.Inserter).Insert(req.Key, req.Ref())
	s.writeUnlock()
	if err != nil {
		s.fail(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if !s.caps.Delete {
		s.unsupported(w, "Delete")
		return
	}
	var req WriteRequest
	if !s.decode(w, r, &req) {
		return
	}
	if !s.admit(w) {
		return
	}
	s.writeLock()
	err := s.ix.(index.Deleter).Delete(req.Key, req.Ref())
	s.writeUnlock()
	if err != nil {
		s.fail(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleFlush(w http.ResponseWriter, r *http.Request) {
	if !s.caps.Flush {
		s.unsupported(w, "Flush")
		return
	}
	s.writeLock()
	err := s.ix.(index.Flusher).Flush()
	s.writeUnlock()
	if err != nil {
		s.fail(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.readLock()
	resp := StatsResponse{
		Backend: s.backend,
		Caps:    s.caps,
		Index:   s.ix.Stats(),
		Served:  s.Served(),
	}
	if m, ok := s.ix.(index.Maintainer); ok {
		ms := m.MaintenanceStats()
		resp.Maintenance = &ms
	}
	s.readUnlock()
	s.writeJSON(w, http.StatusOK, resp)
}
