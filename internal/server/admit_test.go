package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"bftree/index"
)

// White-box tests of the admission gate: the pure ramp function, and
// the 429 mechanics through a stub Maintainer whose published drift the
// test controls exactly.

func TestAdmitWriteRamp(t *testing.T) {
	const T, frac = 0.10, 0.9 // ramp spans [0.09, 0.10)
	cases := []struct {
		name                string
		drift, thresh, draw float64
		want                bool
	}{
		{"zero drift", 0, T, 0.0, true},
		{"below ramp", 0.089, T, 0.0, true},
		// At exactly the ramp start the rejection probability is 0:
		// draw >= 0 always holds, so every write is admitted.
		{"ramp start still admits", 0.09, T, 0.0, true},
		{"mid ramp low draw rejects", 0.095, T, 0.3, false},
		{"mid ramp high draw admits", 0.095, T, 0.7, true},
		{"at threshold", 0.10, T, 0.999, false},
		{"above threshold", 0.5, T, 0.999, false},
		{"compaction disabled (T=0)", 0.5, 0, 0.0, true},
		{"compaction disabled (T=1)", 0.5, 1, 0.0, true},
	}
	for _, c := range cases {
		if got := admitWrite(c.drift, c.thresh, frac, c.draw); got != c.want {
			t.Errorf("%s: admitWrite(%g, %g, %g, draw %g) = %v, want %v",
				c.name, c.drift, c.thresh, frac, c.draw, got, c.want)
		}
	}

	// Fraction >= 1 disables the gate even past the threshold.
	if !admitWrite(0.5, T, 1.0, 0.0) {
		t.Error("fraction 1 must disable backpressure")
	}
}

// stubMaintainer is an index whose published drift the test dials; it
// supports Insert so /insert exists, and nothing else.
type stubMaintainer struct {
	drift, threshold float64
}

func (s *stubMaintainer) Search(uint64) (*index.Result, error)         { return &index.Result{}, nil }
func (s *stubMaintainer) SearchFirst(uint64) (*index.Result, error)    { return &index.Result{}, nil }
func (s *stubMaintainer) RangeScan(_, _ uint64) (*index.Result, error) { return &index.Result{}, nil }
func (s *stubMaintainer) Stats() index.Stats {
	return index.Stats{Backend: "stub", EffectiveFPP: s.drift}
}
func (s *stubMaintainer) Close() error                   { return nil }
func (s *stubMaintainer) Insert(uint64, index.Ref) error { return nil }
func (s *stubMaintainer) Maintain() error                { return nil }
func (s *stubMaintainer) MaintenanceStats() index.MaintenanceStats {
	return index.MaintenanceStats{EffectiveFPP: s.drift, FPPThreshold: s.threshold}
}

func postInsert(t *testing.T, s *Server) *httptest.ResponseRecorder {
	t.Helper()
	body, _ := json.Marshal(WriteRequest{Key: 1, Page: 1})
	req := httptest.NewRequest(http.MethodPost, "/insert", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func TestBackpressure429(t *testing.T) {
	ix := &stubMaintainer{drift: 0.05, threshold: 0.10}
	s := New(ix, Options{BackpressureFraction: 0.9})
	s.admitRand = func() float64 { return 0.5 } // pin the coin

	// Below the ramp: every write lands.
	if rec := postInsert(t, s); rec.Code != http.StatusNoContent {
		t.Fatalf("below-ramp insert: status %d, want 204", rec.Code)
	}

	// Past the threshold: 429 with both retry headers and the wire
	// body, and the rejection is counted.
	ix.drift = 0.10
	rec := postInsert(t, s)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("at-threshold insert: status %d, want 429", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "1" {
		t.Errorf("Retry-After = %q, want %q (50ms rounds up to a whole second)", got, "1")
	}
	if got := rec.Header().Get("X-Retry-After-Ms"); got != "50" {
		t.Errorf("X-Retry-After-Ms = %q, want %q", got, "50")
	}
	var resp ErrorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.RetryAfterMs != 50 {
		t.Errorf("body retry_after_ms = %d, want 50", resp.RetryAfterMs)
	}
	if got := s.Served().Rejected; got != 1 {
		t.Errorf("Rejected = %d, want 1", got)
	}

	// Mid-ramp with the pinned coin: drift 0.095 is halfway up the
	// [0.09, 0.10) ramp → rejection probability 0.5; a draw of exactly
	// 0.5 admits (draw >= ramp), a draw just under rejects.
	ix.drift = 0.095
	if rec := postInsert(t, s); rec.Code != http.StatusNoContent {
		t.Errorf("mid-ramp draw=ramp: status %d, want 204", rec.Code)
	}
	s.admitRand = func() float64 { return 0.49 }
	if rec := postInsert(t, s); rec.Code != http.StatusTooManyRequests {
		t.Errorf("mid-ramp draw<ramp: status %d, want 429", rec.Code)
	}

	// Reads never feel backpressure, whatever the drift.
	ix.drift = 0.5
	body, _ := json.Marshal(PointRequest{Key: 1})
	req := httptest.NewRequest(http.MethodPost, "/search", bytes.NewReader(body))
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Errorf("read under max drift: status %d, want 200", rec.Code)
	}
}

// TestBackpressureDisabled pins the two off switches: a non-Maintainer
// backend has no gate at all, and fraction >= 1 turns it off for
// Maintainer backends.
func TestBackpressureDisabled(t *testing.T) {
	ix := &stubMaintainer{drift: 0.99, threshold: 0.10}
	s := New(ix, Options{BackpressureFraction: 1})
	s.admitRand = func() float64 { return 0 }
	if rec := postInsert(t, s); rec.Code != http.StatusNoContent {
		t.Errorf("fraction 1: status %d, want 204", rec.Code)
	}
}
