// Package loadgen is the client half of the serving layer: an HTTP
// client for the server package's wire protocol that re-exposes the
// index capability surface — Search/SearchFirst/RangeScan plus the
// Scanner, MultiSearcher, Inserter, Deleter and Flusher capability
// methods — so the bench driver can run a workload.Mix over real
// connections exactly as it runs one over an in-process index.
//
// One Client is safe for concurrent use by many workers; the underlying
// http.Transport pools one connection per concurrent request up to
// Options.Connections. Writes honor the server's 429 backpressure:
// they pause for the X-Retry-After-Ms the server asked for and retry,
// counting each pause in BackpressureEvents.
//
// Capability note: the Go type implements every capability method, so
// index.Capabilities(client) reports everything as supported. What the
// *server* supports is what matters, and Dial learns that from GET
// /stats — callers fold their mix with Caps()/WorkloadCaps() before
// driving (see bench's serve-load experiment).
package loadgen

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"bftree/index"
	"bftree/internal/server"
	"bftree/internal/workload"
)

// Options configures a Client.
type Options struct {
	// Connections sizes the transport's idle pool. Set it to the
	// driver's worker count so every concurrent worker keeps its own
	// connection instead of churning through dials. 0 selects 2.
	Connections int
	// MaxRetries bounds the 429 retry loop per write; 0 selects 16.
	MaxRetries int
}

// Client speaks the serving layer's wire protocol. Zero value is not
// usable; construct with Dial.
type Client struct {
	base string
	hc   *http.Client
	opts Options

	backend string
	caps    index.CapSet

	backpressure atomic.Int64
}

// Dial builds a Client for the server at base (e.g.
// "http://127.0.0.1:8080") and learns the mounted backend's name and
// capability surface from GET /stats.
func Dial(base string, opts Options) (*Client, error) {
	if opts.Connections <= 0 {
		opts.Connections = 2
	}
	if opts.MaxRetries <= 0 {
		opts.MaxRetries = 16
	}
	tr := &http.Transport{
		MaxIdleConns:        opts.Connections,
		MaxIdleConnsPerHost: opts.Connections,
	}
	c := &Client{
		base: base,
		hc:   &http.Client{Transport: tr},
		opts: opts,
	}
	st, err := c.Stats()
	if err != nil {
		return nil, fmt.Errorf("loadgen: dial %s: %w", base, err)
	}
	c.backend = st.Backend
	c.caps = st.Caps
	return c, nil
}

// Backend returns the server-reported backend name.
func (c *Client) Backend() string { return c.backend }

// Caps returns the server-reported capability surface — the authority
// on what this client may call (the client type itself always has
// every method).
func (c *Client) Caps() index.CapSet { return c.caps }

// WorkloadCaps converts the server-reported CapSet to the workload
// engine's redistribution shape. Fold your mix with this before
// driving the client.
func (c *Client) WorkloadCaps() workload.Caps {
	return workload.Caps{
		Insert:      c.caps.Insert,
		Delete:      c.caps.Delete,
		Scan:        c.caps.Scan,
		MultiSearch: c.caps.MultiSearch,
	}
}

// BackpressureEvents returns how many 429 rejections this client has
// absorbed (each one slept and retried).
func (c *Client) BackpressureEvents() int64 { return c.backpressure.Load() }

// Close releases pooled connections.
func (c *Client) Close() error {
	c.hc.CloseIdleConnections()
	return nil
}

// apiError is a non-2xx answer, carrying enough of the wire
// ErrorResponse to map back onto the index package's sentinel errors.
type apiError struct {
	Status       int
	Msg          string
	Capability   string
	RetryAfterMs int
}

func (e *apiError) Error() string {
	return fmt.Sprintf("server: %d %s", e.Status, e.Msg)
}

// Unwrap maps protocol statuses onto the index sentinels so callers
// keep their errors.Is checks: 405 is a capability gap
// (ErrUnsupported), 400 a range the backend rejected (ErrInvalidRange).
func (e *apiError) Unwrap() error {
	switch e.Status {
	case http.StatusMethodNotAllowed:
		return index.ErrUnsupported
	case http.StatusBadRequest:
		return index.ErrInvalidRange
	}
	return nil
}

// post sends body to path and decodes the JSON answer into out (nil out
// discards it). Non-2xx answers come back as *apiError.
func (c *Client) post(method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var wire server.ErrorResponse
		_ = json.NewDecoder(resp.Body).Decode(&wire)
		return &apiError{
			Status:       resp.StatusCode,
			Msg:          wire.Error,
			Capability:   wire.Capability,
			RetryAfterMs: wire.RetryAfterMs,
		}
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	io.Copy(io.Discard, resp.Body) // drain so the connection is reusable
	return nil
}

// Stats fetches the server's GET /stats snapshot.
func (c *Client) Stats() (*server.StatsResponse, error) {
	var st server.StatsResponse
	if err := c.post(http.MethodGet, "/stats", nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// point runs one /search probe.
func (c *Client) point(key uint64, first bool) (*index.Result, error) {
	var res server.Result
	err := c.post(http.MethodPost, "/search", server.PointRequest{Key: key, First: first}, &res)
	if err != nil {
		return nil, err
	}
	return &index.Result{Tuples: res.Tuples, Stats: res.Stats}, nil
}

// Search returns every tuple matching key, served remotely.
func (c *Client) Search(key uint64) (*index.Result, error) { return c.point(key, false) }

// SearchFirst is the primary-key early-exit probe, served remotely.
func (c *Client) SearchFirst(key uint64) (*index.Result, error) { return c.point(key, true) }

// RangeScan materializes [lo, hi], served remotely.
func (c *Client) RangeScan(lo, hi uint64) (*index.Result, error) {
	var res server.Result
	err := c.post(http.MethodPost, "/range", server.RangeRequest{Lo: lo, Hi: hi}, &res)
	if err != nil {
		return nil, err
	}
	return &index.Result{Tuples: res.Tuples, Stats: res.Stats}, nil
}

// MultiSearch runs a batched point probe, served remotely.
func (c *Client) MultiSearch(keys []uint64) (*index.Result, error) {
	var res server.Result
	err := c.post(http.MethodPost, "/multi", server.MultiRequest{Keys: keys}, &res)
	if err != nil {
		return nil, err
	}
	return &index.Result{Tuples: res.Tuples, Stats: res.Stats}, nil
}

// ScanLimit streams [lo, hi] with a server-side LIMIT: the server's
// iterator stops after limit tuples, so the pages behind the unsent
// remainder are never read. limit <= 0 streams the whole range.
func (c *Client) ScanLimit(lo, hi uint64, limit int) (index.Iterator, error) {
	buf, err := json.Marshal(server.ScanRequest{Lo: lo, Hi: hi, Limit: limit})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequest(http.MethodPost, c.base+"/scan", bytes.NewReader(buf))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		var wire server.ErrorResponse
		_ = json.NewDecoder(resp.Body).Decode(&wire)
		return nil, &apiError{Status: resp.StatusCode, Msg: wire.Error, Capability: wire.Capability}
	}
	return &scanIterator{body: resp.Body, dec: json.NewDecoder(resp.Body)}, nil
}

// Scan opens a streaming scan over [lo, hi] — the Scanner capability,
// served remotely.
func (c *Client) Scan(lo, hi uint64) (index.Iterator, error) {
	return c.ScanLimit(lo, hi, 0)
}

// write runs one mutating request with the backpressure retry loop.
func (c *Client) write(path string, req any) error {
	for attempt := 0; ; attempt++ {
		err := c.post(http.MethodPost, path, req, nil)
		if err == nil {
			return nil
		}
		var ae *apiError
		if !errors.As(err, &ae) || ae.Status != http.StatusTooManyRequests || attempt >= c.opts.MaxRetries {
			return err
		}
		c.backpressure.Add(1)
		pause := time.Duration(ae.RetryAfterMs) * time.Millisecond
		if pause <= 0 {
			pause = 10 * time.Millisecond
		}
		time.Sleep(pause)
	}
}

// Insert adds a key→tuple association, served remotely; 429
// backpressure is absorbed by sleep-and-retry.
func (c *Client) Insert(key uint64, ref index.Ref) error {
	return c.write("/insert", server.WriteRequest{Key: key, Page: uint64(ref.Page), Slot: ref.Slot})
}

// Delete removes a key→tuple association, served remotely; 429
// backpressure is absorbed by sleep-and-retry.
func (c *Client) Delete(key uint64, ref index.Ref) error {
	return c.write("/delete", server.WriteRequest{Key: key, Page: uint64(ref.Page), Slot: ref.Slot})
}

// Flush forces the server's buffered writes to the device.
func (c *Client) Flush() error {
	return c.write("/flush", nil)
}

// scanIterator adapts one streamed /scan response to index.Iterator.
// Not safe for concurrent use (per the Iterator contract); Close
// mid-stream tears down the HTTP body, which cancels the server's
// iterator on its next write.
type scanIterator struct {
	body   io.ReadCloser
	dec    *json.Decoder
	chunk  [][]byte
	pos    int
	cur    []byte
	stats  index.ProbeStats
	err    error
	done   bool
	closed bool
}

func (it *scanIterator) Next() bool {
	if it.err != nil || it.done || it.closed {
		return false
	}
	for it.pos >= len(it.chunk) {
		var c server.ScanChunk
		if err := it.dec.Decode(&c); err != nil {
			if err == io.EOF {
				// Stream ended without a Done line: the server died
				// mid-scan.
				err = io.ErrUnexpectedEOF
			}
			it.err = err
			return false
		}
		it.stats = c.Stats
		if c.Error != "" {
			it.err = errors.New("server: " + c.Error)
			return false
		}
		if c.Done {
			it.done = true
			it.Close()
			return false
		}
		it.chunk, it.pos = c.Tuples, 0
	}
	it.cur = it.chunk[it.pos]
	it.pos++
	return true
}

func (it *scanIterator) Tuple() []byte           { return it.cur }
func (it *scanIterator) Stats() index.ProbeStats { return it.stats }
func (it *scanIterator) Err() error              { return it.err }

func (it *scanIterator) Close() error {
	if it.closed {
		return nil
	}
	it.closed = true
	return it.body.Close()
}
