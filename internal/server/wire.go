package server

import (
	"bftree/index"
)

// This file is the wire protocol: the JSON bodies both sides of the
// serving layer speak. The server (this package) and the load-generator
// client (loadgen) share these structs, so the protocol cannot drift
// between them. Tuples travel as JSON base64 strings (encoding/json's
// []byte convention); ProbeStats and friends marshal under their Go
// field names — the same shapes the bench JSON artifacts already use.

// PointRequest is the body of POST /search: one key, optionally probed
// through the primary-key early exit (SearchFirst).
type PointRequest struct {
	Key   uint64 `json:"key"`
	First bool   `json:"first,omitempty"`
}

// RangeRequest is the body of POST /range: a materialized scan of
// [lo, hi].
type RangeRequest struct {
	Lo uint64 `json:"lo"`
	Hi uint64 `json:"hi"`
}

// MultiRequest is the body of POST /multi: one batched point probe.
type MultiRequest struct {
	Keys []uint64 `json:"keys"`
}

// ScanRequest is the body of POST /scan: a streamed scan of [lo, hi],
// stopping after Limit tuples when Limit > 0.
type ScanRequest struct {
	Lo    uint64 `json:"lo"`
	Hi    uint64 `json:"hi"`
	Limit int    `json:"limit,omitempty"`
}

// WriteRequest is the body of POST /insert and POST /delete: the
// key→tuple association the capability call needs.
type WriteRequest struct {
	Key  uint64 `json:"key"`
	Page uint64 `json:"page"`
	Slot uint16 `json:"slot,omitempty"`
}

// Ref converts the wire association to the capability signature's Ref.
func (w WriteRequest) Ref() index.Ref {
	return index.Ref{Page: index.PageID(w.Page), Slot: w.Slot}
}

// Result is the probe answer every read endpoint returns: matching
// tuples plus the probe's cost accounting — index.Result with JSON
// names pinned.
type Result struct {
	Tuples [][]byte         `json:"tuples"`
	Stats  index.ProbeStats `json:"stats"`
}

// ScanChunk is one NDJSON line of a streamed /scan response. Tuples
// carries the next slice of the scan; Stats is the iterator's
// *cumulative* cost at the end of the chunk. The final line has
// Done=true, empty Tuples, and the scan's total stats; a mid-stream
// failure ends the stream with an Error line instead.
type ScanChunk struct {
	Tuples [][]byte         `json:"tuples,omitempty"`
	Stats  index.ProbeStats `json:"stats"`
	Done   bool             `json:"done,omitempty"`
	Error  string           `json:"error,omitempty"`
}

// ErrorResponse is the body of every non-2xx answer. Capability names
// the missing optional interface on a 405; RetryAfterMs carries the
// backpressure pause on a 429 (the Retry-After header only has 1-second
// granularity).
type ErrorResponse struct {
	Error        string `json:"error"`
	Capability   string `json:"capability,omitempty"`
	RetryAfterMs int    `json:"retry_after_ms,omitempty"`
}

// ServedStats is the server-side accounting exposed at /stats:
// request totals and the summed probe cost of everything served.
type ServedStats struct {
	Requests   int64            `json:"requests"`
	Errors     int64            `json:"errors"`
	Rejected   int64            `json:"rejected"` // 429 backpressure rejections
	TuplesSent int64            `json:"tuples_sent"`
	Probe      index.ProbeStats `json:"probe"`
}

// StatsResponse is the body of GET /stats: what is mounted, what it can
// do, how big it is, what has been served, and (for Maintainer
// backends) the maintenance snapshot the backpressure gate reads.
type StatsResponse struct {
	Backend     string                  `json:"backend"`
	Caps        index.CapSet            `json:"caps"`
	Index       index.Stats             `json:"index"`
	Served      ServedStats             `json:"served"`
	Maintenance *index.MaintenanceStats `json:"maintenance,omitempty"`
}
