package forest

import (
	"encoding/binary"
	"fmt"

	"bftree/internal/core"
	"bftree/internal/heapfile"
	"bftree/internal/pagestore"
)

// forestMagic tags a forest metadata blob; the per-shard tree blobs
// inside carry core's own magic and checksums.
const forestMagic = "BFF1"

// MarshalMeta serializes the forest for reopening: kind, shard count,
// the range separators, then each shard's own metadata blob. The
// partition rule is reconstructed from kind + separators on Open, so
// Rebuild keeps filtering after a restart.
func (f *Forest) MarshalMeta() []byte {
	buf := []byte(forestMagic)
	kind := byte(0)
	if f.hash {
		kind = 1
	}
	buf = append(buf, kind)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(f.trees)))
	if !f.hash {
		for _, sep := range f.seps {
			buf = binary.BigEndian.AppendUint64(buf, sep)
		}
	}
	for _, tr := range f.trees {
		blob := tr.MarshalMeta()
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(blob)))
		buf = append(buf, blob...)
	}
	return buf
}

// Open reopens a forest from a MarshalMeta blob against the same store
// and file. Shards with MaintenanceAuto restart their maintainers.
func Open(store *pagestore.Store, file *heapfile.File, meta []byte) (*Forest, error) {
	if len(meta) < len(forestMagic)+5 || string(meta[:len(forestMagic)]) != forestMagic {
		return nil, fmt.Errorf("%w: not a forest meta blob", core.ErrCorrupt)
	}
	off := len(forestMagic)
	hash := meta[off] == 1
	off++
	n := int(binary.BigEndian.Uint32(meta[off:]))
	off += 4
	if n < 1 {
		return nil, fmt.Errorf("%w: forest with %d shards", core.ErrCorrupt, n)
	}
	f := &Forest{store: store, file: file, hash: hash}
	if !hash {
		if len(meta) < off+8*(n-1) {
			return nil, fmt.Errorf("%w: forest meta truncated", core.ErrCorrupt)
		}
		for i := 0; i < n-1; i++ {
			f.seps = append(f.seps, binary.BigEndian.Uint64(meta[off:]))
			off += 8
		}
	}
	for i := 0; i < n; i++ {
		if len(meta) < off+4 {
			f.Close()
			return nil, fmt.Errorf("%w: forest meta truncated", core.ErrCorrupt)
		}
		bl := int(binary.BigEndian.Uint32(meta[off:]))
		off += 4
		if len(meta) < off+bl {
			f.Close()
			return nil, fmt.Errorf("%w: forest meta truncated", core.ErrCorrupt)
		}
		tr, err := core.OpenPartition(store, file, meta[off:off+bl], f.partition(i, n))
		if err != nil {
			f.Close()
			return nil, err
		}
		off += bl
		f.trees = append(f.trees, tr)
	}
	f.fieldIdx = f.trees[0].FieldIndex()
	return f, nil
}
