package forest_test

import (
	"testing"
	"time"

	"bftree/internal/core"
	"bftree/internal/forest"
)

// TestForestSinglePolicyConfiguresAllShards pins the forest-level
// maintenance plumbing: one MaintenancePolicy handed to forest.New
// reaches every shard's tree, with IncrementalBatch split as the
// forest-wide per-pass budget rather than multiplied per shard.
func TestForestSinglePolicyConfiguresAllShards(t *testing.T) {
	file, store := buildRelation(t, 4096, 3)
	policy := core.MaintenancePolicy{
		Mode:             core.MaintenanceManual,
		FPPThreshold:     0.2,
		ReclaimInterval:  3 * time.Millisecond,
		LimboHighWater:   99,
		IncrementalBatch: 10,
	}
	f, err := forest.New(store, file, 0, forest.Options{
		Shards:      4,
		Tree:        core.Options{FPP: 0.01},
		Maintenance: &policy,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	shards := f.NumShards()
	if shards < 2 {
		t.Fatalf("fixture built only %d shards; the split rule needs more", shards)
	}
	want := forest.ShardPolicy(policy, shards)
	if want.IncrementalBatch >= policy.IncrementalBatch {
		t.Fatalf("ShardPolicy(%d shards) kept batch %d; expected a split below %d",
			shards, want.IncrementalBatch, policy.IncrementalBatch)
	}
	budget := 0
	for i := 0; i < shards; i++ {
		got := f.Shard(i).Options().Maintenance
		if got != want {
			t.Errorf("shard %d policy = %+v, want %+v", i, got, want)
		}
		budget += got.IncrementalBatch
	}
	// The ceiling split over-allocates by at most shards-1 leaves.
	if budget < policy.IncrementalBatch || budget >= policy.IncrementalBatch+shards {
		t.Errorf("forest-wide per-pass budget = %d from batch %d over %d shards",
			budget, policy.IncrementalBatch, shards)
	}
}

// TestShardPolicySplit pins the ceiling-with-floor-1 split rule on its
// edges: a budget smaller than the shard count still leaves every
// shard incremental, and zero stays zero (legacy whole-tree rebuild).
func TestShardPolicySplit(t *testing.T) {
	cases := []struct {
		batch, shards, want int
	}{
		{0, 8, 0},   // 0 keeps whole-tree rebuilds on every shard
		{16, 4, 4},  // even split
		{10, 4, 3},  // ceiling
		{2, 8, 1},   // floor 1: a positive budget stays incremental
		{5, 1, 5},   // single shard keeps the budget verbatim
		{-3, 4, -3}, // non-positive budgets pass through untouched
	}
	for _, c := range cases {
		p := forest.ShardPolicy(core.MaintenancePolicy{IncrementalBatch: c.batch}, c.shards)
		if p.IncrementalBatch != c.want {
			t.Errorf("ShardPolicy(batch %d, %d shards) = %d, want %d",
				c.batch, c.shards, p.IncrementalBatch, c.want)
		}
	}
}

// TestAggregateMaintenanceMinNonzero pins the stall-aggregation rules
// across shards where some report zero: the minimum is the smallest
// non-zero shard value (a shard that never compacted must not pin the
// forest minimum at 0), the maximum the largest, the total the sum —
// and FPPThreshold aggregates min-nonzero the same way.
func TestAggregateMaintenanceMinNonzero(t *testing.T) {
	stats := []core.MaintenanceStats{
		{}, // shard that never compacted: all zero
		{
			CompactionMinStall:   4 * time.Millisecond,
			CompactionMaxStall:   9 * time.Millisecond,
			CompactionTotalStall: 13 * time.Millisecond,
			FPPThreshold:         0.12,
			Compactions:          2,
		},
		{
			CompactionMinStall:   2 * time.Millisecond,
			CompactionMaxStall:   5 * time.Millisecond,
			CompactionTotalStall: 7 * time.Millisecond,
			FPPThreshold:         0.10,
			Compactions:          2,
		},
	}
	agg := forest.AggregateMaintenance(stats)
	if agg.CompactionMinStall != 2*time.Millisecond {
		t.Errorf("min stall = %v, want the smallest non-zero (2ms)", agg.CompactionMinStall)
	}
	if agg.CompactionMaxStall != 9*time.Millisecond {
		t.Errorf("max stall = %v, want 9ms", agg.CompactionMaxStall)
	}
	if agg.CompactionTotalStall != 20*time.Millisecond {
		t.Errorf("total stall = %v, want 20ms", agg.CompactionTotalStall)
	}
	if agg.FPPThreshold != 0.10 {
		t.Errorf("threshold = %g, want the smallest non-zero (0.10)", agg.FPPThreshold)
	}
	if agg.Compactions != 4 {
		t.Errorf("compactions = %d, want summed 4", agg.Compactions)
	}

	// All-zero input stays zero rather than inventing a minimum.
	if z := forest.AggregateMaintenance(stats[:1]); z.CompactionMinStall != 0 || z.FPPThreshold != 0 {
		t.Errorf("all-zero aggregate = min %v threshold %g, want zeros",
			z.CompactionMinStall, z.FPPThreshold)
	}
}
