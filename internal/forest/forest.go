// Package forest shards one logical BF-Tree index into N core.Tree
// partitions over a shared heap file, multiplying structural write
// throughput: each shard owns its own writer lock, leaf latches, epoch
// reclamation and background maintainer, so a split or compaction
// stalls one shard instead of the whole index (DESIGN.md §7).
//
// Partitioning is by key. The range kind cuts the (ordered) relation at
// page boundaries so shards stay ordered and cross-shard scans merge by
// concatenation; the hash kind spreads keys by a mixed hash — the
// point-lookup-friendly choice under skew, paying a k-way merge on
// scans. Either way every association of a key lives in exactly one
// shard, which is what makes forest Search/Scan/MultiSearch exactly-once
// without cross-shard deduplication.
package forest

import (
	"errors"
	"fmt"
	"sync"

	"bftree/internal/core"
	"bftree/internal/device"
	"bftree/internal/heapfile"
	"bftree/internal/pagestore"
)

// DefaultShards is the shard count a zero Options selects.
const DefaultShards = 4

// Options configures a forest build.
type Options struct {
	// Shards is the partition count; 0 selects DefaultShards. The
	// effective count may come out lower for a range forest over a
	// relation too small to yield that many distinct cut keys.
	Shards int
	// Hash selects hash partitioning (core.HashKey modulo shards)
	// instead of range partitioning by page cuts.
	Hash bool
	// Tree carries the per-shard BF-Tree build options.
	Tree core.Options
	// Maintenance, when non-nil, is the forest-level maintenance
	// policy: it replaces Tree.Maintenance on every shard, so one
	// policy configures the whole forest instead of each shard's
	// maintainer running whatever the per-tree options happened to
	// carry. IncrementalBatch is interpreted as the forest-wide
	// per-pass budget and split evenly across shards (ceiling, at
	// least 1 per shard), so adding shards does not multiply the
	// number of leaves compacted per pass. See ShardPolicy.
	Maintenance *core.MaintenancePolicy
}

// ShardPolicy derives one shard's maintenance policy from a
// forest-level policy over shards partitions: every knob is shared
// verbatim except IncrementalBatch, which is the forest-wide per-pass
// compaction budget split evenly (ceiling division, minimum 1 so a
// positive budget stays incremental on every shard).
func ShardPolicy(p core.MaintenancePolicy, shards int) core.MaintenancePolicy {
	if p.IncrementalBatch > 0 && shards > 1 {
		p.IncrementalBatch = (p.IncrementalBatch + shards - 1) / shards
	}
	return p
}

// Forest is a set of partitioned BF-Trees behind the one-tree API. All
// shards index the same field of the same heap file and share one index
// page store; everything else — metadata snapshot, writer locks, limbo,
// maintainer — is per shard.
type Forest struct {
	store    *pagestore.Store
	file     *heapfile.File
	fieldIdx int
	hash     bool
	// seps are the range-kind shard separators, strictly increasing,
	// len(trees)-1 of them: shard i owns [seps[i-1], seps[i]-1] with
	// the first shard reaching down to 0 and the last up to ^uint64(0).
	seps  []uint64
	trees []*core.Tree
}

// New bulk-loads a forest over field fieldIdx of file. Shards are built
// sequentially — each build is a full relation scan, and the scans
// share the store's cache — and every shard with MaintenanceAuto starts
// its own maintainer; Close drains them all.
func New(store *pagestore.Store, file *heapfile.File, fieldIdx int, opts Options) (*Forest, error) {
	n := opts.Shards
	if n == 0 {
		n = DefaultShards
	}
	if n < 1 {
		return nil, fmt.Errorf("%w: %d shards", core.ErrOptions, n)
	}
	f := &Forest{store: store, file: file, fieldIdx: fieldIdx, hash: opts.Hash}
	if !opts.Hash {
		seps, err := rangeSeparators(file, fieldIdx, n)
		if err != nil {
			return nil, err
		}
		f.seps = seps
		n = len(seps) + 1
	}
	treeOpts := opts.Tree
	if opts.Maintenance != nil {
		treeOpts.Maintenance = ShardPolicy(*opts.Maintenance, n)
	}
	for i := 0; i < n; i++ {
		tr, err := core.BulkLoadPartition(store, file, fieldIdx, treeOpts, f.partition(i, n))
		if err != nil {
			f.Close()
			return nil, err
		}
		f.trees = append(f.trees, tr)
	}
	return f, nil
}

// partition builds shard i's Partition from the forest's kind.
func (f *Forest) partition(i, n int) *core.Partition {
	p := &core.Partition{Shard: i, Shards: n, Hash: f.hash}
	if !f.hash {
		p.KeyLo, p.KeyHi = f.bounds(i)
	}
	return p
}

// bounds returns range shard i's inclusive key interval.
func (f *Forest) bounds(i int) (lo, hi uint64) {
	if i > 0 {
		lo = f.seps[i-1]
	}
	hi = ^uint64(0)
	if i < len(f.seps) {
		hi = f.seps[i] - 1
	}
	return lo, hi
}

// rangeSeparators picks up to shards-1 strictly increasing cut keys
// from evenly spaced page boundaries of the (ordered) relation. A
// separator is a page's minimum key, so a duplicate run straddling the
// cut page belongs wholly to the higher shard — partitioning stays by
// key, never splitting a key's associations across shards. Relations
// with fewer distinct cut keys than requested shards yield fewer
// separators (and so fewer shards) rather than empty ranges.
func rangeSeparators(file *heapfile.File, fieldIdx, shards int) ([]uint64, error) {
	numPages := file.NumPages()
	first := file.FirstPage()
	var seps []uint64
	prev := uint64(0)
	for i := 1; i < shards; i++ {
		cut := uint64(i) * numPages / uint64(shards)
		if cut == 0 || cut >= numPages {
			continue
		}
		minKey, _, err := file.PageKeyRange(first+device.PageID(cut), fieldIdx)
		if err != nil {
			return nil, err
		}
		if minKey > prev {
			seps = append(seps, minKey)
			prev = minKey
		}
	}
	return seps, nil
}

// shardOf routes a key to its owning shard.
func (f *Forest) shardOf(key uint64) int {
	if f.hash {
		return int(core.HashKey(key) % uint64(len(f.trees)))
	}
	// First separator greater than key = count of separators ≤ key.
	lo, hi := 0, len(f.seps)
	for lo < hi {
		mid := (lo + hi) / 2
		if f.seps[mid] > key {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// NumShards returns the effective shard count.
func (f *Forest) NumShards() int { return len(f.trees) }

// Shard returns shard i's tree — the seam the race and page-economy
// tests inspect per shard.
func (f *Forest) Shard(i int) *core.Tree { return f.trees[i] }

// HashKind reports whether the forest is hash-partitioned.
func (f *Forest) HashKind() bool { return f.hash }

// FieldIndex returns the indexed field.
func (f *Forest) FieldIndex() int { return f.fieldIdx }

// Separators returns a copy of the range-kind cut keys (nil for hash).
func (f *Forest) Separators() []uint64 {
	return append([]uint64(nil), f.seps...)
}

// Search returns every association of key, routed to its owner shard.
func (f *Forest) Search(key uint64) (*core.Result, error) {
	return f.trees[f.shardOf(key)].Search(key)
}

// SearchFirst returns the first association of key.
func (f *Forest) SearchFirst(key uint64) (*core.Result, error) {
	return f.trees[f.shardOf(key)].SearchFirst(key)
}

// Insert adds a key→page association to the owner shard. Callers
// writing concurrently to the same shard follow the per-tree rules of
// DESIGN.md §3; writers on distinct shards never contend.
func (f *Forest) Insert(key uint64, pid device.PageID) error {
	return f.trees[f.shardOf(key)].Insert(key, pid)
}

// Delete removes a key→page association from the owner shard.
func (f *Forest) Delete(key uint64, pid device.PageID) error {
	return f.trees[f.shardOf(key)].Delete(key, pid)
}

// MultiSearch answers a batch of point lookups, fanned out by
// partition: keys group by owner shard, the per-shard batches run
// concurrently (each sharing descents and page reads within its shard),
// and the answers merge in shard order with stats summed. Every key
// lives in exactly one shard, so the merge needs no deduplication.
func (f *Forest) MultiSearch(keys []uint64) (*core.Result, error) {
	groups := make([][]uint64, len(f.trees))
	for _, k := range keys {
		s := f.shardOf(k)
		groups[s] = append(groups[s], k)
	}
	results := make([]*core.Result, len(f.trees))
	errs := make([]error, len(f.trees))
	var wg sync.WaitGroup
	for i, g := range groups {
		if len(g) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int, g []uint64) {
			defer wg.Done()
			results[i], errs[i] = f.trees[i].MultiSearch(g)
		}(i, g)
	}
	wg.Wait()
	res := &core.Result{}
	for i := range f.trees {
		if errs[i] != nil {
			return nil, errs[i]
		}
		if results[i] != nil {
			res.Tuples = append(res.Tuples, results[i].Tuples...)
			addStats(&res.Stats, results[i].Stats)
		}
	}
	return res, nil
}

// Height returns the tallest shard's height.
func (f *Forest) Height() int {
	h := 0
	for _, tr := range f.trees {
		if th := tr.Height(); th > h {
			h = th
		}
	}
	return h
}

// NumNodes sums index pages across shards.
func (f *Forest) NumNodes() uint64 {
	var n uint64
	for _, tr := range f.trees {
		n += tr.NumNodes()
	}
	return n
}

// NumLeaves sums BF-leaves across shards.
func (f *Forest) NumLeaves() uint64 {
	var n uint64
	for _, tr := range f.trees {
		n += tr.NumLeaves()
	}
	return n
}

// NumKeys sums indexed distinct keys across shards (keys are disjoint
// between shards, so the sum is the forest's distinct count).
func (f *Forest) NumKeys() uint64 {
	var n uint64
	for _, tr := range f.trees {
		n += tr.NumKeys()
	}
	return n
}

// SizeBytes sums index bytes across shards.
func (f *Forest) SizeBytes() uint64 {
	var n uint64
	for _, tr := range f.trees {
		n += tr.SizeBytes()
	}
	return n
}

// EffectiveFPP reports the worst shard's Equation 14 drift estimate —
// the forest's probe cost is bounded by its most drifted shard.
func (f *Forest) EffectiveFPP() float64 {
	fpp := 0.0
	for _, tr := range f.trees {
		if e := tr.EffectiveFPP(); e > fpp {
			fpp = e
		}
	}
	return fpp
}

// InternalPages concatenates every shard's internal index pages (for
// cache warming).
func (f *Forest) InternalPages() ([]device.PageID, error) {
	var pids []device.PageID
	for _, tr := range f.trees {
		p, err := tr.InternalPages()
		if err != nil {
			return nil, err
		}
		pids = append(pids, p...)
	}
	return pids, nil
}

// Maintain runs one synchronous maintenance pass on every shard.
func (f *Forest) Maintain() error {
	var errs []error
	for _, tr := range f.trees {
		errs = append(errs, tr.Maintain())
	}
	return errors.Join(errs...)
}

// MaintenanceStats aggregates across shards; see AggregateMaintenance
// for the rules.
func (f *Forest) MaintenanceStats() core.MaintenanceStats {
	stats := make([]core.MaintenanceStats, len(f.trees))
	for i, tr := range f.trees {
		stats[i] = tr.MaintenanceStats()
	}
	return AggregateMaintenance(stats)
}

// AggregateMaintenance folds per-shard maintenance snapshots into one:
// counters and limbo sum, Running reports any live maintainer,
// EffectiveFPP is the worst shard's estimate (the forest's probe cost
// is bounded by its most drifted shard), and FPPThreshold the
// smallest non-zero shard threshold (the earliest point any shard
// compacts — the conservative bound a serving layer throttles on).
// Stall durations aggregate like the per-tree recorder: the max is
// the worst single writer stall any shard caused, the min the
// shortest non-zero recorded — shards that never compacted report
// zero and are excluded rather than pinning the minimum — and the
// total the sum.
func AggregateMaintenance(stats []core.MaintenanceStats) core.MaintenanceStats {
	var agg core.MaintenanceStats
	for _, s := range stats {
		agg.Running = agg.Running || s.Running
		agg.LimboPages += s.LimboPages
		if s.EffectiveFPP > agg.EffectiveFPP {
			agg.EffectiveFPP = s.EffectiveFPP
		}
		if s.FPPThreshold > 0 &&
			(agg.FPPThreshold == 0 || s.FPPThreshold < agg.FPPThreshold) {
			agg.FPPThreshold = s.FPPThreshold
		}
		agg.Passes += s.Passes
		agg.PagesReclaimed += s.PagesReclaimed
		agg.Compactions += s.Compactions
		agg.CompactionFailures += s.CompactionFailures
		agg.IncrementalPasses += s.IncrementalPasses
		agg.LeavesCompacted += s.LeavesCompacted
		if s.CompactionMaxStall > agg.CompactionMaxStall {
			agg.CompactionMaxStall = s.CompactionMaxStall
		}
		if s.CompactionMinStall > 0 &&
			(agg.CompactionMinStall == 0 || s.CompactionMinStall < agg.CompactionMinStall) {
			agg.CompactionMinStall = s.CompactionMinStall
		}
		agg.CompactionTotalStall += s.CompactionTotalStall
		agg.ProbeWakeups += s.ProbeWakeups
		agg.StructuralRequests += s.StructuralRequests
		agg.DriftWakeups += s.DriftWakeups
		agg.TimerWakeups += s.TimerWakeups
		agg.LockMisses += s.LockMisses
		agg.ForcedLocks += s.ForcedLocks
	}
	return agg
}

// Close stops every shard's maintainer and reclaims their limbo.
func (f *Forest) Close() error {
	var errs []error
	for _, tr := range f.trees {
		errs = append(errs, tr.Close())
	}
	return errors.Join(errs...)
}

// addStats accumulates s into dst (core keeps its add method
// unexported).
func addStats(dst *core.ProbeStats, s core.ProbeStats) {
	dst.IndexReads += s.IndexReads
	dst.BFProbes += s.BFProbes
	dst.CandidatePages += s.CandidatePages
	dst.DataPagesRead += s.DataPagesRead
	dst.FalseReads += s.FalseReads
}
