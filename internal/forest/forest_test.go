package forest_test

import (
	"encoding/binary"
	"math"
	"sort"
	"testing"

	"bftree/internal/core"
	"bftree/internal/device"
	"bftree/internal/forest"
	"bftree/internal/heapfile"
	"bftree/internal/pagestore"
)

// buildRelation writes an ordered relation with `dups` tuples per key
// (key step 5, payload = ordinal). dups is chosen by callers to not
// divide the page capacity, so duplicate runs straddle page boundaries
// — and hence partition cuts, whose separators are page minimums.
func buildRelation(t *testing.T, n, dups int) (*heapfile.File, *pagestore.Store) {
	t.Helper()
	schema := heapfile.Schema{
		TupleSize: 64,
		Fields:    []heapfile.Field{{Name: "key", Offset: 0}, {Name: "seq", Offset: 8}},
	}
	store := pagestore.New(device.New(device.Memory, 4096))
	b, err := heapfile.NewBuilder(store, schema)
	if err != nil {
		t.Fatal(err)
	}
	tup := make([]byte, schema.TupleSize)
	for i := 0; i < n; i++ {
		binary.BigEndian.PutUint64(tup[0:8], uint64(i/dups)*5)
		binary.BigEndian.PutUint64(tup[8:16], uint64(i))
		if err := b.Append(tup); err != nil {
			t.Fatal(err)
		}
	}
	file, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return file, store
}

// brute returns every tuple with field 0 in [lo, hi], by file scan.
func brute(t *testing.T, file *heapfile.File, lo, hi uint64) [][]byte {
	t.Helper()
	var out [][]byte
	err := file.Scan(func(_ device.PageID, _ int, tup []byte) bool {
		if k := file.Schema().Get(tup, 0); k >= lo && k <= hi {
			cp := make([]byte, len(tup))
			copy(cp, tup)
			out = append(out, cp)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// sameTuples compares two tuple lists as multisets — the forest's
// exactly-once guarantee is per association, so a duplicate emission or
// a dropped association both fail here.
func sameTuples(a, b [][]byte) bool {
	if len(a) != len(b) {
		return false
	}
	as := make([]string, len(a))
	bs := make([]string, len(b))
	for i := range a {
		as[i], bs[i] = string(a[i]), string(b[i])
	}
	sort.Strings(as)
	sort.Strings(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func buildForest(t *testing.T, file *heapfile.File, hash bool, shards int) (*forest.Forest, *pagestore.Store) {
	t.Helper()
	idxStore := pagestore.New(device.New(device.Memory, 4096))
	f, err := forest.New(idxStore, file, 0, forest.Options{
		Shards: shards,
		Hash:   hash,
		Tree:   core.Options{FPP: 1e-4},
	})
	if err != nil {
		t.Fatal(err)
	}
	return f, idxStore
}

func kinds() []struct {
	name string
	hash bool
} {
	return []struct {
		name string
		hash bool
	}{{"range", false}, {"hash", true}}
}

// TestForestBuild pins shard construction: the requested count (modulo
// range clamping), disjoint key ownership (NumKeys summing to the
// relation's distinct count), and per-shard maintainers under auto
// maintenance.
func TestForestBuild(t *testing.T) {
	const n, dups = 6000, 7
	file, _ := buildRelation(t, n, dups)
	distinct := uint64((n + dups - 1) / dups)

	for _, k := range kinds() {
		t.Run(k.name, func(t *testing.T) {
			f, _ := buildForest(t, file, k.hash, 4)
			defer f.Close()
			if f.NumShards() != 4 {
				t.Fatalf("NumShards = %d, want 4", f.NumShards())
			}
			if got := f.NumKeys(); got != distinct {
				t.Errorf("NumKeys = %d, want %d (shards must partition keys disjointly)", got, distinct)
			}
			if f.Height() < 1 || f.NumNodes() == 0 || f.SizeBytes() == 0 {
				t.Errorf("degenerate aggregate stats: height %d, nodes %d, bytes %d",
					f.Height(), f.NumNodes(), f.SizeBytes())
			}
			if !k.hash {
				seps := f.Separators()
				if len(seps) != f.NumShards()-1 {
					t.Fatalf("%d separators for %d shards", len(seps), f.NumShards())
				}
				for i := 1; i < len(seps); i++ {
					if seps[i] <= seps[i-1] {
						t.Fatalf("separators not strictly increasing: %v", seps)
					}
				}
			}
		})
	}
}

// TestForestSearch asserts point lookups and MultiSearch agree with
// brute force on both kinds — hits, misses, and batches mixing both.
func TestForestSearch(t *testing.T) {
	const n, dups = 6000, 7
	file, _ := buildRelation(t, n, dups)
	maxKey := uint64((n-1)/dups) * 5

	for _, k := range kinds() {
		t.Run(k.name, func(t *testing.T) {
			f, _ := buildForest(t, file, k.hash, 4)
			defer f.Close()
			for key := uint64(0); key <= maxKey; key += 5 * 53 {
				res, err := f.Search(key)
				if err != nil {
					t.Fatal(err)
				}
				if want := brute(t, file, key, key); !sameTuples(res.Tuples, want) {
					t.Fatalf("Search(%d): %d tuples, want %d", key, len(res.Tuples), len(want))
				}
				first, err := f.SearchFirst(key)
				if err != nil {
					t.Fatal(err)
				}
				if len(first.Tuples) == 0 {
					t.Fatalf("SearchFirst(%d): empty on a hit", key)
				}
			}
			for _, key := range []uint64{1, 7, maxKey + 1000} {
				res, err := f.Search(key)
				if err != nil {
					t.Fatal(err)
				}
				if len(res.Tuples) != 0 {
					t.Fatalf("Search(miss %d): %d tuples", key, len(res.Tuples))
				}
			}

			batch := []uint64{0, 35, 35, 7, 250, maxKey, maxKey + 1000}
			res, err := f.MultiSearch(batch)
			if err != nil {
				t.Fatal(err)
			}
			var want [][]byte
			seen := map[uint64]bool{}
			for _, key := range batch {
				if !seen[key] {
					seen[key] = true
					want = append(want, brute(t, file, key, key)...)
				}
			}
			if !sameTuples(res.Tuples, want) {
				t.Fatalf("MultiSearch: %d tuples, want %d", len(res.Tuples), len(want))
			}
		})
	}
}

// TestForestCrossShardBoundaries is the partition-boundary contract:
// duplicate runs straddle data pages (dups ∤ page capacity), and range
// separators are page minimums, so some key's associations physically
// sit on pages covered by two adjacent shards' leaves. Scan and
// MultiSearch must still emit each association exactly once — at the
// separators themselves, one key either side, and across the whole
// domain.
func TestForestCrossShardBoundaries(t *testing.T) {
	const n, dups = 6000, 7
	file, _ := buildRelation(t, n, dups)
	maxKey := uint64((n-1)/dups) * 5

	for _, k := range kinds() {
		t.Run(k.name, func(t *testing.T) {
			f, _ := buildForest(t, file, k.hash, 4)
			defer f.Close()

			// Boundary keys: for the range kind the actual separators;
			// for hash every key is a boundary (each page mixes shard
			// ownership), so probe a spread.
			var boundary []uint64
			if k.hash {
				for key := uint64(0); key <= maxKey; key += 5 * 29 {
					boundary = append(boundary, key)
				}
			} else {
				for _, sep := range f.Separators() {
					boundary = append(boundary, sep)
					if sep >= 5 {
						boundary = append(boundary, sep-5)
					}
					boundary = append(boundary, sep+5)
				}
			}

			for _, key := range boundary {
				want := brute(t, file, key, key)
				res, err := f.Search(key)
				if err != nil {
					t.Fatal(err)
				}
				if !sameTuples(res.Tuples, want) {
					t.Errorf("Search(boundary %d): %d tuples, want %d", key, len(res.Tuples), len(want))
				}
				scanned, err := f.RangeScan(key, key)
				if err != nil {
					t.Fatal(err)
				}
				if !sameTuples(scanned.Tuples, want) {
					t.Errorf("RangeScan(boundary %d): %d tuples, want %d (straddling dups must appear exactly once)",
						key, len(scanned.Tuples), len(want))
				}
				if wlo := key - 10; key >= 10 {
					win, err := f.RangeScan(wlo, key+10)
					if err != nil {
						t.Fatal(err)
					}
					if want := brute(t, file, wlo, key+10); !sameTuples(win.Tuples, want) {
						t.Errorf("RangeScan[%d,%d]: %d tuples, want %d", wlo, key+10, len(win.Tuples), len(want))
					}
				}
			}

			res, err := f.MultiSearch(boundary)
			if err != nil {
				t.Fatal(err)
			}
			var want [][]byte
			seen := map[uint64]bool{}
			for _, key := range boundary {
				if !seen[key] {
					seen[key] = true
					want = append(want, brute(t, file, key, key)...)
				}
			}
			if !sameTuples(res.Tuples, want) {
				t.Fatalf("MultiSearch(boundaries): %d tuples, want %d", len(res.Tuples), len(want))
			}

			full, err := f.RangeScan(0, math.MaxUint64)
			if err != nil {
				t.Fatal(err)
			}
			if want := brute(t, file, 0, math.MaxUint64); !sameTuples(full.Tuples, want) {
				t.Fatalf("full-domain scan: %d tuples, want %d", len(full.Tuples), len(want))
			}
		})
	}
}

// TestForestScanOrder pins that range-kind scans come out in
// nondecreasing key order across shard boundaries (concatenation), and
// hash-kind scans in nondecreasing key order too (the k-way merge).
func TestForestScanOrder(t *testing.T) {
	const n, dups = 4000, 7
	file, _ := buildRelation(t, n, dups)

	for _, k := range kinds() {
		t.Run(k.name, func(t *testing.T) {
			f, _ := buildForest(t, file, k.hash, 4)
			defer f.Close()
			it, err := f.Scan(0, math.MaxUint64)
			if err != nil {
				t.Fatal(err)
			}
			defer it.Close()
			prev := uint64(0)
			for it.Next() {
				key := file.Schema().Get(it.Tuple(), 0)
				if key < prev {
					t.Fatalf("scan regressed: %d after %d", key, prev)
				}
				prev = key
			}
			if err := it.Err(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestForestLazyShardOpen pins the range kind's LIMIT-k shape: pulling
// one tuple of a full-domain scan must not charge pages from shards
// past the first.
func TestForestLazyShardOpen(t *testing.T) {
	const n, dups = 6000, 7
	file, _ := buildRelation(t, n, dups)
	f, _ := buildForest(t, file, false, 4)
	defer f.Close()

	drained, err := f.RangeScan(0, math.MaxUint64)
	if err != nil {
		t.Fatal(err)
	}
	it, err := f.Scan(0, math.MaxUint64)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	if !it.Next() {
		t.Fatalf("Next() = false on a loaded forest (err %v)", it.Err())
	}
	limited := it.Stats()
	if limited.DataPagesRead == 0 {
		t.Error("one pulled tuple charged no data page read")
	}
	if limited.DataPagesRead*4 > drained.Stats.DataPagesRead {
		t.Errorf("LIMIT-1 read %d data pages, drain %d — lazy shard chaining lost",
			limited.DataPagesRead, drained.Stats.DataPagesRead)
	}
}

// TestForestInsertDelete exercises routed writes: re-inserting existing
// associations (including at range boundaries) leaves every answer
// unchanged, deleting a key's associations empties (or at least never
// grows) its answer, and re-inserting restores it.
func TestForestInsertDelete(t *testing.T) {
	const n, dups = 4000, 7
	file, _ := buildRelation(t, n, dups)
	maxKey := uint64((n-1)/dups) * 5

	for _, k := range kinds() {
		t.Run(k.name, func(t *testing.T) {
			f, _ := buildForest(t, file, k.hash, 4)
			defer f.Close()

			pageOf := func(key uint64) []device.PageID {
				var pids []device.PageID
				err := file.Scan(func(pid device.PageID, _ int, tup []byte) bool {
					if file.Schema().Get(tup, 0) == key {
						if len(pids) == 0 || pids[len(pids)-1] != pid {
							pids = append(pids, pid)
						}
					}
					return true
				})
				if err != nil {
					t.Fatal(err)
				}
				return pids
			}

			for key := uint64(0); key <= maxKey; key += 5 * 17 {
				for _, pid := range pageOf(key) {
					if err := f.Insert(key, pid); err != nil {
						t.Fatalf("Insert(%d, %d): %v", key, pid, err)
					}
				}
			}
			for key := uint64(0); key <= maxKey; key += 5 * 17 {
				res, err := f.Search(key)
				if err != nil {
					t.Fatal(err)
				}
				if want := brute(t, file, key, key); !sameTuples(res.Tuples, want) {
					t.Fatalf("post-insert Search(%d): %d tuples, want %d", key, len(res.Tuples), len(want))
				}
			}

			const victim = uint64(500)
			golden := brute(t, file, victim, victim)
			for _, pid := range pageOf(victim) {
				if err := f.Delete(victim, pid); err != nil {
					t.Fatalf("Delete(%d, %d): %v", victim, pid, err)
				}
			}
			res, err := f.Search(victim)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Tuples) > len(golden) {
				t.Fatalf("post-delete Search(%d): %d tuples exceeds physical %d", victim, len(res.Tuples), len(golden))
			}
			for _, pid := range pageOf(victim) {
				if err := f.Insert(victim, pid); err != nil {
					t.Fatal(err)
				}
			}
			res, err = f.Search(victim)
			if err != nil {
				t.Fatal(err)
			}
			if !sameTuples(res.Tuples, golden) {
				t.Fatalf("post-reinsert Search(%d): %d tuples, want %d", victim, len(res.Tuples), len(golden))
			}
		})
	}
}

// TestForestPersistence round-trips MarshalMeta/Open on the same store
// for both kinds, checking searches, scans and the reconstructed
// partitioning (shard count, separators).
func TestForestPersistence(t *testing.T) {
	const n, dups = 4000, 7
	file, _ := buildRelation(t, n, dups)
	maxKey := uint64((n-1)/dups) * 5

	for _, k := range kinds() {
		t.Run(k.name, func(t *testing.T) {
			f, idxStore := buildForest(t, file, k.hash, 4)
			blob := f.MarshalMeta()
			seps := f.Separators()
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}

			g, err := forest.Open(idxStore, file, blob)
			if err != nil {
				t.Fatal(err)
			}
			defer g.Close()
			if g.NumShards() != 4 || g.HashKind() != k.hash {
				t.Fatalf("reopened %d shards hash=%v, want 4/%v", g.NumShards(), g.HashKind(), k.hash)
			}
			if !k.hash {
				reSeps := g.Separators()
				if len(reSeps) != len(seps) {
					t.Fatalf("reopened %d separators, want %d", len(reSeps), len(seps))
				}
				for i := range seps {
					if reSeps[i] != seps[i] {
						t.Fatalf("separator %d: %d != %d", i, reSeps[i], seps[i])
					}
				}
			}
			for key := uint64(0); key <= maxKey; key += 5 * 31 {
				res, err := g.Search(key)
				if err != nil {
					t.Fatal(err)
				}
				if want := brute(t, file, key, key); !sameTuples(res.Tuples, want) {
					t.Fatalf("reopened Search(%d): %d tuples, want %d", key, len(res.Tuples), len(want))
				}
			}
			full, err := g.RangeScan(0, maxKey)
			if err != nil {
				t.Fatal(err)
			}
			if want := brute(t, file, 0, maxKey); !sameTuples(full.Tuples, want) {
				t.Fatalf("reopened scan: %d tuples, want %d", len(full.Tuples), len(want))
			}

			// Corrupt blobs fail loudly instead of misrouting.
			if _, err := forest.Open(idxStore, file, blob[:8]); err == nil {
				t.Error("Open(truncated blob) succeeded")
			}
			if _, err := forest.Open(idxStore, file, []byte("XXXX")); err == nil {
				t.Error("Open(bad magic) succeeded")
			}
		})
	}
}

// TestEmptyPartition pins the sentinel shard: a partition owning no
// keys builds, answers everything empty, and accepts inserts later —
// the forest depends on this when a skewed distribution starves a
// shard.
func TestEmptyPartition(t *testing.T) {
	const n, dups = 1000, 4
	file, _ := buildRelation(t, n, dups)
	idxStore := pagestore.New(device.New(device.Memory, 4096))
	maxKey := uint64((n-1)/dups) * 5

	// All the relation's keys are ≤ maxKey; this shard owns none.
	part := &core.Partition{Shard: 1, Shards: 2, KeyLo: maxKey + 1000, KeyHi: ^uint64(0)}
	tr, err := core.BulkLoadPartition(idxStore, file, 0, core.Options{FPP: 1e-3}, part)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	if tr.NumKeys() != 0 {
		t.Fatalf("empty partition has %d keys", tr.NumKeys())
	}
	res, err := tr.Search(maxKey + 2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 0 {
		t.Fatalf("empty partition answered %d tuples", len(res.Tuples))
	}
	rs, err := tr.RangeScan(0, ^uint64(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Tuples) != 0 {
		t.Fatalf("empty partition scanned %d tuples", len(rs.Tuples))
	}

	// An append lands in the sentinel leaf's territory and is found.
	lastPid := file.FirstPage() + device.PageID(file.NumPages()-1)
	if err := tr.Insert(maxKey+2000, lastPid); err != nil {
		t.Fatalf("Insert into empty partition: %v", err)
	}
	res, err = tr.Search(maxKey + 2000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CandidatePages == 0 {
		t.Error("insert into empty partition left no candidate pages")
	}
}

// TestForestMaintenance checks aggregation: Maintain passes count
// across shards and limbo drains at quiescence.
func TestForestMaintenance(t *testing.T) {
	const n, dups = 4000, 7
	file, _ := buildRelation(t, n, dups)
	f, _ := buildForest(t, file, false, 4)
	defer f.Close()

	if err := f.Maintain(); err != nil {
		t.Fatal(err)
	}
	stats := f.MaintenanceStats()
	if stats.Passes < uint64(f.NumShards()) {
		t.Errorf("aggregate Passes = %d after one forest Maintain over %d shards", stats.Passes, f.NumShards())
	}
	if stats.LimboPages != 0 {
		t.Errorf("LimboPages = %d on an untouched forest", stats.LimboPages)
	}
}
