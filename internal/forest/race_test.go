package forest_test

import (
	"math"
	"sync"
	"testing"
	"time"

	"bftree/internal/core"
	"bftree/internal/device"
	"bftree/internal/forest"
	"bftree/internal/heapfile"
	"bftree/internal/pagestore"
)

// The forest race suite: concurrent writers, scanners and point probers
// against a forest whose per-shard maintainers run in the background,
// then a quiescent page-economy audit — every index page is live in
// some shard, on the store's free list, or in a shard's limbo, and
// limbo drains to zero. Run with -race.

// raceForest builds a forest with auto maintenance at a tight reclaim
// interval so the maintainers actually interleave with the workload.
func raceForest(t *testing.T, file *heapfile.File, hash bool) (*forest.Forest, *pagestore.Store, *device.Device) {
	t.Helper()
	dev := device.New(device.Memory, 4096)
	idxStore := pagestore.New(dev)
	f, err := forest.New(idxStore, file, 0, forest.Options{
		Shards: 4,
		Hash:   hash,
		Tree: core.Options{
			FPP: 1e-3,
			Maintenance: core.MaintenancePolicy{
				Mode:            core.MaintenanceAuto,
				ReclaimInterval: time.Millisecond,
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return f, idxStore, dev
}

// pagesOf collects the distinct data pages of each sampled key, for
// writers that re-insert/delete real associations.
func pagesOf(t *testing.T, file *heapfile.File, step uint64) map[uint64][]device.PageID {
	t.Helper()
	out := map[uint64][]device.PageID{}
	err := file.Scan(func(pid device.PageID, _ int, tup []byte) bool {
		k := file.Schema().Get(tup, 0)
		if k%step == 0 {
			pids := out[k]
			if len(pids) == 0 || pids[len(pids)-1] != pid {
				out[k] = append(pids, pid)
			}
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestForestRaceMixed(t *testing.T) {
	const n, dups = 4000, 7
	file, _ := buildRelation(t, n, dups)
	maxKey := uint64((n-1)/dups) * 5

	for _, k := range kinds() {
		t.Run(k.name, func(t *testing.T) {
			f, idxStore, dev := raceForest(t, file, k.hash)
			defer f.Close()
			refs := pagesOf(t, file, 5*13)

			const writers, probers, rounds = 8, 8, 40
			var wg sync.WaitGroup
			errCh := make(chan error, writers+probers)

			// Writers churn real associations: delete then re-insert, so
			// the index converges back to golden whatever the
			// interleaving. Each writer owns a disjoint key slice (per
			// key, not per shard — shard routing is the code under
			// test), per the §3 same-association rule.
			keys := make([]uint64, 0, len(refs))
			for key := range refs {
				keys = append(keys, key)
			}
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for r := 0; r < rounds; r++ {
						for i := w; i < len(keys); i += writers {
							key := keys[i]
							for _, pid := range refs[key] {
								if err := f.Delete(key, pid); err != nil {
									errCh <- err
									return
								}
							}
							for _, pid := range refs[key] {
								if err := f.Insert(key, pid); err != nil {
									errCh <- err
									return
								}
							}
						}
					}
				}(w)
			}

			// Probers mix point lookups, batched probes and streaming
			// scans; answers under churn must never exceed the physical
			// association count (the §3 never-wrong-tuples bound).
			for p := 0; p < probers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					for r := 0; r < rounds; r++ {
						key := (uint64(p*53+r*17) % (maxKey / 5)) * 5
						res, err := f.Search(key)
						if err != nil {
							errCh <- err
							return
						}
						if len(res.Tuples) > dups {
							t.Errorf("Search(%d) under churn: %d tuples exceeds physical %d", key, len(res.Tuples), dups)
							return
						}
						if _, err := f.MultiSearch([]uint64{key, key + 5, key + 250}); err != nil {
							errCh <- err
							return
						}
						it, err := f.Scan(key, key+100)
						if err != nil {
							errCh <- err
							return
						}
						for s := 0; it.Next() && s < 32; s++ {
						}
						if err := it.Err(); err != nil {
							errCh <- err
							it.Close()
							return
						}
						it.Close()
					}
				}(p)
			}

			wg.Wait()
			close(errCh)
			for err := range errCh {
				t.Fatal(err)
			}

			// Quiescence: stop the maintainers, drain both limbo epochs
			// on every shard, then audit the page economy.
			for i := 0; i < f.NumShards(); i++ {
				f.Shard(i).StopMaintenance()
			}
			for pass := 0; pass < 2; pass++ {
				if err := f.Maintain(); err != nil {
					t.Fatal(err)
				}
			}
			var live, limbo uint64
			for i := 0; i < f.NumShards(); i++ {
				tr := f.Shard(i)
				ms := tr.MaintenanceStats()
				if ms.LimboPages != 0 {
					t.Errorf("shard %d: %d limbo pages after quiescent reclaim", i, ms.LimboPages)
				}
				live += tr.NumNodes()
				limbo += uint64(ms.LimboPages)
			}
			free := uint64(idxStore.FreePages())
			if total := dev.NumPages(); live+free+limbo != total {
				t.Errorf("page economy leaks: live %d + free %d + limbo %d != device %d",
					live, free, limbo, total)
			}

			// And the index still answers golden.
			for key := range refs {
				res, err := f.Search(key)
				if err != nil {
					t.Fatal(err)
				}
				if want := brute(t, file, key, key); !sameTuples(res.Tuples, want) {
					t.Fatalf("post-churn Search(%d): %d tuples, want %d", key, len(res.Tuples), len(want))
				}
			}
		})
	}
}

// TestForestRaceScanners runs full-domain streaming scans against
// structural churn (deletes driving drift toward compaction) — the
// cross-shard cursor must stay per-shard snapshot-consistent and never
// error.
func TestForestRaceScanners(t *testing.T) {
	const n, dups = 4000, 7
	file, _ := buildRelation(t, n, dups)

	for _, k := range kinds() {
		t.Run(k.name, func(t *testing.T) {
			f, _, _ := raceForest(t, file, k.hash)
			defer f.Close()
			refs := pagesOf(t, file, 5*3)

			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					for key, pids := range refs {
						for _, pid := range pids {
							if i%2 == 0 {
								_ = f.Delete(key, pid)
							} else {
								_ = f.Insert(key, pid)
							}
						}
					}
				}
			}()

			for s := 0; s < 6; s++ {
				res, err := f.RangeScan(0, math.MaxUint64)
				if err != nil {
					t.Fatal(err)
				}
				if len(res.Tuples) > n {
					t.Fatalf("scan under churn returned %d tuples for %d physical", len(res.Tuples), n)
				}
			}
			close(stop)
			wg.Wait()
		})
	}
}
