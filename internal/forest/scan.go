package forest

import (
	"fmt"

	"bftree/internal/core"
)

// Iterator is the streaming-scan contract the forest's cursors satisfy
// — structurally identical to index.Iterator, declared here so the
// package does not import the registry it is registered into.
type Iterator interface {
	Next() bool
	Tuple() []byte
	Stats() core.ProbeStats
	Err() error
	Close() error
}

// Scan streams every tuple whose indexed field lies in [lo, hi] across
// all shards, in nondecreasing key order, each association exactly
// once.
//
// Range forests chain shard cursors lazily: shards are ordered and
// disjoint by key, so the merge degenerates to concatenation, and a
// LIMIT-k consumer never touches shards past the one holding its k-th
// tuple. Each shard's sub-scan is clamped to the shard's own key bounds
// — a data page straddling a partition cut is covered by both adjacent
// shards' leaves, and the clamp is what keeps the lower shard from
// emitting the upper shard's tuples (and vice versa).
//
// Hash forests need a genuine k-way merge: every shard may hold keys
// anywhere in [lo, hi], so all shard cursors open up front and the
// smallest current key wins each step (the fdtree multi-run merge
// shape). Each shard's stream keeps only the tuples whose keys it owns:
// shard leaves span nearly the whole file, so a shard's cursor reads
// boundary pages holding other shards' keys too.
//
// Cross-shard consistency: each shard cursor holds its own epoch
// registration, so the scan is per-shard consistent, not a single
// forest-wide snapshot — a concurrent writer may land between two
// shards' sub-scans.
func (f *Forest) Scan(lo, hi uint64) (Iterator, error) {
	if lo > hi {
		return nil, fmt.Errorf("%w: range [%d,%d] inverted", core.ErrOptions, lo, hi)
	}
	if f.hash {
		return f.mergeScan(lo, hi)
	}
	return &chainCursor{f: f, lo: lo, hi: hi}, nil
}

// RangeScan materializes Scan — exactly a drained cursor, so the two
// report identical stats.
func (f *Forest) RangeScan(lo, hi uint64) (*core.Result, error) {
	it, err := f.Scan(lo, hi)
	if err != nil {
		return nil, err
	}
	defer it.Close()
	res := &core.Result{}
	for it.Next() {
		res.Tuples = append(res.Tuples, it.Tuple())
	}
	res.Stats = it.Stats()
	if err := it.Err(); err != nil {
		return nil, err
	}
	return res, nil
}

// chainCursor is the range-kind scan: shard cursors opened one at a
// time in shard (= key) order, each clamped to its shard's bounds.
type chainCursor struct {
	f      *Forest
	lo, hi uint64
	shard  int          // next shard index to consider opening
	cur    *core.Cursor // live sub-cursor, nil between shards
	prior  core.ProbeStats
	err    error
	closed bool
}

func (c *chainCursor) Next() bool {
	if c.closed || c.err != nil {
		return false
	}
	for {
		if c.cur == nil && !c.openNext() {
			return false
		}
		if c.cur.Next() {
			return true
		}
		if err := c.cur.Err(); err != nil {
			c.fail(err)
			return false
		}
		addStats(&c.prior, c.cur.Stats())
		c.cur.Close()
		c.cur = nil
	}
}

// openNext opens the next shard whose key bounds overlap [lo, hi],
// clamped to them; false when no shard remains.
func (c *chainCursor) openNext() bool {
	for ; c.shard < len(c.f.trees); c.shard++ {
		sLo, sHi := c.f.bounds(c.shard)
		if sHi < c.lo || sLo > c.hi {
			continue
		}
		if sLo < c.lo {
			sLo = c.lo
		}
		if sHi > c.hi {
			sHi = c.hi
		}
		cur, err := c.f.trees[c.shard].ScanOptimized(sLo, sHi)
		if err != nil {
			c.fail(err)
			return false
		}
		c.shard++
		c.cur = cur
		return true
	}
	return false
}

func (c *chainCursor) fail(err error) {
	c.err = err
	if c.cur != nil {
		addStats(&c.prior, c.cur.Stats())
		c.cur.Close()
		c.cur = nil
	}
}

func (c *chainCursor) Tuple() []byte {
	if c.cur == nil {
		return nil
	}
	return c.cur.Tuple()
}

func (c *chainCursor) Stats() core.ProbeStats {
	s := c.prior
	if c.cur != nil {
		addStats(&s, c.cur.Stats())
	}
	return s
}

func (c *chainCursor) Err() error { return c.err }

func (c *chainCursor) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	if c.cur != nil {
		addStats(&c.prior, c.cur.Stats())
		c.cur.Close()
		c.cur = nil
	}
	return nil
}

// mergeSrc is one shard's stream inside a hash-kind merge: the shard's
// clamped cursor plus its current (owned) tuple.
type mergeSrc struct {
	cur   *core.Cursor
	shard int
	tup   []byte
	key   uint64
	done  bool
}

// mergeCursor k-way merges the shard streams of a hash forest by
// current key; ownership filtering makes the streams key-disjoint, so
// the merge needs no tie-break beyond lowest shard first.
type mergeCursor struct {
	f      *Forest
	srcs   []*mergeSrc
	primed bool
	tup    []byte
	err    error
	closed bool
}

func (f *Forest) mergeScan(lo, hi uint64) (Iterator, error) {
	m := &mergeCursor{f: f}
	for i, tr := range f.trees {
		cur, err := tr.ScanOptimized(lo, hi)
		if err != nil {
			m.Close()
			return nil, err
		}
		m.srcs = append(m.srcs, &mergeSrc{cur: cur, shard: i})
	}
	return m, nil
}

// advance steps src to its next owned tuple, skipping tuples whose keys
// hash to other shards (read off boundary pages both shards' leaves
// cover).
func (m *mergeCursor) advance(src *mergeSrc) {
	n := uint64(len(m.f.trees))
	for src.cur.Next() {
		tup := src.cur.Tuple()
		key := m.f.file.Schema().Get(tup, m.f.fieldIdx)
		if core.HashKey(key)%n != uint64(src.shard) {
			continue
		}
		src.tup, src.key = tup, key
		return
	}
	src.done = true
	if err := src.cur.Err(); err != nil && m.err == nil {
		m.err = err
	}
}

func (m *mergeCursor) Next() bool {
	if m.closed || m.err != nil {
		return false
	}
	if !m.primed {
		m.primed = true
		for _, src := range m.srcs {
			m.advance(src)
		}
		if m.err != nil {
			return false
		}
	}
	var best *mergeSrc
	for _, src := range m.srcs {
		if src.done {
			continue
		}
		if best == nil || src.key < best.key {
			best = src
		}
	}
	if best == nil {
		return false
	}
	m.tup = best.tup
	// Advance the winner now (the fdtree merge shape); an error it hits
	// surfaces on the next call — the current tuple is already valid.
	m.advance(best)
	return true
}

func (m *mergeCursor) Tuple() []byte { return m.tup }

func (m *mergeCursor) Stats() core.ProbeStats {
	var s core.ProbeStats
	for _, src := range m.srcs {
		addStats(&s, src.cur.Stats())
	}
	return s
}

func (m *mergeCursor) Err() error { return m.err }

func (m *mergeCursor) Close() error {
	if m.closed {
		return nil
	}
	m.closed = true
	for _, src := range m.srcs {
		src.cur.Close()
	}
	return nil
}
