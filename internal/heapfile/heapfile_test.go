package heapfile

import (
	"encoding/binary"
	"testing"
	"testing/quick"

	"bftree/internal/device"
	"bftree/internal/pagestore"
)

var testSchema = Schema{
	TupleSize: 64,
	Fields: []Field{
		{Name: "pk", Offset: 0},
		{Name: "att1", Offset: 8},
	},
}

func newStore(pageSize int) *pagestore.Store {
	return pagestore.New(device.New(device.Memory, pageSize))
}

func makeTuple(pk, att1 uint64) []byte {
	t := make([]byte, 64)
	binary.BigEndian.PutUint64(t[0:8], pk)
	binary.BigEndian.PutUint64(t[8:16], att1)
	return t
}

func buildFile(t *testing.T, n int) *File {
	t.Helper()
	b, err := NewBuilder(newStore(4096), testSchema)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := b.Append(makeTuple(uint64(i), uint64(i/11))); err != nil {
			t.Fatal(err)
		}
	}
	f, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestSchemaValidate(t *testing.T) {
	cases := []struct {
		name string
		s    Schema
		ok   bool
	}{
		{"valid", testSchema, true},
		{"tiny tuple", Schema{TupleSize: 4, Fields: []Field{{Name: "k"}}}, false},
		{"no fields", Schema{TupleSize: 64}, false},
		{"field overflows", Schema{TupleSize: 16, Fields: []Field{{Name: "k", Offset: 12}}}, false},
		{"negative offset", Schema{TupleSize: 16, Fields: []Field{{Name: "k", Offset: -1}}}, false},
	}
	for _, tc := range cases {
		err := tc.s.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestFieldIndex(t *testing.T) {
	if testSchema.FieldIndex("att1") != 1 {
		t.Error("att1 should be field 1")
	}
	if testSchema.FieldIndex("nope") != -1 {
		t.Error("missing field should return -1")
	}
}

func TestSchemaGetSet(t *testing.T) {
	tup := make([]byte, 64)
	testSchema.Set(tup, 0, 12345)
	testSchema.Set(tup, 1, 678)
	if testSchema.Get(tup, 0) != 12345 || testSchema.Get(tup, 1) != 678 {
		t.Error("get/set round trip failed")
	}
}

func TestTuplesPerPage(t *testing.T) {
	// 4096-byte page, 2-byte header, 64-byte tuples → 63.
	if got := TuplesPerPage(4096, 64); got != 63 {
		t.Errorf("TuplesPerPage(4096,64) = %d, want 63", got)
	}
	// Paper's synthetic workload: 256-byte tuples → 15 per 4 KB page.
	if got := TuplesPerPage(4096, 256); got != 15 {
		t.Errorf("TuplesPerPage(4096,256) = %d, want 15", got)
	}
}

func TestBuildAndScan(t *testing.T) {
	const n = 1000
	f := buildFile(t, n)
	if f.NumTuples() != n {
		t.Fatalf("NumTuples = %d, want %d", f.NumTuples(), n)
	}
	wantPages := uint64((n + 62) / 63)
	if f.NumPages() != wantPages {
		t.Fatalf("NumPages = %d, want %d", f.NumPages(), wantPages)
	}
	var seen uint64
	err := f.Scan(func(id device.PageID, slot int, tup []byte) bool {
		if f.Schema().Get(tup, 0) != seen {
			t.Fatalf("scan out of order at %d", seen)
		}
		seen++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != n {
		t.Fatalf("scanned %d tuples, want %d", seen, n)
	}
}

func TestScanEarlyStop(t *testing.T) {
	f := buildFile(t, 500)
	count := 0
	f.Scan(func(device.PageID, int, []byte) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Errorf("early stop scanned %d, want 10", count)
	}
}

func TestPageOf(t *testing.T) {
	f := buildFile(t, 200) // 63 per page
	if f.PageOf(0) != f.FirstPage() {
		t.Error("ordinal 0 must be on the first page")
	}
	if f.PageOf(62) != f.FirstPage() {
		t.Error("ordinal 62 must be on the first page")
	}
	if f.PageOf(63) != f.FirstPage()+1 {
		t.Error("ordinal 63 must be on the second page")
	}
}

func TestSearchPage(t *testing.T) {
	f := buildFile(t, 300)
	// Key 100 lives at ordinal 100 → page 1 (63 per page).
	id := f.PageOf(100)
	got, err := f.SearchPage(id, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || f.Schema().Get(got[0], 0) != 100 {
		t.Fatalf("SearchPage found %d tuples", len(got))
	}
	// ATT1 = 5 repeats 11 times (ordinals 55..65), spanning pages 0 and 1.
	matches := 0
	for _, pid := range []device.PageID{f.PageOf(55), f.PageOf(65)} {
		tuples, err := f.SearchPage(pid, 1, 5)
		if err != nil {
			t.Fatal(err)
		}
		matches += len(tuples)
	}
	if matches != 11 {
		t.Errorf("ATT1=5 matches = %d, want 11", matches)
	}
	// Absent key.
	none, err := f.SearchPage(id, 0, 99999999)
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Error("absent key should match nothing")
	}
}

func TestPageKeyRange(t *testing.T) {
	f := buildFile(t, 200)
	minKey, maxKey, err := f.PageKeyRange(f.FirstPage(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if minKey != 0 || maxKey != 62 {
		t.Errorf("first page key range = [%d,%d], want [0,62]", minKey, maxKey)
	}
	minKey, maxKey, err = f.PageKeyRange(f.FirstPage()+3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if minKey != 189 || maxKey != 199 {
		t.Errorf("last page key range = [%d,%d], want [189,199]", minKey, maxKey)
	}
}

func TestReadPageTuplesOutOfRange(t *testing.T) {
	f := buildFile(t, 100)
	if _, err := f.ReadPageTuples(f.FirstPage() + device.PageID(f.NumPages())); err == nil {
		t.Error("read past end of file should fail")
	}
	if f.FirstPage() > 0 {
		if _, err := f.ReadPageTuples(f.FirstPage() - 1); err == nil {
			t.Error("read before start of file should fail")
		}
	}
}

func TestBuilderErrors(t *testing.T) {
	if _, err := NewBuilder(newStore(4096), Schema{TupleSize: 4}); err == nil {
		t.Error("invalid schema should be rejected")
	}
	// Tuple larger than page.
	big := Schema{TupleSize: 8192, Fields: []Field{{Name: "k", Offset: 0}}}
	if _, err := NewBuilder(newStore(4096), big); err == nil {
		t.Error("tuple larger than page should be rejected")
	}
	b, err := NewBuilder(newStore(4096), testSchema)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Append(make([]byte, 10)); err == nil {
		t.Error("wrong-size tuple should be rejected")
	}
	if _, err := b.Finish(); err == nil {
		t.Error("empty relation should be rejected")
	}
}

func TestPartialLastPage(t *testing.T) {
	f := buildFile(t, 64) // 63 + 1
	if f.NumPages() != 2 {
		t.Fatalf("NumPages = %d, want 2", f.NumPages())
	}
	tuples, err := f.ReadPageTuples(f.FirstPage() + 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 1 {
		t.Fatalf("last page holds %d tuples, want 1", len(tuples))
	}
	if f.Schema().Get(tuples[0], 0) != 63 {
		t.Error("last tuple has wrong key")
	}
}

func TestSizeBytes(t *testing.T) {
	f := buildFile(t, 1000)
	if f.SizeBytes() != f.NumPages()*4096 {
		t.Error("SizeBytes must be pages times page size")
	}
}

func TestMultipleFilesShareStore(t *testing.T) {
	store := newStore(4096)
	b1, _ := NewBuilder(store, testSchema)
	for i := 0; i < 100; i++ {
		b1.Append(makeTuple(uint64(i), 0))
	}
	f1, err := b1.Finish()
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := NewBuilder(store, testSchema)
	for i := 0; i < 100; i++ {
		b2.Append(makeTuple(uint64(1000+i), 0))
	}
	f2, err := b2.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if f2.FirstPage() != f1.FirstPage()+device.PageID(f1.NumPages()) {
		t.Error("second file should follow the first")
	}
	got, err := f2.SearchPage(f2.PageOf(0), 0, 1000)
	if err != nil || len(got) != 1 {
		t.Error("second file content wrong")
	}
}

// Property: every appended (pk, att1) pair is found on the page PageOf
// predicts, with exactly the stored values.
func TestQuickAppendFetchRoundTrip(t *testing.T) {
	b, err := NewBuilder(newStore(1024), testSchema)
	if err != nil {
		t.Fatal(err)
	}
	type rec struct{ pk, att1 uint64 }
	var recs []rec
	n := 0
	gen := func(pk, att1 uint64) bool {
		recs = append(recs, rec{pk, att1})
		n++
		return b.Append(makeTuple(pk, att1)) == nil
	}
	if err := quick.Check(gen, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
	f, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range recs {
		id := f.PageOf(uint64(i))
		tuples, err := f.ReadPageTuples(id)
		if err != nil {
			t.Fatal(err)
		}
		slot := i % f.TuplesPerPage()
		if f.Schema().Get(tuples[slot], 0) != r.pk || f.Schema().Get(tuples[slot], 1) != r.att1 {
			t.Fatalf("record %d mismatched on read back", i)
		}
	}
}
