// Package heapfile stores relations as files of fixed-size tuples packed
// into pages, the data layout assumed throughout the paper's evaluation:
// the synthetic relation R (256-byte tuples), the TPCH lineitem table
// (200-byte tuples) and the smart-home dataset are all sequences of
// fixed-size records ordered — or partitioned — on the indexed attribute.
//
// A page holds a 2-byte tuple count followed by packed tuples. Tuples are
// flat byte records whose uint64 attributes live at schema-declared
// offsets (big-endian, so byte order agrees with numeric order).
package heapfile

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"

	"bftree/internal/device"
	"bftree/internal/pagestore"
)

// ErrSchema reports an invalid schema or a tuple/schema mismatch.
var ErrSchema = errors.New("heapfile: invalid schema")

// ErrUnknownField is the sentinel matched by errors.Is for index builds
// over a field the schema does not declare. The concrete error is an
// *UnknownFieldError carrying the offending name.
var ErrUnknownField = errors.New("bftree: unknown field")

// UnknownFieldError reports an index build over a field the schema does
// not declare. It matches ErrUnknownField under errors.Is.
type UnknownFieldError struct{ Field string }

func (e *UnknownFieldError) Error() string {
	return "bftree: schema has no field named " + e.Field
}

// Is makes errors.Is(err, ErrUnknownField) succeed for this error.
func (e *UnknownFieldError) Is(target error) bool { return target == ErrUnknownField }

// Field is one uint64 attribute of a fixed-size tuple.
type Field struct {
	Name   string
	Offset int // byte offset of the big-endian uint64 within the tuple
}

// Schema describes the fixed-size tuple layout of a relation.
type Schema struct {
	TupleSize int
	Fields    []Field
}

// Validate checks the schema invariants.
func (s Schema) Validate() error {
	if s.TupleSize < 8 {
		return fmt.Errorf("%w: tuple size %d < 8", ErrSchema, s.TupleSize)
	}
	if len(s.Fields) == 0 {
		return fmt.Errorf("%w: no fields", ErrSchema)
	}
	for _, f := range s.Fields {
		if f.Offset < 0 || f.Offset+8 > s.TupleSize {
			return fmt.Errorf("%w: field %q at offset %d does not fit in %d-byte tuple",
				ErrSchema, f.Name, f.Offset, s.TupleSize)
		}
	}
	return nil
}

// FieldIndex returns the index of the named field, or -1.
func (s Schema) FieldIndex(name string) int {
	for i, f := range s.Fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// Get extracts field fieldIdx from a raw tuple.
func (s Schema) Get(tuple []byte, fieldIdx int) uint64 {
	off := s.Fields[fieldIdx].Offset
	return binary.BigEndian.Uint64(tuple[off : off+8])
}

// Set stores v into field fieldIdx of a raw tuple.
func (s Schema) Set(tuple []byte, fieldIdx int, v uint64) {
	off := s.Fields[fieldIdx].Offset
	binary.BigEndian.PutUint64(tuple[off:off+8], v)
}

const pageHeaderSize = 2 // uint16 tuple count

// File is a heap file of fixed-size tuples on a page store. A File is
// safe for concurrent readers; Extend may run concurrently with readers
// (append workloads under a live writer) because the growing counters
// are atomic — but only one goroutine may Extend at a time.
type File struct {
	store     *pagestore.Store
	schema    Schema
	firstPage device.PageID
	numPages  atomic.Uint64
	numTuples atomic.Uint64
	perPage   int
}

// TuplesPerPage returns how many tuples of the given size fit in a page.
func TuplesPerPage(pageSize, tupleSize int) int {
	return (pageSize - pageHeaderSize) / tupleSize
}

// Builder accumulates tuples and writes them to sequential pages.
type Builder struct {
	store   *pagestore.Store
	schema  Schema
	perPage int

	first     device.PageID
	pages     uint64
	tuples    uint64
	buf       []byte
	inPage    int
	allocated bool
}

// NewBuilder creates a builder for a relation with the given schema on
// store. Build order defines the physical order of the file; callers feed
// tuples in key (or partition) order to produce the ordered files the
// BF-Tree assumes.
func NewBuilder(store *pagestore.Store, schema Schema) (*Builder, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	perPage := TuplesPerPage(store.PageSize(), schema.TupleSize)
	if perPage < 1 {
		return nil, fmt.Errorf("%w: tuple size %d exceeds page capacity %d",
			ErrSchema, schema.TupleSize, store.PageSize()-pageHeaderSize)
	}
	return &Builder{
		store:   store,
		schema:  schema,
		perPage: perPage,
		buf:     make([]byte, store.PageSize()),
	}, nil
}

// Append adds one raw tuple. The tuple must be exactly TupleSize bytes.
func (b *Builder) Append(tuple []byte) error {
	if len(tuple) != b.schema.TupleSize {
		return fmt.Errorf("%w: tuple is %d bytes, schema says %d",
			ErrSchema, len(tuple), b.schema.TupleSize)
	}
	if b.inPage == b.perPage {
		if err := b.flush(); err != nil {
			return err
		}
	}
	copy(b.buf[pageHeaderSize+b.inPage*b.schema.TupleSize:], tuple)
	b.inPage++
	b.tuples++
	return nil
}

func (b *Builder) flush() error {
	if b.inPage == 0 {
		return nil
	}
	binary.BigEndian.PutUint16(b.buf[0:2], uint16(b.inPage))
	id := b.store.Allocate(1)
	if !b.allocated {
		b.first = id
		b.allocated = true
	}
	if err := b.store.WritePage(id, b.buf); err != nil {
		return err
	}
	for i := range b.buf {
		b.buf[i] = 0
	}
	b.inPage = 0
	b.pages++
	return nil
}

// Finish flushes the final partial page and returns the completed file.
func (b *Builder) Finish() (*File, error) {
	if err := b.flush(); err != nil {
		return nil, err
	}
	if !b.allocated {
		return nil, fmt.Errorf("heapfile: empty relation")
	}
	f := &File{
		store:     b.store,
		schema:    b.schema,
		firstPage: b.first,
		perPage:   b.perPage,
	}
	f.numPages.Store(b.pages)
	f.numTuples.Store(b.tuples)
	return f, nil
}

// Open reconstructs a file view over pages already resident on a store
// (e.g. written by an earlier builder in a previous process, or the
// concatenation of several builder runs on the same store). The caller
// supplies the geometry; contents are not validated beyond the schema.
func Open(store *pagestore.Store, schema Schema, firstPage device.PageID, numPages, numTuples uint64) (*File, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	if numPages == 0 || numTuples == 0 {
		return nil, fmt.Errorf("%w: empty file view", ErrSchema)
	}
	perPage := TuplesPerPage(store.PageSize(), schema.TupleSize)
	if perPage < 1 {
		return nil, fmt.Errorf("%w: tuple size %d exceeds page capacity", ErrSchema, schema.TupleSize)
	}
	f := &File{
		store:     store,
		schema:    schema,
		firstPage: firstPage,
		perPage:   perPage,
	}
	f.numPages.Store(numPages)
	f.numTuples.Store(numTuples)
	return f, nil
}

// Extend grows the file view by pages/tuples written contiguously after
// its current end (append workloads: a later builder on the same store).
// Call it only after the pages are durably written; concurrent probes
// then see either the pre- or post-extension view, both consistent. The
// page count grows first — the pages behind it are already durable by
// contract — so a reader that sees the new tuple count can always reach
// the page a tuple ordinal maps to.
func (f *File) Extend(pages, tuples uint64) {
	f.numPages.Add(pages)
	f.numTuples.Add(tuples)
}

// Schema returns the relation's schema.
func (f *File) Schema() Schema { return f.schema }

// Store returns the page store holding the file.
func (f *File) Store() *pagestore.Store { return f.store }

// FirstPage returns the id of the file's first page; pages are
// contiguous, so the file occupies [FirstPage, FirstPage+NumPages).
func (f *File) FirstPage() device.PageID { return f.firstPage }

// NumPages returns the page count of the file.
func (f *File) NumPages() uint64 { return f.numPages.Load() }

// NumTuples returns the tuple count of the file.
func (f *File) NumTuples() uint64 { return f.numTuples.Load() }

// TuplesPerPage returns the full-page tuple capacity.
func (f *File) TuplesPerPage() int { return f.perPage }

// PageOf maps a zero-based tuple ordinal to the page holding it.
func (f *File) PageOf(ordinal uint64) device.PageID {
	return f.firstPage + device.PageID(ordinal/uint64(f.perPage))
}

// ReadPageTuples reads data page id and returns its packed tuples as
// sub-slices of one page buffer.
func (f *File) ReadPageTuples(id device.PageID) ([][]byte, error) {
	if np := f.numPages.Load(); id < f.firstPage || id >= f.firstPage+device.PageID(np) {
		return nil, fmt.Errorf("heapfile: page %d outside file [%d,%d)",
			id, f.firstPage, f.firstPage+device.PageID(np))
	}
	buf, err := f.store.ReadPage(id)
	if err != nil {
		return nil, err
	}
	n := int(binary.BigEndian.Uint16(buf[0:2]))
	if n > f.perPage {
		return nil, fmt.Errorf("heapfile: corrupt page %d: count %d > capacity %d", id, n, f.perPage)
	}
	tuples := make([][]byte, n)
	for i := 0; i < n; i++ {
		off := pageHeaderSize + i*f.schema.TupleSize
		tuples[i] = buf[off : off+f.schema.TupleSize]
	}
	return tuples, nil
}

// SearchPage scans data page id for tuples whose field fieldIdx equals
// key and returns them. This is the "search the data page for the desired
// value" step of a BF-Tree probe (Algorithm 1 step 7).
func (f *File) SearchPage(id device.PageID, fieldIdx int, key uint64) ([][]byte, error) {
	tuples, err := f.ReadPageTuples(id)
	if err != nil {
		return nil, err
	}
	var out [][]byte
	for _, tup := range tuples {
		if f.schema.Get(tup, fieldIdx) == key {
			out = append(out, tup)
		}
	}
	return out, nil
}

// Scan iterates every tuple in file order, invoking fn with the page id,
// the slot within the page, and the raw tuple. Iteration stops early if
// fn returns false.
func (f *File) Scan(fn func(id device.PageID, slot int, tuple []byte) bool) error {
	for p := uint64(0); p < f.numPages.Load(); p++ {
		id := f.firstPage + device.PageID(p)
		tuples, err := f.ReadPageTuples(id)
		if err != nil {
			return err
		}
		for slot, tup := range tuples {
			if !fn(id, slot, tup) {
				return nil
			}
		}
	}
	return nil
}

// PageKeyRange reads page id and returns the min and max value of field
// fieldIdx among its tuples. Used by index bulk loaders.
func (f *File) PageKeyRange(id device.PageID, fieldIdx int) (minKey, maxKey uint64, err error) {
	tuples, err := f.ReadPageTuples(id)
	if err != nil {
		return 0, 0, err
	}
	if len(tuples) == 0 {
		return 0, 0, fmt.Errorf("heapfile: empty page %d", id)
	}
	minKey = f.schema.Get(tuples[0], fieldIdx)
	maxKey = minKey
	for _, tup := range tuples[1:] {
		k := f.schema.Get(tup, fieldIdx)
		if k < minKey {
			minKey = k
		}
		if k > maxKey {
			maxKey = k
		}
	}
	return minKey, maxKey, nil
}

// SizeBytes returns the file size in bytes (pages × page size).
func (f *File) SizeBytes() uint64 {
	return f.numPages.Load() * uint64(f.store.PageSize())
}
