package hashindex

import (
	"testing"
	"testing/quick"

	"bftree/internal/bptree"
	"bftree/internal/device"
)

func TestInsertSearch(t *testing.T) {
	idx := New(10)
	idx.Insert(5, bptree.TupleRef{Page: 1, Slot: 2})
	idx.Insert(5, bptree.TupleRef{Page: 1, Slot: 3})
	idx.Insert(9, bptree.TupleRef{Page: 2, Slot: 0})
	if got := idx.Search(5); len(got) != 2 {
		t.Fatalf("key 5: %d refs", len(got))
	}
	if got := idx.Search(9); len(got) != 1 {
		t.Fatalf("key 9: %d refs", len(got))
	}
	if got := idx.Search(100); got != nil {
		t.Fatal("absent key should return nil")
	}
	if idx.NumEntries() != 3 || idx.NumKeys() != 2 {
		t.Errorf("entries=%d keys=%d", idx.NumEntries(), idx.NumKeys())
	}
}

func TestBuild(t *testing.T) {
	entries := []bptree.Entry{
		{Key: 1, Ref: bptree.TupleRef{Page: 1}},
		{Key: 1, Ref: bptree.TupleRef{Page: 2}},
		{Key: 2, Ref: bptree.TupleRef{Page: 3}},
	}
	idx := Build(entries)
	if idx.NumEntries() != 3 || idx.NumKeys() != 2 {
		t.Errorf("build: %s", idx)
	}
}

func TestDelete(t *testing.T) {
	idx := New(4)
	r1 := bptree.TupleRef{Page: 1, Slot: 1}
	r2 := bptree.TupleRef{Page: 1, Slot: 2}
	idx.Insert(7, r1)
	idx.Insert(7, r2)
	if !idx.Delete(7, r1) {
		t.Fatal("delete of present mapping failed")
	}
	if idx.Delete(7, r1) {
		t.Fatal("double delete should fail")
	}
	if got := idx.Search(7); len(got) != 1 || got[0] != r2 {
		t.Fatal("remaining mapping wrong")
	}
	if !idx.Delete(7, r2) {
		t.Fatal("delete of last mapping failed")
	}
	if idx.NumKeys() != 0 {
		t.Error("empty bucket should be removed")
	}
	if idx.Delete(42, r1) {
		t.Error("delete of absent key should fail")
	}
}

func TestSizeBytesGrows(t *testing.T) {
	small := New(1)
	small.Insert(1, bptree.TupleRef{})
	big := New(1)
	for i := uint64(0); i < 1000; i++ {
		big.Insert(i, bptree.TupleRef{})
	}
	if big.SizeBytes() <= small.SizeBytes() {
		t.Error("size estimate should grow with keys")
	}
}

// Property: the index agrees with a reference map under inserts and
// deletes.
func TestQuickMatchesReference(t *testing.T) {
	idx := New(16)
	ref := make(map[uint64]map[bptree.TupleRef]int)
	prop := func(key uint64, page uint32, del bool) bool {
		key %= 50
		r := bptree.TupleRef{Page: device.PageID(page % 20), Slot: uint16(page % 7)}
		if del {
			present := ref[key] != nil && ref[key][r] > 0
			got := idx.Delete(key, r)
			if got != present {
				return false
			}
			if present {
				ref[key][r]--
			}
		} else {
			idx.Insert(key, r)
			if ref[key] == nil {
				ref[key] = make(map[bptree.TupleRef]int)
			}
			ref[key][r]++
		}
		want := 0
		for _, c := range ref[key] {
			want += c
		}
		return len(idx.Search(key)) == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
