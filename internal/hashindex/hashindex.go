// Package hashindex implements the in-memory hash index baseline of the
// paper's evaluation (Figures 5b and 8b): a map from key to the tuple
// references holding it. The paper keeps the hash index memory-resident
// in every configuration; probing it costs no device I/O, only the data
// page fetches for matching tuples.
package hashindex

import (
	"fmt"
	"sort"

	"bftree/internal/bptree"
)

// Index maps keys to tuple references. It supports non-unique keys.
type Index struct {
	buckets map[uint64][]bptree.TupleRef
	entries uint64
}

// New creates an empty index with capacity hints for n keys.
func New(n int) *Index {
	return &Index{buckets: make(map[uint64][]bptree.TupleRef, n)}
}

// Build constructs an index from a list of entries.
func Build(entries []bptree.Entry) *Index {
	idx := New(len(entries))
	for _, e := range entries {
		idx.Insert(e.Key, e.Ref)
	}
	return idx
}

// Insert adds one key → tuple mapping.
func (idx *Index) Insert(key uint64, ref bptree.TupleRef) {
	idx.buckets[key] = append(idx.buckets[key], ref)
	idx.entries++
}

// Delete removes a specific mapping; it reports whether it was present.
func (idx *Index) Delete(key uint64, ref bptree.TupleRef) bool {
	refs, ok := idx.buckets[key]
	if !ok {
		return false
	}
	for i, r := range refs {
		if r == ref {
			refs[i] = refs[len(refs)-1]
			refs = refs[:len(refs)-1]
			if len(refs) == 0 {
				delete(idx.buckets, key)
			} else {
				idx.buckets[key] = refs
			}
			idx.entries--
			return true
		}
	}
	return false
}

// Search returns the tuple references for key (nil when absent). The
// probe itself is a constant-time memory operation, the property the
// paper contrasts with tree traversal.
func (idx *Index) Search(key uint64) []bptree.TupleRef {
	return idx.buckets[key]
}

// SearchRange returns the tuple references of every key in [lo, hi], in
// key order. A hash table holds no key order, so this walks every
// bucket — O(distinct keys) memory work, the price of constant-time
// point probes. It exists so the hash baseline can stand behind the
// same Index interface as the tree backends; the paper's hash
// competitor answers point lookups only.
func (idx *Index) SearchRange(lo, hi uint64) []bptree.TupleRef {
	var keys []uint64
	for k := range idx.buckets {
		if k >= lo && k <= hi {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var out []bptree.TupleRef
	for _, k := range keys {
		out = append(out, idx.buckets[k]...)
	}
	return out
}

// MultiSearch answers a batch of point lookups: keys are sorted and
// deduped, then each bucket is probed once. The probes are constant-time
// memory operations, so unlike the tree backends there is no index I/O
// to share — batching here only establishes the key-ordered grouping
// (groups in ascending key order, keys without matches omitted) that
// lets callers dedup the data page fetches downstream.
func (idx *Index) MultiSearch(keys []uint64) []bptree.KeyRefs {
	if len(keys) == 0 {
		return nil
	}
	sorted := append([]uint64(nil), keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var out []bptree.KeyRefs
	var prev uint64
	for i, k := range sorted {
		if i > 0 && k == prev {
			continue
		}
		prev = k
		if refs := idx.buckets[k]; len(refs) > 0 {
			out = append(out, bptree.KeyRefs{Key: k, Refs: refs})
		}
	}
	return out
}

// NumEntries returns the number of stored mappings.
func (idx *Index) NumEntries() uint64 { return idx.entries }

// NumKeys returns the number of distinct keys.
func (idx *Index) NumKeys() int { return len(idx.buckets) }

// SizeBytes estimates the resident size of the index: per distinct key
// one bucket header (key + slice header ≈ 32 bytes) plus 10 bytes per
// reference, plus Go map overhead ≈ 48 bytes per bucket. The paper treats
// the hash index as a memory-only competitor, so this feeds only the
// size-comparison tables.
func (idx *Index) SizeBytes() uint64 {
	return uint64(len(idx.buckets))*80 + idx.entries*10
}

// String summarizes the index.
func (idx *Index) String() string {
	return fmt.Sprintf("hashindex{keys=%d entries=%d}", idx.NumKeys(), idx.NumEntries())
}
