// Package sortedsearch implements index-free access paths over a sorted
// heap file: binary search and interpolation search. Section 5 and
// Section 7 of the paper position these as the alternatives to indexing
// when data is fully sorted — binary search costs log2(N) page reads,
// interpolation search log(log(N)) for uniformly distributed keys — and
// note that BF-Trees remain applicable when data is merely partitioned,
// where neither algorithm works.
package sortedsearch

import (
	"fmt"

	"bftree/internal/device"
	"bftree/internal/heapfile"
)

// Result is the outcome of a search: the matching tuples (copies) and the
// number of data pages read to find them.
type Result struct {
	Tuples    [][]byte
	PagesRead int
}

// pageMinKey reads the first tuple's key of page id, charging one page
// read.
func pageMinKey(f *heapfile.File, fieldIdx int, id device.PageID) (uint64, error) {
	tuples, err := f.ReadPageTuples(id)
	if err != nil {
		return 0, err
	}
	if len(tuples) == 0 {
		return 0, fmt.Errorf("sortedsearch: empty page %d", id)
	}
	return f.Schema().Get(tuples[0], fieldIdx), nil
}

// collectMatches gathers every tuple equal to key starting at page id,
// following subsequent pages while they keep matching (duplicates may
// cross page boundaries in a sorted file).
func collectMatches(f *heapfile.File, fieldIdx int, id device.PageID, key uint64, res *Result) error {
	last := f.FirstPage() + device.PageID(f.NumPages()) - 1
	for pid := id; pid <= last; pid++ {
		tuples, err := f.ReadPageTuples(pid)
		if err != nil {
			return err
		}
		if pid != id {
			res.PagesRead++
		}
		matchedHere := false
		done := false
		for _, tup := range tuples {
			k := f.Schema().Get(tup, fieldIdx)
			if k == key {
				cp := make([]byte, len(tup))
				copy(cp, tup)
				res.Tuples = append(res.Tuples, cp)
				matchedHere = true
			} else if k > key {
				done = true
				break
			}
		}
		if done || (!matchedHere && pid > id) {
			return nil
		}
	}
	return nil
}

// Binary locates key in a file sorted on field fieldIdx using binary
// search over pages, reading one page per probe. It returns all matching
// tuples.
func Binary(f *heapfile.File, fieldIdx int, key uint64) (*Result, error) {
	res := &Result{}
	lo, hi := uint64(0), f.NumPages() // search page ordinals [lo, hi)
	// Find the first page whose min key is >= key; duplicates of key can
	// begin at most one page earlier (mid-page on the preceding page).
	for lo < hi {
		mid := (lo + hi) / 2
		minKey, err := pageMinKey(f, fieldIdx, f.FirstPage()+device.PageID(mid))
		if err != nil {
			return nil, err
		}
		res.PagesRead++
		if minKey >= key {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	startOrdinal := uint64(0)
	if lo > 0 {
		startOrdinal = lo - 1
	}
	start := f.FirstPage() + device.PageID(startOrdinal)
	res.PagesRead++
	if err := collectMatches(f, fieldIdx, start, key, res); err != nil {
		return nil, err
	}
	return res, nil
}

// Interpolation locates key in a file sorted on field fieldIdx using
// interpolation search over pages: each probe guesses the target page
// from the key's position within the remaining key range, converging in
// log(log(N)) probes for evenly distributed keys (Perl, Itai & Avni,
// cited as [36] in the paper). Falls back to bisection when the estimate
// stalls, bounding the worst case at binary search.
func Interpolation(f *heapfile.File, fieldIdx int, key uint64) (*Result, error) {
	res := &Result{}
	loPage, hiPage := uint64(0), f.NumPages()-1
	loKey, err := pageMinKey(f, fieldIdx, f.FirstPage())
	if err != nil {
		return nil, err
	}
	res.PagesRead++
	// Highest key: max of the last page.
	_, hiKey, err := f.PageKeyRange(f.FirstPage()+device.PageID(hiPage), fieldIdx)
	if err != nil {
		return nil, err
	}
	res.PagesRead++
	if key < loKey || key > hiKey {
		return res, nil
	}
	for loPage < hiPage {
		var guess uint64
		if hiKey > loKey {
			span := float64(hiPage - loPage)
			frac := float64(key-loKey) / float64(hiKey-loKey)
			guess = loPage + uint64(frac*span)
		} else {
			guess = (loPage + hiPage) / 2
		}
		if guess <= loPage {
			guess = loPage + 1
		}
		if guess > hiPage {
			guess = hiPage
		}
		minKey, err := pageMinKey(f, fieldIdx, f.FirstPage()+device.PageID(guess))
		if err != nil {
			return nil, err
		}
		res.PagesRead++
		if minKey > key {
			hiPage = guess - 1
			hiKey = minKey
		} else {
			loPage = guess
			loKey = minKey
			if minKey == key {
				break
			}
			// Check whether the key can still be on a later page; if the
			// next page's min exceeds key we are done positioning.
			if guess == hiPage {
				break
			}
			nextMin, err := pageMinKey(f, fieldIdx, f.FirstPage()+device.PageID(guess+1))
			if err != nil {
				return nil, err
			}
			res.PagesRead++
			if nextMin > key {
				break
			}
			loPage = guess + 1
			loKey = nextMin
		}
	}
	// Back up to the first page that can hold the key: duplicates may
	// extend left across whole pages (minKey == key). Walking back costs
	// at most one read per duplicate-filled page, no more than collecting
	// those duplicates costs anyway.
	start := loPage
	for start > 0 {
		minKey, err := pageMinKey(f, fieldIdx, f.FirstPage()+device.PageID(start))
		if err != nil {
			return nil, err
		}
		res.PagesRead++
		if minKey < key {
			break
		}
		start--
	}
	if err := collectMatches(f, fieldIdx, f.FirstPage()+device.PageID(start), key, res); err != nil {
		return nil, err
	}
	return res, nil
}
