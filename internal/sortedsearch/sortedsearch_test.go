package sortedsearch

import (
	"encoding/binary"
	"math"
	"testing"
	"testing/quick"

	"bftree/internal/device"
	"bftree/internal/heapfile"
	"bftree/internal/pagestore"
)

var schema = heapfile.Schema{
	TupleSize: 64,
	Fields:    []heapfile.Field{{Name: "k", Offset: 0}},
}

// buildSorted creates a file of n tuples with keys k(i); keys must be
// nondecreasing in i.
func buildSorted(t *testing.T, n int, k func(i int) uint64) *heapfile.File {
	t.Helper()
	store := pagestore.New(device.New(device.Memory, 1024))
	b, err := heapfile.NewBuilder(store, schema)
	if err != nil {
		t.Fatal(err)
	}
	tup := make([]byte, 64)
	for i := 0; i < n; i++ {
		binary.BigEndian.PutUint64(tup[:8], k(i))
		if err := b.Append(tup); err != nil {
			t.Fatal(err)
		}
	}
	f, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestBinaryFindsUniqueKeys(t *testing.T) {
	f := buildSorted(t, 5000, func(i int) uint64 { return uint64(i) })
	for _, key := range []uint64{0, 1, 14, 15, 2500, 4999} {
		res, err := Binary(f, 0, key)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Tuples) != 1 {
			t.Fatalf("key %d: %d matches", key, len(res.Tuples))
		}
		if got := schema.Get(res.Tuples[0], 0); got != key {
			t.Fatalf("key %d: got %d", key, got)
		}
	}
}

func TestBinaryMisses(t *testing.T) {
	f := buildSorted(t, 1000, func(i int) uint64 { return uint64(i) * 2 })
	res, err := Binary(f, 0, 501) // odd → absent
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 0 {
		t.Fatal("absent key matched")
	}
	// Below the first key.
	res, err = Binary(f, 0, 0) // first key is 0 → present
	if err != nil || len(res.Tuples) != 1 {
		t.Fatal("key 0 should match")
	}
	// Above the last key.
	res, err = Binary(f, 0, 99999)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 0 {
		t.Fatal("key above range matched")
	}
}

func TestBinaryLogarithmicPageReads(t *testing.T) {
	const n = 100000 // 15 tuples/page at 1 KB → 6667 pages
	f := buildSorted(t, n, func(i int) uint64 { return uint64(i) })
	res, err := Binary(f, 0, 54321)
	if err != nil {
		t.Fatal(err)
	}
	bound := int(math.Ceil(math.Log2(float64(f.NumPages())))) + 3
	if res.PagesRead > bound {
		t.Errorf("binary search read %d pages, bound %d", res.PagesRead, bound)
	}
}

func TestBinaryDuplicatesAcrossPages(t *testing.T) {
	// 40 duplicates of key 7 span multiple 15-tuple pages.
	f := buildSorted(t, 200, func(i int) uint64 {
		switch {
		case i < 80:
			return uint64(i / 40) // keys 0,1
		case i < 120:
			return 7
		default:
			return uint64(100 + i)
		}
	})
	res, err := Binary(f, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 40 {
		t.Fatalf("found %d duplicates, want 40", len(res.Tuples))
	}
}

func TestInterpolationUniform(t *testing.T) {
	const n = 100000
	f := buildSorted(t, n, func(i int) uint64 { return uint64(i) })
	var worst int
	for _, key := range []uint64{3, 1234, 50000, 99998} {
		res, err := Interpolation(f, 0, key)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Tuples) != 1 || schema.Get(res.Tuples[0], 0) != key {
			t.Fatalf("key %d: %d matches", key, len(res.Tuples))
		}
		if res.PagesRead > worst {
			worst = res.PagesRead
		}
	}
	// log2(log2(6667 pages)) ≈ 3.7; interpolation on uniform keys should
	// use far fewer probes than binary search's ~13.
	if worst > 10 {
		t.Errorf("interpolation read %d pages on uniform data", worst)
	}
}

func TestInterpolationOutOfRange(t *testing.T) {
	f := buildSorted(t, 1000, func(i int) uint64 { return 100 + uint64(i) })
	res, err := Interpolation(f, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 0 {
		t.Fatal("key below range matched")
	}
	res, err = Interpolation(f, 0, 99999)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 0 {
		t.Fatal("key above range matched")
	}
}

func TestInterpolationSkewed(t *testing.T) {
	// Quadratic keys break the uniformity assumption; the bisection
	// fallback must still find every key.
	const n = 20000
	f := buildSorted(t, n, func(i int) uint64 { return uint64(i) * uint64(i) })
	for _, i := range []int{0, 1, 100, 4321, 19999} {
		key := uint64(i) * uint64(i)
		res, err := Interpolation(f, 0, key)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Tuples) == 0 {
			t.Fatalf("key %d not found in skewed data", key)
		}
	}
}

func TestInterpolationConstantFile(t *testing.T) {
	f := buildSorted(t, 1000, func(i int) uint64 { return 42 })
	res, err := Interpolation(f, 0, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 1000 {
		t.Fatalf("constant file: %d matches, want 1000", len(res.Tuples))
	}
}

// Property: binary and interpolation search agree with a linear scan.
func TestQuickSearchesAgree(t *testing.T) {
	const n = 3000
	f := buildSorted(t, n, func(i int) uint64 { return uint64(i/3) * 5 })
	countKey := func(key uint64) int {
		c := 0
		f.Scan(func(_ device.PageID, _ int, tup []byte) bool {
			if schema.Get(tup, 0) == key {
				c++
			}
			return true
		})
		return c
	}
	prop := func(raw uint16) bool {
		key := uint64(raw % 6000)
		want := countKey(key)
		b, err := Binary(f, 0, key)
		if err != nil || len(b.Tuples) != want {
			return false
		}
		ip, err := Interpolation(f, 0, key)
		return err == nil && len(ip.Tuples) == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
